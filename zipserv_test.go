package zipserv_test

import (
	"bytes"
	"testing"

	"zipserv"
)

// TestPublicAPIQuickstart exercises the README quick-start path end to
// end through the public facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	w := zipserv.GaussianWeights(256, 256, 0.02, 1)
	cw, err := zipserv.Compress(w)
	if err != nil {
		t.Fatal(err)
	}
	if r := cw.CompressionRatio(); r < 1.3 {
		t.Errorf("compression ratio %.3f < 1.3", r)
	}

	back, err := zipserv.Decompress(cw)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Equal(back) {
		t.Fatal("decompression is not bit-exact")
	}

	x := zipserv.NewMatrix(256, 8)
	for i := range x.Data {
		x.Data[i] = zipserv.FromFloat32(float32(i%13) * 0.25)
	}
	dense, err := zipserv.GEMM(w, x)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := zipserv.ZipGEMM(cw, x)
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equal(fused) {
		t.Fatal("ZipGEMM differs from dense GEMM")
	}
}

func TestPublicAPISerialization(t *testing.T) {
	w := zipserv.GaussianWeights(64, 64, 0.02, 2)
	cw, err := zipserv.Compress(w)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := zipserv.WriteCompressed(&buf, cw); err != nil {
		t.Fatal(err)
	}
	back, err := zipserv.ReadCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := zipserv.Decompress(back)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Equal(m) {
		t.Error("serialised round trip not bit-exact")
	}
}

func TestPublicAPICodecs(t *testing.T) {
	if len(zipserv.CodecNames()) != 4 {
		t.Fatalf("CodecNames = %v, want 4 codecs", zipserv.CodecNames())
	}
	w := zipserv.GaussianWeights(64, 128, 0.02, 3)
	x := zipserv.NewMatrix(128, 4)
	for i := range x.Data {
		x.Data[i] = zipserv.FromFloat32(1)
	}
	dense, err := zipserv.GEMM(w, x)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range zipserv.CodecNames() {
		c, err := zipserv.NewCodec(name)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := c.Compress(w)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		y, err := zipserv.DecoupledGEMM(blob, x)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !dense.Equal(y) {
			t.Errorf("%s: decoupled GEMM differs from dense", name)
		}
	}
}

func TestPublicAPIServing(t *testing.T) {
	model, err := zipserv.ModelByName("LLaMA3.1-8B")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := zipserv.GPUByName("RTX4090")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := zipserv.NewEngine(zipserv.ServingConfig{
		Model: model, Device: dev, Backend: zipserv.ServeZipServ,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := eng.Run(8, 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	if m.Throughput <= 0 {
		t.Error("serving simulation returned no throughput")
	}
	if len(zipserv.Models()) != 11 {
		t.Errorf("zoo has %d models, want 11", len(zipserv.Models()))
	}
}

func TestPublicAPIAnalysis(t *testing.T) {
	w := zipserv.GaussianWeights(256, 256, 0.02, 5)
	h := zipserv.AnalyzeExponents(w)
	if e := h.Entropy(); e < 2.2 || e > 3.0 {
		t.Errorf("exponent entropy %.2f outside the §3.1 band", e)
	}
	if c := h.TopKCoverage(7); c < 0.95 {
		t.Errorf("top-7 coverage %.3f < 0.95", c)
	}
}

func TestPublicAPIKVCache(t *testing.T) {
	mgr, err := zipserv.NewKVManager(zipserv.KVConfig{BlockTokens: 16, TotalBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Allocate(1, 20); err != nil {
		t.Fatal(err)
	}
	if mgr.UsedBlocks() != 2 {
		t.Errorf("used blocks %d, want 2", mgr.UsedBlocks())
	}
	store := zipserv.NewCompressedKVStore()
	kv := zipserv.GaussianWeights(16, 512, 1.0, 6)
	if err := store.Put(0, kv); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(0)
	if err != nil || !kv.Equal(got) {
		t.Error("compressed KV store not bit-exact")
	}
}

func TestPublicAPIQuantization(t *testing.T) {
	// Large enough that the rANS frequency table amortises.
	w := zipserv.GaussianWeights(256, 256, 0.02, 8)
	q, err := zipserv.Quantize(w)
	if err != nil {
		t.Fatal(err)
	}
	if q.BitsPerElement() < 8 || q.BitsPerElement() > 9 {
		t.Errorf("W8 bits/element %.2f", q.BitsPerElement())
	}
	cq, err := zipserv.CompressQuantized(q)
	if err != nil {
		t.Fatal(err)
	}
	if cq.BitsPerElement() >= q.BitsPerElement() {
		t.Error("lossless stage did not shrink the quantized weights")
	}
	back, err := cq.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := range q.Q {
		if back.Q[i] != q.Q[i] {
			t.Fatal("quantized stream not bit-exact through lossless stage")
		}
	}
}

func TestPublicAPICheckpointAndWarp(t *testing.T) {
	w := zipserv.GaussianWeights(64, 64, 0.02, 9)
	cw := zipserv.NewCheckpointWriter()
	if err := cw.Add("layer", w); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	st, err := cw.Write(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ratio() < 1.3 {
		t.Errorf("checkpoint ratio %.2f", st.Ratio())
	}
	ck, err := zipserv.ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ck.Tensor("layer")
	if err != nil || !w.Equal(m) {
		t.Error("checkpoint tensor not bit-exact")
	}

	cm, err := zipserv.Compress(w)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := zipserv.SimulateTBEDecodeWarp(cm, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DivergenceFactor != 1.0 {
		t.Errorf("TBE warp divergence %.3f, want 1.0", rep.DivergenceFactor)
	}
}

func TestPublicAPITraceServing(t *testing.T) {
	model, _ := zipserv.ModelByName("LLaMA3.1-8B")
	dev, _ := zipserv.GPUByName("RTX4090")
	eng, err := zipserv.NewEngine(zipserv.ServingConfig{
		Model: model, Device: dev, Backend: zipserv.ServeZipServ,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := zipserv.SyntheticTrace(10, 20, 64, 32, 4)
	st, per, err := eng.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 10 || len(per) != 10 || st.Throughput <= 0 {
		t.Errorf("trace stats %+v", st)
	}
}

func TestPublicAPICompressWithOptions(t *testing.T) {
	w := zipserv.GaussianWeights(64, 64, 0.02, 10)
	cm, err := zipserv.CompressWithOptions(w, zipserv.CompressOptions{CodewordBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	back, err := zipserv.Decompress(cm)
	if err != nil || !w.Equal(back) {
		t.Error("2-bit compression not bit-exact")
	}
}
