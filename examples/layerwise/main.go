// Layerwise: per-layer analysis of one model — real compression
// statistics for each linear layer (Figure 2 / §3.1) next to the
// modelled ZipGEMM speedup on L40S (Figure 11c), including the
// small-layer slowdown the paper reports for O_proj.
package main

import (
	"fmt"
	"log"

	"zipserv"
	"zipserv/internal/gpu"
	"zipserv/internal/weights"
)

func main() {
	model, err := zipserv.ModelByName("LLaMA3.1-8B")
	if err != nil {
		log.Fatal(err)
	}
	dev, err := zipserv.GPUByName("L40S")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s, batch 32 decode, %s\n\n", model.Name, dev.Name)
	fmt.Printf("%-12s %12s %9s %9s %10s %9s\n",
		"layer", "shape", "entropy", "ratio", "coverage", "speedup")

	comp := gpu.DefaultCompression()
	for _, kind := range weights.BlockLayerKinds {
		full := model.LayerShape(kind)
		// Functional statistics on a sampled (1/16-scale) matrix.
		w := weights.SampledLayerMatrix(model, kind, 0, 16)
		cw, err := zipserv.Compress(w)
		if err != nil {
			log.Fatal(err)
		}
		h := zipserv.AnalyzeExponents(w)

		// Modelled kernel speedup on the full layer shape.
		s := gpu.Shape{M: full.M, K: full.K, N: 32}
		speedup := gpu.CuBLAS(dev, s).Total / gpu.ZipGEMM(dev, s, comp).Total

		fmt.Printf("%-12s %12s %9.2f %9.3f %9.1f%% %8.2fx\n",
			kind, fmt.Sprintf("%dx%d", full.M, full.K),
			h.Entropy(), cw.CompressionRatio(), cw.CoverageRatio()*100, speedup)
	}
	fmt.Println("\npaper (Figure 11c): GateUp 1.39x, Down 1.64x, O_proj 0.79x on L40S;")
	fmt.Println("small layers underfill the SMs without per-shape split-K tuning.")
}
