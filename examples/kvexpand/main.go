// KV expansion: demonstrate the §6.5 memory mechanism — weight
// compression frees VRAM, the paged KV-cache manager converts it into
// more resident sequences — and the §7 extension that compresses the
// KV blocks themselves with TCA-TBE, bit-exactly.
package main

import (
	"fmt"
	"log"

	"zipserv"
)

func main() {
	model, err := zipserv.ModelByName("LLaMA3.1-8B")
	if err != nil {
		log.Fatal(err)
	}
	dev, err := zipserv.GPUByName("RTX4090")
	if err != nil {
		log.Fatal(err)
	}

	// Capacity planning with dense vs compressed weights.
	fmt.Printf("device: %s (%.0f GiB), model: %s (%.2f GiB dense)\n\n",
		dev.Name, dev.VRAMGiB, model.Name, model.WeightGiB())
	for _, backend := range []zipserv.ServingBackend{zipserv.ServeVLLM, zipserv.ServeZipServ} {
		eng, err := zipserv.NewEngine(zipserv.ServingConfig{Model: model, Device: dev, Backend: backend})
		if err != nil {
			log.Fatal(err)
		}
		plan := eng.Plan()
		fmt.Printf("%-8s weights %6.2f GiB | KV %6.2f GiB = %7d tokens = %5d blocks | %3d seqs @2176 tok\n",
			backend, eng.WeightGiBPerGPU(),
			float64(plan.KVBytes)/(1<<30), plan.MaxTokens, plan.Blocks,
			eng.MaxConcurrent(2176))
	}

	// Drive the paged allocator directly: admit sequences until full.
	eng, _ := zipserv.NewEngine(zipserv.ServingConfig{Model: model, Device: dev, Backend: zipserv.ServeZipServ})
	mgr, err := zipserv.NewKVManager(zipserv.KVConfig{BlockTokens: 16, TotalBlocks: eng.Plan().Blocks})
	if err != nil {
		log.Fatal(err)
	}
	admitted := 0
	for ; ; admitted++ {
		if err := mgr.Allocate(admitted, 2176); err != nil {
			break
		}
	}
	fmt.Printf("\npaged allocator admitted %d sequences of 2176 tokens (%d/%d blocks used)\n",
		admitted, mgr.UsedBlocks(), mgr.UsedBlocks()+mgr.FreeBlocks())

	// §7 extension: compress the KV blocks themselves.
	store := zipserv.NewCompressedKVStore()
	for b := 0; b < 8; b++ {
		kv := zipserv.GaussianWeights(16, 2*model.NumKVHeads*model.HeadDim, 1.0, int64(b))
		if err := store.Put(b, kv); err != nil {
			log.Fatal(err)
		}
	}
	blk, err := store.Get(3)
	if err != nil {
		log.Fatal(err)
	}
	ref := zipserv.GaussianWeights(16, 2*model.NumKVHeads*model.HeadDim, 1.0, 3)
	fmt.Printf("compressed KV store: %d blocks at %.3fx ratio, reads bit-exact: %v\n",
		store.Len(), store.Ratio(), blk.Equal(ref))
}
