// Quickstart: compress LLM-like BF16 weights with TCA-TBE, run the
// fused ZipGEMM directly on the compressed representation, and verify
// both the round trip and the GEMM result are bit-exact.
package main

import (
	"fmt"
	"log"

	"zipserv"
)

func main() {
	// 1. LLM-like weights: zero-mean Gaussian BF16 (Appendix A of the
	// paper shows this is what makes exponents compressible).
	const m, k, n = 1024, 1024, 8
	w := zipserv.GaussianWeights(m, k, 0.02, 42)
	fmt.Printf("weights: %dx%d BF16, %d bytes dense\n", w.Rows, w.Cols, w.SizeBytes())

	// 2. Offline compression (Algorithm 1): exponent histogram →
	// contiguous 7-exponent window → triple bitmaps per 8x8 tile.
	cw, err := zipserv.Compress(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed: %d bytes (%.3fx, %.2f bits/element, window coverage %.1f%%)\n",
		cw.SizeBytes(), cw.CompressionRatio(), cw.BitsPerElement(), cw.CoverageRatio()*100)

	// 3. Bit-exact decompression.
	back, err := zipserv.Decompress(cw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round trip bit-exact: %v\n", w.Equal(back))

	// 4. Fused ZipGEMM: Y = W·X computed without ever materialising W.
	x := zipserv.NewMatrix(k, n)
	for i := range x.Data {
		x.Data[i] = zipserv.FromFloat32(float32(i%7) * 0.5)
	}
	fused, err := zipserv.ZipGEMM(cw, x)
	if err != nil {
		log.Fatal(err)
	}
	dense, err := zipserv.GEMM(w, x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ZipGEMM == dense GEMM bit-exactly: %v\n", fused.Equal(dense))
	fmt.Printf("Y[0][0] = %g\n", fused.At(0, 0))
}
