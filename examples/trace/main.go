// Trace: continuous-batching simulation — serve a Poisson request
// trace through the ZipServ and vLLM backends and compare TTFT,
// latency, peak concurrency and throughput. This is the open-loop view
// of the Figure 16 experiment: compression converts into admission
// capacity, which converts into tail latency.
package main

import (
	"fmt"
	"log"

	"zipserv"
)

func main() {
	model, err := zipserv.ModelByName("LLaMA3.1-8B")
	if err != nil {
		log.Fatal(err)
	}
	dev, err := zipserv.GPUByName("RTX4090")
	if err != nil {
		log.Fatal(err)
	}

	// 100 requests arriving at 30 req/s: prompt ~128, output ~512.
	trace := zipserv.SyntheticTrace(100, 30, 128, 512, 42)
	fmt.Printf("trace: %d requests over %.1f s (mean prompt 128, mean output 512)\n\n",
		len(trace), trace[len(trace)-1].ArrivalSeconds)
	fmt.Printf("%-10s %12s %12s %10s %10s %8s\n",
		"backend", "makespan(s)", "tput(tok/s)", "meanTTFT", "maxTTFT", "peak")

	for _, backend := range []zipserv.ServingBackend{zipserv.ServeZipServ, zipserv.ServeVLLM} {
		eng, err := zipserv.NewEngine(zipserv.ServingConfig{
			Model: model, Device: dev, Backend: backend,
		})
		if err != nil {
			log.Fatal(err)
		}
		st, _, err := eng.Serve(trace)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.2f %12.1f %9.3fs %9.3fs %8d\n",
			backend, st.MakespanSeconds, st.Throughput, st.MeanTTFT, st.MaxTTFT, st.PeakConcurrency)
	}
	fmt.Println("\nZipServ's freed weight memory admits more concurrent sequences,")
	fmt.Println("so queueing delay (TTFT) and makespan both drop under load.")
}
