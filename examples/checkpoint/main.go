// Checkpoint: compress a multi-tensor model checkpoint with TCA-TBE
// (the paper's §7 checkpointing extension), restore one tensor lazily,
// and verify everything is bit-exact — the LMC/ZipNN use case with the
// ZipServ codec.
package main

import (
	"bytes"
	"fmt"
	"log"

	"zipserv"
)

func main() {
	model, err := zipserv.ModelByName("LLaMA3.1-8B")
	if err != nil {
		log.Fatal(err)
	}

	// Build a two-layer, 1/16-scale checkpoint of the model.
	w := zipserv.NewCheckpointWriter()
	originals := map[string]*zipserv.Matrix{}
	for layer := 0; layer < 2; layer++ {
		for _, kind := range []string{"qkv", "o", "gateup", "down"} {
			name := fmt.Sprintf("layers.%d.%s", layer, kind)
			shape := shapeFor(model, kind)
			m := zipserv.GaussianWeights(shape[0]/16, shape[1]/16, 0.02, int64(layer*10+len(kind)))
			originals[name] = m
			if err := w.Add(name, m); err != nil {
				log.Fatal(err)
			}
		}
	}

	var buf bytes.Buffer
	st, err := w.Write(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d tensors, %.2f MB -> %.2f MB (%.3fx)\n",
		st.Tensors, float64(st.UncompressedSize)/1e6, float64(st.CompressedSize)/1e6, st.Ratio())

	// Load lazily: only the manifest is parsed up front.
	ck, err := zipserv.ReadCheckpoint(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("manifest:")
	for _, e := range ck.Entries() {
		fmt.Printf("  %-18s %5dx%-5d %8d bytes compressed\n", e.Name, e.Rows, e.Cols, e.BlobLen)
	}

	// Restore one tensor and verify.
	name := "layers.1.down"
	m, err := ck.Tensor(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored %s bit-exact: %v\n", name, originals[name].Equal(m))
}

func shapeFor(m zipserv.Model, kind string) [2]int {
	switch kind {
	case "qkv":
		return [2]int{(m.NumHeads + 2*m.NumKVHeads) * m.HeadDim, m.HiddenDim}
	case "o":
		return [2]int{m.HiddenDim, m.NumHeads * m.HeadDim}
	case "gateup":
		return [2]int{2 * m.IntermediateDim, m.HiddenDim}
	default: // down
		return [2]int{m.HiddenDim, m.IntermediateDim}
	}
}
