// Serving: simulate the paper's headline end-to-end scenario —
// LLaMA3.1-8B on a 24 GiB RTX4090 — under all four serving stacks of
// Figure 16, showing how ZipServ's fused kernels and freed KV memory
// turn into latency and throughput.
package main

import (
	"fmt"
	"log"

	"zipserv"
)

func main() {
	model, err := zipserv.ModelByName("LLaMA3.1-8B")
	if err != nil {
		log.Fatal(err)
	}
	dev, err := zipserv.GPUByName("RTX4090")
	if err != nil {
		log.Fatal(err)
	}

	const batch, prompt, output = 32, 128, 2048
	fmt.Printf("%s on %s: batch %d, prompt %d, output %d tokens\n\n",
		model.Name, dev.Name, batch, prompt, output)
	fmt.Printf("%-14s %10s %12s %7s %14s %12s\n",
		"backend", "latency(s)", "tok/s", "waves", "weights(GiB)", "KV(GiB)")

	var zipTput float64
	for _, backend := range []zipserv.ServingBackend{
		zipserv.ServeZipServ, zipserv.ServeVLLM, zipserv.ServeTransformers, zipserv.ServeDFloat11,
	} {
		eng, err := zipserv.NewEngine(zipserv.ServingConfig{
			Model: model, Device: dev, Backend: backend,
		})
		if err != nil {
			log.Fatal(err)
		}
		m, err := eng.Run(batch, prompt, output)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.1f %12.1f %7d %14.2f %12.2f\n",
			backend, m.TotalSeconds, m.Throughput, m.Waves, m.WeightGiB, m.KVCapacityGiB)
		if backend == zipserv.ServeZipServ {
			zipTput = m.Throughput
		} else {
			fmt.Printf("%-14s   -> ZipServ is %.2fx faster\n", "", zipTput/m.Throughput)
		}
	}
	fmt.Println("\npaper (Figure 16): ZipServ reaches 1105 tok/s here, 1.66x over vLLM;")
	fmt.Println("averages across all configs: 1.22x vLLM, 3.18x Transformers, 8.52x DFloat11.")
}
