module zipserv

go 1.22
