module zipserv

go 1.24
