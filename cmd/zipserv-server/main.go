// Command zipserv-server exposes the ZipServ serving simulator as an
// HTTP control-plane API (capacity planning, run simulation,
// trace-driven continuous batching, compression what-ifs).
//
// Usage:
//
//	zipserv-server -addr :8080
//	curl localhost:8080/v1/models
//	curl -X POST localhost:8080/v1/simulate -d '{"model":"LLaMA3.1-8B","device":"RTX4090","backend":"zipserv","batch":32,"prompt":128,"output":512}'
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"zipserv/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.NewMux(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	log.Printf("zipserv-server listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
