// Command zipserv-server exposes the ZipServ serving simulator as an
// HTTP API: the stateless control plane (capacity planning, run
// simulation, trace-driven continuous batching, compression what-ifs)
// plus a live continuous-batching data plane (POST /v1/generate with
// streaming metrics, GET /v1/stats) — one engine replica by default,
// or a sharded fleet behind a capacity-aware router with -replicas,
// under the admission policy chosen with -policy.
//
// Usage:
//
//	zipserv-server -addr :8080 -model LLaMA3.1-8B -device RTX4090
//	zipserv-server -replicas 4 -policy priority
//	zipserv-server -replicas 2 -pool prefill,decode -prefix-cache    # disaggregated pools
//	zipserv-server -prefill-chunk 256 -admit-window 5ms -time-scale 1
//	zipserv-server -prefix-cache -prefix-cache-blocks 4096
//	zipserv-server -replicas 4 -prefix-cache -affinity -affinity-load-band 8    # cache-aware routing
//	zipserv-server -replicas 4 -health -retry-budget 3                          # breakers + resurrection
//	zipserv-server -replicas 2 -health -fault-plan chaos.plan                   # scripted chaos drill
//	zipserv-server -adaptive-chunk -target-step-time 30ms -prefix-cache -adaptive-prefix-cache
//	curl localhost:8080/v1/models
//	curl -X POST localhost:8080/v1/simulate -d '{"model":"LLaMA3.1-8B","device":"RTX4090","backend":"zipserv","batch":32,"prompt":128,"output":512}'
//	curl -X POST localhost:8080/v1/generate -d '{"prompt_len":128,"output_len":64}'
//	curl -X POST localhost:8080/v1/generate -d '{"prompt_len":128,"output_len":64,"priority":"batch"}'
//	curl -X POST localhost:8080/v1/generate -d '{"prompt_len":128,"output_len":64,"ttft_deadline_ms":250,"stream":true}'
//	curl -X POST localhost:8080/v1/generate -d '{"prompt":[1,2,3,4],"output_len":64}'   # opts into prefix reuse
//	curl localhost:8080/v1/stats
//
// The server shuts down gracefully on SIGINT/SIGTERM: the listener
// stops accepting, in-flight HTTP requests get a drain window, and
// every live scheduler replica serves what it already admitted to
// completion.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"zipserv/internal/engine"
	"zipserv/internal/gpu"
	"zipserv/internal/httpapi"
	"zipserv/internal/serve"
	"zipserv/internal/weights"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelName := flag.String("model", "LLaMA3.1-8B", "live deployment: model name from the zoo")
	device := flag.String("device", "RTX4090", "live deployment: GPU model")
	gpus := flag.Int("gpus", 1, "live deployment: tensor-parallel degree per replica")
	backend := flag.String("backend", "zipserv", "live deployment: zipserv, vllm, transformers, dfloat11")
	replicas := flag.Int("replicas", 1, "live deployment: engine replicas behind the capacity-aware router")
	policyName := flag.String("policy", "fifo", "admission policy: "+strings.Join(serve.PolicyNames(), ", "))
	queueDepth := flag.Int("queue", 256, "per-replica admission queue depth (beyond it, /v1/generate returns 429); "+
		"scheduling cost is O(1) in depth, so deep queues (tens of thousands) are safe to configure")
	maxBatch := flag.Int("max-batch", 0, "per-replica cap on concurrently scheduled sequences (0 = KV capacity only)")
	prefillChunk := flag.Int("prefill-chunk", 0,
		"prompt tokens prefilled per scheduler iteration (chunked prefill; 0 = whole prompts)")
	adaptiveChunk := flag.Bool("adaptive-chunk", false,
		"derive the prefill chunk budget per iteration from the decode batch's step-time target instead of -prefill-chunk")
	targetStepTime := flag.Duration("target-step-time", 0,
		"adaptive chunking: combined prefill+decode step-time target per iteration, i.e. the TPOT SLO (0 = 50ms default)")
	admitWindow := flag.Duration("admit-window", 0,
		"micro-batch admission window: hold the first idle-arriving request this long so bursts prefill together (0 = off)")
	timeScale := flag.Float64("time-scale", 0,
		"pace the scheduler against the wall clock: sleep sim-seconds x this factor per iteration (0 = run flat out)")
	prefixCache := flag.Bool("prefix-cache", false,
		"reuse KV blocks across requests sharing a prompt prefix (requests opt in by sending \"prompt\" token arrays)")
	prefixCacheBlocks := flag.Int("prefix-cache-blocks", 0,
		"bound on refcount-zero KV blocks kept warm per replica for prefix reuse (0 = unbounded)")
	adaptivePrefixCache := flag.Bool("adaptive-prefix-cache", false,
		"resize the warm prefix-cache pool per admission epoch from hit rates and KV pressure instead of -prefix-cache-blocks")
	compressedCache := flag.Bool("compressed-cache", false,
		"store cold prefix-cache blocks TCA-TBE-compressed (freed physical blocks become capacity; claims decompress on demand)")
	affinity := flag.Bool("affinity", false,
		"prefix-affinity routing: steer requests sharing a cached prompt prefix to the replica already holding it "+
			"(needs -prefix-cache and token-array prompts; spills to least-loaded outside the load band)")
	affinityLoadBand := flag.Int("affinity-load-band", 0,
		"affinity spill bound: how many queued+active requests past the least-loaded replica the cache-preferred one may hold and still win (0 = default 8)")
	health := flag.Bool("health", false,
		"health-aware routing: per-replica breakers eject failing replicas from dispatch, half-open probes re-admit them, "+
			"and requests lost to replica deaths resurrect on the survivors (needs -replicas > 1 or disaggregated -pool roles)")
	retryBudget := flag.Int("retry-budget", 0,
		"resurrection retry budget: how many replica deaths one request may survive before failing to the client (0 = default 3; needs -health)")
	faultPlanPath := flag.String("fault-plan", "",
		"path to a deterministic fault-injection plan (docs/robustness.md DSL: crash/hang/slow/codecfail/drophandoff/stalestats "+
			"directives addressed to replicas by index, triggered on each replica's virtual clock)")
	pool := flag.String("pool", "",
		"disaggregation pool roles, comma-separated per replica in order (prefill, decode, mixed); "+
			"one value applies to every replica; any prefill/decode role routes prompts prefill→decode with compressed KV handoff")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown window")
	flag.Parse()

	model, err := weights.ByName(*modelName)
	if err != nil {
		log.Fatalf("zipserv-server: %v", err)
	}
	dev, err := gpu.ByName(*device)
	if err != nil {
		log.Fatalf("zipserv-server: %v", err)
	}
	if *replicas < 1 {
		log.Fatalf("zipserv-server: -replicas must be >= 1, got %d", *replicas)
	}
	// Pool roles: one per replica in order; a single value labels the
	// whole fleet. Any prefill/decode role turns the fleet into a
	// disaggregated pooled router.
	pools := make([]serve.PoolRole, *replicas)
	pooled := false
	if *pool != "" {
		roles := strings.Split(*pool, ",")
		if len(roles) != 1 && len(roles) != *replicas {
			log.Fatalf("zipserv-server: -pool lists %d roles for %d replicas", len(roles), *replicas)
		}
		for i := range pools {
			role := serve.PoolRole(strings.TrimSpace(roles[i%len(roles)]))
			pools[i] = role
			if role == serve.PoolPrefill || role == serve.PoolDecode {
				pooled = true
			}
		}
	}

	// A scripted fault plan is parsed up front and projected per
	// replica: each server consults only the directives addressed to
	// its own fleet index.
	var plan *serve.FaultPlan
	if *faultPlanPath != "" {
		text, err := os.ReadFile(*faultPlanPath)
		if err != nil {
			log.Fatalf("zipserv-server: -fault-plan: %v", err)
		}
		plan, err = serve.ParseFaultPlan(string(text))
		if err != nil {
			log.Fatalf("zipserv-server: -fault-plan %s: %v", *faultPlanPath, err)
		}
		if max := plan.MaxReplica(); max >= *replicas {
			log.Fatalf("zipserv-server: -fault-plan addresses replica %d, fleet has %d", max, *replicas)
		}
	}

	// Each replica gets its own engine (its own KV plan and virtual
	// clock), modelling one GPU/node; the router shards across them.
	servers := make([]*serve.Server, *replicas)
	for i := range servers {
		eng, err := engine.New(engine.Config{
			Model: model, Device: dev, NumGPUs: *gpus, Backend: engine.Backend(*backend),
		})
		if err != nil {
			log.Fatalf("zipserv-server: %v", err)
		}
		policy, err := serve.PolicyByName(*policyName)
		if err != nil {
			log.Fatalf("zipserv-server: %v", err)
		}
		srv, err := serve.New(serve.Config{
			Engine: eng, QueueDepth: *queueDepth, MaxBatch: *maxBatch, Policy: policy,
			PrefillChunkTokens: *prefillChunk, AdmissionWindow: *admitWindow, TimeScale: *timeScale,
			PrefixCache: *prefixCache, PrefixCacheBlocks: *prefixCacheBlocks,
			AdaptiveChunking: *adaptiveChunk, TargetStepTime: targetStepTime.Seconds(),
			AdaptivePrefixCache: *adaptivePrefixCache,
			CompressedCache:     *compressedCache,
			Pool:                pools[i],
			Faults:              plan.Replica(i),
		})
		if err != nil {
			log.Fatalf("zipserv-server: %v", err)
		}
		servers[i] = srv
	}
	if *affinity && !*prefixCache {
		log.Fatalf("zipserv-server: -affinity needs -prefix-cache (the routing signal is the replicas' prefix-trie digests)")
	}
	if *affinity && !pooled && *replicas == 1 {
		log.Fatalf("zipserv-server: -affinity needs -replicas > 1 or disaggregated -pool roles (one replica leaves nothing to steer between)")
	}
	if *affinityLoadBand < 0 || (*affinityLoadBand > 0 && !*affinity) {
		log.Fatalf("zipserv-server: -affinity-load-band needs -affinity and a non-negative value, got %d", *affinityLoadBand)
	}
	if *health && !pooled && *replicas == 1 {
		log.Fatalf("zipserv-server: -health needs -replicas > 1 or disaggregated -pool roles (one replica leaves nowhere to route around a failure)")
	}
	if *retryBudget < 0 || (*retryBudget > 0 && !*health) {
		log.Fatalf("zipserv-server: -retry-budget needs -health and a non-negative value, got %d", *retryBudget)
	}
	var live serve.Backend = servers[0]
	var router *serve.Router
	switch {
	case pooled:
		r, err := serve.NewPooledRouter(servers...)
		if err != nil {
			log.Fatalf("zipserv-server: %v", err)
		}
		router, live = r, r
	case *replicas > 1:
		backends := make([]serve.Backend, len(servers))
		for i, sv := range servers {
			backends[i] = sv
		}
		r, err := serve.NewRouter(backends...)
		if err != nil {
			log.Fatalf("zipserv-server: %v", err)
		}
		router, live = r, r
	}
	if *affinity {
		if err := router.EnableAffinity(serve.AffinityConfig{LoadBand: *affinityLoadBand}); err != nil {
			log.Fatalf("zipserv-server: %v", err)
		}
	}
	if *health {
		if err := router.EnableHealth(serve.HealthConfig{RetryBudget: *retryBudget}); err != nil {
			log.Fatalf("zipserv-server: %v", err)
		}
	}
	live.Start()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.NewLiveMux(live),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	chunkDesc := "whole-prompt prefill"
	if *adaptiveChunk {
		target := targetStepTime.Seconds()
		if target == 0 {
			target = serve.DefaultTargetStepTime
		}
		chunkDesc = fmt.Sprintf("adaptive prefill chunks (%.0fms step target)", target*1e3)
	} else if *prefillChunk > 0 {
		chunkDesc = fmt.Sprintf("%d-token prefill chunks", *prefillChunk)
	}
	cacheDesc := "prefix cache off"
	if *prefixCache {
		cacheDesc = "prefix cache on (unbounded)"
		switch {
		case *adaptivePrefixCache:
			cacheDesc = "prefix cache on (adaptive pool)"
		case *prefixCacheBlocks > 0:
			cacheDesc = fmt.Sprintf("prefix cache on (%d blocks)", *prefixCacheBlocks)
		}
		if *compressedCache {
			cacheDesc += ", cold blocks compressed"
		}
	}
	poolDesc := ""
	if pooled {
		poolDesc = fmt.Sprintf(", disaggregated pools [%s]", *pool)
	}
	if *affinity {
		poolDesc += ", prefix-affinity routing"
	}
	if *health {
		poolDesc += ", health-aware routing"
	}
	if plan != nil {
		poolDesc += fmt.Sprintf(", fault plan %s (%d events)", *faultPlanPath, len(plan.Events))
	}
	log.Printf("zipserv-server listening on %s (live: %d× [%s on %dx %s], %s backend, %s policy, %s, %s%s)",
		*addr, *replicas, *modelName, *gpus, *device, *backend, *policyName, chunkDesc, cacheDesc, poolDesc)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("zipserv-server: shutting down (drain %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("zipserv-server: HTTP shutdown: %v", err)
	}
	if err := live.Stop(shutdownCtx); err != nil {
		log.Printf("zipserv-server: scheduler drain: %v", err)
	}
	log.Printf("zipserv-server: bye")
}
