// Command zipserv-figures regenerates every table and figure of the
// ZipServ paper's evaluation from the reproduction's models and
// measurements.
//
// Usage:
//
//	zipserv-figures                # everything
//	zipserv-figures -fig 11        # one figure (1,2,5,11,11c,12,13,14,15,16,17,18)
//	zipserv-figures -exp 3.1       # an in-text experiment (3.1,4.2,6.4,6.5,7)
//	zipserv-figures -ablations     # the five design ablations only
//	zipserv-figures -quick         # reduced end-to-end grid for Figure 16
package main

import (
	"flag"
	"fmt"
	"os"

	"zipserv/internal/bench"
)

func main() {
	fig := flag.String("fig", "", "regenerate one figure: 1, 2, 5, 11, 11c, 12, 13, 14, 15, 16, 17, 18")
	exp := flag.String("exp", "", "regenerate one in-text experiment: 3.1, 3.2, 4.2, 6.4, 6.5, 7, 7b")
	ablations := flag.Bool("ablations", false, "regenerate only the design ablations A1-A5")
	quick := flag.Bool("quick", false, "use a reduced grid for the end-to-end Figure 16")
	device := flag.String("device", "L40S", "GPU for the Figure 11 sweep (RTX4090, L40S, RTX5090, A100, H800)")
	flag.Parse()

	figures := map[string]func() *bench.Table{
		"1":   bench.Fig01,
		"2":   bench.Fig02,
		"5":   bench.Fig05,
		"11":  func() *bench.Table { return bench.Fig11(*device) },
		"11c": bench.Fig11c,
		"12":  bench.Fig12,
		"13":  bench.Fig13,
		"14":  bench.Fig14,
		"15":  bench.Fig15,
		"16":  func() *bench.Table { return bench.Fig16(*quick) },
		"17":  bench.Fig17,
		"18":  bench.Fig18,
	}
	experiments := map[string]func() *bench.Table{
		"3.1": bench.E31,
		"3.2": bench.E32Divergence,
		"4.2": bench.E42,
		"6.4": bench.E64,
		"6.5": bench.E65,
		"7":   bench.E7,
		"7b":  bench.E7b,
	}

	switch {
	case *fig != "":
		f, ok := figures[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "zipserv-figures: unknown figure %q\n", *fig)
			os.Exit(2)
		}
		fmt.Println(f())
	case *exp != "":
		f, ok := experiments[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "zipserv-figures: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		fmt.Println(f())
	case *ablations:
		for _, t := range bench.Ablations() {
			fmt.Println(t)
		}
	default:
		order := []string{"1", "2", "5", "11", "11c", "12", "13", "14", "15", "16", "17", "18"}
		for _, k := range order {
			fmt.Println(figures[k]())
		}
		for _, k := range []string{"3.1", "3.2", "4.2", "6.4", "6.5", "7", "7b"} {
			fmt.Println(experiments[k]())
		}
		for _, t := range bench.Ablations() {
			fmt.Println(t)
		}
	}
}
