package main

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"zipserv"
)

func TestDemoCompressAndDecompressRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ztbe := filepath.Join(dir, "demo.ztbe")
	raw := filepath.Join(dir, "demo.bin")

	if err := run("", ztbe, 128, 192, false, true, 0.02); err != nil {
		t.Fatalf("demo compress: %v", err)
	}
	if fi, err := os.Stat(ztbe); err != nil || fi.Size() == 0 {
		t.Fatalf("no output written: %v", err)
	}
	if err := run(ztbe, raw, 0, 0, true, false, 0); err != nil {
		t.Fatalf("decompress: %v", err)
	}

	// The raw output must equal the generator's matrix bit-for-bit.
	want := zipserv.GaussianWeights(128, 192, 0.02, 1)
	data, err := os.ReadFile(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != want.SizeBytes() {
		t.Fatalf("raw output %d bytes, want %d", len(data), want.SizeBytes())
	}
	for i, w := range want.Data {
		if binary.LittleEndian.Uint16(data[2*i:]) != w.Bits() {
			t.Fatalf("raw output differs at element %d", i)
		}
	}
}

func TestCompressRawFile(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "in.bin")
	out := filepath.Join(dir, "out.ztbe")

	m := zipserv.GaussianWeights(64, 64, 0.02, 7)
	buf := make([]byte, m.SizeBytes())
	for i, w := range m.Data {
		binary.LittleEndian.PutUint16(buf[2*i:], w.Bits())
	}
	if err := os.WriteFile(raw, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(raw, out, 64, 64, false, false, 0); err != nil {
		t.Fatalf("compress raw: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cm, err := zipserv.ReadCompressed(f)
	if err != nil {
		t.Fatal(err)
	}
	back, err := zipserv.Decompress(cm)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Error("compressed file does not round-trip")
	}
}

func TestRunValidation(t *testing.T) {
	dir := t.TempDir()
	if err := run("", "", 0, 0, false, true, 0.02); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run("", filepath.Join(dir, "x"), 0, 0, true, false, 0); err == nil {
		t.Error("decompress without -in accepted")
	}
	if err := run("", filepath.Join(dir, "x"), 0, 0, false, false, 0); err == nil {
		t.Error("compress without input spec accepted")
	}
	if err := run(filepath.Join(dir, "missing.bin"), filepath.Join(dir, "x"), 4, 4, false, false, 0); err == nil {
		t.Error("missing input file accepted")
	}
	// Wrong size raw file.
	raw := filepath.Join(dir, "short.bin")
	if err := os.WriteFile(raw, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(raw, filepath.Join(dir, "x"), 64, 64, false, false, 0); err == nil {
		t.Error("short raw file accepted")
	}
}
