// Command zipserv-compress is the offline TCA-TBE compressor CLI: it
// converts raw BF16 weight files (little-endian uint16 stream) to and
// from the .ztbe format, the checkpoint-compression utility of the
// paper's §7. With -demo it generates a synthetic layer instead of
// reading a file, so the tool runs without any model download.
//
// Usage:
//
//	zipserv-compress -in weights.bin -rows 4096 -cols 4096 -out weights.ztbe
//	zipserv-compress -decompress -in weights.ztbe -out weights.bin
//	zipserv-compress -demo -rows 4096 -cols 4096 -out demo.ztbe
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"time"

	"zipserv"
)

func main() {
	in := flag.String("in", "", "input file (raw BF16 or .ztbe with -decompress)")
	out := flag.String("out", "", "output file")
	rows := flag.Int("rows", 0, "matrix rows (raw input)")
	cols := flag.Int("cols", 0, "matrix cols (raw input)")
	decompress := flag.Bool("decompress", false, "decompress a .ztbe file back to raw BF16")
	demo := flag.Bool("demo", false, "compress a synthetic Gaussian layer instead of reading -in")
	sigma := flag.Float64("sigma", 0.02, "weight sigma for -demo")
	flag.Parse()

	if err := run(*in, *out, *rows, *cols, *decompress, *demo, *sigma); err != nil {
		fmt.Fprintln(os.Stderr, "zipserv-compress:", err)
		os.Exit(1)
	}
}

func run(in, out string, rows, cols int, decompress, demo bool, sigma float64) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	switch {
	case decompress:
		if in == "" {
			return fmt.Errorf("-in is required with -decompress")
		}
		return decompressFile(in, out)
	case demo:
		if rows <= 0 || cols <= 0 {
			rows, cols = 4096, 4096
		}
		m := zipserv.GaussianWeights(rows, cols, sigma, 1)
		return compressMatrix(m, out)
	default:
		if in == "" || rows <= 0 || cols <= 0 {
			return fmt.Errorf("-in, -rows and -cols are required (or use -demo)")
		}
		m, err := readRawBF16(in, rows, cols)
		if err != nil {
			return err
		}
		return compressMatrix(m, out)
	}
}

func compressMatrix(m *zipserv.Matrix, out string) error {
	start := time.Now()
	cm, err := zipserv.Compress(m)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := zipserv.WriteCompressed(f, cm); err != nil {
		return err
	}
	fmt.Printf("compressed %dx%d: %d -> %d bytes (%.3fx, %.2f bits/elem) in %v\n",
		m.Rows, m.Cols, m.SizeBytes(), cm.SizeBytes(), cm.CompressionRatio(),
		cm.BitsPerElement(), elapsed.Round(time.Millisecond))
	fmt.Printf("window coverage %.2f%%, base exponent %d\n", cm.CoverageRatio()*100, cm.BaseExp)
	return f.Sync()
}

func decompressFile(in, out string) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	cm, err := zipserv.ReadCompressed(f)
	if err != nil {
		return err
	}
	m, err := zipserv.Decompress(cm)
	if err != nil {
		return err
	}
	o, err := os.Create(out)
	if err != nil {
		return err
	}
	defer o.Close()
	buf := make([]byte, 2*len(m.Data))
	for i, w := range m.Data {
		binary.LittleEndian.PutUint16(buf[2*i:], w.Bits())
	}
	if _, err := o.Write(buf); err != nil {
		return err
	}
	fmt.Printf("decompressed to %dx%d raw BF16 (%d bytes), bit-exact\n", m.Rows, m.Cols, len(buf))
	return o.Sync()
}

func readRawBF16(path string, rows, cols int) (*zipserv.Matrix, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) != 2*rows*cols {
		return nil, fmt.Errorf("%s holds %d bytes, want %d for %dx%d BF16", path, len(data), 2*rows*cols, rows, cols)
	}
	m := zipserv.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = zipserv.BF16(binary.LittleEndian.Uint16(data[2*i:]))
	}
	return m, nil
}
