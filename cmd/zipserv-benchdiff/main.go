// Command zipserv-benchdiff maintains the repo's benchmark trajectory
// (the BENCH_<pr>.json snapshots at the repo root): it parses a fresh
// `go test -bench -benchmem` run, folds in the compare-mode CSV
// exports, writes the new snapshot, and diffs it against the previous
// checked-in one.
//
// ns/op changes only warn — CI runners and developer machines differ
// too much for wall time to gate — but allocs/op is deterministic
// enough to enforce: benchmarks named with -gate-allocs fail the run
// (exit 1) when their allocs/op regress more than -fail-allocs-pct
// over the baseline, which is how the scheduler hot path's
// allocation-lean discipline stays locked in. -require-zero-allocs is
// the stricter absolute gate for paths whose contract is zero
// steady-state allocation (the bitmap-scoreboard scheduler core): any
// allocs/op > 0 fails, baseline or not, and a name matches itself or
// any of its sub-benchmarks.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem ./... | tee bench.txt
//	zipserv-benchdiff -bench bench.txt -baseline BENCH_5.json -out BENCH_5.json \
//	    -csv adaptive=compare-adaptive.csv -warn-ns-pct 15 \
//	    -gate-allocs BenchmarkStepperDecodeHeavy -fail-allocs-pct 20
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"zipserv/internal/benchfmt"
)

// csvFlags collects repeated -csv section=path arguments.
type csvFlags map[string]string

func (c csvFlags) String() string { return fmt.Sprint(map[string]string(c)) }

func (c csvFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want section=path, got %q", v)
	}
	c[name] = path
	return nil
}

func main() {
	benchPath := flag.String("bench", "", "path to `go test -bench -benchmem` output (required)")
	baselinePath := flag.String("baseline", "", "previous BENCH_<pr>.json snapshot to diff against (optional)")
	outPath := flag.String("out", "", "write the new snapshot JSON here (optional)")
	commit := flag.String("commit", "", "commit id recorded in the snapshot")
	warnNsPct := flag.Float64("warn-ns-pct", 15, "warn when a benchmark's ns/op regresses more than this percentage")
	failAllocsPct := flag.Float64("fail-allocs-pct", 20, "fail when a gated benchmark's allocs/op regresses more than this percentage")
	gateAllocs := flag.String("gate-allocs", "", "comma-separated benchmark names whose allocs/op regressions fail the run")
	zeroAllocs := flag.String("require-zero-allocs", "", "comma-separated benchmark names (sub-benchmarks included) that must report exactly 0 allocs/op")
	flag.Parse()

	if err := run(*benchPath, *baselinePath, *outPath, *commit, *warnNsPct, *failAllocsPct, *gateAllocs, *zeroAllocs); err != nil {
		fmt.Fprintln(os.Stderr, "zipserv-benchdiff:", err)
		os.Exit(1)
	}
}

func run(benchPath, baselinePath, outPath, commit string, warnNsPct, failAllocsPct float64, gateAllocs, zeroAllocs string) error {
	if benchPath == "" {
		return fmt.Errorf("-bench is required")
	}
	bf, err := os.Open(benchPath)
	if err != nil {
		return err
	}
	results, err := benchfmt.Parse(bf)
	bf.Close()
	if err != nil {
		return err
	}

	snap := benchfmt.Snapshot{Commit: commit, Benchmarks: results}
	for name, path := range csvSections() {
		cf, err := os.Open(path)
		if err != nil {
			return err
		}
		rows, err := benchfmt.ParseCompareCSV(cf)
		cf.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if snap.Compares == nil {
			snap.Compares = map[string][]map[string]string{}
		}
		snap.Compares[name] = rows
	}

	var failed bool
	// The absolute zero-allocation gate runs against the fresh results
	// alone — it must hold on the very first run that introduces a
	// benchmark, before any baseline exists to diff against.
	for _, g := range strings.Split(zeroAllocs, ",") {
		if g = strings.TrimSpace(g); g == "" {
			continue
		}
		matched := false
		for _, r := range results {
			if r.Name != g && !strings.HasPrefix(r.Name, g+"/") {
				continue
			}
			matched = true
			switch {
			case r.AllocsPerOp < 0:
				fmt.Printf("::error::%s requires 0 allocs/op but lacks allocs data (run with -benchmem)\n", r.Name)
				failed = true
			case r.AllocsPerOp > 0:
				fmt.Printf("::error::%s reports %d allocs/op, want exactly 0 on this hot path\n", r.Name, r.AllocsPerOp)
				failed = true
			}
		}
		if !matched {
			fmt.Printf("::error::zero-alloc-gated benchmark %s missing from the run\n", g)
			failed = true
		}
	}
	if baselinePath != "" {
		base, err := loadBaseline(baselinePath)
		if err != nil {
			return err
		}
		gated := map[string]bool{}
		for _, g := range strings.Split(gateAllocs, ",") {
			if g = strings.TrimSpace(g); g != "" {
				gated[g] = true
			}
		}
		fmt.Printf("%-44s %14s %14s %10s %10s\n", "benchmark", "ns/op old", "ns/op new", "ns Δ%", "allocs Δ%")
		for _, d := range benchfmt.Compare(base.Benchmarks, results) {
			nsPct, allocPct := d.NsChangePct(), d.AllocsChangePct()
			fmt.Printf("%-44s %14.0f %14.0f %+9.1f%% %+9.1f%%\n", d.Name, d.OldNs, d.NewNs, nsPct, allocPct)
			if nsPct > warnNsPct {
				fmt.Printf("::warning::%s ns/op regressed %.1f%% (%.0f -> %.0f) vs %s\n",
					d.Name, nsPct, d.OldNs, d.NewNs, baselinePath)
			}
			if gated[d.Name] {
				switch {
				case d.OldAllocs < 0 || d.NewAllocs < 0:
					// A gate with no data must fail loudly, or dropping
					// -benchmem from the bench step would silently disarm
					// the allocation gate CI exists to enforce.
					fmt.Printf("::error::%s is allocation-gated but lacks allocs/op data (run with -benchmem)\n", d.Name)
					failed = true
				case d.OldAllocs == 0 && d.NewAllocs > 0:
					fmt.Printf("::error::%s allocs/op regressed from 0 to %d\n", d.Name, d.NewAllocs)
					failed = true
				case allocPct > failAllocsPct:
					fmt.Printf("::error::%s allocs/op regressed %.1f%% (%d -> %d), over the %.0f%% gate\n",
						d.Name, allocPct, d.OldAllocs, d.NewAllocs, failAllocsPct)
					failed = true
				}
			}
		}
		for g := range gated {
			if !has(results, g) {
				fmt.Printf("::error::gated benchmark %s missing from the new run\n", g)
				failed = true
			} else if !has(base.Benchmarks, g) {
				fmt.Printf("::warning::gated benchmark %s has no baseline yet\n", g)
			}
		}
	}

	if outPath != "" {
		of, err := os.Create(outPath)
		if err != nil {
			return err
		}
		err = benchfmt.EncodeSnapshot(of, snap)
		if cerr := of.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d benchmarks, %d compare sections)\n", outPath, len(snap.Benchmarks), len(snap.Compares))
	}
	if failed {
		return fmt.Errorf("allocation gate failed")
	}
	return nil
}

func loadBaseline(path string) (benchfmt.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return benchfmt.Snapshot{}, err
	}
	defer f.Close()
	return benchfmt.DecodeSnapshot(f)
}

func has(results []benchfmt.Result, name string) bool {
	for _, r := range results {
		if r.Name == name {
			return true
		}
	}
	return false
}

// csvArgs is populated by the repeated -csv flag.
var csvArgs = csvFlags{}

func csvSections() map[string]string { return csvArgs }

func init() {
	flag.Var(csvArgs, "csv", "compare-mode CSV to fold into the snapshot, as section=path (repeatable)")
}
