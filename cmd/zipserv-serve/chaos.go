package main

import (
	"context"
	"fmt"
	"strings"
	"time"

	"zipserv"
)

// chaosPlanText is the scripted failure scenario -compare-chaos drives:
// one replica crashes mid-run on its own virtual clock, another limps
// through the whole run at a 6x step-time dilation. Every trigger is a
// pure function of replica-local virtual time, so replaying the plan
// against the same workload reproduces the same failure schedule.
const chaosPlanText = `seed 42
slow replica=2 at=0 factor=6
crash replica=1 at=0.5
`

// runCompareChaos replays one deterministic workload through a
// 3-replica fleet under the scripted fault plan above, three times:
// twice with health-aware routing on (breakers + resurrection, the
// replay pair that must produce byte-identical outcome schedules) and
// once with it off. Requests are all submitted before the fleet starts
// — dispatch then depends only on deterministic queue depths, so each
// replica's queue, and therefore the crash's victim set, is identical
// on every replay.
//
// With requireWin it exits non-zero unless resilience-on completed the
// whole request set with zero client-visible failures and at least one
// resurrection, resilience-off lost requests to the same plan, and the
// two resilience-on replays agree byte-for-byte — the CI chaos gate.
// n (-requests) sizes the workload; -rate, -prompt, -out and -seed do
// not apply.
func runCompareChaos(modelName, device string, gpus int, backend string, n int, csvPath string, requireWin bool) error {
	model, err := zipserv.ModelByName(modelName)
	if err != nil {
		return err
	}
	dev, err := zipserv.GPUByName(device)
	if err != nil {
		return err
	}
	if n <= 0 {
		return fmt.Errorf("invalid workload parameters")
	}
	plan, err := zipserv.ParseLiveFaultPlan(chaosPlanText)
	if err != nil {
		return err
	}

	const fleetSize = 3
	reqs := make([]zipserv.LiveRequest, n)
	for i := range reqs {
		reqs[i] = zipserv.LiveRequest{
			PromptLen: 256 + (i%4)*64,
			OutputLen: 32 + (i%3)*16,
		}
	}

	type outcome struct {
		stats    zipserv.LiveStats
		schedule string // index promptLen outputLen outcome resurrected, one line per request
	}
	runFleet := func(resilient bool) (outcome, error) {
		var out outcome
		backends := make([]zipserv.LiveBackend, fleetSize)
		for i := range backends {
			eng, err := zipserv.NewEngine(zipserv.ServingConfig{
				Model: model, Device: dev, NumGPUs: gpus, Backend: zipserv.ServingBackend(backend),
			})
			if err != nil {
				return out, err
			}
			srv, err := zipserv.NewLiveServer(zipserv.LiveConfig{
				Engine: eng, QueueDepth: n, Faults: plan.Replica(i),
			})
			if err != nil {
				return out, err
			}
			backends[i] = srv
		}
		router, err := zipserv.NewLiveRouter(backends...)
		if err != nil {
			return out, err
		}
		if resilient {
			if err := router.EnableHealth(zipserv.LiveHealthConfig{RetryBudget: 3}); err != nil {
				return out, err
			}
		}
		// Submit everything before the fleet starts: with no scheduler
		// running, the router's load ranking sees only deterministic
		// queue depths, so every replay deals the same hands.
		tickets := make([]*zipserv.LiveTicket, n)
		for i := range reqs {
			if tickets[i], err = router.Submit(reqs[i]); err != nil {
				return out, err
			}
		}
		router.Start()
		var sched strings.Builder
		for i, tk := range tickets {
			res := <-tk.Result()
			verdict := "ok"
			if res.Err != nil {
				verdict = "failed"
			}
			fmt.Fprintf(&sched, "%d %d %d %s %d\n",
				i, reqs[i].PromptLen, reqs[i].OutputLen, verdict, res.Resurrected)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		// The crashed replica's Stop is immediate; the survivors drain.
		if err := router.Stop(ctx); err != nil {
			return out, err
		}
		out.stats = router.Stats()
		out.schedule = sched.String()
		return out, nil
	}

	resilientA, err := runFleet(true)
	if err != nil {
		return err
	}
	resilientB, err := runFleet(true)
	if err != nil {
		return err
	}
	fragile, err := runFleet(false)
	if err != nil {
		return err
	}

	fmt.Printf("chaos drill: %d requests, %d replicas (%s on %dx %s, %s), plan:\n", n, fleetSize, modelName, gpus, device, backend)
	for _, line := range strings.Split(strings.TrimSpace(chaosPlanText), "\n") {
		fmt.Printf("    %s\n", line)
	}
	fmt.Printf("\n%-14s %10s %8s %6s %14s %10s %16s\n",
		"routing", "completed", "failed", "lost", "resurrections", "ejections", "retry exhausted")
	csv := newCSVTable("routing", "completed", "failed", "lost_requests",
		"resurrections", "ejections", "retry_exhausted", "replay_identical")
	replayIdentical := resilientA.schedule == resilientB.schedule
	for _, r := range []struct {
		mode string
		out  outcome
	}{{"resilient", resilientA}, {"fragile", fragile}} {
		st := r.out.stats
		fmt.Printf("%-14s %10d %8d %6d %14d %10d %16d\n",
			r.mode, st.Completed, st.Failed, st.LostRequests, st.Resurrections, st.Ejections, st.RetryExhausted)
		csv.add(r.mode, fmt.Sprintf("%d", st.Completed), fmt.Sprintf("%d", st.Failed),
			fmt.Sprintf("%d", st.LostRequests), fmt.Sprintf("%d", st.Resurrections),
			fmt.Sprintf("%d", st.Ejections), fmt.Sprintf("%d", st.RetryExhausted),
			fmt.Sprintf("%t", replayIdentical))
	}
	on, off := resilientA.stats, fragile.stats
	fmt.Printf("\nresilient fleet: %d/%d completed, %d resurrected; fragile fleet lost %d; replay identical: %t\n",
		on.Completed, n, on.Resurrections, off.LostRequests, replayIdentical)
	if err := csv.write(csvPath); err != nil {
		return err
	}

	gate := newWinGate(requireWin)
	gate.require(on.Completed == int64(n) && on.Failed == 0,
		"resilient fleet completed %d/%d with %d failures; want everything, zero client-visible failures", on.Completed, n, on.Failed)
	gate.require(on.Resurrections >= 1,
		"resilient fleet resurrected %d requests; the crash must actually bite", on.Resurrections)
	gate.require(off.LostRequests >= 1 && off.Failed >= 1,
		"fragile fleet lost %d / failed %d; the plan must cost an unprotected fleet requests", off.LostRequests, off.Failed)
	gate.require(on.Completed+off.Failed >= int64(n),
		"fragile fleet completed %d and failed %d of %d", off.Completed, off.Failed, n)
	gate.require(replayIdentical,
		"two resilience-on replays diverged:\n--- first ---\n%s--- second ---\n%s", resilientA.schedule, resilientB.schedule)
	return gate.result()
}
