package main

import (
	"fmt"
	"os"
	"strings"
)

// csvTable accumulates one compare-mode result table for the -csv
// export every comparison mode shares (-compare-policies,
// -compare-chunking, -compare-prefix, -compare-compress,
// -compare-adaptive, -compare-disagg): one header, one row per
// configuration, written in a single place instead of each mode
// hand-rolling its own writer.
type csvTable struct {
	columns []string
	rows    [][]string
}

func newCSVTable(columns ...string) *csvTable {
	return &csvTable{columns: columns}
}

// add appends one row; the cell count must match the header.
func (t *csvTable) add(cells ...string) {
	if len(cells) != len(t.columns) {
		panic(fmt.Sprintf("csv row has %d cells for %d columns", len(cells), len(t.columns)))
	}
	t.rows = append(t.rows, cells)
}

// write exports the table to path; a no-op when path is empty so
// callers pass the -csv flag through unconditionally. The comparison
// values are plain numbers and identifiers, so no quoting is needed.
func (t *csvTable) write(path string) error {
	if path == "" {
		return nil
	}
	var b strings.Builder
	b.WriteString(strings.Join(t.columns, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// winGate is the shared CI perf-regression gate every -require-*-win
// flag funnels through. Each compare mode states its requirements in
// order; when the gate is armed, the first violated requirement fails
// the run with a uniform "perf regression" error, so the modes cannot
// drift apart on gating semantics. Disarmed, every requirement is a
// no-op and the comparison is informational.
type winGate struct {
	armed bool
	err   error
}

func newWinGate(armed bool) *winGate { return &winGate{armed: armed} }

// require records a violation when the gate is armed and cond is false.
// The first violation wins; later requirements are still cheap to
// state but change nothing.
func (g *winGate) require(cond bool, format string, args ...any) {
	if g.armed && g.err == nil && !cond {
		g.err = fmt.Errorf("perf regression: "+format, args...)
	}
}

// result returns the first recorded violation, if any.
func (g *winGate) result() error { return g.err }
