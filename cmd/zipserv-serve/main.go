// Command zipserv-serve runs the end-to-end serving simulation (§6.5)
// for one deployment and prints latency, throughput and the memory
// plan, optionally comparing all four serving backends.
//
// With -live it instead replays a synthetic Poisson trace through the
// live continuous-batching scheduler (internal/serve) and through the
// offline static-batch path, and reports the goodput gain of
// iteration-level scheduling with token-packed prefill.
//
// With -compare-policies it replays one mixed interactive/batch trace
// through the live scheduler under each admission policy (fifo,
// priority, slo) and reports per-class TTFT percentiles — the
// scheduling win of class- and deadline-aware admission over FIFO
// head-of-line blocking.
//
// With -compare-chunking it replays one trace that mixes long prompts
// into a stream of short decoders under each prefill chunk budget
// (monolithic, 64, 256, 1024 tokens) and reports decode TPOT p50/p99
// and the worst inter-token stall — the cadence win of chunked
// prefill. -csv additionally writes the table as CSV.
//
// Usage:
//
//	zipserv-serve -model LLaMA3.1-8B -device RTX4090 -batch 32 -out 2048
//	zipserv-serve -model LLaMA3.1-70B -device L40S -gpus 4 -compare
//	zipserv-serve -model LLaMA3.1-8B -device RTX4090 -live -requests 64 -rate 100
//	zipserv-serve -model LLaMA3.1-8B -device RTX4090 -compare-policies -requests 64
//	zipserv-serve -model LLaMA3.1-8B -device RTX4090 -compare-chunking -requests 40 -csv chunking.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"zipserv"
)

func main() {
	model := flag.String("model", "LLaMA3.1-8B", "model name from the zoo")
	device := flag.String("device", "RTX4090", "GPU model")
	gpus := flag.Int("gpus", 1, "tensor-parallel degree")
	backend := flag.String("backend", "zipserv", "serving backend: zipserv, vllm, transformers, dfloat11")
	batch := flag.Int("batch", 32, "request batch size")
	prompt := flag.Int("prompt", 128, "prompt length in tokens")
	out := flag.Int("out", 512, "output length in tokens")
	compare := flag.Bool("compare", false, "run all four backends and compare")
	live := flag.Bool("live", false, "replay a synthetic trace through the live continuous-batching scheduler")
	comparePolicies := flag.Bool("compare-policies", false,
		"replay a mixed interactive/batch trace under each admission policy and compare per-class TTFT")
	compareChunking := flag.Bool("compare-chunking", false,
		"replay a long-prompt/decoder mix under each prefill chunk budget and compare decode TPOT p50/p99")
	csvPath := flag.String("csv", "", "compare-chunking: also write the comparison as CSV to this path")
	requests := flag.Int("requests", 64, "live mode: number of trace requests")
	rate := flag.Float64("rate", 100, "live mode: Poisson arrival rate (req/s)")
	seed := flag.Int64("seed", 7, "live mode: trace seed")
	flag.Parse()

	var err error
	switch {
	case *compareChunking:
		err = runCompareChunking(*model, *device, *gpus, *backend, *requests, *rate, *prompt, *out, *seed, *csvPath)
	case *comparePolicies:
		err = runComparePolicies(*model, *device, *gpus, *backend, *requests, *rate, *prompt, *out, *seed)
	case *live:
		err = runLive(*model, *device, *gpus, *backend, *requests, *rate, *prompt, *out, *seed)
	default:
		err = run(*model, *device, *gpus, *backend, *batch, *prompt, *out, *compare)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zipserv-serve:", err)
		os.Exit(1)
	}
}

func run(modelName, device string, gpus int, backend string, batch, prompt, out int, compare bool) error {
	model, err := zipserv.ModelByName(modelName)
	if err != nil {
		return err
	}
	dev, err := zipserv.GPUByName(device)
	if err != nil {
		return err
	}
	backends := []zipserv.ServingBackend{zipserv.ServingBackend(backend)}
	if compare {
		backends = []zipserv.ServingBackend{
			zipserv.ServeZipServ, zipserv.ServeVLLM, zipserv.ServeTransformers, zipserv.ServeDFloat11,
		}
	}

	fmt.Printf("deployment: %s on %dx %s, batch %d, prompt %d, output %d\n\n",
		modelName, gpus, device, batch, prompt, out)
	fmt.Printf("%-14s %12s %14s %10s %8s %12s %12s\n",
		"backend", "latency(s)", "tput(tok/s)", "waves", "conc", "weights(GiB)", "KV cap(GiB)")
	var base float64
	for _, b := range backends {
		eng, err := zipserv.NewEngine(zipserv.ServingConfig{
			Model: model, Device: dev, NumGPUs: gpus, Backend: b,
		})
		if err != nil {
			fmt.Printf("%-14s does not fit: %v\n", b, err)
			continue
		}
		m, err := eng.Run(batch, prompt, out)
		if err != nil {
			fmt.Printf("%-14s failed: %v\n", b, err)
			continue
		}
		fmt.Printf("%-14s %12.2f %14.1f %10d %8d %12.2f %12.2f\n",
			b, m.TotalSeconds, m.Throughput, m.Waves, m.MaxConcurrent, m.WeightGiB, m.KVCapacityGiB)
		if b == zipserv.ServeZipServ {
			base = m.Throughput
		} else if compare && base > 0 {
			fmt.Printf("%-14s   (ZipServ speedup: %.2fx)\n", "", base/m.Throughput)
		}
	}
	return nil
}

// runLive replays one synthetic trace twice — through the live
// continuous-batching scheduler and through the offline static-batch
// path — and prints the goodput comparison.
func runLive(modelName, device string, gpus int, backend string, n int, rate float64, prompt, out int, seed int64) error {
	model, err := zipserv.ModelByName(modelName)
	if err != nil {
		return err
	}
	dev, err := zipserv.GPUByName(device)
	if err != nil {
		return err
	}
	eng, err := zipserv.NewEngine(zipserv.ServingConfig{
		Model: model, Device: dev, NumGPUs: gpus, Backend: zipserv.ServingBackend(backend),
	})
	if err != nil {
		return err
	}
	trace := zipserv.SyntheticTrace(n, rate, prompt, out, seed)
	if trace == nil {
		return fmt.Errorf("invalid trace parameters")
	}

	offline, _, err := eng.Serve(trace)
	if err != nil {
		return err
	}

	srv, err := zipserv.NewLiveServer(zipserv.LiveConfig{Engine: eng, QueueDepth: len(trace)})
	if err != nil {
		return err
	}
	tickets := make([]*zipserv.LiveTicket, len(trace))
	for i, r := range trace {
		tk, err := srv.Submit(zipserv.LiveRequest{
			PromptLen: r.PromptLen, OutputLen: r.OutputLen, Arrival: r.ArrivalSeconds,
		})
		if err != nil {
			return err
		}
		tickets[i] = tk
	}
	srv.Start()
	for _, tk := range tickets {
		if res := <-tk.Result(); res.Err != nil {
			return res.Err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Stop(ctx); err != nil {
		return err
	}
	st := srv.Stats()

	liveGoodput := float64(st.Completed) / st.SimSeconds
	offGoodput := float64(offline.Requests) / offline.MakespanSeconds
	fmt.Printf("trace: %d requests, %.0f req/s Poisson, prompt~%d, output~%d (%s on %dx %s, %s)\n\n",
		n, rate, prompt, out, modelName, gpus, device, backend)
	fmt.Printf("%-26s %14s %14s %12s %12s\n", "scheduler", "makespan(s)", "goodput(r/s)", "meanTTFT(s)", "peak conc")
	fmt.Printf("%-26s %14.2f %14.2f %12.3f %12d\n",
		"offline static-batch", offline.MakespanSeconds, offGoodput, offline.MeanTTFT, offline.PeakConcurrency)
	fmt.Printf("%-26s %14.2f %14.2f %12.3f %12d\n",
		"live continuous-batching", st.SimSeconds, liveGoodput, st.MeanTTFT, st.PeakConcurrency)
	fmt.Printf("\nlive goodput gain: %.2fx\n", liveGoodput/offGoodput)
	return nil
}

// runComparePolicies replays one mixed trace — alternating interactive
// requests (the flag lengths, a 250 ms TTFT deadline) and batch
// requests (8× longer, no deadline) — through the live scheduler under
// each admission policy, and prints per-class TTFT percentiles.
func runComparePolicies(modelName, device string, gpus int, backend string, n int, rate float64, prompt, out int, seed int64) error {
	model, err := zipserv.ModelByName(modelName)
	if err != nil {
		return err
	}
	dev, err := zipserv.GPUByName(device)
	if err != nil {
		return err
	}
	base := zipserv.SyntheticTrace(n, rate, prompt, out, seed)
	if base == nil {
		return fmt.Errorf("invalid trace parameters")
	}
	reqs := make([]zipserv.LiveRequest, len(base))
	for i, r := range base {
		reqs[i] = zipserv.LiveRequest{
			PromptLen: prompt, OutputLen: out, Arrival: r.ArrivalSeconds,
			Class: zipserv.LiveClassInteractive, TTFTDeadline: 0.25,
		}
		if i%2 == 1 {
			reqs[i] = zipserv.LiveRequest{
				PromptLen: 8 * prompt, OutputLen: 8 * out, Arrival: r.ArrivalSeconds,
				Class: zipserv.LiveClassBatch,
			}
		}
	}

	fmt.Printf("mixed trace: %d requests, %.0f req/s Poisson, interactive %d/%d vs batch %d/%d (%s on %dx %s, %s)\n\n",
		n, rate, prompt, out, 8*prompt, 8*out, modelName, gpus, device, backend)
	fmt.Printf("%-10s %16s %16s %16s %14s %10s\n",
		"policy", "int p50 TTFT(s)", "int p95 TTFT(s)", "bat p50 TTFT(s)", "goodput(r/s)", "preempted")
	for _, name := range zipserv.LivePolicyNames() {
		policy, err := zipserv.LivePolicyByName(name)
		if err != nil {
			return err
		}
		eng, err := zipserv.NewEngine(zipserv.ServingConfig{
			Model: model, Device: dev, NumGPUs: gpus, Backend: zipserv.ServingBackend(backend),
		})
		if err != nil {
			return err
		}
		srv, err := zipserv.NewLiveServer(zipserv.LiveConfig{
			Engine: eng, QueueDepth: len(reqs), Policy: policy,
		})
		if err != nil {
			return err
		}
		tickets := make([]*zipserv.LiveTicket, len(reqs))
		for i, r := range reqs {
			if tickets[i], err = srv.Submit(r); err != nil {
				return err
			}
		}
		srv.Start()
		var intTTFT, batTTFT []float64
		for i, tk := range tickets {
			res := <-tk.Result()
			if res.Err != nil {
				return res.Err
			}
			if reqs[i].Class == zipserv.LiveClassBatch {
				batTTFT = append(batTTFT, res.TTFT)
			} else {
				intTTFT = append(intTTFT, res.TTFT)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err = srv.Stop(ctx)
		cancel()
		if err != nil {
			return err
		}
		st := srv.Stats()
		fmt.Printf("%-10s %16.3f %16.3f %16.3f %14.2f %10d\n",
			name, percentile(intTTFT, 0.50), percentile(intTTFT, 0.95),
			percentile(batTTFT, 0.50), st.Goodput, st.Preempted)
	}
	return nil
}

// runCompareChunking replays one trace — mostly short decoders at the
// flag lengths, with every fifth request a 16×-long prompt — through
// the live scheduler under each prefill chunk budget, and prints the
// decode TPOT percentiles across the short requests plus the worst
// inter-token stall. Monolithic prefill lets every long prompt wedge a
// full-prompt stall between decode steps; the chunk budgets bound it.
func runCompareChunking(modelName, device string, gpus int, backend string, n int, rate float64, prompt, out int, seed int64, csvPath string) error {
	model, err := zipserv.ModelByName(modelName)
	if err != nil {
		return err
	}
	dev, err := zipserv.GPUByName(device)
	if err != nil {
		return err
	}
	base := zipserv.SyntheticTrace(n, rate, prompt, out, seed)
	if base == nil {
		return fmt.Errorf("invalid trace parameters")
	}
	reqs := make([]zipserv.LiveRequest, len(base))
	for i, r := range base {
		reqs[i] = zipserv.LiveRequest{PromptLen: prompt, OutputLen: out, Arrival: r.ArrivalSeconds}
		if i%5 == 4 {
			reqs[i] = zipserv.LiveRequest{PromptLen: 16 * prompt, OutputLen: 8, Arrival: r.ArrivalSeconds}
		}
	}

	fmt.Printf("chunking mix: %d requests, %.0f req/s Poisson, decoders %d/%d with every 5th prompt %d tokens (%s on %dx %s, %s)\n\n",
		n, rate, prompt, out, 16*prompt, modelName, gpus, device, backend)
	fmt.Printf("%-12s %16s %16s %18s %14s\n",
		"chunk", "dec TPOT p50(s)", "dec TPOT p99(s)", "max dec gap(s)", "goodput(r/s)")
	var csv strings.Builder
	csv.WriteString("chunk_tokens,decode_tpot_p50_s,decode_tpot_p99_s,max_decode_gap_s,goodput_rps\n")
	for _, chunk := range []int{0, 64, 256, 1024} {
		eng, err := zipserv.NewEngine(zipserv.ServingConfig{
			Model: model, Device: dev, NumGPUs: gpus, Backend: zipserv.ServingBackend(backend),
		})
		if err != nil {
			return err
		}
		srv, err := zipserv.NewLiveServer(zipserv.LiveConfig{
			Engine: eng, QueueDepth: len(reqs), PrefillChunkTokens: chunk,
		})
		if err != nil {
			return err
		}
		tickets := make([]*zipserv.LiveTicket, len(reqs))
		for i, r := range reqs {
			if tickets[i], err = srv.Submit(r); err != nil {
				return err
			}
		}
		srv.Start()
		var tpots []float64
		for i, tk := range tickets {
			res := <-tk.Result()
			if res.Err != nil {
				return res.Err
			}
			if i%5 != 4 { // the decoders, not the long prompts
				tpots = append(tpots, res.TPOT)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err = srv.Stop(ctx)
		cancel()
		if err != nil {
			return err
		}
		st := srv.Stats()
		label := "none"
		if chunk > 0 {
			label = fmt.Sprintf("%d tok", chunk)
		}
		p50, p99 := percentile(tpots, 0.50), percentile(tpots, 0.99)
		fmt.Printf("%-12s %16.4f %16.4f %18.4f %14.2f\n", label, p50, p99, st.MaxDecodeGap, st.Goodput)
		fmt.Fprintf(&csv, "%d,%.6f,%.6f,%.6f,%.3f\n", chunk, p50, p99, st.MaxDecodeGap, st.Goodput)
	}
	if csvPath != "" {
		if err := os.WriteFile(csvPath, []byte(csv.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", csvPath)
	}
	return nil
}

// percentile returns the p-quantile (0..1) of xs by nearest rank.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(math.Ceil(p*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	return s[i]
}
