// Command zipserv-serve runs the end-to-end serving simulation (§6.5)
// for one deployment and prints latency, throughput and the memory
// plan, optionally comparing all four serving backends.
//
// With -live it instead replays a synthetic Poisson trace through the
// live continuous-batching scheduler (internal/serve) and through the
// offline static-batch path, and reports the goodput gain of
// iteration-level scheduling with token-packed prefill.
//
// With -compare-policies it replays one mixed interactive/batch trace
// through the live scheduler under each admission policy (fifo,
// priority, slo) and reports per-class TTFT percentiles — the
// scheduling win of class- and deadline-aware admission over FIFO
// head-of-line blocking.
//
// With -compare-chunking it replays one trace that mixes long prompts
// into a stream of short decoders under each prefill chunk budget
// (monolithic, 64, 256, 1024 tokens) and reports decode TPOT p50/p99
// and the worst inter-token stall — the cadence win of chunked
// prefill. -csv additionally writes the table as CSV.
//
// With -compare-prefix it replays one shared-prefix workload (every
// request repeats the same long prompt prefix, as system prompts and
// few-shot templates do) with the KV prefix cache off and on, and
// reports TTFT p50/p99 and the prefill tokens actually computed — the
// reuse win of copy-on-write prefix caching. -require-prefix-win turns
// the comparison into a CI gate.
//
// Usage:
//
//	zipserv-serve -model LLaMA3.1-8B -device RTX4090 -batch 32 -out 2048
//	zipserv-serve -model LLaMA3.1-70B -device L40S -gpus 4 -compare
//	zipserv-serve -model LLaMA3.1-8B -device RTX4090 -live -requests 64 -rate 100
//	zipserv-serve -model LLaMA3.1-8B -device RTX4090 -compare-policies -requests 64
//	zipserv-serve -model LLaMA3.1-8B -device RTX4090 -compare-chunking -requests 40 -csv chunking.csv
//	zipserv-serve -model LLaMA3.1-8B -device RTX4090 -compare-prefix -requests 40 -csv prefix.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"zipserv"
)

func main() {
	model := flag.String("model", "LLaMA3.1-8B", "model name from the zoo")
	device := flag.String("device", "RTX4090", "GPU model")
	gpus := flag.Int("gpus", 1, "tensor-parallel degree")
	backend := flag.String("backend", "zipserv", "serving backend: zipserv, vllm, transformers, dfloat11")
	batch := flag.Int("batch", 32, "request batch size")
	prompt := flag.Int("prompt", 128, "prompt length in tokens")
	out := flag.Int("out", 512, "output length in tokens")
	compare := flag.Bool("compare", false, "run all four backends and compare")
	live := flag.Bool("live", false, "replay a synthetic trace through the live continuous-batching scheduler")
	comparePolicies := flag.Bool("compare-policies", false,
		"replay a mixed interactive/batch trace under each admission policy and compare per-class TTFT")
	compareChunking := flag.Bool("compare-chunking", false,
		"replay a long-prompt/decoder mix under each prefill chunk budget and compare decode TPOT p50/p99")
	comparePrefix := flag.Bool("compare-prefix", false,
		"replay a shared-prefix workload with the KV prefix cache off and on and compare TTFT and prefill work")
	requirePrefixWin := flag.Bool("require-prefix-win", false,
		"compare-prefix: exit non-zero unless prefix-on TTFT p50 <= prefix-off (CI perf-regression gate)")
	csvPath := flag.String("csv", "", "compare-chunking/-compare-prefix: also write the comparison as CSV to this path")
	requests := flag.Int("requests", 64, "live mode: number of trace requests")
	rate := flag.Float64("rate", 100, "live mode: Poisson arrival rate (req/s)")
	seed := flag.Int64("seed", 7, "live mode: trace seed")
	flag.Parse()

	var err error
	switch {
	case *comparePrefix:
		err = runComparePrefix(*model, *device, *gpus, *backend, *requests, *rate, *prompt, *out, *csvPath, *requirePrefixWin)
	case *compareChunking:
		err = runCompareChunking(*model, *device, *gpus, *backend, *requests, *rate, *prompt, *out, *seed, *csvPath)
	case *comparePolicies:
		err = runComparePolicies(*model, *device, *gpus, *backend, *requests, *rate, *prompt, *out, *seed)
	case *live:
		err = runLive(*model, *device, *gpus, *backend, *requests, *rate, *prompt, *out, *seed)
	default:
		err = run(*model, *device, *gpus, *backend, *batch, *prompt, *out, *compare)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zipserv-serve:", err)
		os.Exit(1)
	}
}

func run(modelName, device string, gpus int, backend string, batch, prompt, out int, compare bool) error {
	model, err := zipserv.ModelByName(modelName)
	if err != nil {
		return err
	}
	dev, err := zipserv.GPUByName(device)
	if err != nil {
		return err
	}
	backends := []zipserv.ServingBackend{zipserv.ServingBackend(backend)}
	if compare {
		backends = []zipserv.ServingBackend{
			zipserv.ServeZipServ, zipserv.ServeVLLM, zipserv.ServeTransformers, zipserv.ServeDFloat11,
		}
	}

	fmt.Printf("deployment: %s on %dx %s, batch %d, prompt %d, output %d\n\n",
		modelName, gpus, device, batch, prompt, out)
	fmt.Printf("%-14s %12s %14s %10s %8s %12s %12s\n",
		"backend", "latency(s)", "tput(tok/s)", "waves", "conc", "weights(GiB)", "KV cap(GiB)")
	var base float64
	for _, b := range backends {
		eng, err := zipserv.NewEngine(zipserv.ServingConfig{
			Model: model, Device: dev, NumGPUs: gpus, Backend: b,
		})
		if err != nil {
			fmt.Printf("%-14s does not fit: %v\n", b, err)
			continue
		}
		m, err := eng.Run(batch, prompt, out)
		if err != nil {
			fmt.Printf("%-14s failed: %v\n", b, err)
			continue
		}
		fmt.Printf("%-14s %12.2f %14.1f %10d %8d %12.2f %12.2f\n",
			b, m.TotalSeconds, m.Throughput, m.Waves, m.MaxConcurrent, m.WeightGiB, m.KVCapacityGiB)
		if b == zipserv.ServeZipServ {
			base = m.Throughput
		} else if compare && base > 0 {
			fmt.Printf("%-14s   (ZipServ speedup: %.2fx)\n", "", base/m.Throughput)
		}
	}
	return nil
}

// replayLive drives one request set through a fresh live server built
// from cfg (caller supplies the engine and scheduling knobs): submit
// everything, start the scheduler, drain the results in submission
// order, stop with a 30s drain window, and snapshot the stats. All the
// compare modes share this lifecycle.
func replayLive(cfg zipserv.LiveConfig, reqs []zipserv.LiveRequest) ([]zipserv.LiveResult, zipserv.LiveStats, error) {
	var stats zipserv.LiveStats
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = len(reqs)
	}
	srv, err := zipserv.NewLiveServer(cfg)
	if err != nil {
		return nil, stats, err
	}
	tickets := make([]*zipserv.LiveTicket, len(reqs))
	for i, r := range reqs {
		if tickets[i], err = srv.Submit(r); err != nil {
			return nil, stats, err
		}
	}
	srv.Start()
	results := make([]zipserv.LiveResult, len(reqs))
	for i, tk := range tickets {
		results[i] = <-tk.Result()
		if results[i].Err != nil {
			return nil, stats, results[i].Err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Stop(ctx); err != nil {
		return nil, stats, err
	}
	return results, srv.Stats(), nil
}

// runLive replays one synthetic trace twice — through the live
// continuous-batching scheduler and through the offline static-batch
// path — and prints the goodput comparison.
func runLive(modelName, device string, gpus int, backend string, n int, rate float64, prompt, out int, seed int64) error {
	model, err := zipserv.ModelByName(modelName)
	if err != nil {
		return err
	}
	dev, err := zipserv.GPUByName(device)
	if err != nil {
		return err
	}
	eng, err := zipserv.NewEngine(zipserv.ServingConfig{
		Model: model, Device: dev, NumGPUs: gpus, Backend: zipserv.ServingBackend(backend),
	})
	if err != nil {
		return err
	}
	trace := zipserv.SyntheticTrace(n, rate, prompt, out, seed)
	if trace == nil {
		return fmt.Errorf("invalid trace parameters")
	}

	offline, _, err := eng.Serve(trace)
	if err != nil {
		return err
	}

	reqs := make([]zipserv.LiveRequest, len(trace))
	for i, r := range trace {
		reqs[i] = zipserv.LiveRequest{
			PromptLen: r.PromptLen, OutputLen: r.OutputLen, Arrival: r.ArrivalSeconds,
		}
	}
	_, st, err := replayLive(zipserv.LiveConfig{Engine: eng}, reqs)
	if err != nil {
		return err
	}

	liveGoodput := float64(st.Completed) / st.SimSeconds
	offGoodput := float64(offline.Requests) / offline.MakespanSeconds
	fmt.Printf("trace: %d requests, %.0f req/s Poisson, prompt~%d, output~%d (%s on %dx %s, %s)\n\n",
		n, rate, prompt, out, modelName, gpus, device, backend)
	fmt.Printf("%-26s %14s %14s %12s %12s\n", "scheduler", "makespan(s)", "goodput(r/s)", "meanTTFT(s)", "peak conc")
	fmt.Printf("%-26s %14.2f %14.2f %12.3f %12d\n",
		"offline static-batch", offline.MakespanSeconds, offGoodput, offline.MeanTTFT, offline.PeakConcurrency)
	fmt.Printf("%-26s %14.2f %14.2f %12.3f %12d\n",
		"live continuous-batching", st.SimSeconds, liveGoodput, st.MeanTTFT, st.PeakConcurrency)
	fmt.Printf("\nlive goodput gain: %.2fx\n", liveGoodput/offGoodput)
	return nil
}

// runComparePolicies replays one mixed trace — alternating interactive
// requests (the flag lengths, a 250 ms TTFT deadline) and batch
// requests (8× longer, no deadline) — through the live scheduler under
// each admission policy, and prints per-class TTFT percentiles.
func runComparePolicies(modelName, device string, gpus int, backend string, n int, rate float64, prompt, out int, seed int64) error {
	model, err := zipserv.ModelByName(modelName)
	if err != nil {
		return err
	}
	dev, err := zipserv.GPUByName(device)
	if err != nil {
		return err
	}
	base := zipserv.SyntheticTrace(n, rate, prompt, out, seed)
	if base == nil {
		return fmt.Errorf("invalid trace parameters")
	}
	reqs := make([]zipserv.LiveRequest, len(base))
	for i, r := range base {
		reqs[i] = zipserv.LiveRequest{
			PromptLen: prompt, OutputLen: out, Arrival: r.ArrivalSeconds,
			Class: zipserv.LiveClassInteractive, TTFTDeadline: 0.25,
		}
		if i%2 == 1 {
			reqs[i] = zipserv.LiveRequest{
				PromptLen: 8 * prompt, OutputLen: 8 * out, Arrival: r.ArrivalSeconds,
				Class: zipserv.LiveClassBatch,
			}
		}
	}

	fmt.Printf("mixed trace: %d requests, %.0f req/s Poisson, interactive %d/%d vs batch %d/%d (%s on %dx %s, %s)\n\n",
		n, rate, prompt, out, 8*prompt, 8*out, modelName, gpus, device, backend)
	fmt.Printf("%-10s %16s %16s %16s %14s %10s\n",
		"policy", "int p50 TTFT(s)", "int p95 TTFT(s)", "bat p50 TTFT(s)", "goodput(r/s)", "preempted")
	for _, name := range zipserv.LivePolicyNames() {
		policy, err := zipserv.LivePolicyByName(name)
		if err != nil {
			return err
		}
		eng, err := zipserv.NewEngine(zipserv.ServingConfig{
			Model: model, Device: dev, NumGPUs: gpus, Backend: zipserv.ServingBackend(backend),
		})
		if err != nil {
			return err
		}
		results, st, err := replayLive(zipserv.LiveConfig{Engine: eng, Policy: policy}, reqs)
		if err != nil {
			return err
		}
		var intTTFT, batTTFT []float64
		for i, res := range results {
			if reqs[i].Class == zipserv.LiveClassBatch {
				batTTFT = append(batTTFT, res.TTFT)
			} else {
				intTTFT = append(intTTFT, res.TTFT)
			}
		}
		fmt.Printf("%-10s %16.3f %16.3f %16.3f %14.2f %10d\n",
			name, percentile(intTTFT, 0.50), percentile(intTTFT, 0.95),
			percentile(batTTFT, 0.50), st.Goodput, st.Preempted)
	}
	return nil
}

// runCompareChunking replays one trace — mostly short decoders at the
// flag lengths, with every fifth request a 16×-long prompt — through
// the live scheduler under each prefill chunk budget, and prints the
// decode TPOT percentiles across the short requests plus the worst
// inter-token stall. Monolithic prefill lets every long prompt wedge a
// full-prompt stall between decode steps; the chunk budgets bound it.
func runCompareChunking(modelName, device string, gpus int, backend string, n int, rate float64, prompt, out int, seed int64, csvPath string) error {
	model, err := zipserv.ModelByName(modelName)
	if err != nil {
		return err
	}
	dev, err := zipserv.GPUByName(device)
	if err != nil {
		return err
	}
	base := zipserv.SyntheticTrace(n, rate, prompt, out, seed)
	if base == nil {
		return fmt.Errorf("invalid trace parameters")
	}
	reqs := make([]zipserv.LiveRequest, len(base))
	for i, r := range base {
		reqs[i] = zipserv.LiveRequest{PromptLen: prompt, OutputLen: out, Arrival: r.ArrivalSeconds}
		if i%5 == 4 {
			reqs[i] = zipserv.LiveRequest{PromptLen: 16 * prompt, OutputLen: 8, Arrival: r.ArrivalSeconds}
		}
	}

	fmt.Printf("chunking mix: %d requests, %.0f req/s Poisson, decoders %d/%d with every 5th prompt %d tokens (%s on %dx %s, %s)\n\n",
		n, rate, prompt, out, 16*prompt, modelName, gpus, device, backend)
	fmt.Printf("%-12s %16s %16s %18s %14s\n",
		"chunk", "dec TPOT p50(s)", "dec TPOT p99(s)", "max dec gap(s)", "goodput(r/s)")
	var csv strings.Builder
	csv.WriteString("chunk_tokens,decode_tpot_p50_s,decode_tpot_p99_s,max_decode_gap_s,goodput_rps\n")
	for _, chunk := range []int{0, 64, 256, 1024} {
		eng, err := zipserv.NewEngine(zipserv.ServingConfig{
			Model: model, Device: dev, NumGPUs: gpus, Backend: zipserv.ServingBackend(backend),
		})
		if err != nil {
			return err
		}
		results, st, err := replayLive(zipserv.LiveConfig{Engine: eng, PrefillChunkTokens: chunk}, reqs)
		if err != nil {
			return err
		}
		var tpots []float64
		for i, res := range results {
			if i%5 != 4 { // the decoders, not the long prompts
				tpots = append(tpots, res.TPOT)
			}
		}
		label := "none"
		if chunk > 0 {
			label = fmt.Sprintf("%d tok", chunk)
		}
		p50, p99 := percentile(tpots, 0.50), percentile(tpots, 0.99)
		fmt.Printf("%-12s %16.4f %16.4f %18.4f %14.2f\n", label, p50, p99, st.MaxDecodeGap, st.Goodput)
		fmt.Fprintf(&csv, "%d,%.6f,%.6f,%.6f,%.3f\n", chunk, p50, p99, st.MaxDecodeGap, st.Goodput)
	}
	if csvPath != "" {
		if err := os.WriteFile(csvPath, []byte(csv.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", csvPath)
	}
	return nil
}

// runComparePrefix replays one shared-prefix workload — every request
// carries the same 8×prompt-token prefix (a system prompt / few-shot
// template stand-in) plus a unique prompt-token suffix, arriving at a
// steady 1/rate spacing — through the live scheduler with the KV
// prefix cache off and on, and prints TTFT percentiles, the prefill
// tokens actually computed, and the cache counters. With requireWin it
// exits non-zero unless prefix-on TTFT p50 ≤ prefix-off — the CI
// perf-regression gate for the prefix-cache path.
func runComparePrefix(modelName, device string, gpus int, backend string, n int, rate float64, prompt, out int, csvPath string, requireWin bool) error {
	model, err := zipserv.ModelByName(modelName)
	if err != nil {
		return err
	}
	dev, err := zipserv.GPUByName(device)
	if err != nil {
		return err
	}
	if n <= 1 || rate <= 0 || prompt <= 0 || out <= 0 {
		return fmt.Errorf("invalid workload parameters")
	}
	prefixLen := 8 * prompt
	prefix := make([]int, prefixLen)
	for i := range prefix {
		prefix[i] = 100003 + i*131
	}
	reqs := make([]zipserv.LiveRequest, n)
	for i := range reqs {
		tokens := append(append([]int(nil), prefix...), make([]int, prompt)...)
		for j := 0; j < prompt; j++ {
			tokens[prefixLen+j] = (i+2)*1000003 + j*131
		}
		reqs[i] = zipserv.LiveRequest{
			Prompt: tokens, OutputLen: out, Arrival: float64(i) / rate,
		}
	}

	type row struct {
		mode          string
		p50, p99      float64
		prefillTokens int64
		hits          int64
		saved         int64
		goodput       float64
	}
	rows := make([]row, 0, 2)
	for _, enabled := range []bool{false, true} {
		eng, err := zipserv.NewEngine(zipserv.ServingConfig{
			Model: model, Device: dev, NumGPUs: gpus, Backend: zipserv.ServingBackend(backend),
		})
		if err != nil {
			return err
		}
		results, st, err := replayLive(zipserv.LiveConfig{Engine: eng, PrefixCache: enabled}, reqs)
		if err != nil {
			return err
		}
		ttfts := make([]float64, len(results))
		for i, res := range results {
			ttfts[i] = res.TTFT
		}
		mode := "prefix-off"
		if enabled {
			mode = "prefix-on"
		}
		rows = append(rows, row{
			mode: mode, p50: percentile(ttfts, 0.50), p99: percentile(ttfts, 0.99),
			prefillTokens: st.PrefillTokens, hits: st.PrefixHits, saved: st.PrefixTokensSaved,
			goodput: st.Goodput,
		})
	}

	fmt.Printf("shared-prefix workload: %d requests, %.0f req/s, prefix %d tokens + suffix %d, output %d (%s on %dx %s, %s)\n\n",
		n, rate, prefixLen, prompt, out, modelName, gpus, device, backend)
	fmt.Printf("%-12s %14s %14s %16s %12s %14s %14s\n",
		"mode", "TTFT p50(s)", "TTFT p99(s)", "prefill tokens", "hits", "tokens saved", "goodput(r/s)")
	var csv strings.Builder
	csv.WriteString("mode,ttft_p50_s,ttft_p99_s,prefill_tokens,prefix_hits,prefix_tokens_saved,goodput_rps\n")
	for _, r := range rows {
		fmt.Printf("%-12s %14.4f %14.4f %16d %12d %14d %14.2f\n",
			r.mode, r.p50, r.p99, r.prefillTokens, r.hits, r.saved, r.goodput)
		fmt.Fprintf(&csv, "%s,%.6f,%.6f,%d,%d,%d,%.3f\n",
			r.mode, r.p50, r.p99, r.prefillTokens, r.hits, r.saved, r.goodput)
	}
	off, on := rows[0], rows[1]
	if off.p50 > 0 {
		fmt.Printf("\nprefix-on TTFT p50 speedup: %.2fx, prefill tokens saved: %d\n",
			off.p50/on.p50, off.prefillTokens-on.prefillTokens)
	}
	if csvPath != "" {
		if err := os.WriteFile(csvPath, []byte(csv.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
	if requireWin && on.p50 > off.p50 {
		return fmt.Errorf("perf regression: prefix-on TTFT p50 %.6fs > prefix-off %.6fs", on.p50, off.p50)
	}
	return nil
}

// percentile returns the p-quantile (0..1) of xs by nearest rank.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(math.Ceil(p*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	return s[i]
}
