// Command zipserv-serve runs the end-to-end serving simulation (§6.5)
// for one deployment and prints latency, throughput and the memory
// plan, optionally comparing all four serving backends.
//
// With -live it instead replays a synthetic Poisson trace through the
// live continuous-batching scheduler (internal/serve) and through the
// offline static-batch path, and reports the goodput gain of
// iteration-level scheduling with token-packed prefill.
//
// With -compare-policies it replays one mixed interactive/batch trace
// through the live scheduler under each admission policy (fifo,
// priority, slo) and reports per-class TTFT percentiles — the
// scheduling win of class- and deadline-aware admission over FIFO
// head-of-line blocking.
//
// With -compare-chunking it replays one trace that mixes long prompts
// into a stream of short decoders under each prefill chunk budget
// (monolithic, 64, 256, 1024 tokens) and reports decode TPOT p50/p99
// and the worst inter-token stall — the cadence win of chunked
// prefill. -csv additionally writes the table as CSV.
//
// With -compare-prefix it replays one shared-prefix workload (every
// request repeats the same long prompt prefix, as system prompts and
// few-shot templates do) with the KV prefix cache off and on, and
// reports TTFT p50/p99 and the prefill tokens actually computed — the
// reuse win of copy-on-write prefix caching. -require-prefix-win turns
// the comparison into a CI gate.
//
// With -compare-compress it replays one capacity-pressure shared-prefix
// workload (shared-prefix requests interleaved with prompt-only
// "flusher" requests sized to the whole KV plan) on a deliberately tiny
// KV plan, with the compressed cold-block cache off and on, and reports
// prefix hits, prefill work and the compression counters — the capacity
// win of freezing cold prefix blocks into the TCA-TBE store instead of
// parking them physically. -require-compress-win turns the comparison
// into a CI gate: compression-on must retain strictly more prefix hits
// with a byte-identical completion set.
//
// With -compare-adaptive it replays one mixed long-prompt +
// shared-prefix workload under each static prefill chunk budget and
// under the adaptive controllers (closed-loop chunk budget derived
// from the -target-step-time TPOT SLO, plus adaptive prefix-cache pool
// sizing), and reports decode TPOT percentiles — the SLO win of
// deriving the operating point per iteration instead of trusting an
// operator constant. -require-adaptive-win turns the comparison into a
// CI gate.
//
// With -compare-disagg it replays one mixed long-prompt + chat
// workload through a disaggregated fleet — one prefill replica running
// prompts to first token and handing each sequence, KV compressed
// through the TCA-TBE codec, to one decode replica — and through
// co-located two-replica fleets (monolithic and chunked prefill), and
// reports the chat decoders' TPOT percentiles: the interference win of
// keeping long prefills off the decode replica entirely.
// -require-disagg-win turns the comparison into a CI gate:
// disaggregation must strictly beat the best co-located configuration
// on decode TPOT p99 with an identical completion set and no fewer
// completions.
//
// With -compare-affinity it drives one multi-tenant shared-prefix burst
// workload — 8 tenants, each wave submitting two requests per tenant
// that share that tenant's long prompt prefix, in a deterministically
// shuffled order — through a 4-replica fleet twice: behind the plain
// least-loaded router and behind the same router with prefix-affinity
// dispatch enabled, and reports fleet prefix hits, affinity hit/spill
// counters and TTFT percentiles — the locality win of steering requests
// to the replica whose prefix-trie digest already covers their prompt.
// Waves are submitted live and drained before the next wave starts, so
// the replicas' published digests are warm when the router scores them.
// -require-affinity-win turns the comparison into a CI gate: affinity
// must produce strictly more fleet prefix hits AND a TTFT p50 no worse
// than least-loaded, with an identical completion set.
//
// With -compare-chaos it replays one deterministic workload through a
// 3-replica fleet under a scripted fault plan (one replica crashes
// mid-run, another runs 6x slow throughout) three times: twice with
// health-aware routing enabled (breakers, retries and request
// resurrection) and once without. All requests are submitted before
// the fleet starts, so dispatch and the crash's victim set replay
// identically; the two resilience-on runs must produce byte-identical
// per-request outcome schedules. -require-chaos-win turns the drill
// into a CI gate: resilience-on must complete the whole request set
// with zero client-visible failures and at least one resurrection
// while resilience-off loses requests to the same plan.
//
// Every compare mode shares -csv to export its table, and every
// -require-*-win flag funnels through the same winGate helper.
//
// Usage:
//
//	zipserv-serve -model LLaMA3.1-8B -device RTX4090 -batch 32 -out 2048
//	zipserv-serve -model LLaMA3.1-70B -device L40S -gpus 4 -compare
//	zipserv-serve -model LLaMA3.1-8B -device RTX4090 -live -requests 64 -rate 100
//	zipserv-serve -model LLaMA3.1-8B -device RTX4090 -compare-policies -requests 64 -csv policies.csv
//	zipserv-serve -model LLaMA3.1-8B -device RTX4090 -compare-chunking -requests 40 -csv chunking.csv
//	zipserv-serve -model LLaMA3.1-8B -device RTX4090 -compare-prefix -requests 40 -csv prefix.csv
//	zipserv-serve -model LLaMA3.1-8B -device RTX4090 -compare-compress -requests 8 -require-compress-win
//	zipserv-serve -model LLaMA3.1-8B -device RTX4090 -compare-adaptive -target-step-time 30ms -require-adaptive-win
//	zipserv-serve -model LLaMA3.1-8B -device RTX4090 -compare-disagg -requests 48 -require-disagg-win
//	zipserv-serve -model LLaMA3.1-8B -device RTX4090 -compare-affinity -requests 64 -require-affinity-win
//	zipserv-serve -model LLaMA3.1-8B -device RTX4090 -compare-chaos -requests 64 -require-chaos-win
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"zipserv"
)

func main() {
	model := flag.String("model", "LLaMA3.1-8B", "model name from the zoo")
	device := flag.String("device", "RTX4090", "GPU model")
	gpus := flag.Int("gpus", 1, "tensor-parallel degree")
	backend := flag.String("backend", "zipserv", "serving backend: zipserv, vllm, transformers, dfloat11")
	batch := flag.Int("batch", 32, "request batch size")
	prompt := flag.Int("prompt", 128, "prompt length in tokens")
	out := flag.Int("out", 512, "output length in tokens")
	compare := flag.Bool("compare", false, "run all four backends and compare")
	live := flag.Bool("live", false, "replay a synthetic trace through the live continuous-batching scheduler")
	comparePolicies := flag.Bool("compare-policies", false,
		"replay a mixed interactive/batch trace under each admission policy and compare per-class TTFT")
	compareChunking := flag.Bool("compare-chunking", false,
		"replay a long-prompt/decoder mix under each prefill chunk budget and compare decode TPOT p50/p99")
	comparePrefix := flag.Bool("compare-prefix", false,
		"replay a shared-prefix workload with the KV prefix cache off and on and compare TTFT and prefill work")
	requirePrefixWin := flag.Bool("require-prefix-win", false,
		"compare-prefix: exit non-zero unless prefix-on TTFT p50 <= prefix-off (CI perf-regression gate)")
	compareCompress := flag.Bool("compare-compress", false,
		"replay a capacity-pressure shared-prefix workload with the compressed cold-block cache off and on and compare prefix reuse")
	requireCompressWin := flag.Bool("require-compress-win", false,
		"compare-compress: exit non-zero unless compression-on retains strictly more prefix hits with identical outputs (CI gate)")
	compareDisagg := flag.Bool("compare-disagg", false,
		"replay a mixed long-prompt + chat workload through a disaggregated prefill/decode fleet and co-located two-replica fleets, comparing decode TPOT")
	requireDisaggWin := flag.Bool("require-disagg-win", false,
		"compare-disagg: exit non-zero unless disaggregation beats every co-located config on decode TPOT p99 with identical completions (CI gate)")
	compareAffinity := flag.Bool("compare-affinity", false,
		"drive a multi-tenant shared-prefix burst workload through a 4-replica fleet with least-loaded and prefix-affinity routing and compare fleet prefix hits and TTFT")
	requireAffinityWin := flag.Bool("require-affinity-win", false,
		"compare-affinity: exit non-zero unless affinity routing gets strictly more fleet prefix hits and a TTFT p50 no worse than least-loaded (CI gate)")
	compareChaos := flag.Bool("compare-chaos", false,
		"replay one deterministic workload through a 3-replica fleet under a scripted fault plan with health-aware routing off and on, comparing losses")
	requireChaosWin := flag.Bool("require-chaos-win", false,
		"compare-chaos: exit non-zero unless resilience-on completes everything with >=1 resurrection, resilience-off loses requests, and replays are byte-identical (CI gate)")
	compareAdaptive := flag.Bool("compare-adaptive", false,
		"replay a mixed long-prompt + shared-prefix workload under each static chunk budget and the adaptive controllers, comparing decode TPOT")
	requireAdaptiveWin := flag.Bool("require-adaptive-win", false,
		"compare-adaptive: exit non-zero unless adaptive decode TPOT p99 <= every static budget's (CI perf-regression gate)")
	targetStepTime := flag.Duration("target-step-time", 30*time.Millisecond,
		"compare-adaptive: the adaptive controller's combined step-time target (TPOT SLO)")
	csvPath := flag.String("csv", "", "compare modes: also write the comparison as CSV to this path")
	requests := flag.Int("requests", 64, "live mode: number of trace requests")
	rate := flag.Float64("rate", 100, "live mode: Poisson arrival rate (req/s)")
	seed := flag.Int64("seed", 7, "live mode: trace seed")
	flag.Parse()

	var err error
	switch {
	case *compareChaos:
		err = runCompareChaos(*model, *device, *gpus, *backend, *requests, *csvPath, *requireChaosWin)
	case *compareAffinity:
		err = runCompareAffinity(*model, *device, *gpus, *backend, *requests, *prompt, *csvPath, *requireAffinityWin)
	case *compareDisagg:
		err = runCompareDisagg(*model, *device, *gpus, *backend, *requests, *prompt, *csvPath, *requireDisaggWin)
	case *compareCompress:
		err = runCompareCompress(*model, *device, *gpus, *backend, *requests, *csvPath, *requireCompressWin)
	case *compareAdaptive:
		err = runCompareAdaptive(*model, *device, *gpus, *backend, *requests, *prompt, targetStepTime.Seconds(), *csvPath, *requireAdaptiveWin)
	case *comparePrefix:
		err = runComparePrefix(*model, *device, *gpus, *backend, *requests, *rate, *prompt, *out, *csvPath, *requirePrefixWin)
	case *compareChunking:
		err = runCompareChunking(*model, *device, *gpus, *backend, *requests, *rate, *prompt, *out, *seed, *csvPath)
	case *comparePolicies:
		err = runComparePolicies(*model, *device, *gpus, *backend, *requests, *rate, *prompt, *out, *seed, *csvPath)
	case *live:
		err = runLive(*model, *device, *gpus, *backend, *requests, *rate, *prompt, *out, *seed)
	default:
		err = run(*model, *device, *gpus, *backend, *batch, *prompt, *out, *compare)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zipserv-serve:", err)
		os.Exit(1)
	}
}

func run(modelName, device string, gpus int, backend string, batch, prompt, out int, compare bool) error {
	model, err := zipserv.ModelByName(modelName)
	if err != nil {
		return err
	}
	dev, err := zipserv.GPUByName(device)
	if err != nil {
		return err
	}
	backends := []zipserv.ServingBackend{zipserv.ServingBackend(backend)}
	if compare {
		backends = []zipserv.ServingBackend{
			zipserv.ServeZipServ, zipserv.ServeVLLM, zipserv.ServeTransformers, zipserv.ServeDFloat11,
		}
	}

	fmt.Printf("deployment: %s on %dx %s, batch %d, prompt %d, output %d\n\n",
		modelName, gpus, device, batch, prompt, out)
	fmt.Printf("%-14s %12s %14s %10s %8s %12s %12s\n",
		"backend", "latency(s)", "tput(tok/s)", "waves", "conc", "weights(GiB)", "KV cap(GiB)")
	var base float64
	for _, b := range backends {
		eng, err := zipserv.NewEngine(zipserv.ServingConfig{
			Model: model, Device: dev, NumGPUs: gpus, Backend: b,
		})
		if err != nil {
			fmt.Printf("%-14s does not fit: %v\n", b, err)
			continue
		}
		m, err := eng.Run(batch, prompt, out)
		if err != nil {
			fmt.Printf("%-14s failed: %v\n", b, err)
			continue
		}
		fmt.Printf("%-14s %12.2f %14.1f %10d %8d %12.2f %12.2f\n",
			b, m.TotalSeconds, m.Throughput, m.Waves, m.MaxConcurrent, m.WeightGiB, m.KVCapacityGiB)
		if b == zipserv.ServeZipServ {
			base = m.Throughput
		} else if compare && base > 0 {
			fmt.Printf("%-14s   (ZipServ speedup: %.2fx)\n", "", base/m.Throughput)
		}
	}
	return nil
}

// replayLive drives one request set through a fresh live server built
// from cfg (caller supplies the engine and scheduling knobs): submit
// everything, start the scheduler, drain the results in submission
// order, stop with a 30s drain window, and snapshot the stats. All the
// compare modes share this lifecycle.
func replayLive(cfg zipserv.LiveConfig, reqs []zipserv.LiveRequest) ([]zipserv.LiveResult, zipserv.LiveStats, error) {
	var stats zipserv.LiveStats
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = len(reqs)
	}
	srv, err := zipserv.NewLiveServer(cfg)
	if err != nil {
		return nil, stats, err
	}
	tickets := make([]*zipserv.LiveTicket, len(reqs))
	for i, r := range reqs {
		if tickets[i], err = srv.Submit(r); err != nil {
			return nil, stats, err
		}
	}
	srv.Start()
	results := make([]zipserv.LiveResult, len(reqs))
	for i, tk := range tickets {
		results[i] = <-tk.Result()
		if results[i].Err != nil {
			return nil, stats, results[i].Err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Stop(ctx); err != nil {
		return nil, stats, err
	}
	return results, srv.Stats(), nil
}

// replayRouted is replayLive for a replica fleet: submit everything
// through the router's capacity-aware dispatch, start the fleet, drain
// the results in submission order, stop with a 30s drain window, and
// snapshot the fleet aggregate. The caller builds the router (plain or
// pooled) and sizes each replica's queue for the whole trace.
func replayRouted(r *zipserv.LiveRouter, reqs []zipserv.LiveRequest) ([]zipserv.LiveResult, zipserv.LiveStats, error) {
	var stats zipserv.LiveStats
	tickets := make([]*zipserv.LiveTicket, len(reqs))
	var err error
	for i, q := range reqs {
		if tickets[i], err = r.Submit(q); err != nil {
			return nil, stats, err
		}
	}
	r.Start()
	results := make([]zipserv.LiveResult, len(reqs))
	for i, tk := range tickets {
		results[i] = <-tk.Result()
		if results[i].Err != nil {
			return nil, stats, results[i].Err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Stop(ctx); err != nil {
		return nil, stats, err
	}
	return results, r.Stats(), nil
}

// runLive replays one synthetic trace twice — through the live
// continuous-batching scheduler and through the offline static-batch
// path — and prints the goodput comparison.
func runLive(modelName, device string, gpus int, backend string, n int, rate float64, prompt, out int, seed int64) error {
	model, err := zipserv.ModelByName(modelName)
	if err != nil {
		return err
	}
	dev, err := zipserv.GPUByName(device)
	if err != nil {
		return err
	}
	eng, err := zipserv.NewEngine(zipserv.ServingConfig{
		Model: model, Device: dev, NumGPUs: gpus, Backend: zipserv.ServingBackend(backend),
	})
	if err != nil {
		return err
	}
	trace := zipserv.SyntheticTrace(n, rate, prompt, out, seed)
	if trace == nil {
		return fmt.Errorf("invalid trace parameters")
	}

	offline, _, err := eng.Serve(trace)
	if err != nil {
		return err
	}

	reqs := make([]zipserv.LiveRequest, len(trace))
	for i, r := range trace {
		reqs[i] = zipserv.LiveRequest{
			PromptLen: r.PromptLen, OutputLen: r.OutputLen, Arrival: r.ArrivalSeconds,
		}
	}
	_, st, err := replayLive(zipserv.LiveConfig{Engine: eng}, reqs)
	if err != nil {
		return err
	}

	liveGoodput := float64(st.Completed) / st.SimSeconds
	offGoodput := float64(offline.Requests) / offline.MakespanSeconds
	fmt.Printf("trace: %d requests, %.0f req/s Poisson, prompt~%d, output~%d (%s on %dx %s, %s)\n\n",
		n, rate, prompt, out, modelName, gpus, device, backend)
	fmt.Printf("%-26s %14s %14s %12s %12s\n", "scheduler", "makespan(s)", "goodput(r/s)", "meanTTFT(s)", "peak conc")
	fmt.Printf("%-26s %14.2f %14.2f %12.3f %12d\n",
		"offline static-batch", offline.MakespanSeconds, offGoodput, offline.MeanTTFT, offline.PeakConcurrency)
	fmt.Printf("%-26s %14.2f %14.2f %12.3f %12d\n",
		"live continuous-batching", st.SimSeconds, liveGoodput, st.MeanTTFT, st.PeakConcurrency)
	fmt.Printf("\nlive goodput gain: %.2fx\n", liveGoodput/offGoodput)
	return nil
}

// runComparePolicies replays one mixed trace — alternating interactive
// requests (the flag lengths, a 250 ms TTFT deadline) and batch
// requests (8× longer, no deadline) — through the live scheduler under
// each admission policy, and prints per-class TTFT percentiles.
func runComparePolicies(modelName, device string, gpus int, backend string, n int, rate float64, prompt, out int, seed int64, csvPath string) error {
	model, err := zipserv.ModelByName(modelName)
	if err != nil {
		return err
	}
	dev, err := zipserv.GPUByName(device)
	if err != nil {
		return err
	}
	base := zipserv.SyntheticTrace(n, rate, prompt, out, seed)
	if base == nil {
		return fmt.Errorf("invalid trace parameters")
	}
	reqs := make([]zipserv.LiveRequest, len(base))
	for i, r := range base {
		reqs[i] = zipserv.LiveRequest{
			PromptLen: prompt, OutputLen: out, Arrival: r.ArrivalSeconds,
			Class: zipserv.LiveClassInteractive, TTFTDeadline: 0.25,
		}
		if i%2 == 1 {
			reqs[i] = zipserv.LiveRequest{
				PromptLen: 8 * prompt, OutputLen: 8 * out, Arrival: r.ArrivalSeconds,
				Class: zipserv.LiveClassBatch,
			}
		}
	}

	fmt.Printf("mixed trace: %d requests, %.0f req/s Poisson, interactive %d/%d vs batch %d/%d (%s on %dx %s, %s)\n\n",
		n, rate, prompt, out, 8*prompt, 8*out, modelName, gpus, device, backend)
	fmt.Printf("%-10s %16s %16s %16s %14s %10s\n",
		"policy", "int p50 TTFT(s)", "int p95 TTFT(s)", "bat p50 TTFT(s)", "goodput(r/s)", "preempted")
	csv := newCSVTable("policy", "interactive_ttft_p50_s", "interactive_ttft_p95_s",
		"batch_ttft_p50_s", "goodput_rps", "preempted")
	for _, name := range zipserv.LivePolicyNames() {
		policy, err := zipserv.LivePolicyByName(name)
		if err != nil {
			return err
		}
		eng, err := zipserv.NewEngine(zipserv.ServingConfig{
			Model: model, Device: dev, NumGPUs: gpus, Backend: zipserv.ServingBackend(backend),
		})
		if err != nil {
			return err
		}
		results, st, err := replayLive(zipserv.LiveConfig{Engine: eng, Policy: policy}, reqs)
		if err != nil {
			return err
		}
		var intTTFT, batTTFT []float64
		for i, res := range results {
			if reqs[i].Class == zipserv.LiveClassBatch {
				batTTFT = append(batTTFT, res.TTFT)
			} else {
				intTTFT = append(intTTFT, res.TTFT)
			}
		}
		intP50, intP95, batP50 := percentile(intTTFT, 0.50), percentile(intTTFT, 0.95), percentile(batTTFT, 0.50)
		fmt.Printf("%-10s %16.3f %16.3f %16.3f %14.2f %10d\n",
			name, intP50, intP95, batP50, st.Goodput, st.Preempted)
		csv.add(name, fmt.Sprintf("%.6f", intP50), fmt.Sprintf("%.6f", intP95),
			fmt.Sprintf("%.6f", batP50), fmt.Sprintf("%.3f", st.Goodput), fmt.Sprintf("%d", st.Preempted))
	}
	return csv.write(csvPath)
}

// runCompareChunking replays one trace — mostly short decoders at the
// flag lengths, with every fifth request a 16×-long prompt — through
// the live scheduler under each prefill chunk budget, and prints the
// decode TPOT percentiles across the short requests plus the worst
// inter-token stall. Monolithic prefill lets every long prompt wedge a
// full-prompt stall between decode steps; the chunk budgets bound it.
func runCompareChunking(modelName, device string, gpus int, backend string, n int, rate float64, prompt, out int, seed int64, csvPath string) error {
	model, err := zipserv.ModelByName(modelName)
	if err != nil {
		return err
	}
	dev, err := zipserv.GPUByName(device)
	if err != nil {
		return err
	}
	base := zipserv.SyntheticTrace(n, rate, prompt, out, seed)
	if base == nil {
		return fmt.Errorf("invalid trace parameters")
	}
	reqs := make([]zipserv.LiveRequest, len(base))
	for i, r := range base {
		reqs[i] = zipserv.LiveRequest{PromptLen: prompt, OutputLen: out, Arrival: r.ArrivalSeconds}
		if i%5 == 4 {
			reqs[i] = zipserv.LiveRequest{PromptLen: 16 * prompt, OutputLen: 8, Arrival: r.ArrivalSeconds}
		}
	}

	fmt.Printf("chunking mix: %d requests, %.0f req/s Poisson, decoders %d/%d with every 5th prompt %d tokens (%s on %dx %s, %s)\n\n",
		n, rate, prompt, out, 16*prompt, modelName, gpus, device, backend)
	fmt.Printf("%-12s %16s %16s %18s %14s\n",
		"chunk", "dec TPOT p50(s)", "dec TPOT p99(s)", "max dec gap(s)", "goodput(r/s)")
	csv := newCSVTable("chunk_tokens", "decode_tpot_p50_s", "decode_tpot_p99_s", "max_decode_gap_s", "goodput_rps")
	for _, chunk := range []int{0, 64, 256, 1024} {
		eng, err := zipserv.NewEngine(zipserv.ServingConfig{
			Model: model, Device: dev, NumGPUs: gpus, Backend: zipserv.ServingBackend(backend),
		})
		if err != nil {
			return err
		}
		results, st, err := replayLive(zipserv.LiveConfig{Engine: eng, PrefillChunkTokens: chunk}, reqs)
		if err != nil {
			return err
		}
		var tpots []float64
		for i, res := range results {
			if i%5 != 4 { // the decoders, not the long prompts
				tpots = append(tpots, res.TPOT)
			}
		}
		label := "none"
		if chunk > 0 {
			label = fmt.Sprintf("%d tok", chunk)
		}
		p50, p99 := percentile(tpots, 0.50), percentile(tpots, 0.99)
		fmt.Printf("%-12s %16.4f %16.4f %18.4f %14.2f\n", label, p50, p99, st.MaxDecodeGap, st.Goodput)
		csv.add(fmt.Sprintf("%d", chunk), fmt.Sprintf("%.6f", p50), fmt.Sprintf("%.6f", p99),
			fmt.Sprintf("%.6f", st.MaxDecodeGap), fmt.Sprintf("%.3f", st.Goodput))
	}
	return csv.write(csvPath)
}

// runComparePrefix replays one shared-prefix workload — every request
// carries the same 8×prompt-token prefix (a system prompt / few-shot
// template stand-in) plus a unique prompt-token suffix, arriving at a
// steady 1/rate spacing — through the live scheduler with the KV
// prefix cache off and on, and prints TTFT percentiles, the prefill
// tokens actually computed, and the cache counters. With requireWin it
// exits non-zero unless prefix-on TTFT p50 ≤ prefix-off — the CI
// perf-regression gate for the prefix-cache path.
func runComparePrefix(modelName, device string, gpus int, backend string, n int, rate float64, prompt, out int, csvPath string, requireWin bool) error {
	model, err := zipserv.ModelByName(modelName)
	if err != nil {
		return err
	}
	dev, err := zipserv.GPUByName(device)
	if err != nil {
		return err
	}
	if n <= 1 || rate <= 0 || prompt <= 0 || out <= 0 {
		return fmt.Errorf("invalid workload parameters")
	}
	prefixLen := 8 * prompt
	prefix := make([]int, prefixLen)
	for i := range prefix {
		prefix[i] = 100003 + i*131
	}
	reqs := make([]zipserv.LiveRequest, n)
	for i := range reqs {
		tokens := append(append([]int(nil), prefix...), make([]int, prompt)...)
		for j := 0; j < prompt; j++ {
			tokens[prefixLen+j] = (i+2)*1000003 + j*131
		}
		reqs[i] = zipserv.LiveRequest{
			Prompt: tokens, OutputLen: out, Arrival: float64(i) / rate,
		}
	}

	type row struct {
		mode          string
		p50, p99      float64
		prefillTokens int64
		hits          int64
		saved         int64
		goodput       float64
	}
	rows := make([]row, 0, 2)
	for _, enabled := range []bool{false, true} {
		eng, err := zipserv.NewEngine(zipserv.ServingConfig{
			Model: model, Device: dev, NumGPUs: gpus, Backend: zipserv.ServingBackend(backend),
		})
		if err != nil {
			return err
		}
		results, st, err := replayLive(zipserv.LiveConfig{Engine: eng, PrefixCache: enabled}, reqs)
		if err != nil {
			return err
		}
		ttfts := make([]float64, len(results))
		for i, res := range results {
			ttfts[i] = res.TTFT
		}
		mode := "prefix-off"
		if enabled {
			mode = "prefix-on"
		}
		rows = append(rows, row{
			mode: mode, p50: percentile(ttfts, 0.50), p99: percentile(ttfts, 0.99),
			prefillTokens: st.PrefillTokens, hits: st.PrefixHits, saved: st.PrefixTokensSaved,
			goodput: st.Goodput,
		})
	}

	fmt.Printf("shared-prefix workload: %d requests, %.0f req/s, prefix %d tokens + suffix %d, output %d (%s on %dx %s, %s)\n\n",
		n, rate, prefixLen, prompt, out, modelName, gpus, device, backend)
	fmt.Printf("%-12s %14s %14s %16s %12s %14s %14s\n",
		"mode", "TTFT p50(s)", "TTFT p99(s)", "prefill tokens", "hits", "tokens saved", "goodput(r/s)")
	csv := newCSVTable("mode", "ttft_p50_s", "ttft_p99_s", "prefill_tokens",
		"prefix_hits", "prefix_tokens_saved", "goodput_rps")
	for _, r := range rows {
		fmt.Printf("%-12s %14.4f %14.4f %16d %12d %14d %14.2f\n",
			r.mode, r.p50, r.p99, r.prefillTokens, r.hits, r.saved, r.goodput)
		csv.add(r.mode, fmt.Sprintf("%.6f", r.p50), fmt.Sprintf("%.6f", r.p99),
			fmt.Sprintf("%d", r.prefillTokens), fmt.Sprintf("%d", r.hits),
			fmt.Sprintf("%d", r.saved), fmt.Sprintf("%.3f", r.goodput))
	}
	off, on := rows[0], rows[1]
	if off.p50 > 0 {
		fmt.Printf("\nprefix-on TTFT p50 speedup: %.2fx, prefill tokens saved: %d\n",
			off.p50/on.p50, off.prefillTokens-on.prefillTokens)
	}
	if err := csv.write(csvPath); err != nil {
		return err
	}
	gate := newWinGate(requireWin)
	gate.require(on.p50 <= off.p50, "prefix-on TTFT p50 %.6fs > prefix-off %.6fs", on.p50, off.p50)
	return gate.result()
}

// runCompareCompress replays one capacity-pressure shared-prefix
// workload with the compressed cold-block cache off and on, under the
// same deliberately tiny physical KV plan, and prints prefix reuse and
// compression counters. The workload alternates n shared-prefix
// requests (a 64-token common prefix plus a unique 16-token suffix)
// with "flusher" requests whose prompt+output footprint equals the
// whole 14-block plan: each flusher forces every parked refcount-zero
// block out of the physical pool, so with plain parking the prefix
// content is gone by the time the next shared request arrives, while
// the compressed cache holds it in frozen form outside the physical
// budget and restores it on claim (decompress priced into that
// prefill). MaxBatch 1 serialises the trace so the pressure pattern is
// deterministic. With requireWin it exits non-zero unless
// compression-on retains strictly more prefix hits (and at least as
// many saved tokens) with a byte-identical completion set — the CI
// gate for the compressed-KV path.
func runCompareCompress(modelName, device string, gpus int, backend string, n int, csvPath string, requireWin bool) error {
	model, err := zipserv.ModelByName(modelName)
	if err != nil {
		return err
	}
	dev, err := zipserv.GPUByName(device)
	if err != nil {
		return err
	}
	if n < 2 {
		n = 2 // one reuse opportunity minimum
	}

	// Shrink the KV plan to exactly planBlocks blocks by growing the
	// engine's reserved-memory headroom: probe the default plan, then
	// hand the surplus KV bytes (minus half a block so flooring cannot
	// drop below the target) back as reservation.
	const (
		blockTokens = 16 // kvcache.DefaultBlockTokens
		planBlocks  = 14
		prefixLen   = 4 * blockTokens // 4 whole cacheable blocks
		suffixLen   = blockTokens
		outputLen   = 2 * blockTokens
	)
	probe, err := zipserv.NewEngine(zipserv.ServingConfig{
		Model: model, Device: dev, NumGPUs: gpus, Backend: zipserv.ServingBackend(backend),
	})
	if err != nil {
		return err
	}
	bytesPerBlock := blockTokens * model.KVBytesPerToken() / int64(gpus)
	surplus := probe.Plan().KVBytes - planBlocks*bytesPerBlock - bytesPerBlock/2
	if surplus <= 0 {
		return fmt.Errorf("device plan already below %d KV blocks", planBlocks)
	}
	reservedGiB := 3 + float64(surplus)/float64(int64(1)<<30)

	// The flusher's footprint is the whole plan, admitted by PromptLen
	// alone (no prompt tokens), so it allocates fresh blocks without
	// touching the prefix trie.
	flushPrompt := planBlocks*blockTokens - outputLen
	prefix := make([]int, prefixLen)
	for i := range prefix {
		prefix[i] = 100003 + i*131
	}
	var reqs []zipserv.LiveRequest
	for i := 0; i < n; i++ {
		tokens := append(append([]int(nil), prefix...), make([]int, suffixLen)...)
		for j := 0; j < suffixLen; j++ {
			tokens[prefixLen+j] = (i+2)*1000003 + j*131
		}
		reqs = append(reqs, zipserv.LiveRequest{
			Prompt: tokens, OutputLen: outputLen, Arrival: float64(len(reqs)) * 0.01,
		})
		if i < n-1 {
			reqs = append(reqs, zipserv.LiveRequest{
				PromptLen: flushPrompt, OutputLen: outputLen, Arrival: float64(len(reqs)) * 0.01,
			})
		}
	}

	type row struct {
		mode          string
		p50, p99      float64
		prefillTokens int64
		hits, saved   int64
		completed     int64
		compBlocks    int
		ratio         float64
		decompClaims  int64
		goodput       float64
	}
	rows := make([]row, 0, 2)
	var resultSets [2][]zipserv.LiveResult
	for run, compressed := range []bool{false, true} {
		eng, err := zipserv.NewEngine(zipserv.ServingConfig{
			Model: model, Device: dev, NumGPUs: gpus, Backend: zipserv.ServingBackend(backend),
			ReservedGiB: reservedGiB,
		})
		if err != nil {
			return err
		}
		if got := eng.Plan().Blocks; got != planBlocks {
			return fmt.Errorf("constrained plan has %d KV blocks, want %d", got, planBlocks)
		}
		results, st, err := replayLive(zipserv.LiveConfig{
			Engine: eng, MaxBatch: 1, PrefixCache: true, CompressedCache: compressed,
		}, reqs)
		if err != nil {
			return err
		}
		resultSets[run] = results
		ttfts := make([]float64, len(results))
		for i, res := range results {
			ttfts[i] = res.TTFT
		}
		mode := "compress-off"
		if compressed {
			mode = "compress-on"
		}
		rows = append(rows, row{
			mode: mode, p50: percentile(ttfts, 0.50), p99: percentile(ttfts, 0.99),
			prefillTokens: st.PrefillTokens, hits: st.PrefixHits, saved: st.PrefixTokensSaved,
			completed: st.Completed, compBlocks: st.CompressedKVBlocks,
			ratio: st.KVCompressionRatio, decompClaims: st.DecompressClaims,
			goodput: st.Goodput,
		})
	}

	fmt.Printf("capacity-pressure workload: %d shared-prefix requests (%d-token prefix + %d suffix) interleaved with %d-token flushers on a %d-block plan (%s on %dx %s, %s)\n\n",
		n, prefixLen, suffixLen, flushPrompt, planBlocks, modelName, gpus, device, backend)
	fmt.Printf("%-14s %12s %12s %14s %8s %12s %11s %10s %8s %10s\n",
		"mode", "TTFT p50(s)", "TTFT p99(s)", "prefill toks", "hits", "toks saved", "comp blks", "ratio", "thaws", "goodput")
	csv := newCSVTable("mode", "ttft_p50_s", "ttft_p99_s", "prefill_tokens", "prefix_hits",
		"prefix_tokens_saved", "compressed_kv_blocks", "compression_ratio", "decompress_claims", "goodput_rps")
	for _, r := range rows {
		fmt.Printf("%-14s %12.4f %12.4f %14d %8d %12d %11d %10.2f %8d %10.2f\n",
			r.mode, r.p50, r.p99, r.prefillTokens, r.hits, r.saved, r.compBlocks, r.ratio, r.decompClaims, r.goodput)
		csv.add(r.mode, fmt.Sprintf("%.6f", r.p50), fmt.Sprintf("%.6f", r.p99),
			fmt.Sprintf("%d", r.prefillTokens), fmt.Sprintf("%d", r.hits), fmt.Sprintf("%d", r.saved),
			fmt.Sprintf("%d", r.compBlocks), fmt.Sprintf("%.4f", r.ratio),
			fmt.Sprintf("%d", r.decompClaims), fmt.Sprintf("%.3f", r.goodput))
	}
	off, on := rows[0], rows[1]
	fmt.Printf("\ncompress-on prefix hits: %d vs %d, prefill tokens saved: %d (decompressed %d frozen blocks)\n",
		on.hits, off.hits, off.prefillTokens-on.prefillTokens, on.decompClaims)
	if err := csv.write(csvPath); err != nil {
		return err
	}

	// The completion sets must match byte for byte: same requests, same
	// lengths, every error nil (replayLive already fails on errors).
	// The simulated outputs are fully determined by (ID, PromptLen,
	// OutputLen), and the compressed path's KV round-trip itself is
	// bit-verified inside the allocator's invariant checks.
	if len(resultSets[0]) != len(resultSets[1]) {
		return fmt.Errorf("completion sets differ: %d vs %d results", len(resultSets[0]), len(resultSets[1]))
	}
	for i := range resultSets[0] {
		a, b := resultSets[0][i], resultSets[1][i]
		if a.ID != b.ID || a.PromptLen != b.PromptLen || a.OutputLen != b.OutputLen {
			return fmt.Errorf("completion %d differs: off=(id %d, %d/%d) on=(id %d, %d/%d)",
				i, a.ID, a.PromptLen, a.OutputLen, b.ID, b.PromptLen, b.OutputLen)
		}
	}
	gate := newWinGate(requireWin)
	gate.require(on.hits > off.hits, "compress-on prefix hits %d <= compress-off %d", on.hits, off.hits)
	gate.require(on.saved >= off.saved, "compress-on tokens saved %d < compress-off %d", on.saved, off.saved)
	return gate.result()
}

// runCompareAdaptive replays one mixed long-prompt + shared-prefix
// workload — bursts of short decoders sharing a prompt prefix, with
// two long unique prompts riding every burst — through the live
// scheduler under each static prefill chunk budget and under the
// adaptive controllers (closed-loop chunk budget + prefix-cache pool
// sizing), and prints the short decoders' TPOT percentiles, the worst
// decode stall, goodput and the final controller operating point. The
// regime-switching pattern (deep decode batch during a burst, idle
// drain between bursts) is where a static budget must pick one regime
// to lose; with requireWin it exits non-zero unless adaptive TPOT p99
// matches or beats every static setting — the CI perf-regression gate
// for the controller. n (-requests) sizes the trace, rounded up to
// whole bursts of 8; the burst shape itself is fixed, so -rate, -out
// and -seed do not apply here.
func runCompareAdaptive(modelName, device string, gpus int, backend string, n, prompt int, target float64, csvPath string, requireWin bool) error {
	model, err := zipserv.ModelByName(modelName)
	if err != nil {
		return err
	}
	dev, err := zipserv.GPUByName(device)
	if err != nil {
		return err
	}
	if n <= 0 || prompt <= 0 || target <= 0 {
		return fmt.Errorf("invalid workload parameters")
	}

	// The workload mirrors the serve package's enforced comparison:
	// bursts of 8 requests, 0.7s apart; per burst 6 decoders (shared
	// 4×prompt-token prefix + unique prompt/4 suffix, 32 output tokens)
	// and 2 long prompts (16×prompt unique tokens, 8 output tokens).
	bursts := (n + 7) / 8
	tokens := func(n, seed int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = seed*100003 + i*131
		}
		return out
	}
	prefix := tokens(4*prompt, 1)
	var reqs []zipserv.LiveRequest
	id := 0
	for b := 0; b < bursts; b++ {
		at := float64(b) * 0.7
		for j := 0; j < 8; j++ {
			id++
			if j >= 6 {
				reqs = append(reqs, zipserv.LiveRequest{
					Prompt: tokens(16*prompt, 5000+id), OutputLen: 8, Arrival: at,
				})
				continue
			}
			p := append(append([]int(nil), prefix...), tokens(prompt/4, 100+id)...)
			reqs = append(reqs, zipserv.LiveRequest{Prompt: p, OutputLen: 32, Arrival: at})
		}
	}
	decoderTPOTs := func(results []zipserv.LiveResult) []float64 {
		var tpots []float64
		for i, res := range results {
			if reqs[i].OutputLen > 8 {
				tpots = append(tpots, res.TPOT)
			}
		}
		return tpots
	}

	fmt.Printf("adaptive mix: %d requests in %d bursts, shared %d-token prefix + every 4th prompt %d tokens, %.0fms step target (%s on %dx %s, %s)\n\n",
		len(reqs), bursts, 4*prompt, 16*prompt, target*1e3, modelName, gpus, device, backend)
	fmt.Printf("%-14s %16s %16s %18s %14s %14s\n",
		"mode", "dec TPOT p50(s)", "dec TPOT p99(s)", "max dec gap(s)", "goodput(r/s)", "chunk budget")
	csv := newCSVTable("mode", "decode_tpot_p50_s", "decode_tpot_p99_s", "max_decode_gap_s",
		"goodput_rps", "chunk_budget_tokens", "cache_pool_target_blocks")

	newEngine := func() (*zipserv.Engine, error) {
		return zipserv.NewEngine(zipserv.ServingConfig{
			Model: model, Device: dev, NumGPUs: gpus, Backend: zipserv.ServingBackend(backend),
		})
	}
	bestStatic := math.Inf(1)
	var adaptiveP99 float64
	for _, mode := range []struct {
		label string
		cfg   zipserv.LiveConfig
	}{
		{"static-64", zipserv.LiveConfig{PrefillChunkTokens: 64, PrefixCache: true}},
		{"static-256", zipserv.LiveConfig{PrefillChunkTokens: 256, PrefixCache: true}},
		{"static-1024", zipserv.LiveConfig{PrefillChunkTokens: 1024, PrefixCache: true}},
		{"adaptive", zipserv.LiveConfig{
			AdaptiveChunking: true, TargetStepTime: target,
			PrefixCache: true, AdaptivePrefixCache: true,
		}},
	} {
		eng, err := newEngine()
		if err != nil {
			return err
		}
		cfg := mode.cfg
		cfg.Engine = eng
		results, st, err := replayLive(cfg, reqs)
		if err != nil {
			return err
		}
		tpots := decoderTPOTs(results)
		p50, p99 := percentile(tpots, 0.50), percentile(tpots, 0.99)
		fmt.Printf("%-14s %16.4f %16.4f %18.4f %14.2f %14d\n",
			mode.label, p50, p99, st.MaxDecodeGap, st.Goodput, st.ChunkBudget)
		csv.add(mode.label, fmt.Sprintf("%.6f", p50), fmt.Sprintf("%.6f", p99),
			fmt.Sprintf("%.6f", st.MaxDecodeGap), fmt.Sprintf("%.3f", st.Goodput),
			fmt.Sprintf("%d", st.ChunkBudget), fmt.Sprintf("%d", st.CachePoolTarget))
		if mode.label == "adaptive" {
			adaptiveP99 = p99
		} else if p99 < bestStatic {
			bestStatic = p99
		}
	}
	fmt.Printf("\nadaptive TPOT p99 vs best static: %.4fs vs %.4fs (%.2fx)\n",
		adaptiveP99, bestStatic, bestStatic/adaptiveP99)
	if err := csv.write(csvPath); err != nil {
		return err
	}
	gate := newWinGate(requireWin)
	gate.require(adaptiveP99 <= bestStatic, "adaptive decode TPOT p99 %.6fs > best static %.6fs", adaptiveP99, bestStatic)
	return gate.result()
}

// runCompareDisagg replays one mixed long-prompt + chat workload —
// per burst of 8, five chat decoders sharing a prompt prefix (32
// output tokens) at the burst start and three 16×prompt unique long
// prompts (4 output tokens) staggered through the burst window, so
// every long prefill arrives while the chat decoders are mid-decode —
// through two-replica fleets:
//
//   - co-located baselines: two mixed replicas behind the plain
//     capacity-aware router, with monolithic and chunked prefill, so
//     every replica interleaves long prefills with its decode batch;
//   - disaggregated: one prefill replica that runs every prompt to its
//     first token and hands the sequence — KV compressed through the
//     TCA-TBE codec — to one decode replica, which decodes it to
//     completion without ever running a long prefill.
//
// It prints the chat decoders' TPOT percentiles, the worst decode
// stall, goodput and the handoff counters. With requireWin it exits
// non-zero unless disaggregation strictly beats the best co-located
// configuration on decode TPOT p99, completes no fewer requests, and
// every fleet produced the identical completion set — the CI gate for
// the disaggregation path. Completions are compared per submission
// index on (prompt, output) lengths, not on sequence IDs: the pooled
// fleet mints fleet-unique IDs from one shared counter while the plain
// router's replicas each count from 1, so IDs are not comparable
// across fleet shapes. n (-requests) sizes the trace, rounded up to
// whole bursts of 8; -rate, -out and -seed do not apply.
func runCompareDisagg(modelName, device string, gpus int, backend string, n, prompt int, csvPath string, requireWin bool) error {
	model, err := zipserv.ModelByName(modelName)
	if err != nil {
		return err
	}
	dev, err := zipserv.GPUByName(device)
	if err != nil {
		return err
	}
	if n <= 0 || prompt <= 0 {
		return fmt.Errorf("invalid workload parameters")
	}

	bursts := (n + 7) / 8
	tokens := func(n, seed int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = seed*100003 + i*131
		}
		return out
	}
	prefix := tokens(4*prompt, 1)
	var reqs []zipserv.LiveRequest
	id := 0
	for b := 0; b < bursts; b++ {
		at := float64(b) * 0.7
		for j := 0; j < 8; j++ {
			id++
			if j >= 5 {
				// Long prompts land mid-decode, 0.15s apart: the
				// interference a co-located replica must absorb into its
				// decode cadence and a prefill replica absorbs alone.
				reqs = append(reqs, zipserv.LiveRequest{
					Prompt:    tokens(16*prompt, 5000+id),
					OutputLen: 4, Arrival: at + 0.15*float64(j-4),
				})
				continue
			}
			p := append(append([]int(nil), prefix...), tokens(prompt/4, 100+id)...)
			reqs = append(reqs, zipserv.LiveRequest{Prompt: p, OutputLen: 32, Arrival: at})
		}
	}

	newServer := func(cfg zipserv.LiveConfig) (*zipserv.LiveServer, error) {
		eng, err := zipserv.NewEngine(zipserv.ServingConfig{
			Model: model, Device: dev, NumGPUs: gpus, Backend: zipserv.ServingBackend(backend),
		})
		if err != nil {
			return nil, err
		}
		cfg.Engine = eng
		cfg.QueueDepth = len(reqs)
		cfg.PrefixCache = true
		return zipserv.NewLiveServer(cfg)
	}
	fleets := []struct {
		label  string
		disagg bool
		cfgs   [2]zipserv.LiveConfig // one per replica
	}{
		{"colo-mono", false, [2]zipserv.LiveConfig{{}, {}}},
		{"colo-chunk256", false, [2]zipserv.LiveConfig{
			{PrefillChunkTokens: 256}, {PrefillChunkTokens: 256},
		}},
		{"colo-chunk1024", false, [2]zipserv.LiveConfig{
			{PrefillChunkTokens: 1024}, {PrefillChunkTokens: 1024},
		}},
		// The prefill replica runs flat out, so every handoff is queued
		// ahead of the decode replica's clock; the decode replica paces
		// against the wall clock, so each import lands at its virtual
		// ready time instead of wherever the goroutine race left the
		// clock — that makes the cross-replica interleaving (and the
		// gated TPOT numbers) deterministic. The co-located fleets have
		// no cross-replica events, so pacing would only slow them down.
		{"disagg-1p1d", true, [2]zipserv.LiveConfig{
			{Pool: zipserv.LivePoolPrefill},
			{Pool: zipserv.LivePoolDecode, TimeScale: 0.5},
		}},
	}

	fmt.Printf("disagg mix: %d requests in %d bursts, 5 chat decoders (shared %d-token prefix) + 3 staggered long %d-token prompts per burst, 2 replicas per fleet (%s on %dx %s, %s)\n\n",
		len(reqs), bursts, 4*prompt, 16*prompt, modelName, gpus, device, backend)
	fmt.Printf("%-16s %16s %16s %18s %14s %10s %14s\n",
		"fleet", "dec TPOT p50(s)", "dec TPOT p99(s)", "max dec gap(s)", "goodput(r/s)", "handoffs", "handoff MiB")
	csv := newCSVTable("fleet", "decode_tpot_p50_s", "decode_tpot_p99_s", "max_decode_gap_s",
		"goodput_rps", "completed", "handoffs", "handoff_bytes", "handoff_failures")

	type outcome struct {
		results   []zipserv.LiveResult
		p99       float64
		completed int64
	}
	bestColo := outcome{p99: math.Inf(1)}
	var bestColoLabel string
	var disagg outcome
	for _, f := range fleets {
		a, err := newServer(f.cfgs[0])
		if err != nil {
			return err
		}
		b, err := newServer(f.cfgs[1])
		if err != nil {
			return err
		}
		var router *zipserv.LiveRouter
		if f.disagg {
			router, err = zipserv.NewPooledLiveRouter(a, b)
		} else {
			router, err = zipserv.NewLiveRouter(a, b)
		}
		if err != nil {
			return err
		}
		results, st, err := replayRouted(router, reqs)
		if err != nil {
			return err
		}
		var tpots []float64
		for i, res := range results {
			if reqs[i].OutputLen > 8 { // the chat decoders, not the long prompts
				tpots = append(tpots, res.TPOT)
			}
		}
		p50, p99 := percentile(tpots, 0.50), percentile(tpots, 0.99)
		fmt.Printf("%-16s %16.4f %16.4f %18.4f %14.2f %10d %14.2f\n",
			f.label, p50, p99, st.MaxDecodeGap, st.Goodput, st.Handoffs,
			float64(st.HandoffBytes)/(1<<20))
		csv.add(f.label, fmt.Sprintf("%.6f", p50), fmt.Sprintf("%.6f", p99),
			fmt.Sprintf("%.6f", st.MaxDecodeGap), fmt.Sprintf("%.3f", st.Goodput),
			fmt.Sprintf("%d", st.Completed), fmt.Sprintf("%d", st.Handoffs),
			fmt.Sprintf("%d", st.HandoffBytes), fmt.Sprintf("%d", st.HandoffFailures))
		o := outcome{results: results, p99: p99, completed: st.Completed}
		switch {
		case f.disagg:
			disagg = o
		case p99 < bestColo.p99:
			bestColo, bestColoLabel = o, f.label
		}
	}
	fmt.Printf("\ndisaggregated TPOT p99 vs best co-located (%s): %.4fs vs %.4fs (%.2fx)\n",
		bestColoLabel, disagg.p99, bestColo.p99, bestColo.p99/disagg.p99)
	if err := csv.write(csvPath); err != nil {
		return err
	}

	// Completion identity: every fleet replays the same submissions and
	// replayRouted fails on any per-request error, so the result at each
	// index must describe the same (prompt, output) pair; the handoff's
	// KV round-trip itself is bit-verified inside ImportSequence.
	if len(disagg.results) != len(bestColo.results) {
		return fmt.Errorf("completion sets differ: %d vs %d results", len(disagg.results), len(bestColo.results))
	}
	for i := range disagg.results {
		d, c := disagg.results[i], bestColo.results[i]
		if d.PromptLen != c.PromptLen || d.OutputLen != c.OutputLen {
			return fmt.Errorf("completion %d differs: disagg=(%d/%d) colo=(%d/%d)",
				i, d.PromptLen, d.OutputLen, c.PromptLen, c.OutputLen)
		}
	}
	gate := newWinGate(requireWin)
	gate.require(disagg.p99 < bestColo.p99,
		"disaggregated decode TPOT p99 %.6fs >= best co-located (%s) %.6fs", disagg.p99, bestColoLabel, bestColo.p99)
	gate.require(disagg.completed >= bestColo.completed,
		"disaggregation completed %d requests, co-located %d", disagg.completed, bestColo.completed)
	return gate.result()
}

// runCompareAffinity drives one multi-tenant shared-prefix burst
// workload through a 4-replica fleet twice — behind the plain
// least-loaded router, then behind the same fleet shape with
// prefix-affinity dispatch enabled — and prints fleet prefix reuse,
// the router's affinity hit/spill counters, and TTFT percentiles.
//
// The workload models tenants hammering their own system prompts: 8
// tenants, each owning a 4×prompt-token shared prefix; every wave
// submits two requests per tenant (unique prompt/2-token suffixes, 32
// output tokens), in an order shuffled by a deterministic LCG seeded
// per wave. The shuffle matters: submitted in a fixed tenant order,
// least-loaded round-robin would accidentally pin tenants to replicas
// and look affinity-aware; shuffling scatters them, which is exactly
// what real interleaved arrivals do. Waves are submitted live
// (ArrivalNow) and fully drained before the next wave starts, so every
// replica's published prefix-trie digest is current when the router
// scores the next wave — the affinity signal path this mode exists to
// measure. Both fleets replay identical submission orders.
//
// With requireWin it exits non-zero unless affinity routing produced
// strictly more fleet prefix hits AND a TTFT p50 no worse than
// least-loaded, with an identical completion set — the CI gate for the
// affinity-routing path. n (-requests) sizes the trace, rounded up to
// whole 16-request waves; -rate, -out and -seed do not apply.
func runCompareAffinity(modelName, device string, gpus int, backend string, n, prompt int, csvPath string, requireWin bool) error {
	model, err := zipserv.ModelByName(modelName)
	if err != nil {
		return err
	}
	dev, err := zipserv.GPUByName(device)
	if err != nil {
		return err
	}
	if n <= 0 || prompt <= 0 {
		return fmt.Errorf("invalid workload parameters")
	}

	const (
		fleetSize = 4
		tenants   = 8
		perTenant = 2 // requests per tenant per wave
		outputLen = 32
	)
	perWave := tenants * perTenant
	waves := (n + perWave - 1) / perWave
	if waves < 2 {
		waves = 2 // wave 1 only seeds the digests; the win needs a warm wave
	}
	total := waves * perWave
	prefixLen, suffixLen := 4*prompt, prompt/2
	if suffixLen == 0 {
		suffixLen = 1
	}
	tokens := func(n, seed int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = seed*100003 + i*131
		}
		return out
	}
	prefixes := make([][]int, tenants)
	for t := range prefixes {
		prefixes[t] = tokens(prefixLen, 1000+t)
	}
	// Canonical request list, wave-major; submission order within a wave
	// is a Fisher–Yates shuffle driven by an LCG seeded on the wave
	// index, identical across both fleets.
	reqs := make([]zipserv.LiveRequest, total)
	for w := 0; w < waves; w++ {
		for t := 0; t < tenants; t++ {
			for k := 0; k < perTenant; k++ {
				idx := w*perWave + t*perTenant + k
				p := append(append([]int(nil), prefixes[t]...), tokens(suffixLen, 7000+idx)...)
				reqs[idx] = zipserv.LiveRequest{
					Prompt: p, OutputLen: outputLen, Arrival: zipserv.LiveArrivalNow,
				}
			}
		}
	}
	waveOrder := func(w int) []int {
		order := make([]int, perWave)
		for i := range order {
			order[i] = w*perWave + i
		}
		x := uint64(w)*2654435761 + 12345
		for i := perWave - 1; i > 0; i-- {
			x = x*6364136223846793005 + 1442695040888963407
			j := int((x >> 33) % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}
		return order
	}

	runFleet := func(affinity bool) ([]zipserv.LiveResult, zipserv.LiveStats, error) {
		var stats zipserv.LiveStats
		backends := make([]zipserv.LiveBackend, fleetSize)
		for i := range backends {
			eng, err := zipserv.NewEngine(zipserv.ServingConfig{
				Model: model, Device: dev, NumGPUs: gpus, Backend: zipserv.ServingBackend(backend),
			})
			if err != nil {
				return nil, stats, err
			}
			srv, err := zipserv.NewLiveServer(zipserv.LiveConfig{
				Engine: eng, QueueDepth: total, PrefixCache: true,
			})
			if err != nil {
				return nil, stats, err
			}
			backends[i] = srv
		}
		router, err := zipserv.NewLiveRouter(backends...)
		if err != nil {
			return nil, stats, err
		}
		if affinity {
			// A generous band: tenant pinning concentrates load a little
			// by design, and spilling on every transient imbalance would
			// throw the cache away.
			if err := router.EnableAffinity(zipserv.LiveAffinityConfig{LoadBand: 16}); err != nil {
				return nil, stats, err
			}
		}
		router.Start()
		results := make([]zipserv.LiveResult, total)
		for w := 0; w < waves; w++ {
			order := waveOrder(w)
			tickets := make([]*zipserv.LiveTicket, len(order))
			for i, idx := range order {
				if tickets[i], err = router.Submit(reqs[idx]); err != nil {
					return nil, stats, err
				}
			}
			for i, idx := range order {
				results[idx] = <-tickets[i].Result()
				if results[idx].Err != nil {
					return nil, stats, results[idx].Err
				}
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := router.Stop(ctx); err != nil {
			return nil, stats, err
		}
		return results, router.Stats(), nil
	}

	type row struct {
		mode        string
		p50, p99    float64
		hits, saved int64
		affHits     int64
		affSpills   int64
		completed   int64
		goodput     float64
	}
	rows := make([]row, 0, 2)
	var resultSets [2][]zipserv.LiveResult
	for run, affinity := range []bool{false, true} {
		results, st, err := runFleet(affinity)
		if err != nil {
			return err
		}
		resultSets[run] = results
		ttfts := make([]float64, len(results))
		for i, res := range results {
			ttfts[i] = res.TTFT
		}
		mode := "least-loaded"
		if affinity {
			mode = "affinity"
		}
		rows = append(rows, row{
			mode: mode, p50: percentile(ttfts, 0.50), p99: percentile(ttfts, 0.99),
			hits: st.PrefixHits, saved: st.PrefixTokensSaved,
			affHits: st.PrefixAffinityHits, affSpills: st.AffinitySpills,
			completed: st.Completed, goodput: st.Goodput,
		})
	}

	fmt.Printf("affinity burst: %d tenants x %d waves x %d requests, %d-token shared prefix + %d suffix, %d replicas (%s on %dx %s, %s)\n\n",
		tenants, waves, perTenant, prefixLen, suffixLen, fleetSize, modelName, gpus, device, backend)
	fmt.Printf("%-14s %14s %14s %12s %14s %10s %10s %12s\n",
		"routing", "TTFT p50(s)", "TTFT p99(s)", "hits", "tokens saved", "aff hits", "spills", "goodput(r/s)")
	csv := newCSVTable("routing", "ttft_p50_s", "ttft_p99_s", "prefix_hits", "prefix_tokens_saved",
		"prefix_affinity_hits", "affinity_spills", "completed", "goodput_rps")
	for _, r := range rows {
		fmt.Printf("%-14s %14.4f %14.4f %12d %14d %10d %10d %12.2f\n",
			r.mode, r.p50, r.p99, r.hits, r.saved, r.affHits, r.affSpills, r.goodput)
		csv.add(r.mode, fmt.Sprintf("%.6f", r.p50), fmt.Sprintf("%.6f", r.p99),
			fmt.Sprintf("%d", r.hits), fmt.Sprintf("%d", r.saved),
			fmt.Sprintf("%d", r.affHits), fmt.Sprintf("%d", r.affSpills),
			fmt.Sprintf("%d", r.completed), fmt.Sprintf("%.3f", r.goodput))
	}
	base, aff := rows[0], rows[1]
	fmt.Printf("\naffinity fleet prefix hits: %d vs %d, TTFT p50: %.4fs vs %.4fs",
		aff.hits, base.hits, aff.p50, base.p50)
	if aff.p50 > 0 {
		fmt.Printf(" (%.2fx)", base.p50/aff.p50)
	}
	fmt.Println()
	if err := csv.write(csvPath); err != nil {
		return err
	}

	// Completion identity: both fleets replay the same submission orders
	// and the runner fails on any per-request error, so each canonical
	// index must describe the same (prompt, output) pair.
	for i := range resultSets[0] {
		b, a := resultSets[0][i], resultSets[1][i]
		if b.PromptLen != a.PromptLen || b.OutputLen != a.OutputLen {
			return fmt.Errorf("completion %d differs: least-loaded=(%d/%d) affinity=(%d/%d)",
				i, b.PromptLen, b.OutputLen, a.PromptLen, a.OutputLen)
		}
	}
	gate := newWinGate(requireWin)
	gate.require(aff.hits > base.hits,
		"affinity fleet prefix hits %d <= least-loaded %d", aff.hits, base.hits)
	gate.require(aff.p50 <= base.p50,
		"affinity TTFT p50 %.6fs > least-loaded %.6fs", aff.p50, base.p50)
	gate.require(aff.completed == base.completed,
		"affinity completed %d requests, least-loaded %d", aff.completed, base.completed)
	return gate.result()
}

// percentile returns the p-quantile (0..1) of xs by nearest rank.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(math.Ceil(p*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	return s[i]
}
