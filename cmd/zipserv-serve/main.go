// Command zipserv-serve runs the end-to-end serving simulation (§6.5)
// for one deployment and prints latency, throughput and the memory
// plan, optionally comparing all four serving backends.
//
// Usage:
//
//	zipserv-serve -model LLaMA3.1-8B -device RTX4090 -batch 32 -out 2048
//	zipserv-serve -model LLaMA3.1-70B -device L40S -gpus 4 -compare
package main

import (
	"flag"
	"fmt"
	"os"

	"zipserv"
)

func main() {
	model := flag.String("model", "LLaMA3.1-8B", "model name from the zoo")
	device := flag.String("device", "RTX4090", "GPU model")
	gpus := flag.Int("gpus", 1, "tensor-parallel degree")
	backend := flag.String("backend", "zipserv", "serving backend: zipserv, vllm, transformers, dfloat11")
	batch := flag.Int("batch", 32, "request batch size")
	prompt := flag.Int("prompt", 128, "prompt length in tokens")
	out := flag.Int("out", 512, "output length in tokens")
	compare := flag.Bool("compare", false, "run all four backends and compare")
	flag.Parse()

	if err := run(*model, *device, *gpus, *backend, *batch, *prompt, *out, *compare); err != nil {
		fmt.Fprintln(os.Stderr, "zipserv-serve:", err)
		os.Exit(1)
	}
}

func run(modelName, device string, gpus int, backend string, batch, prompt, out int, compare bool) error {
	model, err := zipserv.ModelByName(modelName)
	if err != nil {
		return err
	}
	dev, err := zipserv.GPUByName(device)
	if err != nil {
		return err
	}
	backends := []zipserv.ServingBackend{zipserv.ServingBackend(backend)}
	if compare {
		backends = []zipserv.ServingBackend{
			zipserv.ServeZipServ, zipserv.ServeVLLM, zipserv.ServeTransformers, zipserv.ServeDFloat11,
		}
	}

	fmt.Printf("deployment: %s on %dx %s, batch %d, prompt %d, output %d\n\n",
		modelName, gpus, device, batch, prompt, out)
	fmt.Printf("%-14s %12s %14s %10s %8s %12s %12s\n",
		"backend", "latency(s)", "tput(tok/s)", "waves", "conc", "weights(GiB)", "KV cap(GiB)")
	var base float64
	for _, b := range backends {
		eng, err := zipserv.NewEngine(zipserv.ServingConfig{
			Model: model, Device: dev, NumGPUs: gpus, Backend: b,
		})
		if err != nil {
			fmt.Printf("%-14s does not fit: %v\n", b, err)
			continue
		}
		m, err := eng.Run(batch, prompt, out)
		if err != nil {
			fmt.Printf("%-14s failed: %v\n", b, err)
			continue
		}
		fmt.Printf("%-14s %12.2f %14.1f %10d %8d %12.2f %12.2f\n",
			b, m.TotalSeconds, m.Throughput, m.Waves, m.MaxConcurrent, m.WeightGiB, m.KVCapacityGiB)
		if b == zipserv.ServeZipServ {
			base = m.Throughput
		} else if compare && base > 0 {
			fmt.Printf("%-14s   (ZipServ speedup: %.2fx)\n", "", base/m.Throughput)
		}
	}
	return nil
}
