package zipserv

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links/images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocsLinksResolve walks every markdown page of the documentation
// surface — docs/ plus the repo-root pages — and fails on any relative
// link whose target file does not exist. External (http, mailto) and
// pure-fragment links are skipped; a fragment on a relative link is
// stripped before the existence check. This is the CI link checker:
// renaming or dropping a docs page without fixing its referrers fails
// `go test ./...`. Imported reference material (paper scrapes, code
// snippets) is not part of the surface and is excluded.
func TestDocsLinksResolve(t *testing.T) {
	imported := map[string]bool{"PAPER.md": true, "PAPERS.md": true, "SNIPPETS.md": true, "ISSUE.md": true}
	var pages []string
	for _, glob := range []string{"*.md", "docs/*.md"} {
		m, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		for _, page := range m {
			if !imported[page] {
				pages = append(pages, page)
			}
		}
	}
	if len(pages) == 0 {
		t.Fatal("no markdown pages found; is the test running from the repo root?")
	}
	for _, page := range pages {
		body, err := os.ReadFile(page)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			switch {
			case strings.Contains(target, "://"), strings.HasPrefix(target, "mailto:"):
				continue // external
			case strings.HasPrefix(target, "#"):
				continue // same-page fragment
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(page), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%s)", page, m[1], err)
			}
		}
	}
}
