package warp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"zipserv/internal/core"
	"zipserv/internal/huffman"
	"zipserv/internal/weights"
)

func TestExecUniformLanes(t *testing.T) {
	var lanes [Lanes][]int
	for i := range lanes {
		lanes[i] = []int{3, 3, 3}
	}
	r, err := Exec(lanes)
	if err != nil {
		t.Fatal(err)
	}
	if r.LockstepCycles != 9 {
		t.Errorf("LockstepCycles = %d, want 9", r.LockstepCycles)
	}
	if r.Utilisation != 1.0 {
		t.Errorf("Utilisation = %f, want 1.0 for uniform lanes", r.Utilisation)
	}
	if r.DivergenceFactor != 1.0 {
		t.Errorf("DivergenceFactor = %f, want 1.0", r.DivergenceFactor)
	}
}

func TestExecDivergentLanes(t *testing.T) {
	// One slow lane forces the whole warp to wait: lockstep pays the
	// max, so utilisation collapses toward 1/Lanes.
	var lanes [Lanes][]int
	for i := range lanes {
		lanes[i] = []int{1}
	}
	lanes[7] = []int{32}
	r, err := Exec(lanes)
	if err != nil {
		t.Fatal(err)
	}
	if r.LockstepCycles != 32 {
		t.Errorf("LockstepCycles = %d, want 32 (max lane)", r.LockstepCycles)
	}
	wantUtil := float64(31+32) / float64(Lanes*32)
	if math.Abs(r.Utilisation-wantUtil) > 1e-12 {
		t.Errorf("Utilisation = %f, want %f", r.Utilisation, wantUtil)
	}
	if r.DivergenceFactor <= 10 {
		t.Errorf("DivergenceFactor = %f, want >> 1", r.DivergenceFactor)
	}
}

func TestExecRaggedLaneLengths(t *testing.T) {
	// Lanes with fewer iterations idle but still stall the warp for
	// the remaining iterations of longer lanes.
	var lanes [Lanes][]int
	for i := range lanes {
		lanes[i] = []int{2}
	}
	lanes[0] = []int{2, 5, 5}
	r, err := Exec(lanes)
	if err != nil {
		t.Fatal(err)
	}
	if r.LockstepCycles != 2+5+5 {
		t.Errorf("LockstepCycles = %d, want 12", r.LockstepCycles)
	}
	if r.MaxSteps != 3 {
		t.Errorf("MaxSteps = %d, want 3", r.MaxSteps)
	}
}

func TestExecErrors(t *testing.T) {
	var empty [Lanes][]int
	if _, err := Exec(empty); err == nil {
		t.Error("all-empty warp accepted")
	}
	var bad [Lanes][]int
	bad[0] = []int{-1}
	if _, err := Exec(bad); err == nil {
		t.Error("negative cost accepted")
	}
}

func TestTBEDecodeIsDivergenceFree(t *testing.T) {
	// The §4.2 claim, observed: for any compressed content — Gaussian,
	// outlier-heavy, or adversarial random bits — every lane of the
	// TBE decoder executes the identical sequence, so utilisation is
	// exactly 1.0.
	inputs := []struct {
		name string
		seed int64
		gen  func() *core.Compressed
	}{
		{"gaussian", 1, func() *core.Compressed {
			cm, err := core.Compress(weights.Gaussian(128, 128, 0.02, 1))
			if err != nil {
				t.Fatal(err)
			}
			return cm
		}},
		{"outliers", 2, func() *core.Compressed {
			cm, err := core.Compress(weights.GaussianWithOutliers(128, 128, 0.02, 0.3, 2))
			if err != nil {
				t.Fatal(err)
			}
			return cm
		}},
	}
	for _, in := range inputs {
		t.Run(in.name, func(t *testing.T) {
			cm := in.gen()
			for frag := 0; frag < cm.Grid.NumFrags(); frag += 17 {
				r, err := SimulateTBEDecode(cm, frag)
				if err != nil {
					t.Fatal(err)
				}
				if r.Utilisation != 1.0 || r.DivergenceFactor != 1.0 {
					t.Fatalf("frag %d: util %f, divergence %f — TBE decode must be uniform",
						frag, r.Utilisation, r.DivergenceFactor)
				}
			}
		})
	}
}

func TestTBEDecodeFragOutOfRange(t *testing.T) {
	cm, err := core.Compress(weights.Gaussian(64, 64, 0.02, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateTBEDecode(cm, -1); err == nil {
		t.Error("negative frag accepted")
	}
	if _, err := SimulateTBEDecode(cm, cm.Grid.NumFrags()); err == nil {
		t.Error("out-of-range frag accepted")
	}
}

func TestHuffmanDecodeDiverges(t *testing.T) {
	// §3.2 observed: Huffman decode of a skewed exponent stream makes
	// warp lanes wait for whichever lane drew the longest code, so
	// utilisation drops well below 1 even though each lane's chunk is
	// independent.
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, Lanes*512)
	for i := range data {
		data[i] = byte(124 + int(rng.NormFloat64()*1.3)) // exponent-like skew
	}
	s, err := huffman.Encode(data, 512)
	if err != nil {
		t.Fatal(err)
	}
	r, err := SimulateHuffmanDecode(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.DivergenceFactor < 1.15 {
		t.Errorf("Huffman divergence factor %.3f, want ≥ 1.15 on skewed data", r.DivergenceFactor)
	}
	if r.Utilisation > 0.9 {
		t.Errorf("Huffman warp utilisation %.3f, want < 0.9", r.Utilisation)
	}
	t.Logf("Huffman: divergence %.2f, utilisation %.1f%%", r.DivergenceFactor, r.Utilisation*100)
}

func TestHuffmanUniformAlphabetDoesNotDiverge(t *testing.T) {
	// Control: a single-symbol stream has one code length, so even
	// Huffman runs uniform — divergence comes from the length
	// *distribution*, not from entropy coding per se.
	data := make([]byte, Lanes*256)
	for i := range data {
		data[i] = 42
	}
	s, err := huffman.Encode(data, 256)
	if err != nil {
		t.Fatal(err)
	}
	r, err := SimulateHuffmanDecode(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.DivergenceFactor != 1.0 {
		t.Errorf("single-symbol Huffman divergence %.3f, want 1.0", r.DivergenceFactor)
	}
}

func TestHuffmanNeedsFullWarp(t *testing.T) {
	s, err := huffman.Encode([]byte("short"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateHuffmanDecode(s); err == nil {
		t.Error("stream with too few chunks accepted")
	}
}

func TestTBEBeatsHuffmanOnUtilisation(t *testing.T) {
	// The package's headline comparison: same weights, both decoders
	// simulated — TBE utilisation strictly above Huffman.
	w := weights.Gaussian(256, 256, 0.02, 5)
	cm, err := core.Compress(w)
	if err != nil {
		t.Fatal(err)
	}
	tbe, err := SimulateTBEDecode(cm, 0)
	if err != nil {
		t.Fatal(err)
	}
	exps := make([]byte, len(w.Data))
	for i, v := range w.Data {
		exps[i] = v.Exponent()
	}
	s, err := huffman.Encode(exps, len(exps)/Lanes)
	if err != nil {
		t.Fatal(err)
	}
	huff, err := SimulateHuffmanDecode(s)
	if err != nil {
		t.Fatal(err)
	}
	if tbe.Utilisation <= huff.Utilisation {
		t.Errorf("TBE utilisation %.3f not above Huffman %.3f", tbe.Utilisation, huff.Utilisation)
	}
}

func TestQuickLockstepNeverBeatsIdeal(t *testing.T) {
	// Property: lockstep execution can never be faster than the MIMD
	// ideal, and utilisation is always in (0, 1].
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var lanes [Lanes][]int
		for i := range lanes {
			steps := 1 + rng.Intn(20)
			lanes[i] = make([]int, steps)
			for j := range lanes[i] {
				lanes[i][j] = rng.Intn(10)
			}
		}
		r, err := Exec(lanes)
		if err != nil {
			return false
		}
		return float64(r.LockstepCycles) >= r.IdealCycles-1e-9 &&
			r.Utilisation > 0 == (r.WorkCycles > 0) && r.Utilisation <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
