// Package warp is a lane-accurate SIMT lockstep simulator used to
// demonstrate — rather than assume — the architectural argument of
// §3.2 of the ZipServ paper: on a GPU warp, all 32 lanes execute in
// lockstep, so a data-dependent decode loop costs every lane the cost
// of its slowest sibling. Variable-length entropy codes (Huffman, ANS)
// give different lanes different per-symbol work, serialising the
// warp; TCA-TBE's fixed-length, predicated decode gives every lane an
// identical instruction stream, so warp utilisation is 100% by
// construction.
//
// The simulator executes real decode workloads: the Huffman lane
// programs come from actual encoded bitstreams (per-symbol costs are
// the real code lengths), and the TCA-TBE lane programs come from
// actual compressed FragTiles (per-element costs follow the predicated
// instruction sequence of Algorithm 2).
package warp

import (
	"fmt"

	"zipserv/internal/core"
	"zipserv/internal/huffman"
	"zipserv/internal/tile"
)

// Lanes is the SIMT warp width.
const Lanes = 32

// Report summarises one lockstep execution of a warp.
type Report struct {
	// LockstepCycles is the wall-clock cost under SIMT execution: at
	// every iteration the warp pays the maximum active-lane cost.
	LockstepCycles int64

	// IdealCycles is the cost if lanes ran independently (MIMD): the
	// mean per-lane work, i.e. total work / Lanes.
	IdealCycles float64

	// WorkCycles is the total useful work across all lanes.
	WorkCycles int64

	// Utilisation is WorkCycles / (Lanes × LockstepCycles): the
	// fraction of issue slots doing useful work (1.0 = no divergence).
	Utilisation float64

	// DivergenceFactor is LockstepCycles / IdealCycles (≥ 1; 1.0 means
	// perfectly uniform lanes).
	DivergenceFactor float64

	// MaxSteps is the longest lane program (iterations).
	MaxSteps int
}

// Exec runs a warp whose lane i performs len(laneCosts[i]) sequential
// iterations, the j-th costing laneCosts[i][j] cycles. Lockstep
// semantics: iteration j costs the warp max over all lanes still
// active at j; exhausted lanes idle (masked out but stalled).
func Exec(laneCosts [Lanes][]int) (Report, error) {
	var r Report
	maxSteps := 0
	for lane, costs := range laneCosts {
		for j, c := range costs {
			if c < 0 {
				return r, fmt.Errorf("warp: lane %d step %d has negative cost %d", lane, j, c)
			}
			r.WorkCycles += int64(c)
		}
		if len(costs) > maxSteps {
			maxSteps = len(costs)
		}
	}
	if maxSteps == 0 {
		return r, fmt.Errorf("warp: all lanes empty")
	}
	r.MaxSteps = maxSteps
	for j := 0; j < maxSteps; j++ {
		step := 0
		for lane := 0; lane < Lanes; lane++ {
			if j < len(laneCosts[lane]) && laneCosts[lane][j] > step {
				step = laneCosts[lane][j]
			}
		}
		r.LockstepCycles += int64(step)
	}
	r.IdealCycles = float64(r.WorkCycles) / Lanes
	if r.LockstepCycles > 0 {
		r.Utilisation = float64(r.WorkCycles) / float64(Lanes*r.LockstepCycles)
	}
	if r.IdealCycles > 0 {
		r.DivergenceFactor = float64(r.LockstepCycles) / r.IdealCycles
	}
	return r, nil
}

// SimulateTBEDecode executes Algorithm 2 for one FragTile under SIMT
// semantics. The decoder is branch-free by design: both the
// high-frequency and fallback paths are computed with predication, so
// every lane's per-element cost is the identical constant regardless
// of the bitmap contents. The function still derives the cost from the
// real compressed tile (via the same per-op accounting as
// core.Counters) so the uniformity is observed, not asserted.
func SimulateTBEDecode(cm *core.Compressed, frag int) (Report, error) {
	if frag < 0 || frag >= cm.Grid.NumFrags() {
		return Report{}, fmt.Errorf("warp: frag %d out of range [0,%d)", frag, cm.Grid.NumFrags())
	}
	n := cm.Opts.CodewordBits
	// Predicated per-element cost: the warp executes the union of both
	// paths and selects. This is exactly how the CUDA kernel avoids
	// divergence (§4.3.2 "branch-free decoding").
	perElem := predicatedElementCost(n)
	indicatorCost := n - 1 // the per-lane OR of the bit-planes

	var lanes [Lanes][]int
	for lane := 0; lane < Lanes; lane++ {
		costs := []int{indicatorCost}
		for k := 0; k < tile.ElemsPerLane; k++ {
			costs = append(costs, perElem)
		}
		lanes[lane] = costs
	}
	return Exec(lanes)
}

// predicatedElementCost is the per-element instruction count when both
// decode paths execute under predication: the shared prefix (mask,
// popcount, mode test) plus max(high path, fallback path) plus a
// select.
func predicatedElementCost(n int) int {
	shared := 5                       // mask SHF+IADD, POPC, mode SHF+LOP3
	high := (n + 2) + (n + 1) + 1 + 1 // code gather, reassembly, implicit lookup, load
	low := 1 + 1                      // fallback index, load
	sel := 1
	if low > high {
		high = low
	}
	return shared + high + sel
}

// SimulateHuffmanDecode executes a chunked Huffman decode under SIMT
// semantics: lane i walks chunk i of the stream, and each symbol's
// cost is its real code length (the canonical decoder lengthens the
// code bit by bit, §3.2 stage ❷) plus the pointer advance (stage ❸).
// Chunks beyond the warp width are ignored; the stream must have at
// least Lanes chunks.
func SimulateHuffmanDecode(s *huffman.Stream) (Report, error) {
	if s.NumChunks() < Lanes {
		return Report{}, fmt.Errorf("warp: stream has %d chunks, need ≥ %d for a full warp", s.NumChunks(), Lanes)
	}
	var lanes [Lanes][]int
	for lane := 0; lane < Lanes; lane++ {
		syms, err := s.DecodeChunk(lane)
		if err != nil {
			return Report{}, fmt.Errorf("warp: decoding chunk %d: %w", lane, err)
		}
		costs := make([]int, len(syms))
		for j, sym := range syms {
			// Bit-serial code walk + one pointer-advance op.
			costs[j] = int(s.CodeLens[sym]) + 1
		}
		lanes[lane] = costs
	}
	return Exec(lanes)
}
