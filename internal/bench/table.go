// Package bench contains the experiment drivers that regenerate every
// table and figure of the ZipServ paper's evaluation (§6), shared by
// the cmd/zipserv-figures CLI and the root-level Go benchmarks. Each
// driver returns formatted Tables; DESIGN.md §3 maps figure numbers to
// drivers.
package bench

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row built from arbitrary values (formatted with %v
// unless already strings; float64 gets 4 significant digits).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	a := v
	if a < 0 {
		a = -a
	}
	switch {
	case v == 0:
		return "0"
	case a >= 1000:
		return fmt.Sprintf("%.0f", v)
	case a >= 10:
		return fmt.Sprintf("%.2f", v)
	case a >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	sb.WriteString(strings.Repeat("=", len(t.Title)))
	sb.WriteByte('\n')

	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", max(1, total-2)))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
