package bench

import (
	"fmt"

	"zipserv/internal/codec"
	"zipserv/internal/gpu"
	"zipserv/internal/weights"
)

// paperCR is the entropy-coder compression ratio of §3.1 (used for the
// Huffman/rANS baselines); TCA-TBE's own ratio comes from
// gpu.DefaultCompression().
const paperCR = 1.50

var baselineCodecs = []string{codec.NameDietGPU, codec.NameNvComp, codec.NameDFloat11}

// shapeOf builds the GEMM shape of a model layer at token count n.
func shapeOf(m weights.Model, kind weights.LayerKind, n int) gpu.Shape {
	s := m.LayerShape(kind)
	return gpu.Shape{M: s.M, K: s.K, N: n}
}

// Fig01 reproduces Figure 1: execution time of lossless compression
// pipelines on L40S GateUp_proj layers — the decompression step alone
// takes 1.56–3.44× the core GEMM time.
func Fig01() *Table {
	spec := gpu.MustByName("L40S")
	t := &Table{
		Title:   "Figure 1: decoupled pipeline cost on L40S GateUp_proj (batch 16)",
		Headers: []string{"model", "codec", "decomp(ms)", "gemm(ms)", "decomp/gemm"},
	}
	for _, name := range []string{"LLaMA3.1-8B", "Qwen2.5-32B", "Mistral-24B"} {
		m, err := weights.ByName(name)
		if err != nil {
			panic(err)
		}
		s := shapeOf(m, weights.GateUpProj, 16)
		gemm := gpu.CuBLAS(spec, s).Total
		for _, cn := range baselineCodecs {
			d, err := gpu.DecompressTime(spec, s.WeightBytes(), paperCR, cn)
			if err != nil {
				panic(err)
			}
			t.AddRow(name, cn, d*1e3, gemm*1e3, d/gemm)
		}
	}
	t.Notes = append(t.Notes, "paper band: decompression/GEMM in 1.56–3.44×")
	return t
}

// Fig11 reproduces Figure 11(a,b): ZipGEMM and decoupled-baseline
// speedups over cuBLAS_TC across the model zoo at batch 8/16/32.
func Fig11(device string) *Table {
	spec := gpu.MustByName(device)
	comp := gpu.DefaultCompression()
	t := &Table{
		Title:   fmt.Sprintf("Figure 11: kernel speedup over cuBLAS_TC on %s", device),
		Headers: []string{"model", "layer", "batch", "ZipGEMM", "DietGPU", "nvCOMP", "DFloat11"},
	}
	var zipSum float64
	var zipMax float64
	count := 0
	for _, m := range weights.Zoo() {
		for _, kind := range weights.BlockLayerKinds {
			for _, n := range []int{8, 16, 32} {
				s := shapeOf(m, kind, n)
				cu := gpu.CuBLAS(spec, s).Total
				zip := cu / gpu.ZipGEMM(spec, s, comp).Total
				row := []any{m.Name, string(kind), n, zip}
				for _, cn := range baselineCodecs {
					p, err := gpu.Decoupled(spec, s, paperCR, cn)
					if err != nil {
						panic(err)
					}
					row = append(row, cu/p.Total)
				}
				// Rows for every layer are produced; only QKV batch 16
				// omitted from the printed table would lose data, so
				// keep all.
				t.AddRow(row...)
				zipSum += zip
				if zip > zipMax {
					zipMax = zip
				}
				count++
			}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("ZipGEMM average %.2fx, max %.2fx over %d configurations", zipSum/float64(count), zipMax, count),
		"paper: avg 1.31x/1.36x and max 1.71x/2.21x on RTX4090/L40S; baselines 0.17-0.34x")
	return t
}

// Fig11Averages computes the per-codec average speedups of Figure 11
// without materialising the full table.
func Fig11Averages(device string) map[string]float64 {
	spec := gpu.MustByName(device)
	comp := gpu.DefaultCompression()
	sums := map[string]float64{}
	count := 0
	for _, m := range weights.Zoo() {
		for _, kind := range weights.BlockLayerKinds {
			for _, n := range []int{8, 16, 32} {
				s := shapeOf(m, kind, n)
				cu := gpu.CuBLAS(spec, s).Total
				sums["zipserv-tbe"] += cu / gpu.ZipGEMM(spec, s, comp).Total
				for _, cn := range baselineCodecs {
					p, _ := gpu.Decoupled(spec, s, paperCR, cn)
					sums[cn] += cu / p.Total
				}
				count++
			}
		}
	}
	for k := range sums {
		sums[k] /= float64(count)
	}
	return sums
}

// Fig11c reproduces Figure 11(c): layer-wise analysis of the LLaMA3.1
// family on L40S, including the O_proj slowdown and block-level
// aggregate speedups.
func Fig11c() *Table {
	spec := gpu.MustByName("L40S")
	comp := gpu.DefaultCompression()
	t := &Table{
		Title:   "Figure 11c: layer-wise ZipGEMM speedup, LLaMA3.1 family on L40S (batch 32)",
		Headers: []string{"model", "layer", "MxK", "speedup"},
	}
	for _, name := range []string{"LLaMA3.1-8B", "LLaMA3.1-70B", "LLaMA3.1-405B"} {
		m, err := weights.ByName(name)
		if err != nil {
			panic(err)
		}
		var cuBlock, zipBlock float64
		for _, kind := range weights.BlockLayerKinds {
			s := shapeOf(m, kind, 32)
			cu := gpu.CuBLAS(spec, s).Total
			zip := gpu.ZipGEMM(spec, s, comp).Total
			t.AddRow(name, string(kind), fmt.Sprintf("%dx%d", s.M, s.K), cu/zip)
			cuBlock += cu
			zipBlock += zip
		}
		t.AddRow(name, "BLOCK", "-", cuBlock/zipBlock)
	}
	t.Notes = append(t.Notes, "paper: GateUp 1.39x, Down 1.64x, O_proj 0.79x; block 1.35x (8B) / 1.48x (405B)")
	return t
}

// Fig12 reproduces Figure 12: the Nsight-Compute-style micro analysis
// of ZipGEMM at M=28672, K=4096, N=32 on RTX4090.
func Fig12() *Table {
	spec := gpu.MustByName("RTX4090")
	s := gpu.Shape{M: 28672, K: 4096, N: 32}
	mi := gpu.MicroAnalysis(spec, s, gpu.DefaultCompression())
	t := &Table{
		Title:   "Figure 12: ZipGEMM micro-level analysis (28672x4096, N=32, RTX4090)",
		Headers: []string{"metric", "value"},
	}
	t.AddRow("elements", fmt.Sprintf("%d", mi.Elements))
	t.AddRow("LOP3 instructions", fmt.Sprintf("%.3g", mi.LOP3))
	t.AddRow("IADD instructions", fmt.Sprintf("%.3g", mi.IADD))
	t.AddRow("SHF instructions", fmt.Sprintf("%.3g", mi.SHF))
	t.AddRow("POPC instructions", fmt.Sprintf("%.3g", mi.POPC))
	t.AddRow("DRAM read, dense (MB)", float64(mi.DRAMReadDense)/1e6)
	t.AddRow("DRAM read, ZipGEMM (MB)", float64(mi.DRAMReadZip)/1e6)
	t.AddRow("DRAM read reduction", fmt.Sprintf("%.1f%%", mi.DRAMReduction*100))
	t.AddRow("TC util vs cuBLAS", fmt.Sprintf("%.1f%%", mi.TCUtilVsCuBLAS*100))
	t.AddRow("ALU utilisation", fmt.Sprintf("%.1f%%", mi.ALUUtil*100))
	t.AddRow("bank conflicts (ZipServ)", fmt.Sprintf("%.3g", mi.BankConflictsZipServ))
	t.AddRow("bank conflicts (DietGPU)", fmt.Sprintf("%.3g", mi.BankConflictsDietGPU))
	t.Notes = append(t.Notes, "paper: -29.3% DRAM reads, TC util 71.6% of cuBLAS, ~4.7K vs millions of conflicts")
	return t
}

// Fig13 reproduces Figure 13: standalone decompression of a full
// transformer block for LLaMA3.1-8B and Mistral-24B.
func Fig13() *Table {
	spec := gpu.MustByName("L40S")
	t := &Table{
		Title:   "Figure 13: standalone block decompression on L40S",
		Headers: []string{"model", "codec", "time(ms)", "ZipServ speedup"},
	}
	for _, name := range []string{"LLaMA3.1-8B", "Mistral-24B"} {
		m, err := weights.ByName(name)
		if err != nil {
			panic(err)
		}
		var blockBytes int64
		for _, s := range m.BlockShapes() {
			blockBytes += s.Bytes()
		}
		zs, err := gpu.DecompressTime(spec, blockBytes, gpu.DefaultCompression().Ratio, codec.NameZipServ)
		if err != nil {
			panic(err)
		}
		t.AddRow(name, codec.NameZipServ, zs*1e3, 1.0)
		for _, cn := range baselineCodecs {
			d, err := gpu.DecompressTime(spec, blockBytes, paperCR, cn)
			if err != nil {
				panic(err)
			}
			t.AddRow(name, cn, d*1e3, d/zs)
		}
	}
	t.Notes = append(t.Notes, "paper: 2.14x vs DietGPU, 1.83x vs nvCOMP, 1.10x vs DFloat11")
	return t
}

// Fig14 reproduces Figure 14: cross-generation comparison (RTX5090
// forward compatibility; consumer cards vs A100/H800).
func Fig14() *Table {
	comp := gpu.DefaultCompression()
	t := &Table{
		Title:   "Figure 14: cross-generation performance (GateUp_proj, batch 32)",
		Headers: []string{"model", "device", "kernel", "time(ms)"},
	}
	for _, name := range []string{"LLaMA3.1-8B", "Mistral-24B"} {
		m, err := weights.ByName(name)
		if err != nil {
			panic(err)
		}
		s := shapeOf(m, weights.GateUpProj, 32)
		for _, dev := range []string{"RTX4090", "RTX5090", "A100", "H800"} {
			spec := gpu.MustByName(dev)
			t.AddRow(name, dev, "cuBLAS_TC", gpu.CuBLAS(spec, s).Total*1e3)
			t.AddRow(name, dev, "ZipGEMM", gpu.ZipGEMM(spec, s, comp).Total*1e3)
		}
	}
	t.Notes = append(t.Notes,
		"paper anchors: RTX4090 ZipGEMM 0.195 ms vs A100 cuBLAS 0.215 ms (LLaMA3.1-8B)",
		"paper: ZipGEMM shrinks the RTX5090-vs-H800 deficit from 53.3%/125.7% to 14.1%/20.8%")
	return t
}

// Fig15 reproduces Figure 15: ZipServ under different N settings —
// fused wins in the decode regime, the decoupled path caps prefill
// overhead at a few percent.
func Fig15() *Table {
	spec := gpu.MustByName("RTX4090")
	comp := gpu.DefaultCompression()
	// The sweep uses the GateUp_proj shape (28672×4096): a
	// saturating layer where the fused kernel's decode-regime win and
	// the decoupled path's prefill overhead are both visible. (The
	// paper's Fig 11c shows that SM-starved 4096×4096 layers lose
	// regardless of N — that effect is covered there, not here.)
	t := &Table{
		Title:   "Figure 15: ZipServ vs cuBLAS across N (28672x4096, RTX4090)",
		Headers: []string{"N", "cuBLAS(ms)", "fused(ms)", "decoupled(ms)", "stage-aware", "vs cuBLAS"},
	}
	for _, n := range []int{1, 8, 16, 32, 64, 128, 256, 1024, 4096, 8192, 16384} {
		s := gpu.Shape{M: 28672, K: 4096, N: n}
		cu := gpu.CuBLAS(spec, s).Total
		fused := gpu.ZipGEMM(spec, s, comp).Total
		dec, err := gpu.Decoupled(spec, s, comp.Ratio, codec.NameZipServ)
		if err != nil {
			panic(err)
		}
		kt, isFused := gpu.StageAware(spec, s, comp)
		mode := "decoupled"
		if isFused {
			mode = "fused"
		}
		t.AddRow(n, cu*1e3, fused*1e3, dec.Total*1e3, mode, cu/kt.Total)
	}
	t.Notes = append(t.Notes, "paper: no overhead for N in 1-128; ~4%/2% overhead at N=8192/16384")
	return t
}

// Fig18 reproduces Figure 18: behaviour on training-oriented
// datacenter GPUs, where ZipGEMM may trail cuBLAS (ALU-bound) but the
// standalone decompressor stays best-in-class.
func Fig18() *Table {
	comp := gpu.DefaultCompression()
	t := &Table{
		Title:   "Figure 18: training-oriented GPUs (GateUp_proj, batch 32)",
		Headers: []string{"device", "model", "cuBLAS(ms)", "ZipGEMM(ms)", "speedup", "bound", "decomp vs DietGPU"},
	}
	for _, dev := range []string{"A100", "H800"} {
		spec := gpu.MustByName(dev)
		for _, name := range []string{"LLaMA3.1-8B", "Mistral-24B"} {
			m, err := weights.ByName(name)
			if err != nil {
				panic(err)
			}
			s := shapeOf(m, weights.GateUpProj, 32)
			cu := gpu.CuBLAS(spec, s).Total
			zk := gpu.ZipGEMM(spec, s, comp)
			zs, _ := gpu.DecompressTime(spec, s.WeightBytes(), comp.Ratio, codec.NameZipServ)
			dg, _ := gpu.DecompressTime(spec, s.WeightBytes(), paperCR, codec.NameDietGPU)
			t.AddRow(dev, name, cu*1e3, zk.Total*1e3, cu/zk.Total, zk.Bound, dg/zs)
		}
	}
	t.Notes = append(t.Notes, "paper: ZipGEMM may not match cuBLAS here (HBM headroom + low clocks), but decompression stays up to 2.64x ahead")
	return t
}

// E7 reproduces the §7 lossy comparison: ZipGEMM vs a Marlin-class
// W8A16 kernel on RTX4090.
func E7() *Table {
	spec := gpu.MustByName("RTX4090")
	s := gpu.Shape{M: 28672, K: 4096, N: 32}
	zip := gpu.ZipGEMM(spec, s, gpu.DefaultCompression()).Total
	marlin := gpu.MarlinW8A16(spec, s).Total
	t := &Table{
		Title:   "E-7: lossless ZipGEMM vs lossy Marlin W8A16 (28672x4096, N=32, RTX4090)",
		Headers: []string{"kernel", "time(ms)", "effective bits/weight"},
	}
	t.AddRow("ZipGEMM (lossless)", zip*1e3, 16/gpu.DefaultCompression().Ratio)
	t.AddRow("Marlin W8A16 (lossy)", marlin*1e3, 8.0)
	t.Notes = append(t.Notes,
		fmt.Sprintf("gap %.2fx; paper: 0.194 ms vs 0.143 ms = 1.36x, tracking the bit-width ratio", zip/marlin))
	return t
}
