package bench

import (
	"fmt"
	"time"

	"zipserv/internal/core"
	"zipserv/internal/engine"
	"zipserv/internal/gpu"
	"zipserv/internal/weights"
)

// Fig16 reproduces Figure 16: end-to-end latency and throughput for
// the three deployments × four backends across batch sizes and output
// lengths. With quick=true only a reduced grid is evaluated.
func Fig16(quick bool) *Table {
	t := &Table{
		Title:   "Figure 16: end-to-end serving performance",
		Headers: []string{"deployment", "backend", "batch", "out", "latency(s)", "tput(tok/s)", "waves"},
	}
	batches := []int{8, 32}
	outs := []int{128, 512, 1024, 2048}
	if quick {
		batches = []int{32}
		outs = []int{512}
	}
	type key struct{ b engine.Backend }
	sums := map[key]float64{}
	counts := map[key]int{}
	for _, sc := range engine.Figure16Scenarios() {
		dep := fmt.Sprintf("%s@%dx%s", sc.ModelName, sc.NumGPUs, sc.Device)
		engines := map[engine.Backend]*engine.Engine{}
		for _, b := range engine.Backends() {
			e, err := engine.NewForScenario(sc, b)
			if err != nil {
				panic(err)
			}
			engines[b] = e
		}
		for _, batch := range batches {
			for _, out := range outs {
				var zipTput float64
				for _, b := range engine.Backends() {
					m, err := engines[b].Run(batch, 128, out)
					if err != nil {
						panic(err)
					}
					t.AddRow(dep, string(b), batch, out, m.TotalSeconds, m.Throughput, m.Waves)
					if b == engine.BackendZipServ {
						zipTput = m.Throughput
					} else {
						sums[key{b}] += zipTput / m.Throughput
						counts[key{b}]++
					}
				}
			}
		}
	}
	for _, b := range []engine.Backend{engine.BackendVLLM, engine.BackendTransformers, engine.BackendDFloat11} {
		k := key{b}
		t.Notes = append(t.Notes, fmt.Sprintf("avg ZipServ throughput speedup vs %s: %.2fx", b, sums[k]/float64(counts[k])))
	}
	t.Notes = append(t.Notes, "paper: 1.22x vs vLLM, 3.18x vs Transformers, 8.52x vs DFloat11")
	return t
}

// Fig17 reproduces Figure 17: the latency and memory breakdown of
// LLaMA3.1-8B on RTX4090 at sequence length 1024.
func Fig17() *Table {
	t := &Table{
		Title:   "Figure 17: LLaMA3.1-8B on RTX4090 - step latency and memory breakdown",
		Headers: []string{"system", "GEMM(ms)", "attention(ms)", "others(ms)", "weights(GiB)", "KV cap(GiB)"},
	}
	model, err := weights.ByName("LLaMA3.1-8B")
	if err != nil {
		panic(err)
	}
	for _, b := range []engine.Backend{engine.BackendVLLM, engine.BackendZipServ} {
		e, err := engine.New(engine.Config{
			Model: model, Device: gpu.MustByName("RTX4090"), Backend: b,
		})
		if err != nil {
			panic(err)
		}
		m, err := e.Run(32, 128, 896) // final context ≈ 1024
		if err != nil {
			panic(err)
		}
		t.AddRow(string(b), m.StepGEMMSeconds*1e3, m.StepAttnSeconds*1e3, m.StepOtherSeconds*1e3,
			m.WeightGiB, m.KVCapacityGiB)
	}
	t.Notes = append(t.Notes,
		"paper: GEMM 24.99 ms (83.6%) -> 14.76 ms (1.69x); weights 14.96 -> 11.18 GiB; KV 5.07 -> 8.60 GiB (1.70x)")
	return t
}

// E64 reproduces the §6.4 overhead analysis: measured offline
// compression throughput (scaled to a full model) and prefill-stage
// runtime overhead.
func E64() *Table {
	t := &Table{
		Title:   "E-6.4: offline compression cost and runtime overhead",
		Headers: []string{"metric", "value"},
	}

	// Measure real single-core compression throughput on a sampled
	// layer and scale to the 8B model (the paper used 16 cores).
	w := weights.Gaussian(1024, 1024, 0.02, 7)
	start := time.Now()
	if _, err := core.Compress(w); err != nil {
		panic(err)
	}
	elapsed := time.Since(start).Seconds()
	bytesPerSec := float64(w.SizeBytes()) / elapsed
	model, err := weights.ByName("LLaMA3.1-8B")
	if err != nil {
		panic(err)
	}
	fullSeconds := float64(model.WeightBytes()) / bytesPerSec
	t.AddRow("compressor throughput (1 core)", fmt.Sprintf("%.1f MB/s", bytesPerSec/1e6))
	t.AddRow("LLaMA3.1-8B offline compression (1 core)", fmt.Sprintf("%.1f min", fullSeconds/60))
	t.AddRow("scaled to 16 cores", fmt.Sprintf("%.1f min", fullSeconds/16/60))

	// Prefill overhead of the decoupled path at large N.
	spec := gpu.MustByName("RTX4090")
	comp := gpu.DefaultCompression()
	for _, n := range []int{8192, 16384} {
		s := gpu.Shape{M: 4096, K: 4096, N: n}
		kt, _ := gpu.StageAware(spec, s, comp)
		over := kt.Total/gpu.CuBLAS(spec, s).Total - 1
		t.AddRow(fmt.Sprintf("prefill overhead at N=%d", n), fmt.Sprintf("%.1f%%", over*100))
	}
	t.Notes = append(t.Notes, "paper: ~2.5 min on a 16-core Xeon; overhead ~4%/2% at N=8192/16384")
	return t
}

// E65 reproduces the §6.5 memory accounting: weight footprints under
// compression for the three served models.
func E65() *Table {
	t := &Table{
		Title:   "E-6.5: weight memory footprint",
		Headers: []string{"model", "BF16(GiB)", "compressed(GiB)", "fraction"},
	}
	comp := gpu.DefaultCompression()
	for _, name := range []string{"LLaMA3.1-8B", "Mistral-24B", "LLaMA3.1-70B"} {
		m, err := weights.ByName(name)
		if err != nil {
			panic(err)
		}
		dense := m.WeightGiB()
		zipped := dense / comp.Ratio
		t.AddRow(name, dense, zipped, fmt.Sprintf("%.1f%%", zipped/dense*100))
	}
	t.Notes = append(t.Notes, "paper: 14.96/43.92/131.56 GiB -> 72.4%/71.3%/71.1%")
	return t
}
