package bench

import (
	"fmt"

	"zipserv/internal/core"
	"zipserv/internal/gpu"
	"zipserv/internal/roofline"
	"zipserv/internal/stats"
	"zipserv/internal/weights"
)

// Fig02 reproduces Figure 2: the exponent-bit distribution of LLM
// weights for the three §3.1 models, measured on generated Gaussian
// layers (Appendix A says the statistics follow from the weight
// distribution, so they are reproducible without the checkpoints).
func Fig02() *Table {
	t := &Table{
		Title: "Figure 2: exponent distribution of BF16 LLM weights",
		Headers: []string{"model", "entropy(bits)", "top-3", "top-7", "window-7",
			"contiguous", "theoretical CR"},
	}
	for _, name := range []string{"LLaMA3.1-8B", "Mistral-24B", "Qwen2.5-32B"} {
		h := modelHistogram(name, 24)
		t.AddRow(name,
			h.Entropy(),
			fmt.Sprintf("%.1f%%", h.TopKCoverage(3)*100),
			fmt.Sprintf("%.1f%%", h.TopKCoverage(7)*100),
			fmt.Sprintf("%.1f%%", h.BestWindowCoverage(7)*100),
			h.TopKIsContiguous(7),
			h.TheoreticalRatio())
	}
	t.Notes = append(t.Notes, "paper: entropy 2.57-2.74 bits, top-3 > 67%, top-7 > 95%, CR ~= 1.51x")
	return t
}

// modelHistogram aggregates exponent statistics over sampled layers of
// a model (every block layer of three layer indices).
func modelHistogram(name string, shrink int) stats.Histogram {
	m, err := weights.ByName(name)
	if err != nil {
		panic(err)
	}
	var h stats.Histogram
	for _, kind := range weights.BlockLayerKinds {
		for layer := 0; layer < 3; layer++ {
			w := weights.SampledLayerMatrix(m, kind, layer, shrink)
			h.Add(stats.ExponentHistogram(w))
		}
	}
	return h
}

// Fig05 reproduces Figure 5: the roofline analysis on RTX4090 for
// M=K=4096 across decode batch sizes.
func Fig05() *Table {
	spec := gpu.MustByName("RTX4090")
	t := &Table{
		Title:   "Figure 5: roofline analysis (M=K=4096, RTX4090, CR=1.51)",
		Headers: []string{"N", "pipeline", "CI(FLOP/B)", "attainable(TFLOP/s)", "vs GEMM"},
	}
	for _, n := range []int{8, 16, 32, 64} {
		gemmCI := roofline.CIGemm(4096, 4096, n)
		for _, p := range []struct {
			name string
			ci   float64
		}{
			{"GEMM", gemmCI},
			{"Decoupled", roofline.CIDecoupled(4096, 4096, n, 1.51)},
			{"ZipServ", roofline.CIZipServ(4096, 4096, n, 1.51)},
		} {
			t.AddRow(n, p.name, p.ci, roofline.Attainable(spec, p.ci)/1e12,
				fmt.Sprintf("%+.1f%%", (p.ci/gemmCI-1)*100))
		}
	}
	t.Notes = append(t.Notes, "paper: decoupled CI -62.3/-62.2/-62.0/-61.7%; ZipServ ~ +50%")
	return t
}

// E31 reproduces the §3.1 compressibility study across the model zoo:
// per-family entropy, coverage, contiguity rate and measured TCA-TBE
// ratio on sampled matrices.
func E31() *Table {
	t := &Table{
		Title: "E-3.1: compressibility of BF16 weights across the model zoo",
		Headers: []string{"model", "matrices", "entropy", "window-7",
			"contiguous%", "TBE ratio", "bits/elem"},
	}
	totalMat, contiguous := 0, 0
	for _, m := range weights.Zoo() {
		var h stats.Histogram
		var ratioSum, bpeSum float64
		n := 0
		for _, kind := range weights.BlockLayerKinds {
			for layer := 0; layer < 2; layer++ {
				w := weights.SampledLayerMatrix(m, kind, layer, 48)
				mh := stats.ExponentHistogram(w)
				h.Add(mh)
				if mh.TopKIsContiguous(7) {
					contiguous++
				}
				totalMat++
				cm, err := core.Compress(w)
				if err != nil {
					panic(err)
				}
				ratioSum += cm.CompressionRatio()
				bpeSum += cm.BitsPerElement()
				n++
			}
		}
		t.AddRow(m.Name, n, h.Entropy(),
			fmt.Sprintf("%.1f%%", h.BestWindowCoverage(7)*100),
			fmt.Sprintf("%.0f%%", 100*float64(contiguousForModel(m))/8),
			ratioSum/float64(n), bpeSum/float64(n))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("contiguity across all sampled matrices: %.1f%% (paper: 99.6%% of 3,875 matrices)",
			100*float64(contiguous)/float64(totalMat)),
		"paper: window-7 covers 97.1% on average; theoretical bound 10.6 bits/elem")
	return t
}

func contiguousForModel(m weights.Model) int {
	c := 0
	for _, kind := range weights.BlockLayerKinds {
		for layer := 0; layer < 2; layer++ {
			w := weights.SampledLayerMatrix(m, kind, layer, 48)
			if stats.ExponentHistogram(w).TopKIsContiguous(7) {
				c++
			}
		}
	}
	return c
}

// E42 reproduces the §4.2 codeword-length analysis: AverageBits(n) for
// n = 2, 3, 4 with coverages measured on generated weights.
func E42() *Table {
	h := modelHistogram("LLaMA3.1-8B", 24)
	t := &Table{
		Title:   "E-4.2: codeword length trade-off (AverageBits)",
		Headers: []string{"codeword bits", "window size", "coverage r_n", "avg bits/elem"},
	}
	for n := 2; n <= 4; n++ {
		rn := h.CodewordCoverage(n)
		t.AddRow(n, 1<<n-1, rn, stats.AverageBits(n, rn))
	}
	t.AddRow("-", "-", "bound", 8+h.Entropy())
	t.Notes = append(t.Notes, "paper: 11.3 bits (n=3) vs 12.4 (n=2) and 12.1 (n=4); bound 10.6")
	return t
}
