package bench

import (
	"fmt"
	"math"
	"math/rand"

	"zipserv/internal/bf16"
	"zipserv/internal/core"
	"zipserv/internal/gpu"
	"zipserv/internal/weights"
)

// AblationA1 compares the decoupled triple-bitmap layout against a
// packed 3-bit bitstream (§4.2 "Decoupled Triple Bitmap Layout"). A
// packed stream makes codewords span 32-bit word boundaries: each
// element needs extra funnel shifts and mask arithmetic, accesses lose
// coalescing, and boundary-dependent control flow diverges. The table
// prices both designs with the same cost model.
func AblationA1() *Table {
	spec := gpu.MustByName("RTX4090")
	comp := gpu.DefaultCompression()
	s := gpu.Shape{M: 28672, K: 4096, N: 32}

	// Bit-plane design: the shipped model.
	planes := gpu.ZipGEMM(spec, s, comp)

	// Packed-bitstream alternative: same compressed bytes, but decode
	// needs ~1.8× the ALU work (cross-word extraction) and drops to
	// ~72% memory efficiency (unaligned, conflict-prone accesses).
	const packedALUFactor = 1.8
	const packedMemPenalty = 0.72 / 0.90
	packedALU := planes.ALU * packedALUFactor
	packedMem := planes.Mem / packedMemPenalty
	packedTotal := math.Max(packedMem, math.Max(packedALU, planes.TC)) + gpu.LaunchOverhead

	t := &Table{
		Title:   "Ablation A1: triple bit-plane bitmaps vs packed 3-bit bitstream",
		Headers: []string{"layout", "mem(ms)", "alu(ms)", "total(ms)", "slowdown"},
	}
	t.AddRow("bit-planes (TCA-TBE)", planes.Mem*1e3, planes.ALU*1e3, planes.Total*1e3, 1.0)
	t.AddRow("packed bitstream", packedMem*1e3, packedALU*1e3, packedTotal*1e3, packedTotal/planes.Total)
	t.Notes = append(t.Notes, "packed codewords span word boundaries: extra shifts, lost coalescing (§4.2)")
	return t
}

// AblationA2 sweeps the codeword length n ∈ {2,3,4} functionally:
// real compression ratios on generated weights plus the modelled
// fused-kernel time for each.
func AblationA2() *Table {
	spec := gpu.MustByName("RTX4090")
	m, err := weights.ByName("LLaMA3.1-8B")
	if err != nil {
		panic(err)
	}
	w := weights.SampledLayerMatrix(m, weights.GateUpProj, 0, 16)
	s := gpu.Shape{M: 28672, K: 4096, N: 32}

	t := &Table{
		Title:   "Ablation A2: codeword length (functional compression + modelled kernel)",
		Headers: []string{"bits", "coverage", "ratio", "bits/elem", "ZipGEMM(ms)"},
	}
	for n := 2; n <= 4; n++ {
		cm, err := core.CompressWithOptions(w, core.Options{CodewordBits: n, Selection: core.WindowSelection})
		if err != nil {
			panic(err)
		}
		comp := gpu.Compression{Ratio: cm.CompressionRatio(), Coverage: cm.CoverageRatio(), CodewordBits: n}
		t.AddRow(n, cm.CoverageRatio(), cm.CompressionRatio(), cm.BitsPerElement(),
			gpu.ZipGEMM(spec, s, comp).Total*1e3)
	}
	t.Notes = append(t.Notes, "paper §4.2: n=3 minimises storage (11.3 bits/elem) and is the shipped default")
	return t
}

// AblationA3 contrasts the fused and decoupled execution paths across
// N, locating the stage-aware switch point (§4.4).
func AblationA3() *Table {
	spec := gpu.MustByName("RTX4090")
	comp := gpu.DefaultCompression()
	t := &Table{
		Title:   "Ablation A3: fused vs decoupled across N (M=K=4096)",
		Headers: []string{"N", "fused(ms)", "decoupled(ms)", "winner"},
	}
	switchN := -1
	for _, n := range []int{1, 16, 64, 128, 256, 512, 1024, 2048, 4096, 8192} {
		s := gpu.Shape{M: 4096, K: 4096, N: n}
		fused := gpu.ZipGEMM(spec, s, comp).Total
		dec, err := gpu.Decoupled(spec, s, comp.Ratio, "zipserv-tbe")
		if err != nil {
			panic(err)
		}
		winner := "fused"
		if dec.Total < fused {
			winner = "decoupled"
			if switchN < 0 {
				switchN = n
			}
		}
		t.AddRow(n, fused*1e3, dec.Total*1e3, winner)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("decoupled first wins at N=%d (paper: between 128 and 8192)", switchN))
	return t
}

// AblationA4 quantifies the two-level software pipeline (§4.3.3):
// with overlap, kernel time is the max of the three resource streams;
// without, the streams serialise.
func AblationA4() *Table {
	comp := gpu.DefaultCompression()
	t := &Table{
		Title:   "Ablation A4: software pipelining (overlap on/off)",
		Headers: []string{"device", "overlapped(ms)", "serialised(ms)", "pipeline gain"},
	}
	s := gpu.Shape{M: 28672, K: 4096, N: 32}
	for _, dev := range []string{"RTX4090", "L40S", "A100"} {
		spec := gpu.MustByName(dev)
		k := gpu.ZipGEMM(spec, s, comp)
		serial := k.Mem + k.ALU + k.TC + gpu.LaunchOverhead
		t.AddRow(dev, k.Total*1e3, serial*1e3, serial/k.Total)
	}
	t.Notes = append(t.Notes, "the interleaved load-decompress-compute pattern hides decode latency (§4.3.3)")
	return t
}

// AblationA5 compares contiguous-window selection (implicit base+code
// lookup) against top-frequency selection (explicit codebook), both
// functionally (coverage on unimodal and bimodal data) and in decode
// cost (an IADD vs a shared-memory lookup per element).
func AblationA5() *Table {
	t := &Table{
		Title:   "Ablation A5: window selection vs top-frequency codebook",
		Headers: []string{"weights", "selection", "coverage", "ratio", "exp. reconstruction"},
	}
	gaussian := weights.Gaussian(512, 512, 0.02, 11)
	bimodal := bimodalMatrix(512, 512, 12)
	for _, in := range []struct {
		name string
		m    *bf16.Matrix
	}{{"gaussian (LLM-like)", gaussian}, {"bimodal (adversarial)", bimodal}} {
		for _, sel := range []struct {
			name string
			s    core.Selection
			rec  string
		}{
			{"window", core.WindowSelection, "base+code (1 IADD)"},
			{"top-frequency", core.TopFrequencySelection, "codebook (1 LDS)"},
		} {
			cm, err := core.CompressWithOptions(in.m, core.Options{CodewordBits: 3, Selection: sel.s})
			if err != nil {
				panic(err)
			}
			t.AddRow(in.name, sel.name, cm.CoverageRatio(), cm.CompressionRatio(), sel.rec)
		}
	}
	t.Notes = append(t.Notes,
		"on LLM-like weights the window loses nothing (contiguity, §3.1) and decodes with pure ALU arithmetic",
		"the codebook only wins on distributions LLMs do not exhibit (Appendix A)")
	return t
}

// bimodalMatrix builds weights whose exponent histogram has two
// separated clusters — the counterexample where a contiguous window
// cannot cover the mass.
func bimodalMatrix(rows, cols int, seed int64) *bf16.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := bf16.NewMatrix(rows, cols)
	for i := range m.Data {
		var e uint8
		if rng.Intn(2) == 0 {
			e = uint8(100 + rng.Intn(3))
		} else {
			e = uint8(200 + rng.Intn(3))
		}
		m.Data[i] = bf16.Assemble(uint16(rng.Intn(2)), e, uint8(rng.Intn(128)))
	}
	return m
}

// AblationA6 implements and evaluates the paper's future-work item for
// small layers (§6.1): per-shape split-K tuning. The tuned kernel
// recovers the O_proj slowdown while leaving saturated layers
// untouched.
func AblationA6() *Table {
	spec := gpu.MustByName("L40S")
	comp := gpu.DefaultCompression()
	m, err := weights.ByName("LLaMA3.1-8B")
	if err != nil {
		panic(err)
	}
	t := &Table{
		Title:   "Ablation A6 (future work, implemented): split-K tuning on L40S (batch 32)",
		Headers: []string{"layer", "default vs cuBLAS", "tuned vs cuBLAS", "chosen kChunk"},
	}
	for _, kind := range weights.BlockLayerKinds {
		s := shapeOf(m, kind, 32)
		cu := gpu.CuBLAS(spec, s).Total
		def := gpu.ZipGEMM(spec, s, comp).Total
		tuned, chunk := gpu.ZipGEMMTuned(spec, s, comp)
		t.AddRow(string(kind), cu/def, cu/tuned.Total, chunk)
	}
	t.Notes = append(t.Notes,
		"paper §6.1: 'small layers require fine-grained parameter tuning (e.g., split-K configurations)…beyond the scope of this work'")
	return t
}

// Ablations returns all ablation tables.
func Ablations() []*Table {
	return []*Table{AblationA1(), AblationA2(), AblationA3(), AblationA4(), AblationA5(), AblationA6()}
}
