package bench

import (
	"fmt"

	"zipserv/internal/core"
	"zipserv/internal/quant"
	"zipserv/internal/weights"
)

// E7b reproduces the §7 composition claim: lossless compression is
// orthogonal to lossy quantization and exploits the residual
// redundancy the lossy step leaves in the int8 stream. All bits/elem
// and error columns are measured on real data, not modelled.
func E7b() *Table {
	w := weights.Gaussian(512, 512, 0.02, 21)
	t := &Table{
		Title:   "E-7b: composing lossy quantization with lossless coding (measured, 512x512)",
		Headers: []string{"representation", "bits/elem", "max abs error", "bit-exact vs BF16"},
	}
	t.AddRow("BF16 (dense)", 16.0, 0.0, true)

	cm, err := core.Compress(w)
	if err != nil {
		panic(err)
	}
	t.AddRow("TCA-TBE (lossless)", cm.BitsPerElement(), 0.0, true)

	q, err := quant.Quantize(w)
	if err != nil {
		panic(err)
	}
	qErr, _ := q.MaxAbsError(w)
	t.AddRow("W8A16 (lossy)", q.BitsPerElement(), qErr, false)

	cq, err := quant.CompressQuantized(q)
	if err != nil {
		panic(err)
	}
	back, err := cq.Decompress()
	if err != nil {
		panic(err)
	}
	backErr, _ := back.MaxAbsError(w)
	t.AddRow("W8A16 + rANS (lossy+lossless)", cq.BitsPerElement(), backErr, false)

	t.Notes = append(t.Notes,
		fmt.Sprintf("residual-redundancy gain on the int8 stream: %.3fx with identical error",
			float64(q.SizeBytes())/float64(cq.SizeBytes())),
		"§7: 'ZipServ is orthogonal to lossy methods and can be applied atop quantized weights'")
	return t
}
