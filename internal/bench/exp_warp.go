package bench

import (
	"fmt"

	"zipserv/internal/core"
	"zipserv/internal/huffman"
	"zipserv/internal/warp"
	"zipserv/internal/weights"
)

// E32Divergence reproduces the §3.2 architectural argument as a
// measurement: the same weight matrix decoded by a simulated 32-lane
// warp under (a) TCA-TBE's fixed-length predicated decoder and (b) a
// chunk-parallel Huffman decoder. Divergence factor 1.0 means perfect
// lockstep; anything above it is warp serialisation.
func E32Divergence() *Table {
	t := &Table{
		Title:   "E-3.2: SIMT warp divergence, TCA-TBE vs Huffman decode (simulated warp)",
		Headers: []string{"weights", "decoder", "divergence", "warp util"},
	}
	for _, in := range []struct {
		name  string
		sigma float64
		seed  int64
	}{
		{"gaussian sigma=0.02", 0.02, 1},
		{"gaussian sigma=0.10", 0.10, 2},
	} {
		w := weights.Gaussian(256, 256, in.sigma, in.seed)

		cm, err := core.Compress(w)
		if err != nil {
			panic(err)
		}
		tbe, err := warp.SimulateTBEDecode(cm, 0)
		if err != nil {
			panic(err)
		}
		t.AddRow(in.name, "TCA-TBE", tbe.DivergenceFactor,
			fmt.Sprintf("%.1f%%", tbe.Utilisation*100))

		exps := make([]byte, len(w.Data))
		for i, v := range w.Data {
			exps[i] = v.Exponent()
		}
		hs, err := huffman.Encode(exps, len(exps)/warp.Lanes)
		if err != nil {
			panic(err)
		}
		hr, err := warp.SimulateHuffmanDecode(hs)
		if err != nil {
			panic(err)
		}
		t.AddRow(in.name, "Huffman", hr.DivergenceFactor,
			fmt.Sprintf("%.1f%%", hr.Utilisation*100))
	}
	t.Notes = append(t.Notes,
		"§3.2: variable-length symbols make faster lanes stall for slower ones; TCA-TBE decodes branch-free",
		"divergence measured on real encoded streams under a lane-accurate lockstep simulator (internal/warp)")
	return t
}
