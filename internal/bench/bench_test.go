package bench

import (
	"strconv"
	"strings"
	"testing"
)

func checkTable(t *testing.T, tbl *Table) {
	t.Helper()
	if tbl.Title == "" {
		t.Error("table has no title")
	}
	if len(tbl.Headers) == 0 || len(tbl.Rows) == 0 {
		t.Fatalf("%s: empty table (%d headers, %d rows)", tbl.Title, len(tbl.Headers), len(tbl.Rows))
	}
	for i, row := range tbl.Rows {
		if len(row) != len(tbl.Headers) {
			t.Errorf("%s: row %d has %d cells, want %d", tbl.Title, i, len(row), len(tbl.Headers))
		}
	}
	out := tbl.String()
	if !strings.Contains(out, tbl.Title) || !strings.Contains(out, tbl.Headers[0]) {
		t.Errorf("%s: rendering lost content", tbl.Title)
	}
}

func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%"), 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", cell, err)
	}
	return v
}

func TestFig01(t *testing.T) {
	tbl := Fig01()
	checkTable(t, tbl)
	// Every decoupled pipeline's decompression must exceed the GEMM
	// time (Figure 1's 1.56–3.44× band, with model tolerance).
	for _, row := range tbl.Rows {
		ratio := cellFloat(t, row[4])
		if ratio < 1.2 || ratio > 4.0 {
			t.Errorf("%s/%s: decomp/gemm %.2f outside [1.2, 4.0]", row[0], row[1], ratio)
		}
	}
}

func TestFig02(t *testing.T) {
	tbl := Fig02()
	checkTable(t, tbl)
	for _, row := range tbl.Rows {
		if row[5] != "true" {
			t.Errorf("%s: top-7 not contiguous", row[0])
		}
	}
}

func TestFig05(t *testing.T) {
	checkTable(t, Fig05())
}

func TestFig11AveragesMatchPaper(t *testing.T) {
	// Figure 11: ZipGEMM averages 1.31×/1.36× on RTX4090/L40S;
	// baselines average 0.17–0.34×.
	for dev, wantZip := range map[string]float64{"RTX4090": 1.31, "L40S": 1.36} {
		avgs := Fig11Averages(dev)
		t.Logf("%s averages: %v", dev, avgs)
		if z := avgs["zipserv-tbe"]; z < wantZip*0.8 || z > wantZip*1.35 {
			t.Errorf("%s: ZipGEMM average %.2f, paper %.2f", dev, z, wantZip)
		}
		for _, base := range baselineCodecs {
			if b := avgs[base]; b < 0.10 || b > 0.50 {
				t.Errorf("%s: %s average %.2f outside the paper's slowdown band", dev, base, b)
			}
		}
	}
}

func TestFig11TableShape(t *testing.T) {
	tbl := Fig11("L40S")
	checkTable(t, tbl)
	// 11 models × 4 layers × 3 batches.
	if want := 11 * 4 * 3; len(tbl.Rows) != want {
		t.Errorf("Fig11 has %d rows, want %d", len(tbl.Rows), want)
	}
}

func TestFig11c(t *testing.T) {
	tbl := Fig11c()
	checkTable(t, tbl)
	for _, row := range tbl.Rows {
		sp := cellFloat(t, row[3])
		switch row[1] {
		case "O_proj":
			if row[0] == "LLaMA3.1-8B" && sp >= 1.0 {
				t.Errorf("8B O_proj speedup %.2f, paper shows a slowdown", sp)
			}
		case "BLOCK":
			if sp < 1.15 {
				t.Errorf("%s block-level speedup %.2f < 1.15 (paper 1.35–1.48)", row[0], sp)
			}
		}
	}
}

func TestFig12(t *testing.T) {
	checkTable(t, Fig12())
}

func TestFig13(t *testing.T) {
	tbl := Fig13()
	checkTable(t, tbl)
	for _, row := range tbl.Rows {
		if row[1] == "zipserv-tbe" {
			continue
		}
		sp := cellFloat(t, row[3])
		if sp < 1.0 {
			t.Errorf("%s/%s: ZipServ-Decomp speedup %.2f < 1 — must be best in class", row[0], row[1], sp)
		}
	}
}

func TestFig14(t *testing.T) {
	checkTable(t, Fig14())
}

func TestFig15(t *testing.T) {
	tbl := Fig15()
	checkTable(t, tbl)
	for _, row := range tbl.Rows {
		n := int(cellFloat(t, row[0]))
		mode := row[4]
		speedup := cellFloat(t, row[5])
		if n <= 128 {
			if mode != "fused" {
				t.Errorf("N=%d: mode %s, want fused", n, mode)
			}
			// Paper: fused incurs no overhead and beats cuBLAS in
			// the decode regime.
			if speedup < 1.0 {
				t.Errorf("N=%d: decode-regime speedup %.2f < 1", n, speedup)
			}
		}
		if n >= 8192 {
			if mode != "decoupled" {
				t.Errorf("N=%d: mode %s, want decoupled", n, mode)
			}
			// Paper: prefill overhead capped at ~4%/2%.
			if speedup < 0.93 {
				t.Errorf("N=%d: prefill overhead %.1f%% too high", n, (1/speedup-1)*100)
			}
		}
	}
}

func TestFig16Quick(t *testing.T) {
	tbl := Fig16(true)
	checkTable(t, tbl)
	// 3 scenarios × 4 backends × 1 batch × 1 output.
	if len(tbl.Rows) != 12 {
		t.Errorf("quick Fig16 has %d rows, want 12", len(tbl.Rows))
	}
}

func TestFig17(t *testing.T) {
	tbl := Fig17()
	checkTable(t, tbl)
	if len(tbl.Rows) != 2 {
		t.Fatalf("Fig17 has %d rows, want 2", len(tbl.Rows))
	}
	vllmGEMM := cellFloat(t, tbl.Rows[0][1])
	zipGEMM := cellFloat(t, tbl.Rows[1][1])
	if sp := vllmGEMM / zipGEMM; sp < 1.3 || sp > 2.0 {
		t.Errorf("GEMM component speedup %.2f, paper 1.69", sp)
	}
}

func TestFig18(t *testing.T) {
	tbl := Fig18()
	checkTable(t, tbl)
	for _, row := range tbl.Rows {
		if sp := cellFloat(t, row[6]); sp < 1.3 {
			t.Errorf("%s: standalone decomp speedup %.2f < 1.3 on training GPUs", row[0], sp)
		}
	}
}

func TestE31(t *testing.T) {
	tbl := E31()
	checkTable(t, tbl)
	if len(tbl.Rows) != 11 {
		t.Errorf("E31 covers %d models, want 11", len(tbl.Rows))
	}
}

func TestE42OrdersCodewordLengths(t *testing.T) {
	tbl := E42()
	checkTable(t, tbl)
	bits := map[string]float64{}
	for _, row := range tbl.Rows {
		bits[row[0]] = cellFloat(t, row[3])
	}
	if !(bits["3"] < bits["4"] && bits["4"] < bits["2"]) {
		t.Errorf("codeword ordering violated: %v (want 3 < 4 < 2)", bits)
	}
}

func TestE64(t *testing.T) {
	checkTable(t, E64())
}

func TestE65(t *testing.T) {
	tbl := E65()
	checkTable(t, tbl)
	for _, row := range tbl.Rows {
		frac := cellFloat(t, row[3])
		if frac < 68 || frac > 74 {
			t.Errorf("%s: footprint %.1f%%, paper 71–72%%", row[0], frac)
		}
	}
}

func TestE7(t *testing.T) {
	checkTable(t, E7())
}

func TestAblations(t *testing.T) {
	tables := Ablations()
	if len(tables) != 6 {
		t.Fatalf("%d ablations, want 6", len(tables))
	}
	for _, tbl := range tables {
		checkTable(t, tbl)
	}
	// A1: packed bitstream must be slower.
	a1 := tables[0]
	if slow := cellFloat(t, a1.Rows[1][4]); slow <= 1.0 {
		t.Errorf("packed bitstream slowdown %.2f, want > 1", slow)
	}
	// A4: pipeline overlap must show a real gain everywhere.
	a4 := tables[3]
	for _, row := range a4.Rows {
		if g := cellFloat(t, row[3]); g <= 1.0 {
			t.Errorf("%s: pipeline gain %.2f, want > 1", row[0], g)
		}
	}
	// A5: window must match top-frequency coverage on Gaussian data
	// and lose on bimodal data.
	a5 := tables[4]
	var gw, gt, bw, bt float64
	for _, row := range a5.Rows {
		cov := cellFloat(t, row[2])
		switch {
		case strings.HasPrefix(row[0], "gaussian") && row[1] == "window":
			gw = cov
		case strings.HasPrefix(row[0], "gaussian") && row[1] == "top-frequency":
			gt = cov
		case strings.HasPrefix(row[0], "bimodal") && row[1] == "window":
			bw = cov
		case strings.HasPrefix(row[0], "bimodal") && row[1] == "top-frequency":
			bt = cov
		}
	}
	if gt-gw > 0.02 {
		t.Errorf("window coverage %.4f should match top-frequency %.4f on Gaussian weights", gw, gt)
	}
	if bt-bw < 0.2 {
		t.Errorf("bimodal: top-frequency %.4f should beat window %.4f decisively", bt, bw)
	}
	// A6: tuning must lift O_proj to ≥ parity without hurting others.
	a6 := tables[5]
	for _, row := range a6.Rows {
		def := cellFloat(t, row[1])
		tuned := cellFloat(t, row[2])
		if tuned < def-1e-9 {
			t.Errorf("%s: tuning regressed %.3f → %.3f", row[0], def, tuned)
		}
		if row[0] == "O_proj" && tuned < 0.95 {
			t.Errorf("O_proj tuned speedup %.3f still below parity", tuned)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tbl.AddRow("x", 1.23456)
	tbl.AddRow(7, "y")
	tbl.Notes = append(tbl.Notes, "n1")
	out := tbl.String()
	for _, want := range []string{"T\n=", "a", "bb", "1.235", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestE32Divergence(t *testing.T) {
	tbl := E32Divergence()
	checkTable(t, tbl)
	for _, row := range tbl.Rows {
		div := cellFloat(t, row[2])
		switch row[1] {
		case "TCA-TBE":
			if div != 1.0 {
				t.Errorf("%s: TBE divergence %.3f, want exactly 1.0", row[0], div)
			}
		case "Huffman":
			if div < 1.1 {
				t.Errorf("%s: Huffman divergence %.3f, want > 1.1", row[0], div)
			}
		}
	}
}

func TestE7b(t *testing.T) {
	tbl := E7b()
	checkTable(t, tbl)
	if len(tbl.Rows) != 4 {
		t.Fatalf("E7b has %d rows, want 4", len(tbl.Rows))
	}
	bits := make([]float64, 4)
	for i, row := range tbl.Rows {
		bits[i] = cellFloat(t, row[1])
	}
	// BF16 > TBE > W8 > W8+rANS in storage.
	for i := 1; i < 4; i++ {
		if bits[i] >= bits[i-1] {
			t.Errorf("row %d: %.2f bits not below previous %.2f", i, bits[i], bits[i-1])
		}
	}
	// Lossless rows have zero error; the two lossy rows share one error.
	if cellFloat(t, tbl.Rows[0][2]) != 0 || cellFloat(t, tbl.Rows[1][2]) != 0 {
		t.Error("lossless rows must have zero error")
	}
	if tbl.Rows[2][2] != tbl.Rows[3][2] {
		t.Error("lossless stage changed the lossy error")
	}
}
