package engine

import (
	"testing"
)

// The scheduler-path benchmarks behind CI's perf-regression job: one
// full shared-prefix trace through the Stepper with the prefix cache
// off and on. The cached variant must not regress against the uncached
// one — reuse is supposed to remove work from the hottest path the
// serving layer has.

func benchmarkSharedPrefixTrace(b *testing.B, prefixCache bool) {
	reqs := sharedPrefixTrace(16, 256, 32, 8, 0.05)
	e := newPrefixTestEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := drivePrefixTrace(b, e, reqs, prefixCache, 64)
		if prefixCache && sp.PrefixHits() == 0 {
			b.Fatal("benchmark workload produced no prefix hits")
		}
	}
}

func BenchmarkStepperSharedPrefixUncached(b *testing.B) { benchmarkSharedPrefixTrace(b, false) }
func BenchmarkStepperSharedPrefixCached(b *testing.B)   { benchmarkSharedPrefixTrace(b, true) }

// BenchmarkStepperSharedPrefixCompressed runs the cached trace with
// cold blocks stored compressed, with arrivals spaced so blocks go cold
// between requests: every claim after the first thaws through the
// TCA-TBE codec, so the real freeze/decompress cost sits on the
// scheduler path this benchmark guards.
func BenchmarkStepperSharedPrefixCompressed(b *testing.B) {
	reqs := sharedPrefixTrace(16, 256, 32, 8, 5.0)
	e := newPrefixTestEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := driveCompressedTrace(b, e, reqs, 64)
		if sp.DecompressClaims() == 0 {
			b.Fatal("benchmark workload never thawed a block")
		}
	}
}

// BenchmarkStepperDecodeHeavy isolates the decode loop (allocator
// AppendToken + cost model) that every serving configuration shares.
func BenchmarkStepperDecodeHeavy(b *testing.B) {
	e := newPrefixTestEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, err := NewStepper(e)
		if err != nil {
			b.Fatal(err)
		}
		sp.PackedPrefill = true
		for id := 1; id <= 32; id++ {
			if err := sp.Admit(Request{ID: id, PromptLen: 64, OutputLen: 64}); err != nil {
				b.Fatal(err)
			}
		}
		sp.Prefill()
		for sp.InFlight() > 0 {
			if _, _, err := sp.DecodeStep(); err != nil {
				b.Fatal(err)
			}
		}
		if err := sp.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
