// Package engine simulates end-to-end LLM serving (§6.5 of the
// ZipServ paper): transformer forward passes priced by the GPU cost
// model, a real paged KV-cache manager, capacity-driven batching,
// tensor parallelism, and the four serving stacks the paper compares —
// ZipServ, vLLM, HuggingFace Transformers, and DFloat11.
//
// The engine is a discrete simulation, not a text generator: it
// executes the scheduler and memory manager for real (allocating and
// freeing KV blocks per token) while kernel durations come from
// internal/gpu. This reproduces the paper's two coupled effects: the
// fused ZipGEMM accelerates every decode step, and the weight memory
// it frees converts into KV capacity, which lifts the concurrency
// ceiling (Figure 17).
package engine

import (
	"fmt"

	"zipserv/internal/codec"
	"zipserv/internal/gpu"
	"zipserv/internal/kvcache"
	"zipserv/internal/weights"
)

// Backend identifies a serving stack.
type Backend string

// The four systems of Figure 16.
const (
	BackendZipServ      Backend = "zipserv"
	BackendVLLM         Backend = "vllm"
	BackendTransformers Backend = "transformers"
	BackendDFloat11     Backend = "dfloat11"
)

// Backends lists all serving stacks in the paper's order.
func Backends() []Backend {
	return []Backend{BackendZipServ, BackendVLLM, BackendTransformers, BackendDFloat11}
}

// Config describes one serving deployment.
type Config struct {
	Model   weights.Model
	Device  gpu.Spec
	NumGPUs int // tensor-parallel degree (1 if zero)
	Backend Backend

	// Compression describes the weight codec for compressed backends
	// (ZipServ, DFloat11). Zero value = gpu.DefaultCompression().
	Compression gpu.Compression

	// ReservedGiB is per-GPU memory held back for activations, the
	// runtime and fragmentation. Zero = 3 GiB, a typical vLLM
	// gpu_memory_utilization headroom.
	ReservedGiB float64
}

// Backend-stack constants: per-layer CPU/dispatch overheads and
// attention efficiencies distinguishing the serving stacks.
const (
	// pagedOverheadPerLayer is the non-GEMM, non-attention step cost
	// per transformer layer in vLLM-class engines (norms, rotary,
	// sampling, scheduler) — Figure 17's 1.88 ms "others" at 32 layers.
	pagedOverheadPerLayer = 58e-6

	// eagerOverheadPerLayer is the same for HF Transformers: Python
	// dispatch, unfused elementwise kernels, no CUDA graphs.
	eagerOverheadPerLayer = 500e-6

	// pagedAttnEff / eagerAttnEff are achievable fractions of DRAM
	// bandwidth for the attention KV sweep.
	pagedAttnEff = 0.85
	eagerAttnEff = 0.45

	// eagerGEMMFactor inflates GEMM time under Transformers: cuBLAS
	// called without the fused epilogues and stream capture vLLM uses.
	eagerGEMMFactor = 1.45

	// prefillAttnEff is Tensor Core efficiency of the prefill
	// attention kernel (FlashAttention-class).
	prefillAttnEff = 0.55

	// dfloat11SyncPerMatrix is DFloat11's per-weight-matrix host
	// overhead: its decompressor issues several kernels (gap-array
	// build, chunk decode, scatter) with host synchronisation between
	// the expansion and the GEMM, for every matrix of every forward
	// pass. This serialisation — absent in ZipServ's single fused
	// kernel — is the largest contributor to the 8.52× end-to-end gap
	// of Figure 16.
	dfloat11SyncPerMatrix = 280e-6
)

// Engine simulates one deployment.
type Engine struct {
	cfg  Config
	plan kvcache.Plan

	weightBytesPerGPU int64
}

// New validates the deployment and plans device memory.
func New(cfg Config) (*Engine, error) {
	if cfg.NumGPUs <= 0 {
		cfg.NumGPUs = 1
	}
	if cfg.Backend == "" {
		return nil, fmt.Errorf("engine: backend must be set")
	}
	switch cfg.Backend {
	case BackendZipServ, BackendVLLM, BackendTransformers, BackendDFloat11:
	default:
		return nil, fmt.Errorf("engine: unknown backend %q", cfg.Backend)
	}
	if cfg.Compression.Ratio == 0 {
		cfg.Compression = gpu.DefaultCompression()
	}
	if cfg.ReservedGiB == 0 {
		cfg.ReservedGiB = 3
	}

	wBytes := cfg.Model.WeightBytes() / int64(cfg.NumGPUs)
	if compressedWeights(cfg.Backend) {
		wBytes = int64(float64(wBytes) / cfg.Compression.Ratio)
	}
	vram := int64(cfg.Device.VRAMGiB * float64(int64(1)<<30))
	reserved := int64(cfg.ReservedGiB * float64(int64(1)<<30))
	kvPerTokenPerGPU := cfg.Model.KVBytesPerToken() / int64(cfg.NumGPUs)
	plan, err := kvcache.PlanCapacity(vram, wBytes, reserved, kvPerTokenPerGPU, kvcache.DefaultBlockTokens)
	if err != nil {
		return nil, fmt.Errorf("engine: %s does not fit on %d× %s: %w",
			cfg.Model.Name, cfg.NumGPUs, cfg.Device.Name, err)
	}
	return &Engine{cfg: cfg, plan: plan, weightBytesPerGPU: wBytes}, nil
}

func compressedWeights(b Backend) bool {
	return b == BackendZipServ || b == BackendDFloat11
}

// Plan returns the engine's device-memory plan.
func (e *Engine) Plan() kvcache.Plan { return e.plan }

// WeightGiBPerGPU returns resident weight memory per GPU.
func (e *Engine) WeightGiBPerGPU() float64 {
	return float64(e.weightBytesPerGPU) / float64(int64(1)<<30)
}

// MaxConcurrent returns the number of sequences of the given total
// length (prompt+output) that fit in KV memory simultaneously.
func (e *Engine) MaxConcurrent(totalLen int) int {
	if totalLen <= 0 {
		return 0
	}
	return int(e.plan.MaxTokens) / totalLen
}

// FitsKV reports whether a request's full prompt+output KV
// reservation can ever fit the device plan. It is block-granular,
// mirroring Stepper.CanAdmit at an empty system, so every admission
// path (offline Serve validation, live Submit) rejects exactly the
// requests the scheduler could never admit.
func (e *Engine) FitsKV(promptLen, outputLen int) bool {
	return kvcache.BlocksFor(promptLen+outputLen, kvcache.DefaultBlockTokens) <= e.plan.Blocks
}

// shardedShape divides a layer across tensor-parallel ranks: QKV and
// GateUp are column-parallel (M shrinks), O and Down are row-parallel
// (K shrinks), the LM head is column-parallel.
func (e *Engine) shardedShape(kind weights.LayerKind, n int) gpu.Shape {
	s := e.cfg.Model.LayerShape(kind)
	tp := e.cfg.NumGPUs
	switch kind {
	case weights.QKVProj, weights.GateUpProj, weights.LMHead:
		return gpu.Shape{M: s.M / tp, K: s.K, N: n}
	case weights.OProj, weights.DownProj:
		return gpu.Shape{M: s.M, K: s.K / tp, N: n}
	default:
		return gpu.Shape{M: s.M, K: s.K, N: n}
	}
}

// gemmTime prices one weight GEMM at token count n under the
// deployment's backend.
func (e *Engine) gemmTime(kind weights.LayerKind, n int) float64 {
	s := e.shardedShape(kind, n)
	switch e.cfg.Backend {
	case BackendVLLM:
		return gpu.CuBLAS(e.cfg.Device, s).Total
	case BackendTransformers:
		return gpu.CuBLAS(e.cfg.Device, s).Total * eagerGEMMFactor
	case BackendZipServ:
		kt, _ := gpu.StageAware(e.cfg.Device, s, e.cfg.Compression)
		return kt.Total
	case BackendDFloat11:
		// DFloat11 re-expands compressed weights through its Huffman
		// pipeline ahead of every GEMM (decoupled execution), on top
		// of a Transformers-class host stack.
		p, err := gpu.Decoupled(e.cfg.Device, s, e.cfg.Compression.Ratio, codec.NameDFloat11)
		if err != nil {
			panic(err) // unreachable: profile is registered
		}
		return p.Total*eagerGEMMFactor + dfloat11SyncPerMatrix
	default:
		panic("engine: unknown backend")
	}
}

// stepGEMMTime prices all weight GEMMs of one decode step (batch b):
// four block layers × layers + the LM head.
func (e *Engine) stepGEMMTime(b int) float64 {
	var perBlock float64
	for _, kind := range weights.BlockLayerKinds {
		perBlock += e.gemmTime(kind, b)
	}
	return perBlock*float64(e.cfg.Model.NumLayers) + e.gemmTime(weights.LMHead, b)
}

// attentionTime prices the decode attention sweep: reading b×ctx
// token positions of KV (sharded across GPUs) at the stack's
// achievable bandwidth. A homogeneous batch is the sumCtx = b·ctx
// special case of the heterogeneous sweep.
func (e *Engine) attentionTime(b, ctx int) float64 {
	return e.attentionTimeTotal(b * ctx)
}

// attentionTimeTotal prices a decode attention sweep over a batch with
// heterogeneous context lengths (sumCtx = Σ per-sequence contexts).
func (e *Engine) attentionTimeTotal(sumCtx int) float64 {
	eff := pagedAttnEff
	if e.cfg.Backend == BackendTransformers || e.cfg.Backend == BackendDFloat11 {
		eff = eagerAttnEff
	}
	bytes := int64(sumCtx) * e.cfg.Model.KVBytesPerToken() / int64(e.cfg.NumGPUs)
	return gpu.StreamTime(e.cfg.Device, bytes, eff) +
		float64(e.cfg.Model.NumLayers)*gpu.LaunchOverhead
}

// otherTime prices the per-step framework overhead.
func (e *Engine) otherTime() float64 {
	per := pagedOverheadPerLayer
	if e.cfg.Backend == BackendTransformers || e.cfg.Backend == BackendDFloat11 {
		per = eagerOverheadPerLayer
	}
	return per * float64(e.cfg.Model.NumLayers)
}

// allReduceTime prices the two per-layer tensor-parallel reductions of
// a step processing n tokens (ring all-reduce of the hidden
// activations).
func (e *Engine) allReduceTime(n int) float64 {
	tp := e.cfg.NumGPUs
	if tp == 1 {
		return 0
	}
	bytes := float64(n) * float64(e.cfg.Model.HiddenDim) * 2
	ring := 2 * float64(tp-1) / float64(tp) * bytes / (e.cfg.Device.InterconnectGBps() * 1e9)
	return 2 * ring * float64(e.cfg.Model.NumLayers)
}

// DecodeStepTime returns the full latency of one decode step at batch
// b and context length ctx (the homogeneous special case of
// BatchDecodeStepTime).
func (e *Engine) DecodeStepTime(b, ctx int) float64 {
	return e.BatchDecodeStepTime(b, b*ctx)
}

// BatchDecodeStepTime prices one decode step over a heterogeneous
// running batch: b sequences whose context lengths sum to sumCtx. This
// is the step-granular entry point the continuous-batching loops
// (offline Serve and the live internal/serve scheduler) consume.
func (e *Engine) BatchDecodeStepTime(b, sumCtx int) float64 {
	return e.stepGEMMTime(b) + e.attentionTimeTotal(sumCtx) + e.otherTime() + e.allReduceTime(b)
}

// PrefillChunk describes the slice of one prompt processed in a single
// chunked-prefill iteration: Tokens prompt positions starting at offset
// Start (the tokens prefilled by earlier chunks). Final marks the chunk
// that completes the prompt, after which the sequence samples its first
// output token and joins the decode batch.
type PrefillChunk struct {
	Start  int
	Tokens int
	Final  bool
}

// ChunkedPrefillTime prices one token-packed prefill iteration over a
// set of prompt chunks (Sarathi-style chunked prefill). The GEMMs see
// the true total chunk token count; the attention kernel prices each
// chunk as its slice of the prompt's quadratic attention under the
// same full-square convention PackedPrefillTime uses — the difference
// of squares (Start+Tokens)² − Start², i.e. Tokens·(2·Start+Tokens) —
// so a prompt's chunks telescope to exactly the monolithic p²
// attention work and splitting never prices below it (per-iteration
// overheads make it strictly dearer). The LM head runs only for Final
// chunks — only completing sequences sample a token. A whole prompt
// processed as one chunk degenerates to PackedPrefillTime exactly.
func (e *Engine) ChunkedPrefillTime(chunks []PrefillChunk) float64 {
	if len(chunks) == 0 {
		return 0
	}
	n, finals := 0, 0
	for _, c := range chunks {
		n += c.Tokens
		if c.Final {
			finals++
		}
	}
	var gemm float64
	for _, kind := range weights.BlockLayerKinds {
		gemm += e.gemmTime(kind, n)
	}
	gemm *= float64(e.cfg.Model.NumLayers)
	if finals > 0 {
		gemm += e.gemmTime(weights.LMHead, finals)
	}

	m := e.cfg.Model
	var attnFLOPs float64
	for _, c := range chunks {
		attnFLOPs += 4 * float64(c.Tokens) * float64(2*c.Start+c.Tokens) * float64(m.HiddenDim) * float64(m.NumLayers)
	}
	attn := attnFLOPs / (e.cfg.Device.BF16TFLOPS * 1e12 * prefillAttnEff) / float64(e.cfg.NumGPUs)

	return gemm + attn + e.otherTime() + e.allReduceTime(n)
}

// KVDecompressTime prices restoring the given number of cold
// prefix-cache blocks from compressed form into physical KV blocks:
// each block holds DefaultBlockTokens tokens of per-GPU KV content,
// expanded by the TCA-TBE decompressor at the weight codec's measured
// ratio. The stepper charges this on the prefill iteration that claims
// the frozen blocks, so TTFT and InvertCost see the real price of the
// compressed cache's extra capacity.
func (e *Engine) KVDecompressTime(blocks int) float64 {
	if blocks <= 0 {
		return 0
	}
	bytes := int64(blocks) * int64(kvcache.DefaultBlockTokens) * e.cfg.Model.KVBytesPerToken() / int64(e.cfg.NumGPUs)
	return gpu.KVDecompressTime(e.cfg.Device, bytes, e.cfg.Compression.Ratio)
}

// PackedPrefillTime prices a token-packed (varlen, padding-free)
// prefill over prompts of the given lengths: the GEMMs see the true
// total token count and the attention kernel the true per-sequence
// quadratic work, the way a FlashAttention varlen kernel batches
// ragged prompts — the whole-prompt special case of ChunkedPrefillTime.
// Contrast PrefillTime, which pads every prompt in the batch to the
// longest one (request-level static batching).
func (e *Engine) PackedPrefillTime(prompts []int) float64 {
	chunks := make([]PrefillChunk, len(prompts))
	for i, p := range prompts {
		chunks[i] = PrefillChunk{Start: 0, Tokens: p, Final: true}
	}
	return e.ChunkedPrefillTime(chunks)
}

// PrefillTime returns the time to process prompts of length p for b
// sequences: the uniform-length special case of PackedPrefillTime,
// which is what a padded prefill batch degenerates to once every
// prompt has been padded to the longest one.
func (e *Engine) PrefillTime(b, p int) float64 {
	prompts := make([]int, b)
	for i := range prompts {
		prompts[i] = p
	}
	return e.PackedPrefillTime(prompts)
}
