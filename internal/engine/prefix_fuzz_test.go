package engine

import (
	"math/rand"
	"testing"

	"zipserv/internal/gpu"
	"zipserv/internal/weights"
)

// FuzzPrefixCacheInvariants drives random shared-prefix workloads —
// prompts drawn from a small pool of common prefixes plus unique
// suffixes — through a prefix-cached Stepper with random chunk
// budgets, cache capacities and a mid-run preemption, checking the
// sharing invariants after every iteration: the allocator's refcounts
// always equal the true table references (so no block is ever freed —
// or reused — while referenced), every request's output is emitted
// exactly once, and after the drain all refcounts have returned to
// zero with no block leaked.
func FuzzPrefixCacheInvariants(f *testing.F) {
	// Seeds: monolithic and tiny chunks, bursty and spaced arrivals,
	// tight and unbounded cache capacities, early/late preemption.
	f.Add(int64(1), uint16(0), uint8(6), uint8(0), uint16(0))
	f.Add(int64(2), uint16(1), uint8(4), uint8(2), uint16(3))
	f.Add(int64(3), uint16(7), uint8(9), uint8(5), uint16(0))
	f.Add(int64(4), uint16(64), uint8(12), uint8(200), uint16(17))
	f.Add(int64(5), uint16(33), uint8(8), uint8(9), uint16(1))

	model, err := weights.ByName("LLaMA3.1-8B")
	if err != nil {
		f.Fatal(err)
	}
	dev := gpu.MustByName("RTX4090")

	f.Fuzz(func(t *testing.T, seed int64, chunk uint16, nReqs uint8, preemptAt uint8, cacheCap uint16) {
		e, err := New(Config{Model: model, Device: dev, NumGPUs: 1, Backend: BackendZipServ})
		if err != nil {
			t.Fatal(err)
		}
		sp, err := NewStepper(e)
		if err != nil {
			t.Fatal(err)
		}
		sp.PackedPrefill = true
		sp.PrefillChunkTokens = int(chunk % 512)
		if err := sp.EnablePrefixCache(int(cacheCap % 64)); err != nil {
			t.Fatal(err)
		}

		rng := rand.New(rand.NewSource(seed))
		n := int(nReqs%12) + 2
		pending := make([]Request, n)
		var wantTokens int64
		for i := range pending {
			// Prompt = a random cut of one of three common prefixes
			// plus a unique suffix; some requests repeat a prompt
			// exactly (fully cached case), some carry no tokens at all
			// (must coexist with cached ones).
			pool := rng.Intn(3) + 1
			prefixLen := rng.Intn(200)
			suffixLen := rng.Intn(60) + 1
			prompt := append(prefixTokens(prefixLen, pool), prefixTokens(suffixLen, 50+pool)...)
			if rng.Intn(4) == 0 {
				prompt = prefixTokens(prefixLen+suffixLen, pool) // exact repeats across requests
			}
			r := Request{
				ID:             i + 1,
				ArrivalSeconds: rng.Float64() * 0.3,
				PromptLen:      len(prompt),
				OutputLen:      rng.Intn(40) + 1,
				Prompt:         prompt,
			}
			if rng.Intn(5) == 0 {
				r.Prompt = nil // tokenless request: prices by length only
			}
			pending[i] = r
			wantTokens += int64(r.OutputLen)
		}

		freeStart := sp.FreeBlocks()
		finished := make(map[int]int, n)
		preemptIter := int(preemptAt % 32)
		preempted := false
		nextIdx := 0
		for iter := 0; len(finished) < n; iter++ {
			if iter > 1<<20 {
				t.Fatal("scheduler failed to make progress")
			}
			if sp.InFlight() == 0 && nextIdx < len(pending) && pending[nextIdx].ArrivalSeconds > sp.Clock() {
				sp.AdvanceTo(pending[nextIdx].ArrivalSeconds)
			}
			for nextIdx < len(pending) && pending[nextIdx].ArrivalSeconds <= sp.Clock() {
				r := pending[nextIdx]
				if !sp.CanAdmitRequest(r) {
					break
				}
				if err := sp.Admit(r); err != nil {
					t.Fatal(err)
				}
				nextIdx++
			}

			// One preemption at a fuzzed iteration: a victim holding
			// shared blocks must release references, never the shared
			// blocks themselves.
			if !preempted && iter == preemptIter && sp.InFlight() > 0 {
				id := rng.Intn(n) + 1
				if req, ok := sp.Preempt(id); ok {
					preempted = true
					req.ArrivalSeconds = sp.Clock()
					pending = append(pending, req)
				}
			}

			sp.Prefill()
			fin, _, err := sp.DecodeStep()
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range fin {
				finished[m.ID]++
				if finished[m.ID] > 1 {
					t.Fatalf("request %d finished %d times (duplicated tokens)", m.ID, finished[m.ID])
				}
			}
			// The core sharing invariant, checked every iteration: the
			// stored refcounts equal the true table reference counts and
			// free/cached/owned partition the block space — no block is
			// freed while referenced.
			if err := sp.mgr.CheckInvariants(); err != nil {
				t.Fatalf("iteration %d: %v", iter, err)
			}
			if sp.InFlight() == 0 && nextIdx >= len(pending) && len(finished) < n {
				t.Fatalf("drained with %d/%d requests finished (lost tokens)", len(finished), n)
			}
		}

		if got := sp.OutputTokens(); got != wantTokens {
			t.Fatalf("emitted %d tokens, want %d (lost or duplicated work)", got, wantTokens)
		}
		// After the drain every refcount is zero: cached blocks are all
		// reclaimable, so the full block budget reads as free again.
		if got := sp.FreeBlocks(); got != freeStart {
			t.Fatalf("KV blocks not conserved: %d free after drain, started with %d", got, freeStart)
		}
		if err := sp.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
