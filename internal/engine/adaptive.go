package engine

import (
	"fmt"
	"math"

	"zipserv/internal/gpu"
	"zipserv/internal/kvcache"
)

// Adaptive SLO-driven chunked prefill (the closed-loop version of
// Sarathi-Serve's chunking): instead of trusting an operator's static
// -prefill-chunk constant, the Stepper re-derives the budget every
// iteration from a combined step-time target. One scheduler iteration
// emits one token for every decoding sequence, so the iteration's
// wall time — the prefill chunk it mixes in plus the decode step — IS
// the decode batch's inter-token latency; holding it under the TPOT
// SLO bounds the cadence stall that static chunking only bounds for
// the workload it was tuned on.
//
// Each iteration the controller:
//
//  1. prices the current decode batch with the cost model
//     (BatchDecodeStepTime) and subtracts it from the target, leaving
//     the prefill headroom;
//  2. inverts ChunkedPrefillTime over that headroom (gpu.InvertCost
//     binary-searches the true carve the budget would produce), solving
//     for the largest chunk that keeps the combined step under target;
//  3. clamps the solution to [MinTokens, MaxTokens] and smooths it —
//     asymmetrically: shrink at once (the cadence SLO is the hard
//     constraint), grow by EWMA (so one idle iteration does not slam
//     a huge chunk between decode steps).
//
// With an empty decode batch a mixed replica has no cadence to
// protect, so the budget rises toward MaxTokens and an idle loop
// swallows long prompts nearly monolithically — exactly the two
// regimes the static flag forces operators to trade off. A dedicated
// prefill replica (a disaggregated pool, see docs/disaggregation.md)
// is different: it is decode-free by design, so "idle-grow" would pin
// the budget at the ceiling forever and every iteration would stall
// arrivals for an unbounded, ceiling-sized prefill. Setting
// Stepper.DecodeFree declares that steady state and gives the
// controller an explicit decode-free operating point: with no decode
// batch it solves the budget directly against the full TargetStepTime,
// bounding per-iteration admission (and handoff) latency by the same
// SLO that governs mixed iterations.

// Adaptive chunk-budget defaults.
const (
	// DefaultAdaptiveChunkMin floors the budget at one KV block. A
	// prefill iteration is almost all fixed cost (weight streaming and
	// launch overheads dwarf the per-token work), so the floor buys the
	// best achievable cadence while the decode batch is deep — minimal
	// stall per iteration — and the controller only sits there while
	// congestion lasts; prompt throughput is recovered by the budget
	// ceiling the moment the batch thins out.
	DefaultAdaptiveChunkMin = kvcache.DefaultBlockTokens
	// DefaultAdaptiveChunkMax caps the budget: one iteration never
	// mixes in more prompt than this even when the loop is idle.
	DefaultAdaptiveChunkMax = 2048
	// chunkGrowAlpha is the EWMA weight of the freshly solved budget
	// while growing (shrinking is immediate).
	chunkGrowAlpha = 0.5
	// stepEWMAAlpha smooths the observed combined iteration time
	// surfaced as StepTimeEWMA.
	stepEWMAAlpha = 0.3
)

// chunkController is the closed-loop chunk-budget state.
type chunkController struct {
	target   float64 // combined prefill+decode step-time target (seconds)
	min, max int
	budget   float64 // smoothed current budget (tokens)
}

// EnableAdaptiveChunking replaces the static PrefillChunkTokens budget
// with the closed-loop controller: every Prefill call re-derives its
// chunk budget so that the iteration's prefill + decode time stays
// under targetStepTime (the decode batch's TPOT SLO). minTokens and
// maxTokens clamp the budget (0 = DefaultAdaptiveChunkMin/Max). Must
// be enabled before the first Prefill.
func (s *Stepper) EnableAdaptiveChunking(targetStepTime float64, minTokens, maxTokens int) error {
	if targetStepTime <= 0 || math.IsNaN(targetStepTime) || math.IsInf(targetStepTime, 0) {
		return fmt.Errorf("engine: adaptive chunking target %v must be positive and finite", targetStepTime)
	}
	if minTokens < 0 || maxTokens < 0 {
		return fmt.Errorf("engine: adaptive chunk bounds must be non-negative, got %d/%d", minTokens, maxTokens)
	}
	if minTokens == 0 {
		minTokens = DefaultAdaptiveChunkMin
	}
	if maxTokens == 0 {
		maxTokens = DefaultAdaptiveChunkMax
	}
	if maxTokens < minTokens {
		return fmt.Errorf("engine: adaptive chunk max %d below min %d", maxTokens, minTokens)
	}
	s.chunkCtl = &chunkController{
		target: targetStepTime,
		min:    minTokens,
		max:    maxTokens,
		budget: float64(maxTokens), // idle start: no decode batch to protect yet
	}
	return nil
}

// AdaptiveChunking reports whether the closed-loop budget is on.
func (s *Stepper) AdaptiveChunking() bool { return s.chunkCtl != nil }

// TargetStepTime returns the adaptive controller's combined step-time
// target (0 when adaptive chunking is off).
func (s *Stepper) TargetStepTime() float64 {
	if s.chunkCtl == nil {
		return 0
	}
	return s.chunkCtl.target
}

// ChunkBudget returns the prefill token budget the next iteration will
// honour: the controller's smoothed current budget under adaptive
// chunking, otherwise the static PrefillChunkTokens (0 = monolithic).
func (s *Stepper) ChunkBudget() int {
	if s.chunkCtl != nil {
		return int(s.chunkCtl.budget + 0.5)
	}
	return s.PrefillChunkTokens
}

// probePrefillTime prices the prefill iteration a given budget would
// produce right now: carve the admitted queue exactly as Prefill
// would, then run the carve through the chunk-aware cost model. The
// probe buffer is scratch; the controller's binary search calls this
// O(log(max/min)) times per iteration.
func (s *Stepper) probePrefillTime(budget int) float64 {
	sc := s.scratch()
	sc.probe = s.carve(budget, sc.probe[:0])
	// Pending thaw work runs with the iteration regardless of budget;
	// the probe must include it or InvertCost would solve for a budget
	// whose real iteration overshoots the cadence target.
	return s.e.ChunkedPrefillTime(sc.probe) + s.e.KVDecompressTime(s.pendingDecompress)
}

// adaptChunkBudget runs one controller update and returns the budget
// this Prefill call must honour. Called with a non-empty admitted
// queue.
func (s *Stepper) adaptChunkBudget() int {
	ctl := s.chunkCtl
	var solved int
	if len(s.active) > 0 {
		sumCtx := 0
		for _, q := range s.active {
			sumCtx += q.ctx
		}
		headroom := ctl.target - s.e.BatchDecodeStepTime(len(s.active), sumCtx)
		if headroom <= 0 {
			// The decode step alone blows the target: make minimal
			// prompt progress so admitted sequences still move.
			solved = ctl.min
		} else {
			solved = gpu.InvertCost(ctl.min, ctl.max, headroom, s.probePrefillTime)
		}
	} else if s.DecodeFree {
		// Decode-free operating point: on a dedicated prefill replica
		// the whole step-time target is prefill headroom. Solving
		// (rather than defaulting to the ceiling) keeps its iterations
		// — and so its admission and handoff latency — bounded by the
		// same SLO that governs mixed iterations.
		solved = gpu.InvertCost(ctl.min, ctl.max, ctl.target, s.probePrefillTime)
	} else {
		// A mixed replica's empty decode batch is transient idleness:
		// nobody's cadence is at stake, so grow toward the ceiling and
		// drain prompts with as few fixed-cost iterations as possible.
		solved = ctl.max
	}
	if f := float64(solved); f < ctl.budget {
		ctl.budget = f // shrink at once: the cadence SLO is hard
	} else {
		ctl.budget = chunkGrowAlpha*f + (1-chunkGrowAlpha)*ctl.budget
	}
	if ctl.budget < float64(ctl.min) {
		ctl.budget = float64(ctl.min)
	}
	if ctl.budget > float64(ctl.max) {
		ctl.budget = float64(ctl.max)
	}
	return int(ctl.budget + 0.5)
}
