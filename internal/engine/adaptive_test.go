package engine

import (
	"sort"
	"testing"
)

func TestAdaptiveChunkingValidation(t *testing.T) {
	e := newPrefixTestEngine(t)
	sp, err := NewStepper(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		target   float64
		min, max int
	}{
		{"zero target", 0, 0, 0},
		{"negative target", -1, 0, 0},
		{"nan target", nan(), 0, 0},
		{"negative min", 0.02, -1, 0},
		{"max below min", 0.02, 256, 64},
	} {
		if err := sp.EnableAdaptiveChunking(tc.target, tc.min, tc.max); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	if sp.AdaptiveChunking() {
		t.Fatal("rejected enables left the controller on")
	}
	if err := sp.EnableAdaptiveChunking(0.03, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !sp.AdaptiveChunking() || sp.TargetStepTime() != 0.03 {
		t.Fatalf("controller not armed: adaptive=%v target=%v", sp.AdaptiveChunking(), sp.TargetStepTime())
	}
	if got := sp.ChunkBudget(); got != DefaultAdaptiveChunkMax {
		t.Fatalf("idle-start budget %d, want max %d", got, DefaultAdaptiveChunkMax)
	}
}

func nan() float64 { z := 0.0; return z / z }

// TestAdaptiveChunkingGrowsWhenIdle: on a mixed replica an empty
// decode batch is transient idleness — no cadence to protect — so a
// long prompt prefills at the budget ceiling.
func TestAdaptiveChunkingGrowsWhenIdle(t *testing.T) {
	e := newPrefixTestEngine(t)
	sp, err := NewStepper(e)
	if err != nil {
		t.Fatal(err)
	}
	sp.PackedPrefill = true
	if err := sp.EnableAdaptiveChunking(0.03, 64, 512); err != nil {
		t.Fatal(err)
	}
	if err := sp.Admit(Request{ID: 1, PromptLen: 4096, OutputLen: 4}); err != nil {
		t.Fatal(err)
	}
	sp.Prefill()
	if got := sp.PrefillTokens(); got != 512 {
		t.Fatalf("idle-loop iteration prefilled %d tokens, want the 512 ceiling", got)
	}
}

// TestAdaptiveChunkingDecodeFreeOperatingPoint: with DecodeFree set —
// a dedicated prefill-pool replica, whose every iteration is
// decode-free by design — the controller must solve the budget
// directly against the step-time target instead of defaulting to the
// ceiling. The regression guarded here: the pre-fix controller treated
// "no decode batch" as "no constraint" and prefilled MaxTokens per
// iteration, blowing the target on every step of a prefill-pool
// replica.
func TestAdaptiveChunkingDecodeFreeOperatingPoint(t *testing.T) {
	e := newPrefixTestEngine(t)
	sp, err := NewStepper(e)
	if err != nil {
		t.Fatal(err)
	}
	sp.PackedPrefill = true
	sp.DecodeFree = true
	// The 512-token ceiling costs well over the 30ms target on this
	// engine, so a solved budget must land strictly below it.
	const target = 0.03
	if err := sp.EnableAdaptiveChunking(target, 64, 512); err != nil {
		t.Fatal(err)
	}
	if err := sp.Admit(Request{ID: 1, PromptLen: 4096, OutputLen: 1}); err != nil {
		t.Fatal(err)
	}
	iters := 0
	for sp.AdmittedCount() > 0 {
		if iters++; iters > 1<<10 {
			t.Fatal("prefill failed to make progress")
		}
		budget := sp.ChunkBudget()
		_, elapsed := sp.Prefill()
		if elapsed > target*1.001 {
			t.Fatalf("decode-free iteration %d took %.4fs with budget %d, want <= %.4fs target",
				iters, elapsed, budget, target)
		}
	}
	if got := sp.ChunkBudget(); got <= 64 || got >= 512 {
		t.Errorf("decode-free budget %d, want a solved point strictly inside (64, 512)", got)
	}
	// The solved budget must actually use the target, not idle at the
	// floor: a 4096-token prompt at the floor would need 64 iterations.
	if iters >= 4096/64 {
		t.Errorf("prompt took %d decode-free iterations — budget pinned at the floor", iters)
	}
	for sp.InFlight() > 0 {
		if _, _, err := sp.DecodeStep(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveChunkingHoldsStepTarget: against a deep decode batch the
// controller must shrink the budget so every combined iteration
// (prefill chunk + decode step) stays under the target whenever the
// budget is above its floor — and it must never stop making prompt
// progress even when the decode step alone blows the target.
func TestAdaptiveChunkingHoldsStepTarget(t *testing.T) {
	e := newPrefixTestEngine(t)
	sp, err := NewStepper(e)
	if err != nil {
		t.Fatal(err)
	}
	sp.PackedPrefill = true
	// Decode-only time for the steady batch below is ~20 ms; leave a
	// few ms of prefill headroom.
	const target = 0.026
	if err := sp.EnableAdaptiveChunking(target, 64, 2048); err != nil {
		t.Fatal(err)
	}

	// Build a deep decode batch first.
	for id := 1; id <= 24; id++ {
		if err := sp.Admit(Request{ID: id, PromptLen: 128, OutputLen: 256}); err != nil {
			t.Fatal(err)
		}
	}
	for sp.AdmittedCount() > 0 {
		sp.Prefill() // the 2048-token ceiling needs two carves for 24×128
	}
	if sp.ActiveCount() != 24 {
		t.Fatalf("decode batch %d, want 24", sp.ActiveCount())
	}
	// Now wedge a long prompt in and drive the loop.
	if err := sp.Admit(Request{ID: 99, PromptLen: 4096, OutputLen: 8}); err != nil {
		t.Fatal(err)
	}
	overTarget := 0
	for iter := 0; sp.InFlight() > 0; iter++ {
		if iter > 1<<20 {
			t.Fatal("scheduler failed to make progress")
		}
		budget := sp.ChunkBudget()
		_, pElapsed := sp.Prefill()
		_, dElapsed, err := sp.DecodeStep()
		if err != nil {
			t.Fatal(err)
		}
		if pElapsed > 0 && dElapsed > 0 && pElapsed+dElapsed > target*1.001 && budget > 64 {
			overTarget++
		}
	}
	// The controller may overshoot only transiently (the first carve
	// after the long prompt lands, before the solved budget takes
	// effect via fast-shrink — which applies the same iteration, so in
	// practice never).
	if overTarget > 1 {
		t.Errorf("%d combined iterations exceeded the %.0fms target with budget above the floor",
			overTarget, target*1e3)
	}
	if sp.StepTimeEWMA() <= 0 {
		t.Error("step-time EWMA never observed an iteration")
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveOutputsIdenticalToMonolithic: the controller changes
// timing only — which requests finish and how many tokens they emit
// must be byte-identical to monolithic prefill.
func TestAdaptiveOutputsIdenticalToMonolithic(t *testing.T) {
	e := newPrefixTestEngine(t)
	reqs := sharedPrefixTrace(12, 128, 24, 16, 0.02)
	mono, spMono, _ := driveChunked(t, e, reqs, 0)
	adaptive, spAdaptive := driveAdaptive(t, e, reqs, 0.03)
	if got, want := fingerprint(t, reqs, adaptive, spAdaptive), fingerprint(t, reqs, mono, spMono); got != want {
		t.Errorf("adaptive outputs diverge from monolithic:\n--- adaptive\n%s\n--- monolithic\n%s", got, want)
	}
}

// driveAdaptive replays a trace through a Stepper under the adaptive
// chunk controller, FIFO admission.
func driveAdaptive(t testing.TB, e *Engine, reqs []Request, target float64) ([]RequestMetrics, *Stepper) {
	t.Helper()
	sp, err := NewStepper(e)
	if err != nil {
		t.Fatal(err)
	}
	sp.PackedPrefill = true
	if err := sp.EnableAdaptiveChunking(target, 0, 0); err != nil {
		t.Fatal(err)
	}
	var done []RequestMetrics
	nextIdx := 0
	for iter := 0; len(done) < len(reqs); iter++ {
		if iter > 1<<20 {
			t.Fatal("scheduler failed to make progress")
		}
		if sp.InFlight() == 0 && nextIdx < len(reqs) && reqs[nextIdx].ArrivalSeconds > sp.Clock() {
			sp.AdvanceTo(reqs[nextIdx].ArrivalSeconds)
		}
		for nextIdx < len(reqs) && reqs[nextIdx].ArrivalSeconds <= sp.Clock() {
			if !sp.CanAdmitRequest(reqs[nextIdx]) {
				break
			}
			if err := sp.Admit(reqs[nextIdx]); err != nil {
				t.Fatal(err)
			}
			nextIdx++
		}
		sp.Prefill()
		fin, _, err := sp.DecodeStep()
		if err != nil {
			t.Fatal(err)
		}
		done = append(done, fin...)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	sort.Slice(done, func(i, j int) bool { return done[i].ID < done[j].ID })
	return done, sp
}

// TestAdmissionLookupMemoized: the CanAdmitRequest → Admit pair must
// walk the prefix trie once for the capacity lookup (plus once for the
// claim itself), with the memo invalidated the moment the allocator's
// generation moves.
func TestAdmissionLookupMemoized(t *testing.T) {
	e := newPrefixTestEngine(t)
	sp, err := NewStepper(e)
	if err != nil {
		t.Fatal(err)
	}
	sp.PackedPrefill = true
	if err := sp.EnablePrefixCache(0); err != nil {
		t.Fatal(err)
	}
	seed := Request{ID: 1, PromptLen: 128, OutputLen: 4, Prompt: prefixTokens(128, 1)}
	if err := sp.Admit(seed); err != nil {
		t.Fatal(err)
	}
	for sp.InFlight() > 0 {
		sp.Prefill()
		if _, _, err := sp.DecodeStep(); err != nil {
			t.Fatal(err)
		}
	}

	r := Request{ID: 2, PromptLen: 128, OutputLen: 4, Prompt: prefixTokens(128, 1)}
	before := sp.mgr.Walks()
	if got := sp.Lookup(r); got == 0 {
		t.Fatal("seeded prefix did not match")
	}
	if sp.Lookup(r); sp.mgr.Walks() != before+1 {
		t.Fatalf("%d walks for two identical lookups, want 1 (memoized)", sp.mgr.Walks()-before)
	}
	// Admit reuses the memoized lookup; only the claim itself walks.
	before = sp.mgr.Walks()
	if err := sp.Admit(r); err != nil {
		t.Fatal(err)
	}
	if got := sp.mgr.Walks() - before; got != 1 {
		t.Fatalf("Admit after Lookup performed %d walks, want 1 (the claim)", got)
	}
	// The claim moved the generation: a fresh lookup must re-walk.
	before = sp.mgr.Walks()
	sp.Lookup(r)
	if got := sp.mgr.Walks() - before; got != 1 {
		t.Fatalf("stale-generation lookup performed %d walks, want 1", got)
	}
	for sp.InFlight() > 0 {
		sp.Prefill()
		if _, _, err := sp.DecodeStep(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
}
