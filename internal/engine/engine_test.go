package engine

import (
	"strings"
	"testing"

	"zipserv/internal/gpu"
	"zipserv/internal/weights"
)

func newEngine(t *testing.T, modelName, device string, ngpus int, backend Backend) *Engine {
	t.Helper()
	model, err := weights.ByName(modelName)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Model: model, Device: gpu.MustByName(device), NumGPUs: ngpus, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	model, _ := weights.ByName("LLaMA3.1-8B")
	if _, err := New(Config{Model: model, Device: gpu.MustByName("RTX4090")}); err == nil {
		t.Error("missing backend accepted")
	}
	if _, err := New(Config{Model: model, Device: gpu.MustByName("RTX4090"), Backend: "triton"}); err == nil {
		t.Error("unknown backend accepted")
	}
	// A 70B model cannot fit on a single 24 GiB card with dense
	// weights.
	big, _ := weights.ByName("LLaMA3.1-70B")
	if _, err := New(Config{Model: big, Device: gpu.MustByName("RTX4090"), Backend: BackendVLLM}); err == nil {
		t.Error("70B on one RTX4090 accepted")
	}
}

func TestMemoryPlanFig17(t *testing.T) {
	// Figure 17: on RTX4090, LLaMA3.1-8B weights drop from 14.96 GiB
	// (vLLM) to ≈11 GiB resident (ZipServ), and the freed memory
	// raises KV capacity by ≈1.7×.
	zip := newEngine(t, "LLaMA3.1-8B", "RTX4090", 1, BackendZipServ)
	vllm := newEngine(t, "LLaMA3.1-8B", "RTX4090", 1, BackendVLLM)

	if w := vllm.WeightGiBPerGPU(); w < 14.5 || w > 15.5 {
		t.Errorf("vLLM weights %.2f GiB, paper 14.96", w)
	}
	if w := zip.WeightGiBPerGPU(); w < 10.0 || w > 11.6 {
		t.Errorf("ZipServ weights %.2f GiB, paper 11.18 (incl. runtime buffers)", w)
	}
	gain := float64(zip.Plan().KVBytes) / float64(vllm.Plan().KVBytes)
	if gain < 1.4 || gain > 2.1 {
		t.Errorf("KV capacity gain %.2f, paper 1.70", gain)
	}
	// E-6.5: compressed footprint ≈ 71% of dense.
	frac := zip.WeightGiBPerGPU() / vllm.WeightGiBPerGPU()
	if frac < 0.68 || frac > 0.74 {
		t.Errorf("weight footprint fraction %.3f, paper 0.711–0.724", frac)
	}
}

func TestStepBreakdownFig17(t *testing.T) {
	// Figure 17 latency composition for vLLM (bs 32, seq 1024):
	// GEMM ≈ 25 ms dominating at >75%, attention ≈ 3 ms, others ≈ 1.9
	// ms; ZipServ cuts the GEMM component by ≈1.7×.
	vllm := newEngine(t, "LLaMA3.1-8B", "RTX4090", 1, BackendVLLM)
	zip := newEngine(t, "LLaMA3.1-8B", "RTX4090", 1, BackendZipServ)

	g := vllm.stepGEMMTime(32)
	if g < 15e-3 || g > 30e-3 {
		t.Errorf("vLLM step GEMM %.2f ms, paper ≈25 ms", g*1e3)
	}
	frac := g / vllm.DecodeStepTime(32, 1024)
	if frac < 0.65 || frac > 0.92 {
		t.Errorf("GEMM fraction %.2f of step, paper 0.836", frac)
	}
	speedup := g / zip.stepGEMMTime(32)
	if speedup < 1.35 || speedup > 1.95 {
		t.Errorf("linear-layer speedup %.2f, paper 1.69", speedup)
	}
	if o := vllm.otherTime(); o < 1e-3 || o > 3e-3 {
		t.Errorf("other overhead %.2f ms, paper 1.88 ms", o*1e3)
	}
}

func TestFig16ThroughputOrdering(t *testing.T) {
	// Figure 16: ZipServ > vLLM > Transformers > DFloat11 in
	// throughput on every scenario and configuration.
	for _, sc := range Figure16Scenarios() {
		results := map[Backend]float64{}
		for _, b := range Backends() {
			e, err := NewForScenario(sc, b)
			if err != nil {
				t.Fatalf("%v %s: %v", sc, b, err)
			}
			m, err := e.Run(8, 128, 512)
			if err != nil {
				t.Fatalf("%v %s: %v", sc, b, err)
			}
			results[b] = m.Throughput
		}
		if !(results[BackendZipServ] > results[BackendVLLM] &&
			results[BackendVLLM] > results[BackendTransformers] &&
			results[BackendTransformers] > results[BackendDFloat11]) {
			t.Errorf("%v: ordering violated: %v", sc, results)
		}
	}
}

func TestFig16AverageSpeedups(t *testing.T) {
	// Figure 16 averages across models, batch sizes and output
	// lengths: ZipServ ≈1.22× vLLM, ≈3.18× Transformers, ≈8.52×
	// DFloat11 in throughput. The simulation must land in generous
	// bands around those (the exact values depend on vLLM's preemption
	// policy, which we model coarsely as waves).
	type accum struct {
		sum float64
		n   int
	}
	ratios := map[Backend]*accum{
		BackendVLLM: {}, BackendTransformers: {}, BackendDFloat11: {},
	}
	for _, sc := range Figure16Scenarios() {
		engines := map[Backend]*Engine{}
		for _, b := range Backends() {
			e, err := NewForScenario(sc, b)
			if err != nil {
				t.Fatal(err)
			}
			engines[b] = e
		}
		for _, batch := range []int{8, 32} {
			for _, out := range []int{128, 512, 2048} {
				zm, err := engines[BackendZipServ].Run(batch, 128, out)
				if err != nil {
					t.Fatal(err)
				}
				for _, b := range []Backend{BackendVLLM, BackendTransformers, BackendDFloat11} {
					m, err := engines[b].Run(batch, 128, out)
					if err != nil {
						t.Fatal(err)
					}
					ratios[b].sum += zm.Throughput / m.Throughput
					ratios[b].n++
				}
			}
		}
	}
	bands := map[Backend][2]float64{
		BackendVLLM:         {1.05, 2.0}, // paper 1.22
		BackendTransformers: {2.2, 5.5},  // paper 3.18
		BackendDFloat11:     {4.0, 12.0}, // paper 8.52
	}
	for b, acc := range ratios {
		avg := acc.sum / float64(acc.n)
		t.Logf("avg throughput ratio vs %s: %.2f", b, avg)
		lo, hi := bands[b][0], bands[b][1]
		if avg < lo || avg > hi {
			t.Errorf("avg speedup vs %s = %.2f outside [%.1f, %.1f]", b, avg, lo, hi)
		}
	}
}

func TestLongContextAdvantageGrows(t *testing.T) {
	// §6.5: gains are pronounced for long-context generation — the
	// ZipServ/vLLM ratio at output 2048 must exceed the ratio at 128,
	// and the bs32/out2048 LLaMA config shows ≥1.3× (paper: 1.66×).
	zip := newEngine(t, "LLaMA3.1-8B", "RTX4090", 1, BackendZipServ)
	vllm := newEngine(t, "LLaMA3.1-8B", "RTX4090", 1, BackendVLLM)
	ratio := func(out int) float64 {
		zm, err := zip.Run(32, 128, out)
		if err != nil {
			t.Fatal(err)
		}
		vm, err := vllm.Run(32, 128, out)
		if err != nil {
			t.Fatal(err)
		}
		return zm.Throughput / vm.Throughput
	}
	short := ratio(128)
	long := ratio(2048)
	if long <= short {
		t.Errorf("long-context ratio %.2f not above short-context %.2f", long, short)
	}
	if long < 1.3 {
		t.Errorf("bs32/out2048 speedup %.2f < 1.3 (paper 1.66)", long)
	}
	// Absolute throughput same order of magnitude as the paper's 1105
	// tokens/s.
	zm, _ := zip.Run(32, 128, 2048)
	if zm.Throughput < 600 || zm.Throughput > 2500 {
		t.Errorf("ZipServ throughput %.0f tok/s, paper ≈1105", zm.Throughput)
	}
}

func TestWavesReflectKVCapacity(t *testing.T) {
	// The compressed backend must admit more concurrent sequences.
	zip := newEngine(t, "LLaMA3.1-8B", "RTX4090", 1, BackendZipServ)
	vllm := newEngine(t, "LLaMA3.1-8B", "RTX4090", 1, BackendVLLM)
	if zc, vc := zip.MaxConcurrent(2176), vllm.MaxConcurrent(2176); zc <= vc {
		t.Errorf("ZipServ concurrency %d not above vLLM %d", zc, vc)
	}
	zm, err := zip.Run(32, 128, 2048)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := vllm.Run(32, 128, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if zm.Waves >= vm.Waves {
		t.Errorf("ZipServ waves %d, vLLM waves %d: compression should reduce waves", zm.Waves, vm.Waves)
	}
}

func TestRunErrors(t *testing.T) {
	e := newEngine(t, "LLaMA3.1-8B", "RTX4090", 1, BackendZipServ)
	if _, err := e.Run(0, 128, 128); err == nil {
		t.Error("zero batch accepted")
	}
	if _, err := e.Run(8, 0, 128); err == nil {
		t.Error("zero prompt accepted")
	}
	if _, err := e.Run(8, 128, 0); err == nil {
		t.Error("zero output accepted")
	}
	// A sequence longer than total KV capacity must fail with a clear
	// message, not loop.
	if _, err := e.Run(1, 1, 100_000_000); err == nil {
		t.Error("impossible sequence length accepted")
	} else if !strings.Contains(err.Error(), "does not fit") {
		t.Errorf("unhelpful OOM error: %v", err)
	}
}

func TestTensorParallelismScales(t *testing.T) {
	// 70B on 4× L40S must be faster than on… well, it cannot run on
	// fewer; verify TP mechanics instead: 2×L40S Mistral beats 1×L40S
	// in throughput despite all-reduce overhead (weights halve per
	// GPU), and sharded shapes sum to the full model.
	two := newEngine(t, "Mistral-24B", "L40S", 2, BackendZipServ)
	one := newEngine(t, "Mistral-24B", "L40S", 1, BackendZipServ)
	m2, err := two.Run(16, 128, 256)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := one.Run(16, 128, 256)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Throughput <= m1.Throughput {
		t.Errorf("TP=2 throughput %.0f not above TP=1 %.0f", m2.Throughput, m1.Throughput)
	}
	// Sharding conserves elements.
	model, _ := weights.ByName("Mistral-24B")
	for _, kind := range weights.BlockLayerKinds {
		full := model.LayerShape(kind)
		sh := two.shardedShape(kind, 1)
		if int64(sh.M)*int64(sh.K)*2 != full.Elements() {
			t.Errorf("%s: shard %dx%d ×2 != full %dx%d", kind, sh.M, sh.K, full.M, full.K)
		}
	}
	if two.allReduceTime(16) <= 0 {
		t.Error("TP=2 must pay all-reduce time")
	}
	if one.allReduceTime(16) != 0 {
		t.Error("TP=1 must not pay all-reduce time")
	}
}

func TestPrefillUsesDecoupledPath(t *testing.T) {
	// §4.4: for prefill-scale N the stage-aware engine must not be
	// slower than ~1.06× the dense baseline (decompression amortised),
	// and decode steps must be strictly faster.
	zip := newEngine(t, "LLaMA3.1-8B", "RTX4090", 1, BackendZipServ)
	vllm := newEngine(t, "LLaMA3.1-8B", "RTX4090", 1, BackendVLLM)
	zp := zip.PrefillTime(4, 2048)
	vp := vllm.PrefillTime(4, 2048)
	if zp > vp*1.08 {
		t.Errorf("prefill %.1f ms vs dense %.1f ms: overhead above 8%%", zp*1e3, vp*1e3)
	}
	if zd, vd := zip.DecodeStepTime(32, 512), vllm.DecodeStepTime(32, 512); zd >= vd {
		t.Errorf("decode step %.2f ms not below dense %.2f ms", zd*1e3, vd*1e3)
	}
}

func TestMetricsConsistency(t *testing.T) {
	e := newEngine(t, "Qwen2.5-7B", "RTX4090", 1, BackendZipServ)
	m, err := e.Run(4, 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalSeconds <= 0 || m.Throughput <= 0 {
		t.Errorf("degenerate metrics %+v", m)
	}
	if d := m.PrefillSeconds + m.DecodeSeconds; d != m.TotalSeconds {
		t.Errorf("prefill+decode = %f != total %f", d, m.TotalSeconds)
	}
	want := float64(4*128) / m.TotalSeconds
	if m.Throughput != want {
		t.Errorf("throughput %.2f inconsistent with latency (%f)", m.Throughput, want)
	}
	if m.Backend != BackendZipServ || m.Model != "Qwen2.5-7B" {
		t.Errorf("identity fields wrong: %+v", m)
	}
}

func TestDefaultsApplied(t *testing.T) {
	model, _ := weights.ByName("LLaMA3.1-8B")
	e, err := New(Config{Model: model, Device: gpu.MustByName("RTX4090"), Backend: BackendZipServ})
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.NumGPUs != 1 {
		t.Errorf("NumGPUs default = %d, want 1", e.cfg.NumGPUs)
	}
	if e.cfg.Compression.Ratio == 0 || e.cfg.ReservedGiB == 0 {
		t.Error("compression/reserved defaults not applied")
	}
}
