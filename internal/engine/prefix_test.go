package engine

import (
	"sort"
	"testing"

	"zipserv/internal/gpu"
	"zipserv/internal/kvcache"
	"zipserv/internal/weights"
)

// prefixTokens builds a deterministic token stream; equal seeds agree
// on every position, so slices of one seed are content-identical
// prefixes.
func prefixTokens(n, seed int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = seed*100003 + i*131 + 7
	}
	return out
}

// sharedPrefixTrace builds n requests whose prompts share a
// prefixLen-token prefix and append a unique suffix each, arriving
// `gap` virtual seconds apart (gap 0 = one burst).
func sharedPrefixTrace(n, prefixLen, suffixLen, outputLen int, gap float64) []Request {
	prefix := prefixTokens(prefixLen, 1)
	reqs := make([]Request, n)
	for i := range reqs {
		prompt := append(append([]int(nil), prefix...), prefixTokens(suffixLen, 1000+i)...)
		reqs[i] = Request{
			ID:             i + 1,
			ArrivalSeconds: float64(i) * gap,
			PromptLen:      len(prompt),
			OutputLen:      outputLen,
			Prompt:         prompt,
		}
	}
	return reqs
}

func newPrefixTestEngine(t testing.TB) *Engine {
	t.Helper()
	model, err := weights.ByName("LLaMA3.1-8B")
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Model: model, Device: gpu.MustByName("RTX4090"), NumGPUs: 1, Backend: BackendZipServ})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// drivePrefixTrace replays an arrival-ordered trace through a Stepper
// (FIFO admission, head-of-line blocking) and returns the finished
// metrics by ID plus the stepper for counter inspection.
func drivePrefixTrace(t testing.TB, e *Engine, reqs []Request, prefixCache bool, chunk int) ([]RequestMetrics, *Stepper) {
	t.Helper()
	sp, err := NewStepper(e)
	if err != nil {
		t.Fatal(err)
	}
	sp.PackedPrefill = true
	sp.PrefillChunkTokens = chunk
	if prefixCache {
		if err := sp.EnablePrefixCache(0); err != nil {
			t.Fatal(err)
		}
	}
	return driveTrace(t, sp, reqs), sp
}

// driveTrace runs the FIFO admission loop over an arrival-ordered trace
// on an already-configured stepper.
func driveTrace(t testing.TB, sp *Stepper, reqs []Request) []RequestMetrics {
	t.Helper()
	var done []RequestMetrics
	nextIdx := 0
	for iter := 0; len(done) < len(reqs); iter++ {
		if iter > 1<<20 {
			t.Fatal("scheduler failed to make progress")
		}
		if sp.InFlight() == 0 && nextIdx < len(reqs) && reqs[nextIdx].ArrivalSeconds > sp.Clock() {
			sp.AdvanceTo(reqs[nextIdx].ArrivalSeconds)
		}
		for nextIdx < len(reqs) && reqs[nextIdx].ArrivalSeconds <= sp.Clock() {
			r := reqs[nextIdx]
			if !sp.CanAdmitRequest(r) {
				break
			}
			if err := sp.Admit(r); err != nil {
				t.Fatal(err)
			}
			nextIdx++
		}
		done = append(done, drainStep(t, sp)...)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	sort.Slice(done, func(i, j int) bool { return done[i].ID < done[j].ID })
	return done
}

func drainStep(t testing.TB, sp *Stepper) []RequestMetrics {
	t.Helper()
	sp.Prefill()
	fin, _, err := sp.DecodeStep()
	if err != nil {
		t.Fatal(err)
	}
	return fin
}

// TestPrefixCacheOutputsIdentical: enabling the prefix cache changes
// only timing, never what is produced — every request emits exactly
// its output tokens in both modes, and two cached runs are
// deterministic replicas.
func TestPrefixCacheOutputsIdentical(t *testing.T) {
	reqs := sharedPrefixTrace(12, 128, 24, 16, 0.02)
	e := newPrefixTestEngine(t)

	off, spOff := drivePrefixTrace(t, e, reqs, false, 64)
	on, spOn := drivePrefixTrace(t, e, reqs, true, 64)
	on2, _ := drivePrefixTrace(t, e, reqs, true, 64)

	if len(off) != len(reqs) || len(on) != len(reqs) {
		t.Fatalf("completed %d/%d (off) and %d/%d (on) requests", len(off), len(reqs), len(on), len(reqs))
	}
	if spOff.OutputTokens() != spOn.OutputTokens() {
		t.Fatalf("output tokens differ: %d off vs %d on", spOff.OutputTokens(), spOn.OutputTokens())
	}
	for i := range on {
		if on[i].ID != off[i].ID {
			t.Fatalf("request set differs: %d vs %d", on[i].ID, off[i].ID)
		}
		if on2[i] != on[i] {
			t.Fatalf("cached run not deterministic at request %d: %+v vs %+v", on[i].ID, on2[i], on[i])
		}
	}
	if spOn.PrefixHits() == 0 {
		t.Fatal("shared-prefix workload produced no prefix hits")
	}
}

// TestPrefixCachePrefillTokenBound: on a workload where every request
// shares a block-aligned prompt prefix and arrivals are spaced so each
// admission sees the previous prompt committed, the total prefill
// tokens computed must not exceed the unique prefix once plus each
// request's suffix — the cache converts the shared recomputation into
// reference claims.
func TestPrefixCachePrefillTokenBound(t *testing.T) {
	const (
		n         = 10
		prefixLen = 8 * kvcache.DefaultBlockTokens // block-aligned
		suffixLen = 24
		outputLen = 8
	)
	reqs := sharedPrefixTrace(n, prefixLen, suffixLen, outputLen, 5.0 /* generous spacing */)
	e := newPrefixTestEngine(t)

	_, sp := drivePrefixTrace(t, e, reqs, true, 0)
	bound := int64(prefixLen + n*suffixLen)
	if got := sp.PrefillTokens(); got > bound {
		t.Fatalf("prefill computed %d tokens, want <= %d (unique prefix + suffixes)", got, bound)
	}
	if got := sp.PrefixTokensSaved(); got != int64((n-1)*prefixLen) {
		t.Fatalf("PrefixTokensSaved = %d, want %d", got, (n-1)*prefixLen)
	}
	if got := sp.PrefixHits(); got != n-1 {
		t.Fatalf("PrefixHits = %d, want %d", got, n-1)
	}

	// The cache-off run recomputes the prefix for every request.
	_, spOff := drivePrefixTrace(t, e, reqs, false, 0)
	if got, want := spOff.PrefillTokens(), int64(n*(prefixLen+suffixLen)); got != want {
		t.Fatalf("cache-off prefill computed %d tokens, want %d", got, want)
	}
}

// TestPrefixCacheTTFTStrictlyLower: skipping shared-prefix prefill
// work must lower the TTFT median on the shared-prefix workload, not
// merely match it.
func TestPrefixCacheTTFTStrictlyLower(t *testing.T) {
	reqs := sharedPrefixTrace(11, 256, 32, 8, 2.0)
	e := newPrefixTestEngine(t)

	off, _ := drivePrefixTrace(t, e, reqs, false, 0)
	on, _ := drivePrefixTrace(t, e, reqs, true, 0)

	p50 := func(ms []RequestMetrics) float64 {
		ttfts := make([]float64, len(ms))
		for i, m := range ms {
			ttfts[i] = m.TTFT
		}
		sort.Float64s(ttfts)
		return ttfts[len(ttfts)/2]
	}
	offP50, onP50 := p50(off), p50(on)
	if !(onP50 < offP50) {
		t.Fatalf("prefix-on TTFT p50 %.6fs not strictly lower than prefix-off %.6fs", onP50, offP50)
	}
	// Every cache-hit request individually beats its uncached twin.
	for i := 1; i < len(on); i++ {
		if on[i].CachedTokens == 0 {
			t.Fatalf("request %d missed the cache on a fully shared prefix", on[i].ID)
		}
		if !(on[i].TTFT < off[i].TTFT) {
			t.Fatalf("request %d TTFT %.6fs not lower than uncached %.6fs", on[i].ID, on[i].TTFT, off[i].TTFT)
		}
	}
}

// TestPrefixCacheChunkedComposition: prefix claims compose with
// chunked prefill — the uncached suffix is chunk-budgeted, outputs are
// complete, and the allocator closes clean for budgets spanning
// single-token to monolithic.
func TestPrefixCacheChunkedComposition(t *testing.T) {
	reqs := sharedPrefixTrace(8, 64, 40, 6, 0.5)
	e := newPrefixTestEngine(t)
	for _, chunk := range []int{1, 7, 64, 0} {
		done, sp := drivePrefixTrace(t, e, reqs, true, chunk)
		if len(done) != len(reqs) {
			t.Fatalf("chunk %d: completed %d/%d", chunk, len(done), len(reqs))
		}
		if sp.PrefixHits() == 0 {
			t.Fatalf("chunk %d: no prefix hits", chunk)
		}
	}
}

// TestPrefixCacheResurrectionChargesCapacity is the regression test
// for the over-admission bug: matched blocks parked in the
// refcount-zero cached pool are counted by FreeBlocks as free
// capacity, so claiming them must be charged like a fresh allocation,
// not credited against the reservation — crediting them twice admits
// a request whose reservation the remaining physical blocks cannot
// back, and the violation then panics mid-prefill.
func TestPrefixCacheResurrectionChargesCapacity(t *testing.T) {
	const block = kvcache.DefaultBlockTokens
	e := newPrefixTestEngine(t)
	sp, err := NewStepper(e)
	if err != nil {
		t.Fatal(err)
	}
	sp.PackedPrefill = true
	if err := sp.EnablePrefixCache(0); err != nil {
		t.Fatal(err)
	}
	total := e.Plan().Blocks

	// Warm the cache: a 6-block prompt runs to completion and parks
	// its blocks in the refcount-zero cached pool.
	prompt := prefixTokens(6*block, 11)
	if err := sp.Admit(Request{ID: 1, PromptLen: len(prompt), OutputLen: 1, Prompt: prompt}); err != nil {
		t.Fatal(err)
	}
	for sp.InFlight() > 0 {
		drainStep(t, sp)
	}

	// A tokenless giant reserves all but 4 blocks (admitted, never
	// prefilled, so the reservation is outstanding).
	giant := (total - 4) * block
	if err := sp.Admit(Request{ID: 2, PromptLen: giant - 1, OutputLen: 1}); err != nil {
		t.Fatal(err)
	}

	// Footprint 10 blocks, 6 of them matching the parked prefix:
	// crediting the match against the reservation (10−6=4 ≤ 4 free)
	// would admit, but resurrecting the 6 cached blocks leaves only
	// 4−... <0 physical blocks behind the combined reservations. The
	// admission must be refused.
	suffix := append(append([]int(nil), prompt...), prefixTokens(2*block, 99)...)
	r := Request{ID: 3, PromptLen: len(suffix), OutputLen: 2 * block, Prompt: suffix}
	if sp.CanAdmitRequest(r) {
		t.Fatal("CanAdmitRequest accepted a request whose reservation the physical blocks cannot back")
	}
	if err := sp.Admit(r); err == nil {
		t.Fatal("Admit accepted a request whose reservation the physical blocks cannot back")
	}

	// Completing the giant (and the workload) must stay violation-free.
	for sp.InFlight() > 0 {
		drainStep(t, sp)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPrefixCacheLiveShareIsFree: the flip side — matched blocks still
// referenced by a live sequence consume no capacity, so the same
// tight-capacity admission succeeds when the prefix owner is alive.
func TestPrefixCacheLiveShareIsFree(t *testing.T) {
	const block = kvcache.DefaultBlockTokens
	e := newPrefixTestEngine(t)
	sp, err := NewStepper(e)
	if err != nil {
		t.Fatal(err)
	}
	sp.PackedPrefill = true
	if err := sp.EnablePrefixCache(0); err != nil {
		t.Fatal(err)
	}

	// The prefix owner stays in flight (long output), holding its 6
	// prompt blocks live while the trie advertises them.
	prompt := prefixTokens(6*block, 11)
	if err := sp.Admit(Request{ID: 1, PromptLen: len(prompt), OutputLen: 4 * block, Prompt: prompt}); err != nil {
		t.Fatal(err)
	}
	sp.Prefill() // commit the prompt blocks; owner now decoding

	// Reserve all but 4 of the remaining blocks.
	free := sp.FreeBlocks()
	if err := sp.Admit(Request{ID: 2, PromptLen: (free-4)*block - 1, OutputLen: 1}); err != nil {
		t.Fatal(err)
	}

	// Footprint 10 blocks with 6 supplied by the live owner: only the
	// 4-block suffix+output reservation is charged, and it fits.
	suffix := append(append([]int(nil), prompt...), prefixTokens(2*block, 99)...)
	r := Request{ID: 3, PromptLen: len(suffix), OutputLen: 2 * block, Prompt: suffix}
	if !sp.CanAdmitRequest(r) {
		t.Fatal("CanAdmitRequest refused a live-shared admission that fits")
	}
	if err := sp.Admit(r); err != nil {
		t.Fatal(err)
	}
	for sp.InFlight() > 0 {
		drainStep(t, sp)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPrefixCacheFullPromptCached: a request whose whole block-aligned
// prompt is cached still computes its final prompt token (the position
// that samples the first output token) and completes.
func TestPrefixCacheFullPromptCached(t *testing.T) {
	prompt := prefixTokens(4*kvcache.DefaultBlockTokens, 9)
	reqs := []Request{
		{ID: 1, ArrivalSeconds: 0, PromptLen: len(prompt), OutputLen: 4, Prompt: prompt},
		{ID: 2, ArrivalSeconds: 10, PromptLen: len(prompt), OutputLen: 4, Prompt: prompt},
	}
	e := newPrefixTestEngine(t)
	done, sp := drivePrefixTrace(t, e, reqs, true, 0)
	if len(done) != 2 {
		t.Fatalf("completed %d/2", len(done))
	}
	if want := len(prompt) - 1; done[1].CachedTokens != want {
		t.Fatalf("CachedTokens = %d, want %d (capped one short of the full prompt)", done[1].CachedTokens, want)
	}
	// Exactly one prompt token recomputed for the hit.
	if got, want := sp.PrefillTokens(), int64(len(prompt)+1); got != want {
		t.Fatalf("prefill computed %d tokens, want %d", got, want)
	}
}
