package engine

import (
	"reflect"
	"testing"
)

func TestServeBasicTrace(t *testing.T) {
	e := newEngine(t, "LLaMA3.1-8B", "RTX4090", 1, BackendZipServ)
	reqs := []Request{
		{ID: 0, ArrivalSeconds: 0, PromptLen: 64, OutputLen: 32},
		{ID: 1, ArrivalSeconds: 0.01, PromptLen: 64, OutputLen: 32},
		{ID: 2, ArrivalSeconds: 5.0, PromptLen: 128, OutputLen: 16},
	}
	st, per, err := e.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 3 || len(per) != 3 {
		t.Fatalf("completed %d/%d requests", st.Requests, len(per))
	}
	wantTokens := int64(32 + 32 + 16)
	if st.OutputTokens != wantTokens {
		t.Errorf("OutputTokens = %d, want %d", st.OutputTokens, wantTokens)
	}
	for _, m := range per {
		if m.TTFT < 0 || m.Latency <= 0 {
			t.Errorf("request %d: TTFT %.4f latency %.4f", m.ID, m.TTFT, m.Latency)
		}
		if m.Finished < m.FirstToken || m.FirstToken < m.Arrival {
			t.Errorf("request %d: time ordering violated (%+v)", m.ID, m)
		}
	}
	// Request 2 arrives after a quiet period: its TTFT should be just
	// its own prefill, far below the makespan.
	if per[2].TTFT > 1.0 {
		t.Errorf("request 2 TTFT %.3f s, want near-instant admission", per[2].TTFT)
	}
	if st.PeakConcurrency < 2 {
		t.Errorf("peak concurrency %d, want >= 2 (requests 0/1 overlap)", st.PeakConcurrency)
	}
}

func TestServeDeterministic(t *testing.T) {
	e := newEngine(t, "LLaMA3.1-8B", "RTX4090", 1, BackendZipServ)
	trace := SyntheticTrace(40, 20, 64, 48, 7)
	a, _, err := e.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := e.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same trace gave different stats:\n%+v\n%+v", a, b)
	}
}

func TestServeValidation(t *testing.T) {
	e := newEngine(t, "LLaMA3.1-8B", "RTX4090", 1, BackendZipServ)
	if _, _, err := e.Serve(nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, _, err := e.Serve([]Request{{ID: 0, PromptLen: 0, OutputLen: 4}}); err == nil {
		t.Error("zero prompt accepted")
	}
	if _, _, err := e.Serve([]Request{{ID: 0, ArrivalSeconds: -1, PromptLen: 4, OutputLen: 4}}); err == nil {
		t.Error("negative arrival accepted")
	}
	if _, _, err := e.Serve([]Request{{ID: 0, PromptLen: 10, OutputLen: 100_000_000}}); err == nil {
		t.Error("impossible request accepted")
	}
}

func TestServeQueueingUnderLoad(t *testing.T) {
	// Higher arrival rates must raise TTFT (queueing for KV capacity
	// and batch slots), while throughput saturates.
	e := newEngine(t, "LLaMA3.1-8B", "RTX4090", 1, BackendZipServ)
	slow, _, err := e.Serve(SyntheticTrace(30, 2, 128, 64, 3))
	if err != nil {
		t.Fatal(err)
	}
	fast, _, err := e.Serve(SyntheticTrace(30, 2000, 128, 64, 3))
	if err != nil {
		t.Fatal(err)
	}
	if fast.MeanTTFT <= slow.MeanTTFT {
		t.Errorf("TTFT did not grow under load: %.4f (slow) vs %.4f (fast)", slow.MeanTTFT, fast.MeanTTFT)
	}
	if fast.PeakConcurrency <= slow.PeakConcurrency {
		t.Errorf("peak concurrency did not grow under load: %d vs %d",
			slow.PeakConcurrency, fast.PeakConcurrency)
	}
}

func TestServeZipServBeatsVLLMOnTrace(t *testing.T) {
	// The Figure 16 effect under continuous batching: the compressed
	// backend finishes the same open-loop trace sooner.
	trace := SyntheticTrace(60, 50, 128, 256, 11)
	zip := newEngine(t, "LLaMA3.1-8B", "RTX4090", 1, BackendZipServ)
	vllm := newEngine(t, "LLaMA3.1-8B", "RTX4090", 1, BackendVLLM)
	zs, _, err := zip.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	vs, _, err := vllm.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	if zs.MakespanSeconds >= vs.MakespanSeconds {
		t.Errorf("ZipServ makespan %.2f s not below vLLM %.2f s", zs.MakespanSeconds, vs.MakespanSeconds)
	}
	if zs.Throughput <= vs.Throughput {
		t.Errorf("ZipServ trace throughput %.1f not above vLLM %.1f", zs.Throughput, vs.Throughput)
	}
}

func TestServeCapacityPressureConcurrency(t *testing.T) {
	// Long-context requests under a flood large enough that both
	// backends hit their KV ceiling: the compressed backend's extra
	// capacity admits more concurrent sequences.
	trace := SyntheticTrace(80, 10000, 256, 1536, 13)
	zip := newEngine(t, "LLaMA3.1-8B", "RTX4090", 1, BackendZipServ)
	vllm := newEngine(t, "LLaMA3.1-8B", "RTX4090", 1, BackendVLLM)
	zs, _, err := zip.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	vs, _, err := vllm.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	if zs.PeakConcurrency <= vs.PeakConcurrency {
		t.Errorf("ZipServ peak concurrency %d not above vLLM %d under capacity pressure",
			zs.PeakConcurrency, vs.PeakConcurrency)
	}
}

func TestSyntheticTrace(t *testing.T) {
	tr := SyntheticTrace(50, 10, 128, 64, 1)
	if len(tr) != 50 {
		t.Fatalf("trace has %d requests, want 50", len(tr))
	}
	prev := 0.0
	for i, r := range tr {
		if r.ID != i {
			t.Errorf("request %d has ID %d", i, r.ID)
		}
		if r.ArrivalSeconds < prev {
			t.Error("arrivals not monotonically non-decreasing")
		}
		prev = r.ArrivalSeconds
		if r.PromptLen < 64 || r.PromptLen > 192 {
			t.Errorf("prompt %d outside jitter band", r.PromptLen)
		}
		if r.OutputLen < 32 || r.OutputLen > 96 {
			t.Errorf("output %d outside jitter band", r.OutputLen)
		}
	}
	// Deterministic.
	tr2 := SyntheticTrace(50, 10, 128, 64, 1)
	for i := range tr {
		if !reflect.DeepEqual(tr[i], tr2[i]) {
			t.Fatal("trace generation not deterministic")
		}
	}
	// Degenerate parameters return nil.
	if SyntheticTrace(0, 10, 1, 1, 1) != nil || SyntheticTrace(5, 0, 1, 1, 1) != nil {
		t.Error("degenerate trace parameters accepted")
	}
}
