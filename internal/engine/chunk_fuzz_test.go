package engine

import (
	"math/rand"
	"testing"

	"zipserv/internal/gpu"
	"zipserv/internal/weights"
)

// FuzzChunkedPrefillInvariants drives random prompt lengths through
// random chunk budgets with a mid-run preemption and checks the
// chunk-boundary invariants: no token is lost or duplicated (every
// request's full output is emitted exactly once, preempted work is
// discounted and recomputed), and every KV block is conserved after a
// Preempt of a possibly mid-prefill sequence (the allocator closes
// clean).
func FuzzChunkedPrefillInvariants(f *testing.F) {
	// Seed corpus: monolithic, single-token chunks, odd chunk sizes
	// straddling block boundaries, and early/late preemption points.
	f.Add(int64(1), uint16(0), uint8(4), uint8(0))
	f.Add(int64(2), uint16(1), uint8(3), uint8(1))
	f.Add(int64(3), uint16(7), uint8(6), uint8(3))
	f.Add(int64(4), uint16(16), uint8(8), uint8(200))
	f.Add(int64(5), uint16(23), uint8(12), uint8(2))
	f.Add(int64(6), uint16(300), uint8(5), uint8(7))

	model, err := weights.ByName("LLaMA3.1-8B")
	if err != nil {
		f.Fatal(err)
	}
	dev := gpu.MustByName("RTX4090")

	f.Fuzz(func(t *testing.T, seed int64, chunk uint16, nReqs uint8, preemptAt uint8) {
		e, err := New(Config{Model: model, Device: dev, NumGPUs: 1, Backend: BackendZipServ})
		if err != nil {
			t.Fatal(err)
		}
		sp, err := NewStepper(e)
		if err != nil {
			t.Fatal(err)
		}
		sp.PackedPrefill = true
		sp.PrefillChunkTokens = int(chunk % 512) // 0 = monolithic

		rng := rand.New(rand.NewSource(seed))
		n := int(nReqs%12) + 1
		pending := make([]Request, n)
		var wantTokens int64
		for i := range pending {
			pending[i] = Request{
				ID:             i + 1,
				ArrivalSeconds: rng.Float64() * 0.2,
				PromptLen:      rng.Intn(300) + 1,
				OutputLen:      rng.Intn(40) + 1,
			}
			wantTokens += int64(pending[i].OutputLen)
		}

		freeStart := sp.FreeBlocks()
		finished := make(map[int]int, n)
		preemptIter := int(preemptAt % 32)
		preempted := false
		nextIdx := 0
		for iter := 0; len(finished) < n; iter++ {
			if iter > 1<<20 {
				t.Fatal("scheduler failed to make progress")
			}
			if sp.InFlight() == 0 && nextIdx < len(pending) && pending[nextIdx].ArrivalSeconds > sp.Clock() {
				sp.AdvanceTo(pending[nextIdx].ArrivalSeconds)
			}
			for nextIdx < len(pending) && pending[nextIdx].ArrivalSeconds <= sp.Clock() {
				r := pending[nextIdx]
				if !sp.CanAdmit(r.PromptLen, r.OutputLen) {
					break
				}
				if err := sp.Admit(r); err != nil {
					t.Fatal(err)
				}
				nextIdx++
			}

			// One preemption, at a fuzzed iteration: pick a random
			// in-flight id (often a mid-prefill one under small chunk
			// budgets) and requeue it at the back of the trace.
			if !preempted && iter == preemptIter && sp.InFlight() > 0 {
				id := rng.Intn(n) + 1
				if req, ok := sp.Preempt(id); ok {
					preempted = true
					req.ArrivalSeconds = sp.Clock()
					pending = append(pending, req)
					// The requeued copy re-enters via the arrival scan;
					// nothing else to adjust — its progress is gone.
				}
			}

			sp.Prefill()
			fin, _, err := sp.DecodeStep()
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range fin {
				finished[m.ID]++
				if finished[m.ID] > 1 {
					t.Fatalf("request %d finished %d times (duplicated tokens)", m.ID, finished[m.ID])
				}
			}
			if sp.InFlight() == 0 && nextIdx >= len(pending) && len(finished) < n {
				t.Fatalf("drained with %d/%d requests finished (lost tokens)", len(finished), n)
			}
		}

		if got := sp.OutputTokens(); got != wantTokens {
			t.Fatalf("emitted %d tokens, want %d (lost or duplicated work)", got, wantTokens)
		}
		if got := sp.FreeBlocks(); got != freeStart {
			t.Fatalf("KV blocks not conserved: %d free after drain, started with %d", got, freeStart)
		}
		if err := sp.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
