package engine

import (
	"fmt"
	"sync"

	"zipserv/internal/kvcache"
)

// Stepper is the iteration-granular continuous-batching state machine
// (vLLM-style scheduling, §6.5) factored out of the offline Serve loop
// so that a live scheduler can drive it one step at a time: admit
// requests against the paged KV plan, prefill newcomers, run one
// decode step over the running batch, evict finished sequences. The
// offline Serve trace replay and the live internal/serve loop are both
// thin drivers over this type.
//
// Prefill is chunkable (Sarathi-style): with a positive
// PrefillChunkTokens budget, each Prefill call mixes at most that many
// pending prompt tokens into the iteration, carrying partially
// prefilled sequences across iterations so one long prompt can never
// monopolise the loop and stall the decode batch's token cadence. With
// EnableAdaptiveChunking the budget is no longer a constant: a
// closed-loop controller re-derives it every iteration from the decode
// batch's step-time target by inverting the cost model (see
// adaptive.go).
//
// Time is virtual: the Stepper advances its clock by the engine cost
// model's step durations. Admission is conservative — a request is
// admitted only when its full prompt+output KV reservation fits — so
// no sequence can fail mid-flight. KV blocks are claimed lazily as
// prefill chunks (and then decode tokens) actually consume them; the
// reservation covers everything not yet claimed.
//
// The Stepper runs once per emitted token, so its bookkeeping is
// allocation-lean: sequence states and per-iteration scratch (chunk
// lists, metric buffers) come from sync.Pools shared across Stepper
// instances, prompt block hashes are computed once per request, and
// the admission capacity lookup is memoized per (request, trie
// generation) so CanAdmitRequest followed by Admit walks the prefix
// trie once, not twice.
//
// A Stepper is not safe for concurrent use; callers serialise
// scheduling decisions, as vLLM's engine loop does.
type Stepper struct {
	// PackedPrefill selects padding-free token-packed prefill pricing
	// (PackedPrefillTime) instead of the legacy request-level padded
	// batch prefill (PrefillTime). The live scheduler sets it; the
	// offline Serve path keeps the padded baseline.
	PackedPrefill bool

	// PrefillChunkTokens caps the prompt tokens one Prefill call may
	// process (0 = monolithic: every admitted prompt prefills in one
	// batch). Chunked prefill is always priced token-packed
	// (ChunkedPrefillTime), regardless of PackedPrefill: a chunk budget
	// only makes sense for a varlen kernel. Ignored while adaptive
	// chunking is enabled.
	PrefillChunkTokens int

	// DecodeFree declares that an empty decode batch is this stepper's
	// steady state — a dedicated prefill-pool replica — rather than
	// transient idleness. The adaptive chunk controller then solves its
	// budget against the full TargetStepTime when no sequence is
	// decoding, instead of growing toward the ceiling; see adaptive.go.
	DecodeFree bool

	// TimeDilation, when set, multiplies every iteration's virtual
	// elapsed time by its return value, evaluated at the iteration's
	// start clock. The fault-injection layer (serve fault plans,
	// docs/robustness.md) uses it to script step-time slowdowns as a
	// pure function of virtual time, so slow-replica chaos runs replay
	// bit-identically. Must return a finite value >= some positive
	// epsilon; 1 means full speed.
	TimeDilation func(now float64) float64

	e   *Engine
	mgr *kvcache.Manager

	prefixCache     bool             // EnablePrefixCache sets it
	compressedCache bool             // EnableCompressedCache sets it
	cacheAdaptive   bool             // EnableAdaptivePrefixCache sets it
	chunkCtl        *chunkController // nil = static chunk budget

	// pendingDecompress counts frozen prefix blocks restored by
	// admissions since the last Prefill call; the next prefill iteration
	// charges their decompress time so TTFT pays the compressed cache's
	// real price.
	pendingDecompress int

	memo lookupMemo // admission lookup memo (see lookupCost)

	// Admission-epoch signals for the cache-sizing controller: reset by
	// AdaptEpoch once per scheduler iteration.
	epochAdmissions int
	epochHits       int
	epochBlocked    bool

	now      float64
	admitted []*sequence // admitted, prefilling (possibly mid-chunk)
	active   []*sequence // prefilled, decoding
	reserved int         // blocks reserved beyond those allocated

	outputTokens int64
	decodeSteps  int64
	peak         int

	prefillIters  int64
	prefillTokens int64
	lastDecodeEnd float64 // end of the previous decode step; -1 when the batch has emptied
	maxDecodeGap  float64

	lastPrefillElapsed float64 // virtual cost of the preceding Prefill call
	stepEWMA           float64 // smoothed combined prefill+decode iteration time

	sc *stepScratch
}

type sequence struct {
	req       Request
	hp        kvcache.HashedPrompt // precomputed block keys (prefix mode)
	m         RequestMetrics
	remaining int // output tokens still to produce
	ctx       int // context length once prefilled (prompt, then +1 per decode)
	prefilled int // prompt tokens prefilled so far (cached prefix + chunk progress)
	reserved  int // blocks reserved beyond those allocated
}

// lookupMemo caches the most recent prefix-cache admission lookup. The
// admission path probes the same request twice back to back
// (CanAdmitRequest, then Admit); as long as the allocator's trie
// generation is unchanged the memoized match is exact, so the second
// trie walk — and every per-block content hash behind it — is skipped.
// The precomputed prompt hash is keyed by request id alone: block keys
// depend only on token content, which is immutable per request.
type lookupMemo struct {
	valid              bool
	id                 int
	gen                int64
	matched, resurrect int
	hp                 kvcache.HashedPrompt
}

// seqPool recycles sequence bookkeeping across requests and Stepper
// instances: a steady-state serving loop admits and retires sequences
// without allocating.
var seqPool = sync.Pool{New: func() any { return new(sequence) }}

func putSeq(q *sequence) {
	*q = sequence{}
	seqPool.Put(q)
}

// stepScratch holds one Stepper's per-iteration buffers: the carved
// chunk list, the adaptive controller's probe carves, and the metric
// slices Prefill and DecodeStep return. Pooled so per-trace Steppers
// (benchmarks, compare runs) reuse each other's backing arrays.
type stepScratch struct {
	chunks []PrefillChunk
	probe  []PrefillChunk
	out    []RequestMetrics
	fin    []RequestMetrics
}

var scratchPool = sync.Pool{New: func() any { return new(stepScratch) }}

func (s *Stepper) scratch() *stepScratch {
	if s.sc == nil {
		s.sc = scratchPool.Get().(*stepScratch)
	}
	return s.sc
}

// NewStepper builds a stepper over the engine's KV-cache plan with an
// empty batch and the virtual clock at zero.
func NewStepper(e *Engine) (*Stepper, error) {
	mgr, err := kvcache.NewManager(kvcache.Config{
		BlockTokens: kvcache.DefaultBlockTokens,
		TotalBlocks: e.plan.Blocks,
	})
	if err != nil {
		return nil, err
	}
	return &Stepper{e: e, mgr: mgr, lastDecodeEnd: -1}, nil
}

// Clock returns the stepper's virtual time in seconds.
func (s *Stepper) Clock() float64 { return s.now }

// AdvanceTo moves the virtual clock forward to t (idle fast-forward to
// the next arrival). Moving backwards is a no-op.
func (s *Stepper) AdvanceTo(t float64) {
	if t > s.now {
		s.now = t
	}
}

// ActiveCount returns the number of sequences in the decoding batch.
func (s *Stepper) ActiveCount() int { return len(s.active) }

// AdmittedCount returns the number of admitted sequences awaiting or
// mid-way through prefill.
func (s *Stepper) AdmittedCount() int { return len(s.admitted) }

// InFlight returns all sequences holding KV capacity (admitted or
// decoding).
func (s *Stepper) InFlight() int { return len(s.admitted) + len(s.active) }

// OutputTokens returns the total tokens emitted so far.
func (s *Stepper) OutputTokens() int64 { return s.outputTokens }

// DecodeSteps returns the number of decode iterations run so far.
func (s *Stepper) DecodeSteps() int64 { return s.decodeSteps }

// PeakConcurrency returns the largest decoding batch seen so far.
func (s *Stepper) PeakConcurrency() int { return s.peak }

// PrefillIterations returns the number of Prefill calls that processed
// at least one prompt chunk.
func (s *Stepper) PrefillIterations() int64 { return s.prefillIters }

// PrefillTokens returns the total prompt tokens prefilled so far
// (across all chunks; first output tokens are not counted).
func (s *Stepper) PrefillTokens() int64 { return s.prefillTokens }

// MaxDecodeGap returns the longest virtual-time gap between two
// consecutive decode steps observed while the decode batch stayed
// non-empty — the worst token-cadence stall a decoding sequence has
// seen, typically inflated by a long prefill wedged between steps.
// Gaps across an empty batch (idle stretches) do not count.
func (s *Stepper) MaxDecodeGap() float64 { return s.maxDecodeGap }

// StepTimeEWMA returns the smoothed combined prefill+decode time of
// recent scheduler iterations (prefill-only iterations against an
// empty decode batch count as their own samples) — the signal the
// adaptive chunk controller is holding under its target. 0 before the
// first iteration completes.
func (s *Stepper) StepTimeEWMA() float64 { return s.stepEWMA }

// observeStepTime folds one completed iteration into the EWMA, seeding
// it with the first sample.
func (s *Stepper) observeStepTime(iter float64) {
	if s.stepEWMA == 0 {
		s.stepEWMA = iter
		return
	}
	s.stepEWMA = stepEWMAAlpha*iter + (1-stepEWMAAlpha)*s.stepEWMA
}

// EnablePrefixCache turns on cross-request KV prefix reuse for
// requests that carry prompt tokens: admission claims content-matched
// prefix blocks by bumping refcounts instead of allocating, and
// prefill starts at the first uncached position. capBlocks bounds the
// refcount-zero blocks kept parked for reuse (0 = unbounded). Must be
// called before the first admission.
func (s *Stepper) EnablePrefixCache(capBlocks int) error {
	if err := s.mgr.EnablePrefixCache(capBlocks); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	s.prefixCache = true
	return nil
}

// PrefixCacheEnabled reports whether cross-request prefix reuse is on.
func (s *Stepper) PrefixCacheEnabled() bool { return s.prefixCache }

// EnableCompressedCache stores cold (refcount-zero) prefix-cache
// blocks in TCA-TBE compressed form instead of parking them as
// physical blocks: the physical block returns to the free list
// immediately and a later claim of the content decompresses into a
// fresh block, priced into that prefill iteration by KVDecompressTime.
// Requires the prefix cache.
func (s *Stepper) EnableCompressedCache() error {
	if !s.prefixCache {
		return fmt.Errorf("engine: compressed cache needs the prefix cache enabled")
	}
	if err := s.mgr.EnableCompressedCache(); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	s.compressedCache = true
	return nil
}

// CompressedCacheEnabled reports whether cold prefix blocks are stored
// compressed.
func (s *Stepper) CompressedCacheEnabled() bool { return s.compressedCache }

// CompressedKVBlocks returns the cold blocks currently held in
// compressed form (advertised by the trie, holding no physical block).
func (s *Stepper) CompressedKVBlocks() int { return s.mgr.CompressedBlocks() }

// CompressedKVBytes returns the compressed footprint of those blocks.
func (s *Stepper) CompressedKVBytes() int64 { return s.mgr.CompressedKVBytes() }

// KVCompressionRatio returns the measured aggregate compression ratio
// of the cold blocks (1.0 while none are frozen; 0 when the compressed
// cache is off).
func (s *Stepper) KVCompressionRatio() float64 { return s.mgr.CompressionRatio() }

// DecompressClaims returns the lifetime count of frozen blocks
// restored into physical blocks by prefix claims.
func (s *Stepper) DecompressClaims() int64 { return s.mgr.DecompressClaims() }

// SetCodecFault installs a KV-codec fault predicate on the cache
// manager: while it returns true, cold prefix blocks degrade to plain
// physical parking instead of freezing compressed (the graceful path —
// capacity is lost, correctness is not). The fault-injection layer
// drives it from a fault plan evaluated on virtual time; each degraded
// freeze counts into CodecFallbacks.
func (s *Stepper) SetCodecFault(fn func() bool) { s.mgr.SetCodecFault(fn) }

// CodecFallbacks returns the lifetime count of cold-block freezes that
// degraded to plain parking because the KV codec failed (injected or
// real).
func (s *Stepper) CodecFallbacks() int64 { return s.mgr.CodecFallbacks() }

// EnableAdaptivePrefixCache replaces the static cached-pool bound with
// the closed-loop sizing controller in internal/kvcache: the pool
// shrinks (evicting leaf-first) while admissions queue on KV capacity
// and grows while prefix hits keep arriving. minBlocks/maxBlocks bound
// the pool (0 = defaults: 1 and the whole plan). The serve loop drives
// the controller by calling AdaptEpoch once per iteration.
func (s *Stepper) EnableAdaptivePrefixCache(minBlocks, maxBlocks int) error {
	if !s.prefixCache {
		return fmt.Errorf("engine: adaptive cache sizing needs the prefix cache enabled")
	}
	if err := s.mgr.EnableAdaptivePrefixCache(minBlocks, maxBlocks); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	s.cacheAdaptive = true
	return nil
}

// AdaptivePrefixCache reports whether closed-loop pool sizing is on.
func (s *Stepper) AdaptivePrefixCache() bool { return s.cacheAdaptive }

// AdaptEpoch closes one admission epoch: the cache-sizing controller
// consumes the epoch's admission outcomes (prompt-carrying admissions,
// prefix hits, whether any admission queued on capacity) and resizes
// the cached pool. The live scheduler calls it once per loop
// iteration; a no-op unless EnableAdaptivePrefixCache is on.
func (s *Stepper) AdaptEpoch() {
	if s.cacheAdaptive {
		s.mgr.AdaptCacheEpoch(s.epochAdmissions, s.epochHits, s.epochBlocked)
	}
	s.epochAdmissions, s.epochHits, s.epochBlocked = 0, 0, false
}

// CachePoolTarget returns the cached-pool bound currently in force
// (static configuration or the sizing controller's latest target;
// 0 = unbounded).
func (s *Stepper) CachePoolTarget() int { return s.mgr.CachePoolTarget() }

// CacheHitRateEWMA returns the sizing controller's smoothed admission
// hit rate (0 when adaptive sizing is off).
func (s *Stepper) CacheHitRateEWMA() float64 { return s.mgr.CacheHitRateEWMA() }

// CachePressureEWMA returns the sizing controller's smoothed
// capacity-pressure signal (0 when adaptive sizing is off).
func (s *Stepper) CachePressureEWMA() float64 { return s.mgr.CachePressureEWMA() }

// PrefixHits returns the number of admissions that reused at least one
// cached prefix block.
func (s *Stepper) PrefixHits() int64 { return s.mgr.PrefixHits() }

// PrefixSummary returns the memoized digest of the replica's prefix
// trie for affinity routing (nil when prefix caching is off); see
// kvcache.PrefixSummary.
func (s *Stepper) PrefixSummary() *kvcache.PrefixSummary { return s.mgr.PrefixSummary() }

// PrefixTokensSaved returns the total prompt tokens served from the
// prefix cache instead of being re-prefilled.
func (s *Stepper) PrefixTokensSaved() int64 { return s.mgr.PrefixTokensSaved() }

// CachedKVBlocks returns the refcount-zero blocks parked in the prefix
// cache (free capacity that is also warm prefix content).
func (s *Stepper) CachedKVBlocks() int { return s.mgr.CachedBlocks() }

// SharedKVBlocks returns the physical blocks referenced by more than
// one in-flight sequence — capacity deduplication is saving right now.
// A replica router should score load by uniquely-owned blocks, which
// FreeBlocks already reflects: shared blocks are counted once.
func (s *Stepper) SharedKVBlocks() int { return s.mgr.SharedBlocks() }

// reservationFor returns the blocks to reserve for a request: its full
// prompt+output footprint minus the whole blocks a cached prefix match
// supplies by reference. A partially consumed tail match is not
// discounted — its copy-on-write replacement costs one fresh block, so
// only ⌊matched/block⌋ blocks are truly free capacity.
func (s *Stepper) reservationFor(r Request, matched int) int {
	return kvcache.BlocksFor(r.PromptLen+r.OutputLen, kvcache.DefaultBlockTokens) -
		matched/kvcache.DefaultBlockTokens
}

// Lookup returns the cached-prefix token match for a request (0 when
// caching is off or the request carries no tokens).
func (s *Stepper) Lookup(r Request) int {
	matched, _ := s.lookupCost(r)
	return matched
}

// lookupCost returns the cached-prefix match plus how many matched
// blocks would be resurrected from the refcount-zero cached pool —
// blocks FreeBlocks counts as free capacity, so admission must charge
// them like fresh allocations (crediting them twice would over-admit
// and leave the reservation physically unbacked). The result is
// memoized per (request id, allocator generation): the usual
// CanAdmitRequest → Admit pair walks the trie once. Request ids must
// be unique among concurrently probed requests, which the schedulers
// guarantee.
func (s *Stepper) lookupCost(r Request) (matched, resurrect int) {
	if !s.prefixCache || len(r.Prompt) == 0 {
		return 0, 0
	}
	gen := s.mgr.Generation()
	if s.memo.valid && s.memo.id == r.ID {
		if s.memo.gen == gen {
			return s.memo.matched, s.memo.resurrect
		}
	} else {
		// Block content keys depend only on the tokens: hash them once
		// per request, then every re-probe under a new generation
		// re-walks the trie without hashing.
		s.memo = lookupMemo{valid: true, id: r.ID, hp: s.mgr.HashPrompt(r.Prompt)}
	}
	s.memo.gen = gen
	s.memo.matched, s.memo.resurrect = s.mgr.LookupCostHashed(s.memo.hp)
	return s.memo.matched, s.memo.resurrect
}

// fits reports whether a request with the given prefix match can be
// granted capacity right now: either its full uncredited footprint
// fits (sharing can then only help), or the uncached reservation plus
// the cached-pool resurrections fit. The resurrect charge is what
// keeps every outstanding reservation backed by physical blocks.
func (s *Stepper) fits(r Request, matched, resurrect int) bool {
	free := s.mgr.FreeBlocks() - s.reserved
	if kvcache.BlocksFor(r.PromptLen+r.OutputLen, kvcache.DefaultBlockTokens) <= free {
		return true
	}
	return s.reservationFor(r, matched)+resurrect <= free
}

// CanAdmit reports whether a prompt+output reservation of the given
// lengths fits in the KV blocks that are currently free and
// unreserved. It assumes no prefix reuse; CanAdmitRequest also credits
// a request's cached-prefix match.
func (s *Stepper) CanAdmit(promptLen, outputLen int) bool {
	need := kvcache.BlocksFor(promptLen+outputLen, kvcache.DefaultBlockTokens)
	return need <= s.mgr.FreeBlocks()-s.reserved
}

// CanAdmitRequest reports whether the request fits in the free and
// unreserved KV blocks, after crediting the prefix-cache blocks its
// prompt tokens already match (matches resurrected from the cached
// pool are charged, not credited — they consume free capacity). The
// trie walk runs only when the full uncredited footprint does not
// already fit, and its result is memoized for the Admit that follows.
// A false result is recorded as capacity pressure for the cache-sizing
// controller's current admission epoch.
func (s *Stepper) CanAdmitRequest(r Request) bool {
	if s.CanAdmit(r.PromptLen, r.OutputLen) {
		return true
	}
	matched, resurrect := s.lookupCost(r)
	if s.fits(r, matched, resurrect) {
		return true
	}
	s.epochBlocked = true
	return false
}

// CachedTokensOf returns how many prompt tokens an in-flight sequence
// was served from the prefix cache (0 if the id is unknown). The
// scheduler annotates its admitted event with this instead of
// re-walking the trie; the sequence just admitted is at the back of
// the prefill queue, so the reverse scan finds it first.
func (s *Stepper) CachedTokensOf(id int) int {
	for i := len(s.admitted) - 1; i >= 0; i-- {
		if s.admitted[i].req.ID == id {
			return s.admitted[i].m.CachedTokens
		}
	}
	for _, q := range s.active {
		if q.req.ID == id {
			return q.m.CachedTokens
		}
	}
	return 0
}

// Admit grants the request KV capacity: every block of its full
// prompt+output footprint is either reserved up front or claimed from
// the prefix cache by reference, so the sequence can never fail
// mid-flight; the reserved blocks are claimed lazily as prefill chunks
// and decode tokens consume them. With a prefix-cache match, prefill
// starts at the first uncached position. The request joins the prefill
// queue; its Admitted timestamp is the current virtual clock.
func (s *Stepper) Admit(r Request) error {
	if r.PromptLen <= 0 || r.OutputLen <= 0 {
		return fmt.Errorf("engine: request %d invalid (%+v)", r.ID, r)
	}
	if len(r.Prompt) > 0 && len(r.Prompt) != r.PromptLen {
		return fmt.Errorf("engine: request %d carries %d prompt tokens but PromptLen %d",
			r.ID, len(r.Prompt), r.PromptLen)
	}
	matched, resurrect := s.lookupCost(r)
	if !s.fits(r, matched, resurrect) {
		return fmt.Errorf("engine: request %d (%d tokens) does not fit in free KV capacity",
			r.ID, r.PromptLen+r.OutputLen)
	}
	res := s.reservationFor(r, matched)
	var hp kvcache.HashedPrompt
	if s.prefixCache && len(r.Prompt) > 0 {
		hp = s.memo.hp // lookupCost populated it for this request
		s.epochAdmissions++
	}
	if matched > 0 {
		dc := s.mgr.DecompressClaims()
		claimed, err := s.mgr.ClaimPrefixHashed(r.ID, hp)
		if err != nil {
			return fmt.Errorf("engine: request %d prefix claim: %w", r.ID, err)
		}
		matched = claimed // the walk is deterministic; claimed == matched
		s.epochHits++
		// Frozen blocks the claim thawed owe their decompress time; the
		// next prefill iteration pays it.
		s.pendingDecompress += int(s.mgr.DecompressClaims() - dc)
	}
	s.reserved += res
	q := seqPool.Get().(*sequence)
	*q = sequence{
		req:       r,
		hp:        hp,
		m:         RequestMetrics{ID: r.ID, Arrival: r.ArrivalSeconds, Admitted: s.now, CachedTokens: matched},
		remaining: r.OutputLen,
		ctx:       r.PromptLen,
		prefilled: matched,
		reserved:  res,
	}
	s.admitted = append(s.admitted, q)
	return nil
}

// FreeBlocks returns the KV blocks currently free and unreserved — the
// admission headroom a scheduling policy or replica router sees.
// Clamped at zero: a fast-path admission of an exactly fitting, fully
// cached prompt can leave the reservation one block ahead of the
// reclaimable pool until its first copy-on-write release returns the
// shared tail (no physical shortfall — the COW pop and release happen
// in the same Extend), and a negative gauge would skew router ranking.
func (s *Stepper) FreeBlocks() int {
	if free := s.mgr.FreeBlocks() - s.reserved; free > 0 {
		return free
	}
	return 0
}

// Preempt evicts the in-flight sequence with the given id, releasing
// every KV block it holds (allocated and reserved) and discounting the
// tokens it already emitted, so that the capacity can fund a more
// urgent admission. A partially prefilled victim's chunk progress is
// discarded with its blocks. It returns the sequence's original
// Request, which the caller requeues: on re-admission the sequence
// restarts from scratch (prefill and all output tokens are
// recomputed), exactly the preempt-and-recompute discipline vLLM
// applies under memory pressure. The second result is false when no
// in-flight sequence has that id.
func (s *Stepper) Preempt(id int) (Request, bool) {
	for i, q := range s.admitted {
		if q.req.ID == id {
			s.admitted = append(s.admitted[:i], s.admitted[i+1:]...)
			return s.evict(q), true
		}
	}
	for i, q := range s.active {
		if q.req.ID == id {
			s.active = append(s.active[:i], s.active[i+1:]...)
			return s.evict(q), true
		}
	}
	return Request{}, false
}

// evict releases a preempted sequence's capacity and token accounting,
// returning its bookkeeping to the pool.
func (s *Stepper) evict(q *sequence) Request {
	s.reserved -= q.reserved
	if q.prefilled > 0 {
		if err := s.mgr.Free(q.req.ID); err != nil {
			// Unreachable: a sequence with chunk progress owns an allocation.
			panic(fmt.Sprintf("engine: preempt freed unallocated request %d: %v", q.req.ID, err))
		}
	}
	// OutputTokens counts useful tokens only; a preempted sequence's
	// partial output is recomputed after re-admission.
	s.outputTokens -= int64(q.req.OutputLen - q.remaining)
	req := q.req
	putSeq(q)
	return req
}

// carve slices this iteration's prefill chunks off the admitted queue
// in admission order, appending to dst: chunk i belongs to
// s.admitted[i]. A non-positive budget carves every pending prompt
// whole (monolithic prefill).
func (s *Stepper) carve(budget int, dst []PrefillChunk) []PrefillChunk {
	chunked := budget > 0
	for _, q := range s.admitted {
		if chunked && budget <= 0 {
			break
		}
		c := q.req.PromptLen - q.prefilled
		if chunked && c > budget {
			c = budget
		}
		dst = append(dst, PrefillChunk{
			Start:  q.prefilled,
			Tokens: c,
			Final:  q.prefilled+c == q.req.PromptLen,
		})
		if chunked {
			budget -= c
		}
	}
	return dst
}

// Prefill runs one prefill iteration over the admitted queue in
// admission order. With a chunk budget (static, or re-derived this
// iteration by the adaptive controller) it processes at most that many
// prompt tokens — finishing the partially prefilled head first — and
// leaves the rest for later iterations; without one it prefills every
// admitted prompt in a single batch. Sequences whose prompt completes
// this iteration emit their first token and move to the decoding
// batch. It returns the metrics of those completing sequences (TTFT
// now known) and the elapsed virtual seconds (0, nil when nothing is
// waiting). The returned slice is reused by the next Prefill call.
func (s *Stepper) Prefill() ([]RequestMetrics, float64) {
	if len(s.admitted) == 0 {
		return nil, 0
	}
	// A pending prefill elapsed with the decode batch empty means the
	// previous Prefill call never got a decode step paired with it:
	// that was a whole (prefill-only) scheduler iteration of its own.
	// Flush it into the step-time EWMA instead of letting a long
	// chunked warm-up accumulate into the next decode's sample.
	if s.lastPrefillElapsed > 0 && len(s.active) == 0 {
		s.observeStepTime(s.lastPrefillElapsed)
		s.lastPrefillElapsed = 0
	}
	budget := s.PrefillChunkTokens
	if s.chunkCtl != nil {
		budget = s.adaptChunkBudget()
	}
	chunked := budget > 0

	// Carve this iteration's chunks in admission order.
	sc := s.scratch()
	sc.chunks = s.carve(budget, sc.chunks[:0])
	chunks := sc.chunks

	// Claim the chunk tokens' KV blocks out of each sequence's
	// reservation. The conservative admission reservation guarantees
	// the physical blocks are there. Consumption is measured by the
	// allocator's pop counter, which — unlike block-table growth — also
	// charges the copy-on-write replacement of a shared tail block.
	for i := range chunks {
		q := s.admitted[i]
		pops := s.mgr.Pops()
		var err error
		if q.prefilled == 0 {
			err = s.mgr.Allocate(q.req.ID, chunks[i].Tokens)
		} else {
			err = s.mgr.Extend(q.req.ID, chunks[i].Tokens)
		}
		if err != nil {
			// Unreachable: the chunk claims within the reservation.
			panic(fmt.Sprintf("engine: reservation violated prefilling request %d: %v", q.req.ID, err))
		}
		q.prefilled += chunks[i].Tokens
		claimed := int(s.mgr.Pops() - pops)
		q.reserved -= claimed
		s.reserved -= claimed
		if q.reserved < 0 {
			panic(fmt.Sprintf("engine: request %d claimed past its reservation", q.req.ID))
		}
		s.prefillTokens += int64(chunks[i].Tokens)
		if s.prefixCache && len(q.req.Prompt) > 0 {
			// Advertise the now-complete full prompt blocks so later
			// requests sharing this prefix reuse them mid-prefill.
			if err := s.mgr.CommitPrefixHashed(q.req.ID, q.hp, q.prefilled); err != nil {
				panic(fmt.Sprintf("engine: prefix commit for request %d: %v", q.req.ID, err))
			}
		}
	}

	var elapsed float64
	// The prefix cache forces token-packed pricing like chunking does:
	// a padded request-level batch cannot start mid-prompt, and pricing
	// a cached prefix's tokens as computed would silently erase the
	// TTFT win the cache exists for.
	if chunked || s.PackedPrefill || s.prefixCache {
		elapsed = s.e.ChunkedPrefillTime(chunks)
	} else {
		maxPrompt := 0
		for i := range chunks {
			if p := s.admitted[i].req.PromptLen; p > maxPrompt {
				maxPrompt = p
			}
		}
		elapsed = s.e.PrefillTime(len(chunks), maxPrompt)
	}
	if s.pendingDecompress > 0 {
		// Claims since the last prefill thawed frozen prefix blocks;
		// their expansion runs ahead of this iteration's compute, so the
		// iteration — and every TTFT it sets — pays for it.
		elapsed += s.e.KVDecompressTime(s.pendingDecompress)
		s.pendingDecompress = 0
	}
	if s.TimeDilation != nil {
		elapsed *= s.TimeDilation(s.now)
	}
	s.now += elapsed
	s.prefillIters++
	s.lastPrefillElapsed += elapsed

	// Completing sequences emit their first token and start decoding;
	// partially prefilled ones keep their queue position, so the head
	// finishes before the budget feeds the next prompt.
	out := sc.out[:0]
	keep := s.admitted[:0]
	for _, q := range s.admitted {
		if q.prefilled < q.req.PromptLen {
			keep = append(keep, q)
			continue
		}
		q.m.FirstToken = s.now
		q.m.TTFT = s.now - q.m.Arrival
		q.remaining-- // the final prefill chunk emits the first token
		s.outputTokens++
		s.active = append(s.active, q)
		out = append(out, q.m)
	}
	s.admitted = keep
	sc.out = out
	if len(s.active) > s.peak {
		s.peak = len(s.active)
	}
	return out, elapsed
}

// DecodeStep runs one decode iteration across the whole running batch:
// the clock advances by the batch step cost, every live sequence
// appends one token (claiming KV blocks at block boundaries), and
// finished sequences release their capacity immediately. It returns
// the metrics of sequences that finished this step and the elapsed
// virtual seconds. The returned slice is reused by the next DecodeStep
// call.
func (s *Stepper) DecodeStep() ([]RequestMetrics, float64, error) {
	if len(s.active) == 0 {
		return nil, 0, nil
	}
	b := len(s.active)
	sumCtx := 0
	for _, q := range s.active {
		sumCtx += q.ctx
	}
	elapsed := s.e.BatchDecodeStepTime(b, sumCtx)
	if s.TimeDilation != nil {
		elapsed *= s.TimeDilation(s.now)
	}
	s.now += elapsed
	s.decodeSteps++
	if s.lastDecodeEnd >= 0 {
		if gap := s.now - s.lastDecodeEnd; gap > s.maxDecodeGap {
			s.maxDecodeGap = gap
		}
	}
	s.lastDecodeEnd = s.now

	// One scheduler iteration = the prefill chunk (if any) plus this
	// decode step; smooth it for the stats surface.
	s.observeStepTime(s.lastPrefillElapsed + elapsed)
	s.lastPrefillElapsed = 0

	sc := s.scratch()
	finished := sc.fin[:0]
	next := s.active[:0]
	for _, q := range s.active {
		if q.remaining > 0 {
			pops := s.mgr.Pops()
			if err := s.mgr.AppendToken(q.req.ID); err != nil {
				return nil, elapsed, fmt.Errorf("engine: reservation violated for request %d: %w", q.req.ID, err)
			}
			// Consume reservation as real blocks are claimed (the pop
			// counter also charges copy-on-write block replacements).
			// Claiming past the reservation is an accounting invariant
			// violation and must fail loudly, as the prefill path does.
			claimed := int(s.mgr.Pops() - pops)
			q.reserved -= claimed
			s.reserved -= claimed
			if q.reserved < 0 {
				return nil, elapsed, fmt.Errorf("engine: request %d claimed past its reservation", q.req.ID)
			}
			q.ctx++
			q.remaining--
			s.outputTokens++
		}
		if q.remaining == 0 {
			q.m.Finished = s.now
			q.m.Latency = s.now - q.m.Arrival
			if q.req.OutputLen > 1 {
				q.m.TPOT = (q.m.Finished - q.m.FirstToken) / float64(q.req.OutputLen-1)
			}
			finished = append(finished, q.m)
			s.reserved -= q.reserved
			if err := s.mgr.Free(q.req.ID); err != nil {
				return nil, elapsed, err
			}
			putSeq(q)
		} else {
			next = append(next, q)
		}
	}
	s.active = next
	sc.fin = finished
	if len(s.active) == 0 {
		// The batch has drained: a later gap to a fresh batch's first
		// step is idle time, not a cadence stall.
		s.lastDecodeEnd = -1
	}
	return finished, elapsed, nil
}

// Close verifies the allocator after a drained run: no block may be
// leaked or double-owned, and the per-iteration scratch returns to the
// shared pool (metric slices previously returned by Prefill and
// DecodeStep are invalid afterwards). It must only be called once
// every admitted sequence has finished.
func (s *Stepper) Close() error {
	if s.sc != nil {
		s.sc.chunks = s.sc.chunks[:0]
		s.sc.probe = s.sc.probe[:0]
		s.sc.out = s.sc.out[:0]
		s.sc.fin = s.sc.fin[:0]
		scratchPool.Put(s.sc)
		s.sc = nil
	}
	if err := s.mgr.CheckInvariants(); err != nil {
		return fmt.Errorf("engine: allocator corrupted: %w", err)
	}
	if s.InFlight() != 0 {
		return fmt.Errorf("engine: %d sequences still in flight", s.InFlight())
	}
	if s.mgr.UsedBlocks() != 0 || s.reserved != 0 {
		return fmt.Errorf("engine: %d blocks leaked, %d reservations leaked", s.mgr.UsedBlocks(), s.reserved)
	}
	return nil
}
