package engine

import (
	"math"
	"strings"
	"testing"

	"zipserv/internal/kvcache"
)

// driveCompressedTrace replays a trace with the prefix cache plus
// compressed cold-block storage enabled.
func driveCompressedTrace(t testing.TB, e *Engine, reqs []Request, chunk int) ([]RequestMetrics, *Stepper) {
	t.Helper()
	sp, err := NewStepper(e)
	if err != nil {
		t.Fatal(err)
	}
	sp.PackedPrefill = true
	sp.PrefillChunkTokens = chunk
	if err := sp.EnablePrefixCache(0); err != nil {
		t.Fatal(err)
	}
	if err := sp.EnableCompressedCache(); err != nil {
		t.Fatal(err)
	}
	return driveTrace(t, sp, reqs), sp
}

func TestStepperCompressedCacheValidation(t *testing.T) {
	e := newPrefixTestEngine(t)
	sp, err := NewStepper(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.EnableCompressedCache(); err == nil || !strings.Contains(err.Error(), "prefix") {
		t.Fatalf("EnableCompressedCache without prefix cache = %v, want prefix-cache error", err)
	}
	if sp.CompressedCacheEnabled() {
		t.Fatal("failed enable left the compressed cache on")
	}
	if err := sp.EnablePrefixCache(0); err != nil {
		t.Fatal(err)
	}
	if err := sp.EnableCompressedCache(); err != nil {
		t.Fatal(err)
	}
	if !sp.CompressedCacheEnabled() {
		t.Fatal("CompressedCacheEnabled false after enable")
	}
	if err := sp.EnableCompressedCache(); err == nil {
		t.Fatal("double enable accepted")
	}
}

// TestCompressedCacheOutputsIdentical: compressing cold blocks changes
// only timing, never what is produced — the codec is lossless and the
// trie advertises the same content either way. Every request emits
// exactly its output tokens in both modes, the hit stream is identical,
// and the compressed run actually exercised the freeze/thaw path.
func TestCompressedCacheOutputsIdentical(t *testing.T) {
	// Generous spacing so each request completes (and its blocks go
	// cold) before the next arrives: every claim after the first is a
	// thaw in compressed mode.
	reqs := sharedPrefixTrace(8, 128, 24, 16, 5.0)
	e := newPrefixTestEngine(t)

	plain, spPlain := drivePrefixTrace(t, e, reqs, true, 64)
	comp, spComp := driveCompressedTrace(t, e, reqs, 64)
	comp2, _ := driveCompressedTrace(t, e, reqs, 64)

	if len(plain) != len(reqs) || len(comp) != len(reqs) {
		t.Fatalf("completed %d/%d (plain) and %d/%d (compressed)", len(plain), len(reqs), len(comp), len(reqs))
	}
	if spPlain.OutputTokens() != spComp.OutputTokens() {
		t.Fatalf("output tokens differ: %d plain vs %d compressed", spPlain.OutputTokens(), spComp.OutputTokens())
	}
	if spPlain.PrefillTokens() != spComp.PrefillTokens() {
		t.Fatalf("prefill tokens differ: %d plain vs %d compressed — frozen blocks mis-advertised", spPlain.PrefillTokens(), spComp.PrefillTokens())
	}
	if spPlain.PrefixHits() != spComp.PrefixHits() || spComp.PrefixHits() == 0 {
		t.Fatalf("prefix hits differ: %d plain vs %d compressed", spPlain.PrefixHits(), spComp.PrefixHits())
	}
	for i := range comp {
		if comp[i].ID != plain[i].ID {
			t.Fatalf("request set differs: %d vs %d", comp[i].ID, plain[i].ID)
		}
		if comp2[i] != comp[i] {
			t.Fatalf("compressed run not deterministic at request %d: %+v vs %+v", comp[i].ID, comp2[i], comp[i])
		}
	}
	if spComp.DecompressClaims() == 0 {
		t.Fatal("compressed run never thawed a block — the cold path was not exercised")
	}
	if spPlain.DecompressClaims() != 0 {
		t.Fatalf("plain prefix run reports %d decompress claims", spPlain.DecompressClaims())
	}
}

// TestDecompressPricedIntoTTFT pins the cost model to the mechanism:
// with arrivals spaced so every cached claim is a thaw, a request's
// TTFT in compressed mode must exceed its plain-prefix TTFT by exactly
// the engine's decompress price for the blocks it thawed — no more (the
// charge is per claimed block, not per stored block) and no less (the
// thaw is not free).
func TestDecompressPricedIntoTTFT(t *testing.T) {
	const (
		n         = 6
		prefixLen = 8 * kvcache.DefaultBlockTokens // block-aligned: claims match it exactly
		suffixLen = 24
	)
	reqs := sharedPrefixTrace(n, prefixLen, suffixLen, 8, 10.0)
	e := newPrefixTestEngine(t)

	plain, _ := drivePrefixTrace(t, e, reqs, true, 0)
	comp, spComp := driveCompressedTrace(t, e, reqs, 0)

	prefixBlocks := prefixLen / kvcache.DefaultBlockTokens
	if got, want := spComp.DecompressClaims(), int64((n-1)*prefixBlocks); got != want {
		t.Fatalf("DecompressClaims = %d, want %d (%d requests thawing %d blocks each)", got, want, n-1, prefixBlocks)
	}
	price := e.KVDecompressTime(prefixBlocks)
	if price <= 0 {
		t.Fatalf("KVDecompressTime(%d) = %v, want > 0", prefixBlocks, price)
	}
	// Request 1 pays nothing (cold cache either way); every later
	// request pays the thaw price for its claimed prefix blocks.
	for i := range comp {
		want := 0.0
		if i > 0 {
			want = price
		}
		if diff := comp[i].TTFT - plain[i].TTFT; math.Abs(diff-want) > 1e-12 {
			t.Fatalf("request %d: TTFT delta = %v, want %v (decompress price for %d blocks)",
				comp[i].ID, diff, want, prefixBlocks)
		}
	}
}

// TestKVDecompressTimeScale sanity-checks the per-block price the
// stepper charges: zero for no blocks, strictly increasing in block
// count, and far below the prefill time the claim saved (otherwise the
// trade could never win).
func TestKVDecompressTimeScale(t *testing.T) {
	e := newPrefixTestEngine(t)
	if got := e.KVDecompressTime(0); got != 0 {
		t.Fatalf("KVDecompressTime(0) = %v, want 0", got)
	}
	t1, t8 := e.KVDecompressTime(1), e.KVDecompressTime(8)
	if !(t1 > 0 && t8 > t1) {
		t.Fatalf("KVDecompressTime not increasing: t1=%v t8=%v", t1, t8)
	}
	saved := e.PrefillTime(1, 8*kvcache.DefaultBlockTokens)
	if t8 >= saved {
		t.Fatalf("thawing 8 blocks (%vs) costs more than prefilling them (%vs) — the cache could never win", t8, saved)
	}
}
