package engine

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// driveChunked replays a trace through a fresh Stepper with the given
// prefill chunk budget (0 = monolithic) under FIFO admission — the
// offline Serve loop generalised to chunk-carrying iterations. It
// returns the finished per-request metrics, the drained stepper, and
// the decode-gap samples: the virtual time between consecutive decode
// steps while the batch stayed non-empty, i.e. the inter-token cadence
// every decoding sequence actually experienced.
func driveChunked(t *testing.T, e *Engine, reqs []Request, chunk int) ([]RequestMetrics, *Stepper, []float64) {
	t.Helper()
	sp, err := NewStepper(e)
	if err != nil {
		t.Fatal(err)
	}
	sp.PackedPrefill = true
	sp.PrefillChunkTokens = chunk

	pending := append([]Request(nil), reqs...)
	sort.SliceStable(pending, func(i, j int) bool {
		return pending[i].ArrivalSeconds < pending[j].ArrivalSeconds
	})
	var (
		done    []RequestMetrics
		gaps    []float64
		nextIdx int
		prevEnd = -1.0
	)
	for len(done) < len(pending) {
		if sp.InFlight() == 0 && nextIdx < len(pending) && pending[nextIdx].ArrivalSeconds > sp.Clock() {
			sp.AdvanceTo(pending[nextIdx].ArrivalSeconds)
		}
		for nextIdx < len(pending) && pending[nextIdx].ArrivalSeconds <= sp.Clock() {
			r := pending[nextIdx]
			if !sp.CanAdmit(r.PromptLen, r.OutputLen) {
				break
			}
			if err := sp.Admit(r); err != nil {
				t.Fatal(err)
			}
			nextIdx++
		}
		sp.Prefill()
		finished, elapsed, err := sp.DecodeStep()
		if err != nil {
			t.Fatal(err)
		}
		if elapsed > 0 {
			if prevEnd >= 0 {
				gaps = append(gaps, sp.Clock()-prevEnd)
			}
			prevEnd = sp.Clock()
			if sp.ActiveCount() == 0 {
				prevEnd = -1
			}
		}
		done = append(done, finished...)
		if sp.InFlight() == 0 && nextIdx >= len(pending) && len(done) < len(pending) {
			t.Fatalf("chunk=%d: drained with %d/%d requests finished", chunk, len(done), len(pending))
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatalf("chunk=%d: %v", chunk, err)
	}
	return done, sp, gaps
}

// fingerprint serialises the outcome of a run with every timing field
// stripped: which requests finished, each one's prompt and output token
// counts, and the totals. Two runs that differ only in scheduling
// timing produce byte-identical fingerprints.
func fingerprint(t *testing.T, reqs []Request, done []RequestMetrics, sp *Stepper) string {
	t.Helper()
	byID := make(map[int]Request, len(reqs))
	for _, r := range reqs {
		byID[r.ID] = r
	}
	seen := make(map[int]int, len(done))
	ids := make([]int, 0, len(done))
	for _, m := range done {
		seen[m.ID]++
		ids = append(ids, m.ID)
	}
	sort.Ints(ids)
	out := ""
	for _, id := range ids {
		if seen[id] != 1 {
			t.Fatalf("request %d finished %d times", id, seen[id])
		}
		r := byID[id]
		out += fmt.Sprintf("id=%d prompt=%d output=%d\n", id, r.PromptLen, r.OutputLen)
	}
	out += fmt.Sprintf("total_output_tokens=%d prefill_tokens=%d\n", sp.OutputTokens(), sp.PrefillTokens())
	return out
}

// TestChunkedPrefillEquivalence: for every chunk budget, chunked
// prefill must produce byte-identical per-request outputs and token
// counts to monolithic prefill on the same trace — only timing may
// differ. Chunking changes when tokens are computed, never which.
func TestChunkedPrefillEquivalence(t *testing.T) {
	e := stepperEngine(t)
	reqs := SyntheticTrace(14, 50, 48, 12, 11)
	var long []Request
	for i, r := range reqs {
		if i%5 == 0 {
			r.PromptLen = 7 * r.PromptLen // long prompts cross many chunk boundaries
		}
		long = append(long, r)
	}

	doneMono, spMono, _ := driveChunked(t, e, long, 0)
	want := fingerprint(t, long, doneMono, spMono)
	var wantTotal int64
	for _, r := range long {
		wantTotal += int64(r.OutputLen)
	}
	if got := spMono.OutputTokens(); got != wantTotal {
		t.Fatalf("monolithic emitted %d tokens, want %d", got, wantTotal)
	}

	for _, chunk := range []int{1, 7, 64} {
		done, sp, _ := driveChunked(t, e, long, chunk)
		if got := fingerprint(t, long, done, sp); got != want {
			t.Errorf("chunk=%d outputs diverge from monolithic:\n got:\n%s want:\n%s", chunk, got, want)
		}
		if chunk < 48 && sp.PrefillIterations() <= spMono.PrefillIterations() {
			t.Errorf("chunk=%d ran %d prefill iterations, monolithic ran %d; chunking did not split prefill",
				chunk, sp.PrefillIterations(), spMono.PrefillIterations())
		}
	}
}

// TestChunkedPrefillCadence enforces the cadence win chunking exists
// for: on a trace mixing one very long prompt into an active decode
// batch, the chunked decode gap stays bounded by ~2× one budgeted step
// (chunk prefill + decode), while the monolithic gap swallows the whole
// prompt — and the improvement must not regress below 1.2×.
func TestChunkedPrefillCadence(t *testing.T) {
	const (
		decoders   = 8
		shortIn    = 64
		shortOut   = 256
		longPrompt = 4096
		chunk      = 256
	)
	mix := func() []Request {
		reqs := make([]Request, 0, decoders+1)
		for i := 0; i < decoders; i++ {
			reqs = append(reqs, Request{ID: i, ArrivalSeconds: 0, PromptLen: shortIn, OutputLen: shortOut})
		}
		// The long prompt lands once the decoders are mid-stream.
		reqs = append(reqs, Request{ID: decoders, ArrivalSeconds: 0.5, PromptLen: longPrompt, OutputLen: 8})
		return reqs
	}

	e := stepperEngine(t)
	_, spMono, _ := driveChunked(t, e, mix(), 0)
	_, spChunk, _ := driveChunked(t, e, mix(), chunk)

	gapMono, gapChunk := spMono.MaxDecodeGap(), spChunk.MaxDecodeGap()
	if gapMono <= 0 || gapChunk <= 0 {
		t.Fatalf("decode gaps not measured: mono=%g chunk=%g", gapMono, gapChunk)
	}

	// Bound: one budgeted step is the worst-case chunk (deepest prefix
	// offset) plus one decode step over the full mixed batch.
	worstChunk := e.ChunkedPrefillTime([]PrefillChunk{{Start: longPrompt - chunk, Tokens: chunk, Final: true}})
	worstDecode := e.BatchDecodeStepTime(decoders+1, decoders*(shortIn+shortOut)+longPrompt+8)
	if bound := 2 * (worstChunk + worstDecode); gapChunk > bound {
		t.Errorf("chunked decode gap %.4fs exceeds 2x budgeted step %.4fs", gapChunk, bound)
	}

	if gapChunk >= gapMono {
		t.Errorf("chunking did not shrink the decode gap: chunked %.4fs >= monolithic %.4fs", gapChunk, gapMono)
	}
	if ratio := gapMono / gapChunk; ratio < 1.2 {
		t.Errorf("decode-gap improvement %.2fx regressed below 1.2x (mono %.4fs, chunked %.4fs)",
			ratio, gapMono, gapChunk)
	}
}

// TestChunkedPrefillTPOTImprovement enforces the win on the decode
// TPOT distribution: with long prompts arriving throughout the run,
// the p99 inter-token gap the decoders experience must be strictly
// better — by at least 1.2× — with chunking than without. (Mean TPOT
// cannot show this: a stall amortised over a long output vanishes
// from the mean; the tail is exactly what chunking fixes.)
func TestChunkedPrefillTPOTImprovement(t *testing.T) {
	e := stepperEngine(t)
	mix := make([]Request, 0, 18)
	for i := 0; i < 8; i++ {
		mix = append(mix, Request{ID: i, ArrivalSeconds: 0, PromptLen: 64, OutputLen: 512})
	}
	// A stream of long prompts keeps stalling the monolithic loop.
	for i := 0; i < 10; i++ {
		mix = append(mix, Request{ID: 8 + i, ArrivalSeconds: 0.3 + 0.6*float64(i), PromptLen: 4096, OutputLen: 8})
	}

	p99 := func(gaps []float64) float64 {
		if len(gaps) == 0 {
			t.Fatal("no decode-gap samples")
		}
		s := append([]float64(nil), gaps...)
		sort.Float64s(s)
		i := (len(s)*99 + 99) / 100
		if i > len(s) {
			i = len(s)
		}
		return s[i-1]
	}

	_, _, gapsMono := driveChunked(t, e, mix, 0)
	_, _, gapsChunk := driveChunked(t, e, mix, 256)
	mono, chunked := p99(gapsMono), p99(gapsChunk)
	if chunked >= mono {
		t.Errorf("chunking did not improve decode TPOT p99: chunked %.5fs >= monolithic %.5fs", chunked, mono)
	}
	if ratio := mono / chunked; ratio < 1.2 {
		t.Errorf("TPOT p99 improvement %.2fx regressed below 1.2x (mono %.5fs, chunked %.5fs)",
			ratio, mono, chunked)
	}
}

// TestPreemptMidPrefill: evicting a partially prefilled sequence must
// discard its chunk progress cleanly — every claimed block returns,
// no phantom tokens remain, and re-admission restarts from scratch.
func TestPreemptMidPrefill(t *testing.T) {
	e := stepperEngine(t)
	sp, err := NewStepper(e)
	if err != nil {
		t.Fatal(err)
	}
	sp.PackedPrefill = true
	sp.PrefillChunkTokens = 64

	freeBefore := sp.FreeBlocks()
	r := Request{ID: 1, PromptLen: 300, OutputLen: 16}
	if err := sp.Admit(r); err != nil {
		t.Fatal(err)
	}
	// Two chunk iterations: 128 of 300 prompt tokens prefilled.
	sp.Prefill()
	sp.Prefill()
	if sp.AdmittedCount() != 1 || sp.ActiveCount() != 0 {
		t.Fatalf("sequence left mid-prefill: admitted=%d active=%d", sp.AdmittedCount(), sp.ActiveCount())
	}
	if got := sp.PrefillTokens(); got != 128 {
		t.Fatalf("prefilled %d tokens over two 64-chunks, want 128", got)
	}
	if sp.OutputTokens() != 0 {
		t.Fatalf("mid-prefill sequence emitted %d tokens", sp.OutputTokens())
	}

	req, ok := sp.Preempt(r.ID)
	if !ok || !reflect.DeepEqual(req, r) {
		t.Fatalf("Preempt = %+v, %v; want original request", req, ok)
	}
	if got := sp.FreeBlocks(); got != freeBefore {
		t.Fatalf("free blocks %d after mid-prefill preempt, want %d", got, freeBefore)
	}
	if sp.OutputTokens() != 0 {
		t.Fatalf("preempt left %d phantom tokens", sp.OutputTokens())
	}

	// Re-admission restarts from chunk zero and runs to completion.
	if err := sp.Admit(req); err != nil {
		t.Fatal(err)
	}
	for sp.InFlight() > 0 {
		sp.Prefill()
		if _, _, err := sp.DecodeStep(); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := sp.OutputTokens(), int64(r.OutputLen); got != want {
		t.Errorf("output tokens %d after readmitted drain, want %d", got, want)
	}
	// 300 discarded + 300 recomputed prompt tokens.
	if got := sp.PrefillTokens(); got != 128+300 {
		t.Errorf("prefill tokens %d, want %d (discarded progress recomputed)", got, 128+300)
	}
	if err := sp.Close(); err != nil {
		t.Errorf("Close after mid-prefill preempt cycle: %v", err)
	}
}

// TestChunkedPrefillTimeDegeneratesToPacked pins the cost-model
// identity the equivalence rests on: a whole prompt processed as one
// chunk prices exactly like the packed prefill path.
func TestChunkedPrefillTimeDegeneratesToPacked(t *testing.T) {
	e := stepperEngine(t)
	prompts := []int{17, 256, 1000}
	chunks := make([]PrefillChunk, len(prompts))
	for i, p := range prompts {
		chunks[i] = PrefillChunk{Start: 0, Tokens: p, Final: true}
	}
	if got, want := e.ChunkedPrefillTime(chunks), e.PackedPrefillTime(prompts); got != want {
		t.Errorf("ChunkedPrefillTime = %g, PackedPrefillTime = %g", got, want)
	}
	if e.ChunkedPrefillTime(nil) != 0 {
		t.Error("empty chunk set must cost nothing")
	}
	// Attention conservation: a prompt's chunks telescope ((s+c)²−s²)
	// to exactly the monolithic p², so pricing both halves in one call
	// equals the whole prompt bit for bit — chunking can never price
	// the same work cheaper.
	whole := e.ChunkedPrefillTime([]PrefillChunk{{Start: 0, Tokens: 1000, Final: true}})
	split := e.ChunkedPrefillTime([]PrefillChunk{
		{Start: 0, Tokens: 500, Final: false},
		{Start: 500, Tokens: 500, Final: true},
	})
	if split != whole {
		t.Errorf("split prompt priced %.9fs in one call, whole prompt %.9fs; attention not conserved", split, whole)
	}
	// Across separate iterations (the real chunked loop), the same
	// split costs strictly more: per-iteration overheads repeat.
	iterated := e.ChunkedPrefillTime([]PrefillChunk{{Start: 0, Tokens: 500, Final: false}}) +
		e.ChunkedPrefillTime([]PrefillChunk{{Start: 500, Tokens: 500, Final: true}})
	if iterated <= whole {
		t.Errorf("two chunk iterations (%.9fs) must cost more than one monolithic prefill (%.9fs)", iterated, whole)
	}
}
