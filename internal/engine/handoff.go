package engine

import (
	"errors"
	"fmt"

	"zipserv/internal/gpu"
	"zipserv/internal/kvcache"
)

// Sequence handoff: the engine half of disaggregated prefill/decode
// serving (docs/disaggregation.md). A prefill replica runs a prompt to
// its first token, ExportSequence serializes the mid-generation
// sequence — request, metrics, decode progress, and the KV blocks
// compressed through the TCA-TBE codec — and a decode replica's
// ImportSequence lands it in that stepper's active batch, deduplicating
// prompt blocks against the target's prefix trie and paying the
// transfer and decompression price on its virtual clock.

// Handoff failure sentinels, distinguishable with errors.Is so a
// router can pick the right recovery: a duplicate import is already
// served (drop the retry), a capacity rejection wants a different
// target or a later retry.
var (
	// ErrSequenceInFlight reports an import whose sequence id is
	// already admitted or decoding on this stepper.
	ErrSequenceInFlight = errors.New("engine: sequence already in flight")
	// ErrImportNoCapacity reports an import that does not fit in the
	// target's free KV capacity.
	ErrImportNoCapacity = errors.New("engine: import does not fit in free KV capacity")
)

// SequenceExport is a mid-generation sequence serialized for transfer
// to another replica: everything a fresh Stepper needs to continue the
// decode exactly where the exporter stopped.
type SequenceExport struct {
	Req       Request
	Metrics   RequestMetrics // arrival/admission/first-token timestamps travel with the sequence
	Remaining int            // output tokens still to produce
	Ctx       int            // context length at export
	KV        *kvcache.KVExport

	// ExportedAt is the exporter's virtual clock at serialization;
	// TransferSeconds the priced interconnect time. The import lands no
	// earlier than their sum.
	ExportedAt      float64
	TransferSeconds float64
}

// CompressedBytes returns the wire footprint of the KV payload.
func (x *SequenceExport) CompressedBytes() int64 { return x.KV.CompressedBytes() }

// KVTransferTime prices moving a compressed KV payload of the given
// size between replicas over the inter-GPU interconnect (NVLink when
// the device has it, PCIe otherwise), plus the fixed cost of the
// send/receive kernel pair. Compression is what makes this cheap: the
// wire carries the codec's measured compressed bytes, not raw KV.
func (e *Engine) KVTransferTime(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes)/(e.cfg.Device.InterconnectGBps()*1e9) + 2*gpu.LaunchOverhead
}

// ExportSequence serializes an actively decoding sequence for handoff
// and releases it from this stepper: the sequence leaves the decode
// batch, its KV blocks are freed (prompt blocks stay advertised by the
// prefix trie, so a sibling request — or a failed handoff re-imported
// here — still reuses them), and its emitted-token counts stay put,
// because the tokens were really produced here. Contrast Preempt,
// which discards and recomputes.
func (s *Stepper) ExportSequence(id int) (*SequenceExport, error) {
	for i, q := range s.active {
		if q.req.ID != id {
			continue
		}
		kv, err := s.mgr.ExportKV(id, q.hp)
		if err != nil {
			return nil, fmt.Errorf("engine: exporting sequence %d: %w", id, err)
		}
		exp := &SequenceExport{
			Req:             q.req,
			Metrics:         q.m,
			Remaining:       q.remaining,
			Ctx:             q.ctx,
			KV:              kv,
			ExportedAt:      s.now,
			TransferSeconds: s.e.KVTransferTime(kv.CompressedBytes()),
		}
		s.active = append(s.active[:i], s.active[i+1:]...)
		s.reserved -= q.reserved
		if err := s.mgr.Free(id); err != nil {
			// Unreachable: an active sequence owns an allocation.
			panic(fmt.Sprintf("engine: freeing exported sequence %d: %v", id, err))
		}
		putSeq(q)
		if len(s.active) == 0 {
			s.lastDecodeEnd = -1
		}
		return exp, nil
	}
	return nil, fmt.Errorf("engine: sequence %d is not decoding", id)
}

// ImportSequence lands an exported sequence in this stepper's decode
// batch. The import is charged like a real arrival: the clock advances
// to the export time plus the transfer, the expanded and thawed blocks
// pay the decompress price, and the request's remaining footprint is
// reserved so the sequence can never fail mid-flight. Prompt blocks
// the target's trie already holds are deduplicated by the
// content-addressed claim instead of expanded from the wire.
//
// A sequence id already in flight fails with ErrSequenceInFlight and
// an import that does not fit with ErrImportNoCapacity, both leaving
// the stepper unchanged — so a router can retry elsewhere or detect a
// duplicate handoff, and a crashed target can be retried on any
// replica (the import is idempotent and content-addressed).
func (s *Stepper) ImportSequence(exp *SequenceExport) error {
	id := exp.Req.ID
	for _, q := range s.active {
		if q.req.ID == id {
			return fmt.Errorf("%w: %d", ErrSequenceInFlight, id)
		}
	}
	for _, q := range s.admitted {
		if q.req.ID == id {
			return fmt.Errorf("%w: %d", ErrSequenceInFlight, id)
		}
	}
	matched, resurrect := s.lookupCost(exp.Req)
	if !s.fits(exp.Req, matched, resurrect) {
		return fmt.Errorf("%w: sequence %d (%d tokens)", ErrImportNoCapacity, id,
			exp.Req.PromptLen+exp.Req.OutputLen)
	}
	res := s.reservationFor(exp.Req, matched)
	stats, err := s.mgr.ImportKV(exp.KV)
	if err != nil {
		if errors.Is(err, kvcache.ErrSequenceExists) {
			return fmt.Errorf("%w: %d", ErrSequenceInFlight, id)
		}
		return fmt.Errorf("engine: importing sequence %d: %w", id, err)
	}
	res -= stats.GrowPops
	if res < 0 {
		// Unreachable: the exported length never exceeds the reserved
		// prompt+output footprint.
		panic(fmt.Sprintf("engine: import of sequence %d claimed %d blocks past its reservation", id, -res))
	}
	s.reserved += res

	// The sequence lands once the transfer completes, then pays for
	// expanding the wire blocks (and thawing any of the target's own
	// frozen blocks the dedup claim touched). The cost folds into the
	// step-time EWMA with the next decode step, like a prefill chunk.
	s.AdvanceTo(exp.ExportedAt + exp.TransferSeconds)
	if cost := s.e.KVDecompressTime(stats.ExpandedBlocks + stats.Thawed); cost > 0 {
		s.now += cost
		s.lastPrefillElapsed += cost
	}

	q := seqPool.Get().(*sequence)
	*q = sequence{
		req:       exp.Req,
		hp:        exp.KV.HP,
		m:         exp.Metrics,
		remaining: exp.Remaining,
		ctx:       exp.Ctx,
		prefilled: exp.Req.PromptLen,
		reserved:  res,
	}
	s.active = append(s.active, q)
	if len(s.active) > s.peak {
		s.peak = len(s.active)
	}
	return nil
}
