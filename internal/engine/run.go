package engine

import (
	"fmt"

	"zipserv/internal/gpu"
	"zipserv/internal/kvcache"
	"zipserv/internal/weights"
)

// Metrics summarises one serving run (a batch of identical requests),
// the quantities plotted in Figures 16 and 17.
type Metrics struct {
	Backend Backend
	Model   string
	Device  string
	NumGPUs int

	Batch     int
	PromptLen int
	OutputLen int

	// Memory plan (per GPU).
	WeightGiB     float64
	KVCapacityGiB float64
	MaxConcurrent int
	Waves         int

	// Times in seconds.
	PrefillSeconds float64
	DecodeSeconds  float64
	TotalSeconds   float64 // end-to-end request latency (all waves)

	// Throughput in output tokens per second across the whole batch.
	Throughput float64

	// Per-step decode breakdown at the final context length
	// (Figure 17's latency composition).
	StepGEMMSeconds  float64
	StepAttnSeconds  float64
	StepOtherSeconds float64
}

// Run simulates serving `batch` identical requests of promptLen input
// and outputLen output tokens. The paged KV allocator runs for real:
// if the batch does not fit in KV memory, it is served in waves — the
// capacity mechanism through which weight compression becomes
// throughput (§6.5).
func (e *Engine) Run(batch, promptLen, outputLen int) (Metrics, error) {
	if batch <= 0 || promptLen <= 0 || outputLen <= 0 {
		return Metrics{}, fmt.Errorf("engine: batch/prompt/output must be positive, got %d/%d/%d",
			batch, promptLen, outputLen)
	}
	totalLen := promptLen + outputLen
	maxConc := e.MaxConcurrent(totalLen)
	if maxConc == 0 {
		return Metrics{}, fmt.Errorf("engine: a single %d-token sequence does not fit in %.2f GiB of KV memory",
			totalLen, float64(e.plan.KVBytes)/float64(int64(1)<<30))
	}
	waves := (batch + maxConc - 1) / maxConc
	perWave := (batch + waves - 1) / waves

	mgr, err := kvcache.NewManager(kvcache.Config{
		BlockTokens: kvcache.DefaultBlockTokens,
		TotalBlocks: e.plan.Blocks,
	})
	if err != nil {
		return Metrics{}, err
	}

	var total, prefillTotal, decodeTotal float64
	remaining := batch
	for w := 0; w < waves; w++ {
		b := perWave
		if b > remaining {
			b = remaining
		}
		remaining -= b

		// Admit the wave: allocate prompt KV for every sequence.
		for s := 0; s < b; s++ {
			if err := mgr.Allocate(w*perWave+s, promptLen); err != nil {
				return Metrics{}, fmt.Errorf("engine: admission failed mid-wave: %w", err)
			}
		}
		prefill := e.PrefillTime(b, promptLen)

		// Decode: one step per output token; context grows, blocks are
		// claimed as sequences cross block boundaries.
		gemm := e.stepGEMMTime(b) // context-independent, hoisted
		other := e.otherTime() + e.allReduceTime(b)
		var decode float64
		for t := 0; t < outputLen; t++ {
			ctx := promptLen + t
			decode += gemm + e.attentionTime(b, ctx) + other
			for s := 0; s < b; s++ {
				if err := mgr.AppendToken(w*perWave + s); err != nil {
					return Metrics{}, fmt.Errorf("engine: KV append failed at step %d: %w", t, err)
				}
			}
		}

		// Retire the wave.
		for s := 0; s < b; s++ {
			if err := mgr.Free(w*perWave + s); err != nil {
				return Metrics{}, err
			}
		}
		if err := mgr.CheckInvariants(); err != nil {
			return Metrics{}, fmt.Errorf("engine: allocator corrupted: %w", err)
		}

		prefillTotal += prefill
		decodeTotal += decode
		total += prefill + decode
	}

	finalCtx := promptLen + outputLen - 1
	m := Metrics{
		Backend: e.cfg.Backend, Model: e.cfg.Model.Name, Device: e.cfg.Device.Name,
		NumGPUs: e.cfg.NumGPUs,
		Batch:   batch, PromptLen: promptLen, OutputLen: outputLen,

		WeightGiB:     e.WeightGiBPerGPU(),
		KVCapacityGiB: float64(e.plan.KVBytes) / float64(int64(1)<<30),
		MaxConcurrent: maxConc,
		Waves:         waves,

		PrefillSeconds: prefillTotal,
		DecodeSeconds:  decodeTotal,
		TotalSeconds:   total,
		Throughput:     float64(batch) * float64(outputLen) / total,

		StepGEMMSeconds:  e.stepGEMMTime(min(batch, perWave)),
		StepAttnSeconds:  e.attentionTime(min(batch, perWave), finalCtx),
		StepOtherSeconds: e.otherTime() + e.allReduceTime(min(batch, perWave)),
	}
	return m, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Scenario is one Figure 16 deployment: a model, its device
// configuration, and tensor-parallel degree.
type Scenario struct {
	ModelName string
	Device    string
	NumGPUs   int
}

// Figure16Scenarios returns the paper's three end-to-end deployments.
func Figure16Scenarios() []Scenario {
	return []Scenario{
		{ModelName: "LLaMA3.1-8B", Device: "RTX4090", NumGPUs: 1},
		{ModelName: "Mistral-24B", Device: "L40S", NumGPUs: 2},
		{ModelName: "LLaMA3.1-70B", Device: "L40S", NumGPUs: 4},
	}
}

// NewForScenario builds an engine for a Figure 16 scenario and
// backend.
func NewForScenario(sc Scenario, backend Backend) (*Engine, error) {
	model, err := weights.ByName(sc.ModelName)
	if err != nil {
		return nil, err
	}
	dev, err := gpu.ByName(sc.Device)
	if err != nil {
		return nil, err
	}
	return New(Config{Model: model, Device: dev, NumGPUs: sc.NumGPUs, Backend: backend})
}
