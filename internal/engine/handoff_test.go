package engine

import (
	"errors"
	"testing"
)

// prefillToFirstToken admits a request on a fresh prefix-cached
// stepper and runs it to its first token, returning the stepper.
func prefillToFirstToken(t testing.TB, e *Engine, r Request) *Stepper {
	t.Helper()
	sp, err := NewStepper(e)
	if err != nil {
		t.Fatal(err)
	}
	sp.PackedPrefill = true
	if err := sp.EnablePrefixCache(0); err != nil {
		t.Fatal(err)
	}
	if err := sp.Admit(r); err != nil {
		t.Fatal(err)
	}
	for iters := 0; sp.AdmittedCount() > 0; iters++ {
		if iters > 1<<10 {
			t.Fatal("prefill failed to make progress")
		}
		sp.Prefill()
	}
	if sp.ActiveCount() != 1 {
		t.Fatalf("first token did not land: %d active", sp.ActiveCount())
	}
	return sp
}

// TestHandoffContinuesDecodeOnTarget is the disaggregation round trip:
// prefill to first token on one stepper, export, import into another,
// finish the decode there. The request's metrics must be continuous —
// the first-token timestamp set by the exporter, the finish computed
// by the importer — and both steppers must close with clean
// invariants.
func TestHandoffContinuesDecodeOnTarget(t *testing.T) {
	e := newPrefixTestEngine(t)
	r := Request{ID: 1, PromptLen: 400, OutputLen: 16, Prompt: prefixTokens(400, 1)}
	src := prefillToFirstToken(t, e, r)

	exp, err := src.ExportSequence(1)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Remaining != r.OutputLen-1 || exp.Ctx != r.PromptLen {
		t.Fatalf("export carries remaining=%d ctx=%d, want %d/%d",
			exp.Remaining, exp.Ctx, r.OutputLen-1, r.PromptLen)
	}
	if exp.Metrics.FirstToken <= 0 || exp.Metrics.TTFT <= 0 {
		t.Fatalf("export lost the first-token metrics: %+v", exp.Metrics)
	}
	if exp.TransferSeconds <= 0 {
		t.Fatal("transfer time not priced")
	}
	// The exporter released everything: no sequences, no reservation.
	if src.InFlight() != 0 {
		t.Fatalf("source still has %d sequences in flight", src.InFlight())
	}
	if got := src.OutputTokens(); got != 1 {
		t.Fatalf("source output tokens %d after export, want the 1 it really emitted", got)
	}
	if err := src.Close(); err != nil {
		t.Fatalf("source close after export: %v", err)
	}

	dst, err := NewStepper(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.EnablePrefixCache(0); err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportSequence(exp); err != nil {
		t.Fatal(err)
	}
	if dst.ActiveCount() != 1 {
		t.Fatalf("import landed %d active sequences, want 1", dst.ActiveCount())
	}
	// The sequence arrives no earlier than export + transfer, plus the
	// decompression of the shipped blocks.
	if dst.Clock() < exp.ExportedAt+exp.TransferSeconds {
		t.Fatalf("import clock %.6f before transfer completed at %.6f",
			dst.Clock(), exp.ExportedAt+exp.TransferSeconds)
	}

	var fin []RequestMetrics
	for iters := 0; dst.InFlight() > 0; iters++ {
		if iters > 1<<10 {
			t.Fatal("decode failed to make progress")
		}
		got, _, err := dst.DecodeStep()
		if err != nil {
			t.Fatal(err)
		}
		fin = append(fin, got...)
	}
	if len(fin) != 1 || fin[0].ID != 1 {
		t.Fatalf("target finished %v, want request 1", fin)
	}
	m := fin[0]
	if m.FirstToken != exp.Metrics.FirstToken {
		t.Fatalf("finish rewrote FirstToken: %v != %v", m.FirstToken, exp.Metrics.FirstToken)
	}
	if m.Finished <= m.FirstToken || m.TPOT <= 0 || m.Latency <= 0 {
		t.Fatalf("discontinuous finish metrics: %+v", m)
	}
	// All decode tokens after the handoff were emitted on the target.
	if got := dst.OutputTokens(); got != int64(r.OutputLen-1) {
		t.Fatalf("target output tokens %d, want %d", got, r.OutputLen-1)
	}
	if err := dst.Close(); err != nil {
		t.Fatalf("target close: %v", err)
	}
}

// TestHandoffImportSentinels: duplicate imports and capacity
// rejections must fail with distinguishable sentinels and leave the
// target untouched, so a router can drop duplicates and retry
// elsewhere on pressure.
func TestHandoffImportSentinels(t *testing.T) {
	e := newPrefixTestEngine(t)
	r := Request{ID: 1, PromptLen: 400, OutputLen: 16, Prompt: prefixTokens(400, 1)}
	src := prefillToFirstToken(t, e, r)
	exp, err := src.ExportSequence(1)
	if err != nil {
		t.Fatal(err)
	}

	dst, err := NewStepper(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.EnablePrefixCache(0); err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportSequence(exp); err != nil {
		t.Fatal(err)
	}
	free := dst.FreeBlocks()
	if err := dst.ImportSequence(exp); !errors.Is(err, ErrSequenceInFlight) {
		t.Fatalf("duplicate import = %v, want ErrSequenceInFlight", err)
	}
	if dst.FreeBlocks() != free {
		t.Fatal("duplicate import mutated the target")
	}

	// Fill a second target's capacity with admissions, then import.
	full, err := NewStepper(e)
	if err != nil {
		t.Fatal(err)
	}
	full.PackedPrefill = true
	for id := 100; full.CanAdmit(16, 16); id++ {
		if err := full.Admit(Request{ID: id, PromptLen: 16, OutputLen: 16}); err != nil {
			t.Fatal(err)
		}
	}
	if err := full.ImportSequence(exp); !errors.Is(err, ErrImportNoCapacity) {
		t.Fatalf("import into a full stepper = %v, want ErrImportNoCapacity", err)
	}
}

// TestHandoffDedupReusesTargetPrefix: when the decode target has
// already served the prompt's prefix, the import claims it from the
// trie instead of expanding wire blocks — the content-addressed dedup
// that makes duplicate/retried handoffs cheap.
func TestHandoffDedupReusesTargetPrefix(t *testing.T) {
	e := newPrefixTestEngine(t)
	prompt := prefixTokens(400, 1)
	src := prefillToFirstToken(t, e, Request{ID: 1, PromptLen: 400, OutputLen: 16, Prompt: prompt})
	exp, err := src.ExportSequence(1)
	if err != nil {
		t.Fatal(err)
	}

	// Warm the target with a sibling request over the same prompt.
	dst := prefillToFirstToken(t, e, Request{ID: 2, PromptLen: 400, OutputLen: 2, Prompt: prompt})
	for dst.InFlight() > 0 {
		if _, _, err := dst.DecodeStep(); err != nil {
			t.Fatal(err)
		}
	}
	hits, pops := dst.PrefixHits(), dst.Clock()
	_ = pops
	if err := dst.ImportSequence(exp); err != nil {
		t.Fatal(err)
	}
	if dst.PrefixHits() != hits+1 {
		t.Fatalf("warm import did not hit the target trie: hits %d, want %d", dst.PrefixHits(), hits+1)
	}
	for dst.InFlight() > 0 {
		if _, _, err := dst.DecodeStep(); err != nil {
			t.Fatal(err)
		}
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkDisaggHandoff ping-pongs one mid-generation sequence
// between two steppers: each iteration is two full export→import
// round trips (serialize through the codec, transfer, verify,
// deduplicate against the peer's trie). This is the hot path of the
// disaggregated router's prefill→decode handoff.
func BenchmarkDisaggHandoff(b *testing.B) {
	e := newPrefixTestEngine(b)
	// The sequence never decodes inside the loop, so its remaining
	// output keeps it exportable for every iteration.
	r := Request{ID: 1, PromptLen: 400, OutputLen: 512, Prompt: prefixTokens(400, 1)}
	a := prefillToFirstToken(b, e, r)
	c, err := NewStepper(e)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.EnablePrefixCache(0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp, err := a.ExportSequence(1)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.ImportSequence(exp); err != nil {
			b.Fatal(err)
		}
		back, err := c.ExportSequence(1)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.ImportSequence(back); err != nil {
			b.Fatal(err)
		}
	}
}
