package engine

import (
	"testing"

	"zipserv/internal/gpu"
	"zipserv/internal/weights"
)

func stepperEngine(t *testing.T) *Engine {
	t.Helper()
	model, err := weights.ByName("LLaMA3.1-8B")
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Model: model, Device: gpu.MustByName("RTX4090"), NumGPUs: 1, Backend: BackendZipServ,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestStepperPreempt exercises the preempt-and-requeue hook: evicting a
// decoding sequence must return every block it held (allocated and
// reserved), discount its partial output, and leave the allocator clean
// after the re-admitted run drains.
func TestStepperPreempt(t *testing.T) {
	e := stepperEngine(t)
	sp, err := NewStepper(e)
	if err != nil {
		t.Fatal(err)
	}
	sp.PackedPrefill = true

	freeBefore := sp.FreeBlocks()
	r1 := Request{ID: 1, PromptLen: 256, OutputLen: 64}
	r2 := Request{ID: 2, PromptLen: 512, OutputLen: 128}
	for _, r := range []Request{r1, r2} {
		if err := sp.Admit(r); err != nil {
			t.Fatal(err)
		}
	}
	sp.Prefill()
	for i := 0; i < 5; i++ {
		if _, _, err := sp.DecodeStep(); err != nil {
			t.Fatal(err)
		}
	}
	tokensBefore := sp.OutputTokens()

	req, ok := sp.Preempt(r2.ID)
	if !ok || req.ID != r2.ID || req.OutputLen != r2.OutputLen {
		t.Fatalf("Preempt(%d) = %+v, %v", r2.ID, req, ok)
	}
	if _, ok := sp.Preempt(99); ok {
		t.Error("Preempt of unknown id reported success")
	}
	if sp.InFlight() != 1 {
		t.Fatalf("in flight %d after preemption, want 1", sp.InFlight())
	}
	// r2's 1 prefill + 5 decode tokens are discounted as wasted work.
	if got := sp.OutputTokens(); got != tokensBefore-6 {
		t.Errorf("output tokens %d after preemption, want %d", got, tokensBefore-6)
	}

	// The freed capacity funds re-admission; drain both to completion.
	if !sp.CanAdmit(req.PromptLen, req.OutputLen) {
		t.Fatal("freed capacity does not readmit the preempted request")
	}
	if err := sp.Admit(req); err != nil {
		t.Fatal(err)
	}
	sp.Prefill()
	for sp.InFlight() > 0 {
		if _, _, err := sp.DecodeStep(); err != nil {
			t.Fatal(err)
		}
	}
	if got := sp.FreeBlocks(); got != freeBefore {
		t.Errorf("free blocks %d after drain, want %d (leak)", got, freeBefore)
	}
	if err := sp.Close(); err != nil {
		t.Errorf("Close after preempt/readmit/drain: %v", err)
	}
	// Useful-token accounting: exactly one full output per request.
	if got, want := sp.OutputTokens(), int64(r1.OutputLen+r2.OutputLen); got != want {
		t.Errorf("output tokens %d, want %d", got, want)
	}
}
