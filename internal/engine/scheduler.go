package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Request is one serving request in a trace.
type Request struct {
	ID             int
	ArrivalSeconds float64
	PromptLen      int
	OutputLen      int

	// Prompt carries the prompt's token ids. Optional: the simulator
	// prices work from PromptLen alone, but a prefix-cache-enabled
	// Stepper content-addresses these tokens to reuse KV blocks across
	// requests sharing a prompt prefix. When non-empty its length must
	// equal PromptLen. Requests without tokens never share.
	Prompt []int
}

// RequestMetrics reports per-request serving quality.
type RequestMetrics struct {
	ID         int
	Arrival    float64
	Admitted   float64 // when KV capacity was granted
	FirstToken float64 // end of the request's prefill
	Finished   float64

	TTFT    float64 // time to first token (FirstToken − Arrival)
	TPOT    float64 // time per output token after the first (decode cadence)
	Latency float64 // Finished − Arrival

	// CachedTokens is how many prompt tokens were served from the
	// prefix cache instead of being prefilled (0 when caching is off
	// or nothing matched).
	CachedTokens int
}

// TraceStats aggregates a continuous-batching run.
type TraceStats struct {
	Requests        int
	MakespanSeconds float64
	OutputTokens    int64
	Throughput      float64 // output tokens / makespan

	MeanTTFT float64
	MaxTTFT  float64
	MeanLat  float64

	PeakConcurrency int
	DecodeSteps     int64
}

// Serve runs a continuous-batching simulation over the request trace
// (vLLM-style iteration-level scheduling, §6.5): at every decode step
// the running batch is whatever fits, arrivals are admitted as KV
// blocks free up, and finished sequences release capacity immediately.
// Admission is conservative: a request is admitted only when its full
// prompt+output KV reservation fits, so no sequence can fail mid
// flight (real vLLM admits optimistically and preempts; conservative
// reservation bounds the same capacity effect without modelling
// preemption).
//
// Serve is a thin offline driver over the shared Stepper state
// machine; the live scheduler in internal/serve drives the same
// Stepper from a request channel. Serve keeps the legacy request-level
// padded prefill (every prompt in a prefill batch is priced at the
// longest one), which is what makes it the static-batch baseline the
// live packed-prefill loop is benchmarked against.
func (e *Engine) Serve(reqs []Request) (TraceStats, []RequestMetrics, error) {
	var st TraceStats
	if len(reqs) == 0 {
		return st, nil, fmt.Errorf("engine: empty request trace")
	}
	pending := append([]Request(nil), reqs...)
	sort.SliceStable(pending, func(i, j int) bool {
		return pending[i].ArrivalSeconds < pending[j].ArrivalSeconds
	})
	for _, r := range pending {
		if r.PromptLen <= 0 || r.OutputLen <= 0 || r.ArrivalSeconds < 0 {
			return st, nil, fmt.Errorf("engine: request %d invalid (%+v)", r.ID, r)
		}
		// A request whose reservation exceeds the whole plan must fail
		// here, or the FIFO admission loop below could never make
		// progress.
		if !e.FitsKV(r.PromptLen, r.OutputLen) {
			return st, nil, fmt.Errorf("engine: request %d (%d tokens) can never fit in KV memory",
				r.ID, r.PromptLen+r.OutputLen)
		}
	}

	sp, err := NewStepper(e)
	if err != nil {
		return st, nil, err
	}

	var (
		done    []RequestMetrics
		nextIdx int
	)
	for len(done) < len(pending) {
		// Jump to the next arrival if the system is idle.
		if sp.InFlight() == 0 && nextIdx < len(pending) && pending[nextIdx].ArrivalSeconds > sp.Clock() {
			sp.AdvanceTo(pending[nextIdx].ArrivalSeconds)
		}

		// Admit new arrivals in FIFO order: stop at the first request
		// that does not fit, so the head of line is never starved.
		for nextIdx < len(pending) && pending[nextIdx].ArrivalSeconds <= sp.Clock() {
			r := pending[nextIdx]
			if !sp.CanAdmit(r.PromptLen, r.OutputLen) {
				break
			}
			if err := sp.Admit(r); err != nil {
				return st, nil, err
			}
			nextIdx++
		}

		// Prefill the newcomers as one batch, then run one decode step.
		sp.Prefill()
		if sp.ActiveCount() == 0 {
			if sp.InFlight() == 0 && nextIdx >= len(pending) {
				break // nothing in flight, nothing pending: all done
			}
			continue // mid-prefill sequences or future arrivals remain
		}
		finished, _, err := sp.DecodeStep()
		if err != nil {
			return st, nil, err
		}
		done = append(done, finished...)
	}

	if err := sp.Close(); err != nil {
		return st, nil, fmt.Errorf("engine: after trace: %w", err)
	}

	sort.Slice(done, func(i, j int) bool { return done[i].ID < done[j].ID })
	st.Requests = len(done)
	st.MakespanSeconds = sp.Clock()
	st.OutputTokens = sp.OutputTokens()
	st.PeakConcurrency = sp.PeakConcurrency()
	st.DecodeSteps = sp.DecodeSteps()
	if st.MakespanSeconds > 0 {
		st.Throughput = float64(st.OutputTokens) / st.MakespanSeconds
	}
	var ttftSum, latSum float64
	for _, m := range done {
		ttftSum += m.TTFT
		latSum += m.Latency
		st.MaxTTFT = math.Max(st.MaxTTFT, m.TTFT)
	}
	st.MeanTTFT = ttftSum / float64(len(done))
	st.MeanLat = latSum / float64(len(done))
	return st, done, nil
}

// SyntheticTrace generates a deterministic Poisson-arrival request
// trace: exponential inter-arrival times at the given rate (requests
// per second) and geometric-ish prompt/output length jitter around the
// supplied means.
func SyntheticTrace(n int, ratePerSec float64, meanPrompt, meanOutput int, seed int64) []Request {
	if n <= 0 || ratePerSec <= 0 || meanPrompt <= 0 || meanOutput <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	t := 0.0
	for i := range reqs {
		t += rng.ExpFloat64() / ratePerSec
		jitter := func(mean int) int {
			v := int(float64(mean) * (0.5 + rng.Float64())) // uniform [0.5, 1.5)·mean
			if v < 1 {
				v = 1
			}
			return v
		}
		reqs[i] = Request{
			ID:             i,
			ArrivalSeconds: t,
			PromptLen:      jitter(meanPrompt),
			OutputLen:      jitter(meanOutput),
		}
	}
	return reqs
}
