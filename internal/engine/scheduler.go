package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"zipserv/internal/kvcache"
)

// Request is one serving request in a trace.
type Request struct {
	ID             int
	ArrivalSeconds float64
	PromptLen      int
	OutputLen      int
}

// RequestMetrics reports per-request serving quality.
type RequestMetrics struct {
	ID         int
	Arrival    float64
	Admitted   float64 // when KV capacity was granted
	FirstToken float64 // end of the request's prefill
	Finished   float64

	TTFT    float64 // time to first token (FirstToken − Arrival)
	Latency float64 // Finished − Arrival
}

// TraceStats aggregates a continuous-batching run.
type TraceStats struct {
	Requests        int
	MakespanSeconds float64
	OutputTokens    int64
	Throughput      float64 // output tokens / makespan

	MeanTTFT float64
	MaxTTFT  float64
	MeanLat  float64

	PeakConcurrency int
	DecodeSteps     int64
}

// Serve runs a continuous-batching simulation over the request trace
// (vLLM-style iteration-level scheduling, §6.5): at every decode step
// the running batch is whatever fits, arrivals are admitted as KV
// blocks free up, and finished sequences release capacity immediately.
// Admission is conservative: a request is admitted only when its full
// prompt+output KV reservation fits, so no sequence can fail mid
// flight (real vLLM admits optimistically and preempts; conservative
// reservation bounds the same capacity effect without modelling
// preemption).
func (e *Engine) Serve(reqs []Request) (TraceStats, []RequestMetrics, error) {
	var st TraceStats
	if len(reqs) == 0 {
		return st, nil, fmt.Errorf("engine: empty request trace")
	}
	pending := append([]Request(nil), reqs...)
	sort.SliceStable(pending, func(i, j int) bool {
		return pending[i].ArrivalSeconds < pending[j].ArrivalSeconds
	})
	for _, r := range pending {
		if r.PromptLen <= 0 || r.OutputLen <= 0 || r.ArrivalSeconds < 0 {
			return st, nil, fmt.Errorf("engine: request %d invalid (%+v)", r.ID, r)
		}
		if e.MaxConcurrent(r.PromptLen+r.OutputLen) == 0 {
			return st, nil, fmt.Errorf("engine: request %d (%d tokens) can never fit in KV memory",
				r.ID, r.PromptLen+r.OutputLen)
		}
	}

	mgr, err := kvcache.NewManager(kvcache.Config{
		BlockTokens: kvcache.DefaultBlockTokens,
		TotalBlocks: e.plan.Blocks,
	})
	if err != nil {
		return st, nil, err
	}

	type running struct {
		req       Request
		metrics   *RequestMetrics
		remaining int // output tokens still to produce
		ctx       int // current context length
		reserved  int // blocks reserved beyond those allocated
	}
	var (
		now            float64
		active         []*running
		done           []RequestMetrics
		nextIdx        int
		reservedBlocks int
	)
	blocksFor := func(tokens int) int {
		return (tokens + kvcache.DefaultBlockTokens - 1) / kvcache.DefaultBlockTokens
	}

	admit := func() []*running {
		var admitted []*running
		for nextIdx < len(pending) && pending[nextIdx].ArrivalSeconds <= now {
			r := pending[nextIdx]
			need := blocksFor(r.PromptLen + r.OutputLen)
			if need > mgr.FreeBlocks()-reservedBlocks {
				break // FIFO admission: do not starve the head of line
			}
			if err := mgr.Allocate(r.ID, r.PromptLen); err != nil {
				break
			}
			res := need - blocksFor(r.PromptLen)
			reservedBlocks += res
			rm := &RequestMetrics{ID: r.ID, Arrival: r.ArrivalSeconds, Admitted: now}
			admitted = append(admitted, &running{
				req: r, metrics: rm, remaining: r.OutputLen, ctx: r.PromptLen, reserved: res,
			})
			nextIdx++
		}
		return admitted
	}

	for len(done) < len(pending) {
		// Jump to the next arrival if the system is idle.
		if len(active) == 0 && nextIdx < len(pending) && pending[nextIdx].ArrivalSeconds > now {
			now = pending[nextIdx].ArrivalSeconds
		}

		// Admit and prefill new arrivals as one batch.
		if newcomers := admit(); len(newcomers) > 0 {
			maxPrompt := 0
			for _, r := range newcomers {
				if r.req.PromptLen > maxPrompt {
					maxPrompt = r.req.PromptLen
				}
			}
			now += e.PrefillTime(len(newcomers), maxPrompt)
			for _, r := range newcomers {
				r.metrics.FirstToken = now
				r.metrics.TTFT = now - r.metrics.Arrival
				r.remaining-- // the prefill emits the first token
				st.OutputTokens++
				active = append(active, r)
			}
		}
		if len(active) > st.PeakConcurrency {
			st.PeakConcurrency = len(active)
		}
		if len(active) == 0 {
			if nextIdx >= len(pending) {
				break // nothing active, nothing pending: all done
			}
			continue
		}

		// One decode step across the whole running batch.
		b := len(active)
		sumCtx := 0
		for _, r := range active {
			sumCtx += r.ctx
		}
		now += e.stepGEMMTime(b) + e.attentionTimeTotal(sumCtx) + e.otherTime() + e.allReduceTime(b)
		st.DecodeSteps++

		next := active[:0]
		for _, r := range active {
			if r.remaining > 0 {
				if err := mgr.AppendToken(r.req.ID); err != nil {
					return st, nil, fmt.Errorf("engine: reservation violated for request %d: %w", r.req.ID, err)
				}
				// Consume reservation as real blocks are claimed.
				if used := blocksFor(r.ctx + 1); used > blocksFor(r.ctx) && r.reserved > 0 {
					r.reserved--
					reservedBlocks--
				}
				r.ctx++
				r.remaining--
				st.OutputTokens++
			}
			if r.remaining == 0 {
				r.metrics.Finished = now
				r.metrics.Latency = now - r.metrics.Arrival
				done = append(done, *r.metrics)
				reservedBlocks -= r.reserved
				if err := mgr.Free(r.req.ID); err != nil {
					return st, nil, err
				}
			} else {
				next = append(next, r)
			}
		}
		active = next
	}

	if err := mgr.CheckInvariants(); err != nil {
		return st, nil, fmt.Errorf("engine: allocator corrupted after trace: %w", err)
	}
	if mgr.UsedBlocks() != 0 || reservedBlocks != 0 {
		return st, nil, fmt.Errorf("engine: %d blocks leaked, %d reservations leaked", mgr.UsedBlocks(), reservedBlocks)
	}

	sort.Slice(done, func(i, j int) bool { return done[i].ID < done[j].ID })
	st.Requests = len(done)
	st.MakespanSeconds = now
	if now > 0 {
		st.Throughput = float64(st.OutputTokens) / now
	}
	var ttftSum, latSum float64
	for _, m := range done {
		ttftSum += m.TTFT
		latSum += m.Latency
		st.MaxTTFT = math.Max(st.MaxTTFT, m.TTFT)
	}
	st.MeanTTFT = ttftSum / float64(len(done))
	st.MeanLat = latSum / float64(len(done))
	return st, done, nil
}

// attentionTimeTotal prices a decode attention sweep over a batch with
// heterogeneous context lengths (sumCtx = Σ per-sequence contexts).
func (e *Engine) attentionTimeTotal(sumCtx int) float64 {
	eff := pagedAttnEff
	if e.cfg.Backend == BackendTransformers || e.cfg.Backend == BackendDFloat11 {
		eff = eagerAttnEff
	}
	bytes := int64(sumCtx) * e.cfg.Model.KVBytesPerToken() / int64(e.cfg.NumGPUs)
	return float64(bytes)/(e.cfg.Device.MemBWGBps*1e9*eff) +
		float64(e.cfg.Model.NumLayers)*1e-6*5
}

// SyntheticTrace generates a deterministic Poisson-arrival request
// trace: exponential inter-arrival times at the given rate (requests
// per second) and geometric-ish prompt/output length jitter around the
// supplied means.
func SyntheticTrace(n int, ratePerSec float64, meanPrompt, meanOutput int, seed int64) []Request {
	if n <= 0 || ratePerSec <= 0 || meanPrompt <= 0 || meanOutput <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	t := 0.0
	for i := range reqs {
		t += rng.ExpFloat64() / ratePerSec
		jitter := func(mean int) int {
			v := int(float64(mean) * (0.5 + rng.Float64())) // uniform [0.5, 1.5)·mean
			if v < 1 {
				v = 1
			}
			return v
		}
		reqs[i] = Request{
			ID:             i,
			ArrivalSeconds: t,
			PromptLen:      jitter(meanPrompt),
			OutputLen:      jitter(meanOutput),
		}
	}
	return reqs
}
