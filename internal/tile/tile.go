// Package tile implements the three-level hierarchical tiling scheme of
// TCA-TBE (§4.2 of the paper), which partitions a weight matrix
// according to the architectural granularity of NVIDIA Tensor Cores:
//
//   - FragTile (FT): 8×8, the smallest operand fragment of the
//     mma.sync.m16n8k16 instruction. Each FragTile is the unit of
//     encoding — three 64-bit bitmaps plus value buffers.
//   - TensorCoreTile (TT): 16×16, a 2×2 grid of FragTiles stored in
//     COLUMN-MAJOR order, mirroring the Ra0–Ra3 operand register
//     layout, so no runtime coordinate transformation is needed.
//   - BlockTile (BT): 64×64, a 4×4 grid of TensorCoreTiles processed
//     cooperatively by one thread block; also the "GroupTile"
//     granularity at which value-buffer offsets are recorded.
//
// The package provides pure index arithmetic: mapping matrix
// coordinates to (blockTile, tensorCoreTile, fragTile, position) and
// back, plus the warp lane ↔ fragment-position mapping used by the
// decompressor (lane i holds positions 2i and 2i+1 of each FragTile).
package tile

import "fmt"

// Geometry constants of the hierarchy.
const (
	// FragDim is the side of a FragTile (8×8 = 64 elements, one bit
	// each in a 64-bit bitmap).
	FragDim = 8
	// FragElems is the number of elements in one FragTile.
	FragElems = FragDim * FragDim

	// TCDim is the side of a TensorCoreTile (16×16), matching the
	// m=16, k=16 operand of mma.m16n8k16.
	TCDim = 16
	// FragsPerTCSide is the number of FragTiles along one side of a
	// TensorCoreTile (2, giving a 2×2 grid).
	FragsPerTCSide = TCDim / FragDim
	// FragsPerTC is the number of FragTiles in a TensorCoreTile.
	FragsPerTC = FragsPerTCSide * FragsPerTCSide

	// BlockDim is the side of a BlockTile (64×64).
	BlockDim = 64
	// TCsPerBlockSide is the number of TensorCoreTiles along one side
	// of a BlockTile (4, giving a 4×4 grid).
	TCsPerBlockSide = BlockDim / TCDim
	// TCsPerBlock is the number of TensorCoreTiles in a BlockTile.
	TCsPerBlock = TCsPerBlockSide * TCsPerBlockSide
	// FragsPerBlock is the number of FragTiles in a BlockTile.
	FragsPerBlock = TCsPerBlock * FragsPerTC

	// WarpLanes is the number of threads in a warp; each lane decodes
	// two elements of an 8×8 FragTile (64 = 32 × 2).
	WarpLanes = 32
	// ElemsPerLane is the number of FragTile elements owned by one
	// warp lane (the .bf16x2 register pair a0, a1).
	ElemsPerLane = FragElems / WarpLanes
)

// Grid describes the tiling of an M×K matrix: the matrix is padded (by
// the encoder) up to a whole number of 64×64 BlockTiles.
type Grid struct {
	Rows, Cols int // original matrix dimensions

	BlockRows, BlockCols   int // BlockTiles per dimension
	PaddedRows, PaddedCols int
}

// NewGrid computes the tiling grid for an M×K matrix.
func NewGrid(rows, cols int) Grid {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tile: non-positive matrix dimensions %d×%d", rows, cols))
	}
	br := (rows + BlockDim - 1) / BlockDim
	bc := (cols + BlockDim - 1) / BlockDim
	return Grid{
		Rows: rows, Cols: cols,
		BlockRows: br, BlockCols: bc,
		PaddedRows: br * BlockDim, PaddedCols: bc * BlockDim,
	}
}

// NumBlocks returns the total number of BlockTiles (GroupTiles).
func (g Grid) NumBlocks() int { return g.BlockRows * g.BlockCols }

// NumFrags returns the total number of FragTiles across the padded
// matrix; each contributes exactly three 64-bit bitmaps to the
// encoding.
func (g Grid) NumFrags() int { return g.NumBlocks() * FragsPerBlock }

// Coord identifies a single element's position within the hierarchy.
type Coord struct {
	Block int // BlockTile index, row-major over the grid
	Frag  int // FragTile index within the BlockTile, in storage order
	Pos   int // element position within the FragTile, row-major 0..63
}

// fragIndexInBlock returns the storage index of the FragTile containing
// local coordinates (r, c) within a BlockTile. TensorCoreTiles are laid
// out row-major within the block; FragTiles within a TensorCoreTile are
// stored COLUMN-MAJOR (§4.2: "FragTiles within a TensorCoreTile are
// stored in column-major order, mirroring the operand register layout").
func fragIndexInBlock(r, c int) int {
	tcRow, tcCol := r/TCDim, c/TCDim
	tcIndex := tcRow*TCsPerBlockSide + tcCol
	fr, fc := (r%TCDim)/FragDim, (c%TCDim)/FragDim
	fragInTC := fc*FragsPerTCSide + fr // column-major 2×2
	return tcIndex*FragsPerTC + fragInTC
}

// fragOrigin is the inverse of fragIndexInBlock: the (row, col) of the
// FragTile's top-left element within its BlockTile.
func fragOrigin(frag int) (r, c int) {
	tcIndex, fragInTC := frag/FragsPerTC, frag%FragsPerTC
	tcRow, tcCol := tcIndex/TCsPerBlockSide, tcIndex%TCsPerBlockSide
	fc, fr := fragInTC/FragsPerTCSide, fragInTC%FragsPerTCSide // column-major
	return tcRow*TCDim + fr*FragDim, tcCol*TCDim + fc*FragDim
}

// ToCoord maps padded-matrix coordinates (r, c) to a hierarchy Coord.
// r and c may address padding (up to PaddedRows/PaddedCols).
func (g Grid) ToCoord(r, c int) Coord {
	if r < 0 || r >= g.PaddedRows || c < 0 || c >= g.PaddedCols {
		panic(fmt.Sprintf("tile: coordinate (%d,%d) outside padded %d×%d", r, c, g.PaddedRows, g.PaddedCols))
	}
	br, bc := r/BlockDim, c/BlockDim
	lr, lc := r%BlockDim, c%BlockDim
	return Coord{
		Block: br*g.BlockCols + bc,
		Frag:  fragIndexInBlock(lr, lc),
		Pos:   (lr%FragDim)*FragDim + lc%FragDim,
	}
}

// FromCoord maps a hierarchy Coord back to padded-matrix coordinates.
func (g Grid) FromCoord(co Coord) (r, c int) {
	br, bc := co.Block/g.BlockCols, co.Block%g.BlockCols
	fr, fc := fragOrigin(co.Frag)
	return br*BlockDim + fr + co.Pos/FragDim, bc*BlockDim + fc + co.Pos%FragDim
}

// GlobalFrag returns the global FragTile index of a Coord: FragTiles
// are numbered block-by-block, in storage order within each block.
// This is the index into the bitmap arrays of the encoding.
func (g Grid) GlobalFrag(co Coord) int { return co.Block*FragsPerBlock + co.Frag }

// InBounds reports whether padded coordinates (r, c) address a real
// (non-padding) element of the original matrix.
func (g Grid) InBounds(r, c int) bool { return r < g.Rows && c < g.Cols }

// LanePositions returns the two FragTile positions owned by warp lane
// l, matching the Tensor Core fragment layout where lane i's .bf16x2
// register holds positions 2i and 2i+1 (§4.3.2, Figure 7).
func LanePositions(lane int) (p0, p1 int) {
	if lane < 0 || lane >= WarpLanes {
		panic(fmt.Sprintf("tile: lane %d outside warp of %d", lane, WarpLanes))
	}
	return 2 * lane, 2*lane + 1
}

// LaneForPosition returns the warp lane that owns FragTile position p
// and which of its two register slots (0 = a0, 1 = a1) holds it.
func LaneForPosition(p int) (lane, slot int) {
	if p < 0 || p >= FragElems {
		panic(fmt.Sprintf("tile: position %d outside FragTile of %d", p, FragElems))
	}
	return p / ElemsPerLane, p % ElemsPerLane
}
