package tile

import (
	"testing"
	"testing/quick"
)

func TestGridDimensions(t *testing.T) {
	cases := []struct {
		rows, cols             int
		blockRows, blockCols   int
		paddedRows, paddedCols int
	}{
		{64, 64, 1, 1, 64, 64},
		{65, 64, 2, 1, 128, 64},
		{1, 1, 1, 1, 64, 64},
		{128, 192, 2, 3, 128, 192},
		{100, 100, 2, 2, 128, 128},
		{4096, 4096, 64, 64, 4096, 4096},
	}
	for _, c := range cases {
		g := NewGrid(c.rows, c.cols)
		if g.BlockRows != c.blockRows || g.BlockCols != c.blockCols ||
			g.PaddedRows != c.paddedRows || g.PaddedCols != c.paddedCols {
			t.Errorf("NewGrid(%d,%d) = %+v, want blocks %dx%d padded %dx%d",
				c.rows, c.cols, g, c.blockRows, c.blockCols, c.paddedRows, c.paddedCols)
		}
	}
}

func TestGridCounts(t *testing.T) {
	g := NewGrid(128, 64)
	if g.NumBlocks() != 2 {
		t.Errorf("NumBlocks = %d, want 2", g.NumBlocks())
	}
	// 64 FragTiles per 64×64 BlockTile (8×8 grid of 8×8 tiles).
	if FragsPerBlock != 64 {
		t.Fatalf("FragsPerBlock = %d, want 64", FragsPerBlock)
	}
	if g.NumFrags() != 128 {
		t.Errorf("NumFrags = %d, want 128", g.NumFrags())
	}
}

func TestNewGridPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on zero dimension")
		}
	}()
	NewGrid(0, 64)
}

func TestCoordRoundTripExhaustiveSmall(t *testing.T) {
	// Every padded coordinate of a 2×3-block grid must round-trip
	// through the hierarchy mapping, and the mapping must be a
	// bijection (each Coord seen exactly once).
	g := NewGrid(100, 150) // pads to 128×192
	seen := make(map[Coord]bool)
	for r := 0; r < g.PaddedRows; r++ {
		for c := 0; c < g.PaddedCols; c++ {
			co := g.ToCoord(r, c)
			if co.Block < 0 || co.Block >= g.NumBlocks() {
				t.Fatalf("(%d,%d): block %d out of range", r, c, co.Block)
			}
			if co.Frag < 0 || co.Frag >= FragsPerBlock {
				t.Fatalf("(%d,%d): frag %d out of range", r, c, co.Frag)
			}
			if co.Pos < 0 || co.Pos >= FragElems {
				t.Fatalf("(%d,%d): pos %d out of range", r, c, co.Pos)
			}
			if seen[co] {
				t.Fatalf("(%d,%d): coord %+v already used — not a bijection", r, c, co)
			}
			seen[co] = true
			br, bc := g.FromCoord(co)
			if br != r || bc != c {
				t.Fatalf("(%d,%d) → %+v → (%d,%d): round trip failed", r, c, co, br, bc)
			}
		}
	}
	if len(seen) != g.PaddedRows*g.PaddedCols {
		t.Fatalf("saw %d distinct coords, want %d", len(seen), g.PaddedRows*g.PaddedCols)
	}
}

func TestFragColumnMajorWithinTensorCoreTile(t *testing.T) {
	// Within a 16×16 TensorCoreTile the four 8×8 FragTiles are stored
	// column-major: (row 0, col 0) → frag 0; (row 8, col 0) → frag 1;
	// (row 0, col 8) → frag 2; (row 8, col 8) → frag 3. This mirrors
	// the Ra0–Ra3 register operand order of mma.m16n8k16.
	g := NewGrid(64, 64)
	wants := []struct{ r, c, frag int }{
		{0, 0, 0},
		{8, 0, 1},
		{0, 8, 2},
		{8, 8, 3},
	}
	for _, w := range wants {
		co := g.ToCoord(w.r, w.c)
		if co.Frag != w.frag {
			t.Errorf("ToCoord(%d,%d).Frag = %d, want %d (column-major frag order)", w.r, w.c, co.Frag, w.frag)
		}
	}
	// Second TensorCoreTile along the row starts at frag 4.
	if co := g.ToCoord(0, 16); co.Frag != 4 {
		t.Errorf("ToCoord(0,16).Frag = %d, want 4", co.Frag)
	}
	// Second TensorCoreTile row starts at frag 16 (4 TCs × 4 frags).
	if co := g.ToCoord(16, 0); co.Frag != 16 {
		t.Errorf("ToCoord(16,0).Frag = %d, want 16", co.Frag)
	}
}

func TestPositionRowMajorWithinFrag(t *testing.T) {
	g := NewGrid(64, 64)
	if co := g.ToCoord(0, 0); co.Pos != 0 {
		t.Errorf("pos(0,0) = %d, want 0", co.Pos)
	}
	if co := g.ToCoord(0, 7); co.Pos != 7 {
		t.Errorf("pos(0,7) = %d, want 7", co.Pos)
	}
	if co := g.ToCoord(1, 0); co.Pos != 8 {
		t.Errorf("pos(1,0) = %d, want 8", co.Pos)
	}
	if co := g.ToCoord(7, 7); co.Pos != 63 {
		t.Errorf("pos(7,7) = %d, want 63", co.Pos)
	}
}

func TestGlobalFrag(t *testing.T) {
	g := NewGrid(128, 128)  // 2×2 blocks
	co := g.ToCoord(64, 64) // block (1,1) = block index 3
	if co.Block != 3 {
		t.Fatalf("block = %d, want 3", co.Block)
	}
	if got := g.GlobalFrag(co); got != 3*FragsPerBlock {
		t.Errorf("GlobalFrag = %d, want %d", got, 3*FragsPerBlock)
	}
}

func TestInBounds(t *testing.T) {
	g := NewGrid(100, 150)
	if !g.InBounds(99, 149) {
		t.Error("last real element reported out of bounds")
	}
	if g.InBounds(100, 0) || g.InBounds(0, 150) {
		t.Error("padding reported in bounds")
	}
}

func TestLaneMapping(t *testing.T) {
	// Lane i owns positions 2i, 2i+1 (Figure 7: thread 19 ↔ bit 38).
	p0, p1 := LanePositions(19)
	if p0 != 38 || p1 != 39 {
		t.Errorf("LanePositions(19) = %d,%d, want 38,39", p0, p1)
	}
	lane, slot := LaneForPosition(38)
	if lane != 19 || slot != 0 {
		t.Errorf("LaneForPosition(38) = lane %d slot %d, want 19/0", lane, slot)
	}
	lane, slot = LaneForPosition(13)
	if lane != 6 || slot != 1 {
		t.Errorf("LaneForPosition(13) = lane %d slot %d, want 6/1", lane, slot)
	}
	// The lane mapping must partition all 64 positions.
	covered := make([]bool, FragElems)
	for l := 0; l < WarpLanes; l++ {
		a, b := LanePositions(l)
		if covered[a] || covered[b] {
			t.Fatalf("lane %d re-covers a position", l)
		}
		covered[a], covered[b] = true, true
	}
	for p, ok := range covered {
		if !ok {
			t.Fatalf("position %d not covered by any lane", p)
		}
	}
}

func TestLanePanics(t *testing.T) {
	for _, f := range []func(){
		func() { LanePositions(-1) },
		func() { LanePositions(32) },
		func() { LaneForPosition(-1) },
		func() { LaneForPosition(64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range lane/position")
				}
			}()
			f()
		}()
	}
}

func TestQuickCoordRoundTrip(t *testing.T) {
	// Property: for arbitrary grids and in-range coordinates, the
	// hierarchy mapping round-trips.
	f := func(rows, cols, r, c uint16) bool {
		rw := int(rows%500) + 1
		cl := int(cols%500) + 1
		g := NewGrid(rw, cl)
		rr := int(r) % g.PaddedRows
		cc := int(c) % g.PaddedCols
		co := g.ToCoord(rr, cc)
		br, bc := g.FromCoord(co)
		return br == rr && bc == cc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
