package huffman

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, data []byte, chunk int) *Stream {
	t.Helper()
	s, err := Encode(data, chunk)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := s.Decode()
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(data, got) {
		t.Fatalf("round trip failed: %d in, %d out", len(data), len(got))
	}
	return s
}

func TestRoundTripBasic(t *testing.T) {
	roundTrip(t, []byte("the quick brown fox jumps over the lazy dog"), 0)
}

func TestRoundTripSingleSymbol(t *testing.T) {
	s := roundTrip(t, bytes.Repeat([]byte{42}, 1000), 0)
	// Single-symbol alphabets get a 1-bit code: 1000 bits ≈ 125 bytes.
	if len(s.Bits) != 125 {
		t.Errorf("bitstream is %d bytes, want 125", len(s.Bits))
	}
}

func TestRoundTripSingleByte(t *testing.T) {
	roundTrip(t, []byte{7}, 0)
}

func TestRoundTripAllByteValues(t *testing.T) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	roundTrip(t, data, 0)
}

func TestEncodeEmptyFails(t *testing.T) {
	if _, err := Encode(nil, 0); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestSkewedDistributionCompresses(t *testing.T) {
	// An exponent-like distribution (few dominant symbols) must
	// compress well below 8 bits/symbol.
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 100000)
	for i := range data {
		// ~N(124, 1.3) over bytes: entropy ≈ 2.6 bits like §3.1.
		data[i] = byte(124 + int(rng.NormFloat64()*1.3))
	}
	s := roundTrip(t, data, 0)
	bitsPerSym := float64(len(s.Bits)) * 8 / float64(len(data))
	if bitsPerSym > 3.2 {
		t.Errorf("skewed stream uses %.2f bits/symbol, want < 3.2", bitsPerSym)
	}
	// Huffman is within 1 bit of entropy.
	ent := entropy(data)
	if bitsPerSym < ent {
		t.Errorf("%.3f bits/symbol beats entropy %.3f — impossible for a prefix code", bitsPerSym, ent)
	}
	if bitsPerSym > ent+1 {
		t.Errorf("%.3f bits/symbol exceeds entropy+1 (%.3f)", bitsPerSym, ent+1)
	}
}

func TestUniformDataDoesNotCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 50000)
	rng.Read(data)
	s := roundTrip(t, data, 0)
	bitsPerSym := float64(len(s.Bits)) * 8 / float64(len(data))
	if bitsPerSym < 7.9 {
		t.Errorf("uniform bytes compressed to %.2f bits/symbol — too good", bitsPerSym)
	}
}

func TestChunkedDecodeMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(120 + rng.Intn(8))
	}
	s := roundTrip(t, data, 1024)
	if s.NumChunks() != 10 {
		t.Fatalf("NumChunks = %d, want 10", s.NumChunks())
	}
	var reassembled []byte
	for i := 0; i < s.NumChunks(); i++ {
		chunk, err := s.DecodeChunk(i)
		if err != nil {
			t.Fatalf("DecodeChunk(%d): %v", i, err)
		}
		reassembled = append(reassembled, chunk...)
	}
	if !bytes.Equal(data, reassembled) {
		t.Error("chunk-parallel decode does not reassemble the stream")
	}
	// Last chunk is short (10000 % 1024 = 784).
	last, err := s.DecodeChunk(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(last) != 10000-9*1024 {
		t.Errorf("last chunk has %d symbols, want %d", len(last), 10000-9*1024)
	}
}

func TestDecodeChunkOutOfRange(t *testing.T) {
	s := roundTrip(t, []byte("hello world"), 4)
	if _, err := s.DecodeChunk(-1); err == nil {
		t.Error("negative chunk accepted")
	}
	if _, err := s.DecodeChunk(s.NumChunks()); err == nil {
		t.Error("out-of-range chunk accepted")
	}
}

func TestDecodeTruncatedBitstreamFails(t *testing.T) {
	data := bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 100)
	s, err := Encode(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Bits = s.Bits[:len(s.Bits)/2]
	if _, err := s.Decode(); err == nil {
		t.Error("truncated bitstream decoded without error")
	}
}

func TestDecodeCorruptedTableFails(t *testing.T) {
	data := bytes.Repeat([]byte{9, 9, 9, 5, 5, 1}, 50)
	s, err := Encode(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Injecting many short codes violates the Kraft inequality.
	for i := 0; i < 8; i++ {
		s.CodeLens[200+i] = 1
	}
	if _, err := s.Decode(); err == nil {
		t.Error("Kraft-violating table accepted")
	}
}

func TestSizeBytesAccountsMetadata(t *testing.T) {
	data := bytes.Repeat([]byte{1, 2}, 5000)
	s, err := Encode(data, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := len(s.Bits) + 256 + 8*s.NumChunks() + 16
	if s.SizeBytes() != want {
		t.Errorf("SizeBytes = %d, want %d", s.SizeBytes(), want)
	}
}

func TestExpectedBitsMatchesStream(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(rng.Intn(16))
	}
	s, err := Encode(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	exp := s.ExpectedBits(data)
	actual := uint64(len(s.Bits)) * 8
	if actual < exp || actual > exp+8 {
		t.Errorf("bitstream %d bits, expected-bits model says %d", actual, exp)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte, chunkSel uint8) bool {
		if len(data) == 0 {
			return true
		}
		chunk := int(chunkSel)%2000 + 1
		s, err := Encode(data, chunk)
		if err != nil {
			return false
		}
		got, err := s.Decode()
		return err == nil && bytes.Equal(data, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func entropy(data []byte) float64 {
	var freq [256]float64
	for _, b := range data {
		freq[b]++
	}
	n := float64(len(data))
	var h float64
	for _, f := range freq {
		if f > 0 {
			p := f / n
			h -= p * math.Log2(p)
		}
	}
	return h
}
