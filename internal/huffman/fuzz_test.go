package huffman

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip checks bit-exactness of encode→decode for arbitrary
// inputs and chunk sizes.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("hello hello hello"), uint16(4))
	f.Add([]byte{0}, uint16(1))
	f.Add(bytes.Repeat([]byte{1, 2, 3}, 100), uint16(7))
	// Degenerate corners: empty input (skipped by the guard), one
	// symbol, and a long all-identical-symbol run (degenerate tree).
	f.Add([]byte{}, uint16(8))
	f.Add([]byte{42}, uint16(0))
	f.Add(bytes.Repeat([]byte{5}, 1024), uint16(100))
	f.Fuzz(func(t *testing.T, data []byte, chunkSel uint16) {
		if len(data) == 0 {
			return
		}
		chunk := int(chunkSel)%4096 + 1
		s, err := Encode(data, chunk)
		if err != nil {
			t.Fatalf("Encode rejected valid input: %v", err)
		}
		got, err := s.Decode()
		if err != nil {
			t.Fatalf("Decode failed on fresh stream: %v", err)
		}
		if !bytes.Equal(data, got) {
			t.Fatal("round trip not bit-exact")
		}
	})
}

// FuzzDecodeRobustness mutates encoded streams: Decode must never
// panic, and must never silently return data longer than declared.
func FuzzDecodeRobustness(f *testing.F) {
	base, err := Encode([]byte("the quick brown fox jumps over the lazy dog"), 8)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(base.Bits, 44, uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, bits []byte, numSymbols int, lensIdx, lensVal uint8) {
		if numSymbols <= 0 || numSymbols > 1<<16 {
			return
		}
		s := &Stream{
			CodeLens:     base.CodeLens,
			Bits:         bits,
			ChunkBitOff:  []uint64{0},
			ChunkSymbols: numSymbols,
			NumSymbols:   numSymbols,
		}
		s.CodeLens[lensIdx] = lensVal % (MaxCodeLen + 2)
		got, err := s.Decode()
		if err == nil && len(got) != numSymbols {
			t.Fatalf("Decode returned %d symbols, declared %d", len(got), numSymbols)
		}
	})
}
