// Package huffman implements canonical Huffman coding over byte
// streams, the entropy coder behind the DFloat11 baseline (§3.2 of the
// ZipServ paper). The encoder produces a chunked, variable-length
// bitstream with per-chunk offset metadata — the "bitstream
// partitioning" stage the paper identifies as overhead ❶ — and the
// decoder performs the sequential, data-dependent symbol walk that
// constitutes overheads ❷ (table lookups) and ❸ (pointer advancement).
//
// The implementation is a complete, lossless entropy coder in its own
// right; ZipServ uses it both as a comparison baseline and to verify
// that TCA-TBE's fixed-length design loses almost nothing in
// compression ratio against a true entropy code.
package huffman

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
)

// MaxCodeLen caps Huffman code lengths so codes fit comfortably in a
// 64-bit decode buffer. Frequencies are rescaled if the optimal tree
// is deeper (only possible with pathological, near-Fibonacci
// distributions).
const MaxCodeLen = 32

// DefaultChunkSymbols is the number of symbols per independently
// decodable chunk, mirroring DFloat11's partitioning granularity.
const DefaultChunkSymbols = 8192

// Stream is a Huffman-encoded byte stream.
type Stream struct {
	// CodeLens holds the canonical code length of each byte symbol
	// (0 = symbol absent). This is the only table the decoder needs.
	CodeLens [256]uint8

	// Bits is the concatenated bitstream, MSB-first within each byte.
	Bits []byte

	// ChunkBitOff[i] is the bit offset where chunk i starts; chunks
	// contain ChunkSymbols symbols each except the last. This is the
	// metadata that lets a parallel decoder seat one thread per chunk
	// (DFloat11 stage ❶).
	ChunkBitOff []uint64

	// ChunkSymbols is the per-chunk symbol count used at encode time.
	ChunkSymbols int

	// NumSymbols is the total number of encoded symbols.
	NumSymbols int
}

// SizeBytes returns the serialized footprint: bitstream, code-length
// table and chunk metadata.
func (s *Stream) SizeBytes() int {
	return len(s.Bits) + 256 + 8*len(s.ChunkBitOff) + 16
}

// Encode compresses data with chunk granularity chunkSymbols
// (DefaultChunkSymbols if <= 0).
func Encode(data []byte, chunkSymbols int) (*Stream, error) {
	if chunkSymbols <= 0 {
		chunkSymbols = DefaultChunkSymbols
	}
	if len(data) == 0 {
		return nil, errors.New("huffman: cannot encode empty input")
	}

	var freq [256]int64
	for _, b := range data {
		freq[b]++
	}
	lens := buildCodeLengths(freq)
	codes := canonicalCodes(lens)

	s := &Stream{CodeLens: lens, ChunkSymbols: chunkSymbols, NumSymbols: len(data)}
	var bw bitWriter
	for i, b := range data {
		if i%chunkSymbols == 0 {
			s.ChunkBitOff = append(s.ChunkBitOff, bw.bitLen())
		}
		bw.write(codes[b], uint(lens[b]))
	}
	s.Bits = bw.bytes()
	return s, nil
}

// Decode reconstructs the original byte stream. The walk is inherently
// sequential within a chunk: each symbol's length is known only after
// its table lookup completes, which is the GPU-hostile property §3.2
// describes.
func (s *Stream) Decode() ([]byte, error) {
	if s.NumSymbols == 0 {
		return nil, errors.New("huffman: empty stream")
	}
	dec, err := newDecoder(s.CodeLens)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, s.NumSymbols)
	br := bitReader{data: s.Bits}
	for i := 0; i < s.NumSymbols; i++ {
		sym, err := dec.next(&br)
		if err != nil {
			return nil, fmt.Errorf("huffman: symbol %d: %w", i, err)
		}
		out = append(out, sym)
	}
	return out, nil
}

// DecodeChunk decodes chunk i independently, as a parallel GPU thread
// would: it seeks to the chunk's bit offset and walks its symbols.
func (s *Stream) DecodeChunk(i int) ([]byte, error) {
	if i < 0 || i >= len(s.ChunkBitOff) {
		return nil, fmt.Errorf("huffman: chunk %d out of range [0,%d)", i, len(s.ChunkBitOff))
	}
	dec, err := newDecoder(s.CodeLens)
	if err != nil {
		return nil, err
	}
	count := s.ChunkSymbols
	if rem := s.NumSymbols - i*s.ChunkSymbols; rem < count {
		count = rem
	}
	out := make([]byte, 0, count)
	br := bitReader{data: s.Bits, pos: s.ChunkBitOff[i]}
	for j := 0; j < count; j++ {
		sym, err := dec.next(&br)
		if err != nil {
			return nil, fmt.Errorf("huffman: chunk %d symbol %d: %w", i, j, err)
		}
		out = append(out, sym)
	}
	return out, nil
}

// NumChunks returns the number of independently decodable chunks.
func (s *Stream) NumChunks() int { return len(s.ChunkBitOff) }

// ExpectedBits returns the information-theoretic size of the encoded
// symbols under the stream's code (sum of freq × len), in bits. Used
// by the compression-ratio analyses.
func (s *Stream) ExpectedBits(data []byte) uint64 {
	var total uint64
	for _, b := range data {
		total += uint64(s.CodeLens[b])
	}
	return total
}

// buildCodeLengths computes Huffman code lengths for the given
// frequency table, rescaling if the tree exceeds MaxCodeLen.
func buildCodeLengths(freq [256]int64) [256]uint8 {
	f := freq
	for {
		lens, maxLen := huffmanLengths(f)
		if maxLen <= MaxCodeLen {
			return lens
		}
		// Flatten the distribution and retry (standard depth-limiting
		// fallback; strictly suboptimal but always terminates because
		// the distribution converges to uniform).
		for i := range f {
			if f[i] > 0 {
				f[i] = (f[i] + 1) / 2
			}
		}
	}
}

type node struct {
	freq        int64
	sym         int // -1 for internal
	left, right *node
	order       int // tie-break for determinism
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].order < h[j].order
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any     { old := *h; n := old[len(old)-1]; *h = old[:len(old)-1]; return n }

func huffmanLengths(freq [256]int64) (lens [256]uint8, maxLen int) {
	h := &nodeHeap{}
	order := 0
	for s, f := range freq {
		if f > 0 {
			heap.Push(h, &node{freq: f, sym: s, order: order})
			order++
		}
	}
	if h.Len() == 1 {
		// Single distinct symbol: assign it a 1-bit code.
		lens[(*h)[0].sym] = 1
		return lens, 1
	}
	for h.Len() > 1 {
		a := heap.Pop(h).(*node)
		b := heap.Pop(h).(*node)
		heap.Push(h, &node{freq: a.freq + b.freq, sym: -1, left: a, right: b, order: order})
		order++
	}
	root := heap.Pop(h).(*node)
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if n.sym >= 0 {
			lens[n.sym] = uint8(depth)
			if depth > maxLen {
				maxLen = depth
			}
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lens, maxLen
}

// canonicalCodes assigns canonical codes (shorter codes first,
// ascending symbol order within a length).
func canonicalCodes(lens [256]uint8) [256]uint64 {
	type sl struct {
		sym int
		ln  uint8
	}
	var present []sl
	for s, l := range lens {
		if l > 0 {
			present = append(present, sl{s, l})
		}
	}
	sort.Slice(present, func(i, j int) bool {
		if present[i].ln != present[j].ln {
			return present[i].ln < present[j].ln
		}
		return present[i].sym < present[j].sym
	})
	var codes [256]uint64
	code := uint64(0)
	prevLen := uint8(0)
	for _, e := range present {
		code <<= e.ln - prevLen
		codes[e.sym] = code
		code++
		prevLen = e.ln
	}
	return codes
}

// decoder performs canonical Huffman decoding via first-code tables
// (the hierarchical LUT structure of DFloat11 stage ❷).
type decoder struct {
	firstCode [MaxCodeLen + 1]uint64
	firstIdx  [MaxCodeLen + 1]int
	count     [MaxCodeLen + 1]int
	syms      []byte
	maxLen    uint8
}

func newDecoder(lens [256]uint8) (*decoder, error) {
	d := &decoder{}
	for s := 0; s < 256; s++ {
		l := lens[s]
		if l > MaxCodeLen {
			return nil, fmt.Errorf("huffman: code length %d exceeds max %d", l, MaxCodeLen)
		}
		if l > 0 {
			d.count[l]++
			if l > d.maxLen {
				d.maxLen = l
			}
		}
	}
	if d.maxLen == 0 {
		return nil, errors.New("huffman: no symbols in code table")
	}
	// Kraft inequality check guards against corrupted tables.
	var kraft uint64
	for l := 1; l <= int(d.maxLen); l++ {
		kraft += uint64(d.count[l]) << (uint(d.maxLen) - uint(l))
	}
	if kraft > 1<<uint(d.maxLen) {
		return nil, errors.New("huffman: code table violates Kraft inequality")
	}
	code := uint64(0)
	idx := 0
	for l := 1; l <= int(d.maxLen); l++ {
		code <<= 1
		d.firstCode[l] = code
		d.firstIdx[l] = idx
		code += uint64(d.count[l])
		idx += d.count[l]
	}
	d.syms = make([]byte, idx)
	// Symbols in canonical order: by length, then value.
	pos := d.firstIdx
	for s := 0; s < 256; s++ {
		if l := lens[s]; l > 0 {
			d.syms[pos[l]] = byte(s)
			pos[l]++
		}
	}
	return d, nil
}

// next reads one symbol: it lengthens the code bit by bit until it
// falls inside a length class — the data-dependent loop that serialises
// GPU threads (§3.2 ❷❸).
func (d *decoder) next(br *bitReader) (byte, error) {
	code := uint64(0)
	for l := 1; l <= int(d.maxLen); l++ {
		b, err := br.readBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint64(b)
		if d.count[l] > 0 && code-d.firstCode[l] < uint64(d.count[l]) {
			return d.syms[d.firstIdx[l]+int(code-d.firstCode[l])], nil
		}
	}
	return 0, errors.New("invalid code")
}

// bitWriter emits an MSB-first bitstream.
type bitWriter struct {
	buf  []byte
	cur  uint8
	nCur uint
}

func (w *bitWriter) write(code uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.cur = w.cur<<1 | uint8(code>>uint(i)&1)
		w.nCur++
		if w.nCur == 8 {
			w.buf = append(w.buf, w.cur)
			w.cur, w.nCur = 0, 0
		}
	}
}

func (w *bitWriter) bitLen() uint64 { return uint64(len(w.buf))*8 + uint64(w.nCur) }

func (w *bitWriter) bytes() []byte {
	out := w.buf
	if w.nCur > 0 {
		out = append(out, w.cur<<(8-w.nCur))
	}
	return out
}

// bitReader consumes an MSB-first bitstream from an arbitrary offset.
type bitReader struct {
	data []byte
	pos  uint64 // bit position
}

func (r *bitReader) readBit() (uint8, error) {
	byteIdx := r.pos >> 3
	if byteIdx >= uint64(len(r.data)) {
		return 0, errors.New("bitstream exhausted")
	}
	bit := r.data[byteIdx] >> (7 - r.pos&7) & 1
	r.pos++
	return bit, nil
}
