// Package benchfmt parses `go test -bench -benchmem` output and
// compares benchmark snapshots — the machinery behind the repo's
// BENCH_<pr>.json perf-regression trajectory: CI re-runs the scheduler
// benchmarks, diffs them against the checked-in snapshot from the
// previous PR, warns on wall-time regressions (cross-machine ns/op is
// noisy, so it never gates) and fails the build when a gated
// benchmark's allocs/op — deterministic enough to gate — regresses.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark's full name including sub-benchmarks
	// (BenchmarkLiveSharedPrefix/cached), with the -GOMAXPROCS suffix
	// stripped so snapshots from different machines compare.
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`  // -1 when -benchmem was off
	AllocsPerOp int64   `json:"allocs_per_op"` // -1 when -benchmem was off
}

// benchLine matches e.g.
//
//	BenchmarkStepperDecodeHeavy-8   4936   249973 ns/op   200832 B/op   42 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// Parse extracts benchmark results from `go test -bench` output,
// ignoring the surrounding goos/pkg/PASS chatter.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: bad ns/op in %q: %w", sc.Text(), err)
		}
		res := Result{Name: m[1], NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1}
		if m[3] != "" {
			if res.BytesPerOp, err = strconv.ParseInt(m[3], 10, 64); err != nil {
				return nil, fmt.Errorf("benchfmt: bad B/op in %q: %w", sc.Text(), err)
			}
		}
		if m[4] != "" {
			if res.AllocsPerOp, err = strconv.ParseInt(m[4], 10, 64); err != nil {
				return nil, fmt.Errorf("benchfmt: bad allocs/op in %q: %w", sc.Text(), err)
			}
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchfmt: no benchmark lines found")
	}
	return out, nil
}

// Delta is one benchmark present in both snapshots.
type Delta struct {
	Name                 string
	OldNs, NewNs         float64
	OldAllocs, NewAllocs int64 // -1 when either side lacks -benchmem
}

// NsChangePct returns the ns/op change in percent (positive = slower).
func (d Delta) NsChangePct() float64 {
	if d.OldNs == 0 {
		return 0
	}
	return (d.NewNs - d.OldNs) / d.OldNs * 100
}

// AllocsChangePct returns the allocs/op change in percent (positive =
// more allocations); 0 when either side lacks allocation data.
func (d Delta) AllocsChangePct() float64 {
	if d.OldAllocs <= 0 || d.NewAllocs < 0 {
		return 0
	}
	return float64(d.NewAllocs-d.OldAllocs) / float64(d.OldAllocs) * 100
}

// Compare matches results by name and returns the deltas in the new
// snapshot's order. Benchmarks present on only one side are skipped —
// a renamed or added benchmark is not a regression.
func Compare(old, new []Result) []Delta {
	byName := make(map[string]Result, len(old))
	for _, r := range old {
		byName[r.Name] = r
	}
	var out []Delta
	for _, n := range new {
		o, ok := byName[n.Name]
		if !ok {
			continue
		}
		out = append(out, Delta{
			Name:  n.Name,
			OldNs: o.NsPerOp, NewNs: n.NsPerOp,
			OldAllocs: o.AllocsPerOp, NewAllocs: n.AllocsPerOp,
		})
	}
	return out
}

// Snapshot is the BENCH_<pr>.json document: the benchmark results plus
// the compare-mode CSV summaries keyed by section name, each row a
// column→value map.
type Snapshot struct {
	Commit     string                         `json:"commit,omitempty"`
	Benchmarks []Result                       `json:"benchmarks"`
	Compares   map[string][]map[string]string `json:"compares,omitempty"`
}

// ParseCompareCSV turns one compare-mode CSV export into snapshot rows.
func ParseCompareCSV(r io.Reader) ([]map[string]string, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("benchfmt: empty CSV")
	}
	cols := strings.Split(strings.TrimSpace(sc.Text()), ",")
	var rows []map[string]string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cells := strings.Split(line, ",")
		if len(cells) != len(cols) {
			return nil, fmt.Errorf("benchfmt: CSV row has %d cells for %d columns", len(cells), len(cols))
		}
		row := make(map[string]string, len(cols))
		for i, c := range cols {
			row[c] = cells[i]
		}
		rows = append(rows, row)
	}
	return rows, sc.Err()
}

// DecodeSnapshot reads a snapshot JSON document.
func DecodeSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("benchfmt: %w", err)
	}
	return s, nil
}

// EncodeSnapshot writes a snapshot as indented JSON.
func EncodeSnapshot(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
