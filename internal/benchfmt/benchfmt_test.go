package benchfmt

import (
	"bytes"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: zipserv/internal/engine
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkStepperSharedPrefixUncached 	    3853	    284954 ns/op	  200275 B/op	      37 allocs/op
BenchmarkStepperDecodeHeavy          	    4578	    250993 ns/op	  200832 B/op	      42 allocs/op
BenchmarkLiveSharedPrefix/uncached-8         	    8908	    131060 ns/op	  118573 B/op	     154 allocs/op
BenchmarkLiveSharedPrefix/cached-8           	    6478	    182335.5 ns/op
PASS
ok  	zipserv/internal/engine	3.446s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(got), got)
	}
	if got[1].Name != "BenchmarkStepperDecodeHeavy" || got[1].NsPerOp != 250993 ||
		got[1].BytesPerOp != 200832 || got[1].AllocsPerOp != 42 {
		t.Errorf("DecodeHeavy parsed as %+v", got[1])
	}
	if got[2].Name != "BenchmarkLiveSharedPrefix/uncached" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", got[2].Name)
	}
	if got[3].NsPerOp != 182335.5 || got[3].AllocsPerOp != -1 || got[3].BytesPerOp != -1 {
		t.Errorf("benchmem-less line parsed as %+v", got[3])
	}
	if _, err := Parse(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestCompare(t *testing.T) {
	old := []Result{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 170},
		{Name: "BenchmarkGone", NsPerOp: 50, AllocsPerOp: 5},
	}
	new := []Result{
		{Name: "BenchmarkA", NsPerOp: 130, AllocsPerOp: 42},
		{Name: "BenchmarkNew", NsPerOp: 10, AllocsPerOp: 1},
	}
	deltas := Compare(old, new)
	if len(deltas) != 1 {
		t.Fatalf("compared %d benchmarks, want the 1 shared one: %+v", len(deltas), deltas)
	}
	d := deltas[0]
	if pct := d.NsChangePct(); pct != 30 {
		t.Errorf("ns change %v%%, want 30", pct)
	}
	if pct := d.AllocsChangePct(); pct > -75.2 || pct < -75.4 {
		t.Errorf("allocs change %v%%, want about -75.3", pct)
	}
	missing := Delta{OldAllocs: -1, NewAllocs: 42}
	if missing.AllocsChangePct() != 0 {
		t.Errorf("missing old allocs should yield 0%% change")
	}
}

func TestSnapshotRoundTripWithCSV(t *testing.T) {
	rows, err := ParseCompareCSV(strings.NewReader(
		"mode,decode_tpot_p99_s\nstatic-64,0.031849\nadaptive,0.030877\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1]["mode"] != "adaptive" || rows[1]["decode_tpot_p99_s"] != "0.030877" {
		t.Fatalf("CSV rows %+v", rows)
	}
	if _, err := ParseCompareCSV(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged CSV accepted")
	}

	snap := Snapshot{
		Commit:     "abc123",
		Benchmarks: []Result{{Name: "BenchmarkA", NsPerOp: 1, BytesPerOp: 2, AllocsPerOp: 3}},
		Compares:   map[string][]map[string]string{"adaptive": rows},
	}
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Commit != snap.Commit || len(back.Benchmarks) != 1 ||
		back.Benchmarks[0] != snap.Benchmarks[0] ||
		back.Compares["adaptive"][0]["mode"] != "static-64" {
		t.Errorf("round trip mangled the snapshot: %+v", back)
	}
}
