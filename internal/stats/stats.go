// Package stats implements the exponent-distribution analyses of the
// ZipServ paper: the empirical measurements of §3.1 (skew, entropy,
// top-k coverage, contiguity), the codeword-length trade-off model of
// §4.2 (AverageBits), and the theory of Appendix A (the erf law for
// Gaussian weights and its unimodality, which implies top-k
// contiguity).
package stats

import (
	"math"

	"zipserv/internal/bf16"
)

// Histogram counts occurrences of each raw 8-bit exponent value.
type Histogram [256]int64

// ExponentHistogram tallies the exponent field of every element of m.
func ExponentHistogram(m *bf16.Matrix) Histogram {
	var h Histogram
	for _, w := range m.Data {
		h[w.Exponent()]++
	}
	return h
}

// Add accumulates other into h (for aggregating across layers).
func (h *Histogram) Add(other Histogram) {
	for i := range h {
		h[i] += other[i]
	}
}

// Total returns the number of counted elements.
func (h Histogram) Total() int64 {
	var t int64
	for _, c := range h {
		t += c
	}
	return t
}

// Entropy returns the Shannon entropy of the exponent distribution in
// bits. The paper reports 2.57–2.74 bits for contemporary LLMs (§3.1).
func (h Histogram) Entropy() float64 {
	total := float64(h.Total())
	if total == 0 {
		return 0
	}
	var e float64
	for _, c := range h {
		if c > 0 {
			p := float64(c) / total
			e -= p * math.Log2(p)
		}
	}
	return e
}

// TopKCoverage returns the fraction of elements whose exponent is one
// of the k most frequent values (§3.1: top-3 > 67%, top-7 > 95%).
func (h Histogram) TopKCoverage(k int) float64 {
	total := h.Total()
	if total == 0 || k <= 0 {
		return 0
	}
	sorted := make([]int64, len(h))
	copy(sorted, h[:])
	// Select the k largest by partial sort (256 entries: full sort is fine).
	for i := 0; i < k && i < len(sorted); i++ {
		maxIdx := i
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] > sorted[maxIdx] {
				maxIdx = j
			}
		}
		sorted[i], sorted[maxIdx] = sorted[maxIdx], sorted[i]
	}
	var sum int64
	for i := 0; i < k && i < len(sorted); i++ {
		sum += sorted[i]
	}
	return float64(sum) / float64(total)
}

// BestWindowCoverage returns the coverage of the best contiguous
// window of width k — the quantity TCA-TBE actually exploits (§3.1
// reports 97.1% average for k=7).
func (h Histogram) BestWindowCoverage(k int) float64 {
	total := h.Total()
	if total == 0 || k <= 0 {
		return 0
	}
	var sum int64
	for i := 0; i < k && i < 256; i++ {
		sum += h[i]
	}
	best := sum
	for s := 1; s+k <= 256; s++ {
		sum += h[s+k-1] - h[s-1]
		if sum > best {
			best = sum
		}
	}
	return float64(best) / float64(total)
}

// TopKIsContiguous reports whether the k most frequent exponents form
// a numerically contiguous run (§3.1: true for 99.6% of 3,875
// matrices). Ties are broken toward lower exponent values, matching
// the deterministic selection used elsewhere.
func (h Histogram) TopKIsContiguous(k int) bool {
	if k <= 0 || k > 256 {
		return false
	}
	type ec struct {
		e int
		n int64
	}
	entries := make([]ec, 256)
	for i := range entries {
		entries[i] = ec{i, h[i]}
	}
	// Partial selection of the k largest.
	for i := 0; i < k; i++ {
		maxIdx := i
		for j := i + 1; j < len(entries); j++ {
			if entries[j].n > entries[maxIdx].n ||
				(entries[j].n == entries[maxIdx].n && entries[j].e < entries[maxIdx].e) {
				maxIdx = j
			}
		}
		entries[i], entries[maxIdx] = entries[maxIdx], entries[i]
	}
	lo, hi := entries[0].e, entries[0].e
	for i := 1; i < k; i++ {
		if entries[i].e < lo {
			lo = entries[i].e
		}
		if entries[i].e > hi {
			hi = entries[i].e
		}
	}
	return hi-lo == k-1
}

// TheoreticalRatio returns the information-theoretic lossless
// compression ratio for BF16 given the exponent entropy: 16 bits vs
// (1 sign + 7 mantissa + H(exponent)) bits. §3.1 derives ≈1.51× from
// H ≈ 2.6.
func (h Histogram) TheoreticalRatio() float64 {
	return 16 / (8 + h.Entropy())
}

// AverageBits returns the expected per-element storage of an n-bit
// codeword scheme given coverage rn of the top 2^n−1 exponents:
//
//	rn·(n+8) + (1−rn)·(n+16)
//
// (§4.2 "The Choice of Codeword Length": 11.3 bits for n=3 vs 12.4 for
// n=2 and 12.1 for n=4.)
func AverageBits(n int, rn float64) float64 {
	return rn*float64(n+8) + (1-rn)*float64(n+16)
}

// CodewordCoverage returns rn for an n-bit codeword: the best
// contiguous-window coverage of width 2^n−1.
func (h Histogram) CodewordCoverage(n int) float64 {
	return h.BestWindowCoverage(1<<n - 1)
}

// GaussianExponentLaw returns the probability of each raw exponent
// value for weights drawn from N(0, σ²), per Appendix A:
//
//	P(E = e) = erf(2^(x+1)/(σ√2)) − erf(2^x/(σ√2)),  x = e − 127
//
// Exponent 0 (zero + subnormals) absorbs all mass below 2^−126, and
// exponent 254 absorbs the (negligible) upper tail; exponent 255
// (Inf/NaN) has probability 0 for finite Gaussian draws.
func GaussianExponentLaw(sigma float64) [256]float64 {
	var p [256]float64
	if sigma <= 0 {
		p[0] = 1
		return p
	}
	cdf := func(x float64) float64 { // P(|w| < x)
		return math.Erf(x / (sigma * math.Sqrt2))
	}
	// Mass below the smallest normal magnitude 2^-126.
	p[0] = cdf(math.Ldexp(1, -126))
	for e := 1; e <= 254; e++ {
		x := e - 127
		lo := math.Ldexp(1, x)
		hi := math.Ldexp(1, x+1)
		p[e] = cdf(hi) - cdf(lo)
	}
	// Fold the tail above 2^128 into the top finite exponent.
	p[254] += 1 - cdf(math.Ldexp(1, 128))
	return p
}

// IsUnimodal reports whether the positive support of dist rises to a
// single peak and then falls (Theorem A.1 claims this for the
// Gaussian exponent law). Plateaus are tolerated.
func IsUnimodal(dist []float64) bool {
	const eps = 1e-15
	// Trim zero tails.
	lo, hi := 0, len(dist)-1
	for lo <= hi && dist[lo] <= eps {
		lo++
	}
	for hi >= lo && dist[hi] <= eps {
		hi--
	}
	if lo >= hi {
		return true
	}
	rising := true
	for i := lo + 1; i <= hi; i++ {
		if dist[i] > dist[i-1]+eps {
			if !rising {
				return false // rose again after falling
			}
		} else if dist[i] < dist[i-1]-eps {
			rising = false
		}
	}
	return true
}

// ExpectedEntropy returns the Shannon entropy (bits) of a probability
// distribution.
func ExpectedEntropy(dist []float64) float64 {
	var e float64
	for _, p := range dist {
		if p > 0 {
			e -= p * math.Log2(p)
		}
	}
	return e
}

// ExpectedWindowCoverage returns the maximal probability mass covered
// by a contiguous window of width k under dist.
func ExpectedWindowCoverage(dist []float64, k int) float64 {
	if k <= 0 || len(dist) == 0 {
		return 0
	}
	if k > len(dist) {
		k = len(dist)
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += dist[i]
	}
	best := sum
	for s := 1; s+k <= len(dist); s++ {
		sum += dist[s+k-1] - dist[s-1]
		if sum > best {
			best = sum
		}
	}
	return best
}
