package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"zipserv/internal/bf16"
)

func gaussianMatrix(t testing.TB, n int, sigma float64, seed int64) *bf16.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := bf16.NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = bf16.FromFloat32(float32(rng.NormFloat64() * sigma))
	}
	return m
}

func TestHistogramBasics(t *testing.T) {
	m := bf16.NewMatrix(2, 2)
	m.Data[0] = bf16.FromFloat32(1)   // exponent 127
	m.Data[1] = bf16.FromFloat32(2)   // exponent 128
	m.Data[2] = bf16.FromFloat32(0.5) // exponent 126
	m.Data[3] = bf16.FromFloat32(1.5) // exponent 127
	h := ExponentHistogram(m)
	if h.Total() != 4 {
		t.Errorf("Total = %d, want 4", h.Total())
	}
	if h[127] != 2 || h[128] != 1 || h[126] != 1 {
		t.Errorf("histogram = {126:%d 127:%d 128:%d}", h[126], h[127], h[128])
	}
	var other Histogram
	other[127] = 10
	h.Add(other)
	if h[127] != 12 {
		t.Errorf("after Add, h[127] = %d, want 12", h[127])
	}
}

func TestEntropyBounds(t *testing.T) {
	var uniform Histogram
	for i := range uniform {
		uniform[i] = 7
	}
	if e := uniform.Entropy(); math.Abs(e-8) > 1e-9 {
		t.Errorf("uniform entropy = %f, want 8", e)
	}
	var point Histogram
	point[100] = 1000
	if e := point.Entropy(); e != 0 {
		t.Errorf("point-mass entropy = %f, want 0", e)
	}
	var empty Histogram
	if e := empty.Entropy(); e != 0 {
		t.Errorf("empty entropy = %f, want 0", e)
	}
}

func TestGaussianMatchesPaperSection31(t *testing.T) {
	// §3.1 on real LLMs: entropy 2.57–2.74 bits, top-3 > 67%,
	// top-7 > 95%, window-7 coverage ≈ 97.1%, theoretical ratio ≈ 1.51.
	// Appendix A says these follow from Gaussian weights, so our
	// synthetic weights must land in (a slightly widened version of)
	// the same bands.
	h := ExponentHistogram(gaussianMatrix(t, 512, 0.02, 1))
	if e := h.Entropy(); e < 2.4 || e > 2.9 {
		t.Errorf("entropy %.3f outside [2.4, 2.9]", e)
	}
	if c := h.TopKCoverage(3); c < 0.60 {
		t.Errorf("top-3 coverage %.3f < 0.60", c)
	}
	if c := h.TopKCoverage(7); c < 0.95 {
		t.Errorf("top-7 coverage %.3f < 0.95", c)
	}
	if c := h.BestWindowCoverage(7); c < 0.95 {
		t.Errorf("window-7 coverage %.3f < 0.95", c)
	}
	if r := h.TheoreticalRatio(); r < 1.45 || r > 1.60 {
		t.Errorf("theoretical ratio %.3f outside [1.45, 1.60]", r)
	}
	if !h.TopKIsContiguous(7) {
		t.Error("top-7 exponents of Gaussian weights are not contiguous")
	}
}

func TestTopKIsContiguousNegativeCase(t *testing.T) {
	var h Histogram
	h[100], h[101], h[150] = 50, 40, 45 // top-3 split across a gap
	if h.TopKIsContiguous(3) {
		t.Error("gap histogram reported contiguous")
	}
	// Top-2 is {100, 150}: split across a gap, so non-contiguous too.
	if h.TopKIsContiguous(2) {
		t.Error("top-2 {100,150} reported contiguous")
	}
}

func TestTopKIsContiguousEdgeCases(t *testing.T) {
	var h Histogram
	h[5] = 1
	if !h.TopKIsContiguous(1) {
		t.Error("k=1 is always contiguous")
	}
	if h.TopKIsContiguous(0) || h.TopKIsContiguous(300) {
		t.Error("out-of-range k must report false")
	}
}

func TestBestWindowCoverageVsTopK(t *testing.T) {
	// Window coverage can never exceed top-k coverage (the window is a
	// constrained selection).
	h := ExponentHistogram(gaussianMatrix(t, 256, 0.05, 3))
	for _, k := range []int{1, 3, 7, 15} {
		topk := h.TopKCoverage(k)
		win := h.BestWindowCoverage(k)
		if win > topk+1e-12 {
			t.Errorf("k=%d: window %.6f > top-k %.6f", k, win, topk)
		}
	}
}

func TestAverageBitsMatchesPaper(t *testing.T) {
	// §4.2 with the paper's measured coverages: r3 ≈ 0.96 → 11.3 bits;
	// the 2- and 4-bit alternatives are worse (12.4 and 12.1).
	b3 := AverageBits(3, 0.9625)
	if math.Abs(b3-11.3) > 0.1 {
		t.Errorf("AverageBits(3, .9625) = %.2f, want ≈11.3", b3)
	}
	// r2 is top-3 coverage (§3.1: "top-3 > 67%", ≈0.70) and r4 is
	// top-15 coverage (≈0.9875): back-solved from the paper's 12.4 and
	// 12.1 bit results.
	b2 := AverageBits(2, 0.70)
	if math.Abs(b2-12.4) > 0.2 {
		t.Errorf("AverageBits(2, .70) = %.2f, want ≈12.4", b2)
	}
	b4 := AverageBits(4, 0.9875)
	if math.Abs(b4-12.1) > 0.2 {
		t.Errorf("AverageBits(4, .9875) = %.2f, want ≈12.1", b4)
	}
	if !(b3 < b4 && b4 < b2) {
		t.Errorf("ordering violated: b3=%.2f b4=%.2f b2=%.2f (want b3<b4<b2)", b3, b4, b2)
	}
}

func TestCodewordCoverageMeasured(t *testing.T) {
	// Measured coverages on Gaussian weights must reproduce the
	// paper's choice: n=3 minimises AverageBits.
	h := ExponentHistogram(gaussianMatrix(t, 512, 0.02, 5))
	best := 0
	bestBits := math.Inf(1)
	for n := 2; n <= 4; n++ {
		bits := AverageBits(n, h.CodewordCoverage(n))
		if bits < bestBits {
			bestBits, best = bits, n
		}
	}
	if best != 3 {
		t.Errorf("optimal codeword length on Gaussian weights = %d, paper chooses 3", best)
	}
}

func TestGaussianExponentLawIsDistribution(t *testing.T) {
	for _, sigma := range []float64{1e-4, 0.01, 0.02, 0.1, 1, 100} {
		p := GaussianExponentLaw(sigma)
		sum := 0.0
		for _, v := range p {
			if v < 0 {
				t.Fatalf("σ=%g: negative probability", sigma)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("σ=%g: law sums to %.12f", sigma, sum)
		}
		if p[255] != 0 {
			t.Errorf("σ=%g: finite Gaussian assigns mass to Inf/NaN exponent", sigma)
		}
	}
	// σ=0 degenerates to point mass at zero.
	p := GaussianExponentLaw(0)
	if p[0] != 1 {
		t.Error("σ=0 law is not a point mass at exponent 0")
	}
}

func TestTheoremA1Unimodality(t *testing.T) {
	// Theorem A.1: the law is unimodal for every σ.
	for _, sigma := range []float64{1e-6, 1e-3, 0.02, 0.5, 3, 1e4} {
		p := GaussianExponentLaw(sigma)
		if !IsUnimodal(p[:]) {
			t.Errorf("σ=%g: Gaussian exponent law is not unimodal", sigma)
		}
	}
}

func TestTheoremA2ContiguityFollowsFromUnimodality(t *testing.T) {
	// Theorem A.2: for a unimodal law the top-k set is contiguous.
	// Verify on sampled histograms from the law.
	for _, sigma := range []float64{0.01, 0.02, 0.05} {
		p := GaussianExponentLaw(sigma)
		var h Histogram
		for e := range h {
			h[e] = int64(p[e] * 1e9)
		}
		for _, k := range []int{3, 7} {
			if !h.TopKIsContiguous(k) {
				t.Errorf("σ=%g k=%d: top-k of the theoretical law not contiguous", sigma, k)
			}
		}
	}
}

func TestLawPredictsEmpiricalHistogram(t *testing.T) {
	// The empirical exponent histogram of Gaussian draws must match
	// the erf law: compare entropy and window coverage.
	sigma := 0.02
	h := ExponentHistogram(gaussianMatrix(t, 512, sigma, 7))
	p := GaussianExponentLaw(sigma)
	if d := math.Abs(h.Entropy() - ExpectedEntropy(p[:])); d > 0.1 {
		t.Errorf("entropy gap empirical vs law = %.3f bits", d)
	}
	empCov := h.BestWindowCoverage(7)
	lawCov := ExpectedWindowCoverage(p[:], 7)
	if d := math.Abs(empCov - lawCov); d > 0.02 {
		t.Errorf("window coverage gap %.4f (empirical %.4f, law %.4f)", d, empCov, lawCov)
	}
}

func TestIsUnimodalCases(t *testing.T) {
	cases := []struct {
		name string
		dist []float64
		want bool
	}{
		{"rising", []float64{1, 2, 3}, true},
		{"falling", []float64{3, 2, 1}, true},
		{"peak", []float64{1, 3, 2}, true},
		{"valley", []float64{3, 1, 2}, false},
		{"plateau", []float64{1, 2, 2, 1}, true},
		{"bimodal", []float64{1, 3, 1, 3, 1}, false},
		{"zeroPadded", []float64{0, 0, 1, 2, 1, 0}, true},
		{"empty", nil, true},
		{"single", []float64{5}, true},
	}
	for _, c := range cases {
		if got := IsUnimodal(c.dist); got != c.want {
			t.Errorf("%s: IsUnimodal = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestQuickUnimodalImpliesContiguous(t *testing.T) {
	// Property (Theorem A.2 in general form): any unimodal histogram
	// has contiguous top-k for all k. Generate unimodal histograms by
	// construction.
	f := func(peak uint8, leftLen, rightLen uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		p := int(peak)
		// Strictly decreasing from the peak outward ⇒ unimodal with
		// unique values ⇒ top-k must be contiguous for every k.
		val := int64(1 << 40)
		h[p] = val
		left := p - int(leftLen%40) - 1
		right := p + int(rightLen%40) + 1
		lv, rv := val, val
		for i := p - 1; i >= left && i >= 0; i-- {
			lv = lv/2 - int64(rng.Intn(100)) - 1
			if lv <= 0 {
				break
			}
			h[i] = lv
		}
		for i := p + 1; i <= right && i < 256; i++ {
			rv = rv/3 - int64(rng.Intn(100)) - 1
			if rv <= 0 {
				break
			}
			h[i] = rv
		}
		nonZero := 0
		for _, c := range h {
			if c > 0 {
				nonZero++
			}
		}
		for k := 1; k <= nonZero; k++ {
			if !h.TopKIsContiguous(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
