package serve

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan(`
# a fleet-wide chaos scenario
seed 42
crash replica=1 at=0.5
slow replica=0 at=0 factor=8 for=2.5
hang replica=2 at=1            # trailing comment
codecfail replica=1 at=2
drophandoff replica=0 at=1.5
stalestats replica=1 at=1 for=2
`)
	if err != nil {
		t.Fatal(err)
	}
	want := &FaultPlan{Seed: 42, Events: []FaultEvent{
		{Kind: FaultCrash, Replica: 1, At: 0.5},
		{Kind: FaultSlow, Replica: 0, At: 0, Factor: 8, For: 2.5},
		{Kind: FaultHang, Replica: 2, At: 1},
		{Kind: FaultCodecFail, Replica: 1, At: 2},
		{Kind: FaultDropHandoff, Replica: 0, At: 1.5},
		{Kind: FaultStaleStats, Replica: 1, At: 1, For: 2},
	}}
	if !reflect.DeepEqual(plan, want) {
		t.Errorf("parsed plan\n%+v\nwant\n%+v", plan, want)
	}
	if got := plan.MaxReplica(); got != 2 {
		t.Errorf("MaxReplica = %d, want 2", got)
	}
}

func TestParseFaultPlanErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"unknown kind", "explode replica=0 at=1"},
		{"unknown key", "crash replica=0 at=1 when=2"},
		{"missing replica", "crash at=1"},
		{"negative replica", "crash replica=-1 at=1"},
		{"duplicate key", "crash replica=0 replica=1"},
		{"duplicate seed", "seed 1\nseed 2"},
		{"bad seed", "seed forty-two"},
		{"seed arity", "seed 1 2"},
		{"bare word", "crash replica"},
		{"bad at", "crash replica=0 at=never"},
		{"negative at", "crash replica=0 at=-1"},
		{"infinite at", "crash replica=0 at=+Inf"},
		{"nan at", "crash replica=0 at=NaN"},
		{"factor on crash", "crash replica=0 at=1 factor=2"},
		{"zero factor", "slow replica=0 at=1 factor=0"},
		{"negative factor", "slow replica=0 at=1 factor=-2"},
		{"missing factor", "slow replica=0 at=1"},
		{"for on crash", "crash replica=0 at=1 for=2"},
		{"for on drophandoff", "drophandoff replica=0 at=1 for=2"},
		{"negative for", "stalestats replica=0 at=1 for=-2"},
	}
	for _, tc := range cases {
		if _, err := ParseFaultPlan(tc.text); err == nil {
			t.Errorf("%s: %q accepted, want error", tc.name, tc.text)
		}
	}
}

func TestFaultPlanStringRoundTrip(t *testing.T) {
	const text = "seed 7\nslow replica=0 at=0.125 factor=3 for=1.5\ncrash replica=1 at=2\n"
	plan, err := ParseFaultPlan(text)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.String(); got != text {
		t.Errorf("String() = %q, want canonical %q", got, text)
	}
	again, err := ParseFaultPlan(plan.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan, again) {
		t.Errorf("round trip drifted:\n%+v\nvs\n%+v", plan, again)
	}
}

func TestRandomFaultPlanDeterministic(t *testing.T) {
	a := RandomFaultPlan(99, 8, 4)
	b := RandomFaultPlan(99, 8, 4)
	if !reflect.DeepEqual(a, b) {
		t.Error("same (seed, n, horizon) produced different plans")
	}
	if len(a.Events) == 0 {
		t.Fatal("8-replica random plan scripted no faults")
	}
	if a.MaxReplica() >= 8 {
		t.Errorf("event addresses replica %d, fleet has 8", a.MaxReplica())
	}
	c := RandomFaultPlan(100, 8, 4)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Error("different seeds produced identical plans")
	}
	// The generated plan must survive its own serialisation.
	back, err := ParseFaultPlan(a.String())
	if err != nil {
		t.Fatalf("generated plan does not parse: %v", err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Error("generated plan does not round-trip")
	}
	if got := RandomFaultPlan(99, 0, 4); len(got.Events) != 0 {
		t.Error("zero-replica plan has events")
	}
}

func TestReplicaFaultsProjection(t *testing.T) {
	plan, err := ParseFaultPlan(`
slow replica=0 at=1 factor=2 for=2
slow replica=0 at=2 factor=3 for=2
codecfail replica=0 at=5 for=1
stalestats replica=0 at=7
drophandoff replica=0 at=3
drophandoff replica=0 at=4
crash replica=1 at=9
hang replica=2 at=6
`)
	if err != nil {
		t.Fatal(err)
	}

	f := plan.Replica(0)
	if f == nil {
		t.Fatal("replica 0 has events but projected nil")
	}
	if plan.Replica(3) != nil {
		t.Error("replica 3 has no events but projected non-nil")
	}
	if f.crashedAt(1e9) || f.hungAt(1e9) {
		t.Error("replica 0 crashes or hangs without a directive")
	}

	// Overlapping slow windows multiply; outside every window the
	// factor is 1.
	for _, tc := range []struct {
		now, want float64
	}{{0, 1}, {1, 2}, {2, 6}, {2.9, 6}, {3, 3}, {3.9, 3}, {4, 1}} {
		if got := f.slowFactorAt(tc.now); got != tc.want {
			t.Errorf("slowFactorAt(%v) = %v, want %v", tc.now, got, tc.want)
		}
	}

	// Bounded codec window [5, 6); unbounded stale window from 7.
	if f.codecFailingAt(4.9) || !f.codecFailingAt(5) || f.codecFailingAt(6) {
		t.Error("codec window [5,6) misevaluated")
	}
	if f.statsStaleAt(6.9) || !f.statsStaleAt(7) || !f.statsStaleAt(1e9) {
		t.Error("unbounded stale window misevaluated")
	}

	// Drops are one-shot, in time order.
	if f.takeDrop(2.9) {
		t.Error("drop taken before its trigger time")
	}
	if !f.takeDrop(3.5) {
		t.Error("first due drop not taken")
	}
	if f.takeDrop(3.5) {
		t.Error("second drop (due at 4) taken at 3.5")
	}
	if !f.takeDrop(4) {
		t.Error("second drop not taken at its trigger")
	}
	if f.takeDrop(1e9) {
		t.Error("exhausted drops still firing")
	}

	if c1 := plan.Replica(1); !c1.crashedAt(9) || c1.crashedAt(8.9) {
		t.Error("crash trigger misevaluated")
	}
	if c2 := plan.Replica(2); !c2.hungAt(6) || c2.hungAt(5.9) {
		t.Error("hang trigger misevaluated")
	}

	// Nil-safety: every query must work on a fault-free replica.
	var none *ReplicaFaults
	if none.active() || none.crashedAt(0) || none.hungAt(0) ||
		none.codecFailingAt(0) || none.statsStaleAt(0) || none.takeDrop(0) {
		t.Error("nil ReplicaFaults reports faults")
	}
	if got := none.slowFactorAt(0); got != 1 {
		t.Errorf("nil slowFactorAt = %v, want 1", got)
	}
	if math.IsInf(f.crashAt, 1) != true {
		t.Error("unscripted crashAt not +Inf")
	}
}

// FuzzFaultPlan pins the parser's total behaviour: any input either
// errors or yields a plan whose canonical String re-parses to an
// identical plan (and a fixed-point string). CI runs a short smoke,
// the nightly job digs deeper.
func FuzzFaultPlan(f *testing.F) {
	f.Add("seed 42\ncrash replica=1 at=0.5\nslow replica=0 at=0 factor=8 for=2.5\n")
	f.Add("hang replica=2 at=1\ncodecfail replica=1 at=2 for=3\n")
	f.Add("drophandoff replica=0 at=1.5\nstalestats replica=1 at=1 for=2\n")
	f.Add("# only a comment\n\nseed -9000\n")
	f.Add("slow replica=3 at=1e-3 factor=1.0000001\n")
	f.Add(RandomFaultPlan(1, 16, 10).String())
	f.Fuzz(func(t *testing.T, text string) {
		plan, err := ParseFaultPlan(text)
		if err != nil {
			if plan != nil {
				t.Fatal("error with non-nil plan")
			}
			return
		}
		canon := plan.String()
		again, err := ParseFaultPlan(canon)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", canon, err)
		}
		if !reflect.DeepEqual(plan, again) {
			t.Fatalf("round trip drifted for %q:\n%+v\nvs\n%+v", text, plan, again)
		}
		if canon2 := again.String(); canon2 != canon {
			t.Fatalf("String not a fixed point: %q then %q", canon, canon2)
		}
		// Projection must never panic, whatever the plan says.
		for i := -1; i <= plan.MaxReplica(); i++ {
			rf := plan.Replica(i)
			for _, now := range []float64{0, 0.5, math.Inf(1)} {
				rf.crashedAt(now)
				rf.hungAt(now)
				rf.slowFactorAt(now)
				rf.codecFailingAt(now)
				rf.statsStaleAt(now)
			}
		}
		_ = strings.Count(canon, "\n")
	})
}
