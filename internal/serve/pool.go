package serve

import (
	"fmt"
	"sync/atomic"

	"zipserv/internal/engine"
)

// Disaggregated prefill/decode serving (docs/disaggregation.md): a
// pooled router partitions replicas by Config.Pool, submits every
// request to the prefill (or mixed) tier, and each prefill replica —
// the moment a prompt produces its first token — exports the
// mid-generation sequence through the TCA-TBE codec and hands the
// compressed KV to the least-loaded decode replica, which imports it
// (deduplicating prompt blocks against its own prefix trie) and decodes
// it to completion. Failure handling is two-sided: a dead or full
// decode replica makes the dispatch try the next one and, when none
// accepts, the prefill replica thaws the export back into its own
// stepper and serves co-located; dead prefill replicas drop out of the
// submit tier's ranking, spilling submissions to the decode replicas,
// which serve them co-located.
//
// Each replica's scheduler runs on the bitmap-scoreboard core
// (scoreboard.go), so per-replica queue depth is a burst-absorption
// knob, not a scan-cost one: a pool member can hold tens of thousands
// of queued requests without its admission loop slowing the tier.

// handoff couples a mid-generation sequence export with the call owning
// the request's event and result channels. The replica that imports it
// owns the call and finishes it.
type handoff struct {
	exp *engine.SequenceExport
	c   *call
}

// NewPooledRouter builds a disaggregated router over pool-labelled
// servers: replicas configured PoolPrefill or PoolMixed (or unlabelled)
// form the submit tier, PoolDecode replicas receive handoffs and back
// the submit tier up when every preferred replica rejects. All servers
// are rewired to one shared request-id counter, so the fleet must be
// assembled before anything is started or submitted. A fleet with
// prefill replicas needs at least one decode replica; an all-decode
// fleet serves co-located.
func NewPooledRouter(servers ...*Server) (*Router, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("serve: pooled router needs at least one server")
	}
	var (
		backends = make([]Backend, len(servers))
		submit   []Backend
		fallback []Backend
		prefills []*Server
		decodes  []*Server
	)
	for i, sv := range servers {
		if sv == nil {
			return nil, fmt.Errorf("serve: pooled router server %d is nil", i)
		}
		backends[i] = sv
		switch sv.cfg.Pool {
		case PoolPrefill:
			submit = append(submit, sv)
			prefills = append(prefills, sv)
		case PoolDecode:
			fallback = append(fallback, sv)
			decodes = append(decodes, sv)
		default:
			submit = append(submit, sv)
		}
	}
	if len(prefills) > 0 && len(decodes) == 0 {
		return nil, fmt.Errorf("serve: a prefill pool needs at least one decode replica")
	}
	if len(submit) == 0 {
		submit, fallback = fallback, nil // all-decode fleet: co-located
	}
	// One id source across the fleet: a sequence keeps its id across a
	// prefill→decode handoff, so ids minted by different replicas must
	// never collide.
	ids := new(atomic.Int64)
	for _, sv := range servers {
		sv.ids = ids
	}
	r := &Router{replicas: backends, submitTier: submit, fallbackTier: fallback}
	for _, p := range prefills {
		p.handoffFn = r.dispatchHandoff(decodes)
	}
	return r, nil
}

// dispatchHandoff builds the prefill replicas' export-dispatch hook:
// it offers an export to the decode replicas least-loaded first — or,
// when the router has affinity enabled, to the decode replica whose
// prefix-trie digest best overlaps the sequence's prompt (the import
// dedups prompt blocks against the target's trie, so a matching target
// both shrinks the effective transfer and seeds future submissions'
// affinity). Acceptance only queues the handoff — the import happens on
// the target's scheduler goroutine — so a target that dies after
// accepting still serves it through its drain path. When every replica
// rejects (stopped or full) the error sends the caller down its
// co-located fallback.
func (r *Router) dispatchHandoff(decodes []*Server) func(*handoff) error {
	targets := make([]Backend, len(decodes))
	for i, d := range decodes {
		targets[i] = d
	}
	return func(h *handoff) error {
		// Health-aware: ejected decode replicas drop out of the handoff
		// candidate set (they will lose the sequence again); breaker
		// state advances on each accept/refusal so a dead decode replica
		// ejects even when it sees only handoff traffic.
		ranked, preferred := r.rankForRequest(r.liveCandidates(targets), Request{
			Prompt:    h.exp.Req.Prompt,
			PromptLen: h.exp.Req.PromptLen,
			OutputLen: h.exp.Req.OutputLen,
		})
		err := fmt.Errorf("serve: no decode replica accepted the handoff")
		for _, b := range ranked {
			if e := b.(*Server).acceptHandoff(h); e == nil {
				r.noteSubmitOK(b)
				r.noteDispatch(b, preferred)
				return nil
			} else {
				r.noteSubmitErr(b, e)
				err = e
			}
		}
		return err
	}
}

// PoolAggregate groups per-replica snapshots by pool role and folds
// each group with the router's aggregation — the "pools" breakdown of a
// routed /v1/stats. Unlabelled replicas fold under "mixed".
func PoolAggregate(per []Stats) map[string]Stats {
	groups := make(map[string][]Stats)
	for _, st := range per {
		name := st.Pool
		if name == "" {
			name = string(PoolMixed)
		}
		groups[name] = append(groups[name], st)
	}
	out := make(map[string]Stats, len(groups))
	for name, g := range groups {
		out[name] = aggregateStats(g)
	}
	return out
}
