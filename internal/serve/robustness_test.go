package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"zipserv/internal/engine"
)

// mustPlan parses a fault plan or fails the test.
func mustPlan(t *testing.T, text string) *FaultPlan {
	t.Helper()
	plan, err := ParseFaultPlan(text)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// makeCall hand-assembles a call the way Server.Submit does — the
// fixture for resurrection tests that need the call object itself.
func makeCall(s *Server, promptLen, outputLen int) *call {
	id := int(s.ids.Add(1))
	c := &call{
		req: engine.Request{
			ID: id, ArrivalSeconds: ArrivalNow,
			PromptLen: promptLen, OutputLen: outputLen,
		},
		clientID:  id,
		class:     ClassInteractive,
		submitted: time.Now(),
		events:    make(chan Event, 8),
		result:    make(chan Result, 1),
	}
	c.ticket = Ticket{ID: c.clientID, events: c.events, result: c.result}
	return c
}

// TestRouterCountsAllClientVisibleRejections pins the Submit accounting
// fix: every failure a router returns to the caller must count in
// Stats.Rejected — the all-stopped and never-fits paths included, not
// just the queue-full fast failure.
func TestRouterCountsAllClientVisibleRejections(t *testing.T) {
	r, _ := newTestRouter(t, 2, 4)

	// Never-fits: no replica could ever admit it.
	if _, err := r.Submit(Request{PromptLen: 10, OutputLen: 100_000_000}); !errors.Is(err, ErrNeverFits) {
		t.Fatalf("impossible request: err = %v, want ErrNeverFits", err)
	}
	if got := r.Stats().Rejected; got != 1 {
		t.Errorf("Rejected after never-fits = %d, want 1", got)
	}

	// All-stopped: every replica refuses with ErrStopped.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(Request{PromptLen: 64, OutputLen: 8}); !errors.Is(err, ErrStopped) {
		t.Fatalf("all-stopped submit: err = %v, want ErrStopped", err)
	}
	if got := r.Stats().Rejected; got != 2 {
		t.Errorf("Rejected after all-stopped = %d, want 2", got)
	}
}

// TestStopExpiredContextForceFailsDrain pins the force-fail Stop
// contract: a context that is already expired must not abandon the
// drain silently — the scheduler promptly fails every undelivered
// request, counts them in Stats.Failed, and Stop returns ctx.Err()
// only after that accounting has landed. Run under -race in CI.
func TestStopExpiredContextForceFailsDrain(t *testing.T) {
	// TimeScale 1 paces the loop at wall speed: the long decodes below
	// cannot complete before Stop lands.
	s := newServer(t, Config{QueueDepth: 8, TimeScale: 1})
	s.Start()

	const n = 4
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tk, err := s.Submit(Request{PromptLen: 512, OutputLen: 2048})
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	time.Sleep(50 * time.Millisecond) // let admission pick some up

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired on entry
	start := time.Now()
	if err := s.Stop(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Stop(expired) = %v, want context.Canceled", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("force-fail Stop took %v, want prompt", waited)
	}

	for i, tk := range tickets {
		res := awaitResult(t, tk)
		if !errors.Is(res.Err, ErrStopped) {
			t.Errorf("request %d: err = %v, want ErrStopped (drain deadline)", i, res.Err)
		}
	}
	if got := s.Stats().Failed; got != n {
		t.Errorf("Stats.Failed = %d, want %d: force-failed requests must be counted", got, n)
	}
}

// TestCrashFailsLostRequestsWithoutHealth: a scripted crash on a
// standalone replica (no health router) fails every held request to
// the client and counts the loss.
func TestCrashFailsLostRequestsWithoutHealth(t *testing.T) {
	plan := mustPlan(t, "crash replica=0 at=0\n")
	s := newServer(t, Config{QueueDepth: 8, Faults: plan.Replica(0)})

	const n = 3
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tk, err := s.Submit(Request{PromptLen: 256, OutputLen: 32})
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	s.Start() // crash triggers at virtual 0, before any work

	for i, tk := range tickets {
		if res := awaitResult(t, tk); !errors.Is(res.Err, ErrStopped) {
			t.Errorf("request %d: err = %v, want ErrStopped (crash)", i, res.Err)
		}
	}
	st := s.Stats()
	if st.LostRequests != n || st.Failed != n {
		t.Errorf("lost/failed = %d/%d, want %d/%d", st.LostRequests, st.Failed, n, n)
	}
	if _, err := s.Submit(Request{PromptLen: 64, OutputLen: 8}); !errors.Is(err, ErrStopped) {
		t.Errorf("post-crash submit: err = %v, want ErrStopped", err)
	}
}

// TestCrashResurrectionEndToEnd is the tentpole's core promise: with
// health-aware routing on, a replica crash loses no requests — the
// doomed replica's whole queue resurrects on the survivor and every
// client sees a normal result, flagged Resurrected.
func TestCrashResurrectionEndToEnd(t *testing.T) {
	plan := mustPlan(t, "crash replica=0 at=0\n")
	const n = 8
	doomed := newServer(t, Config{QueueDepth: n, Faults: plan.Replica(0)})
	survivor := newServer(t, Config{QueueDepth: n})
	r, err := NewRouter(doomed, survivor)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnableHealth(HealthConfig{RetryBudget: 3}); err != nil {
		t.Fatal(err)
	}

	// Load the doomed replica before the fleet starts: everything it
	// holds dies with it at virtual time 0.
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tk, err := doomed.Submit(Request{PromptLen: 256, OutputLen: 16})
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	r.Start()

	for i, tk := range tickets {
		res := awaitResult(t, tk)
		if res.Err != nil {
			t.Fatalf("request %d failed despite resurrection: %v", i, res.Err)
		}
		if res.Resurrected != 1 {
			t.Errorf("request %d: Resurrected = %d, want 1", i, res.Resurrected)
		}
	}
	agg := r.Stats()
	if agg.Completed != n || agg.Failed != 0 {
		t.Errorf("completed/failed = %d/%d, want %d/0", agg.Completed, agg.Failed, n)
	}
	if agg.LostRequests != n || agg.Resurrections != n {
		t.Errorf("lost/resurrections = %d/%d, want %d/%d", agg.LostRequests, agg.Resurrections, n, n)
	}
	if !agg.HealthEnabled {
		t.Error("aggregate does not report health routing enabled")
	}
}

// TestResurrectionDuplicateIdempotence pins the duplicate-delivery
// guard: a resurrected request whose original copy delivered late must
// produce exactly one terminal result and count Completed exactly once
// — the CAS claim decides, whoever wins.
func TestResurrectionDuplicateIdempotence(t *testing.T) {
	origin := newServer(t, Config{QueueDepth: 4})
	rescuer := newServer(t, Config{QueueDepth: 4})
	r, err := NewRouter(origin, rescuer)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnableHealth(HealthConfig{RetryBudget: 2}); err != nil {
		t.Fatal(err)
	}
	r.Start()

	// A lost call resurrects on the rescuer and completes there.
	c := makeCall(origin, 128, 8)
	r.resurrect(origin, []*call{c})
	res := awaitResult(t, &c.ticket)
	if res.Err != nil {
		t.Fatalf("resurrected call failed: %v", res.Err)
	}
	if res.Resurrected != 1 {
		t.Errorf("Resurrected = %d, want 1", res.Resurrected)
	}
	// The original owner limps back and tries to deliver its copy: the
	// claim must lose, so it neither counts nor delivers.
	if c.claim() {
		t.Error("late duplicate won the claim after delivery")
	}
	// Exactly one terminal event reached the (now closed) stream.
	finished := 0
	for ev := range c.ticket.Events() {
		if ev.Type == EventFinished {
			finished++
		}
	}
	if finished != 1 {
		t.Errorf("terminal events = %d, want exactly 1", finished)
	}
	if len(c.result) != 0 {
		t.Error("a second result is buffered: duplicate delivery")
	}
	waitStats(t, func() bool { return rescuer.Stats().Completed == 1 })
	if got := r.Stats().Completed; got != 1 {
		t.Errorf("fleet Completed = %d, want 1", got)
	}
	if got := r.Stats().Resurrections; got != 1 {
		t.Errorf("Resurrections = %d, want 1", got)
	}

	// A call whose original already delivered must not resurrect at all.
	c2 := makeCall(origin, 128, 8)
	c2.finish(Result{OutputLen: 8})
	r.resurrect(origin, []*call{c2})
	if got := r.Stats().Resurrections; got != 1 {
		t.Errorf("already-delivered call resurrected: Resurrections = %d, want 1", got)
	}
	if len(c2.result) != 1 {
		t.Error("already-delivered call lost or duplicated its result")
	}

	// A call past its retry budget fails to the client instead.
	c3 := makeCall(origin, 128, 8)
	c3.retries.Store(2) // budget is 2
	r.resurrect(origin, []*call{c3})
	res3 := awaitResult(t, &c3.ticket)
	if !errors.Is(res3.Err, ErrRetriesExhausted) {
		t.Errorf("over-budget call: err = %v, want ErrRetriesExhausted", res3.Err)
	}
	agg := r.Stats()
	if agg.RetryExhausted != 1 {
		t.Errorf("RetryExhausted = %d, want 1", agg.RetryExhausted)
	}
	if agg.Failed != 1 {
		t.Errorf("Failed = %d, want 1: abandoned resurrections are client failures", agg.Failed)
	}
}

// TestHealthBreakerEjectsAndRoutesAround: submissions into a fleet with
// one stopped replica must all succeed, and the breaker must eject the
// dead replica after MaxConsecutiveFailures and keep probing it.
func TestHealthBreakerEjectsAndRoutesAround(t *testing.T) {
	dead := newServer(t, Config{QueueDepth: 16})
	live := newServer(t, Config{QueueDepth: 16})
	r, err := NewRouter(dead, live)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnableHealth(HealthConfig{MaxConsecutiveFailures: 2, ProbeEvery: 4}); err != nil {
		t.Fatal(err)
	}
	r.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := dead.Stop(ctx); err != nil {
		t.Fatal(err)
	}

	const n = 12
	for i := 0; i < n; i++ {
		tk, err := r.Submit(Request{PromptLen: 128, OutputLen: 8})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if res := awaitResult(t, tk); res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
	}
	agg, per := r.Snapshot()
	if agg.Completed != n || agg.Rejected != 0 {
		t.Errorf("completed/rejected = %d/%d, want %d/0", agg.Completed, agg.Rejected, n)
	}
	if agg.Ejections != 1 {
		t.Errorf("Ejections = %d, want 1", agg.Ejections)
	}
	if agg.HealthProbes < 1 {
		t.Errorf("HealthProbes = %d, want >= 1: the breaker must keep trying", agg.HealthProbes)
	}
	if agg.ReplicasEjected != 1 || agg.ReplicasHealthy != 1 {
		t.Errorf("census ejected/healthy = %d/%d, want 1/1", agg.ReplicasEjected, agg.ReplicasHealthy)
	}
	if got := HealthState(per[0].HealthState); got != HealthEjected {
		t.Errorf("dead replica state = %q, want %q", got, HealthEjected)
	}
	if got := HealthState(per[1].HealthState); got != HealthHealthy {
		t.Errorf("live replica state = %q, want %q", got, HealthHealthy)
	}
}

// TestHealthBreakerStateMachine drives the breaker transitions
// directly: eject on consecutive failures, reinstate on a successful
// probe, never move on ErrNeverFits, demote on error rate.
func TestHealthBreakerStateMachine(t *testing.T) {
	a := newServer(t, Config{})
	b := newServer(t, Config{})
	r, err := NewRouter(a, b)
	if err != nil {
		t.Fatal(err)
	}
	cfg := HealthConfig{MaxConsecutiveFailures: 3, ProbeEvery: 2, MinSamples: 8, MaxErrorRate: 0.5}
	if err := r.EnableHealth(cfg); err != nil {
		t.Fatal(err)
	}
	state := func(bk Backend) HealthState { return r.healthStateOf(bk, nil) }

	// ErrNeverFits is the request's fault: the breaker must not move.
	for i := 0; i < 5; i++ {
		r.noteSubmitErr(a, ErrNeverFits)
	}
	if got := state(a); got != HealthHealthy {
		t.Fatalf("state after never-fits streak = %q, want healthy", got)
	}

	// Three real failures in a row eject.
	for i := 0; i < 3; i++ {
		r.noteSubmitErr(a, ErrStopped)
	}
	if got := state(a); got != HealthEjected {
		t.Fatalf("state after failure streak = %q, want ejected", got)
	}
	if got := r.Stats().Ejections; got != 1 {
		t.Fatalf("Ejections = %d, want 1", got)
	}

	// The ejected replica leaves ranking; the probe comes due after
	// ProbeEvery considerations and ranks first.
	tier := []Backend{a, b}
	if _, _, probes := r.healthRank(tier, Request{}); len(probes) != 0 {
		t.Fatal("probe due immediately after ejection")
	}
	ranked, _, probes := r.healthRank(tier, Request{})
	if len(probes) != 1 || probes[0] != a {
		t.Fatalf("second consideration: probes = %v, want the ejected replica", probes)
	}
	if ranked[0] != a {
		t.Fatal("due probe not ranked first")
	}
	// An undispatched trial is released and due again immediately.
	r.releaseProbe(a)
	if _, _, probes := r.healthRank(tier, Request{}); len(probes) != 1 {
		t.Fatal("released probe not due again")
	}
	// A failed trial re-arms the ejection without a new ejection count.
	r.noteSubmitErr(a, ErrStopped)
	if got := state(a); got != HealthEjected {
		t.Fatalf("state after failed probe = %q, want ejected", got)
	}
	if got := r.Stats().Ejections; got != 1 {
		t.Fatalf("Ejections after failed probe = %d, want still 1", got)
	}
	// A successful dispatch reinstates.
	r.noteSubmitOK(a)
	if got := state(a); got != HealthHealthy {
		t.Fatalf("state after successful probe = %q, want healthy", got)
	}
	if got := r.Stats().Reinstatements; got != 1 {
		t.Fatalf("Reinstatements = %d, want 1", got)
	}

	// An elevated recent error rate demotes to degraded (not ejected):
	// interleave successes so no streak trips the breaker. 6 failures
	// in 9 recent outcomes clears the 0.5 rate over MinSamples=8.
	for i := 0; i < 3; i++ {
		r.noteSubmitErr(b, ErrQueueFull)
		r.noteSubmitErr(b, ErrQueueFull)
		r.noteSubmitOK(b)
	}
	if got := state(b); got != HealthDegraded {
		t.Fatalf("state at 2/3 recent errors = %q, want degraded", got)
	}
	// Degraded replicas still rank — last.
	ranked, _, _ = r.healthRank(tier, Request{})
	if len(ranked) != 2 || ranked[len(ranked)-1] != b {
		t.Fatalf("degraded replica not ranked last: %v", ranked)
	}
}

// TestSlowFaultDilatesVirtualTime: a factor-4 slow window must stretch
// the same request's virtual completion time by about that factor.
func TestSlowFaultDilatesVirtualTime(t *testing.T) {
	run := func(f *ReplicaFaults) float64 {
		s := newServer(t, Config{QueueDepth: 1, Faults: f})
		s.Start()
		tk, err := s.Submit(Request{PromptLen: 512, OutputLen: 64})
		if err != nil {
			t.Fatal(err)
		}
		res := awaitResult(t, tk)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return res.Finished
	}
	plain := run(nil)
	slow := run(mustPlan(t, "slow replica=0 at=0 factor=4\n").Replica(0))
	if plain <= 0 {
		t.Fatalf("plain run finished at %v", plain)
	}
	if ratio := slow / plain; ratio < 3.5 || ratio > 4.5 {
		t.Errorf("slow/plain = %.2f, want ~4 (deterministic dilation)", ratio)
	}
}

// TestCodecFaultFallsBackToPlainCache: with the codec scripted to
// fail, cold prefix blocks must degrade to plain physical parking —
// the cache keeps serving hits, nothing is frozen compressed, and the
// fallbacks are counted.
func TestCodecFaultFallsBackToPlainCache(t *testing.T) {
	plan := mustPlan(t, "codecfail replica=0 at=0\n")
	srv, err := New(Config{
		Engine: prefixTestEngine(t), QueueDepth: 1,
		PrefixCache: true, CompressedCache: true,
		Faults: plan.Replica(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	prefix := seqTokens(128, 1)
	for i := 0; i < 6; i++ {
		prompt := append(append([]int(nil), prefix...), seqTokens(32, 100+i)...)
		tk, err := srv.Submit(Request{Prompt: prompt, OutputLen: 8})
		if err != nil {
			t.Fatal(err)
		}
		if res := awaitResult(t, tk); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.CodecFallbacks == 0 {
		t.Error("codec fault produced no fallbacks")
	}
	if st.CompressedKVBlocks != 0 || st.DecompressClaims != 0 {
		t.Errorf("compressed activity despite codec fault: blocks=%d claims=%d",
			st.CompressedKVBlocks, st.DecompressClaims)
	}
	if st.PrefixHits == 0 {
		t.Error("plain-parking fallback served no prefix hits: degradation is not graceful")
	}
}

// TestStaleStatsFreezesSnapshot: inside a stalestats window the
// published snapshot freezes (routers see stale load and digests);
// after the window closes the snapshot catches up.
func TestStaleStatsFreezesSnapshot(t *testing.T) {
	frozen := newServer(t, Config{QueueDepth: 4,
		Faults: mustPlan(t, "stalestats replica=0 at=0\n").Replica(0)})
	frozen.Start()
	tk, err := frozen.Submit(Request{PromptLen: 256, OutputLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res := awaitResult(t, tk); res.Err != nil {
		t.Fatal(res.Err)
	}
	st := frozen.Stats()
	if st.Completed != 0 || st.SimSeconds != 0 {
		t.Errorf("frozen snapshot advanced: completed=%d sim=%v", st.Completed, st.SimSeconds)
	}
	if st.Submitted != 1 {
		t.Errorf("Submitted = %d, want 1: admission counters are live, only the publish freezes", st.Submitted)
	}

	// A bounded window: the snapshot resumes once virtual time passes it.
	bounded := newServer(t, Config{QueueDepth: 4,
		Faults: mustPlan(t, "stalestats replica=0 at=0 for=0.001\n").Replica(0)})
	bounded.Start()
	tk, err = bounded.Submit(Request{PromptLen: 256, OutputLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res := awaitResult(t, tk); res.Err != nil {
		t.Fatal(res.Err)
	}
	waitStats(t, func() bool { return bounded.Stats().Completed == 1 })
}

// TestDropHandoffFaultLosesThenResurrects: a scripted transfer drop on
// a disaggregated fleet fails the request without health routing, and
// resurrects it with — both runs counting the drop.
func TestDropHandoffFaultLosesThenResurrects(t *testing.T) {
	build := func(withHealth bool) (*Router, *FaultPlan) {
		plan := mustPlan(t, "drophandoff replica=0 at=0\n")
		p, err := New(Config{Engine: prefixTestEngine(t), QueueDepth: 4,
			PrefixCache: true, Pool: PoolPrefill, Faults: plan.Replica(0)})
		if err != nil {
			t.Fatal(err)
		}
		d, err := New(Config{Engine: prefixTestEngine(t), QueueDepth: 4,
			PrefixCache: true, Pool: PoolDecode})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []*Server{p, d} {
			srv := s
			t.Cleanup(func() {
				srv.Start()
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				if err := srv.Stop(ctx); err != nil {
					t.Errorf("Stop: %v", err)
				}
			})
		}
		r, err := NewPooledRouter(p, d)
		if err != nil {
			t.Fatal(err)
		}
		if withHealth {
			if err := r.EnableHealth(HealthConfig{RetryBudget: 3}); err != nil {
				t.Fatal(err)
			}
		}
		r.Start()
		return r, plan
	}

	// Without health: the dropped request fails to the client.
	r, _ := build(false)
	tk, err := r.Submit(Request{Prompt: seqTokens(256, 9), OutputLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res := awaitResult(t, tk); !errors.Is(res.Err, ErrStopped) {
		t.Fatalf("dropped handoff: err = %v, want ErrStopped", res.Err)
	}
	waitStats(t, func() bool {
		st := r.Stats()
		return st.HandoffDrops == 1 && st.LostRequests == 1 && st.Failed == 1
	})

	// With health: the drop victim resurrects and completes.
	r2, _ := build(true)
	tk2, err := r2.Submit(Request{Prompt: seqTokens(256, 9), OutputLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	res := awaitResult(t, tk2)
	if res.Err != nil {
		t.Fatalf("drop victim not resurrected: %v", res.Err)
	}
	if res.Resurrected != 1 {
		t.Errorf("Resurrected = %d, want 1", res.Resurrected)
	}
	waitStats(t, func() bool {
		st := r2.Stats()
		return st.HandoffDrops == 1 && st.Resurrections == 1 && st.Completed == 1 && st.Failed == 0
	})
}

// TestEnableHealthValidation rejects nonsense knobs.
func TestEnableHealthValidation(t *testing.T) {
	r, err := NewRouter(&acceptStub{})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []HealthConfig{
		{MaxConsecutiveFailures: -1}, {MaxErrorRate: -0.5}, {MaxErrorRate: 1.5},
		{MinSamples: -1}, {MaxStepTimeEWMA: -1}, {ProbeEvery: -1},
		{RetryBudget: -1}, {RetryBackoff: -1},
	} {
		if err := r.EnableHealth(bad); err == nil {
			t.Errorf("EnableHealth(%+v) accepted a bad knob", bad)
		}
	}
	if r.HealthEnabled() {
		t.Error("rejected configs must not enable health routing")
	}
	if err := r.EnableHealth(HealthConfig{}); err != nil {
		t.Fatal(err)
	}
	if !r.HealthEnabled() {
		t.Error("HealthEnabled() false after EnableHealth")
	}
}
