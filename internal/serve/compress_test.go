package serve

import (
	"context"
	"math"
	"testing"
	"time"
)

// TestCompressedCacheLiveServer runs a sequential shared-prefix
// workload through a live server with the prefix cache alone and with
// compressed cold blocks on top: outputs keep the same shape, the hit
// stream is unchanged (frozen content is advertised exactly like parked
// content), and the compressed run surfaces its codec counters in
// Stats.
func TestCompressedCacheLiveServer(t *testing.T) {
	const n = 6
	prefix := seqTokens(128, 1)

	run := func(compressed bool) ([]Result, Stats) {
		srv, err := New(Config{
			Engine: prefixTestEngine(t), QueueDepth: n,
			PrefixCache: true, CompressedCache: compressed,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		// Submit sequentially so every request finds the previous one
		// completed: its blocks have gone cold, and in compressed mode
		// every later claim is a thaw.
		results := make([]Result, n)
		for i := 0; i < n; i++ {
			prompt := append(append([]int(nil), prefix...), seqTokens(32, 100+i)...)
			tk, err := srv.Submit(Request{Prompt: prompt, OutputLen: 8})
			if err != nil {
				t.Fatal(err)
			}
			results[i] = <-tk.Result()
			if results[i].Err != nil {
				t.Fatal(results[i].Err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Stop(ctx); err != nil {
			t.Fatal(err)
		}
		return results, srv.Stats()
	}

	plain, plainStats := run(false)
	comp, compStats := run(true)

	if plainStats.CompressedCacheEnabled || !compStats.CompressedCacheEnabled {
		t.Fatalf("CompressedCacheEnabled plain/comp = %v/%v",
			plainStats.CompressedCacheEnabled, compStats.CompressedCacheEnabled)
	}
	if plainStats.DecompressClaims != 0 || plainStats.CompressedKVBlocks != 0 {
		t.Fatalf("plain run reports compressed activity: %+v", plainStats)
	}
	if compStats.DecompressClaims == 0 {
		t.Fatal("compressed run never thawed a block")
	}
	// The last request's cold blocks are frozen at shutdown, so the
	// gauges are live in the final snapshot.
	if compStats.CompressedKVBlocks == 0 || compStats.CompressedKVBytes <= 0 {
		t.Fatalf("no frozen blocks surfaced: blocks=%d bytes=%d",
			compStats.CompressedKVBlocks, compStats.CompressedKVBytes)
	}
	if r := compStats.KVCompressionRatio; r <= 1.0 || math.IsNaN(r) || math.IsInf(r, 0) {
		t.Fatalf("KVCompressionRatio = %v, want finite > 1.0", r)
	}
	// Freezing changes where cold content lives, not what is reused or
	// produced.
	if compStats.PrefixHits != plainStats.PrefixHits || compStats.PrefixHits == 0 {
		t.Fatalf("prefix hits differ: %d plain vs %d compressed", plainStats.PrefixHits, compStats.PrefixHits)
	}
	if compStats.PrefillTokens != plainStats.PrefillTokens {
		t.Fatalf("prefill tokens differ: %d plain vs %d compressed",
			plainStats.PrefillTokens, compStats.PrefillTokens)
	}
	for i := range comp {
		if comp[i].PromptLen != plain[i].PromptLen || comp[i].OutputLen != plain[i].OutputLen {
			t.Fatalf("request %d shape differs: %+v vs %+v", i, comp[i], plain[i])
		}
	}
}

// TestRouterAggregatesCompressedStats: a routed fleet sums the
// compressed-cache counters and gauges, ORs the enable flag, and
// reports the bytes-weighted mean compression ratio.
func TestRouterAggregatesCompressedStats(t *testing.T) {
	mk := func() *Server {
		srv, err := New(Config{Engine: prefixTestEngine(t), PrefixCache: true, CompressedCache: true})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	r, err := NewRouter(mk(), mk())
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	prompt := seqTokens(96, 3)
	for i := 0; i < 6; i++ {
		tk, err := r.Submit(Request{Prompt: prompt, OutputLen: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res := <-tk.Result(); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Stop(ctx); err != nil {
		t.Fatal(err)
	}

	agg, per := r.Snapshot()
	if !agg.CompressedCacheEnabled {
		t.Fatal("aggregate lost CompressedCacheEnabled")
	}
	var blocks int
	var bytes, claims int64
	var weighted float64
	for _, st := range per {
		blocks += st.CompressedKVBlocks
		bytes += st.CompressedKVBytes
		claims += st.DecompressClaims
		weighted += st.KVCompressionRatio * float64(st.CompressedKVBytes)
	}
	if agg.CompressedKVBlocks != blocks || agg.CompressedKVBytes != bytes || agg.DecompressClaims != claims {
		t.Fatalf("aggregate %d/%d/%d, replica sum %d/%d/%d",
			agg.CompressedKVBlocks, agg.CompressedKVBytes, agg.DecompressClaims, blocks, bytes, claims)
	}
	// Every prompt completed and went cold, so at least one replica
	// holds frozen bytes and the weighted ratio is well-defined.
	if bytes <= 0 || claims == 0 {
		t.Fatalf("fleet shows no compressed activity: bytes=%d claims=%d", bytes, claims)
	}
	want := weighted / float64(bytes)
	if math.Abs(agg.KVCompressionRatio-want) > 1e-12 || want <= 1.0 {
		t.Fatalf("aggregate ratio = %v, want bytes-weighted %v", agg.KVCompressionRatio, want)
	}
}

// TestAggregateCompressedRatioNoBytes: with the compressed cache
// enabled but nothing frozen anywhere, the fleet ratio falls back to
// the neutral 1.0 rather than 0/0.
func TestAggregateCompressedRatioNoBytes(t *testing.T) {
	srv, err := New(Config{Engine: prefixTestEngine(t), PrefixCache: true, CompressedCache: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(srv)
	if err != nil {
		t.Fatal(err)
	}
	agg, _ := r.Snapshot()
	if !agg.CompressedCacheEnabled {
		t.Fatal("aggregate lost CompressedCacheEnabled before traffic")
	}
	if agg.CompressedKVBytes != 0 {
		t.Fatalf("idle fleet holds %d compressed bytes", agg.CompressedKVBytes)
	}
	if agg.KVCompressionRatio != 1.0 {
		t.Fatalf("idle-fleet ratio = %v, want neutral 1.0", agg.KVCompressionRatio)
	}
}
