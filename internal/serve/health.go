package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Health-aware routing (docs/robustness.md): EnableHealth gives the
// router a per-replica breaker state machine
//
//	healthy → degraded → ejected → (half-open probe) → healthy
//
// driven entirely by dispatch outcomes and stats snapshots the router
// already observes. Consecutive submit failures trip the breaker
// (ejected replicas drop out of ranking — including affinity and
// handoff candidates); an elevated error rate or a step-time EWMA past
// its bound demotes a replica to degraded (ranked only behind every
// healthy candidate); ejected replicas are re-admitted through
// half-open probes — every ProbeEvery router submissions, one real
// request is trialled on the ejected replica, reinstating it on
// success and re-arming the breaker on failure.
//
// EnableHealth also arms request resurrection: a dying replica (crash,
// hang, dropped handoff) hands its lost requests back to the router,
// which resubmits each one to another replica with a bounded retry
// budget and a deterministic virtual-time backoff. Scheduler ids are
// minted from one fleet-shared counter and terminal delivery is a CAS
// (serve.go), so a resurrected duplicate racing its limping original
// is harmless: exactly one outcome reaches the client.

// HealthState names a replica's position in the router's breaker state
// machine, surfaced per replica as Stats.HealthState.
type HealthState string

// The breaker states.
const (
	HealthHealthy  HealthState = "healthy"
	HealthDegraded HealthState = "degraded"
	HealthEjected  HealthState = "ejected"
	HealthProbing  HealthState = "probing"
)

// HealthConfig tunes the router's health state machine and retry
// policy. The zero value selects sane defaults for every field.
type HealthConfig struct {
	// MaxConsecutiveFailures trips the breaker: this many submit
	// failures in a row ejects the replica from ranking. Default 3.
	MaxConsecutiveFailures int
	// MaxErrorRate demotes a replica to degraded when its recent
	// dispatch failure rate exceeds it (over at least MinSamples
	// outcomes). Degraded replicas rank behind every healthy one.
	// Default 0.5.
	MaxErrorRate float64
	// MinSamples is the fewest recent dispatch outcomes before the
	// error rate is trusted — a single early failure must not demote a
	// cold replica. Default 8.
	MinSamples int
	// MaxStepTimeEWMA demotes a replica to degraded while its smoothed
	// iteration time (Stats.StepTimeEWMA) exceeds it — the slow-but-
	// alive detector. 0 (default) disables the bound.
	MaxStepTimeEWMA float64
	// ProbeEvery is the half-open probe cadence: an ejected replica is
	// trialled with one real submission every ProbeEvery router
	// submissions that considered it. Counted in submissions, not wall
	// time, so probe schedules replay deterministically. Default 16.
	ProbeEvery int
	// RetryBudget bounds how many times one request may be resurrected
	// after replica deaths before it fails to the client with
	// ErrRetriesExhausted. Default 3.
	RetryBudget int
	// RetryBackoff spaces resurrection attempts in virtual seconds:
	// attempt n arrives n × RetryBackoff into the rescuing replica's
	// virtual future. Deterministic (sim-time, never wall-time).
	// Default 0: resurrect at the rescuer's live clock.
	RetryBackoff float64
}

func (cfg *HealthConfig) defaults() {
	if cfg.MaxConsecutiveFailures == 0 {
		cfg.MaxConsecutiveFailures = 3
	}
	if cfg.MaxErrorRate == 0 {
		cfg.MaxErrorRate = 0.5
	}
	if cfg.MinSamples == 0 {
		cfg.MinSamples = 8
	}
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = 16
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 3
	}
}

// healthWindow bounds the recent-outcome counters: when the window
// fills, both counters halve, so the error rate is an exponentially
// decayed recent estimate instead of a lifetime average that never
// forgives.
const healthWindow = 32

// replicaHealth is one replica's breaker state. All fields behind mu.
type replicaHealth struct {
	mu          sync.Mutex
	ejected     bool
	probing     bool // a half-open trial is being dispatched right now
	consecFails int
	sinceEject  int // router submissions since ejection (probe cadence)
	recentFails int
	recentCount int
}

// EnableHealth turns on the health state machine and request
// resurrection for every subsequent Submit. Call it during fleet
// assembly, before Start and before traffic — it rewires every
// *Server replica onto one fleet-shared id counter (so resurrection
// can mint non-colliding scheduler ids) and installs the resurrection
// hook; neither is synchronised against in-flight submissions.
// Breaker tracking covers every replica Backend; resurrection requires
// *Server replicas (lost requests can only be resubmitted to leaf
// servers this router owns).
func (r *Router) EnableHealth(cfg HealthConfig) error {
	if cfg.MaxConsecutiveFailures < 0 {
		return fmt.Errorf("serve: health MaxConsecutiveFailures must be >= 0, got %d", cfg.MaxConsecutiveFailures)
	}
	if math.IsNaN(cfg.MaxErrorRate) || cfg.MaxErrorRate < 0 || cfg.MaxErrorRate > 1 {
		return fmt.Errorf("serve: health MaxErrorRate must be in [0, 1], got %v", cfg.MaxErrorRate)
	}
	if cfg.MinSamples < 0 {
		return fmt.Errorf("serve: health MinSamples must be >= 0, got %d", cfg.MinSamples)
	}
	if math.IsNaN(cfg.MaxStepTimeEWMA) || math.IsInf(cfg.MaxStepTimeEWMA, 0) || cfg.MaxStepTimeEWMA < 0 {
		return fmt.Errorf("serve: health MaxStepTimeEWMA must be finite and >= 0, got %v", cfg.MaxStepTimeEWMA)
	}
	if cfg.ProbeEvery < 0 {
		return fmt.Errorf("serve: health ProbeEvery must be >= 0, got %d", cfg.ProbeEvery)
	}
	if cfg.RetryBudget < 0 {
		return fmt.Errorf("serve: health RetryBudget must be >= 0, got %d", cfg.RetryBudget)
	}
	if math.IsNaN(cfg.RetryBackoff) || math.IsInf(cfg.RetryBackoff, 0) || cfg.RetryBackoff < 0 {
		return fmt.Errorf("serve: health RetryBackoff must be finite and >= 0, got %v", cfg.RetryBackoff)
	}
	cfg.defaults()
	r.health = &cfg
	r.healthMap = make(map[Backend]*replicaHealth, len(r.replicas))
	// One fleet-shared id counter, seeded past every replica's current
	// position (a pooled router has already unified them; a plain fleet
	// has per-server counters): a sequence keeps its scheduler id
	// across handoffs and resurrection mints fresh ids, so ids from
	// different replicas must never collide.
	shared := new(atomic.Int64)
	var max int64
	for _, b := range r.replicas {
		r.healthMap[b] = &replicaHealth{}
		if srv, ok := b.(*Server); ok {
			if v := srv.ids.Load(); v > max {
				max = v
			}
		}
	}
	shared.Store(max)
	for _, b := range r.replicas {
		if srv, ok := b.(*Server); ok {
			srv.ids = shared
			srv.onDeath = r.resurrect
		}
	}
	return nil
}

// HealthEnabled reports whether the health state machine is on.
func (r *Router) HealthEnabled() bool { return r.health != nil }

// healthRank builds one dispatch's candidate order under the state
// machine: due half-open probes first (the submission IS the trial),
// then the healthy candidates under the usual affinity/least-loaded
// ranking, then degraded candidates as fallback. Ejected replicas are
// excluded entirely. probes aliases ranked[:len(probes)] so the caller
// can release the probe flag of any trial the dispatch never reached.
// Liveness guard: when the whole tier is ejected with no probe due,
// every replica is tried — a fully tripped breaker must degrade to
// plain dispatch, not to guaranteed failure.
func (r *Router) healthRank(tier []Backend, req Request) (ranked []Backend, preferred Backend, probes []Backend) {
	if r.health == nil {
		ranked, preferred = r.rankForRequest(tier, req)
		return ranked, preferred, nil
	}
	healthy, degraded, probes := r.healthPartition(tier)
	if len(healthy)+len(degraded)+len(probes) == 0 {
		return rankByLoad(tier), nil, nil
	}
	ranked = append([]Backend(nil), probes...)
	var affRanked []Backend
	affRanked, preferred = r.rankForRequest(healthy, req)
	ranked = append(ranked, affRanked...)
	if len(degraded) > 0 {
		ranked = append(ranked, rankByLoad(degraded)...)
	}
	return ranked, preferred, probes
}

// healthPartition classifies a tier's replicas for one dispatch and
// advances the probe cadence of ejected ones. An untracked Backend
// (possible only before EnableHealth saw it) counts as healthy.
func (r *Router) healthPartition(tier []Backend) (healthy, degraded, probes []Backend) {
	cfg := r.health
	for _, b := range tier {
		h := r.healthMap[b]
		if h == nil {
			healthy = append(healthy, b)
			continue
		}
		h.mu.Lock()
		if h.probing {
			// Another dispatch is mid-trial on this replica; keep it out
			// of ranking until the trial's outcome lands.
			h.mu.Unlock()
			continue
		}
		if h.ejected {
			h.sinceEject++
			due := cfg.ProbeEvery > 0 && h.sinceEject >= cfg.ProbeEvery
			if due {
				h.sinceEject = 0
				h.probing = true
			}
			h.mu.Unlock()
			if due {
				r.healthProbes.Add(1)
				probes = append(probes, b)
			}
			continue
		}
		degradedNow := h.recentCount >= cfg.MinSamples &&
			float64(h.recentFails) > cfg.MaxErrorRate*float64(h.recentCount)
		h.mu.Unlock()
		if !degradedNow && cfg.MaxStepTimeEWMA > 0 {
			if st := b.Stats(); st.StepTimeEWMA > cfg.MaxStepTimeEWMA {
				degradedNow = true
			}
		}
		if degradedNow {
			degraded = append(degraded, b)
		} else {
			healthy = append(healthy, b)
		}
	}
	return healthy, degraded, probes
}

// noteSubmitOK records a successful dispatch: the failure streak
// resets, and a probing or ejected replica is reinstated.
func (r *Router) noteSubmitOK(b Backend) {
	h := r.healthMap[b]
	if h == nil {
		return
	}
	h.mu.Lock()
	h.consecFails = 0
	h.recentCount++
	h.decayLocked()
	reinstated := h.probing || h.ejected
	h.probing = false
	h.ejected = false
	h.mu.Unlock()
	if reinstated {
		r.reinstatements.Add(1)
	}
}

// noteSubmitErr records a failed dispatch. ErrNeverFits is the
// request's fault, not the replica's, and never moves the breaker. A
// failed probe re-arms the ejection; MaxConsecutiveFailures plain
// failures in a row trip it.
func (r *Router) noteSubmitErr(b Backend, err error) {
	if errors.Is(err, ErrNeverFits) {
		return
	}
	h := r.healthMap[b]
	if h == nil {
		return
	}
	h.mu.Lock()
	h.consecFails++
	h.recentFails++
	h.recentCount++
	h.decayLocked()
	ejected := false
	if h.probing {
		h.probing = false // failed trial: stay ejected, cadence restarts
		h.sinceEject = 0
	} else if !h.ejected && h.consecFails >= r.health.MaxConsecutiveFailures {
		h.ejected = true
		h.sinceEject = 0
		ejected = true
	}
	h.mu.Unlock()
	if ejected {
		r.ejections.Add(1)
	}
}

// releaseProbe returns an undispatched trial: a dispatch that marked
// this replica probing succeeded earlier in its ranking, so the trial
// never ran. The replica stays ejected and is due again immediately.
func (r *Router) releaseProbe(b Backend) {
	h := r.healthMap[b]
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.probing {
		h.probing = false
		h.sinceEject = r.health.ProbeEvery
	}
	h.mu.Unlock()
}

// liveCandidates filters a tier down to its non-ejected replicas for
// dispatch paths that rank but never probe (handoff dispatch). Probe
// cadences are untouched — a handoff is not a half-open trial. The
// liveness guard applies: a fully ejected tier is returned whole.
func (r *Router) liveCandidates(tier []Backend) []Backend {
	if r.health == nil {
		return tier
	}
	live := make([]Backend, 0, len(tier))
	for _, b := range tier {
		h := r.healthMap[b]
		if h != nil {
			h.mu.Lock()
			out := h.ejected || h.probing
			h.mu.Unlock()
			if out {
				continue
			}
		}
		live = append(live, b)
	}
	if len(live) == 0 {
		return tier
	}
	return live
}

// decayLocked halves the recent-outcome counters when the window
// fills. Caller holds h.mu.
func (h *replicaHealth) decayLocked() {
	if h.recentCount >= healthWindow {
		h.recentCount /= 2
		h.recentFails /= 2
	}
}

// healthStateOf classifies a replica for the stats surface, reusing an
// already-taken snapshot for the step-time bound.
func (r *Router) healthStateOf(b Backend, st *Stats) HealthState {
	cfg := r.health
	h := r.healthMap[b]
	if h == nil {
		return HealthHealthy
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	switch {
	case h.probing:
		return HealthProbing
	case h.ejected:
		return HealthEjected
	case h.recentCount >= cfg.MinSamples &&
		float64(h.recentFails) > cfg.MaxErrorRate*float64(h.recentCount):
		return HealthDegraded
	case cfg.MaxStepTimeEWMA > 0 && st != nil && st.StepTimeEWMA > cfg.MaxStepTimeEWMA:
		return HealthDegraded
	}
	return HealthHealthy
}

// resurrect is the Server.onDeath hook: a dying replica hands over the
// requests it lost, and the router resubmits each one elsewhere. Runs
// on the dying replica's scheduler goroutine; the lost set arrives
// sorted by scheduler id, and targets are ranked once per batch, so a
// scripted crash resurrects identically on every replay. Requests past
// the retry budget — and requests no live replica will take — fail to
// the client with ErrRetriesExhausted, counted in Stats.RetryExhausted
// and folded into the fleet's Failed.
func (r *Router) resurrect(from *Server, lost []*call) {
	cfg := r.health
	targets := r.resurrectTargets(from)
	for _, c := range lost {
		if c.done.Load() {
			continue // a duplicate already delivered; nothing to save
		}
		n := int(c.retries.Load())
		if n >= cfg.RetryBudget {
			if c.finish(Result{Err: fmt.Errorf("%w (%d attempts)", ErrRetriesExhausted, n)}) {
				r.retryExhausted.Add(1)
			}
			continue
		}
		c.retries.Add(1)
		c.backoff = cfg.RetryBackoff * float64(n+1)
		delivered := false
		for _, srv := range targets {
			err := srv.resubmit(c)
			if err == nil {
				r.noteSubmitOK(srv)
				r.resurrections.Add(1)
				delivered = true
				break
			}
			r.noteSubmitErr(srv, err)
		}
		if !delivered {
			if c.finish(Result{Err: fmt.Errorf("%w: no replica accepted the resurrection", ErrRetriesExhausted)}) {
				r.retryExhausted.Add(1)
			}
		}
	}
}

// resurrectTargets ranks the live rescue candidates for a dying
// replica's lost requests: every non-ejected *Server in tier order,
// least-loaded first, excluding the dead replica. When the breaker has
// everything ejected, every live server is tried anyway (the liveness
// guard again). Probe cadences are not advanced — resurrection is
// rescue traffic, not trial traffic.
func (r *Router) resurrectTargets(from *Server) []*Server {
	pick := func(includeEjected bool) []*Server {
		var out []*Server
		for _, tier := range r.tiers() {
			for _, b := range rankByLoad(tier) {
				srv, ok := b.(*Server)
				if !ok || srv == from {
					continue
				}
				if !includeEjected {
					if h := r.healthMap[b]; h != nil {
						h.mu.Lock()
						ejected := h.ejected
						h.mu.Unlock()
						if ejected {
							continue
						}
					}
				}
				out = append(out, srv)
			}
		}
		return out
	}
	targets := pick(false)
	if len(targets) == 0 {
		targets = pick(true)
	}
	return targets
}
