// Package serve is ZipServ's live serving layer: a goroutine-based
// continuous-batching scheduler that turns the offline trace simulator
// (internal/engine) into an online system with admission control,
// backpressure and streaming per-request metrics — the request path
// behind the HTTP API's POST /v1/generate and GET /v1/stats.
//
// # Design
//
// One scheduler goroutine owns an engine.Stepper (the iteration-level
// continuous-batching state machine over the paged KV-cache plan) and
// loops over three phases, exactly as a vLLM-class engine loop does:
//
//  1. Admission — drain the bounded submit channel into a FIFO pending
//     queue and admit requests, in order, while their conservative
//     prompt+output KV reservation fits and the batch cap allows. The
//     head of line is never skipped, so admission is starvation-free.
//  2. Prefill — newly admitted prompts run as one token-packed
//     (padding-free, varlen-style) prefill batch, emitting each
//     request's first token. Packed pricing is what distinguishes the
//     live loop from the offline static-batch Serve baseline, which
//     pads every prompt in a prefill batch to the longest one.
//  3. Decode — one iteration across the whole running batch; finished
//     sequences release their KV blocks immediately, making room for
//     the next admissions.
//
// Time inside the loop is virtual (the engine cost model's step
// durations); arrival, queueing and completion are real goroutine and
// channel events, so the scheduler is exercised under true concurrency
// while latency numbers stay deterministic for a given arrival order.
//
// Submit never blocks: when the admission queue is full it fails fast
// with ErrQueueFull, which the HTTP layer maps to 429 Too Many
// Requests. Each accepted request gets a Ticket carrying a streaming
// event channel (admitted → first_token → finished) and a final Result
// with TTFT, TPOT, queue wait and end-to-end latency.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"zipserv/internal/engine"
	"zipserv/internal/kvcache"
)

// Submission errors.
var (
	// ErrQueueFull means the bounded admission queue is at capacity;
	// callers should back off (HTTP 429).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrStopped means the server is shut down or shutting down.
	ErrStopped = errors.New("serve: server stopped")
	// ErrNeverFits means the request's KV reservation exceeds the
	// device plan and could never be admitted.
	ErrNeverFits = errors.New("serve: request can never fit in KV memory")
)

// ArrivalNow marks a Request as arriving at the scheduler's current
// virtual clock (the live path). Non-negative arrivals are explicit
// virtual timestamps, used to replay recorded traces.
const ArrivalNow = -1

// Request is one live generation request.
type Request struct {
	PromptLen int
	OutputLen int
	// Arrival is the virtual arrival time in seconds. Use ArrivalNow
	// (any negative value) for live requests; trace replays set the
	// trace's arrival timestamps so queueing delays are reproduced.
	Arrival float64
}

// Config describes a live server.
type Config struct {
	// Engine prices every step and sizes the KV plan. Required.
	Engine *engine.Engine
	// QueueDepth bounds the admission queue; Submit fails with
	// ErrQueueFull beyond it. Default 64.
	QueueDepth int
	// MaxBatch caps concurrently scheduled sequences (0 = KV capacity
	// is the only limit).
	MaxBatch int
	// PaddedPrefill disables token-packed prefill and prices prefill
	// batches padded to the longest prompt, reproducing the offline
	// static-batch baseline. For benchmarks.
	PaddedPrefill bool
}

// EventType tags a streaming event.
type EventType string

// Streaming event types, in per-request emission order.
const (
	EventAdmitted   EventType = "admitted"
	EventFirstToken EventType = "first_token"
	EventFinished   EventType = "finished"
)

// Event is one streaming progress notification for a request.
type Event struct {
	Type       EventType `json:"event"`
	ID         int       `json:"id"`
	SimSeconds float64   `json:"sim_seconds"`
	TTFT       float64   `json:"ttft_seconds,omitempty"`
}

// Result is the final per-request record.
type Result struct {
	ID        int `json:"id"`
	PromptLen int `json:"prompt_len"`
	OutputLen int `json:"output_len"`

	// Virtual timestamps (seconds on the scheduler clock).
	Arrival    float64 `json:"arrival_seconds"`
	Admitted   float64 `json:"admitted_seconds"`
	FirstToken float64 `json:"first_token_seconds"`
	Finished   float64 `json:"finished_seconds"`

	TTFT      float64 `json:"ttft_seconds"`
	TPOT      float64 `json:"tpot_seconds"`
	QueueWait float64 `json:"queue_wait_seconds"` // Admitted − Arrival
	Latency   float64 `json:"latency_seconds"`

	// WallDuration is real elapsed time from Submit to completion.
	WallDuration time.Duration `json:"wall_duration_ns"`

	Err error `json:"-"`
}

// Stats is an aggregate snapshot of the server.
type Stats struct {
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"` // queue-full fast failures
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`

	Queued int `json:"queued"` // waiting for admission
	Active int `json:"active"` // holding KV capacity

	SimSeconds      float64 `json:"sim_seconds"`
	OutputTokens    int64   `json:"output_tokens"`
	DecodeSteps     int64   `json:"decode_steps"`
	PeakConcurrency int     `json:"peak_concurrency"`

	Goodput    float64 `json:"goodput_rps"`      // completed / sim second
	Throughput float64 `json:"throughput_tok_s"` // tokens / sim second

	MeanTTFT      float64 `json:"mean_ttft_seconds"`
	MeanTPOT      float64 `json:"mean_tpot_seconds"`
	MeanQueueWait float64 `json:"mean_queue_wait_seconds"`
}

// Ticket tracks one accepted request.
type Ticket struct {
	// ID is the request's sequence id in the scheduler.
	ID     int
	events chan Event
	result chan Result
}

// Events streams progress notifications (admitted, first_token,
// finished). The channel is closed after the final event. Events are
// best-effort: a slow consumer may miss intermediate ones, never the
// Result.
func (t *Ticket) Events() <-chan Event { return t.events }

// Result delivers the final per-request record exactly once.
func (t *Ticket) Result() <-chan Result { return t.result }

type call struct {
	req       engine.Request
	submitted time.Time
	events    chan Event
	result    chan Result
}

// emit sends a streaming event without ever blocking the scheduler.
func (c *call) emit(ev Event) {
	ev.ID = c.req.ID
	select {
	case c.events <- ev:
	default: // slow consumer: drop the progress event
	}
}

// finish delivers the final result (buffered, never blocks) and closes
// the event stream.
func (c *call) finish(res Result) {
	res.ID = c.req.ID
	res.WallDuration = time.Since(c.submitted)
	c.result <- res
	close(c.events)
}

// Server is the live continuous-batching scheduler.
type Server struct {
	cfg      Config
	submitCh chan *call
	stop     chan struct{}
	done     chan struct{}

	gate    sync.RWMutex // serialises Submit sends against Stop
	stopped bool

	nextID    atomic.Int64
	submitted atomic.Int64
	rejected  atomic.Int64

	statsMu sync.Mutex
	stats   Stats

	startOnce sync.Once
}

// New builds a live server over the engine. Call Start to launch the
// scheduler goroutine.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("serve: config needs an engine")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	return &Server{
		cfg:      cfg,
		submitCh: make(chan *call, cfg.QueueDepth),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}, nil
}

// Start launches the scheduler goroutine. Safe to call once.
func (s *Server) Start() {
	s.startOnce.Do(func() { go s.loop() })
}

// Stop shuts the server down gracefully: new submissions are rejected
// with ErrStopped immediately, while everything already queued or in
// flight is served to completion. It returns when the scheduler has
// drained or ctx expires.
func (s *Server) Stop(ctx context.Context) error {
	s.gate.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.stop)
	}
	s.gate.Unlock()
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit offers a request to the admission queue without blocking: it
// fails fast with ErrQueueFull when the queue is at capacity,
// ErrStopped after Stop, or ErrNeverFits when the request exceeds the
// device's total KV plan.
func (s *Server) Submit(req Request) (*Ticket, error) {
	if req.PromptLen <= 0 || req.OutputLen <= 0 {
		return nil, fmt.Errorf("serve: prompt/output lengths must be positive, got %d/%d",
			req.PromptLen, req.OutputLen)
	}
	if !s.cfg.Engine.FitsKV(req.PromptLen, req.OutputLen) {
		return nil, fmt.Errorf("%w: needs %d KV blocks, plan has %d", ErrNeverFits,
			kvcache.BlocksFor(req.PromptLen+req.OutputLen, kvcache.DefaultBlockTokens),
			s.cfg.Engine.Plan().Blocks)
	}
	arrival := req.Arrival
	if arrival < 0 {
		arrival = ArrivalNow // normalised; assigned the live clock at drain
	}
	c := &call{
		req: engine.Request{
			ID:             int(s.nextID.Add(1)),
			ArrivalSeconds: arrival,
			PromptLen:      req.PromptLen,
			OutputLen:      req.OutputLen,
		},
		submitted: time.Now(),
		events:    make(chan Event, 4),
		result:    make(chan Result, 1),
	}

	s.gate.RLock()
	defer s.gate.RUnlock()
	if s.stopped {
		return nil, ErrStopped
	}
	select {
	case s.submitCh <- c:
		s.submitted.Add(1)
		return &Ticket{ID: c.req.ID, events: c.events, result: c.result}, nil
	default:
		s.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

// Stats returns an aggregate snapshot. Safe for concurrent use.
func (s *Server) Stats() Stats {
	s.statsMu.Lock()
	st := s.stats
	s.statsMu.Unlock()
	st.Submitted = s.submitted.Load()
	st.Rejected = s.rejected.Load()
	// The published snapshot counts only the loop's pending list;
	// requests still buffered in the submit channel are queued too.
	st.Queued += len(s.submitCh)
	if st.SimSeconds > 0 {
		st.Goodput = float64(st.Completed) / st.SimSeconds
		st.Throughput = float64(st.OutputTokens) / st.SimSeconds
	}
	return st
}

// loop is the scheduler goroutine: admission → prefill → decode, one
// iteration at a time, until stopped and drained.
func (s *Server) loop() {
	defer close(s.done)

	sp, err := engine.NewStepper(s.cfg.Engine)
	if err != nil {
		s.failAll(nil, nil, err)
		return
	}
	sp.PackedPrefill = !s.cfg.PaddedPrefill

	var (
		pending  []*call
		inflight = make(map[int]*call)
		agg      aggregate
	)
	for {
		pending = s.drain(sp, pending)

		if sp.InFlight() == 0 && len(pending) == 0 {
			// Fully idle: block for the next submission or shutdown.
			select {
			case c := <-s.submitCh:
				pending = s.arrive(sp, pending, c)
				continue
			case <-s.stop:
				// Anything that raced past the gate before Stop is
				// buffered; serve it before exiting.
				if pending = s.drain(sp, pending); len(pending) > 0 {
					continue
				}
				return
			}
		}

		// Admission: FIFO, head-of-line blocking, conservative KV
		// reservation, optional batch cap.
		for len(pending) > 0 {
			c := pending[0]
			if s.cfg.MaxBatch > 0 && sp.InFlight() >= s.cfg.MaxBatch {
				break
			}
			if c.req.ArrivalSeconds > sp.Clock() {
				if sp.InFlight() > 0 {
					break // future arrival; keep decoding until then
				}
				sp.AdvanceTo(c.req.ArrivalSeconds)
			}
			if !sp.CanAdmit(c.req.PromptLen, c.req.OutputLen) {
				if sp.InFlight() > 0 {
					break // capacity frees up as sequences finish
				}
				// Defensive guard against a spin: unreachable while
				// Submit's whole-plan check mirrors CanAdmit at an
				// empty system, but admission must always make
				// progress even if those drift apart.
				agg.failed++
				c.finish(Result{Err: fmt.Errorf("%w: %d+%d tokens vs %d-block plan",
					ErrNeverFits, c.req.PromptLen, c.req.OutputLen, s.cfg.Engine.Plan().Blocks)})
				pending = pending[1:]
				continue
			}
			if err := sp.Admit(c.req); err != nil {
				agg.failed++
				c.finish(Result{Err: err})
				pending = pending[1:]
				continue
			}
			inflight[c.req.ID] = c
			c.emit(Event{Type: EventAdmitted, SimSeconds: sp.Clock()})
			pending = pending[1:]
		}

		// Prefill newcomers (packed), then one decode iteration.
		prefilled, _ := sp.Prefill()
		for _, m := range prefilled {
			if c := inflight[m.ID]; c != nil {
				c.emit(Event{Type: EventFirstToken, SimSeconds: m.FirstToken, TTFT: m.TTFT})
			}
		}
		finished, _, err := sp.DecodeStep()
		if err != nil {
			// Scheduler invariant broken (unreachable under the
			// conservative reservation): fail everything and halt.
			s.failAll(pending, inflight, err)
			return
		}
		for _, m := range finished {
			agg.complete(m)
		}
		// Publish before delivering results: a caller that has seen a
		// request's Result must observe stats that include it.
		s.publish(sp, len(pending), len(inflight)-len(finished), &agg)
		for _, m := range finished {
			c := inflight[m.ID]
			delete(inflight, m.ID)
			c.emit(Event{Type: EventFinished, SimSeconds: m.Finished})
			c.finish(Result{
				PromptLen: c.req.PromptLen, OutputLen: c.req.OutputLen,
				Arrival: m.Arrival, Admitted: m.Admitted,
				FirstToken: m.FirstToken, Finished: m.Finished,
				TTFT: m.TTFT, TPOT: m.TPOT,
				QueueWait: m.Admitted - m.Arrival, Latency: m.Latency,
			})
		}
	}
}

// drain empties the submit channel without blocking.
func (s *Server) drain(sp *engine.Stepper, pending []*call) []*call {
	for {
		select {
		case c := <-s.submitCh:
			pending = s.arrive(sp, pending, c)
		default:
			return pending
		}
	}
}

// arrive stamps live submissions with the current virtual clock and
// appends to the FIFO pending queue.
func (s *Server) arrive(sp *engine.Stepper, pending []*call, c *call) []*call {
	if c.req.ArrivalSeconds < 0 {
		c.req.ArrivalSeconds = sp.Clock()
	}
	return append(pending, c)
}

// aggregate accumulates completion statistics inside the loop.
type aggregate struct {
	completed    int64
	failed       int64
	ttftSum      float64
	tpotSum      float64
	queueWaitSum float64
}

func (a *aggregate) complete(m engine.RequestMetrics) {
	a.completed++
	a.ttftSum += m.TTFT
	a.tpotSum += m.TPOT
	a.queueWaitSum += m.Admitted - m.Arrival
}

// publish copies a stats snapshot for concurrent readers.
func (s *Server) publish(sp *engine.Stepper, queued, active int, agg *aggregate) {
	st := Stats{
		Completed: agg.completed,
		Failed:    agg.failed,
		Queued:    queued,
		Active:    active,

		SimSeconds:      sp.Clock(),
		OutputTokens:    sp.OutputTokens(),
		DecodeSteps:     sp.DecodeSteps(),
		PeakConcurrency: sp.PeakConcurrency(),
	}
	if agg.completed > 0 {
		st.MeanTTFT = agg.ttftSum / float64(agg.completed)
		st.MeanTPOT = agg.tpotSum / float64(agg.completed)
		st.MeanQueueWait = agg.queueWaitSum / float64(agg.completed)
	}
	s.statsMu.Lock()
	s.stats = st
	s.statsMu.Unlock()
}

// failAll terminates every queued and in-flight request with err.
func (s *Server) failAll(pending []*call, inflight map[int]*call, err error) {
	s.gate.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.stop)
	}
	s.gate.Unlock()
	for {
		select {
		case c := <-s.submitCh:
			pending = append(pending, c)
		default:
			for _, c := range pending {
				c.finish(Result{Err: err})
			}
			for _, c := range inflight {
				c.finish(Result{Err: err})
			}
			return
		}
	}
}
