// Package serve is ZipServ's live serving layer: a goroutine-based
// continuous-batching scheduler that turns the offline trace simulator
// (internal/engine) into an online system with admission control,
// backpressure and streaming per-request metrics — the request path
// behind the HTTP API's POST /v1/generate and GET /v1/stats.
//
// # Design
//
// The package separates the three decisions a serving stack must keep
// open, each behind its own abstraction:
//
//   - Server — the engine loop. One scheduler goroutine owns an
//     engine.Stepper (the iteration-level continuous-batching state
//     machine over the paged KV-cache plan) and loops over admission →
//     prefill → decode, exactly as a vLLM-class engine loop does.
//   - Policy — who runs next. Admission ordering is delegated to a
//     pluggable Policy: FIFOPolicy (the default, head-of-line order),
//     PriorityPolicy (interactive before batch, starvation-free via
//     aging), and SLOPolicy (earliest-TTFT-deadline-first, with
//     preempt-and-requeue when an urgent request cannot fit). The
//     Stepper's conservative prompt+output reservation is the
//     preemption hook: evicting a victim returns every block it held,
//     so the urgent admission can never fail mid-flight.
//   - Backend / Router — where they run. Backend (Start/Submit/Stats/
//     Stop) is the surface the HTTP layer binds to; *Server implements
//     it for one engine, and Router implements it over N replica
//     backends with capacity-aware least-loaded dispatch (queue depth
//     and free KV blocks from each replica's Stats snapshot) and
//     failover on a full or stopped replica.
//
// Each loop iteration: (1) drain the bounded submit channel into the
// pending queue and admit requests, Policy-ordered, while their
// conservative prompt+output KV reservation fits and the batch cap
// allows; (2) prefill newly admitted prompts as one token-packed
// (padding-free, varlen-style) batch, emitting each request's first
// token; (3) run one decode iteration across the running batch,
// releasing finished sequences' KV blocks immediately to fund the next
// admissions.
//
// Time inside the loop is virtual (the engine cost model's step
// durations); arrival, queueing and completion are real goroutine and
// channel events, so the scheduler is exercised under true concurrency
// while latency numbers stay deterministic for a given arrival order.
//
// Submit never blocks: when the admission queue is full it fails fast
// with ErrQueueFull, which the HTTP layer maps to 429 Too Many
// Requests. Each accepted request gets a Ticket carrying a streaming
// event channel (admitted → first_token → finished, with preempted
// interleaved when a policy evicts it) and a final Result with TTFT,
// TPOT, queue wait and end-to-end latency.
package serve

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"zipserv/internal/engine"
	"zipserv/internal/kvcache"
)

// Submission errors.
var (
	// ErrQueueFull means the bounded admission queue is at capacity;
	// callers should back off (HTTP 429).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrStopped means the server is shut down or shutting down.
	ErrStopped = errors.New("serve: server stopped")
	// ErrNeverFits means the request's KV reservation exceeds the
	// device plan and could never be admitted (HTTP 422).
	ErrNeverFits = errors.New("serve: request can never fit in KV memory")
	// ErrRetriesExhausted means a request lost to replica failures was
	// resurrected up to the health router's retry budget and failed
	// every time (HTTP 503; see docs/robustness.md).
	ErrRetriesExhausted = errors.New("serve: retry budget exhausted")
)

// ArrivalNow marks a Request as arriving at the scheduler's current
// virtual clock (the live path). Non-negative arrivals are explicit
// virtual timestamps, used to replay recorded traces.
const ArrivalNow = -1

// DefaultTargetStepTime is the combined per-iteration step-time target
// (the decode batch's TPOT SLO) the adaptive chunk controller holds
// when Config.TargetStepTime is zero: 50 ms between tokens, a humane
// interactive cadence with prefill headroom on every modelled device.
const DefaultTargetStepTime = 50e-3

// PoolRole assigns a replica to a disaggregated serving tier (see
// docs/disaggregation.md). A pooled router runs prompts to first token
// on a prefill replica, then hands the compressed sequence to the
// least-loaded decode replica; mixed replicas serve co-located, the
// single-tier behaviour.
type PoolRole string

// The three replica pool roles. The empty string means PoolMixed.
const (
	PoolPrefill PoolRole = "prefill"
	PoolDecode  PoolRole = "decode"
	PoolMixed   PoolRole = "mixed"
)

// Class is a request priority class, consumed by PriorityPolicy.
type Class string

// The two request classes of a production serving tier: latency-bound
// interactive traffic and throughput-bound batch traffic.
const (
	ClassInteractive Class = "interactive"
	ClassBatch       Class = "batch"
)

// Request is one live generation request.
type Request struct {
	PromptLen int
	OutputLen int
	// Prompt optionally carries the prompt's token ids. With
	// Config.PrefixCache, requests sharing a prompt prefix
	// (token-identical leading blocks) reuse each other's KV blocks
	// and skip the shared prefill work. When non-empty, PromptLen may
	// be 0 (defaulted to len(Prompt)) or must equal len(Prompt).
	Prompt []int
	// Arrival is the virtual arrival time in seconds. Use ArrivalNow
	// (any negative value) for live requests; trace replays set the
	// trace's arrival timestamps so queueing delays are reproduced.
	Arrival float64
	// Class is the request's priority class. Empty defaults to
	// ClassInteractive. Ignored by FIFOPolicy.
	Class Class
	// TTFTDeadline is the first-token SLO in seconds after arrival,
	// consumed by SLOPolicy (earliest deadline first). Zero means no
	// deadline: the request yields to every deadline-carrying one and
	// is never admitted by preempting a victim.
	TTFTDeadline float64
}

// Config describes a live server.
type Config struct {
	// Engine prices every step and sizes the KV plan. Required.
	Engine *engine.Engine
	// QueueDepth bounds the admission queue; Submit fails with
	// ErrQueueFull beyond it. Default 64. Per-slot scheduling cost is
	// O(1) in queue depth for the built-in policies (the bitmap-
	// scoreboard core, docs/scheduling.md), so depth can be sized for
	// burst absorption alone; custom Policy implementations pay a
	// linear scan per slot.
	QueueDepth int
	// MaxBatch caps concurrently scheduled sequences (0 = KV capacity
	// is the only limit).
	MaxBatch int
	// Policy orders admission (and selects preemption victims). Nil
	// defaults to FIFOPolicy, PR 1's exact behaviour.
	Policy Policy
	// PaddedPrefill disables token-packed prefill and prices prefill
	// batches padded to the longest prompt, reproducing the offline
	// static-batch baseline. For benchmarks. Overridden by PrefixCache
	// (and by chunking): a padded batch cannot start mid-prompt, so
	// cached-prefix prefill is always priced token-packed.
	PaddedPrefill bool
	// PrefillChunkTokens caps the prompt tokens one scheduler iteration
	// may prefill (Sarathi-style chunked prefill): partially prefilled
	// sequences carry their chunk progress across iterations, so one
	// long prompt can never stall the decode batch's token cadence.
	// 0 = monolithic prefill (the legacy behaviour). Chunked prefill is
	// always priced token-packed, overriding PaddedPrefill.
	PrefillChunkTokens int
	// AdmissionWindow, when positive, makes an idle scheduler hold its
	// first incoming submission for up to this wall-clock duration
	// while more arrive, so sparse real-time HTTP traffic coalesces
	// into a micro-batch the way trace replays do. The hold costs wall
	// time only; virtual arrival stamps (live or trace) are unaffected.
	AdmissionWindow time.Duration
	// TimeScale, when positive, paces the scheduler loop against the
	// wall clock: each iteration sleeps its virtual step duration ×
	// TimeScale, so the virtual clock advances no faster than
	// wall-time/TimeScale and live arrivals interleave with scheduling
	// instead of draining one by one. 1.0 ≈ real time; 0 (default) runs
	// as fast as the CPU allows.
	TimeScale float64
	// PrefixCache enables copy-on-write KV prefix reuse across
	// requests that carry prompt tokens (Request.Prompt): admission
	// claims content-matched blocks by reference, prefill starts at
	// the first uncached position, and refcount-zero blocks are kept
	// warm for later identical prefixes (LRU-evicted under pressure).
	PrefixCache bool
	// PrefixCacheBlocks bounds how many refcount-zero blocks the
	// prefix cache may keep parked (0 = unbounded: every free block is
	// a reuse candidate). Ignored unless PrefixCache is set. With
	// AdaptivePrefixCache it is only the sizing controller's starting
	// point.
	PrefixCacheBlocks int
	// AdaptiveChunking replaces the static PrefillChunkTokens budget
	// with a closed-loop controller on the scheduler iteration: each
	// Prefill re-derives the largest chunk that keeps the combined
	// prefill+decode step under TargetStepTime by inverting the engine
	// cost model, shrinking under deep decode batches and growing when
	// the loop is idle. Mutually exclusive with PrefillChunkTokens.
	AdaptiveChunking bool
	// TargetStepTime is the adaptive controller's combined step-time
	// target in seconds — the decode batch's TPOT SLO. 0 =
	// DefaultTargetStepTime. Requires AdaptiveChunking.
	TargetStepTime float64
	// AdaptivePrefixCache replaces the static PrefixCacheBlocks bound
	// with a closed-loop pool-sizing controller: the cached pool
	// shrinks (evicting leaf-first) while admissions queue on KV
	// capacity and grows while prefix hits keep arriving. Requires
	// PrefixCache.
	AdaptivePrefixCache bool
	// CompressedCache stores cold (refcount-zero) prefix-cache blocks
	// in TCA-TBE compressed form instead of parking them physically:
	// the physical block returns to the free list immediately, the
	// content stays advertised by the trie, and a later claim
	// decompresses into a fresh block at a cost the engine's prefill
	// pricing charges explicitly. Trades per-claim decompress latency
	// for effective KV capacity. Requires PrefixCache.
	CompressedCache bool
	// Pool is the replica's disaggregation role. Empty or PoolMixed is
	// the co-located default. A PoolPrefill replica under NewPooledRouter
	// exports every sequence at its first token (shipping compressed KV
	// to a decode replica) and, with AdaptiveChunking, runs the chunk
	// controller at its decode-free operating point. A PoolDecode
	// replica accepts those handoffs and continues the decodes.
	Pool PoolRole
	// Faults attaches this replica's slice of a deterministic fault
	// plan (docs/robustness.md): scripted crash/hang/slowdown/codec/
	// handoff-drop/stale-stats events evaluated on the replica's own
	// virtual clock, so chaos runs replay bit-identically. Nil (the
	// default) injects nothing. A ReplicaFaults must not be shared
	// between servers; project one per replica with FaultPlan.Replica.
	Faults *ReplicaFaults
}

// EventType tags a streaming event.
type EventType string

// Streaming event types. Per request the order is admitted →
// first_token → finished, with preempted (followed by a fresh
// admitted/first_token pair) interleaved when a policy evicts the
// sequence to make room for a more urgent one.
const (
	EventAdmitted   EventType = "admitted"
	EventFirstToken EventType = "first_token"
	EventPreempted  EventType = "preempted"
	EventHandoff    EventType = "handoff" // imported by a decode replica
	EventFinished   EventType = "finished"
)

// Event is one streaming progress notification for a request.
type Event struct {
	Type       EventType `json:"event"`
	ID         int       `json:"id"`
	SimSeconds float64   `json:"sim_seconds"`
	TTFT       float64   `json:"ttft_seconds,omitempty"`
	// CachedTokens reports, on the admitted event, how many prompt
	// tokens the prefix cache served by reference.
	CachedTokens int `json:"cached_tokens,omitempty"`
}

// Result is the final per-request record.
type Result struct {
	ID        int   `json:"id"`
	PromptLen int   `json:"prompt_len"`
	OutputLen int   `json:"output_len"`
	Class     Class `json:"class,omitempty"`
	Preempted int   `json:"preempted,omitempty"` // times evicted and requeued
	// Handoffs counts prefill→decode replica transfers the request's
	// sequence made under a pooled router (normally 1 when
	// disaggregated, 0 when served co-located).
	Handoffs int `json:"handoffs,omitempty"`
	// CachedTokens is how many prompt tokens the prefix cache served
	// by reference (skipped prefill work) on the final admission.
	CachedTokens int `json:"cached_tokens,omitempty"`
	// Resurrected counts how many times a health-aware router
	// resubmitted this request to another replica after the one holding
	// it failed (0 on the undisturbed path; see docs/robustness.md).
	Resurrected int `json:"resurrected,omitempty"`

	// Virtual timestamps (seconds on the scheduler clock). Admitted is
	// the last admission when the request was preempted in between.
	Arrival    float64 `json:"arrival_seconds"`
	Admitted   float64 `json:"admitted_seconds"`
	FirstToken float64 `json:"first_token_seconds"`
	Finished   float64 `json:"finished_seconds"`

	TTFT      float64 `json:"ttft_seconds"`
	TPOT      float64 `json:"tpot_seconds"`
	QueueWait float64 `json:"queue_wait_seconds"` // Admitted − Arrival
	Latency   float64 `json:"latency_seconds"`

	// WallDuration is real elapsed time from Submit to completion.
	WallDuration time.Duration `json:"wall_duration_ns"`

	Err error `json:"-"`
}

// Stats is an aggregate snapshot of one backend. For a Router it spans
// all replicas (counters summed, SimSeconds the slowest replica's
// clock, rate and latency aggregates recomputed fleet-wide).
type Stats struct {
	Submitted int64 `json:"submitted"`
	// Rejected counts client-visible submit failures: queue-full fast
	// failures and, on a router, submissions every replica refused
	// (all stopped, or a request that can never fit).
	Rejected  int64 `json:"rejected"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Preempted int64 `json:"preempted"` // policy evictions (requeued, not failed)
	// PolicyFaults counts out-of-contract Policy.Next returns (an index
	// past the eligible view) the scheduler clamped to the queue head —
	// always 0 for the built-in policies; a nonzero value means a custom
	// policy is buggy and the loop is overriding it to stay live.
	PolicyFaults int64 `json:"policy_faults,omitempty"`

	Queued int `json:"queued"` // waiting for admission
	Active int `json:"active"` // holding KV capacity

	// KV headroom, the router's capacity-aware dispatch signal.
	FreeKVBlocks  int `json:"free_kv_blocks"`
	TotalKVBlocks int `json:"total_kv_blocks"`

	Policy string `json:"policy,omitempty"`

	// Disaggregation metrics. Pool echoes the replica's configured role
	// ("mixed" on a heterogeneous router aggregate); Handoffs counts
	// sequences this replica exported to a decode replica after their
	// first token, with HandoffBytes their total compressed wire
	// footprint; HandoffFailures counts dispatches no decode replica
	// accepted (the sequence then continued co-located); HandoffImports
	// counts sequences this replica imported and decoded to completion.
	// A router sums the counters.
	Pool            string `json:"pool,omitempty"`
	Handoffs        int64  `json:"handoffs"`
	HandoffBytes    int64  `json:"handoff_bytes"`
	HandoffFailures int64  `json:"handoff_failures"`
	HandoffImports  int64  `json:"handoff_imports"`

	// Robustness metrics (docs/robustness.md). LostRequests counts
	// requests this replica held (queued or in-flight) when it crashed,
	// hung, or dropped their handoff in transfer — each was either
	// resurrected elsewhere by a health-aware router or failed to the
	// client. HandoffDrops counts handoff transfers that vanished on
	// the wire (injected by fault plans). CodecFallbacks counts cold
	// prefix-cache blocks that degraded to plain physical parking
	// because the KV codec failed — the graceful-degradation path for
	// codec faults. A router sums all three.
	LostRequests   int64 `json:"lost_requests"`
	HandoffDrops   int64 `json:"handoff_drops"`
	CodecFallbacks int64 `json:"codec_fallbacks"`

	// Health-aware routing telemetry (router-owned; see
	// docs/robustness.md). HealthEnabled reports whether the router
	// runs the per-replica health state machine; HealthState annotates
	// a per-replica snapshot with that replica's current state
	// ("healthy", "degraded", "ejected", "probing" — empty on
	// aggregates and on plain replicas). ReplicasHealthy/Degraded/
	// Ejected census the fleet at snapshot time. Ejections counts
	// breaker trips (replica removed from ranking), HealthProbes the
	// half-open trial submissions sent to ejected replicas, and
	// Reinstatements the probes that brought one back. Resurrections
	// counts lost requests resubmitted to another replica;
	// RetryExhausted the resurrections abandoned after the retry
	// budget (client-visible failures, also folded into Failed).
	// StaleDigestRoutes counts dispatches where a replica's prefix
	// digest was too stale to trust and affinity degraded to
	// least-loaded for that candidate. Nested routers report their own
	// counters; a parent sums them.
	HealthEnabled     bool   `json:"health_enabled,omitempty"`
	HealthState       string `json:"health_state,omitempty"`
	ReplicasHealthy   int    `json:"replicas_healthy,omitempty"`
	ReplicasDegraded  int    `json:"replicas_degraded,omitempty"`
	ReplicasEjected   int    `json:"replicas_ejected,omitempty"`
	Ejections         int64  `json:"ejections,omitempty"`
	HealthProbes      int64  `json:"health_probes,omitempty"`
	Reinstatements    int64  `json:"reinstatements,omitempty"`
	Resurrections     int64  `json:"resurrections,omitempty"`
	RetryExhausted    int64  `json:"retry_exhausted,omitempty"`
	StaleDigestRoutes int64  `json:"stale_digest_routes,omitempty"`

	// WallSeconds is real elapsed time since the scheduler started (0
	// before Start) — the denominator for wall-clock rates, which the
	// virtual-time Goodput is not.
	WallSeconds float64 `json:"wall_seconds"`
	// RecentDrainRPS is the wall-clock completion rate over the last
	// ~30s — the current queue drain rate behind the HTTP layer's
	// Retry-After estimate (a lifetime average would never recover
	// from a long idle stretch). For a Router it sums the replicas.
	RecentDrainRPS float64 `json:"recent_drain_rps"`

	SimSeconds      float64 `json:"sim_seconds"`
	OutputTokens    int64   `json:"output_tokens"`
	DecodeSteps     int64   `json:"decode_steps"`
	PeakConcurrency int     `json:"peak_concurrency"`

	// Chunked-prefill and cadence metrics. PrefillChunkTokens echoes
	// the configured per-iteration budget (0 = monolithic);
	// PrefillIterations and PrefillTokens count prefill work done;
	// MaxDecodeGap is the worst inter-token stall any decoding sequence
	// has seen (virtual seconds) — the number chunking bounds.
	PrefillChunkTokens int     `json:"prefill_chunk_tokens"`
	PrefillIterations  int64   `json:"prefill_iterations"`
	PrefillTokens      int64   `json:"prefill_tokens"`
	MaxDecodeGap       float64 `json:"max_decode_gap_seconds"`

	// Prefix-cache metrics. PrefixCacheEnabled echoes the config;
	// PrefixHits counts admissions that reused cached blocks;
	// PrefixTokensSaved totals the prompt tokens served by reference
	// instead of re-prefilled; CachedKVBlocks are refcount-zero blocks
	// kept warm (they still count as free capacity); SharedKVBlocks
	// are blocks referenced by more than one live sequence. A router
	// sums the counters across replicas.
	PrefixCacheEnabled bool  `json:"prefix_cache_enabled,omitempty"`
	PrefixHits         int64 `json:"prefix_hits"`
	PrefixTokensSaved  int64 `json:"prefix_tokens_saved"`
	CachedKVBlocks     int   `json:"cached_kv_blocks"`
	SharedKVBlocks     int   `json:"shared_kv_blocks"`

	// Prefix-affinity routing telemetry (docs/routing.md). PrefixSummary
	// is the replica's immutable prefix-trie digest (root fingerprints +
	// a bloom filter over committed block paths), published on the
	// admission-epoch cadence; a router merges the replicas' digests
	// (roots unioned, equal-sized blooms OR'd). SummaryAgeSeconds is the
	// virtual time since the digest last changed (max across a fleet —
	// the staleness bound on the router's overlap estimates).
	// PrefixAffinityHits counts submissions an affinity-enabled router
	// dispatched to the replica with the best estimated prefix overlap;
	// AffinitySpills counts submissions that had a preferred replica but
	// were routed least-loaded instead because the preferred one sat
	// outside the load band or under the free-block floor. Replicas
	// always report 0 for both; routers sum nested routers' counts and
	// add their own.
	PrefixSummary      *kvcache.PrefixSummary `json:"prefix_summary,omitempty"`
	SummaryAgeSeconds  float64                `json:"prefix_summary_age_seconds"`
	PrefixAffinityHits int64                  `json:"prefix_affinity_hits"`
	AffinitySpills     int64                  `json:"affinity_spills"`

	// Compressed-cache metrics. CompressedCacheEnabled echoes the
	// config; CompressedKVBlocks are cold blocks currently held in
	// compressed form (trie-advertised, no physical block) with
	// CompressedKVBytes their stored footprint; KVCompressionRatio is
	// the measured aggregate orig/compressed ratio (1.0 while nothing
	// is frozen); DecompressClaims counts frozen blocks restored by
	// prefix claims. A router sums blocks/bytes/claims and weights the
	// ratio by compressed bytes.
	CompressedCacheEnabled bool    `json:"compressed_cache_enabled,omitempty"`
	CompressedKVBlocks     int     `json:"compressed_kv_blocks"`
	CompressedKVBytes      int64   `json:"compressed_bytes"`
	KVCompressionRatio     float64 `json:"compression_ratio"`
	DecompressClaims       int64   `json:"decompress_claims"`

	// Adaptive-controller telemetry. AdaptiveChunking/AdaptivePrefixCache
	// echo the config; ChunkBudget is the budget the next iteration will
	// honour (the controller's smoothed value, or the static flag), with
	// ChunkBudgetMin/Max the fleet spread on a router (min==max==budget
	// on one replica); TargetStepTime is the chunk controller's combined
	// step-time target and StepTimeEWMA the smoothed iteration time it
	// holds under it (worst replica on a router). CachePoolTarget is the
	// cached-pool bound the sizing controller (or static config)
	// currently enforces, summed fleet-wide; CacheHitRateEWMA averages
	// the adaptive replicas and CachePressureEWMA reports the worst one.
	AdaptiveChunking    bool    `json:"adaptive_chunking,omitempty"`
	ChunkBudget         int     `json:"chunk_budget_tokens"`
	ChunkBudgetMin      int     `json:"chunk_budget_min_tokens"`
	ChunkBudgetMax      int     `json:"chunk_budget_max_tokens"`
	TargetStepTime      float64 `json:"target_step_time_seconds,omitempty"`
	StepTimeEWMA        float64 `json:"step_time_ewma_seconds"`
	AdaptivePrefixCache bool    `json:"adaptive_prefix_cache,omitempty"`
	CachePoolTarget     int     `json:"cache_pool_target_blocks"`
	CacheHitRateEWMA    float64 `json:"cache_hit_rate_ewma"`
	CachePressureEWMA   float64 `json:"cache_pressure_ewma"`

	Goodput    float64 `json:"goodput_rps"`      // completed / sim second
	Throughput float64 `json:"throughput_tok_s"` // tokens / sim second

	MeanTTFT      float64 `json:"mean_ttft_seconds"`
	MeanTPOT      float64 `json:"mean_tpot_seconds"`
	MeanQueueWait float64 `json:"mean_queue_wait_seconds"`
}

// Ticket tracks one accepted request.
type Ticket struct {
	// ID is the request's sequence id in the scheduler.
	ID     int
	events chan Event
	result chan Result
}

// Events streams progress notifications (admitted, first_token,
// preempted, finished). The channel is closed after the final event.
// Events are best-effort: a slow consumer may miss intermediate ones,
// never the Result.
func (t *Ticket) Events() <-chan Event { return t.events }

// Result delivers the final per-request record exactly once.
func (t *Ticket) Result() <-chan Result { return t.result }

type call struct {
	req      engine.Request
	class    Class
	ttftSLO  float64 // relative first-token deadline; 0 = none
	preempts int
	handoffs int // replica transfers; written only by the call's current owner
	// retries counts resurrections. Written by the health router;
	// atomic because a late duplicate's deliver may read it while the
	// router is resurrecting what it believes is a lost call.
	retries atomic.Int32
	backoff float64 // virtual-seconds arrival delay the next owner stamps
	// clientID is the id the submitter's Ticket carries. Resurrection
	// mints a fresh req.ID per attempt (idempotent delivery needs
	// distinct scheduler ids), but every event and the Result report
	// this stable handle.
	clientID   int
	admittedAt float64 // virtual time of the last admission
	submitted  time.Time
	done       atomic.Bool // set by claim; makes delivery idempotent
	events     chan Event
	result     chan Result
	evMu       sync.Mutex // serialises emit against closeEvents
	evClosed   bool
	ticket     Ticket // returned to the submitter; embedded to spare an allocation
}

// id is the client-visible request id: the Ticket's id once Submit
// assigned one, the raw scheduler id for internally built calls.
func (c *call) id() int {
	if c.clientID != 0 {
		return c.clientID
	}
	return c.req.ID
}

// deadline is the absolute virtual first-token deadline (+Inf without
// an SLO). Valid once the arrival has been stamped.
func (c *call) deadline() float64 {
	if c.ttftSLO <= 0 {
		return math.Inf(1)
	}
	return c.req.ArrivalSeconds + c.ttftSLO
}

// emit sends a streaming event without ever blocking the scheduler.
// Safe against a concurrent terminal delivery on another replica (a
// resurrected duplicate finishing first closes the stream; the late
// original's progress events must drop, not panic).
func (c *call) emit(ev Event) {
	ev.ID = c.id()
	c.evMu.Lock()
	if !c.evClosed {
		select {
		case c.events <- ev:
		default: // slow consumer: drop the progress event
		}
	}
	c.evMu.Unlock()
}

// claim wins the right to deliver the call's terminal outcome. Exactly
// one claimant succeeds per request, however many replicas raced to
// finish it — the idempotence that makes duplicated handoffs and
// resurrected duplicates harmless. The winner must complete the
// delivery with deliver; losers must touch neither the result channel
// nor any completion counter.
func (c *call) claim() bool { return c.done.CompareAndSwap(false, true) }

// deliver completes a claimed terminal outcome: it stamps the
// call-owned result fields, sends the Result (buffered, never blocks)
// and closes the event stream. Call only after winning claim.
func (c *call) deliver(res Result) {
	res.ID = c.id()
	res.Class = c.class
	res.Preempted = c.preempts
	res.Handoffs = c.handoffs
	res.Resurrected = int(c.retries.Load())
	res.WallDuration = time.Since(c.submitted)
	c.result <- res
	c.evMu.Lock()
	c.evClosed = true
	close(c.events)
	c.evMu.Unlock()
}

// finish is claim+deliver in one step, reporting whether this caller
// won the claim (and so whether the outcome should be counted).
func (c *call) finish(res Result) bool {
	if !c.claim() {
		return false
	}
	c.deliver(res)
	return true
}
