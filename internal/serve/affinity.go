package serve

import (
	"fmt"
	"math"
	"sort"

	"zipserv/internal/engine"
	"zipserv/internal/kvcache"
)

// Prefix-affinity, cache-aware dispatch (docs/routing.md): instead of
// scattering requests that share a system prompt across the fleet —
// duplicating the prefix trie on every replica — an affinity-enabled
// router estimates each replica's cached overlap with the prompt from
// the prefix-trie digest riding its stats snapshot (root fingerprints
// gate the first block exactly; a bloom filter extends the match block
// by block) and prefers the replica with the most cached tokens to
// reuse. Affinity only wins inside a bounded load band: when the
// preferred replica's queue depth sits more than LoadBand past the
// least-loaded candidate, or its free blocks cannot hold the request's
// reservation, the router spills to plain least-loaded dispatch —
// cache locality is a latency optimisation, never a hotspot generator.
// Dispatch stays deterministic: scoring reads one stats snapshot per
// candidate and every ordering is a stable sort.

// AffinityConfig tunes the router's prefix-affinity dispatch. The zero
// value selects sane defaults for every field.
type AffinityConfig struct {
	// LoadBand bounds how far past the least-loaded candidate's
	// queued+active depth the preferred replica may sit and still win.
	// Past it the dispatch spills to least-loaded. Default 8.
	LoadBand int
	// MinFreeBlocks is a free-KV-block floor on the preferred replica,
	// on top of the request's own conservative prompt+output
	// reservation (which is always required). Default 0.
	MinFreeBlocks int
	// MinOverlapTokens is the smallest estimated cached overlap worth
	// steering for; smaller matches route least-loaded. Default: one
	// KV block (kvcache.DefaultBlockTokens).
	MinOverlapTokens int
	// LongPromptTokens marks a prompt as long: at or above it,
	// equally-loaded candidates tie-break toward replicas whose
	// adaptive chunk budget sits at its ceiling — the PR 5 controller's
	// idle operating point, meaning a loop with prefill headroom to
	// spare — before free blocks. Default engine.DefaultAdaptiveChunkMax.
	LongPromptTokens int
	// MaxSummaryAge bounds how stale (virtual seconds since last
	// change) a replica's prefix digest may be and still steer
	// dispatch. Past it the digest is ignored — the candidate scores
	// zero overlap and competes least-loaded — and the dispatch counts
	// in Stats.StaleDigestRoutes: the graceful-degradation path for a
	// replica publishing frozen stats (docs/robustness.md). 0
	// (default) trusts digests of any age.
	MaxSummaryAge float64
}

func (cfg *AffinityConfig) defaults() {
	if cfg.LoadBand == 0 {
		cfg.LoadBand = 8
	}
	if cfg.MinOverlapTokens == 0 {
		cfg.MinOverlapTokens = kvcache.DefaultBlockTokens
	}
	if cfg.LongPromptTokens == 0 {
		cfg.LongPromptTokens = engine.DefaultAdaptiveChunkMax
	}
}

// EnableAffinity turns on prefix-affinity dispatch for every subsequent
// Submit (and, on a pooled router, every prefill→decode handoff
// dispatch). Call it before traffic; it is not synchronised against
// in-flight Submits. Requests without prompt tokens always route
// least-loaded — there is nothing to match.
func (r *Router) EnableAffinity(cfg AffinityConfig) error {
	if cfg.LoadBand < 0 {
		return fmt.Errorf("serve: affinity LoadBand must be >= 0, got %d", cfg.LoadBand)
	}
	if cfg.MinFreeBlocks < 0 {
		return fmt.Errorf("serve: affinity MinFreeBlocks must be >= 0, got %d", cfg.MinFreeBlocks)
	}
	if cfg.MinOverlapTokens < 0 {
		return fmt.Errorf("serve: affinity MinOverlapTokens must be >= 0, got %d", cfg.MinOverlapTokens)
	}
	if cfg.LongPromptTokens < 0 {
		return fmt.Errorf("serve: affinity LongPromptTokens must be >= 0, got %d", cfg.LongPromptTokens)
	}
	if math.IsNaN(cfg.MaxSummaryAge) || math.IsInf(cfg.MaxSummaryAge, 0) || cfg.MaxSummaryAge < 0 {
		return fmt.Errorf("serve: affinity MaxSummaryAge must be finite and >= 0, got %v", cfg.MaxSummaryAge)
	}
	cfg.defaults()
	r.affinity = &cfg
	return nil
}

// AffinityEnabled reports whether prefix-affinity dispatch is on.
func (r *Router) AffinityEnabled() bool { return r.affinity != nil }

// affinityCandidate is one replica's scored view for a dispatch.
type affinityCandidate struct {
	b           Backend
	idx         int // original tier index, the final determinism tie-break
	load        int // queued+active
	free        int // free KV blocks
	overlap     int // estimated cached prompt tokens from the trie digest
	blockTokens int // the candidate's digest granularity (0 = no digest)
	idle        bool
}

// rankForRequest orders a tier for one request. Without affinity (or
// without prompt tokens) it is plain least-loaded ranking and preferred
// is nil. With affinity it snapshots each candidate once, scores the
// estimated prefix overlap against the request, and — when some
// candidate's overlap clears MinOverlapTokens — puts the best
// in-band-and-fitting one first. preferred then names the replica the
// request *wants* (the best overlap, in or out of band): landing there
// counts as an affinity hit, landing anywhere else as a spill.
func (r *Router) rankForRequest(tier []Backend, req Request) (ranked []Backend, preferred Backend) {
	if r.affinity == nil || len(req.Prompt) == 0 {
		return rankByLoad(tier), nil
	}
	cfg := r.affinity
	// PromptLen may be omitted when tokens are given (Server.Submit
	// defaults it later); score with the effective length.
	promptLen := req.PromptLen
	if promptLen == 0 {
		promptLen = len(req.Prompt)
	}
	longPrompt := promptLen >= cfg.LongPromptTokens

	cands := make([]affinityCandidate, 0, len(tier))
	hashed := make(map[int]kvcache.HashedPrompt, 1) // per block granularity
	staleSeen := false
	minLoad := -1
	for i, b := range tier {
		st := b.Stats()
		c := affinityCandidate{
			b: b, idx: i,
			load: st.Queued + st.Active,
			free: st.FreeKVBlocks,
			// Budget pinned at its ceiling = the adaptive controller's
			// idle operating point: the loop has prefill headroom to
			// spare, a good home for a long prompt.
			idle: st.AdaptiveChunking && st.ChunkBudgetMax > 0 && st.ChunkBudget >= st.ChunkBudgetMax,
		}
		if s := st.PrefixSummary; s != nil {
			if cfg.MaxSummaryAge > 0 && st.SummaryAgeSeconds > cfg.MaxSummaryAge {
				// The digest outlived its trust bound (a stalled or
				// stale-stats replica): ignore it rather than steer
				// shared-prefix traffic onto content that may be gone.
				// The candidate still competes least-loaded.
				staleSeen = true
			} else {
				hp, ok := hashed[s.BlockTokens]
				if !ok {
					hp = kvcache.HashPromptTokens(req.Prompt, s.BlockTokens)
					hashed[s.BlockTokens] = hp
				}
				c.overlap = s.MatchTokens(hp)
				c.blockTokens = s.BlockTokens
			}
		}
		if minLoad < 0 || c.load < minLoad {
			minLoad = c.load
		}
		cands = append(cands, c)
	}
	if staleSeen {
		r.staleDigest.Add(1)
	}

	// The replica the request wants: best overlap, band or no band.
	// Ties break toward lower load, then tier order.
	want := -1
	for i, c := range cands {
		if c.overlap < cfg.MinOverlapTokens {
			continue
		}
		if want < 0 || c.overlap > cands[want].overlap ||
			(c.overlap == cands[want].overlap && c.load < cands[want].load) {
			want = i
		}
	}

	// Least-loaded order for everything else (and the spill path), with
	// the long-prompt idle-loop tie-break folded in.
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].load != cands[j].load {
			return cands[i].load < cands[j].load
		}
		if longPrompt && cands[i].idle != cands[j].idle {
			return cands[i].idle
		}
		return cands[i].free > cands[j].free
	})

	ranked = make([]Backend, 0, len(cands))
	if want >= 0 {
		preferred = tier[want]
		pc := cands[0] // locate the wanted candidate post-sort
		for _, c := range cands {
			if c.idx == want {
				pc = c
				break
			}
		}
		// Affinity wins only in band and with room for the reservation:
		// the preferred replica moves to the front of the ranking.
		// Out of band or under the floor the dispatch deliberately
		// spills — the preferred replica is demoted to last-resort
		// failover, so the request goes somewhere with room even when
		// the starved replica is momentarily the least-loaded (failover
		// may still reach it when everything else rejects, which then
		// counts as a hit).
		bt := pc.blockTokens
		if bt <= 0 {
			bt = kvcache.DefaultBlockTokens
		}
		need := kvcache.BlocksFor(promptLen+req.OutputLen, bt)
		if pc.load <= minLoad+cfg.LoadBand && pc.free >= need && pc.free >= cfg.MinFreeBlocks {
			ranked = append(ranked, preferred)
			for _, c := range cands {
				if c.b != preferred {
					ranked = append(ranked, c.b)
				}
			}
		} else {
			for _, c := range cands {
				if c.b != preferred {
					ranked = append(ranked, c.b)
				}
			}
			ranked = append(ranked, preferred)
		}
		return ranked, preferred
	}
	for _, c := range cands {
		ranked = append(ranked, c.b)
	}
	return ranked, preferred
}

// noteDispatch records where an affinity-scored request actually
// landed: on the replica it wanted (hit) or anywhere else (spill).
func (r *Router) noteDispatch(landed, preferred Backend) {
	if preferred == nil {
		return
	}
	if landed == preferred {
		r.affinityHits.Add(1)
	} else {
		r.affinitySpills.Add(1)
	}
}
