package serve

import (
	"math"
	"sort"
	"testing"

	"zipserv/internal/engine"
)

// mixedTrace builds a bursty interleaved workload: n/2 short
// interactive requests and n/2 long batch requests, alternating, all
// arriving in one tight burst so admission order is decided by the
// policy, not by arrival spacing.
func mixedTrace(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		arrival := float64(i) * 1e-4
		if i%2 == 0 {
			reqs[i] = Request{PromptLen: 64, OutputLen: 16, Arrival: arrival,
				Class: ClassInteractive, TTFTDeadline: 0.5}
		} else {
			reqs[i] = Request{PromptLen: 1024, OutputLen: 512, Arrival: arrival,
				Class: ClassBatch}
		}
	}
	return reqs
}

// replay submits reqs up front, runs the server to completion and
// returns per-request results in submission order.
func replay(t *testing.T, cfg Config, reqs []Request) []Result {
	t.Helper()
	s := newServer(t, cfg)
	tickets := make([]*Ticket, len(reqs))
	for i, r := range reqs {
		tk, err := s.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	s.Start()
	results := make([]Result, len(reqs))
	for i, tk := range tickets {
		results[i] = awaitResult(t, tk)
		if results[i].Err != nil {
			t.Fatalf("request %d failed: %v", i, results[i].Err)
		}
	}
	return results
}

func p50(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}

func classTTFTs(reqs []Request, results []Result, class Class) []float64 {
	var out []float64
	for i, r := range reqs {
		if r.Class == class {
			out = append(out, results[i].TTFT)
		}
	}
	return out
}

// TestPriorityBeatsFIFOInteractiveTTFT is the PR's scheduling
// acceptance benchmark: on the same mixed interactive/batch burst,
// PriorityPolicy must cut the interactive-class p50 TTFT below
// FIFOPolicy's, because interactive requests no longer queue behind
// the batch requests interleaved ahead of them.
func TestPriorityBeatsFIFOInteractiveTTFT(t *testing.T) {
	eng := testEngine(t, engine.BackendZipServ)
	reqs := mixedTrace(48)
	// MaxBatch forces admission contention regardless of KV headroom,
	// so the policies differ deterministically.
	fifo := replay(t, Config{Engine: eng, QueueDepth: len(reqs), MaxBatch: 8, Policy: FIFOPolicy{}}, reqs)
	prio := replay(t, Config{Engine: eng, QueueDepth: len(reqs), MaxBatch: 8, Policy: PriorityPolicy{}}, reqs)

	fifoP50 := p50(classTTFTs(reqs, fifo, ClassInteractive))
	prioP50 := p50(classTTFTs(reqs, prio, ClassInteractive))
	t.Logf("interactive p50 TTFT: fifo %.3fs, priority %.3fs (%.1fx)",
		fifoP50, prioP50, fifoP50/prioP50)
	if prioP50 >= fifoP50 {
		t.Errorf("interactive p50 TTFT under priority (%.3fs) not below FIFO (%.3fs)", prioP50, fifoP50)
	}
}

// TestSLOBeatsFIFOInteractiveTTFT: deadline-carrying interactive
// requests must also win under earliest-deadline-first.
func TestSLOBeatsFIFOInteractiveTTFT(t *testing.T) {
	eng := testEngine(t, engine.BackendZipServ)
	reqs := mixedTrace(48)
	fifo := replay(t, Config{Engine: eng, QueueDepth: len(reqs), MaxBatch: 8, Policy: FIFOPolicy{}}, reqs)
	slo := replay(t, Config{Engine: eng, QueueDepth: len(reqs), MaxBatch: 8, Policy: SLOPolicy{}}, reqs)

	fifoP50 := p50(classTTFTs(reqs, fifo, ClassInteractive))
	sloP50 := p50(classTTFTs(reqs, slo, ClassInteractive))
	t.Logf("interactive p50 TTFT: fifo %.3fs, slo %.3fs (%.1fx)", fifoP50, sloP50, fifoP50/sloP50)
	if sloP50 >= fifoP50 {
		t.Errorf("interactive p50 TTFT under slo (%.3fs) not below FIFO (%.3fs)", sloP50, fifoP50)
	}
}

// TestBatchNotStarvedUnderInteractiveLoad is the starvation-freedom
// property: under a sustained interactive flood, every batch-class
// request must still be admitted while the flood is ongoing — aging
// promotes it past fresher interactive arrivals — rather than only
// after the flood drains.
func TestBatchNotStarvedUnderInteractiveLoad(t *testing.T) {
	eng := testEngine(t, engine.BackendZipServ)
	const aging = 2.0
	// A steady interactive stream covering a long window, plus batch
	// requests near the start.
	var reqs []Request
	const interactive, batch = 220, 6
	for i := 0; i < interactive; i++ {
		reqs = append(reqs, Request{PromptLen: 128, OutputLen: 64,
			Arrival: float64(i) * 0.05, Class: ClassInteractive})
	}
	lastArrival := reqs[len(reqs)-1].Arrival
	for i := 0; i < batch; i++ {
		reqs = append(reqs, Request{PromptLen: 1024, OutputLen: 256,
			Arrival: 0.1 + float64(i)*0.01, Class: ClassBatch})
	}

	results := replay(t, Config{
		Engine: eng, QueueDepth: len(reqs), MaxBatch: 4,
		Policy: PriorityPolicy{AgingSeconds: aging},
	}, reqs)

	// The interactive flood must outlast every batch admission for the
	// property to be non-vacuous.
	for i := interactive; i < len(reqs); i++ {
		res := results[i]
		if res.Admitted >= lastArrival {
			t.Errorf("batch request %d admitted at %.2fs, after the interactive flood ended (%.2fs): starved",
				res.ID, res.Admitted, lastArrival)
		}
		if wait := res.QueueWait; wait > 10*aging {
			t.Errorf("batch request %d waited %.2fs, want bounded by aging (%.0fs)", res.ID, wait, aging)
		}
	}
}

// TestSLOPreemptsForUrgentDeadline drives the preempt-and-requeue
// path: with KV capacity pinned by deadline-free hogs, a tight-
// deadline arrival must preempt a victim (which is requeued, not
// failed) instead of waiting for a hog to finish.
func TestSLOPreemptsForUrgentDeadline(t *testing.T) {
	eng := testEngine(t, engine.BackendZipServ)
	plan := eng.Plan()
	// Two hogs pin all but a sliver of the KV plan (block = 16
	// tokens), so the urgent request cannot fit without a preemption.
	hogTokens := (plan.Blocks - 4) / 2 * 16
	hog := Request{PromptLen: hogTokens / 2, OutputLen: hogTokens - hogTokens/2, Arrival: 0, Class: ClassBatch}
	urgent := Request{PromptLen: 256, OutputLen: 64, Arrival: 0.5, Class: ClassInteractive, TTFTDeadline: 1}

	s := newServer(t, Config{Engine: eng, QueueDepth: 8, Policy: SLOPolicy{}})
	h1, err := s.Submit(hog)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := s.Submit(hog)
	if err != nil {
		t.Fatal(err)
	}
	u, err := s.Submit(urgent)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()

	ur := awaitResult(t, u)
	if ur.Err != nil {
		t.Fatalf("urgent request failed: %v", ur.Err)
	}
	preempted := 0
	for _, tk := range []*Ticket{h1, h2} {
		res := awaitResult(t, tk)
		if res.Err != nil {
			t.Fatalf("preempted hog failed: %v", res.Err)
		}
		preempted += res.Preempted
	}
	if preempted == 0 {
		t.Fatal("urgent deadline admitted without preempting a hog — capacity sizing is vacuous")
	}
	if st := s.Stats(); st.Preempted != int64(preempted) {
		t.Errorf("stats preempted %d, results saw %d", st.Preempted, preempted)
	}
	if ur.TTFT <= 0 {
		t.Errorf("urgent TTFT %.3f, want > 0", ur.TTFT)
	}
}

// TestPolicyByName covers the flag surface.
func TestPolicyByName(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Errorf("PolicyByName(%q).Name() = %q", name, p.Name())
		}
	}
	if p, err := PolicyByName(""); err != nil || p.Name() != "fifo" {
		t.Errorf("empty policy = %v, %v, want fifo default", p, err)
	}
	if _, err := PolicyByName("lifo"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestFIFOPolicyMatchesLegacyBehaviour: a nil-policy server and an
// explicit FIFOPolicy server must produce identical virtual-time
// schedules, so the redesign cannot have changed the default path.
func TestFIFOPolicyMatchesLegacyBehaviour(t *testing.T) {
	eng := testEngine(t, engine.BackendZipServ)
	trace := engine.SyntheticTrace(32, 150, 256, 32, 11)
	reqs := make([]Request, len(trace))
	for i, r := range trace {
		reqs[i] = Request{PromptLen: r.PromptLen, OutputLen: r.OutputLen, Arrival: r.ArrivalSeconds}
	}
	def := replay(t, Config{Engine: eng, QueueDepth: len(reqs)}, reqs)
	fifo := replay(t, Config{Engine: eng, QueueDepth: len(reqs), Policy: FIFOPolicy{}}, reqs)
	for i := range def {
		if def[i].Admitted != fifo[i].Admitted || def[i].Finished != fifo[i].Finished {
			t.Fatalf("request %d schedules diverge: default %+v vs fifo %+v", i, def[i], fifo[i])
		}
	}
}
