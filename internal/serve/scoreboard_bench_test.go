package serve

import "testing"

// deepCore builds an SLO scoreboard core holding depth eligible
// requests with deadlines spread across rank buckets — the policy with
// the most scoreboard machinery in play (two-key eligible ordering plus
// the running victim scoreboard).
func deepCore(depth int) (*schedCore, float64) {
	sc := newSchedCore(SLOPolicy{})
	const now = 1 << 20 // past every arrival below
	for i := 0; i < depth; i++ {
		arrival := float64(i%31) * 0.125
		ttft := float64(i%97)*0.25 + 0.5
		c := fuzzCall(i+1, arrival, ClassInteractive, ttft)
		sc.add(c)
	}
	sc.promote(now)
	return sc, now
}

// BenchmarkAdmissionDeepQueue measures one admission-slot decision —
// promote, peek, remove, requeue — at three queue depths. The contract
// the CI gate enforces: 0 allocs/op, and ns/op independent of depth
// (the 10k and 64k runs within noise of the 1k run), because every
// operation is a bitmap pick plus an intrusive-list unlink, never a
// scan of the queue.
func BenchmarkAdmissionDeepQueue(b *testing.B) {
	for _, depth := range []struct {
		name string
		n    int
	}{{"1k", 1000}, {"10k", 10000}, {"64k", 64000}} {
		b.Run(depth.name, func(b *testing.B) {
			sc, now := deepCore(depth.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.promote(now)
				c, ok := sc.peek()
				if !ok {
					b.Fatal("eligible scoreboard drained")
				}
				sc.removeEligible(c.req.ID)
				// Requeue the same call: a recycled id keeps the index
				// map at steady state, so the cycle exercises the pool's
				// zero-allocation path the way a live admit/preempt churn
				// does.
				sc.add(c)
			}
		})
	}
}

// BenchmarkVictimSelection measures one SLO preemption pick — the
// reverse-CLZ max over a 10k-sequence running scoreboard — plus the
// mirror remove/re-add a preemption performs. Same CI contract:
// 0 allocs/op, depth-independent.
func BenchmarkVictimSelection(b *testing.B) {
	const depth = 10000
	sc := newSchedCore(SLOPolicy{})
	byID := make(map[int]*call, depth)
	for i := 0; i < depth; i++ {
		c := fuzzCall(i+1, 0, ClassInteractive, float64(i%89)*0.5+1)
		c.admittedAt = float64(i % 7)
		byID[c.req.ID] = c
		sc.runningAdd(c)
	}
	const blockedDeadline = 0.25 // earlier than every running deadline
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, ok := sc.victim(blockedDeadline)
		if !ok {
			b.Fatal("victim scoreboard drained")
		}
		sc.runningRemove(id)
		sc.runningAdd(byID[id])
	}
}
