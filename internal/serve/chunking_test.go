package serve

import (
	"context"
	"math"
	"testing"
	"time"

	"zipserv/internal/engine"
)

// TestChunkedPrefillServes runs the live loop under a chunk budget: a
// trace mixing a very long prompt into short decoders must fully
// complete, split its prefill across many iterations, and publish the
// chunk/cadence metrics on the stats surface.
func TestChunkedPrefillServes(t *testing.T) {
	s := newServer(t, Config{QueueDepth: 16, PrefillChunkTokens: 64})
	reqs := []Request{
		{PromptLen: 48, OutputLen: 32, Arrival: 0},
		{PromptLen: 48, OutputLen: 32, Arrival: 0},
		{PromptLen: 1024, OutputLen: 8, Arrival: 0.01},
		{PromptLen: 48, OutputLen: 32, Arrival: 0.02},
	}
	var wantPrefill int64
	tickets := make([]*Ticket, len(reqs))
	for i, r := range reqs {
		tk, err := s.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
		wantPrefill += int64(r.PromptLen)
	}
	s.Start()
	for i, tk := range tickets {
		if res := awaitResult(t, tk); res.Err != nil {
			t.Fatalf("request %d failed: %v", i, res.Err)
		}
	}
	st := s.Stats()
	if st.PrefillChunkTokens != 64 {
		t.Errorf("stats chunk budget %d, want 64", st.PrefillChunkTokens)
	}
	if st.PrefillTokens != wantPrefill {
		t.Errorf("prefilled %d prompt tokens, want %d", st.PrefillTokens, wantPrefill)
	}
	// The 1024-token prompt alone needs 16 chunk iterations.
	if st.PrefillIterations < 16 {
		t.Errorf("prefill ran in %d iterations, want >= 16 under a 64-token budget", st.PrefillIterations)
	}
	if st.MaxDecodeGap <= 0 {
		t.Errorf("max decode gap %.6f, want > 0 once decoders overlapped prefill", st.MaxDecodeGap)
	}
	if st.Completed != int64(len(reqs)) {
		t.Errorf("completed %d, want %d", st.Completed, len(reqs))
	}
}

// TestChunkedPreemptionDiscardsProgress: under capacity pressure and a
// chunk budget, the SLO policy must be able to preempt a victim that
// is still mid-prefill; the victim requeues with its chunk progress
// discarded and still completes.
func TestChunkedPreemptionDiscardsProgress(t *testing.T) {
	eng := testEngine(t, engine.BackendZipServ)
	plan := eng.Plan()
	hogTokens := (plan.Blocks - 4) / 2 * 16
	hog := Request{PromptLen: hogTokens / 2, OutputLen: hogTokens - hogTokens/2, Arrival: 0, Class: ClassBatch}
	urgent := Request{PromptLen: 256, OutputLen: 64, Arrival: 0.001, Class: ClassInteractive, TTFTDeadline: 1}

	// A small budget keeps the huge hog prompts mid-prefill for many
	// iterations, so the preemption victim is a partially prefilled
	// sequence, not a decoding one.
	s := newServer(t, Config{Engine: eng, QueueDepth: 8, Policy: SLOPolicy{}, PrefillChunkTokens: 128})
	h1, err := s.Submit(hog)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := s.Submit(hog)
	if err != nil {
		t.Fatal(err)
	}
	u, err := s.Submit(urgent)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()

	if ur := awaitResult(t, u); ur.Err != nil {
		t.Fatalf("urgent request failed: %v", ur.Err)
	}
	preempted := 0
	for _, tk := range []*Ticket{h1, h2} {
		res := awaitResult(t, tk)
		if res.Err != nil {
			t.Fatalf("preempted hog failed: %v", res.Err)
		}
		preempted += res.Preempted
	}
	if preempted == 0 {
		t.Fatal("urgent deadline admitted without preempting a hog — capacity sizing is vacuous")
	}
	// Discarded chunk progress is recomputed: total prefilled prompt
	// tokens must exceed the sum of prompts by the wasted chunks.
	st := s.Stats()
	if flat := int64(hog.PromptLen)*2 + int64(urgent.PromptLen); st.PrefillTokens <= flat {
		t.Errorf("prefill tokens %d, want > %d (preempted chunk progress recomputed)", st.PrefillTokens, flat)
	}
}

// TestAdmissionWindowCoalesces: with a micro-batch admission window,
// two live submissions a few wall-milliseconds apart must enter the
// same prefill batch — identical virtual admission and first-token
// stamps — instead of the first draining before the second arrives.
func TestAdmissionWindowCoalesces(t *testing.T) {
	s := newServer(t, Config{QueueDepth: 8, AdmissionWindow: 300 * time.Millisecond})
	s.Start()
	r := Request{PromptLen: 128, OutputLen: 32, Arrival: ArrivalNow}
	tk1, err := s.Submit(r)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	tk2, err := s.Submit(r)
	if err != nil {
		t.Fatal(err)
	}
	res1, res2 := awaitResult(t, tk1), awaitResult(t, tk2)
	if res1.Err != nil || res2.Err != nil {
		t.Fatalf("results failed: %v / %v", res1.Err, res2.Err)
	}
	if res1.Admitted != res2.Admitted || res1.FirstToken != res2.FirstToken {
		t.Errorf("window did not coalesce: admitted %.6f/%.6f, first token %.6f/%.6f",
			res1.Admitted, res2.Admitted, res1.FirstToken, res2.FirstToken)
	}
	if st := s.Stats(); st.PeakConcurrency < 2 {
		t.Errorf("peak concurrency %d, want >= 2 (batched prefill)", st.PeakConcurrency)
	}

	// A second burst after the batch drained: the window must re-arm
	// on every idle edge, not only on the loop's first iteration.
	tk3, err := s.Submit(r)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	tk4, err := s.Submit(r)
	if err != nil {
		t.Fatal(err)
	}
	res3, res4 := awaitResult(t, tk3), awaitResult(t, tk4)
	if res3.Err != nil || res4.Err != nil {
		t.Fatalf("second-burst results failed: %v / %v", res3.Err, res4.Err)
	}
	if res3.Admitted != res4.Admitted {
		t.Errorf("window did not re-arm after a busy period: admitted %.6f/%.6f",
			res3.Admitted, res4.Admitted)
	}
}

// TestTimeScalePacesWallClock: with a time scale, the loop must spend
// at least (virtual duration × scale) of wall time serving, so live
// arrivals get a real window to batch in.
func TestTimeScalePacesWallClock(t *testing.T) {
	const scale = 1.0
	s := newServer(t, Config{QueueDepth: 8, TimeScale: scale})
	s.Start()
	start := time.Now()
	tk, err := s.Submit(Request{PromptLen: 64, OutputLen: 24, Arrival: ArrivalNow})
	if err != nil {
		t.Fatal(err)
	}
	res := awaitResult(t, tk)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	wall := time.Since(start).Seconds()
	// The last iteration's sleep lands after result delivery, so allow
	// one decode step of slack below the exact product.
	if minWall := res.Finished * scale * 0.5; wall < minWall {
		t.Errorf("paced run took %.4fs wall for %.4fs virtual at scale %.1f, want >= %.4fs",
			wall, res.Finished, scale, minWall)
	}
}

// TestStopCancelsPacing: once Stop begins, a paced server must drain
// flat out — pacing only exists so future arrivals can batch, and
// Submit already rejects them. Without the cancel, this drain would
// need OutputLen × step × TimeScale ≈ minutes of wall time.
func TestStopCancelsPacing(t *testing.T) {
	s := newServer(t, Config{QueueDepth: 8, TimeScale: 100})
	s.Start()
	tk, err := s.Submit(Request{PromptLen: 64, OutputLen: 400, Arrival: ArrivalNow})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the request get in flight, paced
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Stop(ctx); err != nil {
		t.Fatalf("paced drain did not finish: %v", err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Errorf("drain took %v; pacing was not cancelled by Stop", wall)
	}
	if res := awaitResult(t, tk); res.Err != nil {
		t.Errorf("in-flight request cut off during drain: %v", res.Err)
	}
}

// TestRecentDrainRPSZeroSpanClamped pins the Retry-After regression: a
// first burst whose completions all share one wall timestamp has a
// zero-width drain window; the published rate must stay finite (the
// 1s-floor clamp), never Inf/NaN.
func TestRecentDrainRPSZeroSpanClamped(t *testing.T) {
	s := newServer(t, Config{QueueDepth: 4})
	s.Start()
	now := time.Now()
	s.statsMu.Lock()
	s.recent = append(s.recent[:0], now, now, now)
	s.statsMu.Unlock()
	st := s.Stats()
	if math.IsInf(st.RecentDrainRPS, 0) || math.IsNaN(st.RecentDrainRPS) {
		t.Fatalf("zero-span drain window published a non-finite rate: %v", st.RecentDrainRPS)
	}
	if st.RecentDrainRPS != 3 { // 3 completions over the 1s floor
		t.Errorf("RecentDrainRPS = %v, want 3 (3 completions / 1s floor)", st.RecentDrainRPS)
	}
}
