package serve

import (
	"math"
	"sort"
	"testing"

	"zipserv/internal/engine"
)

func TestAdaptiveConfigValidation(t *testing.T) {
	eng := testEngine(t, engine.BackendZipServ)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nan target", Config{Engine: eng, AdaptiveChunking: true, TargetStepTime: math.NaN()}},
		{"inf target", Config{Engine: eng, AdaptiveChunking: true, TargetStepTime: math.Inf(1)}},
		{"negative target", Config{Engine: eng, AdaptiveChunking: true, TargetStepTime: -0.01}},
		{"target without adaptive", Config{Engine: eng, TargetStepTime: 0.05}},
		{"adaptive with static chunk", Config{Engine: eng, AdaptiveChunking: true, PrefillChunkTokens: 64}},
		{"adaptive cache without prefix cache", Config{Engine: eng, AdaptivePrefixCache: true}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	s, err := New(Config{Engine: eng, AdaptiveChunking: true, PrefixCache: true, AdaptivePrefixCache: true})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if !st.AdaptiveChunking || !st.AdaptivePrefixCache {
		t.Errorf("seed stats lost the adaptive flags: %+v", st)
	}
	if st.TargetStepTime != DefaultTargetStepTime {
		t.Errorf("seed target %v, want default %v", st.TargetStepTime, DefaultTargetStepTime)
	}
	if st.ChunkBudget != engine.DefaultAdaptiveChunkMax || st.ChunkBudgetMin != st.ChunkBudget || st.ChunkBudgetMax != st.ChunkBudget {
		t.Errorf("seed budget %d [%d, %d], want the adaptive ceiling %d",
			st.ChunkBudget, st.ChunkBudgetMin, st.ChunkBudgetMax, engine.DefaultAdaptiveChunkMax)
	}
}

// mixedAdaptiveTrace builds the mixed long-prompt + shared-prefix
// workload both the enforced adaptive-vs-static tests and the CLI's
// -compare-adaptive mode replay: bursts of short decoders sharing a
// prompt prefix, with two long unique prompts riding every burst — the
// regime-switching pattern (deep decode batch during a burst, idle
// drain between bursts) where a static chunk budget must pick one
// regime to lose.
func mixedAdaptiveTrace(bursts, perBurst, prompt, out int, gap float64) []Request {
	prefix := seqTokens(4*prompt, 1)
	reqs := make([]Request, 0, bursts*perBurst)
	id := 0
	for b := 0; b < bursts; b++ {
		at := float64(b) * gap
		for j := 0; j < perBurst; j++ {
			id++
			if j >= perBurst-2 {
				reqs = append(reqs, Request{
					Prompt:    seqTokens(16*prompt, 5000+id),
					OutputLen: 8,
					Arrival:   at,
				})
				continue
			}
			tokens := append(append([]int(nil), prefix...), seqTokens(prompt/4, 100+id)...)
			reqs = append(reqs, Request{Prompt: tokens, OutputLen: out, Arrival: at})
		}
	}
	return reqs
}

// replayTrace submits every request up front (virtual arrivals pace
// the replay deterministically), drains all results, and returns them
// with the final stats snapshot.
func replayTrace(t *testing.T, cfg Config, reqs []Request) ([]Result, Stats) {
	t.Helper()
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = len(reqs)
	}
	s := newServer(t, cfg)
	tickets := make([]*Ticket, len(reqs))
	for i, r := range reqs {
		tk, err := s.Submit(r)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets[i] = tk
	}
	s.Start()
	results := make([]Result, len(reqs))
	for i, tk := range tickets {
		results[i] = awaitResult(t, tk)
		if results[i].Err != nil {
			t.Fatalf("request %d failed: %v", i, results[i].Err)
		}
	}
	return results, s.Stats()
}

// decoderTPOTp99 summarises the short decoders' cadence (the long
// prompts, recognisable by their 8-token outputs, are the disturbance,
// not the measurement).
func decoderTPOTp99(reqs []Request, results []Result) float64 {
	var tpots []float64
	for i, res := range results {
		if reqs[i].OutputLen > 8 {
			tpots = append(tpots, res.TPOT)
		}
	}
	sort.Float64s(tpots)
	idx := int(math.Ceil(0.99*float64(len(tpots)))) - 1
	if idx < 0 {
		idx = 0
	}
	return tpots[idx]
}

// TestAdaptiveChunkingBeatsStaticTPOT is the enforced tentpole win:
// on the mixed long-prompt + shared-prefix workload, the closed-loop
// budget must match or beat EVERY static chunk setting on decode TPOT
// p99 — without giving up goodput against the static setting that
// achieved the best cadence (the Pareto claim: the controller gets the
// small-chunk cadence and pays less than the small-chunk throughput
// price).
func TestAdaptiveChunkingBeatsStaticTPOT(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replay comparison")
	}
	reqs := mixedAdaptiveTrace(6, 8, 128, 32, 0.7)

	bestStatic := math.Inf(1)
	var bestStaticGoodput float64
	for _, chunk := range []int{64, 256, 1024} {
		results, st := replayTrace(t, Config{
			Engine:             testEngine(t, engine.BackendZipServ),
			PrefillChunkTokens: chunk,
			PrefixCache:        true,
		}, reqs)
		p99 := decoderTPOTp99(reqs, results)
		t.Logf("static %4d: TPOT p99 %.4fs goodput %.2f r/s", chunk, p99, st.Goodput)
		if p99 < bestStatic {
			bestStatic, bestStaticGoodput = p99, st.Goodput
		}
	}

	results, st := replayTrace(t, Config{
		Engine:              testEngine(t, engine.BackendZipServ),
		AdaptiveChunking:    true,
		TargetStepTime:      adaptiveCompareTarget,
		PrefixCache:         true,
		AdaptivePrefixCache: true,
	}, reqs)
	p99 := decoderTPOTp99(reqs, results)
	t.Logf("adaptive  : TPOT p99 %.4fs goodput %.2f r/s budget %d pool %d",
		p99, st.Goodput, st.ChunkBudget, st.CachePoolTarget)
	if p99 > bestStatic {
		t.Errorf("adaptive TPOT p99 %.4fs worse than the best static setting %.4fs", p99, bestStatic)
	}
	if st.Goodput < 0.95*bestStaticGoodput {
		t.Errorf("adaptive goodput %.2f r/s below the cadence-best static setting's %.2f r/s",
			st.Goodput, bestStaticGoodput)
	}
	if !st.AdaptiveChunking || st.ChunkBudget <= 0 {
		t.Errorf("adaptive stats incoherent: %+v", st)
	}
	if st.StepTimeEWMA <= 0 || st.StepTimeEWMA > 10*adaptiveCompareTarget {
		t.Errorf("step-time EWMA %.4fs implausible against target %.4fs", st.StepTimeEWMA, adaptiveCompareTarget)
	}
}

// adaptiveCompareTarget is the TPOT SLO the comparison runs under:
// tight enough that the controller actually has to defend the decode
// cadence during bursts instead of coasting at its ceiling.
const adaptiveCompareTarget = 0.030

// TestAdaptiveCacheNeverAdmitsFewer: on a capacity-pressure trace the
// sizing controller must react (the pool target moves off its start)
// without ever costing admissions — every request a static bound
// completes, the adaptive bound completes too.
func TestAdaptiveCacheNeverAdmitsFewer(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replay comparison")
	}
	// Big sequences against the plan: sustained KV pressure, with a
	// shared prefix so the cache has something to park.
	prefix := seqTokens(1024, 7)
	n := 24
	reqs := make([]Request, n)
	for i := range reqs {
		tokens := append(append([]int(nil), prefix...), seqTokens(512, 300+i)...)
		reqs[i] = Request{Prompt: tokens, OutputLen: 4096, Arrival: float64(i) * 0.01}
	}

	_, static := replayTrace(t, Config{
		Engine:            testEngine(t, engine.BackendZipServ),
		PrefixCache:       true,
		PrefixCacheBlocks: 64,
	}, reqs)
	_, adaptive := replayTrace(t, Config{
		Engine:              testEngine(t, engine.BackendZipServ),
		PrefixCache:         true,
		PrefixCacheBlocks:   64,
		AdaptivePrefixCache: true,
	}, reqs)

	if adaptive.Completed < static.Completed {
		t.Errorf("adaptive sizing completed %d requests, static completed %d", adaptive.Completed, static.Completed)
	}
	if adaptive.Failed > static.Failed {
		t.Errorf("adaptive sizing failed %d requests, static failed %d", adaptive.Failed, static.Failed)
	}
	if !adaptive.AdaptivePrefixCache {
		t.Error("adaptive flag lost from stats")
	}
	if adaptive.CachePoolTarget == 64 {
		t.Error("pool target never moved off its starting bound under sustained pressure")
	}
	t.Logf("static: completed %d; adaptive: completed %d, pool target %d, pressure EWMA %.3f",
		static.Completed, adaptive.Completed, adaptive.CachePoolTarget, adaptive.CachePressureEWMA)
}
