package serve

import (
	"context"
	"testing"
	"time"
)

// BenchmarkLiveSharedPrefix pushes one shared-prefix burst through the
// full live scheduler (goroutines, channels, policy, stats publishing)
// with the prefix cache off and on — the end-to-end numbers CI's
// perf-regression job tracks.
func BenchmarkLiveSharedPrefix(b *testing.B) {
	for _, bc := range []struct {
		name    string
		enabled bool
	}{{"uncached", false}, {"cached", true}} {
		b.Run(bc.name, func(b *testing.B) {
			eng := prefixTestEngine(b)
			prefix := seqTokens(128, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srv, err := New(Config{Engine: eng, QueueDepth: 64, PrefixCache: bc.enabled})
				if err != nil {
					b.Fatal(err)
				}
				srv.Start()
				for r := 0; r < 16; r++ {
					prompt := append(append([]int(nil), prefix...), seqTokens(16, 100+r)...)
					tk, err := srv.Submit(Request{Prompt: prompt, OutputLen: 8})
					if err != nil {
						b.Fatal(err)
					}
					if res := <-tk.Result(); res.Err != nil {
						b.Fatal(res.Err)
					}
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				if err := srv.Stop(ctx); err != nil {
					b.Fatal(err)
				}
				cancel()
			}
		})
	}
}
