package serve

import (
	"fmt"
	"math"
)

// Pending is the read-only view of one queued request a Policy orders.
type Pending struct {
	ID        int
	PromptLen int
	OutputLen int
	Arrival   float64 // virtual arrival time
	Class     Class
	Deadline  float64 // absolute first-token deadline; +Inf without an SLO
}

// Running is the read-only view of one in-flight sequence, the victim
// candidates a preempting Policy chooses from. The slice handed to
// Victim is sorted by submission ID (ascending), a deterministic
// order; Admitted carries each sequence's last admission time for
// policies that rank victims by it (admission order can diverge from
// ID order under a reordering policy).
type Running struct {
	ID        int
	PromptLen int
	OutputLen int
	Arrival   float64
	Admitted  float64
	Class     Class
	Deadline  float64
}

// Policy decides admission order for the scheduler loop. The loop
// calls Next once per admission slot with every request that has
// already arrived on the virtual clock (eligible, in submission
// order); the chosen request is admitted if its conservative KV
// reservation fits. When it does not fit, Victim may name an in-flight
// sequence to preempt and requeue — the engine.Stepper returns every
// block the victim held, so the urgent admission proceeds; the victim
// restarts from scratch later.
//
// Implementations are called only from the scheduler goroutine and
// need no internal locking, but must be usable by value across
// replicas (no per-server state).
//
// The built-in policies are never actually scanned per slot: the
// server recognises them and runs their exact ordering on an
// incremental bitmap-scoreboard core (scoreboard.go, docs/
// scheduling.md) whose per-slot decisions are O(1) in queue depth.
// Custom implementations keep this slice-based contract and the
// legacy linear admission path, at linear per-slot cost.
type Policy interface {
	// Name identifies the policy ("fifo", "priority", "slo") in flags,
	// stats and logs.
	Name() string
	// Next returns the index into eligible (non-empty) of the request
	// to admit next, or a negative value to admit none this iteration.
	// A negative return while the system is idle is overridden to 0 by
	// the loop: an empty system must always make progress.
	Next(now float64, eligible []Pending) int
	// Victim returns the index into running of the sequence to preempt
	// so blocked can be admitted, or a negative value to wait for
	// capacity instead. It is called repeatedly until blocked fits or
	// it declines, with the already-preempted sequences removed.
	Victim(now float64, blocked Pending, running []Running) int
}

// PolicyNames lists the built-in policies in flag order.
func PolicyNames() []string { return []string{"fifo", "priority", "slo"} }

// PolicyByName returns a fresh built-in policy with its defaults:
// "fifo", "priority" or "slo".
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "fifo", "":
		return FIFOPolicy{}, nil
	case "priority":
		return PriorityPolicy{}, nil
	case "slo":
		return SLOPolicy{}, nil
	default:
		return nil, fmt.Errorf("serve: unknown policy %q (have %v)", name, PolicyNames())
	}
}

// FIFOPolicy admits in submission order with head-of-line blocking and
// never preempts — the default, and the legacy single-policy
// behaviour. One refinement over the legacy loop: ordering applies
// among requests that have arrived on the virtual clock, so a trace
// replayed with out-of-order arrival stamps no longer blocks an
// arrived request behind a future-stamped head of line (in-order
// traces schedule identically, enforced by test).
type FIFOPolicy struct{}

// Name implements Policy.
func (FIFOPolicy) Name() string { return "fifo" }

// Next always picks the head of the queue.
func (FIFOPolicy) Next(now float64, eligible []Pending) int { return 0 }

// Victim never preempts.
func (FIFOPolicy) Victim(now float64, blocked Pending, running []Running) int { return -1 }

// DefaultAgingSeconds is PriorityPolicy's default promotion age: a
// batch request waiting this many virtual seconds competes at
// interactive rank, where its older arrival wins FIFO ties.
const DefaultAgingSeconds = 5

// agedToInteractive is the one promotion predicate both scheduling
// paths share: a batch request that arrived at arrival has aged to
// interactive rank once it has waited at least aging virtual seconds.
// PriorityPolicy.Next and the scoreboard core's aging calendar
// (schedCore.promote) must use this exact float comparison — a
// re-derived form like arrival <= now-aging rounds differently and
// could promote on different iterations. Phrased as age >= aging
// (rather than the historical age < aging on the un-promoted side) so
// a NaN-stamped arrival can never spuriously promote to interactive
// rank: garbage stays at batch rank, it does not jump the queue.
func agedToInteractive(now, arrival, aging float64) bool {
	return now-arrival >= aging
}

// PriorityPolicy admits interactive-class requests before batch-class
// ones, FIFO within a class. Aging makes it starvation-free: a batch
// request that has waited AgingSeconds is promoted to interactive
// rank, and since every tie at equal rank breaks toward the earlier
// arrival, the aged request beats all interactive traffic that arrived
// after it — so sustained interactive load can delay a batch request
// by at most the aging window plus one admission cycle. It never
// preempts.
type PriorityPolicy struct {
	// AgingSeconds promotes a batch request to interactive rank after
	// this long in the queue. Zero (or negative) = DefaultAgingSeconds.
	AgingSeconds float64
}

// Name implements Policy.
func (PriorityPolicy) Name() string { return "priority" }

// Next picks the lowest (rank, arrival, id) among eligible. The final
// tie-break is the submission id, not the slice index: two requests at
// equal rank with identical arrival stamps (an out-of-order trace can
// produce them) resolve the same way regardless of how the caller
// ordered the view, which is what lets the scoreboard path — which
// never sees slice indices — reproduce this policy's choices exactly.
func (p PriorityPolicy) Next(now float64, eligible []Pending) int {
	aging := p.AgingSeconds
	if aging <= 0 {
		aging = DefaultAgingSeconds
	}
	rank := func(q Pending) int {
		if q.Class == ClassBatch && !agedToInteractive(now, q.Arrival, aging) {
			return 1
		}
		return 0
	}
	best := 0
	for i := 1; i < len(eligible); i++ {
		ri, rb := rank(eligible[i]), rank(eligible[best])
		if ri < rb || (ri == rb && (eligible[i].Arrival < eligible[best].Arrival ||
			(eligible[i].Arrival == eligible[best].Arrival && eligible[i].ID < eligible[best].ID))) {
			best = i
		}
	}
	return best
}

// Victim never preempts.
func (PriorityPolicy) Victim(now float64, blocked Pending, running []Running) int { return -1 }

// SLOPolicy is earliest-TTFT-deadline-first admission. Requests
// without a deadline sort last (FIFO among themselves). When the
// earliest-deadline request cannot fit, the policy preempts the
// in-flight sequence with the latest deadline — provided that deadline
// is strictly later than the blocked request's, so a preempted
// sequence can never bounce the request that displaced it, and the
// preemption chain is bounded by the running batch. Requests without a
// deadline never trigger a preemption.
type SLOPolicy struct{}

// Name implements Policy.
func (SLOPolicy) Name() string { return "slo" }

// Next picks the earliest (deadline, arrival, id) among eligible. As
// with PriorityPolicy, the final tie-break is the submission id rather
// than the slice index, so a preempt-and-requeue cycle — which reorders
// the pending queue a caller builds its view from — cannot flip a tied
// decision, and the scoreboard path reproduces it exactly.
func (SLOPolicy) Next(now float64, eligible []Pending) int {
	best := 0
	for i := 1; i < len(eligible); i++ {
		di, db := eligible[i].Deadline, eligible[best].Deadline
		if di < db || (di == db && (eligible[i].Arrival < eligible[best].Arrival ||
			(eligible[i].Arrival == eligible[best].Arrival && eligible[i].ID < eligible[best].ID))) {
			best = i
		}
	}
	return best
}

// Victim picks the running sequence with the latest deadline, breaking
// ties toward the most recent admission (least work lost), and only
// when that deadline is strictly later than the blocked request's. Two
// sequences admitted in the same admission window carry the identical
// virtual Admitted time, so a full (deadline, admitted) tie is
// reachable; it resolves explicitly toward the lowest submission id —
// the slice-order choice the historical scan made implicitly over its
// ID-sorted view, now pinned so it cannot depend on how the caller
// built the slice. Deterministic across the linear and scoreboard
// implementations, enforced by FuzzPolicyEquivalence.
func (SLOPolicy) Victim(now float64, blocked Pending, running []Running) int {
	if math.IsInf(blocked.Deadline, 1) {
		return -1 // no SLO at stake: wait for capacity
	}
	best := -1
	for i, q := range running {
		if q.Deadline <= blocked.Deadline {
			continue
		}
		if best < 0 || q.Deadline > running[best].Deadline ||
			(q.Deadline == running[best].Deadline && (q.Admitted > running[best].Admitted ||
				(q.Admitted == running[best].Admitted && q.ID < running[best].ID))) {
			best = i
		}
	}
	return best
}
