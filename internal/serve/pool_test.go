package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"zipserv/internal/engine"
)

// poolServer builds (but does not start) a pool-labelled server over
// its own engine replica.
func poolServer(t testing.TB, pool PoolRole) *Server {
	t.Helper()
	s, err := New(Config{
		Engine:      prefixTestEngine(t),
		PrefixCache: true,
		Pool:        pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Start() // idempotent; a never-started loop cannot drain a Stop
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Stop(ctx); err != nil {
			t.Errorf("Stop: %v", err)
		}
	})
	return s
}

// waitStats polls until cond holds: counters published by one replica's
// loop are not synchronised with result delivery on another's.
func waitStats(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("stats condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// submitAll submits n requests through the router (half sharing one
// prompt, to exercise the decode side's content-addressed dedup) and
// waits for every result.
func submitAll(t *testing.T, r *Router, n int) []Result {
	t.Helper()
	results := make([]Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		seed := i
		if i%2 == 0 {
			seed = 0
		}
		tk, err := r.Submit(Request{
			Prompt:    seqTokens(256+16*seed, seed),
			OutputLen: 16,
			Arrival:   ArrivalNow,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, tk *Ticket) {
			defer wg.Done()
			results[i] = awaitResult(t, tk)
		}(i, tk)
	}
	wg.Wait()
	return results
}

// TestPooledRouterDisaggregatedServes is the end-to-end disaggregation
// path: one prefill and one decode replica, every request prefilled on
// the former and decoded on the latter, with the handoff counters
// consistent on both sides.
func TestPooledRouterDisaggregatedServes(t *testing.T) {
	prefill := poolServer(t, PoolPrefill)
	decode := poolServer(t, PoolDecode)
	r, err := NewPooledRouter(prefill, decode)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()

	const n = 8
	for i, res := range submitAll(t, r, n) {
		if res.Err != nil {
			t.Fatalf("request %d failed: %v", i, res.Err)
		}
		if res.Handoffs != 1 {
			t.Errorf("request %d made %d handoffs, want exactly 1", i, res.Handoffs)
		}
		if res.TTFT <= 0 || res.TPOT <= 0 || res.Finished <= res.FirstToken {
			t.Errorf("request %d: discontinuous metrics across the handoff: %+v", i, res)
		}
	}

	waitStats(t, func() bool { return prefill.Stats().Handoffs == n })
	ps, ds := prefill.Stats(), decode.Stats()
	if ps.Completed != 0 || ds.Completed != n {
		t.Errorf("completions: prefill %d decode %d, want 0/%d", ps.Completed, ds.Completed, n)
	}
	if ps.HandoffBytes <= 0 || ps.HandoffFailures != 0 {
		t.Errorf("prefill handoff stats: bytes %d failures %d", ps.HandoffBytes, ps.HandoffFailures)
	}
	if ds.HandoffImports != n {
		t.Errorf("decode imported %d, want %d", ds.HandoffImports, n)
	}
	if ps.Pool != string(PoolPrefill) || ds.Pool != string(PoolDecode) {
		t.Errorf("pool labels %q/%q", ps.Pool, ds.Pool)
	}

	agg, per := r.Snapshot()
	if agg.Handoffs != n || agg.HandoffImports != n || agg.Completed != n {
		t.Errorf("router aggregate: handoffs %d imports %d completed %d, want %d each",
			agg.Handoffs, agg.HandoffImports, agg.Completed, n)
	}
	if agg.Pool != string(PoolMixed) {
		t.Errorf("heterogeneous fleet pool = %q, want mixed", agg.Pool)
	}
	pools := PoolAggregate(per)
	if pools["prefill"].Handoffs != n || pools["decode"].HandoffImports != n {
		t.Errorf("pool breakdown: %+v", pools)
	}
}

// TestPooledRouterDecodeDeathFailsOver kills one of two decode replicas
// while a burst is in flight: dispatches that raced into the dead
// replica drain there, later ones land on the survivor or fall back
// co-located, and every request completes either way. Run with -race.
func TestPooledRouterDecodeDeathFailsOver(t *testing.T) {
	prefill := poolServer(t, PoolPrefill)
	d0 := poolServer(t, PoolDecode)
	d1 := poolServer(t, PoolDecode)
	r, err := NewPooledRouter(prefill, d0, d1)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()

	const n = 12
	stopErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		stopErr <- d0.Stop(ctx)
	}()
	for i, res := range submitAll(t, r, n) {
		if res.Err != nil {
			t.Fatalf("request %d failed across decode-replica death: %v", i, res.Err)
		}
	}
	if err := <-stopErr; err != nil {
		t.Fatal(err)
	}
	agg := r.Stats()
	if agg.Completed != n || agg.Failed != 0 {
		t.Errorf("fleet completed %d failed %d, want %d/0", agg.Completed, agg.Failed, n)
	}
}

// TestPooledRouterColocatedFallback stops the only decode replica
// before traffic arrives: every dispatch fails, and the prefill replica
// must thaw each export back into its own stepper and serve co-located
// without losing a request.
func TestPooledRouterColocatedFallback(t *testing.T) {
	prefill := poolServer(t, PoolPrefill)
	decode := poolServer(t, PoolDecode)
	r, err := NewPooledRouter(prefill, decode)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := decode.Stop(ctx); err != nil {
		t.Fatal(err)
	}

	const n = 6
	for i, res := range submitAll(t, r, n) {
		if res.Err != nil {
			t.Fatalf("request %d failed without a decode pool: %v", i, res.Err)
		}
		if res.Handoffs != 0 {
			t.Errorf("request %d counts %d handoffs but none succeeded", i, res.Handoffs)
		}
	}
	waitStats(t, func() bool { return prefill.Stats().Completed == n })
	ps := prefill.Stats()
	if ps.Handoffs != 0 || ps.HandoffFailures != n {
		t.Errorf("prefill handoffs %d failures %d, want 0/%d", ps.Handoffs, ps.HandoffFailures, n)
	}
}

// TestDuplicateHandoffIdempotent delivers the same export to a decode
// replica twice in one batch: the first import serves the request, the
// duplicate must change nothing and the result must be delivered
// exactly once. Run with -race.
func TestDuplicateHandoffIdempotent(t *testing.T) {
	e := prefixTestEngine(t)
	src, err := engine.NewStepper(e)
	if err != nil {
		t.Fatal(err)
	}
	src.PackedPrefill = true
	if err := src.EnablePrefixCache(0); err != nil {
		t.Fatal(err)
	}
	req := engine.Request{ID: 42, PromptLen: 256, OutputLen: 16, Prompt: seqTokens(256, 9)}
	if err := src.Admit(req); err != nil {
		t.Fatal(err)
	}
	for src.AdmittedCount() > 0 {
		src.Prefill()
	}
	exp, err := src.ExportSequence(req.ID)
	if err != nil {
		t.Fatal(err)
	}

	decode := poolServer(t, PoolDecode)
	c := &call{
		req:       req,
		class:     ClassInteractive,
		handoffs:  1,
		submitted: time.Now(),
		events:    make(chan Event, 8),
		result:    make(chan Result, 1),
	}
	h := &handoff{exp: exp, c: c}
	if err := decode.acceptHandoff(h); err != nil {
		t.Fatal(err)
	}
	if err := decode.acceptHandoff(h); err != nil {
		t.Fatal(err)
	}
	decode.Start()

	var res Result
	select {
	case res = <-c.result:
	case <-time.After(30 * time.Second):
		t.Fatal("no result within 30s")
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.ID != req.ID || res.Handoffs != 1 {
		t.Errorf("result %+v, want id %d with 1 handoff", res, req.ID)
	}
	select {
	case dup := <-c.result:
		t.Fatalf("duplicate handoff delivered a second result: %+v", dup)
	case <-time.After(50 * time.Millisecond):
	}
	waitStats(t, func() bool { return decode.Stats().Completed == 1 })
	ds := decode.Stats()
	if ds.HandoffImports != 1 {
		t.Errorf("decode imported %d sequences from 2 copies, want 1", ds.HandoffImports)
	}
	if ds.Failed != 0 {
		t.Errorf("duplicate handoff failed a request: %d", ds.Failed)
	}
}

// TestNewPooledRouterValidation: fleet shapes with no defined handoff
// behaviour are rejected at construction.
func TestNewPooledRouterValidation(t *testing.T) {
	if _, err := NewPooledRouter(); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := NewPooledRouter(nil); err == nil {
		t.Error("nil server accepted")
	}
	if _, err := NewPooledRouter(poolServer(t, PoolPrefill)); err == nil {
		t.Error("prefill pool with no decode replica accepted")
	}
	if _, err := New(Config{Engine: prefixTestEngine(t), Pool: "gpu"}); err == nil {
		t.Error("unknown pool role accepted")
	}
	// All-decode and all-mixed fleets serve co-located.
	for _, role := range []PoolRole{PoolDecode, PoolMixed} {
		r, err := NewPooledRouter(poolServer(t, role))
		if err != nil {
			t.Fatalf("single-%s fleet: %v", role, err)
		}
		r.Start()
		tk, err := r.Submit(Request{PromptLen: 64, OutputLen: 4, Arrival: ArrivalNow})
		if err != nil {
			t.Fatal(err)
		}
		if res := awaitResult(t, tk); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
}
