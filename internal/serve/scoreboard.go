package serve

// Bitmap-scoreboard scheduler core (docs/scheduling.md): bounded
// bit-parallel ready queues that make every per-iteration admission and
// victim decision O(1) in queue depth, replacing the linear rebuild-
// and-scan the Policy interface's slice view implies. The idea follows
// the same spirit as the paper's lookup-table compute — replace
// repeated scans with precomputed bit-parallel structure — applied to
// the serving layer's scheduler:
//
//   - A two-level 64×64 bitmap (bitset4096) tracks which of 4096 rank
//     buckets are occupied. Two CTZ steps (math/bits.TrailingZeros64 on
//     the summary word, then on the selected word) find the lowest
//     occupied bucket in constant time; two CLZ steps
//     (math/bits.LeadingZeros64) find the highest — the reverse pick
//     behind SLO victim selection.
//   - Eligible requests are bucketed once, at enqueue time, by the
//     policy's rank key (class/aged rank and arrival for priority,
//     deadline for SLO, submission id for FIFO) instead of being
//     re-ranked against the whole queue on every admission slot.
//   - Requests that collide into the same rank bucket chain on an
//     intrusive doubly-linked list kept in exact key order, so bucket
//     quantisation never changes a scheduling decision: the scoreboard
//     policies schedule byte-identically to the linear-scan policies
//     (enforced by FuzzPolicyEquivalence and the replay equivalence
//     tests).
//
// Selection is always O(1). Enqueue is O(1) for keys arriving in
// non-decreasing order — the live path, where arrivals are stamped by a
// monotone virtual clock — and degrades to a bounded walk of one
// bucket's chain for out-of-order keys (preemption requeues, aging
// promotions, out-of-order trace stamps). All node storage is pooled
// and recycled: past each structure's high-water mark the hot path
// allocates nothing, which BenchmarkAdmissionDeepQueue locks in at 0
// allocs/op in CI.

import (
	"math"
	"math/bits"
)

const (
	sbWords   = 64
	sbBuckets = sbWords * 64 // 4096 rank buckets: a 64×64 two-level window
	sbNone    = int32(-1)
)

// bitset4096 is a two-level occupancy bitmap over the 4096 rank
// buckets: one summary word with a bit per 64-bucket group, and one
// word per group. min and max run in constant time regardless of how
// many buckets are occupied.
type bitset4096 struct {
	summary uint64
	words   [sbWords]uint64
}

func (b *bitset4096) set(i int) {
	w := uint(i) >> 6
	b.words[w] |= 1 << (uint(i) & 63)
	b.summary |= 1 << w
}

func (b *bitset4096) clear(i int) {
	w := uint(i) >> 6
	b.words[w] &^= 1 << (uint(i) & 63)
	if b.words[w] == 0 {
		b.summary &^= 1 << w
	}
}

// min returns the lowest occupied bucket, or -1: two TrailingZeros64
// steps (the mirror image of the CLZ pick, for ascending rank order).
func (b *bitset4096) min() int {
	if b.summary == 0 {
		return -1
	}
	w := bits.TrailingZeros64(b.summary)
	return w<<6 | bits.TrailingZeros64(b.words[w])
}

// max returns the highest occupied bucket, or -1: two LeadingZeros64
// steps — the reverse-CLZ pick behind latest-deadline victim selection.
func (b *bitset4096) max() int {
	if b.summary == 0 {
		return -1
	}
	w := 63 - bits.LeadingZeros64(b.summary)
	return w<<6 | (63 - bits.LeadingZeros64(b.words[w]))
}

// sbKey is a scoreboard entry's exact sort key: (k1, k2, id) ascending,
// lexicographic. The policies map their ranking onto it — see
// schedCore — and id is always the final tie-break, matching the
// linear policies' fixed tie-break semantics.
type sbKey struct {
	k1, k2 float64
	id     int
}

func (a sbKey) less(b sbKey) bool {
	if a.k1 != b.k1 {
		return a.k1 < b.k1
	}
	if a.k2 != b.k2 {
		return a.k2 < b.k2
	}
	return a.id < b.id
}

// floatOrd maps a float64 onto a uint64 whose unsigned order matches
// the float order (the standard sign-flip transform): negative floats
// have their bits inverted, positives get the sign bit set. Monotone
// over the whole float range including ±Inf, so bucket boundaries can
// never reorder two keys.
func floatOrd(f float64) uint64 {
	b := math.Float64bits(f)
	if b>>63 != 0 {
		return ^b
	}
	return b | 1<<63
}

// bucketOf quantises a primary key to its rank bucket: the top 12 bits
// of the order-preserving transform. Quantisation is monotone
// (k1a < k1b ⟹ bucketOf(k1a) <= bucketOf(k1b)); exact order within a
// bucket is kept by the chain, so the pick is always exact.
func bucketOf(k1 float64) int { return int(floatOrd(k1) >> 52) }

// sbNode is one pooled scoreboard entry. Nodes are addressed by index
// into the backing slice (stable across growth, unlike pointers) and
// recycled through a free list, so steady-state insert/remove cycles
// allocate nothing.
type sbNode struct {
	key        sbKey
	c          *call
	bucket     int32
	prev, next int32
}

// scoreboard is one bounded bitmap window: 4096 rank buckets under a
// two-level occupancy bitmap, each bucket chaining its entries in
// exact (k1, k2, id) order. min/max picks are O(1); removal by id is
// O(1); insertion is O(1) for monotone keys and a bounded in-bucket
// walk otherwise.
type scoreboard struct {
	bits       bitset4096
	head, tail [sbBuckets]int32
	nodes      []sbNode
	freeList   int32
	index      map[int]int32
	size       int
}

func newScoreboard() *scoreboard {
	sb := &scoreboard{index: make(map[int]int32), freeList: sbNone}
	for i := range sb.head {
		sb.head[i], sb.tail[i] = sbNone, sbNone
	}
	return sb
}

func (sb *scoreboard) len() int { return sb.size }

func (sb *scoreboard) alloc() int32 {
	if n := sb.freeList; n >= 0 {
		sb.freeList = sb.nodes[n].next
		return n
	}
	sb.nodes = append(sb.nodes, sbNode{})
	return int32(len(sb.nodes) - 1)
}

// insert files id under its rank bucket in exact key order. The two
// O(1) fast paths — empty bucket, and append-after-tail — cover the
// live path's monotone keys; everything else (requeues, promotions,
// out-of-order trace stamps) walks the bucket chain from the head,
// where old keys land.
func (sb *scoreboard) insert(id int, k1, k2 float64, c *call) {
	sb.insertOrd(id, id, k1, k2, c)
}

// insertOrd is insert with the ordering id decoupled from the lookup
// id: ordID breaks exact-key ties in the chain while id keys the index
// for removal. The victim scoreboard files ordID = -id so its max pick
// lands on the lowest submission id at a full tie; everywhere else the
// two coincide.
func (sb *scoreboard) insertOrd(id, ordID int, k1, k2 float64, c *call) {
	n := sb.alloc()
	bkt := bucketOf(k1)
	sb.nodes[n] = sbNode{key: sbKey{k1: k1, k2: k2, id: ordID}, c: c, bucket: int32(bkt), prev: sbNone, next: sbNone}
	switch t := sb.tail[bkt]; {
	case t < 0:
		sb.head[bkt], sb.tail[bkt] = n, n
		sb.bits.set(bkt)
	case !sb.nodes[n].key.less(sb.nodes[t].key):
		sb.nodes[n].prev = t
		sb.nodes[t].next = n
		sb.tail[bkt] = n
	default:
		at := sb.head[bkt]
		for sb.nodes[at].key.less(sb.nodes[n].key) {
			at = sb.nodes[at].next
		}
		sb.nodes[n].next = at
		sb.nodes[n].prev = sb.nodes[at].prev
		sb.nodes[at].prev = n
		if sb.nodes[n].prev < 0 {
			sb.head[bkt] = n
		} else {
			sb.nodes[sb.nodes[n].prev].next = n
		}
	}
	sb.index[id] = n
	sb.size++
}

// remove unfiles id; reports whether it was present.
func (sb *scoreboard) remove(id int) bool {
	n, ok := sb.index[id]
	if !ok {
		return false
	}
	node := &sb.nodes[n]
	bkt := node.bucket
	if node.prev < 0 {
		sb.head[bkt] = node.next
	} else {
		sb.nodes[node.prev].next = node.next
	}
	if node.next < 0 {
		sb.tail[bkt] = node.prev
	} else {
		sb.nodes[node.next].prev = node.prev
	}
	if sb.head[bkt] < 0 {
		sb.bits.clear(int(bkt))
	}
	node.c = nil // drop the call reference so the pool does not pin it
	node.next = sb.freeList
	sb.freeList = n
	delete(sb.index, id)
	sb.size--
	return true
}

// min returns the entry with the smallest (k1, k2, id) key: lowest
// occupied bucket by double-CTZ, then that bucket's chain head. The
// returned node is only valid until the next mutation.
func (sb *scoreboard) min() (*sbNode, bool) {
	bkt := sb.bits.min()
	if bkt < 0 {
		return nil, false
	}
	return &sb.nodes[sb.head[bkt]], true
}

// max returns the entry with the largest (k1, k2, id) key: highest
// occupied bucket by double-CLZ, then that bucket's chain tail.
func (sb *scoreboard) max() (*sbNode, bool) {
	bkt := sb.bits.max()
	if bkt < 0 {
		return nil, false
	}
	return &sb.nodes[sb.tail[bkt]], true
}

// each calls f for every filed entry, in no particular order. Only used
// on cold paths (failAll); the hot path never iterates.
func (sb *scoreboard) each(f func(*call)) {
	for i := range sb.nodes {
		if sb.nodes[i].c != nil {
			f(sb.nodes[i].c)
		}
	}
}

// futureEnt is one not-yet-arrived request in the promotion heap.
type futureEnt struct {
	arrival float64
	id      int
	c       *call
}

func futureLess(a, b futureEnt) bool {
	if a.arrival != b.arrival {
		return a.arrival < b.arrival
	}
	return a.id < b.id
}

// policyKind selects the schedCore key mapping for one built-in policy.
type policyKind uint8

const (
	kindFIFO policyKind = iota
	kindPriority
	kindSLO
)

// schedCore is the incremental scheduling state the server maintains
// for the built-in policies, replacing the per-slot eligible rebuild
// and linear policy scan:
//
//   - future: a min-heap by (arrival, id) of requests whose virtual
//     arrival is still ahead of the clock. Clock advances pop arrivals
//     in stamped order — the incremental pending→eligible promotion.
//   - elig / eligBatch: the eligible scoreboards. FIFO files everything
//     under (0, 0, id) — submission order. Priority files interactive
//     and aged-batch requests in elig under (arrival, 0, id) and
//     un-aged batch requests in eligBatch under the same key; the
//     eligBatch minimum doubles as the aging calendar, because the
//     earliest-arrival un-aged request is always the next to promote.
//     SLO files everything in elig under (deadline, arrival, id).
//   - running: SLO's victim scoreboard over the in-flight batch, keyed
//     (deadline, admitted, -id) so the latest-deadline victim — ties
//     broken toward the most recent admission, then the LOWEST id
//     (the ordering id is negated because the pick is a max) — is the
//     reverse-CLZ max pick.
//
// Every pick therefore reproduces the corresponding linear policy's
// choice exactly, including tie-breaks; the aging promotion uses the
// same agedToInteractive float comparison as PriorityPolicy.Next so
// the two paths can never disagree on a promotion boundary.
type schedCore struct {
	kind      policyKind
	aging     float64
	future    []futureEnt
	elig      *scoreboard
	eligBatch *scoreboard
	running   *scoreboard
}

// newSchedCore returns the incremental core for a built-in policy, or
// nil for a custom Policy implementation — those keep the legacy
// linear-scan admission path, which tolerates (and surfaces)
// out-of-contract behaviour.
func newSchedCore(p Policy) *schedCore {
	switch p := p.(type) {
	case FIFOPolicy:
		return &schedCore{kind: kindFIFO, elig: newScoreboard()}
	case PriorityPolicy:
		aging := p.AgingSeconds
		if aging <= 0 {
			aging = DefaultAgingSeconds
		}
		return &schedCore{kind: kindPriority, aging: aging, elig: newScoreboard(), eligBatch: newScoreboard()}
	case SLOPolicy:
		return &schedCore{kind: kindSLO, elig: newScoreboard(), running: newScoreboard()}
	default:
		return nil
	}
}

// len counts every queued (future + eligible) request.
func (sc *schedCore) len() int {
	if sc == nil {
		return 0
	}
	n := len(sc.future) + sc.elig.len()
	if sc.eligBatch != nil {
		n += sc.eligBatch.len()
	}
	return n
}

// add queues a stamped call. Requests in the clock's past are promoted
// to the eligible scoreboards by the next promote call, in (arrival,
// id) order — the same order the linear path's eligibility filter and
// fixed tie-breaks produce.
func (sc *schedCore) add(c *call) {
	sc.future = append(sc.future, futureEnt{arrival: c.req.ArrivalSeconds, id: c.req.ID, c: c})
	// Sift up.
	i := len(sc.future) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !futureLess(sc.future[i], sc.future[parent]) {
			break
		}
		sc.future[i], sc.future[parent] = sc.future[parent], sc.future[i]
		i = parent
	}
}

// popFuture removes and returns the earliest future entry.
func (sc *schedCore) popFuture() futureEnt {
	h := sc.future
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = futureEnt{} // drop the call reference
	sc.future = h[:last]
	// Sift down.
	i, n := 0, last
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && futureLess(h[l], h[small]) {
			small = l
		}
		if r < n && futureLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// nextArrival is the earliest queued arrival still ahead of the clock
// (+Inf when none) — the idle fast-forward target.
func (sc *schedCore) nextArrival() float64 {
	if len(sc.future) == 0 {
		return math.Inf(1)
	}
	return sc.future[0].arrival
}

// promote advances the core to now: arrivals on the clock move from
// the future heap onto the eligible scoreboards, and — for priority —
// batch requests that have aged past the promotion window move from
// batch rank to interactive rank. Each request promotes at most once
// per transition, so promotion work is O(1) amortised per request.
func (sc *schedCore) promote(now float64) {
	for len(sc.future) > 0 && sc.future[0].arrival <= now {
		e := sc.popFuture()
		sc.enqueue(now, e.c)
	}
	if sc.kind == kindPriority {
		// The aging calendar: eligBatch's minimum is the earliest
		// arrival, hence always the next request to age into the
		// interactive rank. Same comparison as PriorityPolicy.Next.
		for {
			n, ok := sc.eligBatch.min()
			if !ok || !agedToInteractive(now, n.key.k1, sc.aging) {
				break
			}
			c := n.c
			sc.eligBatch.remove(n.key.id)
			sc.elig.insert(c.req.ID, c.req.ArrivalSeconds, 0, c)
		}
	}
}

// enqueue files one arrived call under its policy rank key.
func (sc *schedCore) enqueue(now float64, c *call) {
	switch sc.kind {
	case kindFIFO:
		sc.elig.insert(c.req.ID, 0, 0, c)
	case kindPriority:
		if c.class == ClassBatch && !agedToInteractive(now, c.req.ArrivalSeconds, sc.aging) {
			sc.eligBatch.insert(c.req.ID, c.req.ArrivalSeconds, 0, c)
		} else {
			sc.elig.insert(c.req.ID, c.req.ArrivalSeconds, 0, c)
		}
	case kindSLO:
		sc.elig.insert(c.req.ID, c.deadline(), c.req.ArrivalSeconds, c)
	}
}

// peek returns the request the policy admits next — the minimum of the
// interactive-rank scoreboard, falling back to the batch rank — in
// O(1), without consuming it.
func (sc *schedCore) peek() (*call, bool) {
	if n, ok := sc.elig.min(); ok {
		return n.c, true
	}
	if sc.eligBatch != nil {
		if n, ok := sc.eligBatch.min(); ok {
			return n.c, true
		}
	}
	return nil, false
}

// removeEligible unfiles an eligible request (admitted, failed, or
// drained) from whichever rank scoreboard holds it.
func (sc *schedCore) removeEligible(id int) {
	if sc.elig.remove(id) {
		return
	}
	if sc.eligBatch != nil {
		sc.eligBatch.remove(id)
	}
}

// runningAdd mirrors an admission into the victim scoreboard (SLO
// only; the other policies never preempt). The entry's ordering id is
// negated: the victim pick is a max, but SLOPolicy.Victim's final
// tie-break prefers the LOWEST submission id, so the largest ordering
// id at a full (deadline, admitted) tie must belong to the lowest real
// id. Lookup keys (index, remove) stay the real id.
func (sc *schedCore) runningAdd(c *call) {
	if sc.running != nil {
		sc.running.insertOrd(c.req.ID, -c.req.ID, c.deadline(), c.admittedAt, c)
	}
}

// runningRemove mirrors a completion, preemption or handoff out of the
// victim scoreboard.
func (sc *schedCore) runningRemove(id int) {
	if sc.running != nil {
		sc.running.remove(id)
	}
}

// victim picks the preemption victim for a blocked request in O(1):
// the reverse-CLZ max of the running scoreboard — the latest deadline,
// ties toward the most recent admission, then the lowest id (ordering
// ids are negated, see runningAdd) — and only when that deadline is
// strictly later than the blocked request's, mirroring
// SLOPolicy.Victim exactly: deadline is the primary key, so if the
// global max fails the strictly-later filter, no running sequence can
// pass it.
func (sc *schedCore) victim(blockedDeadline float64) (int, bool) {
	if sc.running == nil || math.IsInf(blockedDeadline, 1) {
		return 0, false
	}
	n, ok := sc.running.max()
	if !ok || n.key.k1 <= blockedDeadline {
		return 0, false
	}
	return n.c.req.ID, true
}

// drainAll hands every queued call to f and empties the core — the
// failAll path.
func (sc *schedCore) drainAll(f func(*call)) {
	for _, e := range sc.future {
		f(e.c)
	}
	sc.future = sc.future[:0]
	sc.elig.each(f)
	*sc.elig = *newScoreboard()
	if sc.eligBatch != nil {
		sc.eligBatch.each(f)
		*sc.eligBatch = *newScoreboard()
	}
}
