package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"zipserv/internal/engine"
)

// newRouter builds a started router over n fresh single-engine servers
// and returns the router plus the underlying servers.
func newTestRouter(t *testing.T, n, queueDepth int) (*Router, []*Server) {
	t.Helper()
	servers := make([]*Server, n)
	backends := make([]Backend, n)
	for i := range servers {
		servers[i] = newServer(t, Config{Engine: testEngine(t, engine.BackendZipServ), QueueDepth: queueDepth})
		backends[i] = servers[i]
	}
	r, err := NewRouter(backends...)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	return r, servers
}

func TestRouterValidation(t *testing.T) {
	if _, err := NewRouter(); err == nil {
		t.Error("empty router accepted")
	}
	if _, err := NewRouter(nil); err == nil {
		t.Error("nil replica accepted")
	}
}

// TestRouterSpreadsLoad: a capacity-bound flood through a 2-replica
// router must land work on both replicas (least-loaded dispatch), and
// fleet counters must add up.
func TestRouterSpreadsLoad(t *testing.T) {
	r, _ := newTestRouter(t, 2, 64)
	const n = 40
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tk, err := r.Submit(Request{PromptLen: 512, OutputLen: 256})
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	for i, tk := range tickets {
		if res := awaitResult(t, tk); res.Err != nil {
			t.Fatalf("request %d failed: %v", i, res.Err)
		}
	}
	per := r.ReplicaStats()
	if len(per) != 2 {
		t.Fatalf("replica stats %d, want 2", len(per))
	}
	var completed int64
	for i, st := range per {
		if st.Completed == 0 {
			t.Errorf("replica %d completed nothing: dispatch is not spreading", i)
		}
		completed += st.Completed
	}
	agg := r.Stats()
	if agg.Completed != completed || agg.Completed != n {
		t.Errorf("aggregate completed %d, per-replica sum %d, want %d", agg.Completed, completed, n)
	}
	if agg.Submitted != n {
		t.Errorf("aggregate submitted %d, want %d", agg.Submitted, n)
	}
	if agg.TotalKVBlocks != per[0].TotalKVBlocks+per[1].TotalKVBlocks {
		t.Errorf("aggregate KV blocks %d not the fleet sum", agg.TotalKVBlocks)
	}
}

// TestRouterFailover: stopping one replica must reroute traffic to the
// survivor without a single failed request, and stats must keep
// aggregating across the stopped replica.
func TestRouterFailover(t *testing.T) {
	r, servers := newTestRouter(t, 2, 64)

	// Warm both replicas.
	warm := make([]*Ticket, 8)
	for i := range warm {
		tk, err := r.Submit(Request{PromptLen: 128, OutputLen: 32})
		if err != nil {
			t.Fatal(err)
		}
		warm[i] = tk
	}
	for _, tk := range warm {
		if res := awaitResult(t, tk); res.Err != nil {
			t.Fatal(res.Err)
		}
	}

	// Drain replica 0; the router must route around it.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := servers[0].Stop(ctx); err != nil {
		t.Fatal(err)
	}
	before := servers[1].Stats().Completed
	const n = 12
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tk, err := r.Submit(Request{PromptLen: 128, OutputLen: 32})
		if err != nil {
			t.Fatalf("request %d after failover: %v", i, err)
		}
		tickets[i] = tk
	}
	for i, tk := range tickets {
		if res := awaitResult(t, tk); res.Err != nil {
			t.Fatalf("request %d failed after failover: %v", i, res.Err)
		}
	}
	if got := servers[1].Stats().Completed - before; got != n {
		t.Errorf("survivor completed %d of %d failover requests", got, n)
	}

	// With every replica stopped, Submit surfaces ErrStopped.
	if err := servers[1].Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(Request{PromptLen: 16, OutputLen: 8}); !errors.Is(err, ErrStopped) {
		t.Errorf("all-stopped submit err = %v, want ErrStopped", err)
	}
}

// TestRouterErrorPrecedence: a full queue (retryable) must win over a
// stopped replica, and an impossible request must surface ErrNeverFits.
func TestRouterErrorPrecedence(t *testing.T) {
	// Replica 0 stopped, replica 1 unstarted with a depth-1 queue.
	stopped := newServer(t, Config{Engine: testEngine(t, engine.BackendZipServ), QueueDepth: 1})
	stopped.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := stopped.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	full := newServer(t, Config{Engine: testEngine(t, engine.BackendZipServ), QueueDepth: 1})
	if _, err := full.Submit(Request{PromptLen: 16, OutputLen: 8}); err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(stopped, full)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(Request{PromptLen: 16, OutputLen: 8}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("err = %v, want ErrQueueFull to win over ErrStopped", err)
	}
	if _, err := r.Submit(Request{PromptLen: 10, OutputLen: 100_000_000}); !errors.Is(err, ErrNeverFits) {
		t.Errorf("err = %v, want ErrNeverFits", err)
	}
	full.Start() // let the queued request drain so cleanup's Stop returns
}

// TestRouterGoodputScales is the PR's scaling acceptance benchmark: on
// the same capacity-bound trace, a 2-replica router must reach ≥ 1.5×
// the aggregate goodput of a single replica.
func TestRouterGoodputScales(t *testing.T) {
	trace := engine.SyntheticTrace(60, 500, 512, 2048, 7)
	if trace == nil {
		t.Fatal("nil trace")
	}
	reqs := make([]Request, len(trace))
	for i, r := range trace {
		reqs[i] = Request{PromptLen: r.PromptLen, OutputLen: r.OutputLen, Arrival: r.ArrivalSeconds}
	}

	run := func(b Backend) Stats {
		t.Helper()
		tickets := make([]*Ticket, len(reqs))
		for i, r := range reqs {
			tk, err := b.Submit(r)
			if err != nil {
				t.Fatal(err)
			}
			tickets[i] = tk
		}
		b.Start()
		for i, tk := range tickets {
			if res := awaitResult(t, tk); res.Err != nil {
				t.Fatalf("request %d failed: %v", i, res.Err)
			}
		}
		return b.Stats()
	}

	single := run(newServer(t, Config{Engine: testEngine(t, engine.BackendZipServ), QueueDepth: len(reqs)}))
	router, _ := newTestRouter(t, 2, len(reqs))
	fleet := run(router)

	t.Logf("goodput: 1 replica %.3f req/s, 2-replica router %.3f req/s (%.2fx)",
		single.Goodput, fleet.Goodput, fleet.Goodput/single.Goodput)
	if single.PeakConcurrency >= len(reqs) {
		t.Fatal("trace was not capacity-bound on one replica; scaling test is vacuous")
	}
	if fleet.Goodput < 1.5*single.Goodput {
		t.Errorf("2-replica goodput %.3f req/s < 1.5× single-replica %.3f req/s (ratio %.2f)",
			fleet.Goodput, single.Goodput, fleet.Goodput/single.Goodput)
	}
}

// statsStub is a Backend that serves a canned Stats snapshot — the
// aggregation fixtures for the adaptive-telemetry folding rules.
type statsStub struct{ st Stats }

func (s *statsStub) Start()                          {}
func (s *statsStub) Submit(Request) (*Ticket, error) { return nil, ErrStopped }
func (s *statsStub) Stats() Stats                    { return s.st }
func (s *statsStub) Stop(context.Context) error      { return nil }

// TestRouterAggregatesAdaptiveStats: the fleet view must fold the
// adaptive-controller telemetry by its documented rules — budget
// spread as min-of-mins/max-of-maxes (so nested routers compose),
// headline budget / target / step-time / pressure as the worst
// replica, pool targets summed, and the hit-rate EWMA averaged over
// the replicas actually running the sizing controller.
func TestRouterAggregatesAdaptiveStats(t *testing.T) {
	a := Stats{
		AdaptiveChunking: true, ChunkBudget: 512, ChunkBudgetMin: 256, ChunkBudgetMax: 512,
		TargetStepTime: 0.03, StepTimeEWMA: 0.021,
		AdaptivePrefixCache: true, CachePoolTarget: 100, CacheHitRateEWMA: 0.8, CachePressureEWMA: 0.1,
	}
	b := Stats{
		AdaptiveChunking: true, ChunkBudget: 64, ChunkBudgetMin: 64, ChunkBudgetMax: 2048,
		TargetStepTime: 0.025, StepTimeEWMA: 0.034,
		AdaptivePrefixCache: true, CachePoolTarget: 40, CacheHitRateEWMA: 0.2, CachePressureEWMA: 0.7,
	}
	c := Stats{ // static replica: no adaptive controllers
		ChunkBudget: 128, ChunkBudgetMin: 128, ChunkBudgetMax: 128, CachePoolTarget: 16,
		CacheHitRateEWMA: 0.99, // must NOT enter the adaptive average
	}
	r, err := NewRouter(&statsStub{a}, &statsStub{b}, &statsStub{c})
	if err != nil {
		t.Fatal(err)
	}
	agg := r.Stats()
	if !agg.AdaptiveChunking || !agg.AdaptivePrefixCache {
		t.Errorf("adaptive flags lost: %+v", agg)
	}
	if agg.ChunkBudgetMin != 64 || agg.ChunkBudgetMax != 2048 {
		t.Errorf("budget spread [%d, %d], want [64, 2048]", agg.ChunkBudgetMin, agg.ChunkBudgetMax)
	}
	if agg.ChunkBudget != 512 {
		t.Errorf("headline budget %d, want the largest current budget 512", agg.ChunkBudget)
	}
	if agg.TargetStepTime != 0.03 || agg.StepTimeEWMA != 0.034 {
		t.Errorf("target/step EWMA %v/%v, want 0.03/0.034", agg.TargetStepTime, agg.StepTimeEWMA)
	}
	if agg.CachePoolTarget != 156 {
		t.Errorf("pool target %d, want the 156-block fleet sum", agg.CachePoolTarget)
	}
	if want := (0.8 + 0.2) / 2; agg.CacheHitRateEWMA != want {
		t.Errorf("hit-rate EWMA %v, want %v (mean of the adaptive replicas only)", agg.CacheHitRateEWMA, want)
	}
	if agg.CachePressureEWMA != 0.7 {
		t.Errorf("pressure EWMA %v, want the worst replica's 0.7", agg.CachePressureEWMA)
	}
}

// TestAggregateStatsZeroReplicas: folding an empty replica set must
// yield a clean zero aggregate — no NaNs from the EWMA means, no
// spurious flags — since a router can be snapshotted mid-assembly.
func TestAggregateStatsZeroReplicas(t *testing.T) {
	agg := aggregateStats(nil)
	if agg.AdaptiveChunking || agg.AdaptivePrefixCache {
		t.Errorf("zero-replica aggregate invented adaptive flags: %+v", agg)
	}
	if agg.ChunkBudget != 0 || agg.ChunkBudgetMin != 0 || agg.ChunkBudgetMax != 0 || agg.CachePoolTarget != 0 {
		t.Errorf("zero-replica aggregate invented budgets: %+v", agg)
	}
	for name, v := range map[string]float64{
		"step_time_ewma": agg.StepTimeEWMA, "hit_rate_ewma": agg.CacheHitRateEWMA,
		"pressure_ewma": agg.CachePressureEWMA, "mean_ttft": agg.MeanTTFT, "goodput": agg.Goodput,
	} {
		if v != 0 || v != v {
			t.Errorf("zero-replica aggregate %s = %v, want 0", name, v)
		}
	}
}

// TestRouterAdaptiveStatsSurviveStoppedReplica: a drained replica
// still reports its final snapshot; the fleet aggregate must keep
// folding it without disturbing the adaptive telemetry of the live
// replicas.
func TestRouterAdaptiveStatsSurviveStoppedReplica(t *testing.T) {
	servers := make([]*Server, 2)
	backends := make([]Backend, 2)
	for i := range servers {
		servers[i] = newServer(t, Config{
			Engine: testEngine(t, engine.BackendZipServ), QueueDepth: 16,
			AdaptiveChunking: true, PrefixCache: true, AdaptivePrefixCache: true,
		})
		backends[i] = servers[i]
	}
	r, err := NewRouter(backends...)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	tk, err := servers[0].Submit(Request{Prompt: seqTokens(256, 1), OutputLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res := awaitResult(t, tk); res.Err != nil {
		t.Fatal(res.Err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := servers[0].Stop(ctx); err != nil {
		t.Fatal(err)
	}
	agg, per := r.Snapshot()
	if len(per) != 2 {
		t.Fatalf("replica breakdown %d entries, want 2", len(per))
	}
	if !agg.AdaptiveChunking || !agg.AdaptivePrefixCache {
		t.Errorf("aggregate lost adaptive flags with a stopped replica: %+v", agg)
	}
	if agg.Completed != 1 {
		t.Errorf("aggregate completed %d, want the stopped replica's 1", agg.Completed)
	}
	if agg.ChunkBudgetMin <= 0 || agg.ChunkBudgetMax < agg.ChunkBudgetMin {
		t.Errorf("aggregate budget spread [%d, %d] incoherent", agg.ChunkBudgetMin, agg.ChunkBudgetMax)
	}
	if agg.CachePoolTarget != per[0].CachePoolTarget+per[1].CachePoolTarget {
		t.Errorf("pool target %d not the per-replica sum", agg.CachePoolTarget)
	}
}
