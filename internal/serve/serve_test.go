package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"zipserv/internal/engine"
	"zipserv/internal/gpu"
	"zipserv/internal/weights"
)

func testEngine(t testing.TB, backend engine.Backend) *engine.Engine {
	t.Helper()
	model, err := weights.ByName("LLaMA3.1-8B")
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(engine.Config{
		Model: model, Device: gpu.MustByName("RTX4090"), NumGPUs: 1, Backend: backend,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func newServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = testEngine(t, engine.BackendZipServ)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Stop(ctx); err != nil {
			t.Errorf("Stop: %v", err)
		}
	})
	return s
}

func awaitResult(t *testing.T, tk *Ticket) Result {
	t.Helper()
	select {
	case res := <-tk.Result():
		return res
	case <-time.After(30 * time.Second):
		t.Fatalf("request %d: no result within 30s", tk.ID)
		return Result{}
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newServer(t, Config{})
	s.Start()
	if _, err := s.Submit(Request{PromptLen: 0, OutputLen: 8}); err == nil {
		t.Error("zero prompt accepted")
	}
	if _, err := s.Submit(Request{PromptLen: 8, OutputLen: -1}); err == nil {
		t.Error("negative output accepted")
	}
	if _, err := s.Submit(Request{PromptLen: 10, OutputLen: 100_000_000}); !errors.Is(err, ErrNeverFits) {
		t.Errorf("impossible request: err = %v, want ErrNeverFits", err)
	}
}

func TestLiveRequestsComplete(t *testing.T) {
	s := newServer(t, Config{QueueDepth: 16})
	s.Start()

	const n = 8
	var wg sync.WaitGroup
	results := make([]Result, n)
	for i := 0; i < n; i++ {
		tk, err := s.Submit(Request{PromptLen: 64 + i, OutputLen: 16, Arrival: ArrivalNow})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, tk *Ticket) {
			defer wg.Done()
			results[i] = awaitResult(t, tk)
		}(i, tk)
	}
	wg.Wait()

	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d failed: %v", i, res.Err)
		}
		if res.TTFT <= 0 || res.Latency <= 0 || res.TPOT <= 0 {
			t.Errorf("request %d: TTFT %.6f TPOT %.6f latency %.6f, want all > 0",
				i, res.TTFT, res.TPOT, res.Latency)
		}
		if res.Finished < res.FirstToken || res.FirstToken < res.Admitted || res.Admitted < res.Arrival {
			t.Errorf("request %d: time ordering violated (%+v)", i, res)
		}
		if res.WallDuration <= 0 {
			t.Errorf("request %d: wall duration %v", i, res.WallDuration)
		}
	}

	st := s.Stats()
	if st.Completed != n || st.Submitted != n {
		t.Errorf("stats: completed %d submitted %d, want %d", st.Completed, st.Submitted, n)
	}
	if st.Goodput <= 0 || st.Throughput <= 0 {
		t.Errorf("stats: goodput %.3f throughput %.3f, want > 0", st.Goodput, st.Throughput)
	}
}

func TestQueueOverflowFailsFast(t *testing.T) {
	// The server is not started yet, so the queue cannot drain: the
	// third submission must be rejected immediately, not block.
	s := newServer(t, Config{QueueDepth: 2})

	t1, err := s.Submit(Request{PromptLen: 32, OutputLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.Submit(Request{PromptLen: 32, OutputLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := s.Submit(Request{PromptLen: 32, OutputLen: 8}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow err = %v, want ErrQueueFull", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("overflow rejection took %v, want fast-fail", d)
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}

	// Draining starts now; the two accepted requests must complete.
	s.Start()
	for _, tk := range []*Ticket{t1, t2} {
		if res := awaitResult(t, tk); res.Err != nil {
			t.Errorf("request %d failed after drain: %v", tk.ID, res.Err)
		}
	}
}

func TestFIFOAdmissionFairness(t *testing.T) {
	// A flood larger than KV capacity: admission must stagger, and it
	// must stay FIFO — request i is never admitted after request j>i.
	s := newServer(t, Config{QueueDepth: 64})
	const n = 60
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tk, err := s.Submit(Request{PromptLen: 512, OutputLen: 2048})
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	s.Start()

	results := make([]Result, n)
	for i, tk := range tickets {
		results[i] = awaitResult(t, tk)
		if results[i].Err != nil {
			t.Fatalf("request %d failed: %v", i, results[i].Err)
		}
	}
	for i := 1; i < n; i++ {
		if results[i].Admitted < results[i-1].Admitted {
			t.Errorf("FIFO violated: request %d admitted at %.4f before request %d at %.4f",
				i, results[i].Admitted, i-1, results[i-1].Admitted)
		}
	}

	st := s.Stats()
	if st.PeakConcurrency >= n {
		t.Errorf("peak concurrency %d: flood was not capacity-limited, test is vacuous", st.PeakConcurrency)
	}
	if st.PeakConcurrency < 2 {
		t.Errorf("peak concurrency %d, want batching", st.PeakConcurrency)
	}
	// Staggered admission implies eviction freed capacity for later
	// requests: the last request waited for earlier ones to finish.
	if results[n-1].QueueWait <= 0 {
		t.Errorf("tail request queue wait %.4f, want > 0 under capacity pressure", results[n-1].QueueWait)
	}
}

func TestMaxBatchCap(t *testing.T) {
	s := newServer(t, Config{QueueDepth: 32, MaxBatch: 4})
	const n = 12
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tk, err := s.Submit(Request{PromptLen: 64, OutputLen: 32})
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	s.Start()
	for i, tk := range tickets {
		if res := awaitResult(t, tk); res.Err != nil {
			t.Fatalf("request %d failed: %v", i, res.Err)
		}
	}
	if st := s.Stats(); st.PeakConcurrency > 4 {
		t.Errorf("peak concurrency %d exceeds MaxBatch 4", st.PeakConcurrency)
	}
}

func TestStreamingEvents(t *testing.T) {
	s := newServer(t, Config{QueueDepth: 4})
	s.Start()
	tk, err := s.Submit(Request{PromptLen: 128, OutputLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	res := awaitResult(t, tk)
	if res.Err != nil {
		t.Fatal(res.Err)
	}

	var types []EventType
	for ev := range tk.Events() {
		if ev.ID != tk.ID {
			t.Errorf("event for id %d on ticket %d", ev.ID, tk.ID)
		}
		types = append(types, ev.Type)
	}
	want := []EventType{EventAdmitted, EventFirstToken, EventFinished}
	if len(types) != len(want) {
		t.Fatalf("events %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("events %v, want %v", types, want)
		}
	}
}

func TestGracefulStopDrains(t *testing.T) {
	s, err := New(Config{Engine: testEngine(t, engine.BackendZipServ), QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	const n = 6
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tk, err := s.Submit(Request{PromptLen: 256, OutputLen: 64})
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Stop(ctx); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	// Everything accepted before Stop is served to completion.
	for i, tk := range tickets {
		select {
		case res := <-tk.Result():
			if res.Err != nil {
				t.Errorf("request %d failed during drain: %v", i, res.Err)
			}
		default:
			t.Errorf("request %d: no result after graceful stop", i)
		}
	}
	// New work is rejected.
	if _, err := s.Submit(Request{PromptLen: 32, OutputLen: 8}); !errors.Is(err, ErrStopped) {
		t.Errorf("post-stop submit err = %v, want ErrStopped", err)
	}
	if err := s.Stop(ctx); err != nil {
		t.Errorf("second Stop: %v", err)
	}
}

func TestConcurrentSubmittersUnderRace(t *testing.T) {
	// Hammer the server from many goroutines while a reader polls
	// Stats; run with -race to check the synchronisation.
	s := newServer(t, Config{QueueDepth: 128})
	s.Start()

	stopPolling := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-stopPolling:
				return
			default:
				_ = s.Stats()
			}
		}
	}()

	const workers, perWorker = 8, 5
	var wg sync.WaitGroup
	var mu sync.Mutex
	var completed, rejected int
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tk, err := s.Submit(Request{PromptLen: 32 + w, OutputLen: 8})
				if errors.Is(err, ErrQueueFull) {
					mu.Lock()
					rejected++
					mu.Unlock()
					continue
				}
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				res := awaitResult(t, tk)
				if res.Err != nil {
					t.Errorf("worker %d: %v", w, res.Err)
					return
				}
				mu.Lock()
				completed++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(stopPolling)
	pollWG.Wait()

	st := s.Stats()
	if int(st.Completed) != completed {
		t.Errorf("stats completed %d, callers saw %d", st.Completed, completed)
	}
	if int(st.Rejected) != rejected {
		t.Errorf("stats rejected %d, callers saw %d", st.Rejected, rejected)
	}
}

// TestGoodputBeatsOfflineStaticBatch is the PR's acceptance benchmark:
// on the same SyntheticTrace-derived workload, the live
// continuous-batching scheduler (token-packed prefill, iteration-level
// admission) must complete requests at ≥ 1.2× the rate of the offline
// static-batch Serve path, whose prefill batches pad every prompt to
// the longest one.
func TestGoodputBeatsOfflineStaticBatch(t *testing.T) {
	eng := testEngine(t, engine.BackendZipServ)
	trace := engine.SyntheticTrace(48, 200, 1024, 24, 7)
	if trace == nil {
		t.Fatal("nil trace")
	}

	// Offline static-batch baseline.
	off, _, err := eng.Serve(trace)
	if err != nil {
		t.Fatal(err)
	}
	offGoodput := float64(off.Requests) / off.MakespanSeconds

	// Same trace through the live scheduler (arrival times replayed on
	// the virtual clock).
	s := newServer(t, Config{Engine: eng, QueueDepth: len(trace)})
	tickets := make([]*Ticket, len(trace))
	for i, r := range trace {
		tk, err := s.Submit(Request{PromptLen: r.PromptLen, OutputLen: r.OutputLen, Arrival: r.ArrivalSeconds})
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	s.Start()
	for i, tk := range tickets {
		if res := awaitResult(t, tk); res.Err != nil {
			t.Fatalf("request %d failed: %v", i, res.Err)
		}
	}
	st := s.Stats()
	if st.Completed != int64(len(trace)) {
		t.Fatalf("live completed %d/%d", st.Completed, len(trace))
	}
	liveGoodput := float64(st.Completed) / st.SimSeconds

	t.Logf("goodput: live %.3f req/s vs offline %.3f req/s (%.2fx), makespan %.2fs vs %.2fs",
		liveGoodput, offGoodput, liveGoodput/offGoodput, st.SimSeconds, off.MakespanSeconds)
	if liveGoodput < 1.2*offGoodput {
		t.Errorf("live goodput %.3f req/s < 1.2× offline %.3f req/s (ratio %.2f)",
			liveGoodput, offGoodput, liveGoodput/offGoodput)
	}
}

// BenchmarkLiveScheduler measures scheduler-loop overhead per request
// under a steady flood.
func BenchmarkLiveScheduler(b *testing.B) {
	eng := testEngine(b, engine.BackendZipServ)
	s, err := New(Config{Engine: eng, QueueDepth: 256})
	if err != nil {
		b.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Stop(ctx)
	}()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk, err := s.Submit(Request{PromptLen: 128, OutputLen: 16})
		if errors.Is(err, ErrQueueFull) {
			i--
			continue
		}
		if err != nil {
			b.Fatal(err)
		}
		if res := <-tk.Result(); res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}
