package serve

import (
	"context"
	"math"
	"testing"
	"time"

	"zipserv/internal/engine"
	"zipserv/internal/gpu"
	"zipserv/internal/weights"
)

func prefixTestEngine(t testing.TB) *engine.Engine {
	t.Helper()
	model, err := weights.ByName("LLaMA3.1-8B")
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(engine.Config{
		Model: model, Device: gpu.MustByName("RTX4090"), NumGPUs: 1, Backend: engine.BackendZipServ,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// seqTokens builds a deterministic token stream; equal seeds agree on
// every position.
func seqTokens(n, seed int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = seed*100003 + i*131 + 7
	}
	return out
}

// TestConfigValidation is the table-driven guard for scheduler
// parameters with no defined loop behaviour: negative chunk budgets,
// negative admission windows, non-finite time scales and negative
// prefix-cache bounds must be rejected at construction with an error
// naming the field, not reach the scheduler.
func TestConfigValidation(t *testing.T) {
	eng := prefixTestEngine(t)
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"defaults", func(c *Config) {}, true},
		{"negative max batch", func(c *Config) { c.MaxBatch = -1 }, false},
		{"negative prefill chunk", func(c *Config) { c.PrefillChunkTokens = -64 }, false},
		{"zero prefill chunk (monolithic)", func(c *Config) { c.PrefillChunkTokens = 0 }, true},
		{"positive prefill chunk", func(c *Config) { c.PrefillChunkTokens = 256 }, true},
		{"negative admission window", func(c *Config) { c.AdmissionWindow = -time.Millisecond }, false},
		{"positive admission window", func(c *Config) { c.AdmissionWindow = 5 * time.Millisecond }, true},
		{"negative time scale", func(c *Config) { c.TimeScale = -1 }, false},
		{"NaN time scale", func(c *Config) { c.TimeScale = math.NaN() }, false},
		{"+Inf time scale", func(c *Config) { c.TimeScale = math.Inf(1) }, false},
		{"-Inf time scale", func(c *Config) { c.TimeScale = math.Inf(-1) }, false},
		{"real-time time scale", func(c *Config) { c.TimeScale = 1 }, true},
		{"negative prefix cache blocks", func(c *Config) { c.PrefixCache = true; c.PrefixCacheBlocks = -8 }, false},
		{"unbounded prefix cache", func(c *Config) { c.PrefixCache = true }, true},
		{"bounded prefix cache", func(c *Config) { c.PrefixCache = true; c.PrefixCacheBlocks = 512 }, true},
		{"compressed cache without prefix cache", func(c *Config) { c.CompressedCache = true }, false},
		{"compressed cache with prefix cache", func(c *Config) { c.PrefixCache = true; c.CompressedCache = true }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Engine: eng}
			tc.mutate(&cfg)
			srv, err := New(cfg)
			if tc.ok && err != nil {
				t.Fatalf("New rejected a valid config: %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("New accepted an invalid config")
				}
				if srv != nil {
					t.Fatal("New returned a server alongside an error")
				}
			}
		})
	}
}

// TestPrefixCacheLiveServer runs the same shared-prefix workload
// through a live server with and without the prefix cache: with it,
// later requests report cached tokens, stats count hits and saved
// tokens, and every request still completes with its full output.
func TestPrefixCacheLiveServer(t *testing.T) {
	const (
		n         = 8
		prefixLen = 128
		suffixLen = 32
	)
	prefix := seqTokens(prefixLen, 1)
	build := func(i int) Request {
		prompt := append(append([]int(nil), prefix...), seqTokens(suffixLen, 100+i)...)
		return Request{Prompt: prompt, OutputLen: 8, Arrival: float64(i)}
	}

	run := func(enabled bool) ([]Result, Stats) {
		srv, err := New(Config{Engine: prefixTestEngine(t), QueueDepth: n, PrefixCache: enabled})
		if err != nil {
			t.Fatal(err)
		}
		tickets := make([]*Ticket, n)
		for i := 0; i < n; i++ {
			if tickets[i], err = srv.Submit(build(i)); err != nil {
				t.Fatal(err)
			}
		}
		srv.Start()
		results := make([]Result, n)
		for i, tk := range tickets {
			results[i] = <-tk.Result()
			if results[i].Err != nil {
				t.Fatal(results[i].Err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Stop(ctx); err != nil {
			t.Fatal(err)
		}
		return results, srv.Stats()
	}

	off, offStats := run(false)
	on, onStats := run(true)

	if offStats.PrefixCacheEnabled || !onStats.PrefixCacheEnabled {
		t.Fatalf("PrefixCacheEnabled off/on = %v/%v", offStats.PrefixCacheEnabled, onStats.PrefixCacheEnabled)
	}
	if offStats.PrefixHits != 0 || offStats.PrefixTokensSaved != 0 {
		t.Fatalf("cache-off run counted hits: %+v", offStats)
	}
	if onStats.PrefixHits == 0 || onStats.PrefixTokensSaved == 0 {
		t.Fatalf("cache-on run counted no reuse: hits=%d saved=%d", onStats.PrefixHits, onStats.PrefixTokensSaved)
	}
	if onStats.PrefillTokens >= offStats.PrefillTokens {
		t.Fatalf("prefix-on computed %d prefill tokens, not fewer than %d", onStats.PrefillTokens, offStats.PrefillTokens)
	}
	// Outputs are identical: same per-request shape, full output, and
	// at least one later request served part of its prompt from cache.
	sawCached := false
	for i := range on {
		if on[i].PromptLen != off[i].PromptLen || on[i].OutputLen != off[i].OutputLen {
			t.Fatalf("request %d shape differs: %+v vs %+v", i, on[i], off[i])
		}
		if off[i].CachedTokens != 0 {
			t.Fatalf("cache-off request %d reports %d cached tokens", i, off[i].CachedTokens)
		}
		if on[i].CachedTokens > 0 {
			sawCached = true
		}
	}
	if !sawCached {
		t.Fatal("no request reported cached tokens with the cache on")
	}
}

// TestPrefixCachePromptLenValidation: a submission carrying tokens may
// omit PromptLen (defaulted) but must not contradict it.
func TestPrefixCachePromptLenValidation(t *testing.T) {
	srv, err := New(Config{Engine: prefixTestEngine(t), PrefixCache: true})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Stop(ctx)
	}()

	if _, err := srv.Submit(Request{Prompt: seqTokens(32, 1), PromptLen: 31, OutputLen: 4}); err == nil {
		t.Fatal("contradictory prompt_len accepted")
	}
	tk, err := srv.Submit(Request{Prompt: seqTokens(32, 1), OutputLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	res := <-tk.Result()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.PromptLen != 32 {
		t.Fatalf("PromptLen defaulted to %d, want 32", res.PromptLen)
	}
}

// TestRouterAggregatesPrefixStats: a routed fleet sums prefix counters
// and block gauges across replicas.
func TestRouterAggregatesPrefixStats(t *testing.T) {
	mk := func() *Server {
		srv, err := New(Config{Engine: prefixTestEngine(t), PrefixCache: true})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	r, err := NewRouter(mk(), mk())
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	prompt := seqTokens(96, 3)
	// Submit sequentially so each request finds the prefix committed:
	// requests admitted in one burst all race the first commit and
	// legitimately miss.
	for i := 0; i < 6; i++ {
		tk, err := r.Submit(Request{Prompt: prompt, OutputLen: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res := <-tk.Result(); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Stop(ctx); err != nil {
		t.Fatal(err)
	}

	agg, per := r.Snapshot()
	if !agg.PrefixCacheEnabled {
		t.Fatal("aggregate lost PrefixCacheEnabled")
	}
	var hits, saved int64
	var cachedBlocks int
	for _, st := range per {
		hits += st.PrefixHits
		saved += st.PrefixTokensSaved
		cachedBlocks += st.CachedKVBlocks
	}
	if agg.PrefixHits != hits || agg.PrefixTokensSaved != saved || agg.CachedKVBlocks != cachedBlocks {
		t.Fatalf("aggregate %d/%d/%d, replica sum %d/%d/%d",
			agg.PrefixHits, agg.PrefixTokensSaved, agg.CachedKVBlocks, hits, saved, cachedBlocks)
	}
	// The router dispatched by load; identical prompts land hits on
	// whichever replica saw the prefix before. With 6 identical
	// prompts over 2 replicas at least 4 admissions repeat a prefix
	// somewhere.
	if hits == 0 {
		t.Fatal("no prefix hits across the fleet")
	}
}
