package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"zipserv/internal/engine"
	"zipserv/internal/kvcache"
)

// acceptStub is a Backend that accepts every submission and serves a
// canned Stats snapshot — the dispatch-decision fixture: which replica
// a router picks is observable as the stub's submit count.
type acceptStub struct {
	st      Stats
	submits int
}

func (s *acceptStub) Start() {}
func (s *acceptStub) Submit(Request) (*Ticket, error) {
	s.submits++
	return &Ticket{}, nil
}
func (s *acceptStub) Stats() Stats               { return s.st }
func (s *acceptStub) Stop(context.Context) error { return nil }

// summaryOf builds a real prefix-trie digest advertising the given
// prompts, via an actual kvcache manager — stub replicas then claim
// cached content they do not have, which is exactly what a router sees.
func summaryOf(t *testing.T, prompts ...[]int) *kvcache.PrefixSummary {
	t.Helper()
	m, err := kvcache.NewManager(kvcache.Config{BlockTokens: kvcache.DefaultBlockTokens, TotalBlocks: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnablePrefixCache(0); err != nil {
		t.Fatal(err)
	}
	for i, p := range prompts {
		if err := m.Allocate(i+1, len(p)); err != nil {
			t.Fatal(err)
		}
		if err := m.CommitPrefix(i+1, p, len(p)); err != nil {
			t.Fatal(err)
		}
	}
	return m.PrefixSummary()
}

func TestEnableAffinityValidation(t *testing.T) {
	r, err := NewRouter(&acceptStub{})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []AffinityConfig{
		{LoadBand: -1}, {MinFreeBlocks: -1}, {MinOverlapTokens: -1}, {LongPromptTokens: -1},
	} {
		if err := r.EnableAffinity(bad); err == nil {
			t.Errorf("EnableAffinity(%+v) accepted a negative knob", bad)
		}
	}
	if r.AffinityEnabled() {
		t.Error("rejected configs must not enable affinity")
	}
	if err := r.EnableAffinity(AffinityConfig{}); err != nil {
		t.Fatal(err)
	}
	if !r.AffinityEnabled() {
		t.Error("AffinityEnabled() false after EnableAffinity")
	}
}

// TestAffinityPrefersSummaryMatchInBand: with comparable load, a
// request must land on the replica whose digest matches its prompt —
// not the least-loaded one — and count as an affinity hit.
func TestAffinityPrefersSummaryMatchInBand(t *testing.T) {
	prompt := seqTokens(256, 42)
	cold := &acceptStub{st: Stats{FreeKVBlocks: 1000}}
	warm := &acceptStub{st: Stats{
		FreeKVBlocks: 1000, Queued: 2, // slightly busier, inside the band
		PrefixSummary: summaryOf(t, prompt),
	}}
	r, err := NewRouter(cold, warm)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnableAffinity(AffinityConfig{LoadBand: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(Request{Prompt: append(append([]int(nil), prompt...), seqTokens(64, 7)...), OutputLen: 16}); err != nil {
		t.Fatal(err)
	}
	if warm.submits != 1 || cold.submits != 0 {
		t.Fatalf("dispatch went cold=%d warm=%d, want the summary match (warm)", cold.submits, warm.submits)
	}
	agg := r.Stats()
	if agg.PrefixAffinityHits != 1 || agg.AffinitySpills != 0 {
		t.Errorf("hits/spills = %d/%d, want 1/0", agg.PrefixAffinityHits, agg.AffinitySpills)
	}

	// A promptless request has nothing to match: pure least-loaded.
	if _, err := r.Submit(Request{PromptLen: 64, OutputLen: 16}); err != nil {
		t.Fatal(err)
	}
	if cold.submits != 1 {
		t.Errorf("promptless request went to the busier replica")
	}
	if agg := r.Stats(); agg.PrefixAffinityHits != 1 {
		t.Errorf("promptless request perturbed affinity hits: %d", agg.PrefixAffinityHits)
	}
}

// TestAffinitySpillsOutOfBand: affinity must lose to load when the
// preferred replica sits past the load band or under the free-block
// floor — counted as spills, routed least-loaded.
func TestAffinitySpillsOutOfBand(t *testing.T) {
	prompt := seqTokens(256, 42)
	sum := summaryOf(t, prompt)
	req := Request{Prompt: prompt, OutputLen: 16}

	// Out of band: the matching replica is 20 deep, band is 4.
	cold := &acceptStub{st: Stats{FreeKVBlocks: 1000}}
	warm := &acceptStub{st: Stats{FreeKVBlocks: 1000, Queued: 20, PrefixSummary: sum}}
	r, err := NewRouter(cold, warm)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnableAffinity(AffinityConfig{LoadBand: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(req); err != nil {
		t.Fatal(err)
	}
	if cold.submits != 1 || warm.submits != 0 {
		t.Fatalf("out-of-band dispatch went cold=%d warm=%d, want least-loaded (cold)", cold.submits, warm.submits)
	}
	if agg := r.Stats(); agg.PrefixAffinityHits != 0 || agg.AffinitySpills != 1 {
		t.Errorf("hits/spills = %d/%d, want 0/1", agg.PrefixAffinityHits, agg.AffinitySpills)
	}

	// Under the free-block floor: in band, but no room for the
	// reservation.
	starved := &acceptStub{st: Stats{FreeKVBlocks: 1, PrefixSummary: sum}}
	roomy := &acceptStub{st: Stats{FreeKVBlocks: 1000, Queued: 1}}
	r2, err := NewRouter(starved, roomy)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.EnableAffinity(AffinityConfig{LoadBand: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Submit(req); err != nil {
		t.Fatal(err)
	}
	if roomy.submits != 1 || starved.submits != 0 {
		t.Fatalf("floor dispatch went starved=%d roomy=%d, want the replica with room", starved.submits, roomy.submits)
	}
	if agg := r2.Stats(); agg.AffinitySpills != 1 {
		t.Errorf("floor spill not counted: %d", agg.AffinitySpills)
	}
}

// TestAffinityLongPromptPrefersIdleLoop: on a load tie, a long prompt
// must tie-break toward the replica whose adaptive chunk budget sits at
// its ceiling (the idle operating point) even when the other candidate
// has more free blocks.
func TestAffinityLongPromptPrefersIdleLoop(t *testing.T) {
	busyLoop := &acceptStub{st: Stats{FreeKVBlocks: 5000, AdaptiveChunking: true,
		ChunkBudget: 256, ChunkBudgetMax: 2048}}
	idleLoop := &acceptStub{st: Stats{FreeKVBlocks: 1000, AdaptiveChunking: true,
		ChunkBudget: 2048, ChunkBudgetMax: 2048}}
	r, err := NewRouter(busyLoop, idleLoop)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnableAffinity(AffinityConfig{}); err != nil {
		t.Fatal(err)
	}
	long := Request{Prompt: seqTokens(2048, 3), OutputLen: 16}
	if _, err := r.Submit(long); err != nil {
		t.Fatal(err)
	}
	if idleLoop.submits != 1 || busyLoop.submits != 0 {
		t.Fatalf("long prompt went busy=%d idle=%d, want the ceiling-budget loop", busyLoop.submits, idleLoop.submits)
	}
	// A short prompt keeps the plain free-block tie-break.
	short := Request{Prompt: seqTokens(64, 3), OutputLen: 16}
	if _, err := r.Submit(short); err != nil {
		t.Fatal(err)
	}
	if busyLoop.submits != 1 {
		t.Errorf("short prompt ignored the free-block tie-break")
	}
}

// TestRouterAggregatesAffinityStats: the fleet view must sum hit/spill
// counters (nested routers report their own), take the oldest summary
// age, and merge the per-replica digests (blocks summed, roots
// unioned) — with a summaryless replica folding in cleanly.
func TestRouterAggregatesAffinityStats(t *testing.T) {
	p1, p2 := seqTokens(64, 1), seqTokens(64, 2)
	s1, s2 := summaryOf(t, p1), summaryOf(t, p2)
	a := Stats{PrefixAffinityHits: 2, AffinitySpills: 1, SummaryAgeSeconds: 1.5, PrefixSummary: s1}
	b := Stats{PrefixAffinityHits: 3, AffinitySpills: 4, SummaryAgeSeconds: 0.25, PrefixSummary: s2}
	c := Stats{} // stopped or cacheless replica: no digest, no counters
	r, err := NewRouter(&statsStub{a}, &statsStub{b}, &statsStub{c})
	if err != nil {
		t.Fatal(err)
	}
	agg := r.Stats()
	if agg.PrefixAffinityHits != 5 || agg.AffinitySpills != 5 {
		t.Errorf("hits/spills = %d/%d, want summed 5/5", agg.PrefixAffinityHits, agg.AffinitySpills)
	}
	if agg.SummaryAgeSeconds != 1.5 {
		t.Errorf("summary age %v, want the oldest replica's 1.5", agg.SummaryAgeSeconds)
	}
	if agg.PrefixSummary == nil {
		t.Fatal("aggregate dropped the merged digest")
	}
	if got, want := agg.PrefixSummary.Blocks, s1.Blocks+s2.Blocks; got != want {
		t.Errorf("merged digest %d blocks, want %d", got, want)
	}
	if len(agg.PrefixSummary.Roots) != 2 {
		t.Errorf("merged digest %d roots, want both tenants'", len(agg.PrefixSummary.Roots))
	}
	// Both tenants' prompts match the fleet digest.
	for i, p := range [][]int{p1, p2} {
		hp := kvcache.HashPromptTokens(p, agg.PrefixSummary.BlockTokens)
		if agg.PrefixSummary.MatchTokens(hp) == 0 {
			t.Errorf("tenant %d prompt missing from merged digest", i+1)
		}
	}
}

// TestAggregateAffinityZeroReplicas: an empty fold must not invent a
// digest or counters.
func TestAggregateAffinityZeroReplicas(t *testing.T) {
	agg := aggregateStats(nil)
	if agg.PrefixSummary != nil {
		t.Errorf("zero-replica aggregate invented a digest: %+v", agg.PrefixSummary)
	}
	if agg.PrefixAffinityHits != 0 || agg.AffinitySpills != 0 || agg.SummaryAgeSeconds != 0 {
		t.Errorf("zero-replica affinity fields nonzero: %+v", agg)
	}
}

// TestAffinityStatsSurviveStoppedReplica: a drained replica's final
// snapshot still carries its digest; the fleet aggregate keeps folding
// it and live dispatch keeps working against the survivors.
func TestAffinityStatsSurviveStoppedReplica(t *testing.T) {
	servers := make([]*Server, 2)
	backends := make([]Backend, 2)
	for i := range servers {
		servers[i] = newServer(t, Config{
			Engine: testEngine(t, engine.BackendZipServ), QueueDepth: 16, PrefixCache: true,
		})
		backends[i] = servers[i]
	}
	r, err := NewRouter(backends...)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnableAffinity(AffinityConfig{LoadBand: 16}); err != nil {
		t.Fatal(err)
	}
	r.Start()
	// Warm each replica with its own tenant prefix.
	for i, sv := range servers {
		tk, err := sv.Submit(Request{Prompt: seqTokens(128, i+1), OutputLen: 8})
		if err != nil {
			t.Fatal(err)
		}
		if res := awaitResult(t, tk); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := servers[0].Stop(ctx); err != nil {
		t.Fatal(err)
	}
	agg, per := r.Snapshot()
	if len(per) != 2 || per[0].PrefixSummary == nil || per[1].PrefixSummary == nil {
		t.Fatalf("per-replica digests lost across a stop: %+v", per)
	}
	if agg.PrefixSummary == nil || len(agg.PrefixSummary.Roots) < 2 {
		t.Fatalf("aggregate digest lost the stopped replica's roots: %+v", agg.PrefixSummary)
	}
	if agg.SummaryAgeSeconds < 0 {
		t.Errorf("aggregate summary age negative: %v", agg.SummaryAgeSeconds)
	}
	// Tenant 2's follow-up still routes by affinity to the survivor.
	tk, err := r.Submit(Request{Prompt: append(append([]int(nil), seqTokens(128, 2)...), seqTokens(32, 9)...), OutputLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res := awaitResult(t, tk); res.Err != nil {
		t.Fatal(res.Err)
	}
	if hits := r.Stats().PrefixAffinityHits; hits != 1 {
		t.Errorf("affinity hits after failover = %d, want 1", hits)
	}
	if got := servers[1].Stats().PrefixHits; got == 0 {
		t.Error("affinity-routed request missed the survivor's cache")
	}
}

// TestAffinityEndToEndReusesCache: through live servers, affinity
// dispatch must send a shared-prefix follow-up to the replica that
// already holds the prefix, and the replica must serve it as a cache
// hit.
func TestAffinityEndToEndReusesCache(t *testing.T) {
	r, servers := func() (*Router, []*Server) {
		servers := make([]*Server, 2)
		backends := make([]Backend, 2)
		for i := range servers {
			servers[i] = newServer(t, Config{
				Engine: testEngine(t, engine.BackendZipServ), QueueDepth: 16, PrefixCache: true,
			})
			backends[i] = servers[i]
		}
		r, err := NewRouter(backends...)
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		return r, servers
	}()
	if err := r.EnableAffinity(AffinityConfig{LoadBand: 16}); err != nil {
		t.Fatal(err)
	}

	prefix := seqTokens(256, 5)
	// Seed the prefix on replica 1 specifically.
	tk, err := servers[1].Submit(Request{Prompt: prefix, OutputLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res := awaitResult(t, tk); res.Err != nil {
		t.Fatal(res.Err)
	}

	// Shared-prefix follow-ups through the router: every one must land
	// on replica 1 and reuse the cached blocks.
	const n = 4
	for i := 0; i < n; i++ {
		req := Request{Prompt: append(append([]int(nil), prefix...), seqTokens(48, 100+i)...), OutputLen: 8}
		tk, err := r.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		res := awaitResult(t, tk)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.CachedTokens < 256 {
			t.Errorf("follow-up %d reused %d cached tokens, want >= 256", i, res.CachedTokens)
		}
	}
	if got := servers[0].Stats().Completed; got != 0 {
		t.Errorf("cold replica served %d shared-prefix requests; affinity should pin them", got)
	}
	agg := r.Stats()
	if agg.PrefixAffinityHits != n {
		t.Errorf("affinity hits = %d, want %d", agg.PrefixAffinityHits, n)
	}
	if agg.PrefixHits < n {
		t.Errorf("fleet prefix hits = %d, want >= %d", agg.PrefixHits, n)
	}
	if agg.PrefixSummary == nil || agg.SummaryAgeSeconds < 0 {
		t.Errorf("fleet digest missing or age negative: %+v age=%v", agg.PrefixSummary, agg.SummaryAgeSeconds)
	}
}

// TestAggregateChunkBudgetMinIgnoresMonolithic (bugfix sweep): a
// monolithic replica reports ChunkBudgetMin 0 meaning "no per-iteration
// bound"; folding that 0 as the fleet minimum used to report the
// loosest replica as the tightest budget. The min must range over
// replicas that have a budget, 0 only when none do.
func TestAggregateChunkBudgetMinIgnoresMonolithic(t *testing.T) {
	adaptive := Stats{AdaptiveChunking: true, ChunkBudget: 512, ChunkBudgetMin: 256, ChunkBudgetMax: 2048}
	monolithic := Stats{} // whole-prompt prefill: budgets all 0
	agg := aggregateStats([]Stats{monolithic, adaptive})
	if agg.ChunkBudgetMin != 256 {
		t.Errorf("ChunkBudgetMin = %d, want 256 (monolithic 0 is not a budget)", agg.ChunkBudgetMin)
	}
	// Order must not matter.
	if got := aggregateStats([]Stats{adaptive, monolithic}).ChunkBudgetMin; got != 256 {
		t.Errorf("reversed ChunkBudgetMin = %d, want 256", got)
	}
	if got := aggregateStats([]Stats{monolithic, {}}).ChunkBudgetMin; got != 0 {
		t.Errorf("all-monolithic ChunkBudgetMin = %d, want 0", got)
	}
}

// TestFailAllCountsFailures (bugfix sweep): requests failed by the
// loop's terminal failAll path used to vanish from Stats.Failed — the
// loop exits before any further publish, so the snapshot said failed=0
// while every caller held an error.
func TestFailAllCountsFailures(t *testing.T) {
	s := newServer(t, Config{Engine: testEngine(t, engine.BackendZipServ), QueueDepth: 4})
	// Never started: submissions sit in the channel until failAll
	// drains them.
	boom := errors.New("boom")
	tks := make([]*Ticket, 3)
	for i := range tks {
		tk, err := s.Submit(Request{PromptLen: 32, OutputLen: 8})
		if err != nil {
			t.Fatal(err)
		}
		tks[i] = tk
	}
	s.failAll(nil, nil, nil, boom)
	// Let the loop run once so it observes the stop and closes done —
	// otherwise the cleanup Stop would wait out its whole timeout.
	s.Start()
	for i, tk := range tks {
		select {
		case res := <-tk.Result():
			if !errors.Is(res.Err, boom) {
				t.Errorf("request %d err = %v, want boom", i, res.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d result never delivered", i)
		}
	}
	if got := s.Stats().Failed; got != 3 {
		t.Errorf("Stats.Failed = %d, want 3 failures delivered by failAll", got)
	}
}
