package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"zipserv/internal/engine"
	"zipserv/internal/kvcache"
)

// Server is the live continuous-batching scheduler for one engine
// replica. It implements Backend.
type Server struct {
	cfg      Config
	submitCh chan *call
	stop     chan struct{}
	done     chan struct{}
	// kill force-fails the drain: Stop closes it when its context
	// expires, and the loop then abandons graceful draining, failing
	// everything undelivered into Stats.Failed instead of serving it.
	kill     chan struct{}
	killOnce sync.Once

	gate    sync.RWMutex // serialises Submit sends against Stop
	stopped bool

	// onDeath, installed by Router.EnableHealth before Start, receives
	// the requests a dying replica lost (crash, hang-at-stop, dropped
	// handoff) so the router can resurrect them on another replica.
	// Nil means lost requests fail to the client.
	onDeath func(from *Server, lost []*call)

	// doneScratch carries this iteration's claimed completions from
	// counting to delivery; scheduler goroutine only.
	doneScratch []doneJob

	// ids assigns request IDs. Private per server by default;
	// NewPooledRouter points every pooled replica at one shared counter,
	// because a sequence keeps its id across a prefill→decode handoff
	// and ids minted by different replicas must never collide.
	ids *atomic.Int64
	// handoffCh receives mid-generation sequences exported by a prefill
	// replica (acceptHandoff). handoffFn, set on prefill replicas by
	// NewPooledRouter before Start, dispatches an export to a decode
	// replica; nil means serve co-located.
	handoffCh chan *handoff
	handoffFn func(*handoff) error

	submitted atomic.Int64
	rejected  atomic.Int64
	startedAt atomic.Int64 // unix nanos; 0 until Start

	statsMu sync.Mutex
	stats   Stats
	recent  []time.Time // wall completion times within drainWindow

	// Prefix-summary age tracking (scheduler goroutine only): the trie
	// epoch of the last published digest and the virtual clock when it
	// changed, so publish can report how stale the advertised summary
	// is (Stats.SummaryAgeSeconds).
	lastSummaryEpoch int64
	lastSummaryClock float64

	// Admission-loop scratch, reused across iterations so the hot loop
	// builds its eligible views without allocating. Only the scheduler
	// goroutine touches these (legacy linear path; custom policies).
	eligScratch []Pending
	idxScratch  []int

	// core is the bitmap-scoreboard scheduler state for the built-in
	// policies (scoreboard.go): eligible requests bucketed at enqueue
	// time, the running batch mirrored into a deadline scoreboard, and
	// every per-slot decision O(1) in queue depth. Nil for custom
	// Policy implementations, which keep the linear-scan path. Only
	// the scheduler goroutine touches it.
	core *schedCore

	// policyFaults counts out-of-contract Policy.Next returns (an
	// index past the eligible view) the loop clamped to the queue
	// head; surfaced as Stats.PolicyFaults so a buggy third-party
	// policy cannot silently stall a loaded system.
	policyFaults atomic.Int64
	faultLogOnce sync.Once

	startOnce sync.Once
}

// The recent-completion window sizing the RecentDrainRPS estimate.
const (
	drainWindow = 30 * time.Second
	maxRecent   = 256
)

var _ Backend = (*Server)(nil)

// New builds a live server over the engine, rejecting configurations
// the scheduler loop has no defined behaviour for (negative budgets or
// windows, non-finite pacing). Call Start to launch the scheduler
// goroutine.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("serve: config needs an engine")
	}
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Policy == nil {
		cfg.Policy = FIFOPolicy{}
	}
	if cfg.AdaptiveChunking && cfg.TargetStepTime == 0 {
		cfg.TargetStepTime = DefaultTargetStepTime
	}
	blocks := cfg.Engine.Plan().Blocks
	seedBudget := cfg.PrefillChunkTokens
	if cfg.AdaptiveChunking {
		seedBudget = engine.DefaultAdaptiveChunkMax
	}
	// Mirror the sizing controller's starting bound (the static value,
	// or the whole plan when unbounded) so a replica that has not yet
	// run an iteration reports the same pool target its loop will.
	seedPool := cfg.PrefixCacheBlocks
	if cfg.AdaptivePrefixCache && seedPool == 0 {
		seedPool = blocks
	}
	// An enabled-but-empty compressed store reports the neutral ratio
	// 1.0, matching what the loop's first publish will read.
	seedRatio := 0.0
	if cfg.CompressedCache {
		seedRatio = 1.0
	}
	return &Server{
		cfg:       cfg,
		core:      newSchedCore(cfg.Policy),
		submitCh:  make(chan *call, cfg.QueueDepth),
		handoffCh: make(chan *handoff, cfg.QueueDepth),
		ids:       new(atomic.Int64),
		stop:      make(chan struct{}),
		kill:      make(chan struct{}),
		done:      make(chan struct{}),
		// One backing array for the drain-rate window instead of a
		// doubling cascade on the first completions.
		recent: make([]time.Time, 0, 64),
		// Seed the snapshot so a router's capacity-aware dispatch sees
		// real headroom before the loop's first publish.
		stats: Stats{
			FreeKVBlocks:           blocks,
			TotalKVBlocks:          blocks,
			Policy:                 cfg.Policy.Name(),
			PrefillChunkTokens:     cfg.PrefillChunkTokens,
			PrefixCacheEnabled:     cfg.PrefixCache,
			AdaptiveChunking:       cfg.AdaptiveChunking,
			ChunkBudget:            seedBudget,
			ChunkBudgetMin:         seedBudget,
			ChunkBudgetMax:         seedBudget,
			TargetStepTime:         cfg.TargetStepTime,
			AdaptivePrefixCache:    cfg.AdaptivePrefixCache,
			CachePoolTarget:        seedPool,
			CompressedCacheEnabled: cfg.CompressedCache,
			KVCompressionRatio:     seedRatio,
			Pool:                   string(cfg.Pool),
		},
	}, nil
}

// validateConfig rejects scheduler parameters outside their defined
// domain with an error naming the offending field, instead of letting
// a negative chunk budget, a negative admission window, a NaN time
// scale or a negative cache bound reach the loop as undefined
// behaviour. Flag-driven callers (zipserv-server) surface these at
// startup.
func validateConfig(cfg Config) error {
	if cfg.MaxBatch < 0 {
		return fmt.Errorf("serve: MaxBatch (-max-batch) must be >= 0, got %d", cfg.MaxBatch)
	}
	if cfg.PrefillChunkTokens < 0 {
		return fmt.Errorf("serve: PrefillChunkTokens (-prefill-chunk) must be >= 0, got %d", cfg.PrefillChunkTokens)
	}
	if cfg.AdmissionWindow < 0 {
		return fmt.Errorf("serve: AdmissionWindow (-admit-window) must be >= 0, got %s", cfg.AdmissionWindow)
	}
	if math.IsNaN(cfg.TimeScale) || math.IsInf(cfg.TimeScale, 0) || cfg.TimeScale < 0 {
		return fmt.Errorf("serve: TimeScale (-time-scale) must be finite and >= 0, got %v", cfg.TimeScale)
	}
	if cfg.PrefixCacheBlocks < 0 {
		return fmt.Errorf("serve: PrefixCacheBlocks (-prefix-cache-blocks) must be >= 0, got %d", cfg.PrefixCacheBlocks)
	}
	if math.IsNaN(cfg.TargetStepTime) || math.IsInf(cfg.TargetStepTime, 0) || cfg.TargetStepTime < 0 {
		return fmt.Errorf("serve: TargetStepTime (-target-step-time) must be finite and >= 0, got %v", cfg.TargetStepTime)
	}
	if cfg.TargetStepTime > 0 && !cfg.AdaptiveChunking {
		return fmt.Errorf("serve: TargetStepTime (-target-step-time) requires AdaptiveChunking (-adaptive-chunk)")
	}
	if cfg.AdaptiveChunking && cfg.PrefillChunkTokens > 0 {
		return fmt.Errorf("serve: AdaptiveChunking (-adaptive-chunk) and PrefillChunkTokens (-prefill-chunk) are mutually exclusive")
	}
	if cfg.AdaptivePrefixCache && !cfg.PrefixCache {
		return fmt.Errorf("serve: AdaptivePrefixCache (-adaptive-prefix-cache) requires PrefixCache (-prefix-cache)")
	}
	if cfg.CompressedCache && !cfg.PrefixCache {
		return fmt.Errorf("serve: CompressedCache (-compressed-cache) requires PrefixCache (-prefix-cache)")
	}
	switch cfg.Pool {
	case "", PoolMixed, PoolPrefill, PoolDecode:
	default:
		return fmt.Errorf("serve: unknown Pool (-pool) %q, want prefill, decode or mixed", cfg.Pool)
	}
	return nil
}

// Start launches the scheduler goroutine. Safe to call once.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		s.startedAt.Store(time.Now().UnixNano())
		go s.loop()
	})
}

// Stop shuts the server down gracefully: new submissions are rejected
// with ErrStopped immediately, while everything already queued or in
// flight is served to completion. When ctx expires (including a
// context that is already expired on entry) the drain is force-failed
// instead of abandoned: the scheduler promptly fails every undelivered
// request — callers get their error, Stats.Failed counts them — and
// Stop returns ctx.Err() once that accounting has landed.
func (s *Server) Stop(ctx context.Context) error {
	s.gate.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.stop)
	}
	s.gate.Unlock()
	if s.startedAt.Load() == 0 {
		// Never started: no scheduler goroutine will ever close done,
		// and there is nothing queued to drain or fail.
		return nil
	}
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
	}
	// Deadline passed mid-drain: force-fail what is left. The loop
	// observes kill at its next iteration edge (or idle wakeup), fails
	// everything undelivered and exits; waiting for done here means the
	// failure accounting is published before Stop returns.
	s.killOnce.Do(func() { close(s.kill) })
	<-s.done
	return ctx.Err()
}

// Submit offers a request to the admission queue without blocking: it
// fails fast with ErrQueueFull when the queue is at capacity,
// ErrStopped after Stop, or ErrNeverFits when the request exceeds the
// device's total KV plan.
func (s *Server) Submit(req Request) (*Ticket, error) {
	if len(req.Prompt) > 0 {
		if req.PromptLen == 0 {
			req.PromptLen = len(req.Prompt)
		} else if req.PromptLen != len(req.Prompt) {
			return nil, fmt.Errorf("serve: prompt_len %d does not match %d prompt tokens",
				req.PromptLen, len(req.Prompt))
		}
	}
	if req.PromptLen <= 0 || req.OutputLen <= 0 {
		return nil, fmt.Errorf("serve: prompt/output lengths must be positive, got %d/%d",
			req.PromptLen, req.OutputLen)
	}
	if !s.cfg.Engine.FitsKV(req.PromptLen, req.OutputLen) {
		return nil, fmt.Errorf("%w: needs %d KV blocks, plan has %d", ErrNeverFits,
			kvcache.BlocksFor(req.PromptLen+req.OutputLen, kvcache.DefaultBlockTokens),
			s.cfg.Engine.Plan().Blocks)
	}
	arrival := req.Arrival
	if arrival < 0 {
		arrival = ArrivalNow // normalised; assigned the live clock at drain
	}
	class := req.Class
	switch class {
	case "":
		class = ClassInteractive
	case ClassInteractive, ClassBatch:
	default:
		// Reject rather than default: an unknown class would silently
		// schedule as top-priority interactive.
		return nil, fmt.Errorf("serve: unknown request class %q", class)
	}
	id := int(s.ids.Add(1))
	c := &call{
		req: engine.Request{
			ID:             id,
			ArrivalSeconds: arrival,
			PromptLen:      req.PromptLen,
			OutputLen:      req.OutputLen,
			Prompt:         req.Prompt,
		},
		clientID:  id,
		class:     class,
		ttftSLO:   req.TTFTDeadline,
		submitted: time.Now(),
		events:    make(chan Event, 8),
		result:    make(chan Result, 1),
	}

	s.gate.RLock()
	defer s.gate.RUnlock()
	if s.stopped {
		return nil, ErrStopped
	}
	c.ticket = Ticket{ID: c.clientID, events: c.events, result: c.result}
	select {
	case s.submitCh <- c:
		s.submitted.Add(1)
		return &c.ticket, nil
	default:
		s.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

// Stats returns an aggregate snapshot. Safe for concurrent use.
func (s *Server) Stats() Stats {
	now := time.Now()
	s.statsMu.Lock()
	st := s.stats
	s.pruneRecentLocked(now)
	if n := len(s.recent); n > 0 {
		// On the first request burst every retained completion can carry
		// the same wall timestamp as this snapshot, making the window
		// span exactly zero (and clock adjustments could even drive it
		// negative) — dividing by it would publish an infinite drain
		// rate and poison the Retry-After estimate downstream. Clamp the
		// span to a 1s floor, which also keeps sub-second bursts from
		// overstating the sustained rate.
		span := now.Sub(s.recent[0]).Seconds()
		if span < 1 { // covers the zero/negative degenerate spans too
			span = 1
		}
		st.RecentDrainRPS = float64(n) / span
	}
	s.statsMu.Unlock()
	st.Submitted = s.submitted.Load()
	st.Rejected = s.rejected.Load()
	st.PolicyFaults = s.policyFaults.Load()
	// The published snapshot counts only the loop's pending list;
	// requests still buffered in the submit and handoff channels are
	// queued too.
	st.Queued += len(s.submitCh) + len(s.handoffCh)
	if started := s.startedAt.Load(); started != 0 {
		st.WallSeconds = time.Since(time.Unix(0, started)).Seconds()
	}
	if st.SimSeconds > 0 {
		st.Goodput = float64(st.Completed) / st.SimSeconds
		st.Throughput = float64(st.OutputTokens) / st.SimSeconds
	}
	return st
}

// loop is the scheduler goroutine: admission → prefill → decode, one
// iteration at a time, until stopped and drained.
func (s *Server) loop() {
	defer close(s.done)

	sp, err := engine.NewStepper(s.cfg.Engine)
	if err != nil {
		s.failAll(nil, nil, nil, err)
		return
	}
	sp.PackedPrefill = !s.cfg.PaddedPrefill
	sp.PrefillChunkTokens = s.cfg.PrefillChunkTokens
	if s.cfg.Pool == PoolPrefill {
		// A prefill replica's steady state has no decode batch: run the
		// adaptive chunk controller at its decode-free operating point
		// instead of chasing a headroom that never exists.
		sp.DecodeFree = true
	}
	if s.cfg.AdaptiveChunking {
		if err := sp.EnableAdaptiveChunking(s.cfg.TargetStepTime, 0, 0); err != nil {
			s.failAll(nil, nil, nil, err)
			return
		}
	}
	if s.cfg.PrefixCache {
		if err := sp.EnablePrefixCache(s.cfg.PrefixCacheBlocks); err != nil {
			s.failAll(nil, nil, nil, err)
			return
		}
		if s.cfg.AdaptivePrefixCache {
			if err := sp.EnableAdaptivePrefixCache(0, 0); err != nil {
				s.failAll(nil, nil, nil, err)
				return
			}
		}
		if s.cfg.CompressedCache {
			if err := sp.EnableCompressedCache(); err != nil {
				s.failAll(nil, nil, nil, err)
				return
			}
		}
	}
	if f := s.cfg.Faults; f.active() {
		// Scripted faults are pure functions of this replica's virtual
		// clock (docs/robustness.md), so a chaos run replays
		// bit-identically: slowdown dilates every step's virtual cost,
		// and codec faults degrade cold-block freezes to plain parking.
		sp.TimeDilation = f.slowFactorAt
		if s.cfg.CompressedCache {
			sp.SetCodecFault(func() bool { return f.codecFailingAt(sp.Clock()) })
		}
	}

	// The pending queue and the admission view scratch are bounded by
	// what the submit queue can feed them; one up-front backing array
	// apiece replaces a doubling cascade per server.
	seed := s.cfg.QueueDepth
	if seed > 256 {
		seed = 256
	}
	s.eligScratch = make([]Pending, 0, seed)
	s.idxScratch = make([]int, 0, seed)
	var (
		pending   = make([]*call, 0, seed)
		pendingHO []*handoff // handed-off sequences awaiting import
		inflight  = make(map[int]*call)
		agg       aggregate
		wasIdle   bool
	)
	for {
		// Force-fail check first: Stop's context expired, so the drain
		// is abandoned — every undelivered request fails promptly.
		select {
		case <-s.kill:
			s.failAll(pending, pendingHO, inflight, fmt.Errorf("%w: drain deadline exceeded", ErrStopped))
			return
		default:
		}
		// Scripted death next, on this replica's own virtual clock.
		if f := s.cfg.Faults; f.active() {
			if f.crashedAt(sp.Clock()) {
				s.crash(pending, pendingHO, inflight)
				return
			}
			if f.hungAt(sp.Clock()) {
				s.hang(pending, pendingHO, inflight)
				return
			}
		}
		// Observe idleness before draining the channel: whatever the
		// drain below (or the blocking select) picks up is then the
		// first work of a fresh batch, eligible for the admission
		// window. Re-arming anywhere later would miss bursts whose
		// first request lands between the end of one batch and the
		// next iteration's drain.
		if sp.InFlight() == 0 && len(pending)+s.core.len() == 0 && len(pendingHO) == 0 {
			wasIdle = true
		}
		pending = s.drain(sp, pending)
		pendingHO = s.drainHandoffs(pendingHO)

		if sp.InFlight() == 0 && len(pending)+s.core.len() == 0 && len(pendingHO) == 0 {
			// Fully idle: block for the next submission, handoff or
			// shutdown.
			select {
			case c := <-s.submitCh:
				pending = s.arrive(sp, pending, c)
				continue
			case h := <-s.handoffCh:
				pendingHO = append(pendingHO, h)
				continue
			case <-s.kill:
				s.failAll(pending, pendingHO, inflight, fmt.Errorf("%w: drain deadline exceeded", ErrStopped))
				return
			case <-s.stop:
				// Anything that raced past the gate before Stop is
				// buffered; serve it before exiting.
				pending = s.drain(sp, pending)
				pendingHO = s.drainHandoffs(pendingHO)
				if len(pending)+s.core.len() > 0 || len(pendingHO) > 0 {
					continue
				}
				return
			}
		}

		// First work after an idle stretch: hold the admission window
		// open so a wall-clock burst coalesces into one prefill batch.
		// The edge lives here rather than in the idle select because
		// the top-of-loop drain can win the race for a burst's first
		// submission and would otherwise bypass the window.
		if wasIdle {
			wasIdle = false
			pending = s.coalesce(sp, pending)
		}

		// Land handed-off sequences before admission: an import advances
		// the clock past its transfer, which can make queued arrivals
		// eligible for the same batch.
		pendingHO = s.importHandoffs(sp, pendingHO, inflight, &agg)
		pending = s.admit(sp, pending, inflight, &agg)

		// Prefill newcomers (packed, at most one chunk budget's worth of
		// prompt tokens), then one decode iteration.
		prefilled, prefillElapsed := sp.Prefill()
		for _, m := range prefilled {
			if c := inflight[m.ID]; c != nil {
				c.emit(Event{Type: EventFirstToken, SimSeconds: m.FirstToken, TTFT: m.TTFT})
			}
		}
		if s.handoffFn != nil {
			s.dispatchHandoffs(sp, prefilled, inflight, &agg)
		}
		finished, decodeElapsed, err := sp.DecodeStep()
		if err != nil {
			// Scheduler invariant broken (unreachable under the
			// conservative reservation): fail everything and halt.
			s.failAll(pending, pendingHO, inflight, err)
			return
		}
		// Claim each completion before counting it: a request that was
		// resurrected elsewhere (or served through a duplicated handoff)
		// may have been delivered by another replica already, and a lost
		// claim means this copy's completion must not be counted or
		// delivered a second time.
		jobs := s.doneScratch[:0]
		for _, m := range finished {
			c := inflight[m.ID]
			delete(inflight, m.ID)
			if s.core != nil {
				s.core.runningRemove(m.ID)
			}
			if c == nil || !c.claim() {
				continue
			}
			agg.complete(m)
			jobs = append(jobs, doneJob{c: c, m: m})
		}
		if len(jobs) > 0 {
			s.noteCompletions(len(jobs))
		}
		// Close the admission epoch: the cache-sizing controller
		// consumes this iteration's admission outcomes and resizes the
		// cached pool before the snapshot below reports the new target.
		sp.AdaptEpoch()
		// Publish before delivering results: a caller that has seen a
		// request's Result must observe stats that include it.
		s.publish(sp, len(pending)+s.core.len()+len(pendingHO), len(inflight), &agg)
		for i, j := range jobs {
			c, m := j.c, j.m
			c.emit(Event{Type: EventFinished, SimSeconds: m.Finished})
			c.deliver(Result{
				PromptLen: c.req.PromptLen, OutputLen: c.req.OutputLen,
				Arrival: m.Arrival, Admitted: m.Admitted,
				FirstToken: m.FirstToken, Finished: m.Finished,
				TTFT: m.TTFT, TPOT: m.TPOT,
				QueueWait: m.Admitted - m.Arrival, Latency: m.Latency,
				CachedTokens: m.CachedTokens,
			})
			jobs[i].c = nil // do not pin delivered calls via the scratch
		}
		s.doneScratch = jobs[:0]
		s.pace(prefillElapsed + decodeElapsed)
	}
}

// doneJob pairs a claimed completion with its metrics between the
// counting pass and the delivery pass of one iteration.
type doneJob struct {
	c *call
	m engine.RequestMetrics
}

// pace sleeps this iteration's virtual step duration × TimeScale so
// the virtual clock advances no faster than scaled wall time: sparse
// live arrivals land mid-flight and batch, instead of each draining
// completely before the next one arrives. Idle fast-forwards (arrival
// jumps) are never paced — only computed steps are.
func (s *Server) pace(simElapsed float64) {
	if s.cfg.TimeScale <= 0 || simElapsed <= 0 {
		return
	}
	select {
	case <-time.After(time.Duration(simElapsed * s.cfg.TimeScale * float64(time.Second))):
	case <-s.stop:
		// Draining: pacing only exists so new live arrivals can batch,
		// and Submit already rejects them — serve what's left flat out
		// instead of stretching the drain by the time scale.
	}
}

// coalesce implements the micro-batch admission window: an idle
// scheduler that just received its first live submission keeps
// draining arrivals for up to AdmissionWindow of wall time before
// scheduling, so a burst spread over a few milliseconds prefills as
// one batch. Shutdown cuts the window short; everything gathered is
// still served.
func (s *Server) coalesce(sp *engine.Stepper, pending []*call) []*call {
	if s.cfg.AdmissionWindow <= 0 {
		return pending
	}
	timer := time.NewTimer(s.cfg.AdmissionWindow)
	defer timer.Stop()
	for {
		select {
		case c := <-s.submitCh:
			pending = s.arrive(sp, pending, c)
		case <-timer.C:
			return pending
		case <-s.stop:
			return pending
		}
	}
}

// admit fills the batch from the pending queue in Policy order:
// eligible requests (arrived on the virtual clock) are offered to the
// policy one admission slot at a time, each admitted while its
// conservative KV reservation fits — with the policy's preemption hook
// invoked when it does not — and the batch cap allows. Built-in
// policies run on the scoreboard core (O(1) per slot); custom ones
// take the linear view-rebuild path below.
func (s *Server) admit(sp *engine.Stepper, pending []*call, inflight map[int]*call, agg *aggregate) []*call {
	if s.core != nil {
		s.admitScoreboard(sp, inflight, agg)
		return pending
	}
	for len(pending) > 0 {
		if s.cfg.MaxBatch > 0 && sp.InFlight() >= s.cfg.MaxBatch {
			break
		}
		// Split pending into eligible (arrived) and future requests.
		// The view buffers persist on the server so this per-iteration
		// split never allocates in steady state.
		eligible := s.eligScratch[:0]
		idxs := s.idxScratch[:0]
		nextArr := math.Inf(1)
		for i, c := range pending {
			if c.req.ArrivalSeconds <= sp.Clock() {
				eligible = append(eligible, s.pendingView(c))
				idxs = append(idxs, i)
			} else if c.req.ArrivalSeconds < nextArr {
				nextArr = c.req.ArrivalSeconds
			}
		}
		s.eligScratch, s.idxScratch = eligible, idxs
		if len(eligible) == 0 {
			if sp.InFlight() > 0 {
				break // future arrivals; keep decoding until then
			}
			sp.AdvanceTo(nextArr) // idle fast-forward to the next arrival
			continue
		}

		pick := s.cfg.Policy.Next(sp.Clock(), eligible)
		if pick >= len(eligible) {
			// Out of contract: Next must return an index into eligible
			// or a negative decline. Treating an over-long index like a
			// decline would let a buggy third-party policy stall a
			// loaded system indefinitely with no signal — so clamp to
			// the queue head (the same override a decline gets on an
			// idle system), count it, and say so once.
			s.notePolicyFault(pick, len(eligible))
			pick = 0
		}
		if pick < 0 {
			if sp.InFlight() > 0 {
				break // the policy defers to the running batch
			}
			pick = 0 // liveness guard: an idle system must admit
		}
		c := pending[idxs[pick]]
		if !sp.CanAdmitRequest(c.req) {
			pending = s.makeRoom(sp, pending, c, inflight, agg)
			if !sp.CanAdmitRequest(c.req) {
				if sp.InFlight() > 0 {
					break // capacity frees up as sequences finish
				}
				// Defensive guard against a spin: unreachable while
				// Submit's whole-plan check mirrors CanAdmit at an
				// empty system, but admission must always make
				// progress even if those drift apart.
				agg.failed++
				c.finish(Result{Err: fmt.Errorf("%w: %d+%d tokens vs %d-block plan",
					ErrNeverFits, c.req.PromptLen, c.req.OutputLen, s.cfg.Engine.Plan().Blocks)})
				pending = append(pending[:idxs[pick]], pending[idxs[pick]+1:]...)
				continue
			}
		}
		if err := sp.Admit(c.req); err != nil {
			agg.failed++
			c.finish(Result{Err: err})
			pending = append(pending[:idxs[pick]], pending[idxs[pick]+1:]...)
			continue
		}
		c.admittedAt = sp.Clock()
		inflight[c.req.ID] = c
		c.emit(Event{Type: EventAdmitted, SimSeconds: sp.Clock(),
			CachedTokens: sp.CachedTokensOf(c.req.ID)})
		pending = append(pending[:idxs[pick]], pending[idxs[pick]+1:]...)
	}
	return pending
}

// admitScoreboard is admit over the bitmap-scoreboard core: the
// eligible view is maintained incrementally (clock advances promote
// pending→eligible in arrival order; aged batch requests move rank)
// instead of being rebuilt and re-ranked per slot, so each admission
// decision — promote, peek, remove — is O(1) in queue depth and
// allocation-free in steady state.
func (s *Server) admitScoreboard(sp *engine.Stepper, inflight map[int]*call, agg *aggregate) {
	sc := s.core
	for sc.len() > 0 {
		if s.cfg.MaxBatch > 0 && sp.InFlight() >= s.cfg.MaxBatch {
			break
		}
		sc.promote(sp.Clock())
		c, ok := sc.peek()
		if !ok {
			if sp.InFlight() > 0 {
				break // future arrivals; keep decoding until then
			}
			sp.AdvanceTo(sc.nextArrival()) // idle fast-forward
			continue
		}
		if !sp.CanAdmitRequest(c.req) {
			s.makeRoomScoreboard(sp, c, inflight, agg)
			if !sp.CanAdmitRequest(c.req) {
				if sp.InFlight() > 0 {
					break // capacity frees up as sequences finish
				}
				// Same defensive guard as the linear path: admission
				// must make progress even if Submit's whole-plan check
				// and CanAdmit drift apart.
				agg.failed++
				c.finish(Result{Err: fmt.Errorf("%w: %d+%d tokens vs %d-block plan",
					ErrNeverFits, c.req.PromptLen, c.req.OutputLen, s.cfg.Engine.Plan().Blocks)})
				sc.removeEligible(c.req.ID)
				continue
			}
		}
		if err := sp.Admit(c.req); err != nil {
			agg.failed++
			c.finish(Result{Err: err})
			sc.removeEligible(c.req.ID)
			continue
		}
		c.admittedAt = sp.Clock()
		inflight[c.req.ID] = c
		sc.removeEligible(c.req.ID)
		sc.runningAdd(c)
		c.emit(Event{Type: EventAdmitted, SimSeconds: sp.Clock(),
			CachedTokens: sp.CachedTokensOf(c.req.ID)})
	}
}

// makeRoomScoreboard mirrors makeRoom on the core: the victim is the
// running scoreboard's reverse-CLZ pick instead of a full scan over
// the batch. Victims are requeued through the core with their original
// arrival (and hence original rank keys), exactly like the linear
// path's requeue-at-the-back — the policies' fixed tie-breaks make the
// two orders indistinguishable.
func (s *Server) makeRoomScoreboard(sp *engine.Stepper, blocked *call, inflight map[int]*call, agg *aggregate) {
	for !sp.CanAdmitRequest(blocked.req) {
		vid, ok := s.core.victim(blocked.deadline())
		if !ok {
			return
		}
		req, ok := sp.Preempt(vid)
		if !ok {
			return // stale view; unreachable from the loop
		}
		vc := inflight[req.ID]
		delete(inflight, req.ID)
		s.core.runningRemove(req.ID)
		vc.preempts++
		agg.preempted++
		vc.emit(Event{Type: EventPreempted, SimSeconds: sp.Clock()})
		s.core.add(vc)
	}
}

// notePolicyFault records an out-of-contract Policy.Next return:
// counted every time (Stats.PolicyFaults), logged once per server.
func (s *Server) notePolicyFault(pick, eligible int) {
	s.policyFaults.Add(1)
	s.faultLogOnce.Do(func() {
		log.Printf("serve: policy %q returned index %d for %d eligible requests; clamping to 0 (counted in stats as policy_faults)",
			s.cfg.Policy.Name(), pick, eligible)
	})
}

// makeRoom asks the policy for preemption victims until blocked fits
// or the policy declines. Each victim's sequence is evicted from the
// stepper (returning every KV block it held), removed from the running
// set and requeued at the back of the pending queue with its original
// arrival, to be re-admitted — and fully recomputed — later.
func (s *Server) makeRoom(sp *engine.Stepper, pending []*call, blocked *call, inflight map[int]*call, agg *aggregate) []*call {
	for !sp.CanAdmitRequest(blocked.req) {
		running := runningViews(inflight)
		if len(running) == 0 {
			return pending
		}
		v := s.cfg.Policy.Victim(sp.Clock(), s.pendingView(blocked), running)
		if v < 0 || v >= len(running) {
			return pending
		}
		req, ok := sp.Preempt(running[v].ID)
		if !ok {
			return pending // stale view; unreachable from the loop
		}
		vc := inflight[req.ID]
		delete(inflight, req.ID)
		vc.preempts++
		agg.preempted++
		vc.emit(Event{Type: EventPreempted, SimSeconds: sp.Clock()})
		pending = append(pending, vc)
	}
	return pending
}

// pendingView projects a queued call for the policy.
func (s *Server) pendingView(c *call) Pending {
	return Pending{
		ID:        c.req.ID,
		PromptLen: c.req.PromptLen,
		OutputLen: c.req.OutputLen,
		Arrival:   c.req.ArrivalSeconds,
		Class:     c.class,
		Deadline:  c.deadline(),
	}
}

// runningViews projects the in-flight set for victim selection, sorted
// by submission ID so indices are deterministic across map iterations.
func runningViews(inflight map[int]*call) []Running {
	out := make([]Running, 0, len(inflight))
	for _, c := range inflight {
		out = append(out, Running{
			ID:        c.req.ID,
			PromptLen: c.req.PromptLen,
			OutputLen: c.req.OutputLen,
			Arrival:   c.req.ArrivalSeconds,
			Admitted:  c.admittedAt,
			Class:     c.class,
			Deadline:  c.deadline(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// acceptHandoff offers an exported sequence to this replica without
// blocking, mirroring Submit's gating: ErrStopped after Stop,
// ErrQueueFull when the handoff queue is at capacity. Called from a
// prefill replica's scheduler goroutine through the pooled router's
// dispatch ranking.
func (s *Server) acceptHandoff(h *handoff) error {
	s.gate.RLock()
	defer s.gate.RUnlock()
	if s.stopped {
		return ErrStopped
	}
	select {
	case s.handoffCh <- h:
		return nil
	default:
		return ErrQueueFull
	}
}

// dispatchHandoffs exports every sequence that just produced its first
// token and offers it to a decode replica. A successful dispatch
// transfers ownership of the call — the importing replica decodes it to
// completion and delivers the result; this server must not touch the
// call again. A failed dispatch (every decode replica stopped or full)
// falls back to co-located serving by re-importing the export into this
// same stepper, which the prefix trie makes nearly free: the blocks the
// export released are still advertised, so the claim reuses them
// instead of expanding the wire payload.
func (s *Server) dispatchHandoffs(sp *engine.Stepper, prefilled []engine.RequestMetrics, inflight map[int]*call, agg *aggregate) {
	for _, m := range prefilled {
		c := inflight[m.ID]
		if c == nil || c.req.OutputLen <= 1 {
			continue // nothing left to decode elsewhere
		}
		exp, err := sp.ExportSequence(m.ID)
		if err != nil {
			continue // finished during prefill; unreachable for OutputLen > 1
		}
		if s.cfg.Faults.takeDrop(sp.Clock()) {
			// Scripted transfer loss: the export left this replica (the
			// sequence and its blocks are gone from the stepper) and
			// never arrives anywhere. The request is lost exactly like a
			// crash victim's — resurrected by the health router when one
			// is installed, failed to the client otherwise.
			delete(inflight, m.ID)
			if s.core != nil {
				s.core.runningRemove(m.ID)
			}
			agg.handoffDrops++
			agg.lost++
			if s.onDeath != nil {
				s.onDeath(s, []*call{c})
			} else if c.finish(Result{Err: fmt.Errorf("%w: handoff transfer dropped", ErrStopped)}) {
				agg.failed++
			}
			continue
		}
		bytes := exp.CompressedBytes()
		c.handoffs++ // before dispatch: the new owner may finish immediately
		if s.handoffFn(&handoff{exp: exp, c: c}) != nil {
			// Nothing crossed the wire: zero the priced transfer and thaw
			// the sequence back into this stepper.
			c.handoffs--
			agg.handoffFailures++
			exp.TransferSeconds = 0
			if imerr := sp.ImportSequence(exp); imerr != nil {
				// Unreachable: the export's footprint was resident here a
				// moment ago and its reservation was just released.
				delete(inflight, m.ID)
				if s.core != nil {
					s.core.runningRemove(m.ID)
				}
				agg.failed++
				c.finish(Result{Err: imerr})
			}
			continue
		}
		delete(inflight, m.ID)
		if s.core != nil {
			s.core.runningRemove(m.ID)
		}
		agg.handoffs++
		agg.handoffBytes += bytes
	}
}

// importHandoffs lands pending handed-off sequences in the decode
// batch. A handoff whose transfer completes in this replica's virtual
// future waits while the batch keeps decoding (a busy replica never
// stalls on an in-flight transfer; an idle one fast-forwards to it);
// an import that does not fit yet is retried next iteration (capacity
// frees as sequences finish); a duplicate of a sequence already in
// flight is dropped, because the earlier copy is serving the call;
// anything else fails the request.
func (s *Server) importHandoffs(sp *engine.Stepper, hos []*handoff, inflight map[int]*call, agg *aggregate) []*handoff {
	if len(hos) == 0 {
		return hos
	}
	keep := hos[:0]
	for _, h := range hos {
		if h.c.done.Load() {
			continue // late duplicate of an already-delivered request
		}
		if s.cfg.MaxBatch > 0 && sp.InFlight() >= s.cfg.MaxBatch {
			keep = append(keep, h)
			continue
		}
		if ready := h.exp.ExportedAt + h.exp.TransferSeconds; ready > sp.Clock() && sp.InFlight() > 0 {
			// The transfer is still in this replica's virtual future:
			// keep decoding and land the import once the clock catches
			// up, instead of stalling the running batch on a jump to the
			// ready time. Only an idle replica fast-forwards to it.
			keep = append(keep, h)
			continue
		}
		err := sp.ImportSequence(h.exp)
		switch {
		case err == nil:
			inflight[h.exp.Req.ID] = h.c
			if s.core != nil {
				s.core.runningAdd(h.c)
			}
			agg.handoffImports++
			h.c.emit(Event{Type: EventHandoff, SimSeconds: sp.Clock()})
		case errors.Is(err, engine.ErrSequenceInFlight):
			// Duplicate handoff: the import changed nothing; drop it.
		case errors.Is(err, engine.ErrImportNoCapacity) && sp.InFlight() > 0:
			keep = append(keep, h) // retry as the batch thins
		default:
			agg.failed++
			h.c.finish(Result{Err: err})
		}
	}
	// Clear the filtered tail so the backing array does not pin exports.
	for i := len(keep); i < len(hos); i++ {
		hos[i] = nil
	}
	return keep
}

// drainHandoffs empties the handoff channel without blocking.
func (s *Server) drainHandoffs(hos []*handoff) []*handoff {
	for {
		select {
		case h := <-s.handoffCh:
			hos = append(hos, h)
		default:
			return hos
		}
	}
}

// drain empties the submit channel without blocking.
func (s *Server) drain(sp *engine.Stepper, pending []*call) []*call {
	for {
		select {
		case c := <-s.submitCh:
			pending = s.arrive(sp, pending, c)
		default:
			return pending
		}
	}
}

// arrive stamps live submissions with the current virtual clock and
// queues them: into the scoreboard core for built-in policies, or onto
// the pending slice (submission order) for the legacy linear path.
func (s *Server) arrive(sp *engine.Stepper, pending []*call, c *call) []*call {
	if c.req.ArrivalSeconds < 0 {
		// A resurrected call carries a deterministic sim-time backoff
		// (retry count × the router's RetryBackoff): it arrives that far
		// into this replica's virtual future, so retries space out
		// identically on every replay.
		c.req.ArrivalSeconds = sp.Clock() + c.backoff
		c.backoff = 0
	}
	if s.core != nil {
		s.core.add(c)
		return pending
	}
	return append(pending, c)
}

// aggregate accumulates completion statistics inside the loop.
type aggregate struct {
	completed    int64
	failed       int64
	preempted    int64
	ttftSum      float64
	tpotSum      float64
	queueWaitSum float64

	handoffs        int64
	handoffBytes    int64
	handoffFailures int64
	handoffImports  int64

	lost         int64 // requests lost mid-loop (dropped handoffs)
	handoffDrops int64 // scripted transfer losses
}

func (a *aggregate) complete(m engine.RequestMetrics) {
	a.completed++
	a.ttftSum += m.TTFT
	a.tpotSum += m.TPOT
	a.queueWaitSum += m.Admitted - m.Arrival
}

// publish copies a stats snapshot for concurrent readers.
func (s *Server) publish(sp *engine.Stepper, queued, active int, agg *aggregate) {
	if s.cfg.Faults.statsStaleAt(sp.Clock()) {
		// Scripted stats staleness: the snapshot stays frozen at its
		// last published value — a router keeps ranking this replica on
		// stale load and a stale prefix digest. Only the digest's age
		// keeps advancing, which is precisely the signal affinity's
		// MaxSummaryAge guard detects.
		s.statsMu.Lock()
		if s.stats.PrefixSummary != nil {
			s.stats.SummaryAgeSeconds = sp.Clock() - s.lastSummaryClock
		}
		s.statsMu.Unlock()
		return
	}
	st := Stats{
		Completed:    agg.completed,
		Failed:       agg.failed,
		Preempted:    agg.preempted,
		PolicyFaults: s.policyFaults.Load(),
		Queued:       queued,
		Active:       active,

		FreeKVBlocks:  sp.FreeBlocks(),
		TotalKVBlocks: s.cfg.Engine.Plan().Blocks,
		Policy:        s.cfg.Policy.Name(),

		Pool:            string(s.cfg.Pool),
		Handoffs:        agg.handoffs,
		HandoffBytes:    agg.handoffBytes,
		HandoffFailures: agg.handoffFailures,
		HandoffImports:  agg.handoffImports,

		LostRequests:   agg.lost,
		HandoffDrops:   agg.handoffDrops,
		CodecFallbacks: sp.CodecFallbacks(),

		SimSeconds:      sp.Clock(),
		OutputTokens:    sp.OutputTokens(),
		DecodeSteps:     sp.DecodeSteps(),
		PeakConcurrency: sp.PeakConcurrency(),

		PrefillChunkTokens: s.cfg.PrefillChunkTokens,
		PrefillIterations:  sp.PrefillIterations(),
		PrefillTokens:      sp.PrefillTokens(),
		MaxDecodeGap:       sp.MaxDecodeGap(),

		PrefixCacheEnabled: sp.PrefixCacheEnabled(),
		PrefixHits:         sp.PrefixHits(),
		PrefixTokensSaved:  sp.PrefixTokensSaved(),
		CachedKVBlocks:     sp.CachedKVBlocks(),
		SharedKVBlocks:     sp.SharedKVBlocks(),

		CompressedCacheEnabled: sp.CompressedCacheEnabled(),
		CompressedKVBlocks:     sp.CompressedKVBlocks(),
		CompressedKVBytes:      sp.CompressedKVBytes(),
		KVCompressionRatio:     sp.KVCompressionRatio(),
		DecompressClaims:       sp.DecompressClaims(),

		AdaptiveChunking:    sp.AdaptiveChunking(),
		ChunkBudget:         sp.ChunkBudget(),
		ChunkBudgetMin:      sp.ChunkBudget(),
		ChunkBudgetMax:      sp.ChunkBudget(),
		TargetStepTime:      sp.TargetStepTime(),
		StepTimeEWMA:        sp.StepTimeEWMA(),
		AdaptivePrefixCache: sp.AdaptivePrefixCache(),
		CachePoolTarget:     sp.CachePoolTarget(),
		CacheHitRateEWMA:    sp.CacheHitRateEWMA(),
		CachePressureEWMA:   sp.CachePressureEWMA(),
	}
	// Publish the prefix-trie digest on the admission-epoch cadence
	// (publish runs right after AdaptEpoch closes the epoch). The digest
	// is memoized per trie generation, so an unchanged trie republishes
	// the same immutable pointer for free; its age is virtual time since
	// the advertised content last changed.
	if sum := sp.PrefixSummary(); sum != nil {
		if sum.Epoch != s.lastSummaryEpoch {
			s.lastSummaryEpoch = sum.Epoch
			s.lastSummaryClock = sp.Clock()
		}
		st.PrefixSummary = sum
		st.SummaryAgeSeconds = sp.Clock() - s.lastSummaryClock
	}
	if agg.completed > 0 {
		st.MeanTTFT = agg.ttftSum / float64(agg.completed)
		st.MeanTPOT = agg.tpotSum / float64(agg.completed)
		st.MeanQueueWait = agg.queueWaitSum / float64(agg.completed)
	}
	s.statsMu.Lock()
	s.stats = st
	s.statsMu.Unlock()
}

// noteCompletions stamps n wall-clock completions into the recent
// window behind the RecentDrainRPS estimate.
func (s *Server) noteCompletions(n int) {
	now := time.Now()
	s.statsMu.Lock()
	for i := 0; i < n; i++ {
		s.recent = append(s.recent, now)
	}
	s.pruneRecentLocked(now)
	s.statsMu.Unlock()
}

// pruneRecentLocked drops completion stamps outside drainWindow and
// bounds the window length. Callers hold statsMu.
func (s *Server) pruneRecentLocked(now time.Time) {
	cutoff := now.Add(-drainWindow)
	i := 0
	for i < len(s.recent) && s.recent[i].Before(cutoff) {
		i++
	}
	if over := len(s.recent) - i - maxRecent; over > 0 {
		i += over
	}
	if i > 0 {
		s.recent = append(s.recent[:0], s.recent[i:]...)
	}
}

// failAll terminates every queued, handed-off and in-flight request
// with err, and folds the failures it delivered into the published
// snapshot — the loop is exiting, so no later publish will ever count
// them, and without this a halted server would report failed=0 while
// every caller holds an error.
func (s *Server) failAll(pending []*call, hos []*handoff, inflight map[int]*call, err error) {
	s.gate.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.stop)
	}
	s.gate.Unlock()
	var failed int64
	fail := func(c *call) {
		if c.finish(Result{Err: err}) {
			failed++ // delivered here, not a duplicate someone else finished
		}
	}
	for {
		select {
		case c := <-s.submitCh:
			pending = append(pending, c)
		case h := <-s.handoffCh:
			hos = append(hos, h)
		default:
			for _, c := range pending {
				fail(c)
			}
			if s.core != nil {
				s.core.drainAll(fail)
			}
			for _, h := range hos {
				fail(h.c)
			}
			for _, c := range inflight {
				fail(c)
			}
			s.statsMu.Lock()
			s.stats.Failed += failed
			s.statsMu.Unlock()
			return
		}
	}
}

// crash is a scripted replica death (FaultCrash): the gate closes so
// new submissions fail with ErrStopped, and every request this replica
// held — queued, handed off to it, or mid-generation — is lost,
// counted in Stats.LostRequests, and either handed to the health
// router's resurrection hook or failed to the client. The scheduler
// goroutine exits afterwards; a later Stop returns immediately.
func (s *Server) crash(pending []*call, hos []*handoff, inflight map[int]*call) {
	s.die(pending, hos, inflight, fmt.Errorf("%w: replica crashed", ErrStopped))
}

// hang is a scripted livelock (FaultHang): the scheduler stops making
// progress but the replica stays up — submissions keep landing until
// the queue fills, nothing completes, stats freeze. The stranded
// requests are lost (resurrected or failed) only when the replica is
// stopped, exactly like a real wedged process.
func (s *Server) hang(pending []*call, hos []*handoff, inflight map[int]*call) {
	select {
	case <-s.stop:
	case <-s.kill:
	}
	s.die(pending, hos, inflight, fmt.Errorf("%w: replica hung", ErrStopped))
}

// die closes the gate, collects every request the replica still holds
// into a deterministic lost set, counts it into Stats.LostRequests and
// routes it through loseCalls.
func (s *Server) die(pending []*call, hos []*handoff, inflight map[int]*call, reason error) {
	s.gate.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.stop)
	}
	s.gate.Unlock()
	// Everything buffered raced past the gate before it closed; it
	// goes down with the replica too.
	for {
		select {
		case c := <-s.submitCh:
			pending = append(pending, c)
			continue
		case h := <-s.handoffCh:
			hos = append(hos, h)
			continue
		default:
		}
		break
	}
	lost := make([]*call, 0, len(pending)+len(inflight)+len(hos))
	collect := func(c *call) {
		if !c.done.Load() {
			lost = append(lost, c)
		}
	}
	for _, c := range pending {
		collect(c)
	}
	if s.core != nil {
		s.core.drainAll(collect)
	}
	for _, h := range hos {
		collect(h.c)
	}
	for _, c := range inflight {
		collect(c)
	}
	// Map iteration above is randomised; resurrection re-dispatches in
	// this order, so sort by scheduler id to keep chaos replays
	// bit-identical.
	sort.Slice(lost, func(i, j int) bool { return lost[i].req.ID < lost[j].req.ID })
	s.statsMu.Lock()
	s.stats.LostRequests += int64(len(lost))
	s.statsMu.Unlock()
	s.loseCalls(lost, reason)
}

// loseCalls routes requests a dying replica cannot serve: to the
// health router's resurrection hook when installed, to the client as
// failures otherwise. Failures delivered here fold straight into the
// published snapshot — the loop is exiting, no publish will follow.
func (s *Server) loseCalls(lost []*call, err error) {
	if len(lost) == 0 {
		return
	}
	if s.onDeath != nil {
		s.onDeath(s, lost)
		return
	}
	var failed int64
	for _, c := range lost {
		if c.finish(Result{Err: err}) {
			failed++
		}
	}
	s.statsMu.Lock()
	s.stats.Failed += failed
	s.statsMu.Unlock()
}

// resubmit re-enqueues a request another replica lost: resurrection's
// entry point, called by the health router. A fresh scheduler id is
// minted from the (fleet-shared) counter so a late duplicate delivery
// from the old owner stays harmless, and the arrival restamps at this
// replica's live clock plus the call's deterministic backoff.
func (s *Server) resubmit(c *call) error {
	s.gate.RLock()
	defer s.gate.RUnlock()
	if s.stopped {
		return ErrStopped
	}
	c.req.ID = int(s.ids.Add(1))
	c.req.ArrivalSeconds = ArrivalNow
	select {
	case s.submitCh <- c:
		s.submitted.Add(1)
		return nil
	default:
		return ErrQueueFull
	}
}
