package serve

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Deterministic fault injection (docs/robustness.md): a FaultPlan is a
// small, parseable script of failures addressed to replicas by fleet
// index and triggered by each replica's own virtual clock — never by
// wall time, goroutine scheduling or randomness at injection time — so
// a chaos run replays bit-identically: the same plan against the same
// workload always kills the same requests at the same virtual instant.
// The plan feeds per-replica runtime state (ReplicaFaults, attached via
// Config.Faults) that the scheduler loop and the engine.Stepper consult
// as pure functions of virtual time.
//
// Six fault kinds cover the failure surface the fleet routes around:
//
//	crash       — the replica dies at virtual time T: the loop exits,
//	              new submissions fail with ErrStopped, and every
//	              queued or in-flight request is lost (handed to the
//	              router's resurrection hook when health-aware routing
//	              is on, failed otherwise).
//	hang        — the replica stops making progress at T but keeps
//	              accepting submissions until its queue fills; its
//	              stranded requests fail only when it is stopped.
//	slow        — step-time slowdown: every virtual step duration is
//	              multiplied by Factor from T (optionally for a window),
//	              modelling thermal throttling or a noisy neighbour.
//	codecfail   — the KV codec starts rejecting content at T: cold
//	              prefix blocks degrade to plain physical parking
//	              instead of freezing compressed (counted in
//	              Stats.CodecFallbacks; see docs/compressed-kv.md).
//	drophandoff — the next prefill→decode handoff dispatched at or
//	              after T vanishes in transfer: the source has released
//	              ownership, nothing arrives (one event per directive;
//	              lost requests resurrect or fail like a crash's).
//	stalestats  — the replica's published stats snapshot freezes for a
//	              window: routers rank it on stale load and a stale
//	              prefix digest, the degradation affinity's
//	              MaxSummaryAge guard exists for.

// FaultKind names one injectable fault type in a FaultPlan.
type FaultKind string

// The six fault kinds of the plan DSL.
const (
	FaultCrash       FaultKind = "crash"
	FaultHang        FaultKind = "hang"
	FaultSlow        FaultKind = "slow"
	FaultCodecFail   FaultKind = "codecfail"
	FaultDropHandoff FaultKind = "drophandoff"
	FaultStaleStats  FaultKind = "stalestats"
)

// FaultEvent is one scripted failure: Kind happening to replica index
// Replica at virtual time At (seconds on that replica's clock). Factor
// is the step-time multiplier (FaultSlow only, > 0; values > 1 slow the
// replica down). For bounds windowed faults (FaultSlow, FaultCodecFail,
// FaultStaleStats) to [At, At+For); 0 means until shutdown.
type FaultEvent struct {
	Kind    FaultKind
	Replica int
	At      float64
	Factor  float64
	For     float64
}

// FaultPlan is a deterministic fault-injection script: an optional
// generation seed (echoed for provenance; see RandomFaultPlan) and the
// scripted events. Parse one with ParseFaultPlan; String re-serialises
// canonically, and ParseFaultPlan(p.String()) always round-trips to an
// identical plan (FuzzFaultPlan pins this).
type FaultPlan struct {
	Seed   int64
	Events []FaultEvent
}

// faultFields describes which optional keys each kind accepts; replica
// and at are accepted by every kind (at defaults to 0).
var faultFields = map[FaultKind]struct{ factor, window bool }{
	FaultCrash:       {},
	FaultHang:        {},
	FaultSlow:        {factor: true, window: true},
	FaultCodecFail:   {window: true},
	FaultDropHandoff: {},
	FaultStaleStats:  {window: true},
}

// ParseFaultPlan parses the fault-plan DSL: one directive per line,
// `#` comments and blank lines ignored, an optional `seed N` header,
// then events of the form
//
//	crash replica=1 at=0.5
//	slow replica=0 at=0 factor=8 for=2.5
//	hang replica=2 at=1
//	codecfail replica=1 at=2
//	drophandoff replica=0 at=1.5
//	stalestats replica=1 at=1 for=2
//
// Keys may appear in any order but at most once; times and durations
// are finite non-negative seconds, factor a finite positive multiplier
// valid only on slow. Unknown kinds and keys are errors, not warnings —
// a chaos scenario that silently drops a directive proves nothing.
func ParseFaultPlan(text string) (*FaultPlan, error) {
	plan := &FaultPlan{}
	seenSeed := false
	for ln, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "seed" {
			if seenSeed {
				return nil, fmt.Errorf("serve: fault plan line %d: duplicate seed", ln+1)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("serve: fault plan line %d: want `seed N`", ln+1)
			}
			n, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("serve: fault plan line %d: bad seed %q", ln+1, fields[1])
			}
			plan.Seed = n
			seenSeed = true
			continue
		}
		kind := FaultKind(fields[0])
		spec, ok := faultFields[kind]
		if !ok {
			return nil, fmt.Errorf("serve: fault plan line %d: unknown fault kind %q", ln+1, fields[0])
		}
		ev := FaultEvent{Kind: kind, Replica: -1}
		seen := map[string]bool{}
		for _, kv := range fields[1:] {
			key, val, found := strings.Cut(kv, "=")
			if !found {
				return nil, fmt.Errorf("serve: fault plan line %d: want key=value, got %q", ln+1, kv)
			}
			if seen[key] {
				return nil, fmt.Errorf("serve: fault plan line %d: duplicate key %q", ln+1, key)
			}
			seen[key] = true
			switch key {
			case "replica":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("serve: fault plan line %d: replica must be a non-negative index, got %q", ln+1, val)
				}
				ev.Replica = n
			case "at":
				f, err := parsePlanSeconds(val)
				if err != nil {
					return nil, fmt.Errorf("serve: fault plan line %d: at: %v", ln+1, err)
				}
				ev.At = f
			case "factor":
				if !spec.factor {
					return nil, fmt.Errorf("serve: fault plan line %d: factor is only valid on slow", ln+1)
				}
				f, err := parsePlanSeconds(val)
				if err != nil || f <= 0 {
					return nil, fmt.Errorf("serve: fault plan line %d: factor must be a finite positive multiplier, got %q", ln+1, val)
				}
				ev.Factor = f
			case "for":
				if !spec.window {
					return nil, fmt.Errorf("serve: fault plan line %d: for is not valid on %s", ln+1, kind)
				}
				f, err := parsePlanSeconds(val)
				if err != nil {
					return nil, fmt.Errorf("serve: fault plan line %d: for: %v", ln+1, err)
				}
				ev.For = f
			default:
				return nil, fmt.Errorf("serve: fault plan line %d: unknown key %q", ln+1, key)
			}
		}
		if ev.Replica < 0 {
			return nil, fmt.Errorf("serve: fault plan line %d: %s needs replica=<index>", ln+1, kind)
		}
		if spec.factor && ev.Factor == 0 {
			return nil, fmt.Errorf("serve: fault plan line %d: slow needs factor=<multiplier>", ln+1)
		}
		plan.Events = append(plan.Events, ev)
	}
	return plan, nil
}

// parsePlanSeconds parses a finite, non-negative plan scalar.
func parsePlanSeconds(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
		return 0, fmt.Errorf("must be finite and >= 0, got %q", s)
	}
	return f, nil
}

// String serialises the plan canonically — the exact form ParseFaultPlan
// round-trips. Events keep their plan order; optional fields are
// emitted only when set, floats in shortest-exact form.
func (p *FaultPlan) String() string {
	var b strings.Builder
	if p.Seed != 0 {
		fmt.Fprintf(&b, "seed %d\n", p.Seed)
	}
	for _, ev := range p.Events {
		b.WriteString(string(ev.Kind))
		fmt.Fprintf(&b, " replica=%d at=%s", ev.Replica, planFloat(ev.At))
		if ev.Factor != 0 {
			fmt.Fprintf(&b, " factor=%s", planFloat(ev.Factor))
		}
		if ev.For != 0 {
			fmt.Fprintf(&b, " for=%s", planFloat(ev.For))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func planFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// MaxReplica returns the highest replica index any event addresses
// (-1 for an empty plan) — the fleet-size sanity check for callers.
func (p *FaultPlan) MaxReplica() int {
	max := -1
	for _, ev := range p.Events {
		if ev.Replica > max {
			max = ev.Replica
		}
	}
	return max
}

// RandomFaultPlan generates a deterministic chaos plan from a seed: for
// each of n replicas an xorshift64 stream seeded on (seed, replica)
// draws at most one fault, uniformly over the kinds, with trigger times
// inside [0, horizon). The same (seed, n, horizon) always yields the
// same plan — seeded chaos without an RNG at injection time.
func RandomFaultPlan(seed int64, n int, horizon float64) *FaultPlan {
	if n <= 0 || horizon <= 0 {
		return &FaultPlan{Seed: seed}
	}
	kinds := []FaultKind{FaultCrash, FaultHang, FaultSlow, FaultCodecFail, FaultDropHandoff, FaultStaleStats}
	plan := &FaultPlan{Seed: seed}
	for r := 0; r < n; r++ {
		x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(r+1)*0xbf58476d1ce4e5b9
		next := func() uint64 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return x
		}
		if next()%4 == 0 {
			continue // a quarter of the fleet stays healthy
		}
		kind := kinds[next()%uint64(len(kinds))]
		// Quantise times to milliseconds so the emitted plan stays
		// human-readable.
		at := math.Floor(float64(next()%1000)/1000*horizon*1e3) / 1e3
		ev := FaultEvent{Kind: kind, Replica: r, At: at}
		if kind == FaultSlow {
			ev.Factor = float64(2 + next()%7)
		}
		if faultFields[kind].window && next()%2 == 0 {
			ev.For = math.Floor(float64(1+next()%1000)/1000*horizon*1e3) / 1e3
		}
		plan.Events = append(plan.Events, ev)
	}
	return plan
}

// faultWindow is one active interval of a windowed fault.
type faultWindow struct {
	from, until float64 // until = +Inf for an unbounded window
	factor      float64 // slow only
}

// ReplicaFaults is one replica's runtime view of a FaultPlan: the
// events addressed to its index, indexed for O(log n) evaluation as
// pure functions of the replica's virtual clock. Attach one via
// Config.Faults (typically plan.Replica(i) at fleet assembly). All
// query methods are nil-safe — a fault-free replica carries nil.
//
// Injection state that must be consumed exactly once (the drophandoff
// trigger) is mutated only by the owning scheduler goroutine, so a
// ReplicaFaults must not be shared between servers.
type ReplicaFaults struct {
	crashAt float64 // +Inf = never
	hangAt  float64
	slows   []faultWindow // sorted by from
	codec   []faultWindow
	stale   []faultWindow
	drops   []float64 // drophandoff trigger times, sorted
	taken   int       // drops consumed (scheduler goroutine only)
}

// Replica projects the plan onto one fleet index, returning nil when no
// event addresses it (the no-fault fast path: Config.Faults stays nil).
func (p *FaultPlan) Replica(i int) *ReplicaFaults {
	if p == nil {
		return nil
	}
	f := &ReplicaFaults{crashAt: math.Inf(1), hangAt: math.Inf(1)}
	any := false
	for _, ev := range p.Events {
		if ev.Replica != i {
			continue
		}
		any = true
		until := math.Inf(1)
		if ev.For > 0 {
			until = ev.At + ev.For
		}
		switch ev.Kind {
		case FaultCrash:
			if ev.At < f.crashAt {
				f.crashAt = ev.At
			}
		case FaultHang:
			if ev.At < f.hangAt {
				f.hangAt = ev.At
			}
		case FaultSlow:
			f.slows = append(f.slows, faultWindow{from: ev.At, until: until, factor: ev.Factor})
		case FaultCodecFail:
			f.codec = append(f.codec, faultWindow{from: ev.At, until: until})
		case FaultStaleStats:
			f.stale = append(f.stale, faultWindow{from: ev.At, until: until})
		case FaultDropHandoff:
			f.drops = append(f.drops, ev.At)
		}
	}
	if !any {
		return nil
	}
	for _, ws := range [][]faultWindow{f.slows, f.codec, f.stale} {
		sort.Slice(ws, func(a, b int) bool { return ws[a].from < ws[b].from })
	}
	sort.Float64s(f.drops)
	return f
}

// crashedAt reports whether the replica's scripted crash time has been
// reached at virtual time now.
func (f *ReplicaFaults) crashedAt(now float64) bool {
	return f != nil && now >= f.crashAt
}

// hungAt reports whether the replica's scripted hang time has been
// reached.
func (f *ReplicaFaults) hungAt(now float64) bool {
	return f != nil && now >= f.hangAt
}

// slowFactorAt returns the step-time multiplier active at virtual time
// now (1 when no slow window covers it; overlapping windows multiply).
func (f *ReplicaFaults) slowFactorAt(now float64) float64 {
	if f == nil {
		return 1
	}
	factor := 1.0
	for _, w := range f.slows {
		if w.from > now {
			break
		}
		if now < w.until {
			factor *= w.factor
		}
	}
	return factor
}

// codecFailingAt reports whether the KV codec is scripted to reject
// content at virtual time now.
func (f *ReplicaFaults) codecFailingAt(now float64) bool {
	return f.windowActive(now, func() []faultWindow { return f.codec })
}

// statsStaleAt reports whether the replica's published stats snapshot
// is scripted frozen at virtual time now.
func (f *ReplicaFaults) statsStaleAt(now float64) bool {
	return f.windowActive(now, func() []faultWindow { return f.stale })
}

func (f *ReplicaFaults) windowActive(now float64, ws func() []faultWindow) bool {
	if f == nil {
		return false
	}
	for _, w := range ws() {
		if w.from > now {
			return false
		}
		if now < w.until {
			return true
		}
	}
	return false
}

// takeDrop consumes one due drophandoff trigger: it returns true when a
// scripted drop time <= now has not yet been taken. Scheduler goroutine
// only.
func (f *ReplicaFaults) takeDrop(now float64) bool {
	if f == nil || f.taken >= len(f.drops) || f.drops[f.taken] > now {
		return false
	}
	f.taken++
	return true
}

// active reports whether the replica has any scripted fault at all.
func (f *ReplicaFaults) active() bool { return f != nil }
