package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"zipserv/internal/kvcache"
)

// Backend is the serving surface the HTTP layer binds to: one live
// scheduler (*Server) or a sharded fleet of them (*Router). Submit,
// Stats and Stop follow the Server semantics; Start is idempotent.
type Backend interface {
	// Start launches the backend's scheduler goroutine(s).
	Start()
	// Submit offers a request without blocking (ErrQueueFull,
	// ErrStopped, ErrNeverFits on failure).
	Submit(Request) (*Ticket, error)
	// Stats returns an aggregate snapshot, safe for concurrent use.
	Stats() Stats
	// Stop drains gracefully: everything admitted is served, new
	// submissions fail with ErrStopped.
	Stop(context.Context) error
}

// Router shards traffic across N replica backends with capacity-aware
// dispatch: each Submit ranks the replicas least-loaded-first by their
// Stats snapshot — fewest queued+active requests, then most free KV
// blocks — and fails over down the ranking when a replica's queue is
// full or it has stopped, so draining one replica reroutes traffic
// without failed requests. A Router is itself a Backend, so deployments
// nest (e.g. a router over per-node routers over per-GPU servers).
type Router struct {
	replicas []Backend

	// Pooled dispatch tiers (NewPooledRouter). When submitTier is set,
	// requests are offered to it first (prefill + mixed replicas) and
	// spill to fallbackTier (decode replicas, serving co-located) only
	// when every preferred replica rejects — the prefill-death failover.
	// A plain NewRouter leaves both nil and dispatches over replicas.
	submitTier   []Backend
	fallbackTier []Backend

	// Router-level admission outcomes. Failover probes bump the
	// replicas' own rejected counters even when the request lands
	// elsewhere, so the fleet aggregate reports these instead: what
	// clients actually observed.
	submitted atomic.Int64
	rejected  atomic.Int64

	// Prefix-affinity dispatch (affinity.go; nil = least-loaded only).
	// Hits count requests landing on the replica with the best estimated
	// prefix overlap; spills count requests that wanted a replica but
	// routed elsewhere (load band, free-block floor, or failover).
	affinity       *AffinityConfig
	affinityHits   atomic.Int64
	affinitySpills atomic.Int64
	// staleDigest counts dispatches where at least one candidate's
	// prefix digest was older than the affinity MaxSummaryAge bound and
	// was ignored — affinity degraded to least-loaded for it.
	staleDigest atomic.Int64

	// Health-aware routing (health.go; nil = every replica always
	// eligible). healthMap is assembled once by EnableHealth and
	// read-only afterwards; per-replica state lives behind each entry's
	// own mutex.
	health         *HealthConfig
	healthMap      map[Backend]*replicaHealth
	ejections      atomic.Int64
	healthProbes   atomic.Int64
	reinstatements atomic.Int64
	resurrections  atomic.Int64
	retryExhausted atomic.Int64
}

var _ Backend = (*Router)(nil)

// NewRouter builds a router over the given replicas (at least one).
// The replicas are typically *Server instances over per-GPU or
// per-node engines; the router does not start or own their engines.
func NewRouter(replicas ...Backend) (*Router, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("serve: router needs at least one replica")
	}
	for i, b := range replicas {
		if b == nil {
			return nil, fmt.Errorf("serve: router replica %d is nil", i)
		}
	}
	return &Router{replicas: append([]Backend(nil), replicas...)}, nil
}

// Replicas returns the number of replicas behind the router.
func (r *Router) Replicas() int { return len(r.replicas) }

// Start launches every replica.
func (r *Router) Start() {
	for _, b := range r.replicas {
		b.Start()
	}
}

// Submit dispatches the request to the least-loaded replica — or, with
// EnableAffinity, to the in-band replica with the best estimated
// prefix overlap (affinity.go) — failing over in ranking order. The
// returned error is the most retryable one observed: a full queue (the
// caller should back off and retry) wins over a stopped replica;
// ErrNeverFits is returned only when no running replica could ever
// admit the request.
func (r *Router) Submit(req Request) (*Ticket, error) {
	var queueFull, neverFits, lastErr error
	for _, tier := range r.tiers() {
		ranked, preferred, probes := r.healthRank(tier, req)
		for i, b := range ranked {
			tk, err := b.Submit(req)
			if err == nil {
				// Any due probe this dispatch never reached stays due:
				// release its trial flag before returning.
				for j := i + 1; j < len(probes); j++ {
					r.releaseProbe(probes[j])
				}
				r.submitted.Add(1)
				r.noteDispatch(b, preferred)
				r.noteSubmitOK(b)
				return tk, nil
			}
			r.noteSubmitErr(b, err)
			switch {
			case errors.Is(err, ErrQueueFull):
				queueFull = err
			case errors.Is(err, ErrNeverFits):
				neverFits = err
			default:
				lastErr = err
			}
		}
	}
	// Every failure return below is a client-visible submit failure the
	// fleet's per-replica counters cannot see (failover probes bump the
	// replicas' own rejected counts even when a request lands), so each
	// one counts here — not just the queue-full fast path.
	r.rejected.Add(1)
	if queueFull != nil {
		return nil, queueFull
	}
	if neverFits != nil {
		return nil, neverFits
	}
	if lastErr == nil {
		lastErr = ErrStopped // empty dispatch tiers: nothing was tried
	}
	return nil, lastErr
}

// tiers returns the dispatch tiers in preference order: the flat
// replica set for a plain router, or the pooled submit tier followed by
// the decode-replica fallback.
func (r *Router) tiers() [][]Backend {
	if len(r.submitTier) == 0 {
		return [][]Backend{r.replicas}
	}
	return [][]Backend{r.submitTier, r.fallbackTier}
}

// rankByLoad orders backends least-loaded first by their Stats
// snapshots: fewest queued+active requests, then most free KV blocks.
func rankByLoad(backends []Backend) []Backend {
	type candidate struct {
		b    Backend
		load int
		free int
	}
	cands := make([]candidate, 0, len(backends))
	for _, b := range backends {
		st := b.Stats()
		cands = append(cands, candidate{b: b, load: st.Queued + st.Active, free: st.FreeKVBlocks})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].load != cands[j].load {
			return cands[i].load < cands[j].load
		}
		return cands[i].free > cands[j].free
	})
	out := make([]Backend, len(cands))
	for i, c := range cands {
		out[i] = c.b
	}
	return out
}

// Stats returns the fleet-wide aggregate: counters, queue depths and
// KV headroom summed across replicas, SimSeconds the slowest replica's
// clock, rates recomputed against it, and latency means weighted by
// each replica's completions. PeakConcurrency sums the per-replica
// peaks (an upper bound: replica clocks are independent). Submitted
// and Rejected are counted at the router, not summed: a failover probe
// into a full replica is not a client-visible rejection.
func (r *Router) Stats() Stats {
	agg, _ := r.Snapshot()
	return agg
}

// Snapshot returns the fleet aggregate and the per-replica breakdown
// computed from one pass over the replicas, so the breakdown always
// sums to the aggregate it is served alongside.
func (r *Router) Snapshot() (Stats, []Stats) {
	per := r.ReplicaStats()
	agg := aggregateStats(per)
	agg.Submitted = r.submitted.Load()
	agg.Rejected = r.rejected.Load()
	// Affinity outcomes are decided here, at the dispatching router —
	// replicas always report 0 — but nested routers decide their own, so
	// this level's counters add to the aggregate instead of replacing it.
	agg.PrefixAffinityHits += r.affinityHits.Load()
	agg.AffinitySpills += r.affinitySpills.Load()
	agg.StaleDigestRoutes += r.staleDigest.Load()
	if r.health != nil {
		// Health outcomes follow the same rule: this router's breaker
		// counters and census add to whatever nested health routers
		// already reported. Resurrections abandoned at this router
		// (budget exhausted, nowhere to go) were delivered as failures
		// here, so they fold into the fleet's Failed — no replica's own
		// snapshot ever counted them.
		agg.HealthEnabled = true
		agg.Ejections += r.ejections.Load()
		agg.HealthProbes += r.healthProbes.Load()
		agg.Reinstatements += r.reinstatements.Load()
		agg.Resurrections += r.resurrections.Load()
		exhausted := r.retryExhausted.Load()
		agg.RetryExhausted += exhausted
		agg.Failed += exhausted
		for i := range r.replicas {
			switch HealthState(per[i].HealthState) {
			case HealthDegraded:
				agg.ReplicasDegraded++
			case HealthEjected, HealthProbing:
				agg.ReplicasEjected++
			default:
				agg.ReplicasHealthy++
			}
		}
	}
	return agg, per
}

// ReplicaStats snapshots every replica, in router order — the
// per-replica breakdown behind a routed /v1/stats. With health-aware
// routing on, each snapshot is annotated with the replica's current
// breaker state.
func (r *Router) ReplicaStats() []Stats {
	out := make([]Stats, len(r.replicas))
	for i, b := range r.replicas {
		out[i] = b.Stats()
		if r.health != nil {
			out[i].HealthState = string(r.healthStateOf(b, &out[i]))
		}
	}
	return out
}

// Stop drains every replica concurrently and joins their errors.
func (r *Router) Stop(ctx context.Context) error {
	errs := make([]error, len(r.replicas))
	var wg sync.WaitGroup
	for i, b := range r.replicas {
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			errs[i] = b.Stop(ctx)
		}(i, b)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// aggregateStats folds per-replica snapshots into one fleet view. Safe
// on an empty slice (all-zero aggregate, no NaNs): a router may be
// asked for stats while its replica set is still being assembled.
func aggregateStats(replicas []Stats) Stats {
	var agg Stats
	var ttft, tpot, wait float64
	var hitEWMA float64
	adaptiveCaches := 0
	var compOrigBytes float64
	var summaries []*kvcache.PrefixSummary
	for i, st := range replicas {
		agg.Submitted += st.Submitted
		agg.Rejected += st.Rejected
		agg.Completed += st.Completed
		agg.Failed += st.Failed
		agg.Preempted += st.Preempted
		agg.PolicyFaults += st.PolicyFaults
		agg.Queued += st.Queued
		agg.Active += st.Active
		agg.FreeKVBlocks += st.FreeKVBlocks
		agg.TotalKVBlocks += st.TotalKVBlocks
		agg.OutputTokens += st.OutputTokens
		agg.DecodeSteps += st.DecodeSteps
		agg.PeakConcurrency += st.PeakConcurrency
		agg.RecentDrainRPS += st.RecentDrainRPS
		agg.PrefillIterations += st.PrefillIterations
		agg.PrefillTokens += st.PrefillTokens
		agg.PrefixCacheEnabled = agg.PrefixCacheEnabled || st.PrefixCacheEnabled
		agg.PrefixHits += st.PrefixHits
		agg.PrefixTokensSaved += st.PrefixTokensSaved
		agg.CachedKVBlocks += st.CachedKVBlocks
		agg.SharedKVBlocks += st.SharedKVBlocks
		// Affinity telemetry: counters sum (nested routers report their
		// own dispatch outcomes; leaf replicas report 0), the trie
		// digests merge below, and the fleet summary age is the oldest
		// replica's — the staleness bound on any overlap estimate made
		// from this aggregate.
		agg.PrefixAffinityHits += st.PrefixAffinityHits
		agg.AffinitySpills += st.AffinitySpills
		if st.PrefixSummary != nil {
			summaries = append(summaries, st.PrefixSummary)
		}
		if st.SummaryAgeSeconds > agg.SummaryAgeSeconds {
			agg.SummaryAgeSeconds = st.SummaryAgeSeconds
		}
		// Compressed-cache counters sum like the capacity they describe;
		// the fleet ratio is reconstructed below from per-replica
		// original footprints (ratio × compressed bytes), so replicas
		// holding more content weigh more.
		agg.CompressedCacheEnabled = agg.CompressedCacheEnabled || st.CompressedCacheEnabled
		agg.CompressedKVBlocks += st.CompressedKVBlocks
		agg.CompressedKVBytes += st.CompressedKVBytes
		agg.DecompressClaims += st.DecompressClaims
		compOrigBytes += st.KVCompressionRatio * float64(st.CompressedKVBytes)
		agg.Handoffs += st.Handoffs
		agg.HandoffBytes += st.HandoffBytes
		agg.HandoffFailures += st.HandoffFailures
		agg.HandoffImports += st.HandoffImports
		// Robustness and health telemetry: counters sum (a dispatching
		// router adds its own breaker/retry outcomes in Snapshot, like
		// affinity; nested routers' aggregates fold through here), the
		// enablement flag ORs, and the census sums nested fleets'
		// counts. HealthState is a per-replica annotation and never
		// aggregates.
		agg.LostRequests += st.LostRequests
		agg.HandoffDrops += st.HandoffDrops
		agg.CodecFallbacks += st.CodecFallbacks
		agg.HealthEnabled = agg.HealthEnabled || st.HealthEnabled
		agg.ReplicasHealthy += st.ReplicasHealthy
		agg.ReplicasDegraded += st.ReplicasDegraded
		agg.ReplicasEjected += st.ReplicasEjected
		agg.Ejections += st.Ejections
		agg.HealthProbes += st.HealthProbes
		agg.Reinstatements += st.Reinstatements
		agg.Resurrections += st.Resurrections
		agg.RetryExhausted += st.RetryExhausted
		agg.StaleDigestRoutes += st.StaleDigestRoutes
		// Worst-replica cadence stall and the largest configured budget
		// (fleets are normally homogeneous; max is the honest summary
		// when they are not).
		if st.MaxDecodeGap > agg.MaxDecodeGap {
			agg.MaxDecodeGap = st.MaxDecodeGap
		}
		if st.PrefillChunkTokens > agg.PrefillChunkTokens {
			agg.PrefillChunkTokens = st.PrefillChunkTokens
		}
		// Adaptive-controller telemetry: the fleet budget spread is the
		// min/max over the replicas' own spreads (nested routers fold
		// correctly), the headline budget and step-time figures are the
		// worst replica's, pool targets sum like the capacity they
		// bound, and the hit-rate EWMA averages the replicas that run
		// the sizing controller.
		agg.AdaptiveChunking = agg.AdaptiveChunking || st.AdaptiveChunking
		agg.AdaptivePrefixCache = agg.AdaptivePrefixCache || st.AdaptivePrefixCache
		// The fleet's tightest budget is the min over replicas that have
		// one: a monolithic replica's 0 means "no per-iteration bound",
		// not "bound of zero", so folding it in would report the loosest
		// replica as the tightest. 0 survives only on an all-monolithic
		// fleet.
		if st.ChunkBudgetMin > 0 && (agg.ChunkBudgetMin == 0 || st.ChunkBudgetMin < agg.ChunkBudgetMin) {
			agg.ChunkBudgetMin = st.ChunkBudgetMin
		}
		if st.ChunkBudgetMax > agg.ChunkBudgetMax {
			agg.ChunkBudgetMax = st.ChunkBudgetMax
		}
		if st.ChunkBudget > agg.ChunkBudget {
			agg.ChunkBudget = st.ChunkBudget
		}
		if st.TargetStepTime > agg.TargetStepTime {
			agg.TargetStepTime = st.TargetStepTime
		}
		if st.StepTimeEWMA > agg.StepTimeEWMA {
			agg.StepTimeEWMA = st.StepTimeEWMA
		}
		if st.CachePressureEWMA > agg.CachePressureEWMA {
			agg.CachePressureEWMA = st.CachePressureEWMA
		}
		agg.CachePoolTarget += st.CachePoolTarget
		if st.AdaptivePrefixCache {
			hitEWMA += st.CacheHitRateEWMA
			adaptiveCaches++
		}
		if st.SimSeconds > agg.SimSeconds {
			agg.SimSeconds = st.SimSeconds
		}
		if st.WallSeconds > agg.WallSeconds {
			agg.WallSeconds = st.WallSeconds
		}
		if i == 0 {
			agg.Policy = st.Policy
			agg.Pool = st.Pool
		} else {
			if agg.Policy != st.Policy {
				agg.Policy = "mixed"
			}
			if agg.Pool != st.Pool {
				agg.Pool = string(PoolMixed)
			}
		}
		ttft += st.MeanTTFT * float64(st.Completed)
		tpot += st.MeanTPOT * float64(st.Completed)
		wait += st.MeanQueueWait * float64(st.Completed)
	}
	if agg.Completed > 0 {
		agg.MeanTTFT = ttft / float64(agg.Completed)
		agg.MeanTPOT = tpot / float64(agg.Completed)
		agg.MeanQueueWait = wait / float64(agg.Completed)
	}
	if adaptiveCaches > 0 {
		agg.CacheHitRateEWMA = hitEWMA / float64(adaptiveCaches)
	}
	if agg.CompressedKVBytes > 0 {
		agg.KVCompressionRatio = compOrigBytes / float64(agg.CompressedKVBytes)
	} else if agg.CompressedCacheEnabled {
		agg.KVCompressionRatio = 1.0 // enabled fleet, nothing frozen yet
	}
	agg.PrefixSummary = kvcache.MergePrefixSummaries(summaries)
	if agg.SimSeconds > 0 {
		agg.Goodput = float64(agg.Completed) / agg.SimSeconds
		agg.Throughput = float64(agg.OutputTokens) / agg.SimSeconds
	}
	return agg
}
