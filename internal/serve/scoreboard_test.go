package serve

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"zipserv/internal/engine"
)

// linearOnly hides a built-in policy's concrete type from the server's
// scoreboard detection (newSchedCore type-switch), forcing the legacy
// linear-scan admission path with unchanged policy semantics — the
// reference side of every differential test in this file.
type linearOnly struct{ Policy }

// --- bitset / key-transform properties -------------------------------

func TestBitset4096MinMax(t *testing.T) {
	var b bitset4096
	if b.min() != -1 || b.max() != -1 {
		t.Fatalf("empty bitset min/max = %d/%d, want -1/-1", b.min(), b.max())
	}
	rng := rand.New(rand.NewSource(1))
	ref := map[int]bool{}
	for step := 0; step < 20000; step++ {
		i := rng.Intn(sbBuckets)
		if rng.Intn(2) == 0 {
			b.set(i)
			ref[i] = true
		} else {
			b.clear(i)
			delete(ref, i)
		}
		wantMin, wantMax := -1, -1
		for k := range ref {
			if wantMin < 0 || k < wantMin {
				wantMin = k
			}
			if k > wantMax {
				wantMax = k
			}
		}
		if b.min() != wantMin || b.max() != wantMax {
			t.Fatalf("step %d: min/max = %d/%d, want %d/%d", step, b.min(), b.max(), wantMin, wantMax)
		}
	}
}

func TestFloatOrdMonotone(t *testing.T) {
	// A sorted gauntlet across the float range, ±Inf included: the
	// transform must be strictly monotone and the bucket quantisation
	// weakly monotone, or bucket boundaries could reorder two keys.
	vals := []float64{math.Inf(-1), -1e308, -12345.678, -1, -1e-300, math.Copysign(0, -1),
		0, 1e-300, 0.5, 1, 12345.678, 1e308, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		a, b := vals[i-1], vals[i]
		if a == b { // ±0 compare equal; their buckets need not order
			continue
		}
		if floatOrd(a) >= floatOrd(b) {
			t.Errorf("floatOrd not monotone at %g < %g: %#x >= %#x", a, b, floatOrd(a), floatOrd(b))
		}
		if bucketOf(a) > bucketOf(b) {
			t.Errorf("bucketOf not monotone at %g < %g: %d > %d", a, b, bucketOf(a), bucketOf(b))
		}
	}
	for _, v := range vals {
		if bkt := bucketOf(v); bkt < 0 || bkt >= sbBuckets {
			t.Errorf("bucketOf(%g) = %d, outside [0,%d)", v, bkt, sbBuckets)
		}
	}
}

// TestScoreboardOrderAgainstReference drives random insert/remove
// cycles — with heavy key ties to stress the in-bucket chains — against
// a sorted-slice reference, checking min, max and membership after
// every mutation.
func TestScoreboardOrderAgainstReference(t *testing.T) {
	sb := newScoreboard()
	rng := rand.New(rand.NewSource(7))
	type ent struct{ key sbKey }
	ref := map[int]ent{}
	nextID := 1
	calls := map[int]*call{}
	for step := 0; step < 20000; step++ {
		if len(ref) == 0 || rng.Intn(3) > 0 {
			// Quantised keys force bucket and full-key collisions.
			k1 := float64(rng.Intn(8)) * 0.5
			if rng.Intn(16) == 0 {
				k1 = math.Inf(1)
			}
			k2 := float64(rng.Intn(4))
			id := nextID
			nextID++
			c := &call{}
			c.req.ID = id
			calls[id] = c
			sb.insert(id, k1, k2, c)
			ref[id] = ent{key: sbKey{k1: k1, k2: k2, id: id}}
		} else {
			ids := make([]int, 0, len(ref))
			for id := range ref {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			id := ids[rng.Intn(len(ids))]
			if !sb.remove(id) {
				t.Fatalf("step %d: remove(%d) reported absent", step, id)
			}
			if sb.remove(id) {
				t.Fatalf("step %d: double remove(%d) reported present", step, id)
			}
			delete(ref, id)
		}
		if sb.len() != len(ref) {
			t.Fatalf("step %d: len %d, want %d", step, sb.len(), len(ref))
		}
		var wantMin, wantMax sbKey
		first := true
		for _, e := range ref {
			if first || e.key.less(wantMin) {
				wantMin = e.key
			}
			if first || wantMax.less(e.key) {
				wantMax = e.key
			}
			first = false
		}
		gotMin, okMin := sb.min()
		gotMax, okMax := sb.max()
		if okMin != !first || okMax != !first {
			t.Fatalf("step %d: min/max presence %v/%v, want %v", step, okMin, okMax, !first)
		}
		if okMin && (gotMin.key != wantMin || gotMin.c != calls[wantMin.id]) {
			t.Fatalf("step %d: min %+v, want %+v", step, gotMin.key, wantMin)
		}
		if okMax && gotMax.key != wantMax {
			t.Fatalf("step %d: max %+v, want %+v", step, gotMax.key, wantMax)
		}
	}
}

// --- satellite regressions -------------------------------------------

// overshootPolicy returns an index past the eligible view — the
// out-of-contract behaviour a buggy third-party policy exhibits. Before
// the clamp, the loop treated it like a decline: a loaded system
// stalled forever with no signal.
type overshootPolicy struct{}

func (overshootPolicy) Name() string { return "overshoot" }
func (overshootPolicy) Next(now float64, eligible []Pending) int {
	return len(eligible) + 3
}
func (overshootPolicy) Victim(now float64, blocked Pending, running []Running) int { return -1 }

func TestPolicyNextOvershootClampedNotStalled(t *testing.T) {
	s := newServer(t, Config{QueueDepth: 8, Policy: overshootPolicy{}})
	var tickets []*Ticket
	for i := 0; i < 4; i++ {
		tk, err := s.Submit(Request{PromptLen: 64, OutputLen: 8, Arrival: float64(i) * 1e-3})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	s.Start()
	for i, tk := range tickets {
		if res := awaitResult(t, tk); res.Err != nil {
			t.Fatalf("request %d failed under clamped overshoot policy: %v", i, res.Err)
		}
	}
	if st := s.Stats(); st.PolicyFaults == 0 {
		t.Error("policy overshoot completed but PolicyFaults == 0: fault not surfaced")
	}
}

// TestPriorityOutOfOrderArrivalTieBreak pins PriorityPolicy.Next's
// semantics on the inputs the old code got wrong: the pick must not
// depend on the order the caller built the eligible slice in (ties at
// equal rank and equal arrival fall to the submission id, not the
// index), and a future-stamped arrival — negative age, which an
// out-of-order trace can produce — must rank as un-aged batch without
// poisoning the comparison.
func TestPriorityOutOfOrderArrivalTieBreak(t *testing.T) {
	const now = 10.0
	p := PriorityPolicy{AgingSeconds: 5}
	eligible := []Pending{
		{ID: 7, Arrival: 9.5, Class: ClassInteractive},
		{ID: 3, Arrival: 9.5, Class: ClassInteractive}, // same rank, same arrival: id wins
		{ID: 1, Arrival: 11, Class: ClassBatch},        // future-stamped: negative age, stays batch rank
		{ID: 2, Arrival: 4, Class: ClassBatch},         // aged past 5s: interactive rank, earliest arrival
	}
	perm := []int{0, 1, 2, 3}
	for trial := 0; trial < 24; trial++ {
		rand.New(rand.NewSource(int64(trial))).Shuffle(len(perm), func(i, j int) {
			perm[i], perm[j] = perm[j], perm[i]
		})
		view := make([]Pending, len(eligible))
		for i, j := range perm {
			view[i] = eligible[j]
		}
		if got := view[p.Next(now, view)].ID; got != 2 {
			t.Fatalf("perm %v: picked id %d, want 2 (aged batch at earliest arrival)", perm, got)
		}
		// Remove the aged request: the interactive pair ties on
		// (rank, arrival) and must resolve to the lower id from any
		// slice order.
		rest := make([]Pending, 0, 3)
		for _, q := range view {
			if q.ID != 2 {
				rest = append(rest, q)
			}
		}
		if got := rest[p.Next(now, rest)].ID; got != 3 {
			t.Fatalf("perm %v: tie pick id %d, want 3 (lowest id at equal rank+arrival)", perm, got)
		}
	}
	// Exactly at the aging boundary the promotion must fire (age >=
	// aging), matching the scoreboard calendar's agedToInteractive.
	boundary := []Pending{
		{ID: 5, Arrival: now - 5, Class: ClassBatch},
		{ID: 4, Arrival: now - 1, Class: ClassInteractive},
	}
	if got := boundary[p.Next(now, boundary)].ID; got != 5 {
		t.Fatalf("boundary pick id %d, want 5 (aged exactly AgingSeconds)", got)
	}
}

// TestSLOVictimDeterministicIDTie pins the final victim tie-break: two
// running sequences admitted in the same window carry identical
// (deadline, admitted), and the pick must fall to the lowest id from
// any slice order — the choice the historical scan made implicitly —
// so linear and scoreboard paths agree.
func TestSLOVictimDeterministicIDTie(t *testing.T) {
	p := SLOPolicy{}
	blocked := Pending{ID: 99, Deadline: 5}
	running := []Running{
		{ID: 11, Deadline: 20, Admitted: 1},
		{ID: 4, Deadline: 20, Admitted: 1},
		{ID: 8, Deadline: 20, Admitted: 1},
		{ID: 2, Deadline: 4, Admitted: 1}, // protected: deadline before blocked's
	}
	perm := []int{0, 1, 2, 3}
	for trial := 0; trial < 24; trial++ {
		rand.New(rand.NewSource(int64(trial))).Shuffle(len(perm), func(i, j int) {
			perm[i], perm[j] = perm[j], perm[i]
		})
		view := make([]Running, len(running))
		for i, j := range perm {
			view[i] = running[j]
		}
		v := p.Victim(0, blocked, view)
		if v < 0 {
			t.Fatalf("perm %v: declined, want a victim", perm)
		}
		if got := view[v].ID; got != 4 {
			t.Fatalf("perm %v: victim id %d, want 4 (lowest id at full tie)", perm, got)
		}
	}
	if v := p.Victim(0, Pending{Deadline: math.Inf(1)}, running); v >= 0 {
		t.Errorf("deadline-free blocked request got victim %d, want decline", v)
	}
}

// --- linear vs scoreboard equivalence --------------------------------

// fuzzCall builds the minimal call a schedCore needs.
func fuzzCall(id int, arrival float64, class Class, ttft float64) *call {
	c := &call{class: class, ttftSLO: ttft}
	c.req.ID = id
	c.req.ArrivalSeconds = arrival
	return c
}

func fuzzPending(c *call) Pending {
	return Pending{ID: c.req.ID, Arrival: c.req.ArrivalSeconds, Class: c.class, Deadline: c.deadline()}
}

// FuzzPolicyEquivalence drains randomized pending sets through a
// built-in policy's linear scan and through the scoreboard core, then
// does the same for victim selection over a randomized running batch,
// asserting identical choices at every step. Keys are quantised to a
// coarse grid so full-key ties — where the two implementations are most
// likely to diverge — occur constantly.
func FuzzPolicyEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(12), uint8(0))
	f.Add(uint64(2), uint8(40), uint8(1))
	f.Add(uint64(3), uint8(40), uint8(2))
	f.Add(uint64(99), uint8(64), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, n, kind uint8) {
		rng := rand.New(rand.NewSource(int64(seed)))
		var p Policy
		switch kind % 3 {
		case 0:
			p = FIFOPolicy{}
		case 1:
			p = PriorityPolicy{AgingSeconds: 4}
		case 2:
			p = SLOPolicy{}
		}
		sc := newSchedCore(p)
		if sc == nil {
			t.Fatalf("newSchedCore(%T) = nil, want scoreboard core", p)
		}
		now := 8.0
		count := int(n%64) + 1
		calls := make([]*call, 0, count)
		for i := 0; i < count; i++ {
			arrival := float64(rng.Intn(12)) // 0..11: some stamped past now
			class := ClassInteractive
			if rng.Intn(2) == 0 {
				class = ClassBatch
			}
			ttft := 0.0
			if rng.Intn(2) == 0 {
				ttft = float64(rng.Intn(4)) + 0.5
			}
			c := fuzzCall(i+1, arrival, class, ttft)
			calls = append(calls, c)
			sc.add(c)
		}

		// Admission drain: at each step the linear reference filters and
		// scans the remaining views while the core promotes and peeks.
		remaining := append([]*call(nil), calls...)
		views := make([]Pending, 0, count)
		for {
			views = views[:0]
			for _, c := range remaining {
				if c.req.ArrivalSeconds <= now {
					views = append(views, fuzzPending(c))
				}
			}
			sc.promote(now)
			got, ok := sc.peek()
			if len(views) == 0 {
				if ok {
					t.Fatalf("core eligible %d, linear view empty", got.req.ID)
				}
				break
			}
			if !ok {
				t.Fatalf("linear view has %d eligible, core empty", len(views))
			}
			want := views[p.Next(now, views)].ID
			if got.req.ID != want {
				t.Fatalf("policy %s: linear admits %d, scoreboard admits %d (eligible %v)",
					p.Name(), want, got.req.ID, views)
			}
			sc.removeEligible(want)
			for i, c := range remaining {
				if c.req.ID == want {
					remaining = append(remaining[:i], remaining[i+1:]...)
					break
				}
			}
		}

		// Victim drain (SLO only): the same calls as a running batch,
		// admitted in quantised same-window groups to force full ties.
		slo, isSLO := p.(SLOPolicy)
		if !isSLO {
			return
		}
		running := map[int]*call{}
		for _, c := range calls {
			c.admittedAt = float64(rng.Intn(3))
			running[c.req.ID] = c
			sc.runningAdd(c)
		}
		blocked := Pending{ID: count + 1, Deadline: math.Inf(1)}
		if rng.Intn(4) > 0 {
			blocked.Deadline = float64(rng.Intn(10))
		}
		for {
			views := runningViews(running)
			v := slo.Victim(now, blocked, views)
			gotID, ok := sc.victim(blocked.Deadline)
			if v < 0 {
				if ok {
					t.Fatalf("linear declines a victim, scoreboard picks %d", gotID)
				}
				break
			}
			if !ok {
				t.Fatalf("linear picks victim %d, scoreboard declines", views[v].ID)
			}
			if gotID != views[v].ID {
				t.Fatalf("linear victim %d, scoreboard victim %d (running %v)", views[v].ID, gotID, views)
			}
			delete(running, gotID)
			sc.runningRemove(gotID)
		}
	})
}

// TestScoreboardReplayMatchesLinear is the whole-server differential:
// for every built-in policy, an identical trace replayed through the
// scoreboard core and through the legacy linear path (policy wrapped in
// linearOnly) must produce byte-identical schedules — admission,
// first-token and finish stamps, and preemption counts.
func TestScoreboardReplayMatchesLinear(t *testing.T) {
	eng := testEngine(t, engine.BackendZipServ)
	reqs := mixedTrace(48)
	for _, p := range []Policy{FIFOPolicy{}, PriorityPolicy{}, SLOPolicy{}} {
		cfg := Config{Engine: eng, QueueDepth: len(reqs), MaxBatch: 8}
		cfg.Policy = p
		sb := replay(t, cfg, reqs)
		cfg.Policy = linearOnly{p}
		lin := replay(t, cfg, reqs)
		for i := range sb {
			if sb[i].Admitted != lin[i].Admitted || sb[i].FirstToken != lin[i].FirstToken ||
				sb[i].Finished != lin[i].Finished || sb[i].Preempted != lin[i].Preempted {
				t.Fatalf("policy %s request %d: scoreboard %+v vs linear %+v", p.Name(), i, sb[i], lin[i])
			}
		}
	}
}

// TestScoreboardPreemptionMatchesLinear runs the preemption-heavy SLO
// scenario (capacity-pinning hogs vs an urgent deadline, chunked
// prefill) through both paths: victim choices — and hence the whole
// schedule — must match exactly.
func TestScoreboardPreemptionMatchesLinear(t *testing.T) {
	eng := testEngine(t, engine.BackendZipServ)
	plan := eng.Plan()
	hogTokens := (plan.Blocks - 4) / 2 * 16
	reqs := []Request{
		{PromptLen: hogTokens / 2, OutputLen: hogTokens - hogTokens/2, Arrival: 0, Class: ClassBatch},
		{PromptLen: hogTokens / 2, OutputLen: hogTokens - hogTokens/2, Arrival: 0, Class: ClassBatch},
		{PromptLen: 256, OutputLen: 64, Arrival: 0.001, Class: ClassInteractive, TTFTDeadline: 1},
	}
	cfg := Config{Engine: eng, QueueDepth: 8, PrefillChunkTokens: 128}
	cfg.Policy = SLOPolicy{}
	sb := replay(t, cfg, reqs)
	cfg.Policy = linearOnly{SLOPolicy{}}
	lin := replay(t, cfg, reqs)
	preempts := 0
	for i := range sb {
		if sb[i].Admitted != lin[i].Admitted || sb[i].Finished != lin[i].Finished ||
			sb[i].Preempted != lin[i].Preempted {
			t.Fatalf("request %d: scoreboard %+v vs linear %+v", i, sb[i], lin[i])
		}
		preempts += sb[i].Preempted
	}
	if preempts == 0 {
		t.Fatal("no preemption occurred: the differential is vacuous")
	}
}
