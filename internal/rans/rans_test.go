package rans

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, data []byte, chunk int) *Stream {
	t.Helper()
	s, err := Encode(data, chunk)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := s.Decode()
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(data, got) {
		t.Fatalf("round trip failed: %d symbols in, %d out", len(data), len(got))
	}
	return s
}

func TestRoundTripBasic(t *testing.T) {
	roundTrip(t, []byte("asymmetric numeral systems replace huffman coding"), 0)
}

func TestRoundTripSingleSymbol(t *testing.T) {
	roundTrip(t, bytes.Repeat([]byte{200}, 5000), 0)
}

func TestRoundTripSingleByte(t *testing.T) {
	roundTrip(t, []byte{0}, 0)
}

func TestRoundTripAllByteValues(t *testing.T) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i % 256)
	}
	roundTrip(t, data, 0)
}

func TestEncodeEmptyFails(t *testing.T) {
	if _, err := Encode(nil, 0); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestSkewedDistributionApproachesEntropy(t *testing.T) {
	// rANS should land within a few percent of the entropy bound —
	// tighter than Huffman, which is why DietGPU/nvCOMP chose ANS.
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 200000)
	for i := range data {
		data[i] = byte(124 + int(rng.NormFloat64()*1.3))
	}
	s := roundTrip(t, data, 0)
	payload := 0
	for _, c := range s.Chunks {
		payload += len(c)
	}
	bitsPerSym := float64(payload) * 8 / float64(len(data))
	ent := entropy(data)
	if bitsPerSym < ent {
		t.Errorf("%.3f bits/symbol beats entropy %.3f", bitsPerSym, ent)
	}
	if bitsPerSym > ent*1.10+0.1 {
		t.Errorf("%.3f bits/symbol is >10%% above entropy %.3f", bitsPerSym, ent)
	}
}

func TestUniformDataDoesNotCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 50000)
	rng.Read(data)
	s := roundTrip(t, data, 0)
	if float64(s.SizeBytes()) < float64(len(data))*0.99 {
		t.Errorf("uniform bytes compressed to %d bytes from %d", s.SizeBytes(), len(data))
	}
}

func TestChunkedDecodeMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(100 + rng.Intn(12))
	}
	s := roundTrip(t, data, 1024)
	if s.NumChunks() != 10 {
		t.Fatalf("NumChunks = %d, want 10", s.NumChunks())
	}
	var reassembled []byte
	for i := 0; i < s.NumChunks(); i++ {
		chunk, err := s.DecodeChunk(i)
		if err != nil {
			t.Fatalf("DecodeChunk(%d): %v", i, err)
		}
		reassembled = append(reassembled, chunk...)
	}
	if !bytes.Equal(data, reassembled) {
		t.Error("chunk-parallel decode does not reassemble the stream")
	}
}

func TestDecodeChunkOutOfRange(t *testing.T) {
	s := roundTrip(t, []byte("hello rans"), 4)
	if _, err := s.DecodeChunk(-1); err == nil {
		t.Error("negative chunk accepted")
	}
	if _, err := s.DecodeChunk(s.NumChunks()); err == nil {
		t.Error("out-of-range chunk accepted")
	}
}

func TestDecodeCorruptedPayloadFails(t *testing.T) {
	data := bytes.Repeat([]byte{1, 2, 3, 4}, 2000)
	s, err := Encode(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate a chunk payload: the state machine must detect it
	// either by exhaustion or by a bad final state.
	s.Chunks[0] = s.Chunks[0][:2]
	if _, err := s.Decode(); err == nil {
		t.Error("truncated payload decoded without error")
	}
}

func TestDecodeCorruptedFreqTableFails(t *testing.T) {
	data := bytes.Repeat([]byte{5, 6, 7}, 1000)
	s, err := Encode(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Freqs[5] += 7 // table no longer sums to probScale
	if _, err := s.Decode(); err == nil {
		t.Error("invalid frequency table accepted")
	}
}

func TestDecodeFlippedByteUsuallyFails(t *testing.T) {
	// A flipped payload byte must not silently produce the original
	// data; the final-state check catches the vast majority of flips.
	data := bytes.Repeat([]byte{9, 9, 9, 9, 1}, 3000)
	s, err := Encode(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Chunks[0][5] ^= 0xA5
	got, err := s.Decode()
	if err == nil && bytes.Equal(got, data) {
		t.Error("corrupted stream decoded to the original data")
	}
}

func TestNormalizeFreqsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		var freq [256]int64
		total := int64(0)
		nsyms := 1 + rng.Intn(256)
		for i := 0; i < nsyms; i++ {
			f := int64(1 + rng.Intn(10000))
			freq[rng.Intn(256)] += f
		}
		for _, f := range freq {
			total += f
		}
		if total == 0 {
			continue
		}
		norm, err := normalizeFreqs(freq, total)
		if err != nil {
			continue // legitimately unnormalisable corner
		}
		sum := 0
		for s := 0; s < 256; s++ {
			sum += int(norm[s])
			if freq[s] > 0 && norm[s] == 0 {
				t.Fatalf("trial %d: occurring symbol %d got zero frequency", trial, s)
			}
			if freq[s] == 0 && norm[s] != 0 {
				t.Fatalf("trial %d: absent symbol %d got frequency %d", trial, s, norm[s])
			}
		}
		if sum != probScale {
			t.Fatalf("trial %d: normalised sum %d != %d", trial, sum, probScale)
		}
	}
}

func TestSlotTableConsistent(t *testing.T) {
	data := []byte("slot table consistency check with several symbols")
	s, err := Encode(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	slots := buildSlotTable(s.Freqs)
	cum := cumFreqs(s.Freqs)
	for slot := 0; slot < probScale; slot++ {
		sym := slots[slot]
		if uint32(slot) < cum[sym] || uint32(slot) >= cum[sym+1] {
			t.Fatalf("slot %d maps to symbol %d outside its cumulative range [%d,%d)",
				slot, sym, cum[sym], cum[sym+1])
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte, chunkSel uint8) bool {
		if len(data) == 0 {
			return true
		}
		chunk := int(chunkSel)%3000 + 1
		s, err := Encode(data, chunk)
		if err != nil {
			return false
		}
		got, err := s.Decode()
		return err == nil && bytes.Equal(data, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func entropy(data []byte) float64 {
	var freq [256]float64
	for _, b := range data {
		freq[b]++
	}
	n := float64(len(data))
	var h float64
	for _, f := range freq {
		if f > 0 {
			p := f / n
			h -= p * math.Log2(p)
		}
	}
	return h
}
