// Package rans implements range Asymmetric Numeral Systems (rANS)
// coding over byte streams, the entropy coder behind the DietGPU and
// nvCOMP baselines of the ZipServ paper (§3.2). It is a complete,
// lossless byte-oriented rANS with 12-bit normalised frequencies and
// byte-granular renormalisation, encoded in chunks so a GPU-style
// decoder can assign one thread per chunk — at the cost of per-chunk
// state and offset metadata, the overhead the paper's Figure 1 and
// Figure 13 quantify.
package rans

import (
	"errors"
	"fmt"
)

const (
	// ProbBits is the precision of normalised symbol frequencies
	// (12 bits = 4096 total), the value DietGPU uses.
	ProbBits  = 12
	probScale = 1 << ProbBits

	// ransLow is the renormalisation lower bound of the encoder state.
	ransLow = 1 << 23

	// DefaultChunkSymbols is the per-chunk symbol count. DietGPU
	// decodes with very fine interleaving; 4096 symbols per chunk is
	// its effective per-state granularity.
	DefaultChunkSymbols = 4096
)

// Stream is an rANS-encoded byte stream.
type Stream struct {
	// Freqs holds the normalised frequency of every byte symbol
	// (summing to probScale). Zero means the symbol does not occur.
	Freqs [256]uint16

	// Chunks holds each chunk's independently decodable payload.
	Chunks [][]byte

	// ChunkSymbols is the number of symbols per chunk (last may be
	// short).
	ChunkSymbols int

	// NumSymbols is the total number of encoded symbols.
	NumSymbols int
}

// SizeBytes returns the serialized footprint: payloads, the frequency
// table, per-chunk length metadata, and framing.
func (s *Stream) SizeBytes() int {
	total := 512 + 8*len(s.Chunks) + 16 // freq table + chunk offsets + header
	for _, c := range s.Chunks {
		total += len(c)
	}
	return total
}

// NumChunks returns the number of independently decodable chunks.
func (s *Stream) NumChunks() int { return len(s.Chunks) }

// Encode compresses data with the given chunk granularity
// (DefaultChunkSymbols if <= 0).
func Encode(data []byte, chunkSymbols int) (*Stream, error) {
	if len(data) == 0 {
		return nil, errors.New("rans: cannot encode empty input")
	}
	if chunkSymbols <= 0 {
		chunkSymbols = DefaultChunkSymbols
	}
	var freq [256]int64
	for _, b := range data {
		freq[b]++
	}
	norm, err := normalizeFreqs(freq, int64(len(data)))
	if err != nil {
		return nil, err
	}
	cum := cumFreqs(norm)

	s := &Stream{Freqs: norm, ChunkSymbols: chunkSymbols, NumSymbols: len(data)}
	for start := 0; start < len(data); start += chunkSymbols {
		end := start + chunkSymbols
		if end > len(data) {
			end = len(data)
		}
		s.Chunks = append(s.Chunks, encodeChunk(data[start:end], norm, cum))
	}
	return s, nil
}

// Decode reconstructs the original byte stream by decoding each chunk
// in order.
func (s *Stream) Decode() ([]byte, error) {
	if s.NumSymbols == 0 {
		return nil, errors.New("rans: empty stream")
	}
	if err := validateFreqs(s.Freqs); err != nil {
		return nil, err
	}
	slots := buildSlotTable(s.Freqs)
	cum := cumFreqs(s.Freqs)
	out := make([]byte, 0, s.NumSymbols)
	for i, chunk := range s.Chunks {
		count := s.ChunkSymbols
		if rem := s.NumSymbols - i*s.ChunkSymbols; rem < count {
			count = rem
		}
		dec, err := decodeChunk(chunk, count, s.Freqs, cum, slots)
		if err != nil {
			return nil, fmt.Errorf("rans: chunk %d: %w", i, err)
		}
		out = append(out, dec...)
	}
	if len(out) != s.NumSymbols {
		return nil, fmt.Errorf("rans: decoded %d symbols, want %d", len(out), s.NumSymbols)
	}
	return out, nil
}

// DecodeChunk decodes chunk i independently (the unit of GPU thread
// parallelism).
func (s *Stream) DecodeChunk(i int) ([]byte, error) {
	if i < 0 || i >= len(s.Chunks) {
		return nil, fmt.Errorf("rans: chunk %d out of range [0,%d)", i, len(s.Chunks))
	}
	if err := validateFreqs(s.Freqs); err != nil {
		return nil, err
	}
	count := s.ChunkSymbols
	if rem := s.NumSymbols - i*s.ChunkSymbols; rem < count {
		count = rem
	}
	return decodeChunk(s.Chunks[i], count, s.Freqs, cumFreqs(s.Freqs), buildSlotTable(s.Freqs))
}

// encodeChunk rANS-encodes symbols back to front. The final state is
// emitted as a 4-byte little-endian prefix of the payload.
func encodeChunk(syms []byte, freq [256]uint16, cum [257]uint32) []byte {
	var buf []byte // renormalisation bytes, reversed at the end
	x := uint64(ransLow)
	for i := len(syms) - 1; i >= 0; i-- {
		sym := syms[i]
		f := uint64(freq[sym])
		// Renormalise: stream out low bytes until x fits.
		xMax := ((ransLow >> ProbBits) << 8) * f
		for x >= xMax {
			buf = append(buf, byte(x))
			x >>= 8
		}
		x = (x/f)<<ProbBits + x%f + uint64(cum[sym])
	}
	out := make([]byte, 4, 4+len(buf))
	out[0], out[1], out[2], out[3] = byte(x), byte(x>>8), byte(x>>16), byte(x>>24)
	// Renormalisation bytes were pushed in reverse order.
	for i := len(buf) - 1; i >= 0; i-- {
		out = append(out, buf[i])
	}
	return out
}

// decodeChunk reverses encodeChunk: the data-dependent slot lookup and
// byte-wise renormalisation are the serial operations §3.2 identifies
// as hostile to SIMT execution.
func decodeChunk(payload []byte, count int, freq [256]uint16, cum [257]uint32, slots []byte) ([]byte, error) {
	if len(payload) < 4 {
		return nil, errors.New("payload shorter than initial state")
	}
	x := uint64(payload[0]) | uint64(payload[1])<<8 | uint64(payload[2])<<16 | uint64(payload[3])<<24
	pos := 4
	out := make([]byte, count)
	for i := 0; i < count; i++ {
		slot := x & (probScale - 1)
		sym := slots[slot]
		f := uint64(freq[sym])
		x = f*(x>>ProbBits) + slot - uint64(cum[sym])
		for x < ransLow {
			if pos >= len(payload) {
				return nil, errors.New("payload exhausted mid-stream")
			}
			x = x<<8 | uint64(payload[pos])
			pos++
		}
		out[i] = sym
	}
	if x != ransLow {
		return nil, fmt.Errorf("final state %#x, want %#x: corrupted stream", x, ransLow)
	}
	return out, nil
}

// normalizeFreqs scales raw counts to sum exactly to probScale,
// guaranteeing every occurring symbol keeps frequency >= 1.
func normalizeFreqs(freq [256]int64, total int64) ([256]uint16, error) {
	var norm [256]uint16
	if total <= 0 {
		return norm, errors.New("rans: no symbols")
	}
	assigned := int64(0)
	maxSym, maxVal := -1, int64(-1)
	for s, f := range freq {
		if f == 0 {
			continue
		}
		scaled := f * probScale / total
		if scaled == 0 {
			scaled = 1
		}
		if scaled >= probScale {
			scaled = probScale - 1
		}
		norm[s] = uint16(scaled)
		assigned += scaled
		if f > maxVal {
			maxVal, maxSym = f, s
		}
	}
	// Push the rounding error onto the most frequent symbol.
	diff := int64(probScale) - assigned
	adjusted := int64(norm[maxSym]) + diff
	if adjusted < 1 {
		return norm, errors.New("rans: frequency normalisation failed (too many rare symbols)")
	}
	norm[maxSym] = uint16(adjusted)
	return norm, nil
}

func validateFreqs(freqs [256]uint16) error {
	sum := 0
	for _, f := range freqs {
		sum += int(f)
	}
	if sum != probScale {
		return fmt.Errorf("rans: frequency table sums to %d, want %d", sum, probScale)
	}
	return nil
}

func cumFreqs(freq [256]uint16) [257]uint32 {
	var cum [257]uint32
	for s := 0; s < 256; s++ {
		cum[s+1] = cum[s] + uint32(freq[s])
	}
	return cum
}

// buildSlotTable maps each of the probScale slots to its symbol — the
// lookup table a GPU decoder keeps in shared memory.
func buildSlotTable(freq [256]uint16) []byte {
	slots := make([]byte, probScale)
	pos := 0
	for s := 0; s < 256; s++ {
		for i := 0; i < int(freq[s]); i++ {
			slots[pos] = byte(s)
			pos++
		}
	}
	return slots
}
