package rans

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip checks bit-exactness of encode→decode for arbitrary
// inputs and chunk sizes.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("asymmetric numeral systems"), uint16(4))
	f.Add([]byte{255}, uint16(1))
	f.Add(bytes.Repeat([]byte{9, 9, 1}, 200), uint16(64))
	// Degenerate corners: empty input (skipped by the guard), one
	// symbol, and a long all-identical-symbol run.
	f.Add([]byte{}, uint16(8))
	f.Add([]byte{42}, uint16(0))
	f.Add(bytes.Repeat([]byte{5}, 1024), uint16(100))
	f.Fuzz(func(t *testing.T, data []byte, chunkSel uint16) {
		if len(data) == 0 {
			return
		}
		chunk := int(chunkSel)%4096 + 1
		s, err := Encode(data, chunk)
		if err != nil {
			t.Fatalf("Encode rejected valid input: %v", err)
		}
		got, err := s.Decode()
		if err != nil {
			t.Fatalf("Decode failed on fresh stream: %v", err)
		}
		if !bytes.Equal(data, got) {
			t.Fatal("round trip not bit-exact")
		}
	})
}

// FuzzDecodeRobustness mutates chunk payloads: Decode must never panic
// and must detect stream corruption via the final-state check or
// payload exhaustion in the overwhelming majority of mutations.
func FuzzDecodeRobustness(f *testing.F) {
	base, err := Encode(bytes.Repeat([]byte{7, 7, 7, 3, 1}, 500), 512)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(base.Chunks[0], 512)
	f.Fuzz(func(t *testing.T, payload []byte, count int) {
		if count <= 0 || count > 1<<15 {
			return
		}
		s := &Stream{
			Freqs:        base.Freqs,
			Chunks:       [][]byte{payload},
			ChunkSymbols: count,
			NumSymbols:   count,
		}
		got, err := s.Decode()
		if err == nil && len(got) != count {
			t.Fatalf("Decode returned %d symbols, declared %d", len(got), count)
		}
	})
}
