package zipgemm

import (
	"bytes"
	"testing"

	"zipserv/internal/bf16"
	"zipserv/internal/core"
)

// FuzzFusedMatchesReference drives fuzz-generated weight bit patterns
// and shapes through compress → ZipGEMM and asserts the paper's two
// invariants at once: the codec round trip is bit-exact, and the fused
// kernel's output equals the dense reference bit for bit. Seeds cover
// the degenerate corners: an all-zero matrix, a single element, and
// all-identical symbols.
func FuzzFusedMatchesReference(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(0), uint8(0))                                  // 1×1 zero weight
	f.Add([]byte{0x9a, 0x3d}, uint8(0), uint8(0), uint8(0))                        // single element
	f.Add(bytes.Repeat([]byte{0x9a, 0x3d}, 48*48), uint8(47), uint8(47), uint8(2)) // all-identical
	f.Add([]byte{0xFF, 0x7F, 0x00, 0x80, 0x80, 0x7F}, uint8(15), uint8(15), uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, mSel, kSel, nSel uint8) {
		m := int(mSel)%48 + 1
		k := int(kSel)%48 + 1
		n := int(nSel)%8 + 1
		w := bf16.NewMatrix(m, k)
		for i := range w.Data {
			var v uint16
			if 2*i+1 < len(raw) {
				v = uint16(raw[2*i]) | uint16(raw[2*i+1])<<8
			}
			w.Data[i] = bf16.FromBits(v)
		}
		x := bf16.NewMatrix(k, n)
		for i := range x.Data {
			x.Data[i] = bf16.FromFloat32(float32(i%13)*0.25 - 1)
		}

		cw, err := core.Compress(w)
		if err != nil {
			t.Fatalf("Compress failed on valid %dx%d matrix: %v", m, k, err)
		}
		back, err := core.Decompress(cw)
		if err != nil {
			t.Fatalf("Decompress failed: %v", err)
		}
		if !w.Equal(back) {
			t.Fatalf("round trip not bit-exact at %d", w.FirstDiff(back))
		}

		ref, err := Reference(w, x)
		if err != nil {
			t.Fatalf("Reference failed: %v", err)
		}
		got, err := Fused(cw, x)
		if err != nil {
			t.Fatalf("Fused failed: %v", err)
		}
		if !ref.Equal(got) {
			t.Fatalf("ZipGEMM differs from Reference on %dx%dx%d", m, k, n)
		}
	})
}
