// Package zipgemm implements the GEMM kernels of the ZipServ paper as
// bit-exact functional models:
//
//   - Reference: dense BF16 GEMM with FP32 accumulation, the
//     cuBLAS_TC stand-in and the correctness oracle;
//   - Fused: ZipGEMM (§4.3) — the "load-compressed,
//     compute-decompressed" kernel that decodes TCA-TBE FragTiles
//     just-in-time and feeds them to the multiply-accumulate loop
//     without ever materialising the weight matrix;
//   - Decoupled: the baseline pipeline (§3.3, Figure 4) that first
//     decompresses the whole matrix into a "global memory" buffer and
//     then runs the dense GEMM over it.
//
// All three produce identical FP32 results bit-for-bit because they
// share one accumulation order (k ascending): on hardware the fused
// kernel feeds the same mma.sync units as cuBLAS, and bit-exactness is
// the paper's headline guarantee. Products of BF16 operands are exact
// in FP32 (8×8-bit mantissas), so the only rounding is in the
// accumulation adds, which all kernels perform in the same sequence.
package zipgemm

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"zipserv/internal/bf16"
	"zipserv/internal/codec"
	"zipserv/internal/core"
	"zipserv/internal/tile"
)

// Result is an M×N FP32 output matrix (row-major), the accumulator
// precision of BF16 Tensor Core GEMM.
type Result struct {
	M, N int
	Data []float32
}

// At returns the output element at row m, column n.
func (r *Result) At(m, n int) float32 { return r.Data[m*r.N+n] }

// Equal reports bit-exact equality with other (NaN-insensitive
// comparison is deliberately NOT used: bit patterns must match).
func (r *Result) Equal(other *Result) bool {
	if r.M != other.M || r.N != other.N {
		return false
	}
	for i, v := range r.Data {
		if v != other.Data[i] {
			// Allow both to be the same NaN bit pattern; Go float
			// comparison treats NaN != NaN, so compare bits.
			if !(isNaN32(v) && isNaN32(other.Data[i])) {
				return false
			}
		}
	}
	return true
}

func isNaN32(f float32) bool { return f != f }

// Reference computes Y = W·X with W ∈ BF16^{M×K}, X ∈ BF16^{K×N} and
// FP32 accumulation in ascending-k order. This is the correctness
// oracle all other kernels are compared against.
func Reference(w, x *bf16.Matrix) (*Result, error) {
	if err := checkShapes(w, x); err != nil {
		return nil, err
	}
	m, k, n := w.Rows, w.Cols, x.Cols
	out := &Result{M: m, N: n, Data: make([]float32, m*n)}
	xf := x.ToFloat32()
	parallelRows(m, func(r0, r1 int) {
		for r := r0; r < r1; r++ {
			row := out.Data[r*n : (r+1)*n]
			for kk := 0; kk < k; kk++ {
				wv := w.At(r, kk).Float32()
				if wv == 0 {
					// Skipping exact zeros does not change results:
					// x*0 contributes +0, and FP32 addition of +0 is
					// an identity except for NaN/Inf inputs, which we
					// keep by not skipping when x is non-finite.
					xrow := xf[kk*n : (kk+1)*n]
					if allFinite(xrow) {
						continue
					}
				}
				xrow := xf[kk*n : (kk+1)*n]
				for c := 0; c < n; c++ {
					row[c] += wv * xrow[c]
				}
			}
		}
	})
	return out, nil
}

// Fused computes Y = W·X directly from the TCA-TBE representation of
// W, mirroring the ZipGEMM kernel workflow (§4.3.1): for each
// BlockTile the compressed weights are staged ("shared memory"),
// decoded FragTile by FragTile into a register image, and immediately
// consumed by the multiply-accumulate loop — no decompressed weight
// matrix ever exists.
func Fused(cw *core.Compressed, x *bf16.Matrix) (*Result, error) {
	res, _, err := fused(cw, x, false)
	return res, err
}

// FusedCounted is Fused plus the architectural event counters used by
// the Figure 12 micro-analysis.
func FusedCounted(cw *core.Compressed, x *bf16.Matrix) (*Result, core.Counters, error) {
	return fused(cw, x, true)
}

func fused(cw *core.Compressed, x *bf16.Matrix, count bool) (*Result, core.Counters, error) {
	var total core.Counters
	g := cw.Grid
	if x.Rows != g.Cols {
		return nil, total, fmt.Errorf("zipgemm: weight K=%d does not match activation rows %d", g.Cols, x.Rows)
	}
	m, k, n := g.Rows, g.Cols, x.Cols
	if n == 0 {
		return nil, total, fmt.Errorf("zipgemm: activation matrix has zero columns")
	}
	out := &Result{M: m, N: n, Data: make([]float32, m*n)}
	xf := x.ToFloat32()

	var mu sync.Mutex
	parallelRows(g.BlockRows, func(b0, b1 int) {
		var fv core.FragView
		var local core.Counters
		// blockW is the decoded 64×64 register image of one BlockTile,
		// indexed [localRow][localK].
		var blockW [tile.BlockDim][tile.BlockDim]float32
		for br := b0; br < b1; br++ {
			rowBase := br * tile.BlockDim
			for bc := 0; bc < g.BlockCols; bc++ {
				colBase := bc * tile.BlockDim
				block := br*g.BlockCols + bc
				// Stage ❷ of the kernel: warp-level decoding of every
				// FragTile in the block, tracking value-buffer offsets
				// incrementally exactly as the GPU's warp-local prefix
				// sums do.
				startH, startL := cw.HighOff[block], cw.FullOff[block]
				for f := 0; f < tile.FragsPerBlock; f++ {
					frag := block*tile.FragsPerBlock + f
					var ctr *core.Counters
					if count {
						ctr = &local
					}
					cw.DecodeFragAt(frag, startH, startL, &fv, ctr)
					hi := 0
					ind := cw.Indicator(frag)
					for p := 0; p < tile.FragElems; p++ {
						lr, lc := fragLocal(f, p)
						blockW[lr][lc] = fv[p].Float32()
					}
					hi = bits.OnesCount64(ind)
					startH += int64(hi)
					startL += int64(tile.FragElems - hi)
				}
				// Stage ❹: multiply-accumulate, ascending local k so
				// the global accumulation order matches Reference.
				kMax := k - colBase
				if kMax > tile.BlockDim {
					kMax = tile.BlockDim
				}
				rMax := m - rowBase
				if rMax > tile.BlockDim {
					rMax = tile.BlockDim
				}
				for lr := 0; lr < rMax; lr++ {
					row := out.Data[(rowBase+lr)*n : (rowBase+lr+1)*n]
					for lk := 0; lk < kMax; lk++ {
						wv := blockW[lr][lk]
						if wv == 0 {
							xrow := xf[(colBase+lk)*n : (colBase+lk+1)*n]
							if allFinite(xrow) {
								continue
							}
						}
						xrow := xf[(colBase+lk)*n : (colBase+lk+1)*n]
						for c := 0; c < n; c++ {
							row[c] += wv * xrow[c]
						}
					}
				}
			}
		}
		if count {
			mu.Lock()
			total.Add(local)
			mu.Unlock()
		}
	})
	if count {
		total.BytesRead = int64(cw.SizeBytes()) + int64(len(xf)*2) // compressed W + BF16 X
	}
	return out, total, nil
}

// Decoupled runs the baseline pipeline of Figure 4: fully decompress
// the blob into a staging matrix ("global memory"), then run the dense
// GEMM over it. Results are bit-identical to Fused and Reference; only
// the memory traffic differs — which is the entire point of §3.3.
func Decoupled(blob codec.Blob, x *bf16.Matrix) (*Result, error) {
	w, err := blob.Decompress()
	if err != nil {
		return nil, fmt.Errorf("zipgemm: decoupled staging: %w", err)
	}
	return Reference(w, x)
}

// fragLocal maps (frag index within block, position) to local (row,
// col) coordinates inside the 64×64 BlockTile.
func fragLocal(frag, pos int) (lr, lc int) {
	tcIndex, fragInTC := frag/tile.FragsPerTC, frag%tile.FragsPerTC
	tcRow, tcCol := tcIndex/tile.TCsPerBlockSide, tcIndex%tile.TCsPerBlockSide
	fc, fr := fragInTC/tile.FragsPerTCSide, fragInTC%tile.FragsPerTCSide
	return tcRow*tile.TCDim + fr*tile.FragDim + pos/tile.FragDim,
		tcCol*tile.TCDim + fc*tile.FragDim + pos%tile.FragDim
}

func checkShapes(w, x *bf16.Matrix) error {
	if w.Rows <= 0 || w.Cols <= 0 {
		return fmt.Errorf("zipgemm: empty weight matrix %d×%d", w.Rows, w.Cols)
	}
	if x.Rows != w.Cols {
		return fmt.Errorf("zipgemm: weight K=%d does not match activation rows %d", w.Cols, x.Rows)
	}
	if x.Cols <= 0 {
		return fmt.Errorf("zipgemm: activation matrix has zero columns")
	}
	return nil
}

func allFinite(xs []float32) bool {
	for _, v := range xs {
		d := float64(v)
		if d != d || d > 3.4e38 || d < -3.4e38 {
			return false
		}
	}
	return true
}

// parallelRows splits [0, n) into contiguous chunks across GOMAXPROCS
// workers; each worker owns disjoint output rows, so the computation
// is deterministic.
func parallelRows(n int, work func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		work(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			work(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
