package zipgemm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"zipserv/internal/bf16"
	"zipserv/internal/codec"
	"zipserv/internal/core"
	"zipserv/internal/weights"
)

func activations(t testing.TB, k, n int, seed int64) *bf16.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := bf16.NewMatrix(k, n)
	for i := range x.Data {
		x.Data[i] = bf16.FromFloat32(float32(rng.NormFloat64()))
	}
	return x
}

func TestReferenceKnownValues(t *testing.T) {
	// 2×2 · 2×1 with exactly representable values.
	w := bf16.FromFloat32Matrix(2, 2, []float32{1, 2, 3, 4})
	x := bf16.FromFloat32Matrix(2, 1, []float32{5, 6})
	y, err := Reference(w, x)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(0, 0) != 17 || y.At(1, 0) != 39 {
		t.Errorf("Y = [%g %g], want [17 39]", y.At(0, 0), y.At(1, 0))
	}
}

func TestReferenceShapeErrors(t *testing.T) {
	w := bf16.NewMatrix(4, 4)
	if _, err := Reference(w, bf16.NewMatrix(5, 2)); err == nil {
		t.Error("mismatched K accepted")
	}
	if _, err := Reference(w, bf16.NewMatrix(4, 0)); err == nil {
		t.Error("zero-column activations accepted")
	}
	if _, err := Reference(&bf16.Matrix{}, bf16.NewMatrix(0, 1)); err == nil {
		t.Error("empty weight matrix accepted")
	}
}

func TestFusedEqualsReferenceGaussian(t *testing.T) {
	// Invariant 2 of DESIGN.md: ZipGEMM on compressed weights is
	// bit-identical to dense GEMM on the original weights — the
	// paper's bit-exact inference guarantee, across shapes including
	// ragged (non-tile-multiple) ones.
	shapes := []struct{ m, k, n int }{
		{64, 64, 1}, {64, 64, 8}, {128, 64, 32}, {64, 128, 16},
		{100, 100, 4}, {65, 130, 3}, {256, 192, 33}, {1, 1, 1},
	}
	for _, s := range shapes {
		w := weights.Gaussian(s.m, s.k, 0.02, int64(s.m*7+s.k*3+s.n))
		x := activations(t, s.k, s.n, 99)
		ref, err := Reference(w, x)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		cw, err := core.Compress(w)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		got, err := Fused(cw, x)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !ref.Equal(got) {
			t.Errorf("shape %v: fused result differs from reference", s)
		}
	}
}

func TestFusedEqualsReferenceWithOutliers(t *testing.T) {
	w := weights.GaussianWithOutliers(128, 128, 0.02, 0.05, 5)
	x := activations(t, 128, 16, 6)
	ref, _ := Reference(w, x)
	cw, err := core.Compress(w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Fused(cw, x)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Equal(got) {
		t.Error("fused differs from reference on outlier-heavy weights")
	}
}

func TestFusedSpecialValues(t *testing.T) {
	// Inf and NaN weights must propagate identically through both
	// kernels (bit-exact serving can carry non-finite junk weights).
	w := bf16.NewMatrix(64, 64)
	for i := range w.Data {
		w.Data[i] = bf16.FromFloat32(0.01)
	}
	w.Set(0, 0, bf16.FromBits(0x7F80)) // +Inf
	w.Set(1, 1, bf16.FromBits(0x7FC0)) // NaN
	w.Set(2, 2, bf16.FromBits(0x8000)) // -0
	x := activations(t, 64, 4, 7)
	ref, _ := Reference(w, x)
	cw, _ := core.Compress(w)
	got, err := Fused(cw, x)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Equal(got) {
		t.Error("special values broke fused/reference equality")
	}
	if !isNaN32(ref.At(1, 0)) {
		t.Error("NaN weight did not propagate to output row")
	}
	if !math.IsInf(float64(ref.At(0, 0)), 0) && !isNaN32(ref.At(0, 0)) {
		t.Error("Inf weight did not propagate to output row")
	}
}

func TestFusedAllCodewordModes(t *testing.T) {
	w := weights.Gaussian(128, 128, 0.025, 11)
	x := activations(t, 128, 8, 12)
	ref, _ := Reference(w, x)
	for _, opts := range []core.Options{
		{CodewordBits: 2, Selection: core.WindowSelection},
		{CodewordBits: 3, Selection: core.WindowSelection},
		{CodewordBits: 4, Selection: core.WindowSelection},
		{CodewordBits: 3, Selection: core.TopFrequencySelection},
	} {
		cw, err := core.CompressWithOptions(w, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		got, err := Fused(cw, x)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if !ref.Equal(got) {
			t.Errorf("%+v: fused differs from reference", opts)
		}
	}
}

func TestDecoupledEqualsFused(t *testing.T) {
	// The decoupled pipeline and the fused kernel must agree exactly:
	// the paper's comparison is purely about performance, never
	// results.
	w := weights.Gaussian(192, 128, 0.02, 13)
	x := activations(t, 128, 8, 14)
	for _, name := range codec.Names() {
		c, err := codec.New(name)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := c.Compress(w)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dec, err := Decoupled(blob, x)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ref, _ := Reference(w, x)
		if !ref.Equal(dec) {
			t.Errorf("%s: decoupled pipeline differs from reference", name)
		}
	}
}

func TestFusedCountedMatchesUncounted(t *testing.T) {
	w := weights.Gaussian(128, 192, 0.02, 15)
	x := activations(t, 192, 8, 16)
	cw, _ := core.Compress(w)
	plain, err := Fused(cw, x)
	if err != nil {
		t.Fatal(err)
	}
	counted, ctr, err := FusedCounted(cw, x)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(counted) {
		t.Error("counted and uncounted fused kernels disagree")
	}
	if ctr.Elements != int64(cw.Grid.PaddedRows*cw.Grid.PaddedCols) {
		t.Errorf("counted %d elements, want %d", ctr.Elements, cw.Grid.PaddedRows*cw.Grid.PaddedCols)
	}
	// Fused kernel reads compressed weights + activations.
	wantBytes := int64(cw.SizeBytes()) + int64(x.SizeBytes())
	if ctr.BytesRead != wantBytes {
		t.Errorf("BytesRead = %d, want %d", ctr.BytesRead, wantBytes)
	}
	// DRAM traffic must be well below the dense weight footprint —
	// the 29.3% DRAM-read reduction of Figure 12 comes from here.
	if ctr.BytesRead >= int64(w.SizeBytes()) {
		t.Errorf("fused kernel read %d bytes ≥ dense %d: no traffic saving", ctr.BytesRead, w.SizeBytes())
	}
}

func TestFusedShapeErrors(t *testing.T) {
	w := weights.Gaussian(64, 64, 0.02, 17)
	cw, _ := core.Compress(w)
	if _, err := Fused(cw, bf16.NewMatrix(65, 2)); err == nil {
		t.Error("mismatched activation rows accepted")
	}
	if _, err := Fused(cw, bf16.NewMatrix(64, 0)); err == nil {
		t.Error("zero-column activations accepted")
	}
}

func TestQuickFusedEqualsReference(t *testing.T) {
	f := func(seed int64, mSel, kSel, nSel uint8) bool {
		m := int(mSel%100) + 1
		k := int(kSel%100) + 1
		n := int(nSel%16) + 1
		w := weights.Gaussian(m, k, 0.03, seed)
		x := activations(t, k, n, seed+1)
		ref, err := Reference(w, x)
		if err != nil {
			return false
		}
		cw, err := core.Compress(w)
		if err != nil {
			return false
		}
		got, err := Fused(cw, x)
		if err != nil {
			return false
		}
		return ref.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkReference256(b *testing.B) {
	w := weights.Gaussian(256, 256, 0.02, 1)
	x := activations(b, 256, 32, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reference(w, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFused256(b *testing.B) {
	w := weights.Gaussian(256, 256, 0.02, 1)
	x := activations(b, 256, 32, 2)
	cw, err := core.Compress(w)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fused(cw, x); err != nil {
			b.Fatal(err)
		}
	}
}
