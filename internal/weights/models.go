// Package weights provides the synthetic substitute for the real LLM
// checkpoints the paper evaluates on: the exact linear-layer shapes of
// the eleven models in §6.1 (LLaMA3.1, Qwen2.5, Gemma3, Mistral
// families) and a Gaussian BF16 weight generator realising the
// distributional assumptions of Appendix A. Per DESIGN.md §1, shapes
// drive the performance model and the generator drives every
// functional/statistical experiment, so nothing depends on downloading
// proprietary checkpoints.
package weights

import (
	"fmt"
	"sort"
)

// LayerKind identifies one of the linear layers profiled in §6.1.
type LayerKind string

// The five weight-bearing GEMM layers of a decoder block plus the
// language-model head.
const (
	QKVProj    LayerKind = "QKV_proj"    // merged query/key/value projection
	OProj      LayerKind = "O_proj"      // attention output projection
	GateUpProj LayerKind = "GateUp_proj" // merged FFN gate+up projection
	DownProj   LayerKind = "Down_proj"   // FFN down projection
	LMHead     LayerKind = "LM_head"     // vocabulary projection
)

// BlockLayerKinds lists the per-transformer-block layers in execution
// order (LMHead excluded: it appears once per model).
var BlockLayerKinds = []LayerKind{QKVProj, OProj, GateUpProj, DownProj}

// Shape is one weight matrix: Y = W·X with W ∈ R^{M×K}.
type Shape struct {
	Kind LayerKind
	M, K int
}

// Elements returns M×K.
func (s Shape) Elements() int64 { return int64(s.M) * int64(s.K) }

// Bytes returns the BF16 footprint in bytes.
func (s Shape) Bytes() int64 { return 2 * s.Elements() }

// String implements fmt.Stringer.
func (s Shape) String() string { return fmt.Sprintf("%s(%d×%d)", s.Kind, s.M, s.K) }

// Model describes a transformer LLM's architecture, sufficient to
// derive every GEMM shape and the serving memory model.
type Model struct {
	Name            string
	Family          string
	HiddenDim       int
	IntermediateDim int
	NumLayers       int
	NumHeads        int
	NumKVHeads      int
	HeadDim         int
	VocabSize       int
}

// Zoo returns the eleven models benchmarked in §6.1, covering 7B–405B.
// Architectural parameters follow the published configurations.
func Zoo() []Model {
	return []Model{
		{Name: "LLaMA3.1-8B", Family: "LLaMA3.1", HiddenDim: 4096, IntermediateDim: 14336, NumLayers: 32, NumHeads: 32, NumKVHeads: 8, HeadDim: 128, VocabSize: 128256},
		{Name: "LLaMA3.1-70B", Family: "LLaMA3.1", HiddenDim: 8192, IntermediateDim: 28672, NumLayers: 80, NumHeads: 64, NumKVHeads: 8, HeadDim: 128, VocabSize: 128256},
		{Name: "LLaMA3.1-405B", Family: "LLaMA3.1", HiddenDim: 16384, IntermediateDim: 53248, NumLayers: 126, NumHeads: 128, NumKVHeads: 8, HeadDim: 128, VocabSize: 128256},
		{Name: "Qwen2.5-7B", Family: "Qwen2.5", HiddenDim: 3584, IntermediateDim: 18944, NumLayers: 28, NumHeads: 28, NumKVHeads: 4, HeadDim: 128, VocabSize: 152064},
		{Name: "Qwen2.5-14B", Family: "Qwen2.5", HiddenDim: 5120, IntermediateDim: 13824, NumLayers: 48, NumHeads: 40, NumKVHeads: 8, HeadDim: 128, VocabSize: 152064},
		{Name: "Qwen2.5-32B", Family: "Qwen2.5", HiddenDim: 5120, IntermediateDim: 27648, NumLayers: 64, NumHeads: 40, NumKVHeads: 8, HeadDim: 128, VocabSize: 152064},
		{Name: "Qwen2.5-72B", Family: "Qwen2.5", HiddenDim: 8192, IntermediateDim: 29568, NumLayers: 80, NumHeads: 64, NumKVHeads: 8, HeadDim: 128, VocabSize: 152064},
		{Name: "Gemma3-12B", Family: "Gemma3", HiddenDim: 3840, IntermediateDim: 15360, NumLayers: 48, NumHeads: 16, NumKVHeads: 8, HeadDim: 256, VocabSize: 262144},
		{Name: "Gemma3-27B", Family: "Gemma3", HiddenDim: 5376, IntermediateDim: 21504, NumLayers: 62, NumHeads: 32, NumKVHeads: 16, HeadDim: 128, VocabSize: 262144},
		{Name: "Mistral-24B", Family: "Mistral", HiddenDim: 5120, IntermediateDim: 32768, NumLayers: 40, NumHeads: 32, NumKVHeads: 8, HeadDim: 128, VocabSize: 131072},
		{Name: "Mistral-123B", Family: "Mistral", HiddenDim: 12288, IntermediateDim: 28672, NumLayers: 88, NumHeads: 96, NumKVHeads: 8, HeadDim: 128, VocabSize: 32768},
	}
}

// ByName returns the zoo model with the given name.
func ByName(name string) (Model, error) {
	for _, m := range Zoo() {
		if m.Name == name {
			return m, nil
		}
	}
	names := make([]string, 0)
	for _, m := range Zoo() {
		names = append(names, m.Name)
	}
	sort.Strings(names)
	return Model{}, fmt.Errorf("weights: unknown model %q (have %v)", name, names)
}

// LayerShape returns the weight shape of one layer kind.
func (m Model) LayerShape(kind LayerKind) Shape {
	switch kind {
	case QKVProj:
		return Shape{kind, (m.NumHeads + 2*m.NumKVHeads) * m.HeadDim, m.HiddenDim}
	case OProj:
		return Shape{kind, m.HiddenDim, m.NumHeads * m.HeadDim}
	case GateUpProj:
		return Shape{kind, 2 * m.IntermediateDim, m.HiddenDim}
	case DownProj:
		return Shape{kind, m.HiddenDim, m.IntermediateDim}
	case LMHead:
		return Shape{kind, m.VocabSize, m.HiddenDim}
	default:
		panic(fmt.Sprintf("weights: unknown layer kind %q", kind))
	}
}

// BlockShapes returns the four per-block GEMM shapes in execution
// order — the kernel benchmark workload of §6.1.
func (m Model) BlockShapes() []Shape {
	out := make([]Shape, 0, len(BlockLayerKinds))
	for _, k := range BlockLayerKinds {
		out = append(out, m.LayerShape(k))
	}
	return out
}

// AllShapes returns the block shapes plus the LM head.
func (m Model) AllShapes() []Shape {
	return append(m.BlockShapes(), m.LayerShape(LMHead))
}

// WeightElements returns the total parameter count of all GEMM weights
// (blocks × layers + embedding + head). Embedding is counted at the
// LM-head shape, matching standard parameter accounting.
func (m Model) WeightElements() int64 {
	var perBlock int64
	for _, s := range m.BlockShapes() {
		perBlock += s.Elements()
	}
	embed := m.LayerShape(LMHead).Elements()
	return perBlock*int64(m.NumLayers) + 2*embed
}

// WeightBytes returns the BF16 weight footprint in bytes.
func (m Model) WeightBytes() int64 { return 2 * m.WeightElements() }

// WeightGiB returns the BF16 weight footprint in GiB, the unit the
// paper uses for its memory figures (e.g. 14.96 GiB for LLaMA3.1-8B).
func (m Model) WeightGiB() float64 { return float64(m.WeightBytes()) / (1 << 30) }

// KVBytesPerToken returns the KV-cache cost of one token position in
// bytes: 2 tensors (K and V) × kv-heads × head-dim × layers × 2 bytes.
func (m Model) KVBytesPerToken() int64 {
	return 2 * 2 * int64(m.NumKVHeads) * int64(m.HeadDim) * int64(m.NumLayers)
}

// DecodeFLOPsPerToken approximates the dense-GEMM FLOPs to generate a
// single token (2 × weight elements touched per forward pass).
func (m Model) DecodeFLOPsPerToken() int64 {
	var perBlock int64
	for _, s := range m.BlockShapes() {
		perBlock += s.Elements()
	}
	return 2 * (perBlock*int64(m.NumLayers) + m.LayerShape(LMHead).Elements())
}
