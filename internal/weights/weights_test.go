package weights

import (
	"math"
	"testing"

	"zipserv/internal/stats"
)

func TestZooHasElevenModels(t *testing.T) {
	zoo := Zoo()
	if len(zoo) != 11 {
		t.Fatalf("zoo has %d models, §6.1 lists 11", len(zoo))
	}
	families := map[string]int{}
	for _, m := range zoo {
		families[m.Family]++
	}
	want := map[string]int{"LLaMA3.1": 3, "Qwen2.5": 4, "Gemma3": 2, "Mistral": 2}
	for f, n := range want {
		if families[f] != n {
			t.Errorf("family %s has %d models, want %d", f, families[f], n)
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("LLaMA3.1-8B")
	if err != nil {
		t.Fatal(err)
	}
	if m.HiddenDim != 4096 {
		t.Errorf("LLaMA3.1-8B hidden dim %d, want 4096", m.HiddenDim)
	}
	if _, err := ByName("GPT-5"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestLayerShapesLLaMA8B(t *testing.T) {
	m, _ := ByName("LLaMA3.1-8B")
	cases := []struct {
		kind LayerKind
		m, k int
	}{
		{QKVProj, 6144, 4096},     // (32+16)×128 merged heads
		{OProj, 4096, 4096},       // the small layer of Fig 11(c)
		{GateUpProj, 28672, 4096}, // 2×14336 merged
		{DownProj, 4096, 14336},
		{LMHead, 128256, 4096},
	}
	for _, c := range cases {
		s := m.LayerShape(c.kind)
		if s.M != c.m || s.K != c.k {
			t.Errorf("%s: shape %d×%d, want %d×%d", c.kind, s.M, s.K, c.m, c.k)
		}
	}
}

func TestMicroAnalysisShapeExists(t *testing.T) {
	// Figure 12 profiles M=28672, K=4096: that is exactly the
	// LLaMA3.1-8B GateUp_proj.
	m, _ := ByName("LLaMA3.1-8B")
	s := m.LayerShape(GateUpProj)
	if s.M != 28672 || s.K != 4096 {
		t.Errorf("GateUp_proj is %d×%d, Fig 12 uses 28672×4096", s.M, s.K)
	}
}

func TestWeightGiBMatchesPaper(t *testing.T) {
	// §6.5 reports BF16 weight footprints: 14.96 GiB (LLaMA3.1-8B),
	// 43.92 GiB (Mistral-24B), 131.56 GiB (LLaMA3.1-70B). Our
	// GEMM-weight accounting must land within a few percent (the gap
	// is norms/rotary buffers we do not model).
	cases := []struct {
		name string
		gib  float64
		tol  float64
	}{
		{"LLaMA3.1-8B", 14.96, 0.05},
		{"Mistral-24B", 43.92, 0.06},
		{"LLaMA3.1-70B", 131.56, 0.05},
	}
	for _, c := range cases {
		m, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		got := m.WeightGiB()
		if rel := math.Abs(got-c.gib) / c.gib; rel > c.tol {
			t.Errorf("%s: %.2f GiB, paper says %.2f (rel err %.3f > %.2f)",
				c.name, got, c.gib, rel, c.tol)
		}
	}
}

func TestBlockAndAllShapes(t *testing.T) {
	m, _ := ByName("Qwen2.5-7B")
	if got := len(m.BlockShapes()); got != 4 {
		t.Errorf("BlockShapes: %d, want 4", got)
	}
	all := m.AllShapes()
	if got := len(all); got != 5 {
		t.Errorf("AllShapes: %d, want 5", got)
	}
	if all[4].Kind != LMHead {
		t.Errorf("AllShapes last = %s, want LM_head", all[4].Kind)
	}
	for _, s := range all {
		if s.M <= 0 || s.K <= 0 {
			t.Errorf("%s: non-positive shape", s)
		}
	}
}

func TestKVBytesPerToken(t *testing.T) {
	m, _ := ByName("LLaMA3.1-8B")
	// 2 (K,V) × 8 kv-heads × 128 dim × 32 layers × 2 B = 131072 B.
	if got := m.KVBytesPerToken(); got != 131072 {
		t.Errorf("KVBytesPerToken = %d, want 131072", got)
	}
}

func TestDecodeFLOPsPerToken(t *testing.T) {
	m, _ := ByName("LLaMA3.1-8B")
	flops := m.DecodeFLOPsPerToken()
	// ≈ 2 × 7.5B touched params ≈ 15 GFLOPs/token.
	if flops < 13e9 || flops > 17e9 {
		t.Errorf("DecodeFLOPsPerToken = %.2f G, want ≈15 G", float64(flops)/1e9)
	}
}

func TestGaussianDeterministic(t *testing.T) {
	a := Gaussian(64, 64, 0.02, 42)
	b := Gaussian(64, 64, 0.02, 42)
	if !a.Equal(b) {
		t.Error("same seed produced different matrices")
	}
	c := Gaussian(64, 64, 0.02, 43)
	if a.Equal(c) {
		t.Error("different seeds produced identical matrices")
	}
}

func TestGaussianStatisticsMatchSection31(t *testing.T) {
	// Every generated layer must exhibit the paper's §3.1 statistics.
	m, _ := ByName("LLaMA3.1-8B")
	for _, kind := range BlockLayerKinds {
		w := SampledLayerMatrix(m, kind, 0, 16)
		h := stats.ExponentHistogram(w)
		if e := h.Entropy(); e < 2.3 || e > 3.0 {
			t.Errorf("%s: entropy %.3f outside [2.3, 3.0]", kind, e)
		}
		if c := h.TopKCoverage(7); c < 0.95 {
			t.Errorf("%s: top-7 coverage %.3f < 0.95", kind, c)
		}
		if !h.TopKIsContiguous(7) {
			t.Errorf("%s: top-7 not contiguous", kind)
		}
	}
}

func TestGaussianWithOutliers(t *testing.T) {
	w := GaussianWithOutliers(128, 128, 0.02, 0.02, 9)
	h := stats.ExponentHistogram(w)
	// Outliers push coverage below the pure-Gaussian level but the
	// bulk statistics survive.
	cov := h.BestWindowCoverage(7)
	if cov > 0.97 {
		t.Errorf("outlier matrix window coverage %.4f — outliers had no effect", cov)
	}
	if cov < 0.85 {
		t.Errorf("outlier matrix window coverage %.4f — too many outliers", cov)
	}
}

func TestSampledLayerMatrixTileAligned(t *testing.T) {
	m, _ := ByName("LLaMA3.1-405B")
	w := SampledLayerMatrix(m, GateUpProj, 0, 64)
	if w.Rows%64 != 0 || w.Cols%64 != 0 {
		t.Errorf("sampled matrix %d×%d not tile aligned", w.Rows, w.Cols)
	}
	if w.Rows < 64 || w.Cols < 64 {
		t.Errorf("sampled matrix %d×%d below minimum tile", w.Rows, w.Cols)
	}
	// Extreme shrink still yields a valid matrix.
	tiny := SampledLayerMatrix(m, OProj, 0, 1<<20)
	if tiny.Rows != 64 || tiny.Cols != 64 {
		t.Errorf("over-shrunk matrix %d×%d, want 64×64 floor", tiny.Rows, tiny.Cols)
	}
}

func TestLayerMatrixSeedsDiffer(t *testing.T) {
	m, _ := ByName("Qwen2.5-7B")
	a := SampledLayerMatrix(m, OProj, 0, 32)
	b := SampledLayerMatrix(m, OProj, 1, 32)
	if a.Equal(b) {
		t.Error("different layer indices produced identical weights")
	}
}

func TestLayerShapePanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown layer kind")
		}
	}()
	m, _ := ByName("Qwen2.5-7B")
	m.LayerShape(LayerKind("Conv2D"))
}
