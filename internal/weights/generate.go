package weights

import (
	"math/rand"

	"zipserv/internal/bf16"
)

// DefaultSigma is the weight standard deviation used when a layer does
// not override it. LLM weights cluster around σ ∈ [0.01, 0.05]
// depending on layer and initialisation; 0.02 reproduces the §3.1
// entropy band (2.5–2.8 bits).
const DefaultSigma = 0.02

// sigmaForKind gives each layer kind a slightly different spread, the
// way real checkpoints vary per-layer (down-projections are wider,
// embeddings tighter). The variation exercises the per-matrix window
// selection without leaving the paper's statistical regime.
func sigmaForKind(kind LayerKind) float64 {
	switch kind {
	case QKVProj:
		return 0.020
	case OProj:
		return 0.018
	case GateUpProj:
		return 0.022
	case DownProj:
		return 0.028
	case LMHead:
		return 0.012
	default:
		return DefaultSigma
	}
}

// Gaussian generates a rows×cols BF16 matrix of N(0, σ²) draws with a
// deterministic seed. It is the paper's Appendix-A weight model made
// concrete.
func Gaussian(rows, cols int, sigma float64, seed int64) *bf16.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := bf16.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = bf16.FromFloat32(float32(rng.NormFloat64() * sigma))
	}
	return m
}

// GaussianWithOutliers generates Gaussian weights where a fraction of
// elements is replaced by a 100×-wider distribution — the heavy-tail
// structure (QLoRA-style outliers) that produces TCA-TBE fallback
// elements in realistic proportions.
func GaussianWithOutliers(rows, cols int, sigma, outlierFrac float64, seed int64) *bf16.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := bf16.NewMatrix(rows, cols)
	for i := range m.Data {
		s := sigma
		if rng.Float64() < outlierFrac {
			s = sigma * 100
		}
		m.Data[i] = bf16.FromFloat32(float32(rng.NormFloat64() * s))
	}
	return m
}

// LayerMatrix materialises the weight matrix of one layer of a model,
// seeded deterministically by model name, kind and layer index. Large
// models' LM heads run to hundreds of millions of elements — callers
// benchmarking shapes only should use the Shape methods instead.
func LayerMatrix(m Model, kind LayerKind, layerIdx int) *bf16.Matrix {
	s := m.LayerShape(kind)
	return Gaussian(s.M, s.K, sigmaForKind(kind), layerSeed(m.Name, kind, layerIdx))
}

// SampledLayerMatrix materialises a proportionally shrunken version of
// a layer (both dimensions divided by shrink, rounded up to a tile
// multiple of 64) so statistical experiments can cover the whole zoo
// without allocating hundreds of gigabytes. The exponent statistics
// are invariant to matrix size, which is what those experiments
// measure.
func SampledLayerMatrix(m Model, kind LayerKind, layerIdx, shrink int) *bf16.Matrix {
	if shrink < 1 {
		shrink = 1
	}
	s := m.LayerShape(kind)
	r := roundUp64(s.M / shrink)
	c := roundUp64(s.K / shrink)
	return Gaussian(r, c, sigmaForKind(kind), layerSeed(m.Name, kind, layerIdx))
}

func roundUp64(x int) int {
	if x < 64 {
		return 64
	}
	return (x + 63) / 64 * 64
}

// layerSeed derives a stable seed from the layer identity.
func layerSeed(model string, kind LayerKind, layerIdx int) int64 {
	h := int64(1469598103934665603) // FNV-1a offset basis
	mix := func(s string) {
		for _, b := range []byte(s) {
			h ^= int64(b)
			h *= 1099511628211
		}
	}
	mix(model)
	mix(string(kind))
	h ^= int64(layerIdx)
	h *= 1099511628211
	return h
}
