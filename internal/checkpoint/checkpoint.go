// Package checkpoint implements lossless model-checkpoint compression
// with TCA-TBE — the third extension direction of §7 of the ZipServ
// paper ("efficient model checkpointing", following LMC and ZipNN).
//
// A checkpoint is a named collection of BF16 tensors serialised into a
// single stream: a manifest (names, shapes, offsets, per-tensor CRC)
// followed by each tensor's TCA-TBE encoding. Tensors compress in
// parallel across CPU cores (the paper's offline compressor used a
// 16-core Xeon), and loading supports both full restore and lazy
// single-tensor access by manifest offset — what a serving engine does
// when sharding a model across GPUs.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"zipserv/internal/bf16"
	"zipserv/internal/core"
)

var magic = [4]byte{'Z', 'C', 'K', 'P'}

const formatVersion = 1

// maxTensors bounds manifest allocation from hostile headers.
const maxTensors = 1 << 20

// Writer assembles a checkpoint.
type Writer struct {
	opts    core.Options
	tensors []namedTensor
}

type namedTensor struct {
	name string
	m    *bf16.Matrix
}

// NewWriter returns a checkpoint writer using the default TCA-TBE
// options.
func NewWriter() *Writer {
	return &Writer{opts: core.DefaultOptions()}
}

// NewWriterWithOptions returns a writer with explicit codec options.
func NewWriterWithOptions(opts core.Options) *Writer {
	return &Writer{opts: opts}
}

// Add queues a tensor under the given name. Names must be unique and
// non-empty; tensors are written sorted by name for determinism.
func (w *Writer) Add(name string, m *bf16.Matrix) error {
	if name == "" {
		return fmt.Errorf("checkpoint: empty tensor name")
	}
	for _, t := range w.tensors {
		if t.name == name {
			return fmt.Errorf("checkpoint: duplicate tensor %q", name)
		}
	}
	if m == nil || m.Rows <= 0 || m.Cols <= 0 {
		return fmt.Errorf("checkpoint: tensor %q is empty", name)
	}
	w.tensors = append(w.tensors, namedTensor{name, m})
	return nil
}

// Stats reports the outcome of a WriteTo.
type Stats struct {
	Tensors          int
	UncompressedSize int64
	CompressedSize   int64
}

// Ratio returns UncompressedSize / CompressedSize.
func (s Stats) Ratio() float64 {
	if s.CompressedSize == 0 {
		return 0
	}
	return float64(s.UncompressedSize) / float64(s.CompressedSize)
}

// Write compresses all queued tensors (in parallel across GOMAXPROCS
// workers) and writes the checkpoint stream.
func (w *Writer) Write(out io.Writer) (Stats, error) {
	var st Stats
	if len(w.tensors) == 0 {
		return st, fmt.Errorf("checkpoint: no tensors queued")
	}
	tensors := append([]namedTensor(nil), w.tensors...)
	sort.Slice(tensors, func(i, j int) bool { return tensors[i].name < tensors[j].name })

	// Parallel compression: each worker compresses and serialises its
	// tensors into private buffers; assembly is sequential.
	blobs := make([][]byte, len(tensors))
	errs := make([]error, len(tensors))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range tensors {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cm, err := core.CompressWithOptions(tensors[i].m, w.opts)
			if err != nil {
				errs[i] = fmt.Errorf("tensor %q: %w", tensors[i].name, err)
				return
			}
			var buf bytes.Buffer
			if _, err := cm.WriteTo(&buf); err != nil {
				errs[i] = fmt.Errorf("tensor %q: %w", tensors[i].name, err)
				return
			}
			blobs[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return st, fmt.Errorf("checkpoint: %w", err)
		}
	}

	bw := bufio.NewWriter(out)
	// Header.
	if err := binary.Write(bw, binary.LittleEndian, struct {
		Magic   [4]byte
		Version uint16
		Count   uint32
	}{magic, formatVersion, uint32(len(tensors))}); err != nil {
		return st, err
	}
	// Manifest: per tensor name, shape and blob length. Offsets are
	// implied by the cumulative sum, which the reader reconstructs.
	for i, t := range tensors {
		if err := writeString(bw, t.name); err != nil {
			return st, err
		}
		if err := binary.Write(bw, binary.LittleEndian, struct {
			Rows, Cols uint32
			BlobLen    uint64
		}{uint32(t.m.Rows), uint32(t.m.Cols), uint64(len(blobs[i]))}); err != nil {
			return st, err
		}
	}
	// Payloads.
	for i, blob := range blobs {
		if _, err := bw.Write(blob); err != nil {
			return st, err
		}
		st.UncompressedSize += int64(tensors[i].m.SizeBytes())
		st.CompressedSize += int64(len(blob))
	}
	st.Tensors = len(tensors)
	if err := bw.Flush(); err != nil {
		return st, err
	}
	return st, nil
}

// Entry describes one tensor in a loaded checkpoint's manifest.
type Entry struct {
	Name       string
	Rows, Cols int
	BlobLen    int64
	offset     int64 // into the payload region
}

// Checkpoint is a loaded (but not necessarily decompressed) checkpoint.
type Checkpoint struct {
	entries []Entry
	byName  map[string]int
	payload []byte
}

// Read parses a checkpoint stream into memory. Tensor payloads stay
// compressed until requested.
func Read(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	var head struct {
		Magic   [4]byte
		Version uint16
		Count   uint32
	}
	if err := binary.Read(br, binary.LittleEndian, &head); err != nil {
		return nil, fmt.Errorf("checkpoint: header: %w", err)
	}
	if head.Magic != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", head.Magic[:])
	}
	if head.Version != formatVersion {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", head.Version)
	}
	if head.Count == 0 || head.Count > maxTensors {
		return nil, fmt.Errorf("checkpoint: implausible tensor count %d", head.Count)
	}
	ck := &Checkpoint{byName: make(map[string]int, head.Count)}
	var offset int64
	for i := 0; i < int(head.Count); i++ {
		name, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: manifest entry %d: %w", i, err)
		}
		var meta struct {
			Rows, Cols uint32
			BlobLen    uint64
		}
		if err := binary.Read(br, binary.LittleEndian, &meta); err != nil {
			return nil, fmt.Errorf("checkpoint: manifest entry %q: %w", name, err)
		}
		if _, dup := ck.byName[name]; dup {
			return nil, fmt.Errorf("checkpoint: duplicate tensor %q in manifest", name)
		}
		e := Entry{
			Name: name, Rows: int(meta.Rows), Cols: int(meta.Cols),
			BlobLen: int64(meta.BlobLen), offset: offset,
		}
		offset += e.BlobLen
		ck.byName[name] = len(ck.entries)
		ck.entries = append(ck.entries, e)
	}
	payload, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: payload: %w", err)
	}
	if int64(len(payload)) != offset {
		return nil, fmt.Errorf("checkpoint: payload is %d bytes, manifest expects %d", len(payload), offset)
	}
	ck.payload = payload
	return ck, nil
}

// Entries lists the manifest in name order.
func (c *Checkpoint) Entries() []Entry {
	return append([]Entry(nil), c.entries...)
}

// Tensor decompresses one tensor by name, verifying its CRC and shape.
func (c *Checkpoint) Tensor(name string) (*bf16.Matrix, error) {
	idx, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("checkpoint: no tensor %q", name)
	}
	e := c.entries[idx]
	blob := c.payload[e.offset : e.offset+e.BlobLen]
	var cm core.Compressed
	if _, err := cm.ReadFrom(bytes.NewReader(blob)); err != nil {
		return nil, fmt.Errorf("checkpoint: tensor %q: %w", name, err)
	}
	m, err := core.Decompress(&cm)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: tensor %q: %w", name, err)
	}
	if m.Rows != e.Rows || m.Cols != e.Cols {
		return nil, fmt.Errorf("checkpoint: tensor %q decoded as %dx%d, manifest says %dx%d",
			name, m.Rows, m.Cols, e.Rows, e.Cols)
	}
	return m, nil
}

// All decompresses every tensor (in parallel) into a name-keyed map.
func (c *Checkpoint) All() (map[string]*bf16.Matrix, error) {
	out := make(map[string]*bf16.Matrix, len(c.entries))
	errs := make([]error, len(c.entries))
	mats := make([]*bf16.Matrix, len(c.entries))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range c.entries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			mats[i], errs[i] = c.Tensor(c.entries[i].Name)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		out[c.entries[i].Name] = mats[i]
	}
	return out, nil
}

func writeString(w io.Writer, s string) error {
	if len(s) > 4096 {
		return fmt.Errorf("checkpoint: tensor name longer than 4096 bytes")
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w.(io.Writer), s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 4096 {
		return "", fmt.Errorf("name length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
