package checkpoint

import (
	"bytes"
	"strings"
	"testing"

	"zipserv/internal/bf16"
	"zipserv/internal/core"
	"zipserv/internal/weights"
)

func buildCheckpoint(t *testing.T) (map[string]*bf16.Matrix, []byte, Stats) {
	t.Helper()
	tensors := map[string]*bf16.Matrix{
		"layers.0.qkv":    weights.Gaussian(192, 128, 0.020, 1),
		"layers.0.o":      weights.Gaussian(128, 128, 0.018, 2),
		"layers.0.gateup": weights.Gaussian(448, 128, 0.022, 3),
		"layers.0.down":   weights.Gaussian(128, 224, 0.028, 4),
		"lm_head":         weights.Gaussian(512, 128, 0.012, 5),
	}
	w := NewWriter()
	for name, m := range tensors {
		if err := w.Add(name, m); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	st, err := w.Write(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return tensors, buf.Bytes(), st
}

func TestRoundTrip(t *testing.T) {
	tensors, data, st := buildCheckpoint(t)
	if st.Tensors != len(tensors) {
		t.Errorf("Stats.Tensors = %d, want %d", st.Tensors, len(tensors))
	}
	if st.Ratio() < 1.3 {
		t.Errorf("checkpoint ratio %.3f < 1.3", st.Ratio())
	}
	ck, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	all, err := ck.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(tensors) {
		t.Fatalf("All() returned %d tensors, want %d", len(all), len(tensors))
	}
	for name, orig := range tensors {
		got, ok := all[name]
		if !ok {
			t.Fatalf("tensor %q missing", name)
		}
		if !orig.Equal(got) {
			t.Errorf("tensor %q not bit-exact", name)
		}
	}
}

func TestLazySingleTensor(t *testing.T) {
	tensors, data, _ := buildCheckpoint(t)
	ck, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ck.Tensor("lm_head")
	if err != nil {
		t.Fatal(err)
	}
	if !tensors["lm_head"].Equal(m) {
		t.Error("lazy tensor load not bit-exact")
	}
	if _, err := ck.Tensor("missing"); err == nil {
		t.Error("missing tensor returned")
	}
}

func TestManifestOrderDeterministic(t *testing.T) {
	_, data, _ := buildCheckpoint(t)
	ck, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	entries := ck.Entries()
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Name >= entries[i].Name {
			t.Fatalf("manifest not sorted: %q before %q", entries[i-1].Name, entries[i].Name)
		}
	}
	// Byte-identical on rewrite (determinism of the whole pipeline).
	tensors, data2, _ := buildCheckpoint(t)
	_ = tensors
	if !bytes.Equal(data, data2) {
		t.Error("identical inputs produced different checkpoint bytes")
	}
}

func TestWriterValidation(t *testing.T) {
	w := NewWriter()
	if err := w.Add("", bf16.NewMatrix(4, 4)); err == nil {
		t.Error("empty name accepted")
	}
	if err := w.Add("x", nil); err == nil {
		t.Error("nil tensor accepted")
	}
	if err := w.Add("x", &bf16.Matrix{}); err == nil {
		t.Error("empty tensor accepted")
	}
	if err := w.Add("x", weights.Gaussian(8, 8, 0.02, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Add("x", weights.Gaussian(8, 8, 0.02, 2)); err == nil {
		t.Error("duplicate name accepted")
	}
	var empty Writer
	if _, err := empty.Write(&bytes.Buffer{}); err == nil {
		t.Error("empty checkpoint accepted")
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	_, data, _ := buildCheckpoint(t)

	t.Run("badMagic", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[0] = 'X'
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Error("bad magic accepted")
		}
	})
	t.Run("truncatedPayload", func(t *testing.T) {
		if _, err := Read(bytes.NewReader(data[:len(data)-10])); err == nil {
			t.Error("truncated payload accepted")
		}
	})
	t.Run("flippedPayloadByte", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[len(bad)-100] ^= 0xFF
		ck, err := Read(bytes.NewReader(bad))
		if err != nil {
			return // rejected at parse: fine
		}
		// Must be rejected at tensor decode (per-tensor CRC).
		failed := false
		for _, e := range ck.Entries() {
			if _, err := ck.Tensor(e.Name); err != nil {
				failed = true
			}
		}
		if !failed {
			t.Error("flipped payload byte produced no error on any tensor")
		}
	})
	t.Run("hostileCount", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		// Count field lives at offset 6.
		bad[6], bad[7], bad[8], bad[9] = 0xFF, 0xFF, 0xFF, 0xFF
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Error("hostile tensor count accepted")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Read(bytes.NewReader(nil)); err == nil {
			t.Error("empty stream accepted")
		}
	})
}

func TestCustomOptions(t *testing.T) {
	w := NewWriterWithOptions(core.Options{CodewordBits: 4, Selection: core.WindowSelection})
	orig := weights.Gaussian(128, 128, 0.02, 9)
	if err := w.Add("t", orig); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := w.Write(&buf); err != nil {
		t.Fatal(err)
	}
	ck, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ck.Tensor("t")
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(m) {
		t.Error("4-bit checkpoint not bit-exact")
	}
}

func TestModelScaleCheckpoint(t *testing.T) {
	// A realistic multi-layer model: every sampled layer of
	// LLaMA3.1-8B, written and restored bit-exactly.
	if testing.Short() {
		t.Skip("short mode")
	}
	model, err := weights.ByName("LLaMA3.1-8B")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter()
	want := map[string]*bf16.Matrix{}
	for _, kind := range weights.BlockLayerKinds {
		for layer := 0; layer < 2; layer++ {
			name := strings.ToLower(string(kind)) + "." + string(rune('0'+layer))
			m := weights.SampledLayerMatrix(model, kind, layer, 32)
			want[name] = m
			if err := w.Add(name, m); err != nil {
				t.Fatal(err)
			}
		}
	}
	var buf bytes.Buffer
	st, err := w.Write(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ratio() < 1.35 {
		t.Errorf("model checkpoint ratio %.3f < 1.35", st.Ratio())
	}
	ck, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range want {
		got, err := ck.Tensor(name)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Equal(got) {
			t.Errorf("tensor %q not bit-exact", name)
		}
	}
}
