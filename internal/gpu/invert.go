package gpu

// InvertCost solves the scheduling inverse of a monotone cost model:
// given a per-step time budget and a nondecreasing cost function f over
// an integer knob (tokens, batch size, split count), it returns the
// largest x in [lo, hi] with f(x) <= budget. When even f(lo) exceeds
// the budget it returns lo — callers clamp to their floor, since a
// scheduler must still make progress. The adaptive chunked-prefill
// controller uses it every iteration to turn "how long may this step
// take" into "how many prompt tokens may this step mix in", so f should
// be cheap; it is evaluated O(log(hi−lo)) times.
func InvertCost(lo, hi int, budget float64, f func(int) float64) int {
	if hi < lo {
		hi = lo
	}
	if f(lo) > budget {
		return lo
	}
	if f(hi) <= budget {
		return hi
	}
	// Invariant: f(lo) <= budget < f(hi).
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if f(mid) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
