package gpu

import (
	"zipserv/internal/codec"
)

// Micro reproduces the Nsight-Compute-style micro-level analysis of
// Figure 12 for one GEMM shape: the instruction mix of the on-the-fly
// decoder (12a), the DRAM traffic reduction and pipe utilisations
// (12b), and shared-memory bank conflicts (12c).
type Micro struct {
	Shape    Shape
	Elements int64

	// Decode instruction totals on the integer pipe (Figure 12a).
	LOP3, IADD, SHF, POPC float64

	// DRAM read traffic, dense vs fused (Figure 12b: −29.3%).
	DRAMReadDense, DRAMReadZip int64
	DRAMReduction              float64 // fraction saved

	// Pipe utilisations (Figure 12b): ZipGEMM's Tensor Core
	// utilisation relative to cuBLAS, and its ALU utilisation.
	TCUtilVsCuBLAS float64
	ALUUtil        float64

	// Shared-memory bank conflicts (Figure 12c).
	BankConflictsZipServ float64
	BankConflictsDietGPU float64
}

// InstructionRates returns the decoder's expected per-element
// instruction counts for an n-bit codeword with the given coverage,
// broken down by opcode class. The totals agree with
// core.DecodeALUOpsPerElement and are cross-checked against the
// functional decoder's Counters in tests.
func InstructionRates(n int, coverage float64) (lop3, iadd, shf, popc float64) {
	lop3 = float64(n-1)/2 + 1 + coverage*float64(n-1+2)
	iadd = 1 + coverage + (1 - coverage)
	shf = 2 + coverage*float64(n+2)
	popc = 1
	return lop3, iadd, shf, popc
}

// MicroAnalysis computes the Figure 12 profile for one shape on one
// device.
func MicroAnalysis(spec Spec, s Shape, comp Compression) Micro {
	elems := int64(s.M) * int64(s.K)
	lop3, iadd, shf, popc := InstructionRates(comp.CodewordBits, comp.Coverage)

	dense := s.WeightBytes() + s.ActivationBytes()
	zipped := comp.CompressedWeightBytes(s) + s.ActivationBytes()

	zip := ZipGEMM(spec, s, comp)
	alUtil := zip.ALU / zip.Total

	return Micro{
		Shape:    s,
		Elements: elems,
		LOP3:     lop3 * float64(elems),
		IADD:     iadd * float64(elems),
		SHF:      shf * float64(elems),
		POPC:     popc * float64(elems),

		DRAMReadDense: dense,
		DRAMReadZip:   zipped,
		DRAMReduction: 1 - float64(zipped)/float64(dense),

		TCUtilVsCuBLAS: effTCZip / effTCCuBLAS,
		ALUUtil:        alUtil,

		BankConflictsZipServ: codecProfiles[codec.NameZipServ].conflictsPerElem * float64(elems),
		BankConflictsDietGPU: codecProfiles[codec.NameDietGPU].conflictsPerElem * float64(elems),
	}
}
