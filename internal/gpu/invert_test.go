package gpu

import "testing"

func TestInvertCost(t *testing.T) {
	linear := func(x int) float64 { return float64(x) }
	cases := []struct {
		name   string
		lo, hi int
		budget float64
		f      func(int) float64
		want   int
	}{
		{"interior", 1, 100, 37.5, linear, 37},
		{"exact boundary", 1, 100, 64, linear, 64},
		{"budget above ceiling", 1, 100, 1e9, linear, 100},
		{"budget below floor", 10, 100, 3, linear, 10},
		{"degenerate range", 5, 5, 100, linear, 5},
		{"inverted range clamps", 8, 2, 100, linear, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := InvertCost(tc.lo, tc.hi, tc.budget, tc.f); got != tc.want {
				t.Fatalf("InvertCost(%d, %d, %v) = %d, want %d", tc.lo, tc.hi, tc.budget, got, tc.want)
			}
		})
	}
}

// TestInvertCostAgainstCostModel closes the loop on the real kernel
// pricing the adaptive chunk controller inverts: the returned token
// count must cost no more than the budget, and one more token must
// cost more (or be the ceiling).
func TestInvertCostAgainstCostModel(t *testing.T) {
	spec := MustByName("RTX4090")
	cost := func(n int) float64 {
		return CuBLAS(spec, Shape{M: 4096, K: 4096, N: n}).Total
	}
	budget := cost(512) // an achievable interior target
	got := InvertCost(1, 4096, budget, cost)
	if cost(got) > budget {
		t.Fatalf("InvertCost returned %d tokens costing %.9fs > budget %.9fs", got, cost(got), budget)
	}
	if got < 4096 && cost(got+1) <= budget {
		t.Fatalf("InvertCost returned %d but %d still fits the budget", got, got+1)
	}
}
