// Package gpu models the GPUs of the ZipServ evaluation (§6) and
// prices GEMM / decompression kernels on them with a
// roofline-with-overlap cost model.
//
// The model is the substitution for the paper's real hardware
// (DESIGN.md §1): each kernel's wall time is the maximum of its three
// overlapped resource streams — DRAM traffic, integer-ALU decode work
// and Tensor Core math — divided by per-stream achievable
// efficiencies, plus fixed launch overhead. The constants are
// calibrated against the paper's published anchors (e.g. cuBLAS
// GateUp_proj on A100 = 0.215 ms, ZipGEMM on RTX4090 = 0.195 ms,
// DietGPU at 43.7% of peak bandwidth) and validated by the figure
// tests; absolute times are approximations, but orderings, ratios and
// crossover points — the paper's actual claims — are reproduced.
package gpu

import (
	"fmt"
	"sort"
)

// Class partitions GPUs the way §6.3/§7 does.
type Class string

// GPU market classes.
const (
	Consumer   Class = "consumer"   // RTX4090, RTX5090
	Inference  Class = "inference"  // L40S
	Datacenter Class = "datacenter" // A100, H800 (training-oriented)
	MatrixISA  Class = "matrix-isa" // non-GPU matrix accelerators (§7)
)

// Spec describes one accelerator.
type Spec struct {
	Name     string
	Class    Class
	SMs      int
	ClockGHz float64

	// BF16TFLOPS is dense Tensor Core BF16 throughput (no sparsity).
	BF16TFLOPS float64

	// MemBWGBps is peak DRAM bandwidth in GB/s.
	MemBWGBps float64

	// VRAMGiB is device memory capacity.
	VRAMGiB float64

	// IntLanesPerSM is the number of INT32 ALU lanes per SM per clock,
	// the resource the TCA-TBE decoder consumes (LOP3/IADD/POPC issue
	// on the integer pipe).
	IntLanesPerSM int

	// NVLinkGBps is the per-GPU interconnect bandwidth for tensor
	// parallelism (0 = PCIe only, modelled at 32 GB/s effective).
	NVLinkGBps float64
}

// ALUOpsPerSec returns peak integer-pipe throughput.
func (s Spec) ALUOpsPerSec() float64 {
	return float64(s.SMs) * s.ClockGHz * 1e9 * float64(s.IntLanesPerSM)
}

// InterconnectGBps returns the effective inter-GPU bandwidth.
func (s Spec) InterconnectGBps() float64 {
	if s.NVLinkGBps > 0 {
		return s.NVLinkGBps
	}
	return 32 // PCIe 4.0 x16 effective
}

// The evaluation platforms of §6 (published specifications), plus the
// §7 extension targets.
var specs = map[string]Spec{
	"RTX4090": {
		Name: "RTX4090", Class: Consumer, SMs: 128, ClockGHz: 2.52,
		BF16TFLOPS: 165.2, MemBWGBps: 1008, VRAMGiB: 24, IntLanesPerSM: 64,
	},
	"L40S": {
		Name: "L40S", Class: Inference, SMs: 142, ClockGHz: 2.52,
		BF16TFLOPS: 181.0, MemBWGBps: 864, VRAMGiB: 48, IntLanesPerSM: 64,
	},
	"RTX5090": {
		Name: "RTX5090", Class: Consumer, SMs: 170, ClockGHz: 2.41,
		BF16TFLOPS: 209.5, MemBWGBps: 1792, VRAMGiB: 32, IntLanesPerSM: 64,
	},
	"A100": {
		// 40 GB PCIe variant, matching the paper's cuBLAS anchor of
		// 0.215 ms on the LLaMA3.1-8B GateUp_proj at batch 32.
		Name: "A100", Class: Datacenter, SMs: 108, ClockGHz: 1.41,
		BF16TFLOPS: 312, MemBWGBps: 1555, VRAMGiB: 40, IntLanesPerSM: 64,
		NVLinkGBps: 300,
	},
	"H800": {
		Name: "H800", Class: Datacenter, SMs: 132, ClockGHz: 1.98,
		BF16TFLOPS: 989.5, MemBWGBps: 3350, VRAMGiB: 80, IntLanesPerSM: 64,
		NVLinkGBps: 200, // H800 = H100 with capped NVLink
	},
	// §7 extension targets: matrix accelerators with the integer and
	// popcount support the decoder needs.
	"AMX-SPR": {
		Name: "AMX-SPR", Class: MatrixISA, SMs: 56, ClockGHz: 2.0,
		BF16TFLOPS: 55, MemBWGBps: 307, VRAMGiB: 512, IntLanesPerSM: 32,
	},
	"MI300X": {
		Name: "MI300X", Class: MatrixISA, SMs: 304, ClockGHz: 2.1,
		BF16TFLOPS: 1307, MemBWGBps: 5300, VRAMGiB: 192, IntLanesPerSM: 64,
		NVLinkGBps: 448,
	},
}

// ByName returns the spec of a modelled accelerator.
func ByName(name string) (Spec, error) {
	s, ok := specs[name]
	if !ok {
		return Spec{}, fmt.Errorf("gpu: unknown device %q (have %v)", name, Names())
	}
	return s, nil
}

// MustByName is ByName for static device names; it panics on unknown
// devices, which indicates a programming error, not bad input.
func MustByName(name string) Spec {
	s, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names lists all modelled devices in sorted order.
func Names() []string {
	out := make([]string, 0, len(specs))
	for n := range specs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EvaluationGPUs returns the five NVIDIA devices of §6 in the paper's
// order.
func EvaluationGPUs() []Spec {
	return []Spec{
		MustByName("RTX4090"), MustByName("L40S"), MustByName("RTX5090"),
		MustByName("A100"), MustByName("H800"),
	}
}
