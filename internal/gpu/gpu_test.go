package gpu

import (
	"math"
	"testing"

	"zipserv/internal/codec"
	"zipserv/internal/core"
	"zipserv/internal/weights"
)

// gateUp8B is the LLaMA3.1-8B GateUp_proj at batch 32: the shape of
// the paper's Figure 12 micro-analysis and Figure 14 anchors.
var gateUp8B = Shape{M: 28672, K: 4096, N: 32}

func TestSpecRegistry(t *testing.T) {
	if len(Names()) < 7 {
		t.Errorf("only %d devices modelled, want ≥ 7", len(Names()))
	}
	if _, err := ByName("TPU"); err == nil {
		t.Error("unknown device accepted")
	}
	for _, s := range EvaluationGPUs() {
		if s.MemBWGBps <= 0 || s.BF16TFLOPS <= 0 || s.SMs <= 0 {
			t.Errorf("%s: incomplete spec %+v", s.Name, s)
		}
	}
	// §7: the consumer parts clock much higher than A100 (2520 vs
	// 1410 MHz), the property that makes the ALU workload hideable.
	if MustByName("RTX4090").ClockGHz <= MustByName("A100").ClockGHz {
		t.Error("RTX4090 must clock higher than A100")
	}
}

func TestShapeArithmetic(t *testing.T) {
	s := Shape{M: 4, K: 8, N: 2}
	if s.FLOPs() != 128 {
		t.Errorf("FLOPs = %d, want 128", s.FLOPs())
	}
	if s.WeightBytes() != 64 || s.ActivationBytes() != 32 || s.OutputBytes() != 16 {
		t.Errorf("bytes = %d/%d/%d, want 64/32/16", s.WeightBytes(), s.ActivationBytes(), s.OutputBytes())
	}
}

func TestCuBLASAnchorA100(t *testing.T) {
	// §6.3: cuBLAS_TC on A100 takes 0.215 ms for the LLaMA3.1-8B
	// GateUp_proj at batch 32. The model must land within 20%.
	got := CuBLAS(MustByName("A100"), gateUp8B).Total
	if rel := math.Abs(got-215e-6) / 215e-6; rel > 0.20 {
		t.Errorf("A100 cuBLAS GateUp = %.1f µs, paper 215 µs (rel err %.2f)", got*1e6, rel)
	}
}

func TestZipGEMMAnchorRTX4090(t *testing.T) {
	// §6.3: ZipGEMM on RTX4090 takes 0.195 ms for the same shape.
	got := ZipGEMM(MustByName("RTX4090"), gateUp8B, DefaultCompression()).Total
	if rel := math.Abs(got-195e-6) / 195e-6; rel > 0.20 {
		t.Errorf("RTX4090 ZipGEMM GateUp = %.1f µs, paper 195 µs (rel err %.2f)", got*1e6, rel)
	}
}

func TestZipGEMMBeatsCuBLASInDecodeRegime(t *testing.T) {
	// Figure 11: on RTX4090 and L40S, ZipGEMM beats cuBLAS on the
	// large decode-stage layers, with speedups in the 1.2–2.3× band.
	comp := DefaultCompression()
	for _, dev := range []string{"RTX4090", "L40S", "RTX5090"} {
		spec := MustByName(dev)
		for _, n := range []int{8, 16, 32} {
			s := Shape{M: 28672, K: 4096, N: n}
			cu := CuBLAS(spec, s).Total
			zip := ZipGEMM(spec, s, comp).Total
			speedup := cu / zip
			if speedup < 1.15 || speedup > 2.35 {
				t.Errorf("%s N=%d: speedup %.2f outside [1.15, 2.35]", dev, n, speedup)
			}
		}
	}
}

func TestSmallLayerSlowdown(t *testing.T) {
	// Figure 11(c): the LLaMA3.1-8B O_proj (4096×4096) on L40S runs at
	// ~0.79× — too few BlockTiles to saturate the SMs without split-K
	// tuning.
	spec := MustByName("L40S")
	s := Shape{M: 4096, K: 4096, N: 32}
	cu := CuBLAS(spec, s).Total
	zip := ZipGEMM(spec, s, DefaultCompression()).Total
	speedup := cu / zip
	if speedup >= 1.0 {
		t.Errorf("O_proj speedup %.2f, paper reports a slowdown (0.79×)", speedup)
	}
	if speedup < 0.55 {
		t.Errorf("O_proj speedup %.2f, too severe (paper: 0.79×)", speedup)
	}
	zk := ZipGEMM(spec, s, DefaultCompression())
	if zk.ParEff >= 1 {
		t.Error("small-layer slowdown should come from parallelism starvation")
	}
}

func TestDownProjGoodSpeedup(t *testing.T) {
	// Figure 11(c): Down_proj (4096×14336) recovers parallelism via
	// split-K chunks and reaches ≈1.64× on L40S.
	spec := MustByName("L40S")
	s := Shape{M: 4096, K: 14336, N: 32}
	speedup := CuBLAS(spec, s).Total / ZipGEMM(spec, s, DefaultCompression()).Total
	if speedup < 1.3 || speedup > 2.0 {
		t.Errorf("Down_proj speedup %.2f outside [1.3, 2.0] (paper: 1.64×)", speedup)
	}
}

func TestDecoupledBaselinesAreSlowdowns(t *testing.T) {
	// Figure 11: DietGPU/nvCOMP/DFloat11 decoupled pipelines run at
	// 0.17–0.34× of cuBLAS — decompression overhead exceeding GEMM
	// time. DFloat11 must be the fastest of the three (Figure 1).
	spec := MustByName("L40S")
	s := Shape{M: 28672, K: 4096, N: 16}
	cu := CuBLAS(spec, s).Total
	speedups := map[string]float64{}
	for _, name := range []string{codec.NameDietGPU, codec.NameNvComp, codec.NameDFloat11} {
		// Entropy coders compress slightly better than TCA-TBE (§4.2).
		p, err := Decoupled(spec, s, 1.50, name)
		if err != nil {
			t.Fatal(err)
		}
		speedups[name] = cu / p.Total
	}
	t.Logf("decoupled speedups: %v", speedups)
	for name, sp := range speedups {
		if sp < 0.12 || sp > 0.45 {
			t.Errorf("%s speedup %.3f outside the paper's 0.17–0.34 band (±tolerance)", name, sp)
		}
	}
	if !(speedups[codec.NameDFloat11] > speedups[codec.NameNvComp] &&
		speedups[codec.NameNvComp] > speedups[codec.NameDietGPU]) {
		t.Errorf("ordering must be DFloat11 > nvCOMP > DietGPU, got %v", speedups)
	}
}

func TestFig1DecompressionDominatesGEMM(t *testing.T) {
	// Figure 1: on L40S GateUp_proj layers, the decoupled
	// decompression step alone takes 1.56–3.44× the GEMM time.
	spec := MustByName("L40S")
	s := Shape{M: 28672, K: 4096, N: 16}
	gemm := CuBLAS(spec, s).Total
	for _, name := range []string{codec.NameDietGPU, codec.NameNvComp, codec.NameDFloat11} {
		d, err := DecompressTime(spec, s.WeightBytes(), 1.50, name)
		if err != nil {
			t.Fatal(err)
		}
		ratio := d / gemm
		if ratio < 1.3 || ratio > 3.9 {
			t.Errorf("%s: decompression/GEMM = %.2f, paper band 1.56–3.44", name, ratio)
		}
	}
}

func TestFig13StandaloneDecompressionSpeedups(t *testing.T) {
	// Figure 13: ZipServ-Decomp beats DietGPU by ≈2.14×, nvCOMP by
	// ≈1.83×, DFloat11 by ≈1.10×.
	spec := MustByName("L40S")
	blockBytes := int64(437 * 1 << 20) // one LLaMA3.1-8B transformer block
	zs, err := DecompressTime(spec, blockBytes, 1.42, codec.NameZipServ)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string]float64{
		codec.NameDietGPU:  2.14,
		codec.NameNvComp:   1.83,
		codec.NameDFloat11: 1.10,
	}
	for name, want := range wants {
		d, err := DecompressTime(spec, blockBytes, 1.50, name)
		if err != nil {
			t.Fatal(err)
		}
		got := d / zs
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("%s: ZipServ-Decomp speedup %.2f, paper %.2f (>15%% off)", name, got, want)
		}
	}
}

func TestStageAwareSwitchesAtPrefill(t *testing.T) {
	// Figure 15: fused wins for decode-sized N (1–128); by N=8192 the
	// decoupled pipeline wins with only a few percent overhead over
	// pure cuBLAS.
	spec := MustByName("RTX4090")
	comp := DefaultCompression()
	for _, n := range []int{1, 8, 32, 128} {
		_, fused := StageAware(spec, Shape{M: 4096, K: 4096, N: n}, comp)
		if !fused {
			t.Errorf("N=%d: stage-aware picked decoupled in the decode regime", n)
		}
	}
	for _, n := range []int{8192, 16384} {
		kt, fused := StageAware(spec, Shape{M: 4096, K: 4096, N: n}, comp)
		if fused {
			t.Errorf("N=%d: stage-aware picked fused in the prefill regime", n)
		}
		overhead := kt.Total/CuBLAS(spec, Shape{M: 4096, K: 4096, N: n}).Total - 1
		maxOverhead := 0.06
		if n == 16384 {
			maxOverhead = 0.035
		}
		if overhead > maxOverhead {
			t.Errorf("N=%d: prefill overhead %.1f%%, paper ≤%.0f%%", n, overhead*100, maxOverhead*100)
		}
	}
}

func TestFig14CrossGeneration(t *testing.T) {
	spec5090 := MustByName("RTX5090")
	specH800 := MustByName("H800")
	spec4090 := MustByName("RTX4090")
	specA100 := MustByName("A100")
	comp := DefaultCompression()

	// RTX5090 ZipGEMM still beats its own cuBLAS (forward compatible).
	for _, s := range []Shape{gateUp8B, {M: 65536, K: 5120, N: 32}} {
		if sp := CuBLAS(spec5090, s).Total / ZipGEMM(spec5090, s, comp).Total; sp < 1.15 {
			t.Errorf("RTX5090 %v: speedup %.2f < 1.15", s, sp)
		}
	}

	// §6.3: RTX4090+ZipGEMM lands in the same class as A100 cuBLAS
	// (paper: 9.3% faster on LLaMA, 2.7% slower on Mistral).
	zip4090 := ZipGEMM(spec4090, gateUp8B, comp).Total
	cuA100 := CuBLAS(specA100, gateUp8B).Total
	if r := zip4090 / cuA100; r < 0.75 || r > 1.25 {
		t.Errorf("RTX4090 ZipGEMM / A100 cuBLAS = %.2f, want ≈1 (same class)", r)
	}

	// ZipGEMM narrows the 5090→H800 deficit: the fused-vs-cuBLAS gap
	// to H800 must shrink substantially (paper: 53.3% → 14.1%).
	deficitPlain := CuBLAS(spec5090, gateUp8B).Total/CuBLAS(specH800, gateUp8B).Total - 1
	deficitZip := ZipGEMM(spec5090, gateUp8B, comp).Total/CuBLAS(specH800, gateUp8B).Total - 1
	if deficitZip >= deficitPlain {
		t.Errorf("ZipGEMM did not narrow the datacenter deficit: %.2f → %.2f", deficitPlain, deficitZip)
	}
	if deficitZip > deficitPlain*0.55 {
		t.Errorf("deficit only narrowed %.2f → %.2f; paper shows a much larger reduction", deficitPlain, deficitZip)
	}
}

func TestFig18TrainingGPUsALUBound(t *testing.T) {
	// §7: on A100 the abundant HBM and low clocks make the decode ALU
	// stream the bottleneck, so ZipGEMM can trail cuBLAS — a
	// hardware-software mismatch, not an algorithmic failure.
	specA100 := MustByName("A100")
	comp := DefaultCompression()
	zip := ZipGEMM(specA100, gateUp8B, comp)
	if zip.Bound != "alu" {
		t.Errorf("A100 ZipGEMM bound = %s, want alu", zip.Bound)
	}
	cu := CuBLAS(specA100, gateUp8B)
	if cu.Total > zip.Total*1.05 {
		t.Errorf("A100: cuBLAS (%.0f µs) should not lose clearly to ZipGEMM (%.0f µs)",
			cu.Total*1e6, zip.Total*1e6)
	}
	// But the standalone decompressor remains best-in-class there too.
	zs, _ := DecompressTime(specA100, 1<<30, 1.42, codec.NameZipServ)
	dg, _ := DecompressTime(specA100, 1<<30, 1.50, codec.NameDietGPU)
	if dg/zs < 1.5 {
		t.Errorf("A100 standalone decomp speedup vs DietGPU %.2f < 1.5", dg/zs)
	}
}

func TestE7MarlinComparison(t *testing.T) {
	// §7: Marlin W8A16 at 0.143 ms vs ZipGEMM 0.194 ms on RTX4090 —
	// a 1.36× gap matching the effective bit-width ratio (~11/8).
	spec := MustByName("RTX4090")
	marlin := MarlinW8A16(spec, gateUp8B).Total
	zip := ZipGEMM(spec, gateUp8B, DefaultCompression()).Total
	gap := zip / marlin
	if gap < 1.15 || gap > 1.60 {
		t.Errorf("ZipGEMM/Marlin gap %.2f outside [1.15, 1.60] (paper: 1.36)", gap)
	}
	if rel := math.Abs(marlin-143e-6) / 143e-6; rel > 0.25 {
		t.Errorf("Marlin anchor %.0f µs vs paper 143 µs (rel %.2f)", marlin*1e6, rel)
	}
}

func TestMicroAnalysisFig12(t *testing.T) {
	spec := MustByName("RTX4090")
	m := MicroAnalysis(spec, gateUp8B, DefaultCompression())
	// 12(b): ~29.3% DRAM read reduction.
	if m.DRAMReduction < 0.27 || m.DRAMReduction > 0.31 {
		t.Errorf("DRAM reduction %.3f, paper 0.293", m.DRAMReduction)
	}
	// 12(b): TC utilisation 71.6% of cuBLAS.
	if math.Abs(m.TCUtilVsCuBLAS-0.716) > 0.01 {
		t.Errorf("TC util ratio %.3f, paper 0.716", m.TCUtilVsCuBLAS)
	}
	// ALU utilisation is high but the pipeline hides it (paper: 66%).
	if m.ALUUtil < 0.30 || m.ALUUtil > 0.95 {
		t.Errorf("ALU util %.2f outside plausible band", m.ALUUtil)
	}
	// 12(c): thousands of conflicts for ZipServ vs millions for
	// DietGPU.
	if m.BankConflictsZipServ > 20e3 {
		t.Errorf("ZipServ bank conflicts %.0f, paper ≈4.7K", m.BankConflictsZipServ)
	}
	if m.BankConflictsDietGPU < 1e6 {
		t.Errorf("DietGPU bank conflicts %.0f, paper reports millions", m.BankConflictsDietGPU)
	}
	// 12(a): the integer mix is dominated by LOP3/IADD/SHF with one
	// POPC per element.
	if m.POPC != float64(m.Elements) {
		t.Errorf("POPC = %.0f, want one per element (%d)", m.POPC, m.Elements)
	}
	if m.LOP3 <= float64(m.Elements) || m.SHF <= float64(m.Elements) {
		t.Error("LOP3 and SHF should exceed one op per element")
	}
}

func TestInstructionRatesMatchFunctionalDecoder(t *testing.T) {
	// The analytic instruction rates must agree with the functional
	// decoder's deterministic counters on real compressed data.
	w := weights.Gaussian(256, 256, 0.02, 3)
	cm, err := core.Compress(w)
	if err != nil {
		t.Fatal(err)
	}
	_, ctr, err := core.DecompressCounted(cm)
	if err != nil {
		t.Fatal(err)
	}
	cov := cm.CoverageRatio()
	lop3, iadd, shf, popc := InstructionRates(3, cov)
	checks := []struct {
		name     string
		analytic float64
		measured float64
	}{
		{"LOP3", lop3, float64(ctr.LOP3) / float64(ctr.Elements)},
		{"IADD", iadd, float64(ctr.IADD) / float64(ctr.Elements)},
		{"SHF", shf, float64(ctr.SHF) / float64(ctr.Elements)},
		{"POPC", popc, float64(ctr.POPC) / float64(ctr.Elements)},
	}
	for _, c := range checks {
		if math.Abs(c.analytic-c.measured) > 0.05*math.Max(1, c.measured) {
			t.Errorf("%s: analytic %.3f vs measured %.3f per element", c.name, c.analytic, c.measured)
		}
	}
	// And the aggregate ALU rate agrees with DecodeALUOpsPerElement.
	total := lop3 + iadd + shf + popc
	if d := math.Abs(total - core.DecodeALUOpsPerElement(3, cov)); d > 1e-9 {
		t.Errorf("InstructionRates total %.4f != DecodeALUOpsPerElement %.4f",
			total, core.DecodeALUOpsPerElement(3, cov))
	}
}

func TestDecompressTimeUnknownCodec(t *testing.T) {
	if _, err := DecompressTime(MustByName("L40S"), 1<<20, 1.5, "zstd"); err == nil {
		t.Error("unknown codec accepted")
	}
	if _, err := Decoupled(MustByName("L40S"), gateUp8B, 1.5, "zstd"); err == nil {
		t.Error("unknown codec accepted by Decoupled")
	}
}

func TestStreamTime(t *testing.T) {
	spec := MustByName("RTX4090")
	got := StreamTime(spec, int64(spec.MemBWGBps*1e9), 1.0)
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("StreamTime of one second of bandwidth = %f s", got)
	}
}

func TestRooflineMonotonicity(t *testing.T) {
	// Sanity: once the device is saturated (enough BlockTiles to fill
	// every SM), kernel times grow monotonically with each dimension.
	// Below saturation growing M can legitimately hold time constant —
	// more work arrives with proportionally more parallelism — which
	// is exactly the small-layer effect of Figure 11(c).
	spec := MustByName("L40S")
	comp := DefaultCompression()
	base := Shape{M: 28672, K: 8192, N: 32}
	bigger := []Shape{{57344, 8192, 32}, {28672, 16384, 32}, {28672, 8192, 64}}
	for _, s := range bigger {
		if CuBLAS(spec, s).Total < CuBLAS(spec, base).Total {
			t.Errorf("cuBLAS time decreased growing %v → %v", base, s)
		}
		if ZipGEMM(spec, s, comp).Total < ZipGEMM(spec, base, comp).Total {
			t.Errorf("ZipGEMM time decreased growing %v → %v", base, s)
		}
	}
}

func TestZipGEMMTunedRecoversSmallLayers(t *testing.T) {
	// Future-work ablation (A6): split-K tuning recovers the O_proj
	// slowdown of Figure 11(c). The tuned kernel must beat the default
	// on the starved shape and at least approach parity with cuBLAS.
	spec := MustByName("L40S")
	comp := DefaultCompression()
	s := Shape{M: 4096, K: 4096, N: 32}
	def := ZipGEMM(spec, s, comp)
	tuned, chunk := ZipGEMMTuned(spec, s, comp)
	if tuned.Total >= def.Total {
		t.Errorf("tuned %.1f µs not below default %.1f µs", tuned.Total*1e6, def.Total*1e6)
	}
	if chunk >= 4096 {
		t.Errorf("tuner kept chunk %d on a starved shape", chunk)
	}
	if sp := CuBLAS(spec, s).Total / tuned.Total; sp < 0.95 {
		t.Errorf("tuned O_proj speedup %.2f still well below parity", sp)
	}
	// Saturated shapes must not regress.
	big := Shape{M: 28672, K: 4096, N: 32}
	tunedBig, _ := ZipGEMMTuned(spec, big, comp)
	if tunedBig.Total > ZipGEMM(spec, big, comp).Total+1e-12 {
		t.Error("tuning regressed a saturated shape")
	}
}

func TestSplitKReductionCostCounted(t *testing.T) {
	// Splitting K must not be free: with a tiny chunk the reduction
	// traffic shows up in the memory stream.
	spec := MustByName("L40S")
	comp := DefaultCompression()
	s := Shape{M: 4096, K: 16384, N: 64}
	fine := zipGEMMWithChunk(spec, s, comp, 512)
	coarse := zipGEMMWithChunk(spec, s, comp, 16384)
	if fine.BytesRead <= coarse.BytesRead {
		t.Errorf("split-K reduction traffic missing: %d <= %d", fine.BytesRead, coarse.BytesRead)
	}
}
