package gpu

import (
	"fmt"
	"math"

	"zipserv/internal/codec"
	"zipserv/internal/core"
)

// Shape is a GEMM problem Y_{M×N} = W_{M×K} · X_{K×N}: M the output
// dimension, K the hidden (reduction) dimension, N the token count
// (batch × sequence positions being processed).
type Shape struct{ M, K, N int }

// FLOPs returns 2·M·K·N.
func (s Shape) FLOPs() int64 { return 2 * int64(s.M) * int64(s.K) * int64(s.N) }

// WeightBytes returns the dense BF16 weight footprint 2·M·K.
func (s Shape) WeightBytes() int64 { return 2 * int64(s.M) * int64(s.K) }

// ActivationBytes returns the BF16 input activations 2·K·N.
func (s Shape) ActivationBytes() int64 { return 2 * int64(s.K) * int64(s.N) }

// OutputBytes returns the BF16 output 2·M·N.
func (s Shape) OutputBytes() int64 { return 2 * int64(s.M) * int64(s.N) }

func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.M, s.K, s.N) }

// Compression summarises a TCA-TBE encoding for the cost model.
type Compression struct {
	// Ratio is uncompressed/compressed bytes (≈1.42 on LLM weights).
	Ratio float64
	// Coverage is the in-window fraction r_n (≈0.96).
	Coverage float64
	// CodewordBits is the bit-plane count n (3 by default).
	CodewordBits int
}

// DefaultCompression returns the measured characteristics of TCA-TBE
// on Gaussian LLM weights (matches §3.1/§6.5: ~71% of dense size).
func DefaultCompression() Compression {
	return Compression{Ratio: 1.42, Coverage: 0.96, CodewordBits: 3}
}

// CompressedWeightBytes returns the TCA-TBE weight footprint.
func (c Compression) CompressedWeightBytes(s Shape) int64 {
	return int64(float64(s.WeightBytes()) / c.Ratio)
}

// Model calibration constants. They are derived from the paper's
// measured anchors, not free parameters: see the package comment and
// the figure tests.
const (
	// LaunchOverhead is per-kernel launch + synchronisation cost.
	LaunchOverhead = 5e-6

	// effMemCuBLAS is cuBLAS's achievable fraction of peak DRAM
	// bandwidth on skinny decode-stage GEMMs.
	effMemCuBLAS = 0.78

	// effTCCuBLAS is cuBLAS's achievable fraction of peak Tensor Core
	// throughput on large GEMMs.
	effTCCuBLAS = 0.85

	// effMemZip is ZipGEMM's DRAM efficiency: asynchronous 128-bit
	// LDGSTS copies plus the conflict-free TCA-TBE layout (§4.3.1,
	// Figure 12c).
	effMemZip = 0.90

	// effTCZip is ZipGEMM's Tensor Core efficiency: 71.6% of the
	// cuBLAS baseline (Figure 12b), because mma slots interleave with
	// decode ALU work.
	effTCZip = effTCCuBLAS * 0.716

	// effMemLossy is the efficiency of the Marlin-class lossy kernel
	// used in the §7 comparison.
	effMemLossy = 0.92

	// cuBLAS tiling parameters (well-tuned library: 128×128 CTAs with
	// aggressive split-K on skinny shapes).
	cuBlockM, cuBlockN, cuSplitKChunk = 128, 128, 1024

	// ZipGEMM tiling: 64-row BlockTiles, no N tiling below 64, and the
	// fixed 4096-column split-K granularity whose tuning §6.1 leaves
	// to future work (the source of the O_proj slowdown).
	zipBlockM, zipBlockN, zipSplitKChunk = 64, 64, 4096
)

// KernelTime decomposes one kernel execution.
type KernelTime struct {
	Total float64 // seconds, = max(resource streams) + launch

	Mem float64 // DRAM stream time
	ALU float64 // integer-pipe decode time (fused kernels only)
	TC  float64 // Tensor Core stream time

	Bound     string // "memory", "alu" or "compute"
	BytesRead int64  // DRAM read traffic
	ParEff    float64
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// parallelEff returns the fraction of peak a kernel can sustain given
// its thread-block count relative to the SM count: with fewer blocks
// than SMs the device cannot keep enough memory requests in flight,
// which is how small layers (O_proj) lose (§6.1, Figure 11c).
func parallelEff(blocks, sms int) float64 {
	if blocks >= sms {
		return 1
	}
	return float64(blocks) / float64(sms)
}

func boundOf(mem, alu, tc float64) string {
	switch {
	case mem >= alu && mem >= tc:
		return "memory"
	case alu >= tc:
		return "alu"
	default:
		return "compute"
	}
}

// CuBLAS prices the dense BF16 Tensor Core GEMM (the cuBLAS_TC
// baseline of §6.1).
func CuBLAS(spec Spec, s Shape) KernelTime {
	blocks := ceilDiv(s.M, cuBlockM) * ceilDiv(s.N, cuBlockN)
	if blocks < spec.SMs {
		// Library-grade split-K recovers parallelism on skinny shapes.
		blocks *= ceilDiv(s.K, cuSplitKChunk)
	}
	par := parallelEff(blocks, spec.SMs)

	bytes := s.WeightBytes() + s.ActivationBytes() + s.OutputBytes()
	mem := float64(bytes) / (spec.MemBWGBps * 1e9 * effMemCuBLAS * par)
	tc := float64(s.FLOPs()) / (spec.BF16TFLOPS * 1e12 * effTCCuBLAS)
	total := math.Max(mem, tc) + LaunchOverhead
	return KernelTime{
		Total: total, Mem: mem, TC: tc,
		Bound: boundOf(mem, 0, tc), BytesRead: s.WeightBytes() + s.ActivationBytes(),
		ParEff: par,
	}
}

// ZipGEMM prices the fused decompression-GEMM kernel (§4.3): the DRAM
// stream carries compressed weights, the integer pipe carries the
// TCA-TBE decode, and the two-level software pipeline (§4.3.3)
// overlaps both with Tensor Core math, so wall time is the max of the
// three streams.
func ZipGEMM(spec Spec, s Shape, comp Compression) KernelTime {
	return zipGEMMWithChunk(spec, s, comp, zipSplitKChunk)
}

// zipGEMMWithChunk prices the fused kernel with an explicit split-K
// chunk size. Splitting K across blocks raises parallelism but the
// partial results must be reduced through global memory: each extra
// split writes and re-reads an M×N FP32 partial sum.
func zipGEMMWithChunk(spec Spec, s Shape, comp Compression, kChunk int) KernelTime {
	splits := ceilDiv(s.K, kChunk)
	blocks := ceilDiv(s.M, zipBlockM) * ceilDiv(s.N, zipBlockN) * splits
	par := parallelEff(blocks, spec.SMs)

	reduction := int64(0)
	if splits > 1 {
		reduction = 2 * int64(splits-1) * 4 * int64(s.M) * int64(s.N) // write + read FP32 partials
	}
	bytes := comp.CompressedWeightBytes(s) + s.ActivationBytes() + s.OutputBytes() + reduction
	mem := float64(bytes) / (spec.MemBWGBps * 1e9 * effMemZip * par)

	decodeOps := float64(int64(s.M)*int64(s.K)) * core.DecodeALUOpsPerElement(comp.CodewordBits, comp.Coverage)
	alu := decodeOps / (spec.ALUOpsPerSec() * par)

	tc := float64(s.FLOPs()) / (spec.BF16TFLOPS * 1e12 * effTCZip)
	total := math.Max(mem, math.Max(alu, tc)) + LaunchOverhead
	if splits > 1 {
		total += LaunchOverhead // the reduction kernel
	}
	return KernelTime{
		Total: total, Mem: mem, ALU: alu, TC: tc,
		Bound: boundOf(mem, alu, tc), BytesRead: comp.CompressedWeightBytes(s) + s.ActivationBytes() + reduction/2,
		ParEff: par,
	}
}

// ZipGEMMTuned implements the per-shape split-K tuning the paper
// leaves as future work ("small layers require fine-grained parameter
// tuning (e.g., split-K configurations)", §6.1): it searches chunk
// sizes and returns the best kernel time with the chosen chunk. On
// starved shapes like O_proj this recovers most of the slowdown; on
// saturated shapes it leaves the default untouched.
func ZipGEMMTuned(spec Spec, s Shape, comp Compression) (KernelTime, int) {
	bestChunk := zipSplitKChunk
	best := zipGEMMWithChunk(spec, s, comp, bestChunk)
	for _, chunk := range []int{512, 1024, 2048} {
		if chunk >= s.K {
			continue
		}
		kt := zipGEMMWithChunk(spec, s, comp, chunk)
		if kt.Total < best.Total {
			best, bestChunk = kt, chunk
		}
	}
	return best, bestChunk
}

// codecProfile captures each decompression pipeline's measured
// characteristics (§3.2, §6.2): achievable fraction of peak bandwidth,
// a traffic multiplier for per-chunk metadata/state reloads, and
// shared-memory bank conflicts per element (Figure 12c).
type codecProfile struct {
	bwEff            float64
	trafficFactor    float64
	conflictsPerElem float64
	kernelLaunches   int
}

var codecProfiles = map[string]codecProfile{
	// DietGPU: warp-interleaved rANS; heavy divergence, 43.7% of peak.
	codec.NameDietGPU: {bwEff: 0.437, trafficFactor: 1.115, conflictsPerElem: 0.030, kernelLaunches: 2},
	// nvCOMP: generic rANS with manifest parsing between kernels.
	codec.NameNvComp: {bwEff: 0.49, trafficFactor: 1.07, conflictsPerElem: 0.020, kernelLaunches: 3},
	// DFloat11: hierarchical-LUT Huffman, 76.5% of peak.
	codec.NameDFloat11: {bwEff: 0.765, trafficFactor: 1.0, conflictsPerElem: 0.004, kernelLaunches: 2},
	// ZipServ-Decomp: the standalone TCA-TBE expander (§6.2).
	codec.NameZipServ: {bwEff: 0.84, trafficFactor: 1.0, conflictsPerElem: 4e-5, kernelLaunches: 1},
}

// CodecNames lists codecs known to the cost model.
func CodecNames() []string {
	return []string{codec.NameZipServ, codec.NameDFloat11, codec.NameDietGPU, codec.NameNvComp}
}

// DecompressTime prices a standalone decompression of origBytes of
// weights compressed at the given ratio (Figures 1 and 13): the kernel
// reads the compressed buffer and writes the expanded one at the
// codec's achievable bandwidth.
func DecompressTime(spec Spec, origBytes int64, ratio float64, codecName string) (float64, error) {
	p, ok := codecProfiles[codecName]
	if !ok {
		return 0, fmt.Errorf("gpu: no pipeline profile for codec %q", codecName)
	}
	traffic := float64(origBytes) * (1 + 1/ratio) * p.trafficFactor
	return traffic/(spec.MemBWGBps*1e9*p.bwEff) + float64(p.kernelLaunches)*LaunchOverhead, nil
}

// KVDecompressTime prices restoring compressed cold KV-cache blocks
// into physical blocks with the TCA-TBE expander: origBytes of logical
// KV content, stored at the given ratio, expanded once on claim. A
// non-positive ratio is treated as 1 (uncompressed pass-through) and
// non-positive sizes are free, so callers can charge the price
// unconditionally on the claim path.
func KVDecompressTime(spec Spec, origBytes int64, ratio float64) float64 {
	if origBytes <= 0 {
		return 0
	}
	if ratio <= 0 {
		ratio = 1
	}
	t, err := DecompressTime(spec, origBytes, ratio, codec.NameZipServ)
	if err != nil {
		// Unreachable: the ZipServ profile is always registered.
		return 0
	}
	return t
}

// PipelineTime decomposes a decoupled decompress-then-GEMM execution
// (Figure 4).
type PipelineTime struct {
	Decompress float64
	GEMM       float64
	Total      float64
}

// Decoupled prices the baseline pipeline: expand the weights into
// global memory, then run the dense GEMM over them. The GEMM re-reads
// the expanded weights from DRAM — the redundant traffic §3.3's
// roofline analysis charges against the decoupled design.
func Decoupled(spec Spec, s Shape, ratio float64, codecName string) (PipelineTime, error) {
	d, err := DecompressTime(spec, s.WeightBytes(), ratio, codecName)
	if err != nil {
		return PipelineTime{}, err
	}
	g := CuBLAS(spec, s).Total
	return PipelineTime{Decompress: d, GEMM: g, Total: d + g}, nil
}

// StageAware prices ZipServ's stage-aware strategy (§4.4): the fused
// ZipGEMM for memory-bound shapes, the decoupled
// decompress-then-cuBLAS pipeline once high arithmetic intensity
// amortises the expansion. The engine switches by picking the cheaper
// path, which coincides with the paper's prefill/decode split.
func StageAware(spec Spec, s Shape, comp Compression) (KernelTime, bool) {
	fused := ZipGEMM(spec, s, comp)
	dec, err := Decoupled(spec, s, comp.Ratio, codec.NameZipServ)
	if err != nil || fused.Total <= dec.Total {
		return fused, true
	}
	return KernelTime{
		Total: dec.Total, Mem: dec.Decompress, TC: dec.GEMM,
		Bound: "compute", BytesRead: s.WeightBytes() + s.ActivationBytes(), ParEff: 1,
	}, false
}

// MarlinW8A16 prices the lossy 8-bit weight kernel of the §7
// comparison: half the weight traffic of BF16 at near-peak bandwidth.
func MarlinW8A16(spec Spec, s Shape) KernelTime {
	bytes := int64(s.M)*int64(s.K) + s.ActivationBytes() + s.OutputBytes()
	mem := float64(bytes) / (spec.MemBWGBps * 1e9 * effMemLossy)
	tc := float64(s.FLOPs()) / (spec.BF16TFLOPS * 1e12 * effTCCuBLAS)
	total := math.Max(mem, tc) + LaunchOverhead
	return KernelTime{Total: total, Mem: mem, TC: tc, Bound: boundOf(mem, 0, tc), BytesRead: bytes, ParEff: 1}
}

// StreamTime prices a pure bandwidth-bound pass over the given bytes
// (attention KV reads, weight streaming) at the stated efficiency.
func StreamTime(spec Spec, bytes int64, eff float64) float64 {
	return float64(bytes) / (spec.MemBWGBps * 1e9 * eff)
}
