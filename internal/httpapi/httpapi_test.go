package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func doJSON(t *testing.T, srv *httptest.Server, method, path string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewMux())
	t.Cleanup(srv.Close)
	return srv
}

func TestHealthz(t *testing.T) {
	srv := newServer(t)
	resp, body := doJSON(t, srv, http.MethodGet, "/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "ok") {
		t.Errorf("body %q", body)
	}
	resp, _ = doJSON(t, srv, http.MethodPost, "/healthz", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz status %d, want 405", resp.StatusCode)
	}
}

func TestModelsAndDevices(t *testing.T) {
	srv := newServer(t)
	resp, body := doJSON(t, srv, http.MethodGet, "/v1/models", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("models status %d", resp.StatusCode)
	}
	var models []map[string]any
	if err := json.Unmarshal(body, &models); err != nil {
		t.Fatal(err)
	}
	if len(models) != 11 {
		t.Errorf("%d models, want 11", len(models))
	}

	resp, body = doJSON(t, srv, http.MethodGet, "/v1/devices", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("devices status %d", resp.StatusCode)
	}
	var devices []map[string]any
	if err := json.Unmarshal(body, &devices); err != nil {
		t.Fatal(err)
	}
	if len(devices) < 7 {
		t.Errorf("%d devices, want >= 7", len(devices))
	}
}

func TestSimulate(t *testing.T) {
	srv := newServer(t)
	resp, body := doJSON(t, srv, http.MethodPost, "/v1/simulate", SimulateRequest{
		Model: "LLaMA3.1-8B", Device: "RTX4090", Backend: "zipserv",
		Batch: 8, Prompt: 64, Output: 128,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var m struct {
		Throughput float64 `json:"Throughput"`
		Waves      int     `json:"Waves"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Throughput <= 0 || m.Waves < 1 {
		t.Errorf("degenerate metrics: %s", body)
	}
}

func TestSimulateErrors(t *testing.T) {
	srv := newServer(t)
	cases := []struct {
		name string
		req  SimulateRequest
		want int
	}{
		{"unknownModel", SimulateRequest{Model: "GPT-5", Device: "RTX4090", Batch: 1, Prompt: 1, Output: 1}, 400},
		{"unknownDevice", SimulateRequest{Model: "LLaMA3.1-8B", Device: "TPU", Batch: 1, Prompt: 1, Output: 1}, 400},
		{"unknownBackend", SimulateRequest{Model: "LLaMA3.1-8B", Device: "RTX4090", Backend: "triton", Batch: 1, Prompt: 1, Output: 1}, 400},
		{"doesNotFit", SimulateRequest{Model: "LLaMA3.1-405B", Device: "RTX4090", Backend: "vllm", Batch: 1, Prompt: 1, Output: 1}, 400},
		{"zeroBatch", SimulateRequest{Model: "LLaMA3.1-8B", Device: "RTX4090", Backend: "zipserv", Batch: 0, Prompt: 1, Output: 1}, 400},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := doJSON(t, srv, http.MethodPost, "/v1/simulate", c.req)
			if resp.StatusCode != c.want {
				t.Errorf("status %d, want %d (%s)", resp.StatusCode, c.want, body)
			}
			if !strings.Contains(string(body), "error") {
				t.Errorf("error body missing: %s", body)
			}
		})
	}
	// Malformed JSON and unknown fields.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/simulate", strings.NewReader(`{"mdoel":`))
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON status %d, want 400", resp.StatusCode)
	}
	if r, _ := doJSON(t, srv, http.MethodGet, "/v1/simulate", nil); r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/simulate status %d, want 405", r.StatusCode)
	}
}

func TestTrace(t *testing.T) {
	srv := newServer(t)
	resp, body := doJSON(t, srv, http.MethodPost, "/v1/trace", TraceRequest{
		Model: "LLaMA3.1-8B", Device: "RTX4090", Backend: "zipserv",
		Requests: 10, RatePerSec: 20, MeanPrompt: 64, MeanOutput: 32, Seed: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var st struct {
		Requests   int     `json:"Requests"`
		Throughput float64 `json:"Throughput"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 10 || st.Throughput <= 0 {
		t.Errorf("trace stats: %s", body)
	}
	// Oversized traces are rejected.
	resp, _ = doJSON(t, srv, http.MethodPost, "/v1/trace", TraceRequest{
		Model: "LLaMA3.1-8B", Device: "RTX4090", Requests: 20000,
		RatePerSec: 1, MeanPrompt: 1, MeanOutput: 1,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized trace status %d, want 400", resp.StatusCode)
	}
	// Invalid parameters.
	resp, _ = doJSON(t, srv, http.MethodPost, "/v1/trace", TraceRequest{
		Model: "LLaMA3.1-8B", Device: "RTX4090", Requests: 0, RatePerSec: 1,
		MeanPrompt: 1, MeanOutput: 1,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty trace status %d, want 400", resp.StatusCode)
	}
}

func TestCompress(t *testing.T) {
	srv := newServer(t)
	resp, body := doJSON(t, srv, http.MethodPost, "/v1/compress", CompressRequest{
		Rows: 256, Cols: 256, Seed: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr CompressResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if !cr.BitExact {
		t.Error("compression endpoint reports not bit-exact")
	}
	if cr.Ratio < 1.3 || cr.Ratio > 1.6 {
		t.Errorf("ratio %.3f outside the Gaussian band", cr.Ratio)
	}
	// Oversized requests are rejected before allocation.
	resp, _ = doJSON(t, srv, http.MethodPost, "/v1/compress", CompressRequest{
		Rows: 1 << 16, Cols: 1 << 16,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized compress status %d, want 400", resp.StatusCode)
	}
}
