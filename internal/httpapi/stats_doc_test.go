package httpapi

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"zipserv/internal/kvcache"
	"zipserv/internal/serve"
)

// statsJSONKeys collects the JSON keys a struct type serialises to,
// recursing into nested structs (by value or pointer) so the digest's
// sub-object keys count too.
func statsJSONKeys(t *testing.T, typ reflect.Type, into map[string]bool) {
	t.Helper()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		tag := strings.Split(f.Tag.Get("json"), ",")[0]
		if tag == "-" {
			continue
		}
		ft := f.Type
		if ft.Kind() == reflect.Pointer {
			ft = ft.Elem()
		}
		if f.Anonymous && tag == "" {
			statsJSONKeys(t, ft, into) // embedded: keys inline
			continue
		}
		if tag == "" {
			t.Fatalf("stats field %s.%s has no json tag", typ.Name(), f.Name)
		}
		into[tag] = true
		if ft.Kind() == reflect.Struct && ft != reflect.TypeOf(serve.Stats{}) {
			statsJSONKeys(t, ft, into)
		}
	}
}

// TestStatsReferenceDocumentsEveryKey fails when a key served by
// /v1/stats — the flat serve.Stats surface, the routed extras, or the
// nested prefix-summary digest — is missing from
// docs/stats-reference.md. Adding a stats field without documenting its
// unit and fleet aggregation rule is a doc regression, caught here.
func TestStatsReferenceDocumentsEveryKey(t *testing.T) {
	keys := make(map[string]bool)
	statsJSONKeys(t, reflect.TypeOf(serve.Stats{}), keys)
	statsJSONKeys(t, reflect.TypeOf(RoutedStats{}), keys)
	statsJSONKeys(t, reflect.TypeOf(kvcache.PrefixSummary{}), keys)

	doc, err := os.ReadFile("../../docs/stats-reference.md")
	if err != nil {
		t.Fatalf("stats reference missing: %v", err)
	}
	text := string(doc)
	var missing []string
	for key := range keys {
		if !strings.Contains(text, "`"+key+"`") {
			missing = append(missing, key)
		}
	}
	if len(missing) > 0 {
		t.Errorf("docs/stats-reference.md is missing %d stats key(s): %s",
			len(missing), strings.Join(missing, ", "))
	}
}
