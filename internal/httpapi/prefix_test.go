package httpapi

import (
	"encoding/json"
	"net/http"
	"testing"

	"zipserv/internal/serve"
)

// promptTokens builds a deterministic token stream; equal seeds agree
// on every position.
func promptTokens(n, seed int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = seed*100003 + i*131 + 7
	}
	return out
}

// TestGeneratePrefixCache: on a prefix-cache deployment, a repeated
// prompt reports cached_tokens in its result and the stats endpoint
// counts the hit and the tokens saved.
func TestGeneratePrefixCache(t *testing.T) {
	srv, _ := newLiveServer(t, serve.Config{QueueDepth: 8, PrefixCache: true})
	prompt := promptTokens(96, 1)

	generate := func() serve.Result {
		t.Helper()
		resp, body := doJSON(t, srv, http.MethodPost, "/v1/generate", GenerateRequest{
			Prompt: prompt, OutputLen: 8,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var res serve.Result
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatal(err)
		}
		return res
	}

	first := generate()
	if first.PromptLen != len(prompt) {
		t.Fatalf("prompt_len defaulted to %d, want %d", first.PromptLen, len(prompt))
	}
	if first.CachedTokens != 0 {
		t.Fatalf("first request reported %d cached tokens", first.CachedTokens)
	}

	second := generate()
	if second.CachedTokens == 0 {
		t.Fatal("repeated prompt reported no cached tokens")
	}

	resp, body := doJSON(t, srv, http.MethodGet, "/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d: %s", resp.StatusCode, body)
	}
	var st serve.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.PrefixCacheEnabled {
		t.Fatalf("stats prefix_cache_enabled false: %s", body)
	}
	if st.PrefixHits < 1 || st.PrefixTokensSaved < int64(second.CachedTokens) {
		t.Fatalf("stats count hits=%d saved=%d, want >=1 and >=%d: %s",
			st.PrefixHits, st.PrefixTokensSaved, second.CachedTokens, body)
	}
}

// TestGeneratePromptLenMismatch: contradicting prompt_len and the
// prompt token array is a client error, reported as invalid_request.
func TestGeneratePromptLenMismatch(t *testing.T) {
	srv, _ := newLiveServer(t, serve.Config{QueueDepth: 8, PrefixCache: true})
	resp, body := doJSON(t, srv, http.MethodPost, "/v1/generate", GenerateRequest{
		PromptLen: 5, Prompt: promptTokens(96, 1), OutputLen: 8,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	var e struct {
		Error apiError `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != ErrCodeInvalidRequest {
		t.Fatalf("error code %q, want %q", e.Error.Code, ErrCodeInvalidRequest)
	}
}
