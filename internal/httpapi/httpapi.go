// Package httpapi exposes the ZipServ serving simulator over HTTP, the
// way an inference-engine control plane would: deployment planning,
// end-to-end run simulation, trace-driven continuous batching, and a
// compression what-if endpoint. It exists so downstream users can
// integrate capacity planning ("which models fit on which GPUs at what
// batch?") without linking Go code.
//
//	GET  /healthz              liveness
//	GET  /v1/models            the §6.1 model zoo
//	GET  /v1/devices           the modelled accelerators
//	POST /v1/simulate          one serving run → Metrics
//	POST /v1/trace             continuous-batching trace → TraceStats
//	POST /v1/compress          compress synthetic weights → codec stats
//
// NewLiveMux adds the live serving endpoints on top, backed by a
// serve.Backend — one continuous-batching server or a sharded replica
// router (internal/serve):
//
//	POST /v1/generate          live generation (429 + drain-rate
//	                           Retry-After on queue overflow, 422 when
//	                           the KV reservation can never fit; NDJSON
//	                           streaming with "stream": true; optional
//	                           "priority" and "ttft_deadline_ms"
//	                           scheduling fields)
//	GET  /v1/stats             live scheduler statistics (aggregate
//	                           plus per-replica breakdown on a router)
//
// Live-endpoint failures carry a machine-readable body:
//
//	{"error":{"code":"queue_full"|"kv_never_fits"|"stopped"|"invalid_request","message":"..."}}
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"

	"zipserv/internal/core"
	"zipserv/internal/engine"
	"zipserv/internal/gpu"
	"zipserv/internal/weights"
)

// NewMux returns the API handler.
func NewMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", handleHealthz)
	mux.HandleFunc("/v1/models", handleModels)
	mux.HandleFunc("/v1/devices", handleDevices)
	mux.HandleFunc("/v1/simulate", handleSimulate)
	mux.HandleFunc("/v1/trace", handleTrace)
	mux.HandleFunc("/v1/compress", handleCompress)
	return mux
}

func handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	type modelInfo struct {
		Name      string  `json:"name"`
		Family    string  `json:"family"`
		Layers    int     `json:"layers"`
		HiddenDim int     `json:"hidden_dim"`
		WeightGiB float64 `json:"weight_gib"`
	}
	var out []modelInfo
	for _, m := range weights.Zoo() {
		out = append(out, modelInfo{m.Name, m.Family, m.NumLayers, m.HiddenDim, m.WeightGiB()})
	}
	writeJSON(w, http.StatusOK, out)
}

func handleDevices(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	type devInfo struct {
		Name       string  `json:"name"`
		Class      string  `json:"class"`
		VRAMGiB    float64 `json:"vram_gib"`
		MemBWGBps  float64 `json:"mem_bw_gbps"`
		BF16TFLOPS float64 `json:"bf16_tflops"`
	}
	var out []devInfo
	for _, name := range gpu.Names() {
		s := gpu.MustByName(name)
		out = append(out, devInfo{s.Name, string(s.Class), s.VRAMGiB, s.MemBWGBps, s.BF16TFLOPS})
	}
	writeJSON(w, http.StatusOK, out)
}

// SimulateRequest is the /v1/simulate body.
type SimulateRequest struct {
	Model   string `json:"model"`
	Device  string `json:"device"`
	GPUs    int    `json:"gpus"`
	Backend string `json:"backend"`
	Batch   int    `json:"batch"`
	Prompt  int    `json:"prompt"`
	Output  int    `json:"output"`
}

func buildEngine(modelName, device string, gpus int, backend string) (*engine.Engine, error) {
	model, err := weights.ByName(modelName)
	if err != nil {
		return nil, err
	}
	dev, err := gpu.ByName(device)
	if err != nil {
		return nil, err
	}
	if backend == "" {
		backend = string(engine.BackendZipServ)
	}
	return engine.New(engine.Config{
		Model: model, Device: dev, NumGPUs: gpus, Backend: engine.Backend(backend),
	})
}

func handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !decodePost(w, r, &req) {
		return
	}
	eng, err := buildEngine(req.Model, req.Device, req.GPUs, req.Backend)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	m, err := eng.Run(req.Batch, req.Prompt, req.Output)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// TraceRequest is the /v1/trace body: a synthetic Poisson trace served
// under continuous batching.
type TraceRequest struct {
	Model      string  `json:"model"`
	Device     string  `json:"device"`
	GPUs       int     `json:"gpus"`
	Backend    string  `json:"backend"`
	Requests   int     `json:"requests"`
	RatePerSec float64 `json:"rate_per_sec"`
	MeanPrompt int     `json:"mean_prompt"`
	MeanOutput int     `json:"mean_output"`
	Seed       int64   `json:"seed"`
}

func handleTrace(w http.ResponseWriter, r *http.Request) {
	var req TraceRequest
	if !decodePost(w, r, &req) {
		return
	}
	if req.Requests > 10000 {
		httpError(w, http.StatusBadRequest, "at most 10000 requests per trace")
		return
	}
	eng, err := buildEngine(req.Model, req.Device, req.GPUs, req.Backend)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	trace := engine.SyntheticTrace(req.Requests, req.RatePerSec, req.MeanPrompt, req.MeanOutput, req.Seed)
	if trace == nil {
		httpError(w, http.StatusBadRequest, "invalid trace parameters")
		return
	}
	st, _, err := eng.Serve(trace)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// CompressRequest is the /v1/compress body: synthesize Gaussian
// weights and report real codec statistics.
type CompressRequest struct {
	Rows  int     `json:"rows"`
	Cols  int     `json:"cols"`
	Sigma float64 `json:"sigma"`
	Seed  int64   `json:"seed"`
}

// CompressResponse reports real compression results.
type CompressResponse struct {
	Rows             int     `json:"rows"`
	Cols             int     `json:"cols"`
	UncompressedSize int     `json:"uncompressed_bytes"`
	CompressedSize   int     `json:"compressed_bytes"`
	Ratio            float64 `json:"ratio"`
	BitsPerElement   float64 `json:"bits_per_element"`
	Coverage         float64 `json:"window_coverage"`
	BaseExponent     int     `json:"base_exponent"`
	BitExact         bool    `json:"bit_exact"`
}

func handleCompress(w http.ResponseWriter, r *http.Request) {
	var req CompressRequest
	if !decodePost(w, r, &req) {
		return
	}
	const maxElems = 16 << 20
	if req.Rows <= 0 || req.Cols <= 0 || int64(req.Rows)*int64(req.Cols) > maxElems {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("rows×cols must be in (0, %d]", maxElems))
		return
	}
	if req.Sigma <= 0 {
		req.Sigma = weights.DefaultSigma
	}
	m := weights.Gaussian(req.Rows, req.Cols, req.Sigma, req.Seed)
	cm, err := core.Compress(m)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	back, err := core.Decompress(cm)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, CompressResponse{
		Rows: req.Rows, Cols: req.Cols,
		UncompressedSize: m.SizeBytes(),
		CompressedSize:   cm.SizeBytes(),
		Ratio:            cm.CompressionRatio(),
		BitsPerElement:   cm.BitsPerElement(),
		Coverage:         cm.CoverageRatio(),
		BaseExponent:     int(cm.BaseExp),
		BitExact:         m.Equal(back),
	})
}

func decodePost(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
