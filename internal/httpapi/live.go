package httpapi

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"zipserv/internal/serve"
)

// NewLiveMux returns the full API handler: every stateless endpoint of
// NewMux plus the live serving endpoints backed by the given
// continuous-batching server:
//
//	POST /v1/generate          submit one generation request
//	GET  /v1/stats             live scheduler statistics
//
// /v1/generate admits the request into the live scheduler's bounded
// queue; when the queue is full it fails fast with 429 Too Many
// Requests (the backpressure signal load balancers expect). With
// "stream": true the response is NDJSON: one line per scheduler event
// (admitted, first_token, finished) followed by a final result line,
// flushed as they happen. Without streaming, the handler waits for
// completion and returns the final per-request metrics as one JSON
// object.
func NewLiveMux(live *serve.Server) *http.ServeMux {
	mux := NewMux()
	mux.HandleFunc("/v1/generate", handleGenerate(live))
	mux.HandleFunc("/v1/stats", handleStats(live))
	return mux
}

// GenerateRequest is the /v1/generate body.
type GenerateRequest struct {
	PromptLen int  `json:"prompt_len"`
	OutputLen int  `json:"output_len"`
	Stream    bool `json:"stream"`
}

func handleGenerate(live *serve.Server) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req GenerateRequest
		if !decodePost(w, r, &req) {
			return
		}
		tk, err := live.Submit(serve.Request{
			PromptLen: req.PromptLen,
			OutputLen: req.OutputLen,
			Arrival:   serve.ArrivalNow,
		})
		switch {
		case errors.Is(err, serve.ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err.Error())
			return
		case errors.Is(err, serve.ErrStopped):
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		case err != nil:
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}

		// A generate response can legitimately outlive the server's
		// blanket WriteTimeout (deep queue, long decode): lift the
		// write deadline for this response only, leaving the stateless
		// endpoints under the configured timeout.
		_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})

		if req.Stream {
			streamGenerate(w, r, tk)
			return
		}
		select {
		case res := <-tk.Result():
			if res.Err != nil {
				httpError(w, http.StatusInternalServerError, res.Err.Error())
				return
			}
			writeJSON(w, http.StatusOK, res)
		case <-r.Context().Done():
			// Client gone; the scheduler still completes the sequence.
		}
	}
}

// streamGenerate writes scheduler events as NDJSON lines, flushing
// each so clients observe admission and first-token latency live.
func streamGenerate(w http.ResponseWriter, r *http.Request, tk *serve.Ticket) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	events := tk.Events()
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				events = nil // drained; the final result follows
				continue
			}
			_ = enc.Encode(ev)
			flush()
		case res := <-tk.Result():
			// Drain remaining buffered events first so the line order
			// stays admitted → first_token → finished → result.
			for ev := range tk.Events() {
				_ = enc.Encode(ev)
			}
			type line struct {
				Event string        `json:"event"`
				Error string        `json:"error,omitempty"`
				Res   *serve.Result `json:"result,omitempty"`
			}
			if res.Err != nil {
				_ = enc.Encode(line{Event: "error", Error: res.Err.Error()})
			} else {
				_ = enc.Encode(line{Event: "result", Res: &res})
			}
			flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

func handleStats(live *serve.Server) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, live.Stats())
	}
}
