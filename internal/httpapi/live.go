package httpapi

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"
	"time"

	"zipserv/internal/serve"
)

// NewLiveMux returns the full API handler: every stateless endpoint of
// NewMux plus the live serving endpoints backed by the given backend —
// a single continuous-batching server or a sharded replica router:
//
//	POST /v1/generate          submit one generation request
//	GET  /v1/stats             live scheduler statistics
//
// /v1/generate admits the request into the live scheduler's bounded
// queue; when the queue is full it fails fast with 429 Too Many
// Requests (the backpressure signal load balancers expect) and a
// Retry-After estimated from the current queue drain rate. Requests
// whose KV reservation exceeds the device plan get 422 Unprocessable
// Entity. Failures carry a machine-readable body:
//
//	{"error":{"code":"queue_full"|"kv_never_fits"|"stopped"|"invalid_request","message":"..."}}
//
// The request body accepts two scheduling fields beyond the lengths:
// "priority" ("interactive", the default, or "batch", consumed by the
// priority policy) and "ttft_deadline_ms" (a first-token SLO consumed
// by the slo policy). Both are ignored under the default FIFO policy,
// so requests without them behave exactly as before. A "prompt" token
// array opts the request into KV prefix reuse on a deployment started
// with the prefix cache: its admitted event and final result carry
// "cached_tokens", and /v1/stats reports "prefix_hits" and
// "prefix_tokens_saved" (router deployments aggregate them
// fleet-wide).
//
// Deployments running the adaptive controllers additionally surface
// their live operating point on /v1/stats: "chunk_budget_tokens" (with
// the fleet min/max spread under a router), the step-time target and
// its observed EWMA ("target_step_time_seconds",
// "step_time_ewma_seconds"), and the prefix-cache pool target plus the
// sizing controller's EWMAs ("cache_pool_target_blocks",
// "cache_hit_rate_ewma", "cache_pressure_ewma").
//
// With "stream": true the response is NDJSON: one line per scheduler
// event (admitted, first_token, preempted, finished) followed by a
// final result line, flushed as they happen. Without streaming, the
// handler waits for completion and returns the final per-request
// metrics as one JSON object.
//
// When the backend is a router, /v1/stats reports the fleet aggregate
// plus a per-replica breakdown under "replicas". Prefix-cache-enabled
// replicas also publish their prefix-trie digest ("prefix_summary",
// with "prefix_summary_age_seconds" since its last change), the signal
// a router with prefix-affinity dispatch scores to steer shared-prefix
// requests; the routing outcomes surface as "prefix_affinity_hits" and
// "affinity_spills" on the aggregate. Every /v1/stats field — unit and
// fleet aggregation rule — is catalogued in docs/stats-reference.md.
func NewLiveMux(live serve.Backend) *http.ServeMux {
	mux := NewMux()
	mux.HandleFunc("/v1/generate", handleGenerate(live))
	mux.HandleFunc("/v1/stats", handleStats(live))
	return mux
}

// GenerateRequest is the /v1/generate body.
type GenerateRequest struct {
	PromptLen int  `json:"prompt_len"`
	OutputLen int  `json:"output_len"`
	Stream    bool `json:"stream"`
	// Prompt optionally carries the prompt's token ids. On a
	// prefix-cache-enabled deployment, requests sharing a prompt
	// prefix reuse each other's KV blocks and skip the shared prefill
	// work; the response's cached_tokens reports the reuse. prompt_len
	// may be omitted (defaulted to len(prompt)) but must match when
	// both are set.
	Prompt []int `json:"prompt,omitempty"`
	// Priority is the request's class: "interactive" (default) or
	// "batch". Consumed by the priority scheduling policy.
	Priority string `json:"priority,omitempty"`
	// TTFTDeadlineMs is the first-token SLO in milliseconds after
	// arrival. Consumed by the slo scheduling policy; 0 = no deadline.
	TTFTDeadlineMs float64 `json:"ttft_deadline_ms,omitempty"`
}

// Machine-readable error codes of the live endpoints.
const (
	ErrCodeQueueFull      = "queue_full"      // 429: admission queue at capacity
	ErrCodeNeverFits      = "kv_never_fits"   // 422: reservation exceeds the device plan
	ErrCodeStopped        = "stopped"         // 503: backend shut down
	ErrCodeInvalidRequest = "invalid_request" // 400: malformed scheduling parameters
)

// apiError is the structured error body: {"error":{"code","message"}}.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func structuredError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, map[string]apiError{"error": {Code: code, Message: msg}})
}

// retryAfterSeconds estimates how long a rejected caller should back
// off before the queue has drained: queued requests over the recent
// wall-clock completion rate (completions per real second over the
// scheduler's ~30s window — the virtual-time goodput would overstate
// the backoff by however much faster than real time the scheduler
// runs, and a lifetime average never recovers from an idle stretch),
// clamped to [1s, 60s]. With no recent completion the drain rate is
// unknown and the floor applies. The estimate must survive any Stats a
// Backend implementation reports: a zero, negative, or non-finite
// drain rate (e.g. a first-burst window whose wall-clock span was
// zero) falls back to the floor instead of leaking NaN into the
// Retry-After header.
func retryAfterSeconds(st serve.Stats) string {
	if st.Queued <= 0 || st.RecentDrainRPS <= 0 || math.IsNaN(st.RecentDrainRPS) {
		return "1"
	}
	secs := math.Ceil(float64(st.Queued) / st.RecentDrainRPS)
	return strconv.Itoa(int(math.Min(math.Max(secs, 1), 60)))
}

func handleGenerate(live serve.Backend) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req GenerateRequest
		if !decodePost(w, r, &req) {
			return
		}
		class := serve.Class(req.Priority)
		switch class {
		case "", serve.ClassInteractive, serve.ClassBatch:
		default:
			structuredError(w, http.StatusBadRequest, ErrCodeInvalidRequest,
				"priority must be \"interactive\" or \"batch\"")
			return
		}
		if req.TTFTDeadlineMs < 0 {
			structuredError(w, http.StatusBadRequest, ErrCodeInvalidRequest,
				"ttft_deadline_ms must be non-negative")
			return
		}
		tk, err := live.Submit(serve.Request{
			PromptLen:    req.PromptLen,
			OutputLen:    req.OutputLen,
			Prompt:       req.Prompt,
			Arrival:      serve.ArrivalNow,
			Class:        class,
			TTFTDeadline: req.TTFTDeadlineMs / 1000,
		})
		switch {
		case errors.Is(err, serve.ErrQueueFull):
			w.Header().Set("Retry-After", retryAfterSeconds(live.Stats()))
			structuredError(w, http.StatusTooManyRequests, ErrCodeQueueFull, err.Error())
			return
		case errors.Is(err, serve.ErrNeverFits):
			structuredError(w, http.StatusUnprocessableEntity, ErrCodeNeverFits, err.Error())
			return
		case errors.Is(err, serve.ErrStopped):
			structuredError(w, http.StatusServiceUnavailable, ErrCodeStopped, err.Error())
			return
		case err != nil:
			structuredError(w, http.StatusBadRequest, ErrCodeInvalidRequest, err.Error())
			return
		}

		// A generate response can legitimately outlive the server's
		// blanket WriteTimeout (deep queue, long decode): lift the
		// write deadline for this response only, leaving the stateless
		// endpoints under the configured timeout.
		_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})

		if req.Stream {
			streamGenerate(w, r, tk)
			return
		}
		select {
		case res := <-tk.Result():
			if res.Err != nil {
				httpError(w, http.StatusInternalServerError, res.Err.Error())
				return
			}
			writeJSON(w, http.StatusOK, res)
		case <-r.Context().Done():
			// Client gone; the scheduler still completes the sequence.
		}
	}
}

// streamGenerate writes scheduler events as NDJSON lines, flushing
// each so clients observe admission and first-token latency live.
func streamGenerate(w http.ResponseWriter, r *http.Request, tk *serve.Ticket) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	events := tk.Events()
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				events = nil // drained; the final result follows
				continue
			}
			_ = enc.Encode(ev)
			flush()
		case res := <-tk.Result():
			// Drain remaining buffered events first so the line order
			// stays admitted → first_token → finished → result.
			for ev := range tk.Events() {
				_ = enc.Encode(ev)
			}
			type line struct {
				Event string        `json:"event"`
				Error string        `json:"error,omitempty"`
				Res   *serve.Result `json:"result,omitempty"`
			}
			if res.Err != nil {
				_ = enc.Encode(line{Event: "error", Error: res.Err.Error()})
			} else {
				_ = enc.Encode(line{Event: "result", Res: &res})
			}
			flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

// RoutedStats is the /v1/stats body for a sharded deployment: the
// fleet aggregate inline plus the per-replica breakdown, and — when any
// replica carries a disaggregation pool role — a per-pool aggregation
// under "pools" (keys "prefill", "decode", "mixed").
type RoutedStats struct {
	serve.Stats
	Replicas []serve.Stats          `json:"replicas"`
	Pools    map[string]serve.Stats `json:"pools,omitempty"`
}

// poolBreakdown folds the per-replica stats by pool role, or nil when
// no replica is pool-labelled (the single-tier deployment, whose
// /v1/stats body stays exactly as before).
func poolBreakdown(per []serve.Stats) map[string]serve.Stats {
	labelled := false
	for _, st := range per {
		if st.Pool != "" {
			labelled = true
			break
		}
	}
	if !labelled {
		return nil
	}
	return serve.PoolAggregate(per)
}

// fleetSnapshotter is implemented by serve.Router; any backend
// exposing a consistent aggregate + per-replica snapshot (computed in
// one pass, so the breakdown sums to the aggregate) gets the routed
// stats shape.
type fleetSnapshotter interface {
	Snapshot() (serve.Stats, []serve.Stats)
}

func handleStats(live serve.Backend) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		if fs, ok := live.(fleetSnapshotter); ok {
			agg, per := fs.Snapshot()
			writeJSON(w, http.StatusOK, RoutedStats{
				Stats: agg, Replicas: per, Pools: poolBreakdown(per),
			})
			return
		}
		writeJSON(w, http.StatusOK, live.Stats())
	}
}
