package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"zipserv/internal/engine"
	"zipserv/internal/gpu"
	"zipserv/internal/serve"
	"zipserv/internal/weights"
)

func newLiveBackend(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	if cfg.Engine == nil {
		model, err := weights.ByName("LLaMA3.1-8B")
		if err != nil {
			t.Fatal(err)
		}
		eng, err := engine.New(engine.Config{
			Model: model, Device: gpu.MustByName("RTX4090"), NumGPUs: 1,
			Backend: engine.BackendZipServ,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Engine = eng
	}
	live, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		live.Start() // idempotent: a never-started server must still drain
		if err := live.Stop(ctx); err != nil {
			t.Errorf("live Stop: %v", err)
		}
	})
	return live
}

func newLiveServer(t *testing.T, cfg serve.Config) (*httptest.Server, *serve.Server) {
	t.Helper()
	live := newLiveBackend(t, cfg)
	live.Start()
	srv := httptest.NewServer(NewLiveMux(live))
	t.Cleanup(srv.Close)
	return srv, live
}

func TestGenerate(t *testing.T) {
	srv, _ := newLiveServer(t, serve.Config{QueueDepth: 8})
	resp, body := doJSON(t, srv, http.MethodPost, "/v1/generate", GenerateRequest{
		PromptLen: 128, OutputLen: 16,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res serve.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.TTFT <= 0 || res.TPOT <= 0 || res.Latency <= 0 {
		t.Errorf("degenerate result: %s", body)
	}
	if res.PromptLen != 128 || res.OutputLen != 16 {
		t.Errorf("echoed lengths %d/%d, want 128/16", res.PromptLen, res.OutputLen)
	}
}

func TestGenerateStream(t *testing.T) {
	srv, _ := newLiveServer(t, serve.Config{QueueDepth: 8})
	b, _ := json.Marshal(GenerateRequest{PromptLen: 64, OutputLen: 8, Stream: true})
	resp, err := srv.Client().Post(srv.URL+"/v1/generate", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}

	var events []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, line.Event)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	want := []string{"admitted", "first_token", "finished", "result"}
	if len(events) != len(want) {
		t.Fatalf("event lines %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event lines %v, want %v", events, want)
		}
	}
}

func TestGenerateBackpressure429(t *testing.T) {
	// The scheduler is deliberately not started, so the depth-1 queue
	// cannot drain: the second submission must get 429, not block.
	live := newLiveBackend(t, serve.Config{QueueDepth: 1})
	srv := httptest.NewServer(NewLiveMux(live))
	t.Cleanup(srv.Close)

	if _, err := live.Submit(serve.Request{PromptLen: 32, OutputLen: 8}); err != nil {
		t.Fatal(err)
	}
	resp, body := doJSON(t, srv, http.MethodPost, "/v1/generate", GenerateRequest{
		PromptLen: 32, OutputLen: 8,
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if !strings.Contains(string(body), "queue full") {
		t.Errorf("429 body %q lacks reason", body)
	}
}

func TestGenerateErrors(t *testing.T) {
	srv, live := newLiveServer(t, serve.Config{QueueDepth: 8})

	// Invalid lengths.
	resp, _ := doJSON(t, srv, http.MethodPost, "/v1/generate", GenerateRequest{PromptLen: 0, OutputLen: 8})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("zero prompt status %d, want 400", resp.StatusCode)
	}
	// A reservation beyond the whole device plan: 422 with the
	// machine-readable kv_never_fits code.
	resp, body := doJSON(t, srv, http.MethodPost, "/v1/generate", GenerateRequest{
		PromptLen: 10, OutputLen: 100_000_000,
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("impossible request status %d, want 422 (%s)", resp.StatusCode, body)
	}
	var never struct {
		Error apiError `json:"error"`
	}
	if err := json.Unmarshal(body, &never); err != nil {
		t.Fatalf("unstructured 422 body %q: %v", body, err)
	}
	if never.Error.Code != ErrCodeNeverFits || never.Error.Message == "" {
		t.Errorf("422 error = %+v, want code %q with a message", never.Error, ErrCodeNeverFits)
	}

	// Stopped server → 503.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := live.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	resp, _ = doJSON(t, srv, http.MethodPost, "/v1/generate", GenerateRequest{PromptLen: 32, OutputLen: 8})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-stop status %d, want 503", resp.StatusCode)
	}
}

func TestStats(t *testing.T) {
	srv, _ := newLiveServer(t, serve.Config{QueueDepth: 8})
	// Complete one request so the snapshot is non-trivial.
	if resp, body := doJSON(t, srv, http.MethodPost, "/v1/generate", GenerateRequest{
		PromptLen: 64, OutputLen: 8,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("generate status %d: %s", resp.StatusCode, body)
	}

	resp, body := doJSON(t, srv, http.MethodGet, "/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st serve.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Submitted < 1 || st.Completed < 1 {
		t.Errorf("stats not counting: %s", body)
	}
	if st.Goodput <= 0 || st.MeanTTFT <= 0 {
		t.Errorf("degenerate aggregates: %s", body)
	}
}

// TestStatsExposesChunkMetrics: a chunked deployment reports its
// prefill-chunk and cadence-stall metrics on /v1/stats.
func TestStatsExposesChunkMetrics(t *testing.T) {
	srv, _ := newLiveServer(t, serve.Config{QueueDepth: 8, PrefillChunkTokens: 32})
	if resp, body := doJSON(t, srv, http.MethodPost, "/v1/generate", GenerateRequest{
		PromptLen: 200, OutputLen: 8,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("generate status %d: %s", resp.StatusCode, body)
	}

	resp, body := doJSON(t, srv, http.MethodGet, "/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st serve.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.PrefillChunkTokens != 32 {
		t.Errorf("prefill_chunk_tokens = %d, want 32: %s", st.PrefillChunkTokens, body)
	}
	// A 200-token prompt under a 32-token budget takes 7 iterations.
	if st.PrefillIterations < 7 || st.PrefillTokens != 200 {
		t.Errorf("prefill iterations/tokens = %d/%d, want >=7/200: %s",
			st.PrefillIterations, st.PrefillTokens, body)
	}
	// The raw JSON must carry the wire field names the dashboards bind to.
	for _, key := range []string{"prefill_chunk_tokens", "prefill_iterations", "prefill_tokens", "max_decode_gap_seconds"} {
		if !bytes.Contains(body, []byte(key)) {
			t.Errorf("stats body missing %q: %s", key, body)
		}
	}
}

// TestGenerateSchedulingFields: priority and ttft_deadline_ms are
// accepted and echoed, and invalid values get a structured 400.
func TestGenerateSchedulingFields(t *testing.T) {
	srv, _ := newLiveServer(t, serve.Config{QueueDepth: 8, Policy: serve.SLOPolicy{}})
	resp, body := doJSON(t, srv, http.MethodPost, "/v1/generate", GenerateRequest{
		PromptLen: 64, OutputLen: 8, Priority: "batch", TTFTDeadlineMs: 500,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res serve.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Class != serve.ClassBatch {
		t.Errorf("echoed class %q, want batch", res.Class)
	}

	for _, bad := range []GenerateRequest{
		{PromptLen: 64, OutputLen: 8, Priority: "urgent"},
		{PromptLen: 64, OutputLen: 8, TTFTDeadlineMs: -1},
	} {
		resp, body := doJSON(t, srv, http.MethodPost, "/v1/generate", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad request %+v status %d, want 400 (%s)", bad, resp.StatusCode, body)
		}
		var e struct {
			Error apiError `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != ErrCodeInvalidRequest {
			t.Errorf("400 body %s, want code %q", body, ErrCodeInvalidRequest)
		}
	}
}

// TestStructuredBackpressure: 429 and 503 carry machine-readable codes,
// and Retry-After is a positive integer derived from the queue state.
func TestStructuredBackpressure(t *testing.T) {
	live := newLiveBackend(t, serve.Config{QueueDepth: 1})
	srv := httptest.NewServer(NewLiveMux(live))
	t.Cleanup(srv.Close)

	if _, err := live.Submit(serve.Request{PromptLen: 32, OutputLen: 8}); err != nil {
		t.Fatal(err)
	}
	resp, body := doJSON(t, srv, http.MethodPost, "/v1/generate", GenerateRequest{
		PromptLen: 32, OutputLen: 8,
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", resp.StatusCode, body)
	}
	var e struct {
		Error apiError `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != ErrCodeQueueFull {
		t.Errorf("429 body %s, want code %q", body, ErrCodeQueueFull)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	live.Start()
	if err := live.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	resp, body = doJSON(t, srv, http.MethodPost, "/v1/generate", GenerateRequest{PromptLen: 32, OutputLen: 8})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-stop status %d, want 503 (%s)", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != ErrCodeStopped {
		t.Errorf("503 body %s, want code %q", body, ErrCodeStopped)
	}
}

// TestRetryAfterDerivation pins the drain-rate estimate.
func TestRetryAfterDerivation(t *testing.T) {
	cases := []struct {
		st   serve.Stats
		want string
	}{
		{serve.Stats{}, "1"},                                            // no signal yet
		{serve.Stats{Queued: 10}, "1"},                                  // unknown drain rate
		{serve.Stats{Queued: 10, RecentDrainRPS: 2}, "5"},               // 10 queued / 2 rps
		{serve.Stats{Queued: 1000, RecentDrainRPS: 1}, "60"},            // clamped
		{serve.Stats{Queued: 50, RecentDrainRPS: 5000}, "1"},            // fast drain → floor
		{serve.Stats{Queued: 10, Completed: 9, WallSeconds: 3600}, "1"}, // idle history alone is no signal
		// Degenerate rates a custom Backend could report (e.g. a drain
		// window whose wall-clock span was zero): never leak Inf/NaN
		// arithmetic into the header.
		{serve.Stats{Queued: 10, RecentDrainRPS: math.Inf(1)}, "1"},
		{serve.Stats{Queued: 10, RecentDrainRPS: math.NaN()}, "1"},
		{serve.Stats{Queued: 10, RecentDrainRPS: -3}, "1"},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.st); got != c.want {
			t.Errorf("retryAfterSeconds(%+v) = %q, want %q", c.st, got, c.want)
		}
	}
}

// TestRoutedStats: behind a router, /v1/stats reports the fleet
// aggregate plus a per-replica breakdown.
func TestRoutedStats(t *testing.T) {
	r1 := newLiveBackend(t, serve.Config{QueueDepth: 8})
	r2 := newLiveBackend(t, serve.Config{QueueDepth: 8})
	router, err := serve.NewRouter(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	router.Start()
	srv := httptest.NewServer(NewLiveMux(router))
	t.Cleanup(srv.Close)

	for i := 0; i < 4; i++ {
		if resp, body := doJSON(t, srv, http.MethodPost, "/v1/generate", GenerateRequest{
			PromptLen: 64, OutputLen: 8,
		}); resp.StatusCode != http.StatusOK {
			t.Fatalf("generate status %d: %s", resp.StatusCode, body)
		}
	}
	resp, body := doJSON(t, srv, http.MethodGet, "/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st RoutedStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Replicas) != 2 {
		t.Fatalf("replicas %d, want 2 (%s)", len(st.Replicas), body)
	}
	if st.Completed != 4 {
		t.Errorf("aggregate completed %d, want 4 (%s)", st.Completed, body)
	}
	var sum int64
	for i, rep := range st.Replicas {
		sum += rep.Completed
		if rep.TotalKVBlocks <= 0 {
			t.Errorf("replica %d reports no KV plan (%s)", i, body)
		}
	}
	if sum != st.Completed {
		t.Errorf("replica completions %d do not sum to aggregate %d", sum, st.Completed)
	}
}

// TestMethodAndMalformedJSON sweeps every endpoint's wrong-method and
// (for POST endpoints) malformed-body error paths.
func TestMethodAndMalformedJSON(t *testing.T) {
	srv, _ := newLiveServer(t, serve.Config{QueueDepth: 8})

	gets := []string{"/healthz", "/v1/models", "/v1/devices", "/v1/stats"}
	for _, path := range gets {
		if resp, _ := doJSON(t, srv, http.MethodPost, path, nil); resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s status %d, want 405", path, resp.StatusCode)
		}
	}

	posts := []string{"/v1/simulate", "/v1/trace", "/v1/compress", "/v1/generate"}
	for _, path := range posts {
		if resp, _ := doJSON(t, srv, http.MethodGet, path, nil); resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s status %d, want 405", path, resp.StatusCode)
		}
		for _, bad := range []string{`{"prompt_len":`, `[]`, `{"no_such_field":1}`} {
			resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(bad))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("POST %s body %q status %d, want 400", path, bad, resp.StatusCode)
			}
		}
	}
}

// TestStatsExposesAdaptiveControllers: a deployment running both
// closed-loop controllers must surface their operating point — current
// chunk budget, step-time target and EWMA, cache pool target and the
// controller EWMAs — on /v1/stats under stable wire names.
func TestStatsExposesAdaptiveControllers(t *testing.T) {
	srv, _ := newLiveServer(t, serve.Config{
		QueueDepth: 8, AdaptiveChunking: true, TargetStepTime: 0.04,
		PrefixCache: true, AdaptivePrefixCache: true,
	})
	prompt := make([]int, 200)
	for i := range prompt {
		prompt[i] = 31 + i
	}
	if resp, body := doJSON(t, srv, http.MethodPost, "/v1/generate", GenerateRequest{
		Prompt: prompt, OutputLen: 8,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("generate status %d: %s", resp.StatusCode, body)
	}

	resp, body := doJSON(t, srv, http.MethodGet, "/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st serve.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.AdaptiveChunking || !st.AdaptivePrefixCache {
		t.Errorf("adaptive flags missing from stats: %s", body)
	}
	if st.TargetStepTime != 0.04 {
		t.Errorf("target_step_time_seconds = %v, want 0.04", st.TargetStepTime)
	}
	if st.ChunkBudget <= 0 || st.ChunkBudgetMin <= 0 || st.ChunkBudgetMax < st.ChunkBudgetMin {
		t.Errorf("chunk budget fields incoherent: budget=%d min=%d max=%d",
			st.ChunkBudget, st.ChunkBudgetMin, st.ChunkBudgetMax)
	}
	if st.StepTimeEWMA <= 0 {
		t.Errorf("step_time_ewma_seconds = %v, want > 0 after a served request", st.StepTimeEWMA)
	}
	if st.CachePoolTarget <= 0 {
		t.Errorf("cache_pool_target_blocks = %d, want > 0 under adaptive sizing", st.CachePoolTarget)
	}
	// The raw JSON must carry the wire field names the dashboards bind to.
	for _, key := range []string{
		"adaptive_chunking", "chunk_budget_tokens", "chunk_budget_min_tokens", "chunk_budget_max_tokens",
		"target_step_time_seconds", "step_time_ewma_seconds",
		"adaptive_prefix_cache", "cache_pool_target_blocks", "cache_hit_rate_ewma", "cache_pressure_ewma",
	} {
		if !bytes.Contains(body, []byte(key)) {
			t.Errorf("stats body missing %q: %s", key, body)
		}
	}
}
