package kvcache

import (
	"fmt"

	"zipserv/internal/bf16"
	"zipserv/internal/core"
)

// CompressedStore holds KV blocks in TCA-TBE form — the paper's first
// future-work direction (§7): "the TCA-TBE format can be adapted for
// lossless KV Cache compression". Each block's K/V tensor is laid out
// as a (blockTokens × headBytes) BF16 matrix and compressed with the
// same triple-bitmap codec as the weights, so reads remain bit-exact
// and the decode path reuses ZipGEMM's thread-local decompressor.
type CompressedStore struct {
	blocks map[int]*storedBlock

	origBytes int64
	compBytes int64
}

// storedBlock keeps the compressed tensor plus the original geometry:
// KV blocks are short and wide (blockTokens rows), so they are
// reshaped into 64-row, tile-aligned form before encoding to avoid
// paying BlockTile padding, and restored on Get.
type storedBlock struct {
	cm         *core.Compressed
	rows, cols int
}

// NewCompressedStore returns an empty store.
func NewCompressedStore() *CompressedStore {
	return &CompressedStore{blocks: make(map[int]*storedBlock)}
}

// Put compresses and stores the KV tensor of a block, replacing any
// previous content.
func (s *CompressedStore) Put(blockID int, kv *bf16.Matrix) error {
	reshaped := reshapeForTiles(kv)
	cm, err := core.Compress(reshaped)
	if err != nil {
		return fmt.Errorf("kvcache: compressing block %d: %w", blockID, err)
	}
	if old, ok := s.blocks[blockID]; ok {
		s.origBytes -= int64(2 * old.rows * old.cols)
		s.compBytes -= int64(old.cm.SizeBytes())
	}
	s.blocks[blockID] = &storedBlock{cm: cm, rows: kv.Rows, cols: kv.Cols}
	s.origBytes += int64(kv.SizeBytes())
	s.compBytes += int64(cm.SizeBytes())
	return nil
}

// Get decompresses a block bit-exactly in its original shape.
func (s *CompressedStore) Get(blockID int) (*bf16.Matrix, error) {
	sb, ok := s.blocks[blockID]
	if !ok {
		return nil, fmt.Errorf("kvcache: block %d not in store", blockID)
	}
	flat, err := core.Decompress(sb.cm)
	if err != nil {
		return nil, err
	}
	out := &bf16.Matrix{Rows: sb.rows, Cols: sb.cols, Data: flat.Data[:sb.rows*sb.cols]}
	return out, nil
}

// Delete removes a block.
func (s *CompressedStore) Delete(blockID int) {
	if old, ok := s.blocks[blockID]; ok {
		s.origBytes -= int64(2 * old.rows * old.cols)
		s.compBytes -= int64(old.cm.SizeBytes())
		delete(s.blocks, blockID)
	}
}

// reshapeForTiles views the tensor's elements as a 64-row matrix so
// the 64×64 BlockTile grid wastes at most one partial column of tiles
// instead of 3/4 of every block. Element order is preserved, so the
// reshape is invisible to callers.
func reshapeForTiles(kv *bf16.Matrix) *bf16.Matrix {
	n := kv.NumElements()
	if n == 0 || kv.Rows%64 == 0 {
		return kv
	}
	cols := (n + 63) / 64
	flat := make([]bf16.BF16, 64*cols)
	copy(flat, kv.Data)
	return &bf16.Matrix{Rows: 64, Cols: cols, Data: flat}
}

// Len returns the number of stored blocks.
func (s *CompressedStore) Len() int { return len(s.blocks) }

// Ratio returns the aggregate compression ratio of the stored blocks.
func (s *CompressedStore) Ratio() float64 {
	if s.compBytes == 0 {
		return 0
	}
	return float64(s.origBytes) / float64(s.compBytes)
}

// CompressedBytes returns the stored footprint.
func (s *CompressedStore) CompressedBytes() int64 { return s.compBytes }
