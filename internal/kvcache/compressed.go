package kvcache

import (
	"fmt"

	"zipserv/internal/bf16"
	"zipserv/internal/core"
)

// CompressedStore holds KV blocks in TCA-TBE form — the paper's first
// future-work direction (§7): "the TCA-TBE format can be adapted for
// lossless KV Cache compression". Each block's K/V tensor is laid out
// as a (blockTokens × headBytes) BF16 matrix and compressed with the
// same triple-bitmap codec as the weights, so reads remain bit-exact
// and the decode path reuses ZipGEMM's thread-local decompressor.
type CompressedStore struct {
	blocks map[int]*storedBlock

	origBytes int64
	compBytes int64
}

// storedBlock keeps the compressed tensor plus the original geometry:
// KV blocks are short and wide (blockTokens rows), so they are
// reshaped into 64-row, tile-aligned form before encoding to avoid
// paying BlockTile padding, and restored on Get. origSize records the
// logical byte size charged to the store's accounting at Put time;
// replace and Delete subtract exactly this value, so the aggregate
// origBytes can never drift from the sum over live blocks no matter
// how either side of the accounting evolves.
type storedBlock struct {
	cm         *core.Compressed // nil for zero-element blocks (nothing to encode)
	rows, cols int
	origSize   int64
}

// compSize returns a stored block's compressed footprint; zero-element
// blocks carry no codec payload.
func (sb *storedBlock) compSize() int64 {
	if sb.cm == nil {
		return 0
	}
	return int64(sb.cm.SizeBytes())
}

// NewCompressedStore returns an empty store.
func NewCompressedStore() *CompressedStore {
	return &CompressedStore{blocks: make(map[int]*storedBlock)}
}

// Put compresses and stores the KV tensor of a block, replacing any
// previous content.
func (s *CompressedStore) Put(blockID int, kv *bf16.Matrix) error {
	var cm *core.Compressed
	if kv.NumElements() > 0 { // empty blocks store shape only
		var err error
		if cm, err = core.Compress(reshapeForTiles(kv)); err != nil {
			return fmt.Errorf("kvcache: compressing block %d: %w", blockID, err)
		}
	}
	if old, ok := s.blocks[blockID]; ok {
		s.origBytes -= old.origSize
		s.compBytes -= old.compSize()
	}
	sb := &storedBlock{cm: cm, rows: kv.Rows, cols: kv.Cols, origSize: int64(kv.SizeBytes())}
	s.blocks[blockID] = sb
	s.origBytes += sb.origSize
	s.compBytes += sb.compSize()
	return nil
}

// Get decompresses a block bit-exactly in its original shape.
func (s *CompressedStore) Get(blockID int) (*bf16.Matrix, error) {
	sb, ok := s.blocks[blockID]
	if !ok {
		return nil, fmt.Errorf("kvcache: block %d not in store", blockID)
	}
	if sb.cm == nil {
		return &bf16.Matrix{Rows: sb.rows, Cols: sb.cols, Data: []bf16.BF16{}}, nil
	}
	flat, err := core.Decompress(sb.cm)
	if err != nil {
		return nil, err
	}
	out := &bf16.Matrix{Rows: sb.rows, Cols: sb.cols, Data: flat.Data[:sb.rows*sb.cols]}
	return out, nil
}

// Delete removes a block.
func (s *CompressedStore) Delete(blockID int) {
	if old, ok := s.blocks[blockID]; ok {
		s.origBytes -= old.origSize
		s.compBytes -= old.compSize()
		delete(s.blocks, blockID)
	}
}

// Has reports whether a block is stored, without decompressing it.
func (s *CompressedStore) Has(blockID int) bool {
	_, ok := s.blocks[blockID]
	return ok
}

// reshapeForTiles views the tensor's elements as a 64-row matrix so
// the 64×64 BlockTile grid wastes at most one partial column of tiles
// instead of 3/4 of every block. Element order is preserved, so the
// reshape is invisible to callers. The gate is pure geometry: the
// reshape is skipped only when it could not change the tile layout
// (the tensor is empty, or already exactly 64 rows) — row alignment
// alone is not enough, since a 128×8 block is 64-row-aligned yet
// still pays two half-empty tile rows unless reshaped to 64×16.
func reshapeForTiles(kv *bf16.Matrix) *bf16.Matrix {
	n := kv.NumElements()
	if n == 0 || kv.Rows == 64 {
		return kv
	}
	cols := (n + 63) / 64
	flat := make([]bf16.BF16, 64*cols)
	copy(flat, kv.Data)
	return &bf16.Matrix{Rows: 64, Cols: cols, Data: flat}
}

// Len returns the number of stored blocks.
func (s *CompressedStore) Len() int { return len(s.blocks) }

// Ratio returns the aggregate compression ratio of the stored blocks.
// An empty store reports 1.0 — "no compression applied yet", the
// neutral element — so stats and compare consumers can divide by it or
// chart it without special-casing startup (0 would read as infinitely
// bad compression).
func (s *CompressedStore) Ratio() float64 {
	if s.compBytes == 0 {
		return 1.0
	}
	return float64(s.origBytes) / float64(s.compBytes)
}

// OrigBytes returns the logical (uncompressed) footprint of the stored
// blocks — the bytes a claim would decompress back into KV memory.
func (s *CompressedStore) OrigBytes() int64 { return s.origBytes }

// CompressedBytes returns the stored footprint.
func (s *CompressedStore) CompressedBytes() int64 { return s.compBytes }
