package kvcache

import (
	"strings"
	"testing"
)

func newCompressedManager(t *testing.T, totalBlocks, capBlocks int) *Manager {
	t.Helper()
	m := newPrefixManager(t, totalBlocks, capBlocks)
	if err := m.EnableCompressedCache(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCompressedCacheValidation(t *testing.T) {
	m, err := NewManager(Config{BlockTokens: 16, TotalBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnableCompressedCache(); err == nil || !strings.Contains(err.Error(), "prefix") {
		t.Fatalf("enable without prefix cache = %v, want prefix-cache error", err)
	}
	if m.CompressedCacheEnabled() {
		t.Fatal("failed enable left the compressed cache on")
	}
	m2 := newCompressedManager(t, 8, 0)
	if err := m2.EnableCompressedCache(); err == nil {
		t.Fatal("double enable accepted")
	}
	// Off-state accessors report the disabled convention.
	if m.CompressedBlocks() != 0 || m.CompressedKVBytes() != 0 || m.CompressionRatio() != 0 {
		t.Fatal("disabled compressed cache reports non-zero state")
	}
}

// TestFreezeOnReleaseThawOnClaim walks a block through the full cold
// lifecycle: owned → frozen on the refcount-zero release (physical
// block freed, content in the compressed store, trie still
// advertising) → thawed back into a fresh physical block by the next
// identical claim, bit for bit.
func TestFreezeOnReleaseThawOnClaim(t *testing.T) {
	m := newCompressedManager(t, 32, 0)
	prompt := toks(40, 1)

	if err := m.Allocate(1, 40); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitPrefix(1, prompt, 40); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, m)
	if got := m.CompressedBlocks(); got != 0 {
		t.Fatalf("CompressedBlocks while owned = %d, want 0", got)
	}

	// The refcount-zero release freezes the two advertised full blocks
	// instead of parking them: no physical blocks stay behind.
	if err := m.Free(1); err != nil {
		t.Fatal(err)
	}
	if got := m.CompressedBlocks(); got != 2 {
		t.Fatalf("CompressedBlocks after release = %d, want 2", got)
	}
	if got := m.CachedBlocks(); got != 0 {
		t.Fatalf("CachedBlocks = %d, want 0 (frozen, not parked)", got)
	}
	if got := m.FreeBlocks(); got != 32 {
		t.Fatalf("FreeBlocks = %d, want all 32 (frozen blocks hold no physical block)", got)
	}
	if r := m.CompressionRatio(); r <= 1.0 {
		t.Fatalf("CompressionRatio = %v, want > 1.0 on synthesized content", r)
	}
	if m.CompressedKVBytes() <= 0 {
		t.Fatal("CompressedKVBytes not positive with frozen blocks")
	}
	mustInvariants(t, m) // includes the bit-exact re-synthesis check

	// Still advertised: lookups match, and the matched frozen blocks
	// are charged as resurrections (a claim must pop fresh blocks).
	if got := m.Lookup(prompt); got != 32 {
		t.Fatalf("Lookup(frozen prefix) = %d, want 32", got)
	}
	matched, resurrect := m.LookupCost(prompt)
	if matched != 32 || resurrect != 2 {
		t.Fatalf("LookupCost = (%d, %d), want (32, 2)", matched, resurrect)
	}

	// The claim thaws both blocks: content restored into fresh physical
	// blocks, decompress counters advanced, store drained.
	hits := m.PrefixHits()
	got, err := m.ClaimPrefix(2, prompt)
	if err != nil || got != 32 {
		t.Fatalf("ClaimPrefix over frozen blocks = %d, %v; want 32", got, err)
	}
	if m.PrefixHits() != hits+1 {
		t.Fatalf("PrefixHits = %d, want %d", m.PrefixHits(), hits+1)
	}
	if got := m.DecompressClaims(); got != 2 {
		t.Fatalf("DecompressClaims = %d, want 2", got)
	}
	if got := m.DecompressedBytes(); got <= 0 {
		t.Fatal("DecompressedBytes not positive after thaw")
	}
	if got := m.CompressedBlocks(); got != 0 {
		t.Fatalf("CompressedBlocks after thaw = %d, want 0", got)
	}
	if got := m.FreeBlocks(); got != 30 {
		t.Fatalf("FreeBlocks after thaw = %d, want 30", got)
	}
	mustInvariants(t, m)

	// Release refreezes; a second cycle reuses the same path.
	if err := m.Free(2); err != nil {
		t.Fatal(err)
	}
	if got := m.CompressedBlocks(); got != 2 {
		t.Fatalf("CompressedBlocks after refreeze = %d, want 2", got)
	}
	mustInvariants(t, m)
}

// TestFrozenSurvivesFullOccupancy is the capacity win at the allocator
// level: frozen content costs no physical blocks, so a workload that
// fills the entire plan cannot evict it — where the plain prefix cache
// would have surrendered its parked blocks to the same pressure.
func TestFrozenSurvivesFullOccupancy(t *testing.T) {
	m := newCompressedManager(t, 4, 0)
	prompt := toks(40, 1) // 2 full cacheable blocks + a partial tail
	if err := m.Allocate(1, 40); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitPrefix(1, prompt, 40); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(1); err != nil {
		t.Fatal(err)
	}
	if got := m.CompressedBlocks(); got != 2 {
		t.Fatalf("CompressedBlocks = %d, want 2", got)
	}

	// Fill the whole 4-block plan with an unrelated sequence.
	if err := m.Allocate(2, 64); err != nil {
		t.Fatalf("full-plan allocation failed with frozen blocks present: %v", err)
	}
	if got := m.FreeBlocks(); got != 0 {
		t.Fatalf("FreeBlocks = %d, want 0", got)
	}
	if got := m.CompressedBlocks(); got != 2 {
		t.Fatalf("full occupancy evicted frozen blocks: %d left, want 2", got)
	}
	mustInvariants(t, m)

	// Drain and reclaim: the frozen prefix is still there to thaw.
	if err := m.Free(2); err != nil {
		t.Fatal(err)
	}
	got, err := m.ClaimPrefix(3, prompt)
	if err != nil || got != 32 {
		t.Fatalf("ClaimPrefix after occupancy episode = %d, %v; want 32", got, err)
	}
	if got := m.DecompressClaims(); got != 2 {
		t.Fatalf("DecompressClaims = %d, want 2", got)
	}
	mustInvariants(t, m)
}

// TestFrozenCountsAgainstPoolCap: the pool bound caps advertised cold
// content wherever it lives — parked or frozen — so a tight cap evicts
// frozen leaves (compressed store shrinks with the trie).
func TestFrozenCountsAgainstPoolCap(t *testing.T) {
	m := newCompressedManager(t, 8, 1)
	prompt := toks(32, 1)
	if err := m.Allocate(1, 32); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitPrefix(1, prompt, 32); err != nil {
		t.Fatal(err)
	}
	evictions := m.PrefixEvictions()
	if err := m.Free(1); err != nil {
		t.Fatal(err)
	}
	// Two blocks froze, cap is 1: the leaf-first eviction must have
	// dropped one frozen block (the deeper one) from trie and store.
	if got := m.CompressedBlocks(); got != 1 {
		t.Fatalf("CompressedBlocks under cap 1 = %d, want 1", got)
	}
	if m.PrefixEvictions() != evictions+1 {
		t.Fatalf("PrefixEvictions = %d, want %d", m.PrefixEvictions(), evictions+1)
	}
	// The surviving root block still matches a 16-token claim.
	if got := m.Lookup(prompt[:20]); got != 16 {
		t.Fatalf("Lookup after cap eviction = %d, want 16", got)
	}
	mustInvariants(t, m)

	// Dropping the cap to 1-below evicts the rest.
	if err := m.SetPrefixCacheCap(1); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, m)
}

// TestAdaptiveCacheHoldsUnderPressureWhenCompressed: with the
// compressed cache on, capacity pressure must not shrink the pool
// target — frozen blocks hold no physical capacity, so eviction would
// destroy reusable content and relieve nothing.
func TestAdaptiveCacheHoldsUnderPressureWhenCompressed(t *testing.T) {
	plain := newPrefixManager(t, 16, 0)
	comp := newCompressedManager(t, 16, 0)
	for _, m := range []*Manager{plain, comp} {
		if err := m.EnableAdaptivePrefixCache(1, 8); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		plain.AdaptCacheEpoch(1, 0, true)
		comp.AdaptCacheEpoch(1, 0, true)
	}
	if got := plain.PrefixCacheCap(); got >= 8 {
		t.Fatalf("plain pool cap = %d, want shrunk below 8 under pressure", got)
	}
	if got := comp.PrefixCacheCap(); got != 8 {
		t.Fatalf("compressed pool cap = %d, want held at 8 under pressure", got)
	}
	// The growth path stays live in both.
	for i := 0; i < 50; i++ {
		comp.AdaptCacheEpoch(4, 4, false)
	}
	if got := comp.PrefixCacheCap(); got != 8 {
		t.Fatalf("compressed pool cap after hits = %d, want ceiling 8", got)
	}
}
