package kvcache

import (
	"testing"
)

// toks builds a deterministic token sequence; equal seeds share every
// position, so prefixes built from one seed are content-identical.
func toks(n, seed int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = seed*100003 + i*131 + 7
	}
	return out
}

func newPrefixManager(t *testing.T, totalBlocks, capBlocks int) *Manager {
	t.Helper()
	m, err := NewManager(Config{BlockTokens: 16, TotalBlocks: totalBlocks})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnablePrefixCache(capBlocks); err != nil {
		t.Fatal(err)
	}
	return m
}

func mustInvariants(t *testing.T, m *Manager) {
	t.Helper()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixLookupClaimAndResurrect(t *testing.T) {
	m := newPrefixManager(t, 32, 0)
	prompt := toks(40, 1)

	// Prefill seq 1 the long way, then advertise its full blocks.
	if err := m.Allocate(1, 40); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitPrefix(1, prompt, 40); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, m)

	if got := m.Lookup(prompt); got != 32 {
		t.Fatalf("Lookup(full prompt) = %d, want 32 (two full blocks)", got)
	}
	if got := m.Lookup(prompt[:20]); got != 16 {
		t.Fatalf("Lookup(20 tokens) = %d, want 16", got)
	}
	// A fully cached block-aligned prompt is capped one token short so
	// the sequence still computes the position sampling its first
	// output token.
	if got := m.Lookup(prompt[:32]); got != 31 {
		t.Fatalf("Lookup(fully cached aligned prompt) = %d, want 31 (capped)", got)
	}
	if got := m.Lookup(toks(40, 99)); got != 0 {
		t.Fatalf("Lookup(unrelated prompt) = %d, want 0", got)
	}

	// Seq 2 shares the two full prefix blocks by reference.
	matched, err := m.ClaimPrefix(2, prompt)
	if err != nil || matched != 32 {
		t.Fatalf("ClaimPrefix = %d, %v; want 32", matched, err)
	}
	t1, _ := m.BlockTable(1)
	t2, _ := m.BlockTable(2)
	if t1[0] != t2[0] || t1[1] != t2[1] {
		t.Fatalf("claimed table %v does not share blocks with %v", t2, t1)
	}
	if got := m.SharedBlocks(); got != 2 {
		t.Fatalf("SharedBlocks = %d, want 2", got)
	}
	mustInvariants(t, m)

	// Seq 2 grows past the shared prefix into private blocks.
	if err := m.Extend(2, 8); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, m)

	// Releasing the original leaves the shared blocks with seq 2.
	if err := m.Free(1); err != nil {
		t.Fatal(err)
	}
	if got := m.SharedBlocks(); got != 0 {
		t.Fatalf("SharedBlocks after Free(1) = %d, want 0", got)
	}
	mustInvariants(t, m)

	// Releasing the last reference parks the registered blocks in the
	// cached pool: they still count as free capacity, and an identical
	// prompt resurrects them.
	if err := m.Free(2); err != nil {
		t.Fatal(err)
	}
	if got := m.FreeBlocks(); got != 32 {
		t.Fatalf("FreeBlocks after drain = %d, want 32", got)
	}
	if got := m.CachedBlocks(); got != 2 {
		t.Fatalf("CachedBlocks after drain = %d, want 2", got)
	}
	mustInvariants(t, m)

	hits := m.PrefixHits()
	if matched, err = m.ClaimPrefix(3, prompt); err != nil || matched != 32 {
		t.Fatalf("resurrecting ClaimPrefix = %d, %v; want 32", matched, err)
	}
	if m.PrefixHits() != hits+1 {
		t.Fatalf("PrefixHits = %d, want %d", m.PrefixHits(), hits+1)
	}
	if got := m.CachedBlocks(); got != 0 {
		t.Fatalf("CachedBlocks after resurrection = %d, want 0", got)
	}
	if got := m.PrefixTokensSaved(); got != 64 {
		t.Fatalf("PrefixTokensSaved = %d, want 64", got)
	}
	mustInvariants(t, m)
}

// TestPrefixCopyOnWrite covers the partially consumed shared tail: a
// fully cached block-aligned prompt claims every block but recomputes
// its final token, so the first Extend writes into a shared block and
// must copy it, never mutate it.
func TestPrefixCopyOnWrite(t *testing.T) {
	m := newPrefixManager(t, 16, 0)
	prompt := toks(32, 2)

	if err := m.Allocate(1, 32); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitPrefix(1, prompt, 32); err != nil {
		t.Fatal(err)
	}
	t1, _ := m.BlockTable(1)

	matched, err := m.ClaimPrefix(2, prompt)
	if err != nil || matched != 31 {
		t.Fatalf("ClaimPrefix = %d, %v; want 31 (capped)", matched, err)
	}
	if m.Tokens(2) != 31 {
		t.Fatalf("Tokens(2) = %d, want 31", m.Tokens(2))
	}

	// Recomputing token 31 writes into the shared tail block.
	if err := m.Extend(2, 1); err != nil {
		t.Fatal(err)
	}
	if got := m.CowCopies(); got != 1 {
		t.Fatalf("CowCopies = %d, want 1", got)
	}
	t2, _ := m.BlockTable(2)
	if t2[0] != t1[0] {
		t.Fatalf("full interior block not shared: %v vs %v", t2, t1)
	}
	if t2[1] == t1[1] {
		t.Fatalf("shared tail block %d mutated in place instead of copied", t1[1])
	}
	mustInvariants(t, m)

	// The advertised content is untouched: a third request still
	// matches and claims the ORIGINAL blocks.
	matched, err = m.ClaimPrefix(3, prompt)
	if err != nil || matched != 31 {
		t.Fatalf("post-COW ClaimPrefix = %d, %v; want 31", matched, err)
	}
	t3, _ := m.BlockTable(3)
	if t3[0] != t1[0] || t3[1] != t1[1] {
		t.Fatalf("post-COW claim %v, want the original blocks %v", t3, t1)
	}
	mustInvariants(t, m)
}

// TestPrefixCowWhenSoleOwnerButAdvertised: refcount 1 is not licence
// to write — a block resurrected from the cached pool is still the
// trie's advertised content and must be copied before a write.
func TestPrefixCowWhenSoleOwnerButAdvertised(t *testing.T) {
	m := newPrefixManager(t, 16, 0)
	prompt := toks(32, 3)

	if err := m.Allocate(1, 32); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitPrefix(1, prompt, 32); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(1); err != nil {
		t.Fatal(err)
	}

	matched, err := m.ClaimPrefix(2, prompt)
	if err != nil || matched != 31 {
		t.Fatalf("ClaimPrefix = %d, %v; want 31", matched, err)
	}
	if err := m.Extend(2, 1); err != nil {
		t.Fatal(err)
	}
	if got := m.CowCopies(); got != 1 {
		t.Fatalf("CowCopies = %d, want 1 (sole owner still may not write cached content)", got)
	}
	// The original tail block went back to the cached pool and stays
	// matchable.
	if got := m.Lookup(prompt); got != 31 {
		t.Fatalf("Lookup after COW = %d, want 31", got)
	}
	mustInvariants(t, m)
}

// TestPrefixEvictionRacesAdmission: allocation pressure may only
// reclaim refcount-zero cached blocks — a block claimed by an
// admission a moment earlier must survive the eviction scan, and an
// allocation that cannot be covered by free+cached fails atomically.
func TestPrefixEvictionRacesAdmission(t *testing.T) {
	m := newPrefixManager(t, 4, 0)
	prompt := toks(64, 4)

	if err := m.Allocate(1, 64); err != nil { // all 4 blocks
		t.Fatal(err)
	}
	if err := m.CommitPrefix(1, prompt, 64); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(1); err != nil {
		t.Fatal(err)
	}
	if got := m.CachedBlocks(); got != 4 {
		t.Fatalf("CachedBlocks = %d, want 4", got)
	}

	// Admission claims the first two cached blocks...
	matched, err := m.ClaimPrefix(2, prompt[:40])
	if err != nil || matched != 32 {
		t.Fatalf("ClaimPrefix = %d, %v; want 32", matched, err)
	}
	t2, _ := m.BlockTable(2)

	// ...so a 3-block allocation exceeds the 2 reclaimable blocks and
	// must fail atomically without touching the claimed ones.
	if err := m.Allocate(3, 48); err == nil {
		t.Fatal("Allocate(48 tokens) succeeded with only 2 reclaimable blocks")
	}
	mustInvariants(t, m)

	// A 2-block allocation evicts exactly the refcount-zero cached
	// blocks; the claimed blocks survive with their content matchable.
	if err := m.Allocate(3, 32); err != nil {
		t.Fatal(err)
	}
	if got := m.CachedBlocks(); got != 0 {
		t.Fatalf("CachedBlocks after pressure = %d, want 0", got)
	}
	if m.PrefixEvictions() == 0 {
		t.Fatal("eviction under pressure not counted")
	}
	after, _ := m.BlockTable(2)
	if after[0] != t2[0] || after[1] != t2[1] {
		t.Fatalf("claimed blocks changed under eviction: %v vs %v", after, t2)
	}
	if got := m.Lookup(prompt[:40]); got != 32 {
		t.Fatalf("Lookup(claimed prefix) = %d, want 32 (owned blocks stay advertised)", got)
	}
	mustInvariants(t, m)
}

// TestPrefixPreemptionReleasesShared: freeing a preempted sequence
// drops references, not blocks — the surviving sharer keeps its table
// and the blocks never hit the free list while referenced.
func TestPrefixPreemptionReleasesShared(t *testing.T) {
	m := newPrefixManager(t, 8, 0)
	prompt := toks(48, 5)

	if err := m.Allocate(1, 48); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitPrefix(1, prompt, 48); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ClaimPrefix(2, prompt); err != nil {
		t.Fatal(err)
	}
	free := m.FreeBlocks()

	// Preempt the original mid-flight.
	if err := m.Free(1); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, m)
	// Seq 2 still owns every shared block, so preempting seq 1 frees
	// nothing: no block ever reaches the free list while referenced.
	if got := m.FreeBlocks(); got != free {
		t.Fatalf("FreeBlocks after preempting sharer = %d, want %d (all blocks still referenced)", got, free)
	}
	if err := m.Extend(2, 16); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, m)
	if err := m.Free(2); err != nil {
		t.Fatal(err)
	}
	if got, want := m.FreeBlocks(), 8; got != want {
		t.Fatalf("FreeBlocks after drain = %d, want %d", got, want)
	}
	mustInvariants(t, m)
}

func TestPrefixCacheCapBoundsParkedBlocks(t *testing.T) {
	m := newPrefixManager(t, 8, 1)
	prompt := toks(48, 6)

	if err := m.Allocate(1, 48); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitPrefix(1, prompt, 48); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(1); err != nil {
		t.Fatal(err)
	}
	if got := m.CachedBlocks(); got > 1 {
		t.Fatalf("CachedBlocks = %d, want <= 1 (cap)", got)
	}
	if m.PrefixEvictions() == 0 {
		t.Fatal("cap enforcement not counted as evictions")
	}
	mustInvariants(t, m)
}

func TestPrefixEnableValidation(t *testing.T) {
	m, err := NewManager(Config{BlockTokens: 16, TotalBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnablePrefixCache(-1); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if err := m.Allocate(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := m.EnablePrefixCache(0); err == nil {
		t.Fatal("enabling on a non-empty manager accepted")
	}
}

// TestPrefixDisabledUnchanged: without EnablePrefixCache the prefix
// entry points are inert and the allocator behaves exactly as before.
func TestPrefixDisabledUnchanged(t *testing.T) {
	m, err := NewManager(Config{BlockTokens: 16, TotalBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Lookup(toks(32, 7)); got != 0 {
		t.Fatalf("Lookup on disabled cache = %d, want 0", got)
	}
	if _, err := m.ClaimPrefix(1, toks(32, 7)); err == nil {
		t.Fatal("ClaimPrefix on disabled cache accepted")
	}
	if err := m.Allocate(1, 20); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitPrefix(1, toks(32, 7), 20); err != nil {
		t.Fatal(err) // no-op, not an error
	}
	if err := m.Free(1); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, m)
}
