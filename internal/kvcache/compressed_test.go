package kvcache

import (
	"math"
	"testing"

	"zipserv/internal/bf16"
	"zipserv/internal/core"
	"zipserv/internal/weights"
)

// TestCompressedStoreAccountingChurn locks the unified byte accounting
// through insert / replace / delete churn across mixed geometries: the
// store's OrigBytes must equal the sum over live blocks of the sizes
// they were Put with, whatever order they were replaced or deleted in.
// The pre-fix code computed the insert side (kv.SizeBytes()) and the
// remove side (2*old.rows*old.cols) independently — numerically equal
// only by coincidence of the Matrix invariants, and with no accessor to
// observe the original footprint at all — so the aggregate could drift
// silently the moment either side's definition moved.
func TestCompressedStoreAccountingChurn(t *testing.T) {
	type op struct {
		del        bool
		id         int
		rows, cols int
	}
	steps := []op{
		{id: 1, rows: 16, cols: 256},
		{id: 2, rows: 64, cols: 64},
		{id: 3, rows: 128, cols: 8}, // 64-row-aligned but narrow
		{id: 1, rows: 7, cols: 33},  // replace with a different geometry
		{del: true, id: 2},
		{id: 2, rows: 0, cols: 5}, // zero-element insert
		{id: 2, rows: 3, cols: 3}, // replace the empty block
		{del: true, id: 9},        // absent delete is a no-op
		{del: true, id: 1},
		{del: true, id: 2},
		{del: true, id: 3},
	}
	s := NewCompressedStore()
	live := map[int]int64{} // id -> logical bytes Put
	seed := int64(1)
	for i, o := range steps {
		if o.del {
			s.Delete(o.id)
			delete(live, o.id)
		} else {
			kv := weights.Gaussian(o.rows, o.cols, 1.0, seed)
			seed++
			if err := s.Put(o.id, kv); err != nil {
				t.Fatalf("step %d: Put(%d, %dx%d): %v", i, o.id, o.rows, o.cols, err)
			}
			live[o.id] = int64(kv.SizeBytes())
		}
		var want int64
		for _, b := range live {
			want += b
		}
		if got := s.OrigBytes(); got != want {
			t.Fatalf("step %d (%+v): OrigBytes = %d, want %d", i, o, got, want)
		}
		if got := s.Len(); got != len(live) {
			t.Fatalf("step %d (%+v): Len = %d, want %d", i, o, got, len(live))
		}
	}
	// Full drain: both aggregates must return to exactly zero — any
	// insert/remove asymmetry leaves a residue here.
	if s.OrigBytes() != 0 || s.CompressedBytes() != 0 {
		t.Fatalf("drained store holds orig=%d comp=%d bytes", s.OrigBytes(), s.CompressedBytes())
	}
}

// TestReshapeNarrowAlignedBlock pins the reshape gate to geometry, not
// row alignment: a 128×8 block is 64-row-aligned, yet laid out as-is it
// spans two tile rows at an eighth of a tile's width each — seven
// eighths padding. The pre-fix guard (kv.Rows%64 == 0) skipped the
// reshape for it and paid double the compressed footprint of the
// equivalent 64×16 layout, breaking the documented "at most one partial
// column of tiles" guarantee.
func TestReshapeNarrowAlignedBlock(t *testing.T) {
	narrow := weights.Gaussian(128, 8, 1.0, 11)
	square := &bf16.Matrix{Rows: 64, Cols: 16, Data: narrow.Data}

	sizeOf := func(kv *bf16.Matrix) int {
		t.Helper()
		cm, err := core.Compress(reshapeForTiles(kv))
		if err != nil {
			t.Fatal(err)
		}
		return cm.SizeBytes()
	}
	if got, want := sizeOf(narrow), sizeOf(square); got != want {
		t.Fatalf("128x8 compresses to %d bytes, equivalent 64x16 to %d — reshape skipped", got, want)
	}

	// And the reshape stays invisible to callers: the round trip
	// restores the original narrow shape bit for bit.
	s := NewCompressedStore()
	if err := s.Put(1, narrow); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if !narrow.Equal(got) {
		t.Fatal("128x8 block not bit-exact after reshaped compression")
	}
}

// TestReshapeExactTileRowSkipped: a tensor already exactly 64 rows wide
// cannot change tile layout by reshaping, so the gate must pass it
// through untouched (no copy).
func TestReshapeExactTileRowSkipped(t *testing.T) {
	kv := weights.Gaussian(64, 48, 1.0, 12)
	if got := reshapeForTiles(kv); got != kv {
		t.Fatal("64-row tensor was reshaped (copied) for no layout change")
	}
	empty := &bf16.Matrix{Rows: 0, Cols: 7}
	if got := reshapeForTiles(empty); got != empty {
		t.Fatal("zero-element tensor was reshaped")
	}
}

// TestRatioEmptyStoreIsNeutral documents the empty-store convention:
// Ratio() is 1.0 ("no compression applied yet"), the value stats and
// compare consumers can divide by or chart without special-casing
// startup. The pre-fix 0 read as infinitely bad compression.
func TestRatioEmptyStoreIsNeutral(t *testing.T) {
	s := NewCompressedStore()
	if got := s.Ratio(); got != 1.0 {
		t.Fatalf("empty-store Ratio = %v, want 1.0", got)
	}
	kv := weights.Gaussian(16, 256, 0.02, 13)
	if err := s.Put(1, kv); err != nil {
		t.Fatal(err)
	}
	if got := s.Ratio(); got <= 1.0 || math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("Ratio on compressible content = %v, want finite > 1.0", got)
	}
	s.Delete(1)
	if got := s.Ratio(); got != 1.0 {
		t.Fatalf("drained-store Ratio = %v, want 1.0 again", got)
	}
}

// FuzzCompressedStoreRoundtrip drives Put/Get/replace/Delete across
// random geometries — zero-element, partial-tail, 64-row-aligned
// narrow — with arbitrary BF16 bit patterns (NaNs, infinities,
// subnormals included: the codec is lossless or it is wrong), checking
// bit-exact round trips and that the byte accounting drains to zero.
func FuzzCompressedStoreRoundtrip(f *testing.F) {
	f.Add(uint8(16), uint8(255), uint8(64), uint8(16), int64(1))
	f.Add(uint8(0), uint8(5), uint8(3), uint8(3), int64(2))    // zero-element first
	f.Add(uint8(128), uint8(8), uint8(7), uint8(33), int64(3)) // aligned-narrow, partial tail
	f.Add(uint8(64), uint8(64), uint8(1), uint8(1), int64(4))  // exact tile, single element
	f.Fuzz(func(t *testing.T, r1, c1, r2, c2 uint8, seed int64) {
		mk := func(rows, cols int) *bf16.Matrix {
			m := bf16.NewMatrix(rows, cols)
			x := uint64(seed)*2654435761 + uint64(rows)<<16 + uint64(cols) + 0x9e3779b97f4a7c15
			for i := range m.Data {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				m.Data[i] = bf16.FromBits(uint16(x))
			}
			return m
		}
		s := NewCompressedStore()
		a := mk(int(r1), int(c1))
		if err := s.Put(1, a); err != nil {
			t.Fatalf("Put(%dx%d): %v", r1, c1, err)
		}
		got, err := s.Get(1)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(got) {
			t.Fatalf("%dx%d not bit-exact (first diff at %d)", r1, c1, a.FirstDiff(got))
		}
		// Replace under a different geometry, then round-trip again.
		b := mk(int(r2), int(c2))
		if err := s.Put(1, b); err != nil {
			t.Fatalf("replace Put(%dx%d): %v", r2, c2, err)
		}
		if got, err = s.Get(1); err != nil {
			t.Fatal(err)
		}
		if !b.Equal(got) {
			t.Fatalf("replacement %dx%d not bit-exact (first diff at %d)", r2, c2, b.FirstDiff(got))
		}
		if want := int64(b.SizeBytes()); s.OrigBytes() != want {
			t.Fatalf("OrigBytes after replace = %d, want %d", s.OrigBytes(), want)
		}
		s.Delete(1)
		if s.Len() != 0 || s.OrigBytes() != 0 || s.CompressedBytes() != 0 || s.Ratio() != 1.0 {
			t.Fatalf("drained store: len=%d orig=%d comp=%d ratio=%v",
				s.Len(), s.OrigBytes(), s.CompressedBytes(), s.Ratio())
		}
	})
}
