// Package kvcache implements a paged KV-cache manager in the style of
// vLLM's PagedAttention (§6.5 of the ZipServ paper): device memory is
// carved into fixed-size token blocks, sequences own block tables, and
// capacity freed by weight compression converts directly into more
// resident tokens — the mechanism behind the paper's Figure 17 memory
// breakdown (KV capacity 5.07 → 8.60 GB, a 1.70× increase).
//
// The package also implements the paper's first future-work direction
// (§7): lossless KV-block compression with TCA-TBE, in CompressedStore.
package kvcache

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultBlockTokens is the paged-attention block granularity.
const DefaultBlockTokens = 16

// Config sizes a cache.
type Config struct {
	// BlockTokens is the number of token positions per block.
	BlockTokens int
	// TotalBlocks is the number of blocks the device budget allows.
	TotalBlocks int
}

// seqState is one live sequence's allocation: its block table and token
// count together, so the scheduler hot path touches one map entry (and
// one pooled allocation) per sequence instead of two.
type seqState struct {
	table  []int
	tokens int
}

// seqStatePool recycles sequence states (and, through them, block-table
// backing arrays) across sequences and across Manager instances, so a
// steady-state serving loop admits and retires sequences without
// allocating.
var seqStatePool = sync.Pool{New: func() any { return new(seqState) }}

func getSeqState() *seqState { return seqStatePool.Get().(*seqState) }

func putSeqState(st *seqState) {
	st.table = st.table[:0]
	st.tokens = 0
	seqStatePool.Put(st)
}

// Manager allocates KV blocks to sequences. It is not safe for
// concurrent use; the serving engine serialises scheduler decisions,
// as vLLM's does.
//
// With EnablePrefixCache, blocks become reference-counted and
// content-addressed so requests sharing a prompt prefix share physical
// blocks (see prefix.go); without it, every block has exactly one
// owner and behaviour is unchanged.
type Manager struct {
	cfg      Config
	freeList []int
	seqs     map[int]*seqState

	prefix *prefixIndex // nil = prefix caching off
	refcnt []int        // per-block table references (prefix mode only)
	pops   int64        // lifetime physical block claims
	gen    int64        // bumped on mutations that can change prefix lookups

	summary    *PrefixSummary // memoized trie digest (see summary.go)
	summaryGen int64          // generation the memoized digest was built at

	// Compressed cold-block state (see coldstore.go; nil = off).
	compStore    *CompressedStore
	frozenSeq    int   // next compressed-store key (ids start at 1)
	decompClaims int64 // frozen blocks restored by prefix claims
	decompBytes  int64 // logical bytes decompressed by those claims

	// Codec fault injection (see SetCodecFault): while codecFault
	// returns true, freeze degrades to plain physical parking; each
	// degraded freeze counts into codecFallbacks (as does a real codec
	// rejection).
	codecFault     func() bool
	codecFallbacks int64
}

// NewManager builds a manager with all blocks free.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.BlockTokens <= 0 {
		return nil, fmt.Errorf("kvcache: block size %d must be positive", cfg.BlockTokens)
	}
	if cfg.TotalBlocks <= 0 {
		return nil, fmt.Errorf("kvcache: total blocks %d must be positive", cfg.TotalBlocks)
	}
	m := &Manager{
		cfg:      cfg,
		freeList: make([]int, cfg.TotalBlocks),
		seqs:     make(map[int]*seqState),
	}
	// Free list in descending order so allocation pops ascending ids.
	for i := range m.freeList {
		m.freeList[i] = cfg.TotalBlocks - 1 - i
	}
	return m, nil
}

// FreeBlocks returns the number of blocks available to allocations:
// truly free blocks plus refcount-zero cached prefix blocks, which are
// reclaimed LRU-first under pressure.
func (m *Manager) FreeBlocks() int {
	n := len(m.freeList)
	if m.prefix != nil {
		n += len(m.prefix.cached)
	}
	return n
}

// UsedBlocks returns the number of blocks owned by live sequences.
func (m *Manager) UsedBlocks() int { return m.cfg.TotalBlocks - m.FreeBlocks() }

// Pops returns the lifetime count of physical block claims (allocation
// and copy-on-write). Schedulers difference it around a mutation to
// learn the real capacity consumed — under prefix sharing the block
// table's length alone undercounts copy-on-write claims.
func (m *Manager) Pops() int64 { return m.pops }

// Generation returns a counter bumped on every mutation that can change
// the result of a prefix lookup (trie registration, eviction, refcount
// transitions, pool resizing). A scheduler memoizes LookupCost per
// (request, generation): as long as the generation is unchanged, the
// memoized match is exact and the trie walk can be skipped.
func (m *Manager) Generation() int64 { return m.gen }

// Sequences returns the ids of live sequences in ascending order.
func (m *Manager) Sequences() []int {
	out := make([]int, 0, len(m.seqs))
	for id := range m.seqs {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Tokens returns the token count of a sequence (0 if absent).
func (m *Manager) Tokens(seqID int) int {
	if st := m.seqs[seqID]; st != nil {
		return st.tokens
	}
	return 0
}

// BlockTable returns a copy of the sequence's block table.
func (m *Manager) BlockTable(seqID int) ([]int, error) {
	st, ok := m.seqs[seqID]
	if !ok {
		return nil, fmt.Errorf("kvcache: unknown sequence %d", seqID)
	}
	return append([]int(nil), st.table...), nil
}

// BlocksFor returns the number of blocks needed to hold the given
// token count at the given block granularity. Schedulers use it to
// size conservative admission reservations.
func BlocksFor(tokens, blockTokens int) int {
	return (tokens + blockTokens - 1) / blockTokens
}

// Allocate admits a new sequence with an initial prompt of numTokens,
// claiming all blocks it needs. It fails atomically (no blocks leak)
// when capacity is insufficient or the id is in use.
func (m *Manager) Allocate(seqID, numTokens int) error {
	if _, dup := m.seqs[seqID]; dup {
		return fmt.Errorf("kvcache: sequence %d already allocated", seqID)
	}
	if numTokens <= 0 {
		return fmt.Errorf("kvcache: sequence %d needs positive token count, got %d", seqID, numTokens)
	}
	need := BlocksFor(numTokens, m.cfg.BlockTokens)
	if need > m.FreeBlocks() {
		return fmt.Errorf("kvcache: need %d blocks for %d tokens, only %d free", need, numTokens, m.FreeBlocks())
	}
	st := getSeqState()
	for i := 0; i < need; i++ {
		b := m.pop()
		if m.refcnt != nil {
			m.refcnt[b] = 1
		}
		st.table = append(st.table, b)
	}
	st.tokens = numTokens
	m.seqs[seqID] = st
	return nil
}

// AppendToken extends a sequence by one generated token, claiming a
// new block when it crosses a block boundary.
func (m *Manager) AppendToken(seqID int) error { return m.Extend(seqID, 1) }

// Extend grows a sequence by n tokens at once, claiming every block the
// growth crosses — the chunked-prefill entry point, where one scheduler
// iteration appends a whole prompt chunk rather than a single token. It
// fails atomically (no blocks claimed) when the free list cannot cover
// the growth.
func (m *Manager) Extend(seqID, n int) error {
	st, ok := m.seqs[seqID]
	if !ok {
		return fmt.Errorf("kvcache: unknown sequence %d", seqID)
	}
	if n <= 0 {
		return fmt.Errorf("kvcache: sequence %d extension must be positive, got %d", seqID, n)
	}
	tokens := st.tokens + n
	need := BlocksFor(tokens, m.cfg.BlockTokens) - len(st.table)
	cow := m.cowNeeded(st)
	total := need
	if cow {
		total++ // the private copy of the shared write-target block
	}
	if total > m.FreeBlocks() {
		return fmt.Errorf("kvcache: need %d more blocks to extend sequence %d by %d tokens, only %d free",
			total, seqID, n, m.FreeBlocks())
	}
	if cow {
		// The growth writes into a partially filled block that is
		// shared (or advertised by the prefix trie): copy it first so
		// shared prefix content is never mutated.
		m.copyOnWrite(st)
	}
	for i := 0; i < need; i++ {
		b := m.pop()
		if m.refcnt != nil {
			m.refcnt[b] = 1
		}
		st.table = append(st.table, b)
	}
	st.tokens = tokens
	return nil
}

// Free releases a finished or preempted sequence: every block drops
// one reference. Without prefix caching that returns each block to the
// free list; with it, blocks still referenced by other sequences stay
// alive, and blocks reaching refcount zero park in the cached pool
// while the trie advertises their content.
func (m *Manager) Free(seqID int) error {
	st, ok := m.seqs[seqID]
	if !ok {
		return fmt.Errorf("kvcache: unknown sequence %d", seqID)
	}
	if m.prefix != nil {
		for _, b := range st.table {
			m.releaseBlock(b)
		}
		delete(m.prefix.committed, seqID)
	} else {
		m.freeList = append(m.freeList, st.table...)
	}
	delete(m.seqs, seqID)
	putSeqState(st)
	return nil
}

// pop claims one physical block, reclaiming LRU cached prefix blocks
// when the free list is dry. Callers check FreeBlocks first.
func (m *Manager) pop() int {
	if len(m.freeList) == 0 && m.prefix != nil {
		for len(m.freeList) == 0 {
			// Physically parked victims only: evicting a frozen node
			// drops compressed bytes, not a physical block.
			if !m.evictOne(false) {
				break
			}
		}
	}
	b := m.freeList[len(m.freeList)-1]
	m.freeList = m.freeList[:len(m.freeList)-1]
	m.pops++
	return b
}

// CheckInvariants verifies the allocator's safety properties and every
// block is accounted for. Without prefix caching no block may be owned
// twice across tables and the free list; with it, the stored refcounts
// must equal the true table reference counts, free/cached/owned must
// partition the block space, and cached blocks must be refcount-zero
// and trie-advertised — i.e. no block is ever freed while referenced.
// Tests and the engine's failure-injection suite call this after every
// mutation batch.
func (m *Manager) CheckInvariants() error {
	refs := make(map[int]int, m.cfg.TotalBlocks)
	for id, st := range m.seqs {
		for _, b := range st.table {
			if b < 0 || b >= m.cfg.TotalBlocks {
				return fmt.Errorf("kvcache: block %d out of range", b)
			}
			refs[b]++
			if m.prefix == nil && refs[b] > 1 {
				return fmt.Errorf("kvcache: block %d double-owned without prefix sharing", b)
			}
		}
		need := BlocksFor(st.tokens, m.cfg.BlockTokens)
		if need != len(st.table) {
			return fmt.Errorf("kvcache: seq %d holds %d blocks for %d tokens (need %d)",
				id, len(st.table), st.tokens, need)
		}
	}
	for _, b := range m.freeList {
		if refs[b] > 0 {
			return fmt.Errorf("kvcache: block %d on free list while referenced %d times", b, refs[b])
		}
		refs[b]-- // mark free: -1 distinguishes from unseen
		if refs[b] < -1 {
			return fmt.Errorf("kvcache: block %d on free list twice", b)
		}
	}

	if m.prefix == nil {
		if len(refs) != m.cfg.TotalBlocks {
			return fmt.Errorf("kvcache: %d blocks tracked, want %d", len(refs), m.cfg.TotalBlocks)
		}
		return nil
	}

	tracked, shared := 0, 0
	for b := 0; b < m.cfg.TotalBlocks; b++ {
		want := refs[b]
		if want < 0 {
			want = 0 // free-listed
		}
		if m.refcnt[b] != want {
			return fmt.Errorf("kvcache: block %d refcount %d, tables reference it %d times", b, m.refcnt[b], want)
		}
		if want > 1 {
			shared++
		}
		node, parked := m.prefix.cached[b]
		if parked {
			if want != 0 {
				return fmt.Errorf("kvcache: block %d cached while referenced %d times", b, want)
			}
			if m.prefix.byBlock[b] == nil || node.block != b {
				return fmt.Errorf("kvcache: cached block %d not advertised by the trie", b)
			}
		}
		if _, seen := refs[b]; seen || parked {
			tracked++
		}
	}
	for b, node := range m.prefix.byBlock {
		if node.block != b {
			return fmt.Errorf("kvcache: trie node for block %d points at block %d", b, node.block)
		}
		if node.frozenID != 0 {
			return fmt.Errorf("kvcache: trie node for block %d still carries frozen id %d", b, node.frozenID)
		}
		if node.parent == nil || node.parent.children[node.key] != node {
			return fmt.Errorf("kvcache: trie node for block %d detached from its parent", b)
		}
		if m.refcnt[b] == 0 {
			if _, parked := m.prefix.cached[b]; !parked {
				return fmt.Errorf("kvcache: registered block %d unreferenced but not cached (leaked)", b)
			}
		}
	}
	if tracked != m.cfg.TotalBlocks {
		return fmt.Errorf("kvcache: %d blocks tracked, want %d", tracked, m.cfg.TotalBlocks)
	}
	if m.prefix.shared != shared {
		return fmt.Errorf("kvcache: shared-block counter %d, true count %d", m.prefix.shared, shared)
	}
	if m.compStore != nil {
		// Frozen nodes hold no physical block but must stay advertised,
		// be backed by the compressed store one-for-one, and decompress
		// bit-exactly to the content their key addresses.
		if got, want := len(m.prefix.frozen), m.compStore.Len(); got != want {
			return fmt.Errorf("kvcache: %d frozen trie nodes, compressed store holds %d blocks", got, want)
		}
		for id, n := range m.prefix.frozen {
			if n.frozenID != id {
				return fmt.Errorf("kvcache: frozen node under id %d carries id %d", id, n.frozenID)
			}
			if n.block != -1 {
				return fmt.Errorf("kvcache: frozen node %d still holds physical block %d", id, n.block)
			}
			if n.parent == nil || n.parent.children[n.key] != n {
				return fmt.Errorf("kvcache: frozen node %d detached from its parent", id)
			}
			kv, err := m.compStore.Get(id)
			if err != nil {
				return fmt.Errorf("kvcache: frozen node %d unreadable: %w", id, err)
			}
			if !kv.Equal(blockContent(n.key, m.cfg.BlockTokens)) {
				return fmt.Errorf("kvcache: frozen node %d decompressed content differs from its key's", id)
			}
		}
	}
	return nil
}

// Plan is a capacity plan: how much KV space a device has after
// weights and activations, in blocks and tokens.
type Plan struct {
	VRAMBytes       int64
	WeightBytes     int64
	ReservedBytes   int64 // activations, CUDA context, fragmentation
	KVBytesPerToken int64

	KVBytes   int64
	MaxTokens int64
	Blocks    int
}

// PlanCapacity computes the closed-form capacity plan of §6.5: the
// memory freed by weight compression is repurposed as KV blocks,
// converting static weight savings into dynamic throughput.
func PlanCapacity(vramBytes, weightBytes, reservedBytes, kvBytesPerToken int64, blockTokens int) (Plan, error) {
	if kvBytesPerToken <= 0 || blockTokens <= 0 {
		return Plan{}, fmt.Errorf("kvcache: invalid plan parameters")
	}
	kv := vramBytes - weightBytes - reservedBytes
	if kv < 0 {
		return Plan{}, fmt.Errorf("kvcache: weights (%d B) + reserved (%d B) exceed VRAM (%d B)",
			weightBytes, reservedBytes, vramBytes)
	}
	tokens := kv / kvBytesPerToken
	return Plan{
		VRAMBytes: vramBytes, WeightBytes: weightBytes, ReservedBytes: reservedBytes,
		KVBytesPerToken: kvBytesPerToken,
		KVBytes:         kv, MaxTokens: tokens,
		Blocks: int(tokens) / blockTokens,
	}, nil
}
