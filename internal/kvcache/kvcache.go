// Package kvcache implements a paged KV-cache manager in the style of
// vLLM's PagedAttention (§6.5 of the ZipServ paper): device memory is
// carved into fixed-size token blocks, sequences own block tables, and
// capacity freed by weight compression converts directly into more
// resident tokens — the mechanism behind the paper's Figure 17 memory
// breakdown (KV capacity 5.07 → 8.60 GB, a 1.70× increase).
//
// The package also implements the paper's first future-work direction
// (§7): lossless KV-block compression with TCA-TBE, in CompressedStore.
package kvcache

import (
	"fmt"
	"sort"
)

// DefaultBlockTokens is the paged-attention block granularity.
const DefaultBlockTokens = 16

// Config sizes a cache.
type Config struct {
	// BlockTokens is the number of token positions per block.
	BlockTokens int
	// TotalBlocks is the number of blocks the device budget allows.
	TotalBlocks int
}

// Manager allocates KV blocks to sequences. It is not safe for
// concurrent use; the serving engine serialises scheduler decisions,
// as vLLM's does.
type Manager struct {
	cfg       Config
	freeList  []int
	tables    map[int][]int // seqID → block table
	seqTokens map[int]int   // seqID → token count
}

// NewManager builds a manager with all blocks free.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.BlockTokens <= 0 {
		return nil, fmt.Errorf("kvcache: block size %d must be positive", cfg.BlockTokens)
	}
	if cfg.TotalBlocks <= 0 {
		return nil, fmt.Errorf("kvcache: total blocks %d must be positive", cfg.TotalBlocks)
	}
	m := &Manager{
		cfg:       cfg,
		freeList:  make([]int, cfg.TotalBlocks),
		tables:    make(map[int][]int),
		seqTokens: make(map[int]int),
	}
	// Free list in descending order so allocation pops ascending ids.
	for i := range m.freeList {
		m.freeList[i] = cfg.TotalBlocks - 1 - i
	}
	return m, nil
}

// FreeBlocks returns the number of unallocated blocks.
func (m *Manager) FreeBlocks() int { return len(m.freeList) }

// UsedBlocks returns the number of allocated blocks.
func (m *Manager) UsedBlocks() int { return m.cfg.TotalBlocks - len(m.freeList) }

// Sequences returns the ids of live sequences in ascending order.
func (m *Manager) Sequences() []int {
	out := make([]int, 0, len(m.tables))
	for id := range m.tables {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Tokens returns the token count of a sequence (0 if absent).
func (m *Manager) Tokens(seqID int) int { return m.seqTokens[seqID] }

// BlockTable returns a copy of the sequence's block table.
func (m *Manager) BlockTable(seqID int) ([]int, error) {
	t, ok := m.tables[seqID]
	if !ok {
		return nil, fmt.Errorf("kvcache: unknown sequence %d", seqID)
	}
	return append([]int(nil), t...), nil
}

// BlocksFor returns the number of blocks needed to hold the given
// token count at the given block granularity. Schedulers use it to
// size conservative admission reservations.
func BlocksFor(tokens, blockTokens int) int {
	return (tokens + blockTokens - 1) / blockTokens
}

// Allocate admits a new sequence with an initial prompt of numTokens,
// claiming all blocks it needs. It fails atomically (no blocks leak)
// when capacity is insufficient or the id is in use.
func (m *Manager) Allocate(seqID, numTokens int) error {
	if _, dup := m.tables[seqID]; dup {
		return fmt.Errorf("kvcache: sequence %d already allocated", seqID)
	}
	if numTokens <= 0 {
		return fmt.Errorf("kvcache: sequence %d needs positive token count, got %d", seqID, numTokens)
	}
	need := BlocksFor(numTokens, m.cfg.BlockTokens)
	if need > len(m.freeList) {
		return fmt.Errorf("kvcache: need %d blocks for %d tokens, only %d free", need, numTokens, len(m.freeList))
	}
	table := make([]int, need)
	for i := range table {
		table[i] = m.pop()
	}
	m.tables[seqID] = table
	m.seqTokens[seqID] = numTokens
	return nil
}

// AppendToken extends a sequence by one generated token, claiming a
// new block when it crosses a block boundary.
func (m *Manager) AppendToken(seqID int) error { return m.Extend(seqID, 1) }

// Extend grows a sequence by n tokens at once, claiming every block the
// growth crosses — the chunked-prefill entry point, where one scheduler
// iteration appends a whole prompt chunk rather than a single token. It
// fails atomically (no blocks claimed) when the free list cannot cover
// the growth.
func (m *Manager) Extend(seqID, n int) error {
	table, ok := m.tables[seqID]
	if !ok {
		return fmt.Errorf("kvcache: unknown sequence %d", seqID)
	}
	if n <= 0 {
		return fmt.Errorf("kvcache: sequence %d extension must be positive, got %d", seqID, n)
	}
	tokens := m.seqTokens[seqID] + n
	need := BlocksFor(tokens, m.cfg.BlockTokens) - len(table)
	if need > len(m.freeList) {
		return fmt.Errorf("kvcache: need %d more blocks to extend sequence %d by %d tokens, only %d free",
			need, seqID, n, len(m.freeList))
	}
	for i := 0; i < need; i++ {
		table = append(table, m.pop())
	}
	m.tables[seqID] = table
	m.seqTokens[seqID] = tokens
	return nil
}

// Free releases all blocks of a sequence.
func (m *Manager) Free(seqID int) error {
	table, ok := m.tables[seqID]
	if !ok {
		return fmt.Errorf("kvcache: unknown sequence %d", seqID)
	}
	m.freeList = append(m.freeList, table...)
	delete(m.tables, seqID)
	delete(m.seqTokens, seqID)
	return nil
}

func (m *Manager) pop() int {
	b := m.freeList[len(m.freeList)-1]
	m.freeList = m.freeList[:len(m.freeList)-1]
	return b
}

// CheckInvariants verifies the allocator's safety properties: no block
// is owned twice (across tables and the free list) and every block is
// accounted for. Tests and the engine's failure-injection suite call
// this after every mutation batch.
func (m *Manager) CheckInvariants() error {
	seen := make(map[int]string, m.cfg.TotalBlocks)
	for _, b := range m.freeList {
		if owner, dup := seen[b]; dup {
			return fmt.Errorf("kvcache: block %d on free list and owned by %s", b, owner)
		}
		seen[b] = "free-list"
	}
	for id, table := range m.tables {
		for _, b := range table {
			if owner, dup := seen[b]; dup {
				return fmt.Errorf("kvcache: block %d double-owned (%s and seq %d)", b, owner, id)
			}
			if b < 0 || b >= m.cfg.TotalBlocks {
				return fmt.Errorf("kvcache: block %d out of range", b)
			}
			seen[b] = fmt.Sprintf("seq %d", id)
		}
		need := BlocksFor(m.seqTokens[id], m.cfg.BlockTokens)
		if need != len(table) {
			return fmt.Errorf("kvcache: seq %d holds %d blocks for %d tokens (need %d)",
				id, len(table), m.seqTokens[id], need)
		}
	}
	if len(seen) != m.cfg.TotalBlocks {
		return fmt.Errorf("kvcache: %d blocks tracked, want %d", len(seen), m.cfg.TotalBlocks)
	}
	return nil
}

// Plan is a capacity plan: how much KV space a device has after
// weights and activations, in blocks and tokens.
type Plan struct {
	VRAMBytes       int64
	WeightBytes     int64
	ReservedBytes   int64 // activations, CUDA context, fragmentation
	KVBytesPerToken int64

	KVBytes   int64
	MaxTokens int64
	Blocks    int
}

// PlanCapacity computes the closed-form capacity plan of §6.5: the
// memory freed by weight compression is repurposed as KV blocks,
// converting static weight savings into dynamic throughput.
func PlanCapacity(vramBytes, weightBytes, reservedBytes, kvBytesPerToken int64, blockTokens int) (Plan, error) {
	if kvBytesPerToken <= 0 || blockTokens <= 0 {
		return Plan{}, fmt.Errorf("kvcache: invalid plan parameters")
	}
	kv := vramBytes - weightBytes - reservedBytes
	if kv < 0 {
		return Plan{}, fmt.Errorf("kvcache: weights (%d B) + reserved (%d B) exceed VRAM (%d B)",
			weightBytes, reservedBytes, vramBytes)
	}
	tokens := kv / kvBytesPerToken
	return Plan{
		VRAMBytes: vramBytes, WeightBytes: weightBytes, ReservedBytes: reservedBytes,
		KVBytesPerToken: kvBytesPerToken,
		KVBytes:         kv, MaxTokens: tokens,
		Blocks: int(tokens) / blockTokens,
	}, nil
}
