package kvcache

import "fmt"

// Adaptive prefix-cache pool sizing: instead of a static
// -prefix-cache-blocks bound, the cached pool's capacity follows a
// closed-loop controller driven by two EWMA signals the scheduler
// feeds it once per admission epoch (one scheduler iteration):
//
//   - hit rate — the fraction of prompt-carrying admissions that
//     reused at least one cached block. While hits keep arriving, the
//     parked blocks are earning their keep (each hit skips re-prefill
//     work worth far more than a parked-but-reclaimable block costs),
//     so the pool may grow.
//   - capacity pressure — whether any admission queued on KV capacity
//     this epoch. Under sustained pressure the pool shrinks
//     multiplicatively (evicting LRU leaf-first at once), handing warm
//     blocks back to the allocator before queued admissions stall.
//
// The control law is deliberately asymmetric, like the chunk-budget
// controller's: shrink fast when admissions are queueing (capacity is
// the SLO), grow slowly while the cache is proving useful.

// Cache-pool controller constants.
const (
	// cacheCtlAlpha smooths both input EWMAs.
	cacheCtlAlpha = 0.2
	// cacheShrinkFactor is the multiplicative decrease applied while
	// pressure is high.
	cacheShrinkFactor = 0.75
	// cacheGrowFactor is the multiplicative increase applied while the
	// hit rate justifies a bigger pool and pressure is low.
	cacheGrowFactor = 1.25
	// cachePressureHigh / cachePressureLow are the pressure-EWMA
	// thresholds for shrinking / allowing growth.
	cachePressureHigh = 0.5
	cachePressureLow  = 0.25
	// cacheGrowHitRate is the hit-rate EWMA above which the pool is
	// considered to be earning its keep.
	cacheGrowHitRate = 0.05
)

// cacheCtl is the pool-sizing controller state.
type cacheCtl struct {
	min, max int
	target   float64 // continuous pool target; cap = round(target)

	hitEWMA   float64
	pressEWMA float64
}

// EnableAdaptivePrefixCache replaces the static cached-pool bound with
// the closed-loop sizing controller. minBlocks floors the pool (≥ 1;
// 0 defaults to 1 so a shrunken pool can always recover by rediscovery)
// and maxBlocks caps it (0 = the whole device plan). The prefix cache
// must already be enabled; the controller starts from the currently
// configured bound (or maxBlocks when the bound was unbounded).
func (m *Manager) EnableAdaptivePrefixCache(minBlocks, maxBlocks int) error {
	if m.prefix == nil {
		return fmt.Errorf("kvcache: adaptive sizing needs the prefix cache enabled")
	}
	if minBlocks < 0 || maxBlocks < 0 {
		return fmt.Errorf("kvcache: adaptive cache bounds must be non-negative, got %d/%d", minBlocks, maxBlocks)
	}
	if minBlocks == 0 {
		minBlocks = 1
	}
	if maxBlocks == 0 {
		maxBlocks = m.cfg.TotalBlocks
	}
	if maxBlocks < minBlocks {
		return fmt.Errorf("kvcache: adaptive cache max %d below min %d", maxBlocks, minBlocks)
	}
	start := m.prefix.cap
	if start == 0 || start > maxBlocks {
		start = maxBlocks
	}
	if start < minBlocks {
		start = minBlocks
	}
	m.prefix.ctl = &cacheCtl{min: minBlocks, max: maxBlocks, target: float64(start)}
	return m.SetPrefixCacheCap(start)
}

// AdaptivePrefixCache reports whether closed-loop pool sizing is on.
func (m *Manager) AdaptivePrefixCache() bool {
	return m.prefix != nil && m.prefix.ctl != nil
}

// CachePoolTarget returns the pool bound the controller (or the static
// configuration) currently holds the cached pool under. 0 = unbounded.
func (m *Manager) CachePoolTarget() int { return m.PrefixCacheCap() }

// CacheHitRateEWMA returns the controller's smoothed per-epoch
// admission hit rate (0 when adaptive sizing is off).
func (m *Manager) CacheHitRateEWMA() float64 {
	if !m.AdaptivePrefixCache() {
		return 0
	}
	return m.prefix.ctl.hitEWMA
}

// CachePressureEWMA returns the controller's smoothed capacity-pressure
// signal (0 when adaptive sizing is off).
func (m *Manager) CachePressureEWMA() float64 {
	if !m.AdaptivePrefixCache() {
		return 0
	}
	return m.prefix.ctl.pressEWMA
}

// AdaptCacheEpoch runs one admission-epoch update of the pool-sizing
// controller: admissions and hits describe the epoch's prompt-carrying
// admissions (hits = those that reused cached blocks), and blocked
// reports whether any admission queued on KV capacity. The pool target
// shrinks multiplicatively under sustained pressure (evicting
// leaf-first immediately) and grows while hits keep arriving with
// capacity easy. It returns the new pool bound. No-op (returning the
// current bound) when adaptive sizing is not enabled.
func (m *Manager) AdaptCacheEpoch(admissions, hits int, blocked bool) int {
	if !m.AdaptivePrefixCache() {
		return m.PrefixCacheCap()
	}
	ctl := m.prefix.ctl
	if admissions > 0 {
		rate := float64(hits) / float64(admissions)
		ctl.hitEWMA = cacheCtlAlpha*rate + (1-cacheCtlAlpha)*ctl.hitEWMA
	}
	press := 0.0
	if blocked {
		press = 1
	}
	ctl.pressEWMA = cacheCtlAlpha*press + (1-cacheCtlAlpha)*ctl.pressEWMA

	switch {
	case ctl.pressEWMA > cachePressureHigh && m.compStore == nil:
		// With the compressed cache on, shrinking is pointless under
		// pressure: cold blocks hold no physical blocks (their content
		// lives in the compressed store), so evicting them frees
		// compressed bytes, not KV capacity. The pool keeps its target
		// and the extra effective capacity is exactly the feature.
		ctl.target *= cacheShrinkFactor
	case admissions > 0 && ctl.hitEWMA > cacheGrowHitRate && ctl.pressEWMA < cachePressureLow:
		// Growth requires live evidence: the hit-rate EWMA freezes over
		// admission-free epochs (there is nothing to measure), so an
		// idle decode stretch must not compound growth off a stale
		// reading — hits must actually keep arriving.
		ctl.target *= cacheGrowFactor
	}
	if ctl.target < float64(ctl.min) {
		ctl.target = float64(ctl.min)
	}
	if ctl.target > float64(ctl.max) {
		ctl.target = float64(ctl.max)
	}
	cap := int(ctl.target + 0.5)
	if cap != m.prefix.cap {
		// The error path is unreachable: the controller only runs with
		// the prefix cache on and targets are clamped non-negative.
		_ = m.SetPrefixCacheCap(cap)
	}
	return cap
}
