package kvcache

import (
	"fmt"

	"zipserv/internal/bf16"
)

// Compressed cold blocks: with EnableCompressedCache, a prefix-cache
// block whose refcount drops to zero is no longer parked as a physical
// block — its KV content is compressed into the TCA-TBE CompressedStore
// and the physical block returns to the free list immediately. The trie
// keeps advertising the content (the node survives with block = -1 and
// a compressed-store key), so a later identical prompt still matches;
// claiming such a "frozen" block pops a fresh physical block and
// decompresses into it. The trade is the paper's §7 future-work
// direction wired into the live path: cold prefix content costs only
// compressed bytes instead of whole KV blocks, buying effective cache
// capacity at a per-claim decompress price the engine cost model
// charges explicitly (gpu.KVDecompressTime).
//
// The engine is a discrete simulation — live blocks carry no real KV
// tensors — so the block content fed to the codec is synthesized
// deterministically from the block's token content key. The synthesis
// is content-addressed and reproducible, which makes the compression
// real (the codec runs on actual BF16 data, the store's Ratio() is a
// measured number) and the round-trip verifiable: CheckInvariants
// re-synthesizes every frozen block and compares the decompressed
// tensor bit for bit.

// compressedKVCols is the column width of the synthesized per-block KV
// tensor: one block compresses as a (BlockTokens × 256) BF16 matrix.
// At the default 16-token block that is 4096 elements — exactly one
// 64×64 BlockTile after reshapeForTiles — so the codec's per-tile
// bitmap overhead is amortised over a full tile instead of being paid
// for three quarters of padding, and the measured ratio reflects the
// payload, as it would for real KV blocks (which are megabytes, many
// whole tiles).
const compressedKVCols = 256

// EnableCompressedCache turns on compressed storage for cold
// (refcount-zero) prefix-cache blocks. Requires the prefix cache;
// blocks already parked physically stay parked until claimed or
// evicted, while every refcount-zero transition from now on freezes.
func (m *Manager) EnableCompressedCache() error {
	if m.prefix == nil {
		return fmt.Errorf("kvcache: compressed cache needs the prefix cache enabled")
	}
	if m.compStore != nil {
		return fmt.Errorf("kvcache: compressed cache already enabled")
	}
	m.compStore = NewCompressedStore()
	m.prefix.frozen = make(map[int]*prefixNode)
	return nil
}

// CompressedCacheEnabled reports whether cold prefix blocks are stored
// compressed.
func (m *Manager) CompressedCacheEnabled() bool { return m.compStore != nil }

// CompressedBlocks returns the number of cold blocks currently held in
// compressed form (trie-advertised, holding no physical block).
func (m *Manager) CompressedBlocks() int {
	if m.compStore == nil {
		return 0
	}
	return m.compStore.Len()
}

// CompressedKVBytes returns the compressed footprint of the cold
// blocks.
func (m *Manager) CompressedKVBytes() int64 {
	if m.compStore == nil {
		return 0
	}
	return m.compStore.CompressedBytes()
}

// CompressionRatio returns the measured aggregate compression ratio of
// the cold blocks (orig/compressed; 1.0 while the store is empty, 0
// when the compressed cache is off).
func (m *Manager) CompressionRatio() float64 {
	if m.compStore == nil {
		return 0
	}
	return m.compStore.Ratio()
}

// DecompressClaims returns the lifetime count of frozen blocks
// restored into physical blocks by prefix claims — each one paid the
// decompress price for a whole block of prefill work saved.
func (m *Manager) DecompressClaims() int64 { return m.decompClaims }

// DecompressedBytes returns the total logical bytes decompressed by
// prefix claims.
func (m *Manager) DecompressedBytes() int64 { return m.decompBytes }

// SetCodecFault installs a codec fault predicate: while it returns
// true, freeze skips compression and reports failure so the caller
// parks the block physically — the graceful-degradation path the
// fault-injection layer scripts (docs/robustness.md). Content already
// frozen stays thawable; only new freezes degrade.
func (m *Manager) SetCodecFault(fn func() bool) { m.codecFault = fn }

// CodecFallbacks returns the lifetime count of freezes that degraded
// to plain parking — injected faults and real codec rejections alike.
func (m *Manager) CodecFallbacks() int64 { return m.codecFallbacks }

// freeze compresses a refcount-zero advertised block's content and
// detaches the physical block, leaving the trie node advertising the
// content from the compressed store. Returns false — the caller then
// parks the block physically, the pre-compression behaviour — if the
// codec rejects the content (unreachable for the synthesized tensors,
// but the cache must degrade rather than lose content).
func (m *Manager) freeze(b int, node *prefixNode) bool {
	if m.codecFault != nil && m.codecFault() {
		m.codecFallbacks++
		return false
	}
	kv := blockContent(node.key, m.cfg.BlockTokens)
	m.frozenSeq++
	id := m.frozenSeq
	if err := m.compStore.Put(id, kv); err != nil {
		m.frozenSeq--
		m.codecFallbacks++
		return false
	}
	delete(m.prefix.byBlock, b)
	node.block = -1
	node.frozenID = id
	m.prefix.frozen[id] = node
	return true
}

// thaw restores a frozen node's content into a freshly popped physical
// block so a claim can reference it. The caller has verified capacity
// (frozen matches are charged as resurrections by LookupCost) and owns
// the refcount it acquires here.
func (m *Manager) thaw(n *prefixNode) error {
	kv, err := m.compStore.Get(n.frozenID)
	if err != nil {
		return fmt.Errorf("kvcache: thawing frozen block %d: %w", n.frozenID, err)
	}
	m.compStore.Delete(n.frozenID)
	delete(m.prefix.frozen, n.frozenID)
	n.frozenID = 0
	b := m.pop()
	n.block = b
	m.prefix.byBlock[b] = n
	m.refcnt[b] = 1
	m.decompClaims++
	m.decompBytes += int64(kv.SizeBytes())
	return nil
}

// blockContent synthesizes the deterministic BF16 KV tensor of a block
// from its token content key: an FNV-1a hash of the key seeds an
// xorshift64 stream mapped into a narrow centred value band, the
// exponent clustering TCA-TBE exploits. Identical token content always
// produces identical tensors, so the compressed round-trip is
// verifiable bit for bit against a re-synthesis.
func blockContent(key string, blockTokens int) *bf16.Matrix {
	data := make([]bf16.BF16, blockTokens*compressedKVCols)
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 0x9e3779b97f4a7c15 // xorshift must never run from 0
	}
	x := h
	for i := range data {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		f := float32(int64(x>>40)-(1<<23)) / float32(1<<27)
		data[i] = bf16.FromFloat32(f)
	}
	return &bf16.Matrix{Rows: blockTokens, Cols: compressedKVCols, Data: data}
}
