package kvcache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"zipserv/internal/weights"
)

func newTestManager(t *testing.T, blocks int) *Manager {
	t.Helper()
	m, err := NewManager(Config{BlockTokens: DefaultBlockTokens, TotalBlocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(Config{BlockTokens: 0, TotalBlocks: 10}); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := NewManager(Config{BlockTokens: 16, TotalBlocks: 0}); err == nil {
		t.Error("zero total blocks accepted")
	}
}

func TestAllocateAndFree(t *testing.T) {
	m := newTestManager(t, 10)
	if err := m.Allocate(1, 33); err != nil { // 33 tokens → 3 blocks
		t.Fatal(err)
	}
	if m.UsedBlocks() != 3 || m.FreeBlocks() != 7 {
		t.Errorf("used/free = %d/%d, want 3/7", m.UsedBlocks(), m.FreeBlocks())
	}
	table, err := m.BlockTable(1)
	if err != nil || len(table) != 3 {
		t.Fatalf("block table %v, err %v", table, err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(1); err != nil {
		t.Fatal(err)
	}
	if m.FreeBlocks() != 10 {
		t.Errorf("after Free, %d free, want 10", m.FreeBlocks())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateErrors(t *testing.T) {
	m := newTestManager(t, 4)
	if err := m.Allocate(1, 0); err == nil {
		t.Error("zero-token allocation accepted")
	}
	if err := m.Allocate(1, 64); err != nil { // exactly 4 blocks
		t.Fatal(err)
	}
	if err := m.Allocate(1, 16); err == nil {
		t.Error("duplicate sequence id accepted")
	}
	if err := m.Allocate(2, 1); err == nil {
		t.Error("allocation beyond capacity accepted")
	}
	// Failure must be atomic: freeing seq 1 restores all capacity.
	if err := m.Free(1); err != nil {
		t.Fatal(err)
	}
	if m.FreeBlocks() != 4 {
		t.Errorf("capacity leaked: %d free, want 4", m.FreeBlocks())
	}
}

func TestAppendTokenBlockBoundary(t *testing.T) {
	m := newTestManager(t, 3)
	if err := m.Allocate(7, 16); err != nil { // exactly one block
		t.Fatal(err)
	}
	if m.UsedBlocks() != 1 {
		t.Fatalf("used = %d, want 1", m.UsedBlocks())
	}
	// Token 17 crosses into a second block.
	if err := m.AppendToken(7); err != nil {
		t.Fatal(err)
	}
	if m.UsedBlocks() != 2 || m.Tokens(7) != 17 {
		t.Errorf("used=%d tokens=%d, want 2/17", m.UsedBlocks(), m.Tokens(7))
	}
	// Fill to 48 tokens = 3 blocks, then the next append must fail.
	for i := 17; i < 48; i++ {
		if err := m.AppendToken(7); err != nil {
			t.Fatalf("append at %d tokens: %v", i, err)
		}
	}
	if err := m.AppendToken(7); err == nil {
		t.Error("append beyond capacity accepted")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExtendChunks(t *testing.T) {
	m := newTestManager(t, 4) // 64 tokens
	if err := m.Allocate(3, 10); err != nil {
		t.Fatal(err)
	}
	// A 23-token chunk lands at 33 tokens = 3 blocks.
	if err := m.Extend(3, 23); err != nil {
		t.Fatal(err)
	}
	if m.UsedBlocks() != 3 || m.Tokens(3) != 33 {
		t.Errorf("used=%d tokens=%d, want 3/33", m.UsedBlocks(), m.Tokens(3))
	}
	if err := m.Extend(3, 0); err == nil {
		t.Error("zero-token extension accepted")
	}
	// Atomic failure: a chunk that overshoots capacity claims nothing.
	if err := m.Extend(3, 32); err == nil {
		t.Error("extension beyond capacity accepted")
	}
	if m.UsedBlocks() != 3 || m.Tokens(3) != 33 {
		t.Errorf("failed extension mutated state: used=%d tokens=%d", m.UsedBlocks(), m.Tokens(3))
	}
	// A chunk that exactly fills the cache succeeds.
	if err := m.Extend(3, 31); err != nil {
		t.Fatal(err)
	}
	if m.FreeBlocks() != 0 || m.Tokens(3) != 64 {
		t.Errorf("free=%d tokens=%d, want 0/64", m.FreeBlocks(), m.Tokens(3))
	}
	if err := m.Extend(9, 1); err == nil {
		t.Error("extension of unknown sequence accepted")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownSequenceErrors(t *testing.T) {
	m := newTestManager(t, 2)
	if err := m.AppendToken(9); err == nil {
		t.Error("append to unknown sequence accepted")
	}
	if err := m.Free(9); err == nil {
		t.Error("free of unknown sequence accepted")
	}
	if _, err := m.BlockTable(9); err == nil {
		t.Error("block table of unknown sequence returned")
	}
}

func TestSequences(t *testing.T) {
	m := newTestManager(t, 10)
	for _, id := range []int{5, 1, 3} {
		if err := m.Allocate(id, 8); err != nil {
			t.Fatal(err)
		}
	}
	got := m.Sequences()
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sequences = %v, want %v", got, want)
		}
	}
}

func TestQuickAllocatorNeverDoubleAllocates(t *testing.T) {
	// Invariant 6 of DESIGN.md under random workloads: allocate,
	// append and free in arbitrary interleavings; invariants hold at
	// every step and capacity is fully restored at the end.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewManager(Config{BlockTokens: 4, TotalBlocks: 64})
		if err != nil {
			return false
		}
		live := map[int]bool{}
		next := 0
		for step := 0; step < 300; step++ {
			switch rng.Intn(3) {
			case 0: // allocate
				id := next
				next++
				if m.Allocate(id, 1+rng.Intn(40)) == nil {
					live[id] = true
				}
			case 1: // append
				for id := range live {
					_ = m.AppendToken(id) // may fail at capacity; fine
					break
				}
			case 2: // free
				for id := range live {
					if m.Free(id) != nil {
						return false
					}
					delete(live, id)
					break
				}
			}
			if m.CheckInvariants() != nil {
				return false
			}
		}
		for id := range live {
			if m.Free(id) != nil {
				return false
			}
		}
		return m.FreeBlocks() == 64 && m.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPlanCapacityFig17(t *testing.T) {
	// Figure 17 (LLaMA3.1-8B on RTX4090, 24 GiB): vLLM fits 5.07 GiB
	// of KV next to 14.96 GiB of dense weights; ZipServ's 11.18 GiB
	// resident weights leave 8.60 GiB — a 1.70× KV capacity increase.
	gib := func(g float64) int64 { return int64(g * float64(int64(1)<<30)) }
	vram := gib(24)
	reserved := gib(4) // activations + runtime
	kvPerToken := int64(131072)

	dense, err := PlanCapacity(vram, gib(14.96), reserved, kvPerToken, 16)
	if err != nil {
		t.Fatal(err)
	}
	zip, err := PlanCapacity(vram, gib(11.18), reserved, kvPerToken, 16)
	if err != nil {
		t.Fatal(err)
	}
	gain := float64(zip.KVBytes) / float64(dense.KVBytes)
	if gain < 1.5 || gain > 1.9 {
		t.Errorf("KV capacity gain %.2f, paper 1.70", gain)
	}
	if zip.MaxTokens <= dense.MaxTokens {
		t.Error("compressed weights did not increase token capacity")
	}
	if dense.Blocks != int(dense.MaxTokens)/16 {
		t.Errorf("blocks %d inconsistent with tokens %d", dense.Blocks, dense.MaxTokens)
	}
}

func TestPlanCapacityErrors(t *testing.T) {
	if _, err := PlanCapacity(1<<30, 2<<30, 0, 1024, 16); err == nil {
		t.Error("weights larger than VRAM accepted")
	}
	if _, err := PlanCapacity(1<<30, 0, 0, 0, 16); err == nil {
		t.Error("zero kv-bytes-per-token accepted")
	}
}

func TestCompressedStoreRoundTrip(t *testing.T) {
	// §7 extension: KV blocks compress losslessly with TCA-TBE.
	s := NewCompressedStore()
	kv := weights.Gaussian(16, 1024, 1.0, 3) // activations have σ≈1
	if err := s.Put(0, kv); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if !kv.Equal(got) {
		t.Error("KV block not bit-exact after compression")
	}
	if r := s.Ratio(); r < 1.25 {
		t.Errorf("KV compression ratio %.3f < 1.25", r)
	}
}

func TestCompressedStoreAccounting(t *testing.T) {
	s := NewCompressedStore()
	a := weights.Gaussian(16, 512, 1.0, 4)
	b := weights.Gaussian(16, 512, 1.0, 5)
	if err := s.Put(1, a); err != nil {
		t.Fatal(err)
	}
	size1 := s.CompressedBytes()
	if err := s.Put(2, b); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.CompressedBytes() <= size1 {
		t.Error("second Put did not grow the store")
	}
	// Replacement must not double-count.
	if err := s.Put(1, b); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d after replacement, want 2", s.Len())
	}
	s.Delete(1)
	s.Delete(2)
	if s.Len() != 0 || s.CompressedBytes() != 0 {
		t.Errorf("store not empty after deletes: len=%d bytes=%d", s.Len(), s.CompressedBytes())
	}
	if _, err := s.Get(1); err == nil {
		t.Error("Get of deleted block succeeded")
	}
	s.Delete(99) // deleting absent blocks is a no-op
}
