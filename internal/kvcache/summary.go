package kvcache

import "sort"

// Prefix-trie summaries (docs/routing.md): a replica exports a compact,
// immutable digest of what its prefix trie currently advertises so a
// fleet router can estimate, without any cross-replica RPC, how many
// leading prompt tokens each replica could serve from cache. The digest
// rides the replica's stats snapshot and is rebuilt at most once per
// trie generation (Manager.Generation), i.e. on the admission-epoch
// cadence the scheduler already polls stats on.
//
// Two structures, both over *path* fingerprints (a rolling FNV-1a hash
// of the block content keys from the root), so identical block content
// under different prefixes never aliases:
//
//   - Roots: the exact, sorted fingerprints of the trie's depth-1
//     children (first prompt blocks). Small — one entry per distinct
//     cached first block (≈ one per tenant/system prompt) — and exact,
//     so a router's first-block test has no false positives.
//   - Bloom: a bloom filter over every registered node's path
//     fingerprint, sized at ~summaryBloomBitsPerEntry bits per entry
//     with summaryBloomK probes (false-positive rate
//     p = (1 − e^(−kn/m))^k ≈ 1.2% at m/n = 10, k = 4), used to extend
//     a root match block by block down the prompt.
//
// A false positive only overestimates one candidate's overlap by some
// blocks — the router's load band still bounds the damage — and the
// exact Roots gate means a replica with no trace of the prompt's first
// block is never preferred at all.

// PrefixSummary is an immutable digest of a prefix trie. It is shared
// by pointer across stats snapshots; never mutate one after Build.
type PrefixSummary struct {
	// BlockTokens is the trie's block granularity; match estimates are
	// multiples of it.
	BlockTokens int `json:"block_tokens"`
	// Blocks is the number of registered trie nodes (physically cached,
	// live-referenced, or frozen) the digest covers.
	Blocks int `json:"blocks"`
	// Roots holds the sorted path fingerprints of the depth-1 nodes.
	Roots []uint64 `json:"roots,omitempty"`
	// Bloom is the filter over all registered path fingerprints, as
	// 64-bit words (power-of-two total bits).
	Bloom []uint64 `json:"bloom,omitempty"`
	// BloomK is the number of probes per membership test.
	BloomK int `json:"bloom_k,omitempty"`
	// Epoch is the trie generation the digest was built at; a router
	// uses changes in it to age summaries.
	Epoch int64 `json:"epoch"`
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211

	summaryBloomBitsPerEntry = 10
	summaryBloomMinBits      = 256
	summaryBloomK            = 4
)

// fnvString folds one content key into a rolling FNV-1a state. Chaining
// states from fnvOffset64 through a prompt's block keys yields the path
// fingerprint of the block-aligned prefix ending at each block.
func fnvString(h uint64, key string) uint64 {
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h
}

// bloomBits returns the filter size (in bits) for n entries: the next
// power of two at or above summaryBloomBitsPerEntry bits per entry,
// floored at summaryBloomMinBits so tiny tries still dilute collisions.
func bloomBits(n int) int {
	bits := summaryBloomMinBits
	for bits < n*summaryBloomBitsPerEntry {
		bits <<= 1
	}
	return bits
}

// bloomAdd sets the filter's summaryBloomK probe bits for fingerprint h
// via double hashing; len(words) must be a power of two.
func bloomAdd(words []uint64, k int, h uint64) {
	mask := uint64(len(words)*64 - 1)
	h2 := (h >> 33) | 1 // odd, so probes cycle the whole filter
	for i := 0; i < k; i++ {
		bit := (h + uint64(i)*h2) & mask
		words[bit>>6] |= 1 << (bit & 63)
	}
}

// bloomTest reports whether fingerprint h may be in the filter.
func bloomTest(words []uint64, k int, h uint64) bool {
	if len(words) == 0 {
		return false
	}
	mask := uint64(len(words)*64 - 1)
	h2 := (h >> 33) | 1
	for i := 0; i < k; i++ {
		bit := (h + uint64(i)*h2) & mask
		if words[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// PrefixSummary digests the current prefix trie, or returns nil when
// prefix caching is off. The digest is memoized per trie generation:
// polling it every scheduler iteration costs one comparison unless the
// trie actually changed since the last build.
func (m *Manager) PrefixSummary() *PrefixSummary {
	if m.prefix == nil {
		return nil
	}
	if m.summary != nil && m.summaryGen == m.gen {
		return m.summary
	}
	var (
		roots []uint64
		paths []uint64
	)
	var dfs func(n *prefixNode, h uint64)
	dfs = func(n *prefixNode, h uint64) {
		for key, c := range n.children {
			ch := fnvString(h, key)
			if n == m.prefix.root {
				roots = append(roots, ch)
			}
			paths = append(paths, ch)
			dfs(c, ch)
		}
	}
	dfs(m.prefix.root, fnvOffset64)
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	s := &PrefixSummary{
		BlockTokens: m.cfg.BlockTokens,
		Blocks:      len(paths),
		Roots:       roots,
		Epoch:       m.gen,
	}
	if len(paths) > 0 {
		s.Bloom = make([]uint64, bloomBits(len(paths))/64)
		s.BloomK = summaryBloomK
		for _, h := range paths {
			bloomAdd(s.Bloom, s.BloomK, h)
		}
	}
	m.summary, m.summaryGen = s, m.gen
	return s
}

// HashPromptTokens precomputes a prompt's per-block content keys at an
// explicit block granularity — Manager.HashPrompt for callers (routers)
// that hold no Manager. A non-positive blockTokens falls back to
// DefaultBlockTokens.
func HashPromptTokens(tokens []int, blockTokens int) HashedPrompt {
	if blockTokens <= 0 {
		blockTokens = DefaultBlockTokens
	}
	keys := make([]string, len(tokens)/blockTokens)
	for i := range keys {
		keys[i] = contentKey(tokens[i*blockTokens : (i+1)*blockTokens])
	}
	return HashedPrompt{tokens: tokens, keys: keys}
}

// MatchTokens estimates how many leading prompt tokens the summarised
// trie could serve from cache: the first block must hit the exact Roots
// set (no false positives at depth 1), deeper blocks extend the match
// while their path fingerprints test positive in the bloom filter, and
// — mirroring Manager.Lookup — a fully cached prompt is capped at
// len−1 so the final token is always computed. The prompt must be
// hashed at the summary's BlockTokens granularity (HashPromptTokens).
// Bloom false positives can overestimate by whole blocks; the estimate
// is a routing hint, never an admission guarantee.
func (s *PrefixSummary) MatchTokens(hp HashedPrompt) int {
	if s == nil || s.BlockTokens <= 0 || len(s.Roots) == 0 || len(hp.keys) == 0 {
		return 0
	}
	h := fnvString(fnvOffset64, hp.keys[0])
	i := sort.Search(len(s.Roots), func(i int) bool { return s.Roots[i] >= h })
	if i == len(s.Roots) || s.Roots[i] != h {
		return 0
	}
	matched := 1
	for matched < len(hp.keys) {
		h = fnvString(h, hp.keys[matched])
		if !bloomTest(s.Bloom, s.BloomK, h) {
			break
		}
		matched++
	}
	tokens := matched * s.BlockTokens
	if tokens >= hp.Len() {
		tokens = hp.Len() - 1
	}
	return tokens
}

// MergePrefixSummaries folds per-replica digests into one fleet-level
// digest for aggregated stats: Blocks sum, Roots union (sorted, exact),
// Bloom words OR together when every summary agrees on filter size and
// probe count (otherwise the merged bloom is dropped — a fleet of
// differently sized filters cannot be OR'd soundly), Epoch is the
// newest. Summaries disagreeing on BlockTokens drop Roots and Bloom
// too: fingerprints at different granularities never compare. The
// merged digest is informational (the fleet's total advertised cache);
// routing always scores against the per-replica originals.
func MergePrefixSummaries(sums []*PrefixSummary) *PrefixSummary {
	var out *PrefixSummary
	granularityOK, bloomsOK := true, true
	for _, s := range sums {
		if s == nil {
			continue
		}
		if out == nil {
			out = &PrefixSummary{BlockTokens: s.BlockTokens}
		}
		out.Blocks += s.Blocks
		out.Roots = append(out.Roots, s.Roots...)
		if s.Epoch > out.Epoch {
			out.Epoch = s.Epoch
		}
		if s.BlockTokens != out.BlockTokens {
			granularityOK = false
		}
		if s.Bloom == nil {
			continue // empty trie: nothing to OR, nothing to disagree on
		}
		if out.Bloom == nil {
			out.Bloom = make([]uint64, len(s.Bloom))
			out.BloomK = s.BloomK
		}
		if len(s.Bloom) != len(out.Bloom) || s.BloomK != out.BloomK {
			bloomsOK = false
			continue
		}
		for i, w := range s.Bloom {
			out.Bloom[i] |= w
		}
	}
	if out == nil {
		return nil
	}
	if !granularityOK {
		out.BlockTokens = 0
		out.Roots = nil
		bloomsOK = false
	}
	if !bloomsOK {
		out.Bloom, out.BloomK = nil, 0
	}
	sort.Slice(out.Roots, func(i, j int) bool { return out.Roots[i] < out.Roots[j] })
	uniq := out.Roots[:0]
	for i, r := range out.Roots {
		if i == 0 || r != out.Roots[i-1] {
			uniq = append(uniq, r)
		}
	}
	out.Roots = uniq
	return out
}
