package kvcache

import (
	"errors"
	"testing"
)

// exportSeq allocates a sequence holding prompt + generated tokens on
// m, commits the prompt to the trie, and exports it.
func exportSeq(t testing.TB, m *Manager, seqID int, prompt []int, generated int) *KVExport {
	t.Helper()
	if err := m.Allocate(seqID, len(prompt)+generated); err != nil {
		t.Fatal(err)
	}
	hp := m.HashPrompt(prompt)
	if err := m.CommitPrefixHashed(seqID, hp, len(prompt)); err != nil {
		t.Fatal(err)
	}
	exp, err := m.ExportKV(seqID, hp)
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

func TestKVExportShape(t *testing.T) {
	m := newPrefixManager(t, 32, 0)
	prompt := toks(40, 1) // 2 full prompt blocks + a 8-token tail
	exp := exportSeq(t, m, 1, prompt, 3)

	if exp.Tokens != 43 || exp.BlockTokens != 16 {
		t.Fatalf("export = %d tokens at block size %d, want 43 at 16", exp.Tokens, exp.BlockTokens)
	}
	if got := exp.Blocks(); got != 3 {
		t.Fatalf("export holds %d blocks, want 3", got)
	}
	// Prompt-covered full blocks carry the prompt's content keys (the
	// dedup handles); the mixed prompt+generated tail carries a private
	// one.
	hp := m.HashPrompt(prompt)
	for i := 0; i < 2; i++ {
		if exp.Keys[i] != hp.keys[i] {
			t.Fatalf("block %d key is not the prompt content key", i)
		}
	}
	if exp.Keys[2] == hp.keys[0] || exp.Keys[2][:8] != "handoff/" {
		t.Fatalf("tail block key %q, want a private handoff key", exp.Keys[2])
	}
	if exp.CompressedBytes() <= 0 || exp.CompressedBytes() >= exp.OrigBytes() {
		t.Fatalf("compressed payload %d of %d original bytes, want real compression",
			exp.CompressedBytes(), exp.OrigBytes())
	}
	// Export is read-only: the source still owns every block.
	if got := m.Tokens(1); got != 43 {
		t.Fatalf("source sequence holds %d tokens after export, want 43", got)
	}
	mustInvariants(t, m)
}

func TestKVImportColdTargetBitExact(t *testing.T) {
	src := newPrefixManager(t, 32, 0)
	prompt := toks(40, 1)
	exp := exportSeq(t, src, 1, prompt, 3)

	dst := newPrefixManager(t, 32, 0)
	stats, err := dst.ImportKV(exp)
	if err != nil {
		t.Fatal(err)
	}
	// A cold target supplies nothing: every block expands from the wire
	// payload (each one verified bit-for-bit against its key's content
	// inside ImportKV).
	if stats.ReusedTokens != 0 || stats.Thawed != 0 {
		t.Fatalf("cold import reused %d tokens / thawed %d, want 0/0", stats.ReusedTokens, stats.Thawed)
	}
	if stats.ExpandedBlocks != 3 || stats.GrowPops != 3 {
		t.Fatalf("cold import expanded %d blocks with %d pops, want 3/3", stats.ExpandedBlocks, stats.GrowPops)
	}
	if got := dst.Tokens(exp.SeqID); got != exp.Tokens {
		t.Fatalf("imported sequence holds %d tokens, want %d", got, exp.Tokens)
	}
	mustInvariants(t, dst)

	// Re-exporting from the target reproduces the original payload key
	// for key and bit for bit.
	hp := dst.HashPrompt(prompt)
	back, err := dst.ExportKV(exp.SeqID, hp)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tokens != exp.Tokens || len(back.Keys) != len(exp.Keys) {
		t.Fatalf("re-export = %d tokens / %d blocks, want %d / %d",
			back.Tokens, len(back.Keys), exp.Tokens, len(exp.Keys))
	}
	for i := range exp.Keys {
		if back.Keys[i] != exp.Keys[i] {
			t.Fatalf("re-export block %d key differs", i)
		}
		a, err := exp.Store.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Store.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("re-export block %d content differs", i)
		}
	}

	// The import committed the prompt to the target's trie: a sibling
	// request sharing the prefix hits it.
	if got := dst.Lookup(prompt); got != 32 {
		t.Fatalf("Lookup on import target = %d, want the 32 full prompt tokens", got)
	}
}

func TestKVImportDedupAgainstWarmTrie(t *testing.T) {
	src := newPrefixManager(t, 32, 0)
	prompt := toks(40, 1)
	exp := exportSeq(t, src, 7, prompt, 3)

	// Warm the target: another request already served this prompt and
	// finished, parking its advertised blocks in the cached pool.
	dst := newPrefixManager(t, 32, 0)
	if err := dst.Allocate(1, 40); err != nil {
		t.Fatal(err)
	}
	if err := dst.CommitPrefix(1, prompt, 40); err != nil {
		t.Fatal(err)
	}
	if err := dst.Free(1); err != nil {
		t.Fatal(err)
	}

	hits := dst.PrefixHits()
	stats, err := dst.ImportKV(exp)
	if err != nil {
		t.Fatal(err)
	}
	// The content-addressed claim supplies the parked prompt blocks by
	// reference; only the tail expands from the wire.
	if stats.ReusedTokens != 32 {
		t.Fatalf("warm import reused %d tokens, want 32", stats.ReusedTokens)
	}
	if stats.ExpandedBlocks != 1 {
		t.Fatalf("warm import expanded %d blocks, want only the tail", stats.ExpandedBlocks)
	}
	if dst.PrefixHits() != hits+1 {
		t.Fatalf("PrefixHits = %d, want %d", dst.PrefixHits(), hits+1)
	}
	if got := dst.Tokens(exp.SeqID); got != exp.Tokens {
		t.Fatalf("imported sequence holds %d tokens, want %d", got, exp.Tokens)
	}
	mustInvariants(t, dst)
}

func TestKVImportThawsFrozenBlocks(t *testing.T) {
	src := newCompressedManager(t, 32, 0)
	prompt := toks(40, 1)
	exp := exportSeq(t, src, 7, prompt, 3)

	// Warm target whose prompt blocks went cold and froze: the dedup
	// claim must thaw them (local decompression) rather than expand
	// from the wire.
	dst := newCompressedManager(t, 32, 0)
	if err := dst.Allocate(1, 40); err != nil {
		t.Fatal(err)
	}
	if err := dst.CommitPrefix(1, prompt, 40); err != nil {
		t.Fatal(err)
	}
	if err := dst.Free(1); err != nil {
		t.Fatal(err)
	}
	if got := dst.CompressedBlocks(); got != 2 {
		t.Fatalf("warmup froze %d blocks, want 2", got)
	}

	stats, err := dst.ImportKV(exp)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReusedTokens != 32 || stats.Thawed != 2 || stats.ExpandedBlocks != 1 {
		t.Fatalf("frozen-warm import = %+v, want 32 reused / 2 thawed / 1 expanded", stats)
	}
	mustInvariants(t, dst)
}

func TestKVImportDuplicateFailsUntouched(t *testing.T) {
	src := newPrefixManager(t, 32, 0)
	prompt := toks(40, 1)
	exp := exportSeq(t, src, 7, prompt, 3)

	dst := newPrefixManager(t, 32, 0)
	if _, err := dst.ImportKV(exp); err != nil {
		t.Fatal(err)
	}
	free, pops := dst.FreeBlocks(), dst.Pops()
	if _, err := dst.ImportKV(exp); !errors.Is(err, ErrSequenceExists) {
		t.Fatalf("duplicate import = %v, want ErrSequenceExists", err)
	}
	if dst.FreeBlocks() != free || dst.Pops() != pops {
		t.Fatal("duplicate import mutated the manager")
	}
	mustInvariants(t, dst)

	// After the duplicate is freed (its request finished or the replica
	// re-balances), a retried import of the same export succeeds — the
	// failover path: content-addressed, so replayable anywhere.
	if err := dst.Free(exp.SeqID); err != nil {
		t.Fatal(err)
	}
	stats, err := dst.ImportKV(exp)
	if err != nil {
		t.Fatal(err)
	}
	// The freed sequence parked its prompt blocks, so the retry dedups.
	if stats.ReusedTokens != 32 {
		t.Fatalf("retried import reused %d tokens, want 32", stats.ReusedTokens)
	}
	mustInvariants(t, dst)
}

func TestKVImportRejectsCorruptPayload(t *testing.T) {
	src := newPrefixManager(t, 32, 0)
	prompt := toks(40, 1)
	exp := exportSeq(t, src, 7, prompt, 3)

	// Flip the tail block's key: the stored payload no longer matches a
	// re-synthesis of the advertised content.
	exp.Keys[2] = "handoff/tampered"
	dst := newPrefixManager(t, 32, 0)
	free := dst.FreeBlocks()
	if _, err := dst.ImportKV(exp); err == nil {
		t.Fatal("corrupt payload accepted")
	}
	if dst.FreeBlocks() != free || len(dst.Sequences()) != 0 {
		t.Fatal("rejected import left state behind")
	}
	mustInvariants(t, dst)
}

func TestKVImportCapacityFailureRollsBack(t *testing.T) {
	src := newPrefixManager(t, 32, 0)
	prompt := toks(40, 1)
	exp := exportSeq(t, src, 7, prompt, 3)

	// 2 free blocks cannot hold the 3-block import; the failure must
	// leave nothing allocated.
	dst := newPrefixManager(t, 2, 0)
	if _, err := dst.ImportKV(exp); err == nil {
		t.Fatal("oversized import accepted")
	}
	if got := dst.FreeBlocks(); got != 2 {
		t.Fatalf("failed import left %d free blocks, want 2", got)
	}
	if len(dst.Sequences()) != 0 {
		t.Fatal("failed import left a sequence behind")
	}
	mustInvariants(t, dst)
}

func TestKVImportValidation(t *testing.T) {
	src := newPrefixManager(t, 32, 0)
	prompt := toks(40, 1)
	exp := exportSeq(t, src, 7, prompt, 3)

	if _, err := src.ExportKV(99, src.HashPrompt(prompt)); err == nil {
		t.Fatal("export of unknown sequence accepted")
	}
	coarse, err := NewManager(Config{BlockTokens: 32, TotalBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coarse.ImportKV(exp); err == nil {
		t.Fatal("import across block granularities accepted")
	}
	bad := *exp
	bad.Tokens = 10 // 3 blocks for 10 tokens: malformed
	dst := newPrefixManager(t, 32, 0)
	if _, err := dst.ImportKV(&bad); err == nil {
		t.Fatal("malformed import accepted")
	}
	mustInvariants(t, dst)
}

// FuzzKVHandoffRoundtrip drives randomized export→import handoffs and
// asserts the subsystem's core contract: the imported sequence's
// re-export reproduces the original payload bit for bit, block
// accounting is conserved on both managers, and duplicate imports are
// rejected without side effects.
func FuzzKVHandoffRoundtrip(f *testing.F) {
	f.Add(uint8(40), uint8(3), uint8(1), true, true)
	f.Add(uint8(16), uint8(1), uint8(2), false, false)
	f.Add(uint8(1), uint8(7), uint8(3), true, false)
	f.Add(uint8(200), uint8(50), uint8(4), false, true)
	f.Fuzz(func(t *testing.T, promptLen, generated, seed uint8, warm, compressed bool) {
		if promptLen == 0 || generated == 0 {
			t.Skip()
		}
		newMgr := func() *Manager {
			m, err := NewManager(Config{BlockTokens: 16, TotalBlocks: 64})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.EnablePrefixCache(0); err != nil {
				t.Fatal(err)
			}
			if compressed {
				if err := m.EnableCompressedCache(); err != nil {
					t.Fatal(err)
				}
			}
			return m
		}
		prompt := toks(int(promptLen), int(seed))

		src := newMgr()
		if err := src.Allocate(1, len(prompt)+int(generated)); err != nil {
			t.Fatal(err)
		}
		hp := src.HashPrompt(prompt)
		if err := src.CommitPrefixHashed(1, hp, len(prompt)); err != nil {
			t.Fatal(err)
		}
		exp, err := src.ExportKV(1, hp)
		if err != nil {
			t.Fatal(err)
		}
		if err := src.CheckInvariants(); err != nil {
			t.Fatalf("source after export: %v", err)
		}

		dst := newMgr()
		if warm {
			if err := dst.Allocate(9, len(prompt)); err != nil {
				t.Fatal(err)
			}
			if err := dst.CommitPrefix(9, prompt, len(prompt)); err != nil {
				t.Fatal(err)
			}
			if err := dst.Free(9); err != nil {
				t.Fatal(err)
			}
		}
		freeBefore := dst.FreeBlocks()
		stats, err := dst.ImportKV(exp)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.CheckInvariants(); err != nil {
			t.Fatalf("target after import: %v", err)
		}
		if got := dst.Tokens(exp.SeqID); got != exp.Tokens {
			t.Fatalf("imported %d tokens, want %d", got, exp.Tokens)
		}
		// Refcount conservation: the sequence owns exactly its block
		// count, and free capacity dropped by exactly the physical
		// blocks the import claimed (thaws and growth; dedup-supplied
		// parked blocks were already outside the free pool only once).
		table, err := dst.BlockTable(exp.SeqID)
		if err != nil {
			t.Fatal(err)
		}
		if len(table) != BlocksFor(exp.Tokens, 16) {
			t.Fatalf("imported table holds %d blocks for %d tokens", len(table), exp.Tokens)
		}
		if used := freeBefore - dst.FreeBlocks(); used > len(table) {
			t.Fatalf("import consumed %d free blocks for a %d-block table", used, len(table))
		}

		// Duplicate import: rejected, no side effects.
		free, pops := dst.FreeBlocks(), dst.Pops()
		if _, err := dst.ImportKV(exp); !errors.Is(err, ErrSequenceExists) {
			t.Fatalf("duplicate import = %v, want ErrSequenceExists", err)
		}
		if dst.FreeBlocks() != free || dst.Pops() != pops {
			t.Fatal("duplicate import mutated the manager")
		}

		// Bit-for-bit roundtrip: re-export and compare payloads.
		back, err := dst.ExportKV(exp.SeqID, dst.HashPrompt(prompt))
		if err != nil {
			t.Fatal(err)
		}
		if back.Tokens != exp.Tokens || len(back.Keys) != len(exp.Keys) {
			t.Fatalf("re-export shape (%d tokens, %d blocks) != original (%d, %d)",
				back.Tokens, len(back.Keys), exp.Tokens, len(exp.Keys))
		}
		for i := range exp.Keys {
			if back.Keys[i] != exp.Keys[i] {
				t.Fatalf("re-export block %d key differs", i)
			}
			a, err := exp.Store.Get(i)
			if err != nil {
				t.Fatal(err)
			}
			b, err := back.Store.Get(i)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Equal(b) {
				t.Fatalf("re-export block %d content differs", i)
			}
		}
		_ = stats
	})
}
