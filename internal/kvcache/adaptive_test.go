package kvcache

import "testing"

func adaptiveManager(t *testing.T, blocks, cap int) *Manager {
	t.Helper()
	m, err := NewManager(Config{BlockTokens: 4, TotalBlocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnablePrefixCache(cap); err != nil {
		t.Fatal(err)
	}
	return m
}

// tokensOf builds a deterministic prompt; equal seeds share content.
func tokensOf(n, seed int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = seed*9973 + i
	}
	return out
}

func TestHashPromptMatchesUnhashedWalk(t *testing.T) {
	m := adaptiveManager(t, 64, 0)
	prompt := tokensOf(20, 1)
	if err := m.Allocate(1, 20); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitPrefix(1, prompt, 20); err != nil {
		t.Fatal(err)
	}
	hp := m.HashPrompt(prompt)
	if hp.Len() != 20 || len(hp.keys) != 5 {
		t.Fatalf("HashPrompt: len %d, %d keys; want 20 tokens, 5 keys", hp.Len(), len(hp.keys))
	}
	gm, gr := m.LookupCost(prompt)
	hm, hr := m.LookupCostHashed(hp)
	if gm != hm || gr != hr {
		t.Fatalf("hashed lookup (%d,%d) != unhashed (%d,%d)", hm, hr, gm, gr)
	}
	if gm == 0 {
		t.Fatal("committed prompt produced no match")
	}
}

// TestGenerationTracksLookupMutations: the generation counter must
// change whenever an operation could alter a lookup's result, so a
// scheduler memoizing LookupCost per (request, generation) never reuses
// a stale match.
func TestGenerationTracksLookupMutations(t *testing.T) {
	m := adaptiveManager(t, 64, 0)
	prompt := tokensOf(16, 1)

	gen := m.Generation()
	if err := m.Allocate(1, 16); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitPrefix(1, prompt, 16); err != nil {
		t.Fatal(err)
	}
	if m.Generation() == gen {
		t.Fatal("generation unchanged by a trie commit")
	}

	gen = m.Generation()
	if _, err := m.ClaimPrefixHashed(2, m.HashPrompt(prompt)); err != nil {
		t.Fatal(err)
	}
	if m.Generation() == gen {
		t.Fatal("generation unchanged by a prefix claim")
	}

	// Freeing the last reference parks blocks in the cached pool, which
	// changes the resurrect charge of a later lookup.
	gen = m.Generation()
	if err := m.Free(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(2); err != nil {
		t.Fatal(err)
	}
	if m.Generation() == gen {
		t.Fatal("generation unchanged by refcount-zero transitions")
	}

	gen = m.Generation()
	if err := m.SetPrefixCacheCap(1); err != nil {
		t.Fatal(err)
	}
	if m.Generation() == gen {
		t.Fatal("generation unchanged by a cache-cap resize")
	}
}

// TestSetPrefixCacheCapEvictsImmediately: shrinking the bound at
// runtime must evict parked blocks down to the new bound on return.
func TestSetPrefixCacheCapEvictsImmediately(t *testing.T) {
	m := adaptiveManager(t, 64, 0)
	prompt := tokensOf(32, 1) // 8 full blocks
	if err := m.Allocate(1, 32); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitPrefix(1, prompt, 32); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(1); err != nil {
		t.Fatal(err)
	}
	if got := m.CachedBlocks(); got != 8 {
		t.Fatalf("cached %d blocks, want 8", got)
	}
	if err := m.SetPrefixCacheCap(3); err != nil {
		t.Fatal(err)
	}
	if got := m.CachedBlocks(); got != 3 {
		t.Fatalf("cached %d blocks after cap 3, want 3", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPrefixCacheCap(-1); err == nil {
		t.Fatal("negative cap accepted")
	}
	bare, err := NewManager(Config{BlockTokens: 4, TotalBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.SetPrefixCacheCap(1); err == nil {
		t.Fatal("cap resize accepted without the prefix cache")
	}
}

// TestAdaptiveCacheShrinksUnderPressure: sustained blocked admissions
// must drive the pool target down to the floor, with the cached pool
// following immediately.
func TestAdaptiveCacheShrinksUnderPressure(t *testing.T) {
	m := adaptiveManager(t, 64, 0)
	if err := m.EnableAdaptivePrefixCache(2, 16); err != nil {
		t.Fatal(err)
	}
	if got := m.CachePoolTarget(); got != 16 {
		t.Fatalf("start target %d, want max 16", got)
	}
	// Park 8 blocks.
	prompt := tokensOf(32, 1)
	if err := m.Allocate(1, 32); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitPrefix(1, prompt, 32); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(1); err != nil {
		t.Fatal(err)
	}

	last := m.CachePoolTarget()
	for i := 0; i < 64; i++ {
		last = m.AdaptCacheEpoch(1, 0, true)
	}
	if last != 2 {
		t.Fatalf("target %d after sustained pressure, want floor 2", last)
	}
	if got := m.CachedBlocks(); got > 2 {
		t.Fatalf("cached pool %d blocks above the shrunken target", got)
	}
	if m.CachePressureEWMA() < cachePressureHigh {
		t.Fatalf("pressure EWMA %.3f did not saturate", m.CachePressureEWMA())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveCacheGrowsOnHits: a hit-heavy, pressure-free epoch stream
// must grow the target back toward the ceiling.
func TestAdaptiveCacheGrowsOnHits(t *testing.T) {
	m := adaptiveManager(t, 64, 4)
	if err := m.EnableAdaptivePrefixCache(2, 16); err != nil {
		t.Fatal(err)
	}
	if got := m.CachePoolTarget(); got != 4 {
		t.Fatalf("start target %d, want the configured static bound 4", got)
	}
	last := 0
	for i := 0; i < 64; i++ {
		last = m.AdaptCacheEpoch(2, 2, false)
	}
	if last != 16 {
		t.Fatalf("target %d after sustained hits, want ceiling 16", last)
	}
	if m.CacheHitRateEWMA() < cacheGrowHitRate {
		t.Fatalf("hit-rate EWMA %.3f below the grow threshold", m.CacheHitRateEWMA())
	}
}

func TestAdaptiveCacheValidation(t *testing.T) {
	bare, err := NewManager(Config{BlockTokens: 4, TotalBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.EnableAdaptivePrefixCache(0, 0); err == nil {
		t.Fatal("adaptive sizing accepted without the prefix cache")
	}
	m := adaptiveManager(t, 64, 0)
	if err := m.EnableAdaptivePrefixCache(8, 4); err == nil {
		t.Fatal("max below min accepted")
	}
	if err := m.EnableAdaptivePrefixCache(-1, 0); err == nil {
		t.Fatal("negative min accepted")
	}
	// Epochs on a non-adaptive manager are a no-op.
	m2 := adaptiveManager(t, 64, 7)
	if got := m2.AdaptCacheEpoch(1, 1, true); got != 7 {
		t.Fatalf("non-adaptive epoch returned %d, want the static bound 7", got)
	}
}
