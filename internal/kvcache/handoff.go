package kvcache

import (
	"errors"
	"fmt"
)

// KV handoff: the transfer half of disaggregated prefill/decode
// serving (docs/disaggregation.md). ExportKV serializes a live
// sequence's block contents through the same TCA-TBE codec that backs
// the compressed cold cache — each block's synthesized KV tensor is
// compressed into a per-export CompressedStore, so the wire footprint
// is the measured compressed size, not raw KV bytes. ImportKV thaws
// the export bit-exactly into another Manager: prompt blocks are
// content-addressed (the prompt's per-block keys), so a target whose
// prefix trie already advertises them reuses the resident blocks and
// only the genuinely new tail is decompressed from the wire payload.
// Every expanded block is verified against a re-synthesis of its key's
// content before any state is committed, the same round-trip proof
// CheckInvariants applies to frozen blocks.
//
// Import is idempotent by construction: a duplicate import of a
// sequence id already present fails with ErrSequenceExists without
// touching state, and a retried import after a failure (or on a
// different replica after the first target died) re-runs the same
// content-addressed claim + expand and lands in the same state.

// ErrSequenceExists reports an import whose sequence id is already
// allocated on the target manager — the duplicate-handoff case.
var ErrSequenceExists = errors.New("kvcache: sequence already allocated")

// KVExport is a serialized sequence: its decode progress in tokens,
// the prompt's content hash (for dedup against the target's trie), one
// content key per block, and the compressed block payloads.
type KVExport struct {
	SeqID       int
	Tokens      int          // sequence length at export (prompt + generated)
	BlockTokens int          // block granularity the keys were derived at
	HP          HashedPrompt // prompt hash; tail blocks carry private keys
	Keys        []string     // one content key per block of the sequence
	Store       *CompressedStore
}

// Blocks returns the number of KV blocks in the export.
func (x *KVExport) Blocks() int { return len(x.Keys) }

// CompressedBytes returns the wire footprint of the payload.
func (x *KVExport) CompressedBytes() int64 { return x.Store.CompressedBytes() }

// OrigBytes returns the logical (uncompressed) payload size.
func (x *KVExport) OrigBytes() int64 { return x.Store.OrigBytes() }

// ExportKV serializes a live sequence's KV state. It is read-only: the
// sequence keeps its allocation, and the caller decides separately
// whether to Free it (the normal handoff) or keep serving it (an
// aborted handoff) — which is what makes a re-export after a failed
// transfer safe.
//
// Prompt blocks are keyed by the prompt's content keys so the importer
// can deduplicate them against its trie; blocks holding generated
// tokens get private keys (no cross-request sharing exists for them).
func (m *Manager) ExportKV(seqID int, hp HashedPrompt) (*KVExport, error) {
	st, ok := m.seqs[seqID]
	if !ok {
		return nil, fmt.Errorf("kvcache: unknown sequence %d", seqID)
	}
	b := m.cfg.BlockTokens
	keys := make([]string, len(st.table))
	for i := range keys {
		if i < len(hp.keys) && (i+1)*b <= st.tokens {
			keys[i] = hp.keys[i]
		} else {
			fill := st.tokens - i*b
			if fill > b {
				fill = b
			}
			keys[i] = fmt.Sprintf("handoff/%d/%d/%d", seqID, i, fill)
		}
	}
	store := NewCompressedStore()
	for i, key := range keys {
		if err := store.Put(i, blockContent(key, b)); err != nil {
			return nil, fmt.Errorf("kvcache: compressing sequence %d block %d: %w", seqID, i, err)
		}
	}
	return &KVExport{
		SeqID: seqID, Tokens: st.tokens, BlockTokens: b,
		HP: hp, Keys: keys, Store: store,
	}, nil
}

// ImportStats reports what an import physically did, so the engine can
// price the decompression and reconcile its block reservations.
type ImportStats struct {
	// ReusedTokens is the prompt prefix supplied by the target's own
	// trie — blocks the wire payload did not need to expand.
	ReusedTokens int
	// ExpandedBlocks is the number of blocks decompressed from the
	// wire payload into freshly claimed physical blocks.
	ExpandedBlocks int
	// Thawed is the number of the target's own frozen blocks restored
	// by the dedup claim (local decompressions, not wire ones).
	Thawed int
	// GrowPops is the number of physical blocks claimed by the
	// allocation growth after the dedup claim (including any
	// copy-on-write of a shared tail block).
	GrowPops int
}

// ImportKV thaws an export into this manager, deduplicating prompt
// blocks against the prefix trie. Wire-expanded blocks are verified
// bit-for-bit against a re-synthesis of their content keys before any
// allocation is committed; on any failure the claim is rolled back and
// the manager is unchanged. A sequence id already present fails with
// ErrSequenceExists (duplicate handoff). After a successful import the
// prompt's blocks are committed to the trie, so later requests sharing
// the prefix (and retried imports after a Free) hit them.
func (m *Manager) ImportKV(exp *KVExport) (ImportStats, error) {
	var stats ImportStats
	if _, dup := m.seqs[exp.SeqID]; dup {
		return stats, fmt.Errorf("%w: import of sequence %d", ErrSequenceExists, exp.SeqID)
	}
	if exp.BlockTokens != m.cfg.BlockTokens {
		return stats, fmt.Errorf("kvcache: import of sequence %d at block granularity %d into a %d-token manager",
			exp.SeqID, exp.BlockTokens, m.cfg.BlockTokens)
	}
	if exp.Tokens <= 0 || len(exp.Keys) != BlocksFor(exp.Tokens, m.cfg.BlockTokens) {
		return stats, fmt.Errorf("kvcache: malformed import of sequence %d: %d blocks for %d tokens",
			exp.SeqID, len(exp.Keys), exp.Tokens)
	}

	// Dedup: claim whatever prompt prefix this manager already holds.
	// A zero-token match claims nothing and creates no sequence state.
	matched := 0
	thawsBefore := m.decompClaims
	if m.prefix != nil && len(exp.HP.keys) > 0 {
		var err error
		if matched, err = m.ClaimPrefixHashed(exp.SeqID, exp.HP); err != nil {
			return stats, fmt.Errorf("kvcache: import claim for sequence %d: %w", exp.SeqID, err)
		}
	}
	stats.ReusedTokens = matched
	stats.Thawed = int(m.decompClaims - thawsBefore)
	supplied := 0
	if st := m.seqs[exp.SeqID]; st != nil {
		supplied = len(st.table)
	}
	rollback := func() {
		if _, claimed := m.seqs[exp.SeqID]; claimed {
			m.Free(exp.SeqID)
		}
	}

	// Verify the wire payload for every block the claim did not supply
	// before committing any allocation: each must decompress to exactly
	// the content its key addresses.
	for i := supplied; i < len(exp.Keys); i++ {
		kv, err := exp.Store.Get(i)
		if err != nil {
			rollback()
			return stats, fmt.Errorf("kvcache: import of sequence %d block %d unreadable: %w", exp.SeqID, i, err)
		}
		if !kv.Equal(blockContent(exp.Keys[i], m.cfg.BlockTokens)) {
			rollback()
			return stats, fmt.Errorf("kvcache: import of sequence %d block %d decompressed content differs from its key's",
				exp.SeqID, i)
		}
	}
	stats.ExpandedBlocks = len(exp.Keys) - supplied

	// Grow the claimed prefix (or allocate from scratch) to the full
	// exported length. Claim-held blocks cover matched tokens; the
	// growth funds everything else, including a copy-on-write of a
	// shared partially filled tail block.
	popsBefore := m.pops
	if matched > 0 {
		if err := m.Extend(exp.SeqID, exp.Tokens-matched); err != nil {
			rollback()
			return stats, fmt.Errorf("kvcache: import of sequence %d: %w", exp.SeqID, err)
		}
	} else if err := m.Allocate(exp.SeqID, exp.Tokens); err != nil {
		return stats, fmt.Errorf("kvcache: import of sequence %d: %w", exp.SeqID, err)
	}
	stats.GrowPops = int(m.pops - popsBefore)

	// Advertise the prompt's blocks on this trie, so sibling requests
	// (and a retried import, if this sequence is later freed) dedup
	// against them.
	if err := m.CommitPrefixHashed(exp.SeqID, exp.HP, exp.HP.Len()); err != nil {
		rollback()
		return stats, fmt.Errorf("kvcache: import commit for sequence %d: %w", exp.SeqID, err)
	}
	return stats, nil
}
